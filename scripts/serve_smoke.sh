#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the serving stack, run by
# `make serve-smoke` locally and by the serve-smoke CI job.
#
# Three loadgen phases against one giraffed process, each provoking a
# different admission outcome, then a graceful-drain check:
#
#   1. steady:   small batches at constant RPS inside capacity — asserts
#                2xx responses and a sane p99 service latency.
#   2. overload: 512-read requests split into 8 sub-batches against a
#                4-deep mapping queue — all-or-nothing admission can never
#                seat them, so every request 429s. Asserts >= 1 rejection.
#   3. deadline: 1 ms deadlines on 256-read requests — the deadline fires
#                during extraction/mapping and cancels in-flight work.
#                Asserts >= 1 expiry (504 or client-side timeout).
#
# Every request carries a loadgen-generated traceparent; after the deadline
# phase the tail sampler must be holding at least one 504 trace with a
# cancellation marker (fetched from /traces), and the drained server must
# have written its Perfetto request-track dump.
#
# Finally SIGTERM: the server must drain, write its run manifest, and exit
# 0. All artifacts (loadgen reports, giraffed manifest + series + traces)
# land in $SMOKE_DIR for CI upload.
set -eu

GO="${GO:-go}"
SMOKE_DIR="${SMOKE_DIR:-serve-smoke}"
ADDR="${ADDR:-localhost:8766}"
P99_BOUND="${P99_BOUND:-5s}"
QUEUE_P99_BOUND="${QUEUE_P99_BOUND:-5s}"

mkdir -p "$SMOKE_DIR"
echo "== building binaries"
"$GO" build -o "$SMOKE_DIR/giraffed" ./cmd/giraffed
"$GO" build -o "$SMOKE_DIR/loadgen" ./cmd/loadgen

echo "== generating workload"
"$GO" run ./cmd/genworkload -input A-human -outdir "$SMOKE_DIR"

echo "== booting giraffed on $ADDR (batch 64, queue depth 4)"
"$SMOKE_DIR/giraffed" -gbz "$SMOKE_DIR/A-human.gbz" -addr "$ADDR" \
    -threads 2 -batch 64 -depth 4 -per-client 64 \
    -manifest "$SMOKE_DIR/giraffed-manifest.json" \
    -series "$SMOKE_DIR/giraffed.series" -series-interval 500ms \
    -slow 8 -trace-k 16 -req-traces "$SMOKE_DIR/giraffed-reqtrace.json" \
    >"$SMOKE_DIR/giraffed.log" 2>&1 &
SRV_PID=$!
trap 'kill "$SRV_PID" 2>/dev/null || true' EXIT

echo "== phase 1: steady traffic (expect 2xx, bounded p99)"
"$SMOKE_DIR/loadgen" -url "http://$ADDR" -fastq "$SMOKE_DIR/A-human.fq" \
    -wait-ready 30s -shape const -rps 6 -duration 8s -batch 8 \
    -clients 4 -deadline 10s \
    -report "$SMOKE_DIR/loadgen-steady.json" \
    -manifest "$SMOKE_DIR/loadgen-steady-manifest.json" \
    -assert-min-2xx 1 -assert-max-p99 "$P99_BOUND" \
    -assert-max-queue-p99 "$QUEUE_P99_BOUND"

echo "== phase 2: oversized bursts (expect 429 queue rejections)"
# 512 reads / 64-read sub-batches = 8 queue slots per request, but the
# shared queue holds 4: all-or-nothing admission rejects every one.
"$SMOKE_DIR/loadgen" -url "http://$ADDR" -fastq "$SMOKE_DIR/A-human.fq" \
    -shape burst -rps 8 -duration 4s -batch 512 -clients 2 \
    -deadline 10s -report "$SMOKE_DIR/loadgen-burst.json" \
    -assert-min-429 1

echo "== phase 3: 1ms deadlines (expect deadline expiries)"
"$SMOKE_DIR/loadgen" -url "http://$ADDR" -fastq "$SMOKE_DIR/A-human.fq" \
    -shape const -rps 6 -duration 4s -batch 256 -clients 2 \
    -deadline 1ms -report "$SMOKE_DIR/loadgen-deadline.json" \
    -assert-min-timeout 1

echo "== tail-sampled traces (expect >= 1 retained 504 with cancellation)"
curl -s "http://$ADDR/traces" > "$SMOKE_DIR/traces.json"
if ! grep -q '"status":504' "$SMOKE_DIR/traces.json"; then
    echo "FAIL: no 504 trace retained after the deadline phase (tail sampler must keep every non-2xx)"
    exit 1
fi
# A deadline either stops a kernel mid-sub-batch (canceled map span) or
# skips queued sub-batches outright (cancel span) — either marker will do.
if ! grep -q '"canceled":true' "$SMOKE_DIR/traces.json" \
   && ! grep -q '"name":"cancel"' "$SMOKE_DIR/traces.json"; then
    echo "FAIL: sampled 504 traces show no cancellation marker"
    exit 1
fi

echo "== graceful drain (SIGTERM, expect exit 0 + manifest)"
kill -TERM "$SRV_PID"
rc=0
wait "$SRV_PID" || rc=$?
trap - EXIT
if [ "$rc" -ne 0 ]; then
    echo "FAIL: giraffed exited $rc after SIGTERM"
    cat "$SMOKE_DIR/giraffed.log"
    exit 1
fi
if [ ! -s "$SMOKE_DIR/giraffed-manifest.json" ]; then
    echo "FAIL: giraffed did not write its run manifest on drain"
    cat "$SMOKE_DIR/giraffed.log"
    exit 1
fi
if [ ! -s "$SMOKE_DIR/giraffed-reqtrace.json" ]; then
    echo "FAIL: giraffed did not write its Perfetto request-trace dump on drain"
    cat "$SMOKE_DIR/giraffed.log"
    exit 1
fi
if ! grep -q ' 504"' "$SMOKE_DIR/giraffed-reqtrace.json"; then
    echo "FAIL: Perfetto dump has no 504 request track"
    exit 1
fi

echo "== server log tail"
tail -n 5 "$SMOKE_DIR/giraffed.log"
echo "serve-smoke OK: artifacts in $SMOKE_DIR/"
