// Package dna provides the base-level sequence substrate used throughout the
// miniGiraffe reproduction: 2-bit base codes, packed sequence storage,
// reverse complements, and the short-read records that the mapping pipeline
// consumes.
//
// DNA is represented over the four-letter alphabet A, C, G, T. Internally a
// base is a 2-bit code (A=0, C=1, G=2, T=3) so that complementation is
// `3-code` and packed storage fits four bases per byte.
package dna

import (
	"errors"
	"fmt"
	"strings"
)

// Base is a 2-bit DNA base code: A=0, C=1, G=2, T=3.
type Base uint8

// The four bases in code order.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3
)

// NumBases is the alphabet size.
const NumBases = 4

var baseToChar = [NumBases]byte{'A', 'C', 'G', 'T'}

// charToBase maps an ASCII byte to its base code, or 0xFF for invalid bytes.
var charToBase [256]byte

func init() {
	for i := range charToBase {
		charToBase[i] = 0xFF
	}
	charToBase['A'], charToBase['a'] = 0, 0
	charToBase['C'], charToBase['c'] = 1, 1
	charToBase['G'], charToBase['g'] = 2, 2
	charToBase['T'], charToBase['t'] = 3, 3
}

// Char returns the upper-case ASCII letter for b.
func (b Base) Char() byte { return baseToChar[b&3] }

// Complement returns the Watson-Crick complement of b (A<->T, C<->G).
func (b Base) Complement() Base { return 3 - (b & 3) }

// String implements fmt.Stringer.
func (b Base) String() string { return string(baseToChar[b&3]) }

// BaseFromChar converts an ASCII letter to a base code. ok is false for
// non-ACGT characters (including N).
func BaseFromChar(c byte) (b Base, ok bool) {
	v := charToBase[c]
	return Base(v), v != 0xFF
}

// Sequence is an unpacked DNA sequence, one base code per byte. The unpacked
// form is what the performance-critical kernels iterate over; Packed below is
// the storage form.
type Sequence []Base

// ErrInvalidBase reports a non-ACGT character during parsing.
var ErrInvalidBase = errors.New("dna: invalid base character")

// Parse converts an ACGT string to a Sequence. It returns ErrInvalidBase
// (wrapped with position info) on any other character.
func Parse(s string) (Sequence, error) {
	seq := make(Sequence, len(s))
	for i := 0; i < len(s); i++ {
		b, ok := BaseFromChar(s[i])
		if !ok {
			return nil, fmt.Errorf("%w: %q at offset %d", ErrInvalidBase, s[i], i)
		}
		seq[i] = b
	}
	return seq, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(s string) Sequence {
	seq, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return seq
}

// String renders the sequence as an ACGT string.
func (s Sequence) String() string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, b := range s {
		sb.WriteByte(b.Char())
	}
	return sb.String()
}

// Clone returns an independent copy of s.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	copy(out, s)
	return out
}

// RevComp returns the reverse complement of s as a new sequence.
func (s Sequence) RevComp() Sequence {
	out := make(Sequence, len(s))
	for i, b := range s {
		out[len(s)-1-i] = b.Complement()
	}
	return out
}

// Equal reports whether s and t hold the same bases.
func (s Sequence) Equal(t Sequence) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Packed is a 2-bit-per-base packed DNA sequence, four bases per byte,
// little-endian within the byte (base i occupies bits 2*(i%4)..2*(i%4)+1 of
// byte i/4). This is the on-disk and in-graph storage format.
type Packed struct {
	data []byte
	n    int
}

// Pack converts an unpacked sequence to packed storage.
func Pack(s Sequence) Packed {
	data := make([]byte, (len(s)+3)/4)
	for i, b := range s {
		data[i/4] |= byte(b&3) << uint(2*(i%4))
	}
	return Packed{data: data, n: len(s)}
}

// PackedFromRaw reconstructs a Packed from its serialized parts. It is the
// inverse of (Packed).Raw and validates that data is large enough for n.
func PackedFromRaw(data []byte, n int) (Packed, error) {
	if need := (n + 3) / 4; len(data) < need || n < 0 {
		return Packed{}, fmt.Errorf("dna: packed data too short: have %d bytes, need %d for %d bases", len(data), (n+3)/4, n)
	}
	return Packed{data: data, n: n}, nil
}

// Raw returns the underlying packed bytes and the base count, for
// serialization. The returned slice aliases the Packed's storage.
func (p Packed) Raw() (data []byte, n int) { return p.data, p.n }

// Len returns the number of bases.
func (p Packed) Len() int { return p.n }

// At returns base i. It panics if i is out of range, mirroring slice indexing.
func (p Packed) At(i int) Base {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("dna: Packed index %d out of range [0,%d)", i, p.n))
	}
	return Base(p.data[i/4]>>uint(2*(i%4))) & 3
}

// Unpack expands the packed sequence to one base per byte.
func (p Packed) Unpack() Sequence {
	out := make(Sequence, p.n)
	for i := 0; i < p.n; i++ {
		out[i] = Base(p.data[i/4]>>uint(2*(i%4))) & 3
	}
	return out
}

// Read is one short read to be mapped: a name, the sequence, and for
// paired-end workflows the fragment identity and end index.
type Read struct {
	// Name identifies the read (e.g. "SRR4074257.17").
	Name string
	// Seq is the read's bases in sequencing order.
	Seq Sequence
	// Fragment groups the two ends of a paired-end fragment; -1 when
	// single-end.
	Fragment int
	// End is 0 for single-end or first-of-pair, 1 for second-of-pair.
	End int
}

// Paired reports whether the read belongs to a paired-end fragment.
func (r *Read) Paired() bool { return r.Fragment >= 0 }

// Len returns the read length in bases.
func (r *Read) Len() int { return len(r.Seq) }
