package dna

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBaseChar(t *testing.T) {
	cases := []struct {
		b Base
		c byte
	}{{A, 'A'}, {C, 'C'}, {G, 'G'}, {T, 'T'}}
	for _, tc := range cases {
		if got := tc.b.Char(); got != tc.c {
			t.Errorf("Base(%d).Char() = %q, want %q", tc.b, got, tc.c)
		}
		if got, ok := BaseFromChar(tc.c); !ok || got != tc.b {
			t.Errorf("BaseFromChar(%q) = %v,%v, want %v,true", tc.c, got, ok, tc.b)
		}
	}
}

func TestBaseFromCharLowercase(t *testing.T) {
	for i, c := range []byte("acgt") {
		b, ok := BaseFromChar(c)
		if !ok || b != Base(i) {
			t.Errorf("BaseFromChar(%q) = %v,%v, want %v,true", c, b, ok, Base(i))
		}
	}
}

func TestBaseFromCharInvalid(t *testing.T) {
	for _, c := range []byte("NnXZ -0.") {
		if _, ok := BaseFromChar(c); ok {
			t.Errorf("BaseFromChar(%q) unexpectedly ok", c)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, C: G, G: C, T: A}
	for b, want := range pairs {
		if got := b.Complement(); got != want {
			t.Errorf("%v.Complement() = %v, want %v", b, got, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	const s = "ACGTACGTTTGGCCAA"
	seq, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	if got := seq.String(); got != s {
		t.Errorf("round trip = %q, want %q", got, s)
	}
}

func TestParseInvalid(t *testing.T) {
	if _, err := Parse("ACGTN"); err == nil {
		t.Error("Parse with N: want error, got nil")
	}
	if _, err := Parse("ACG T"); err == nil {
		t.Error("Parse with space: want error, got nil")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse(invalid) did not panic")
		}
	}()
	MustParse("XYZ")
}

func TestRevComp(t *testing.T) {
	seq := MustParse("AACGT")
	want := "ACGTT"
	if got := seq.RevComp().String(); got != want {
		t.Errorf("RevComp(AACGT) = %q, want %q", got, want)
	}
}

func TestRevCompInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make(Sequence, len(raw))
		for i, b := range raw {
			seq[i] = Base(b & 3)
		}
		return seq.RevComp().RevComp().Equal(seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make(Sequence, len(raw))
		for i, b := range raw {
			seq[i] = Base(b & 3)
		}
		return Pack(seq).Unpack().Equal(seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackedAt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seq := make(Sequence, 133)
	for i := range seq {
		seq[i] = Base(rng.Intn(4))
	}
	p := Pack(seq)
	if p.Len() != len(seq) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(seq))
	}
	for i := range seq {
		if p.At(i) != seq[i] {
			t.Fatalf("At(%d) = %v, want %v", i, p.At(i), seq[i])
		}
	}
}

func TestPackedAtPanics(t *testing.T) {
	p := Pack(MustParse("ACGT"))
	defer func() {
		if recover() == nil {
			t.Error("At(4) did not panic")
		}
	}()
	p.At(4)
}

func TestPackedFromRaw(t *testing.T) {
	seq := MustParse("ACGTACG")
	p := Pack(seq)
	data, n := p.Raw()
	q, err := PackedFromRaw(data, n)
	if err != nil {
		t.Fatalf("PackedFromRaw: %v", err)
	}
	if !q.Unpack().Equal(seq) {
		t.Error("PackedFromRaw round trip mismatch")
	}
	if _, err := PackedFromRaw(data[:1], n); err == nil {
		t.Error("PackedFromRaw with short data: want error")
	}
	if _, err := PackedFromRaw(data, -1); err == nil {
		t.Error("PackedFromRaw with negative n: want error")
	}
}

func TestSequenceClone(t *testing.T) {
	s := MustParse("ACGT")
	c := s.Clone()
	c[0] = T
	if s[0] != A {
		t.Error("Clone shares storage with original")
	}
}

func TestSequenceEqual(t *testing.T) {
	a := MustParse("ACGT")
	if !a.Equal(MustParse("ACGT")) {
		t.Error("equal sequences reported unequal")
	}
	if a.Equal(MustParse("ACGA")) {
		t.Error("unequal sequences reported equal")
	}
	if a.Equal(MustParse("ACG")) {
		t.Error("different-length sequences reported equal")
	}
}

func TestReadPaired(t *testing.T) {
	single := Read{Name: "r1", Seq: MustParse("ACGT"), Fragment: -1}
	if single.Paired() {
		t.Error("single-end read reported paired")
	}
	if single.Len() != 4 {
		t.Errorf("Len = %d, want 4", single.Len())
	}
	paired := Read{Name: "r2", Seq: MustParse("ACGT"), Fragment: 3, End: 1}
	if !paired.Paired() {
		t.Error("paired-end read reported single")
	}
}

func TestLongPackedBoundary(t *testing.T) {
	// Exercise all byte-boundary lengths around multiples of 4.
	for n := 0; n <= 17; n++ {
		seq := make(Sequence, n)
		for i := range seq {
			seq[i] = Base((i * 7) % 4)
		}
		if got := Pack(seq).Unpack(); !got.Equal(seq) {
			t.Errorf("n=%d: pack/unpack mismatch", n)
		}
	}
}

func TestStringBuilderParity(t *testing.T) {
	// Sequence.String must agree with a simple per-base construction.
	seq := MustParse("GGCCTTAA")
	var sb strings.Builder
	for _, b := range seq {
		sb.WriteByte(b.Char())
	}
	if seq.String() != sb.String() {
		t.Errorf("String() = %q, want %q", seq.String(), sb.String())
	}
}
