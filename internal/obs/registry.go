// Package obs is the unified observability layer: a sharded metrics
// registry (counters, gauges, log-bucketed latency histograms), a
// Prometheus-text scrape and Perfetto trace export over the same data the
// paper's instrumentation header collects (§III), a run manifest emitted
// next to every result file, and a live debug HTTP endpoint.
//
// The design mirrors trace.Recorder: the record path is per-worker, so the
// hot kernels never share a cache line, never take a lock, and pay one
// uncontended atomic add per event; shards are merged only on scrape. Every
// entry point is nil-safe — a nil *Registry hands out nil metric handles
// whose methods are no-ops — so instrumented code needs no configuration
// branches and the default (observability off) keeps the hot path clean.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// cell is one shard's counter storage, padded to a cache line so adjacent
// shards never false-share.
type cell struct {
	v int64
	_ [56]byte
}

// Registry hands out named metrics. Registration (Counter, Gauge,
// Histogram) takes a lock and is meant for setup paths; the returned handles
// record lock-free. Names must be string literals or named constants — the
// metricname analyzer enforces bounded cardinality.
type Registry struct {
	shards int

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates a registry with one shard per worker. Shard indices
// passed to the handles are clamped, so sizing for the map-worker count is
// enough even when auxiliary goroutines (ingest, emit, extractors) record
// too.
func NewRegistry(shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	return &Registry{
		shards:   shards,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Shards returns the per-worker shard count (0 for a nil registry).
func (r *Registry) Shards() int {
	if r == nil {
		return 0
	}
	return r.shards
}

// Counter returns the named counter, creating it on first use. Nil-safe: a
// nil registry returns a nil handle whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{cells: make([]cell, r.shards)}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{cells: make([]cell, r.shards)}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{shards: make([]histShard, r.shards)}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	cells []cell
}

// Add adds delta on the worker's shard. Out-of-range shards clamp to 0, so
// single-writer stages can just use shard 0.
func (c *Counter) Add(shard int, delta int64) {
	if c == nil {
		return
	}
	if uint(shard) >= uint(len(c.cells)) {
		shard = 0
	}
	atomic.AddInt64(&c.cells[shard].v, delta)
}

// Inc adds one on the worker's shard.
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value merges the shards (safe concurrently with Add).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.cells {
		sum += atomic.LoadInt64(&c.cells[i].v)
	}
	return sum
}

// Gauge is a sharded up/down value; the scraped value is the sum over
// shards, so paired Add(+1)/Add(-1) from different stages read as the
// current in-flight level.
type Gauge struct {
	cells []cell
}

// Add moves the gauge on the worker's shard.
func (g *Gauge) Add(shard int, delta int64) {
	if g == nil {
		return
	}
	if uint(shard) >= uint(len(g.cells)) {
		shard = 0
	}
	atomic.AddInt64(&g.cells[shard].v, delta)
}

// Set stores v on the worker's shard (meaningful for single-writer gauges).
func (g *Gauge) Set(shard int, v int64) {
	if g == nil {
		return
	}
	if uint(shard) >= uint(len(g.cells)) {
		shard = 0
	}
	atomic.StoreInt64(&g.cells[shard].v, v)
}

// Value merges the shards.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	var sum int64
	for i := range g.cells {
		sum += atomic.LoadInt64(&g.cells[i].v)
	}
	return sum
}

// histBuckets is the bucket count of the log2 histogram: bucket b holds
// durations whose nanosecond value has bit length b, i.e. [2^(b-1), 2^b).
// Bucket 0 is exactly zero. 64 bit lengths cover every int64 duration.
const histBuckets = 65

// histShard is one worker's histogram storage. The buckets span multiple
// cache lines; only the first and last line can false-share with a
// neighbouring shard, which the trailing pad avoids.
type histShard struct {
	count   int64
	sum     int64 // nanoseconds
	buckets [histBuckets]int64
	_       [56]byte
}

// Histogram is a sharded log2-bucketed latency histogram. Observe is one
// atomic add per field; quantiles are extracted from the merged buckets on
// scrape, with each bucket answering with its upper bound (a ≤2× upper
// estimate, matching the paper's order-of-magnitude latency breakdown
// needs).
type Histogram struct {
	shards []histShard
}

// Observe folds one duration into the worker's shard. Negative durations
// (clock steps) clamp to zero.
func (h *Histogram) Observe(shard int, d time.Duration) {
	if h == nil {
		return
	}
	if uint(shard) >= uint(len(h.shards)) {
		shard = 0
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	s := &h.shards[shard]
	atomic.AddInt64(&s.count, 1)
	atomic.AddInt64(&s.sum, ns)
	atomic.AddInt64(&s.buckets[bits.Len64(uint64(ns))], 1)
}

// HistogramStats is one histogram's merged scrape: totals plus quantile
// estimates in seconds. All fields are finite by construction, so the
// struct always marshals to valid JSON.
type HistogramStats struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	Mean       float64 `json:"mean_seconds"`
	P50        float64 `json:"p50_seconds"`
	P90        float64 `json:"p90_seconds"`
	P99        float64 `json:"p99_seconds"`
	Max        float64 `json:"max_seconds"` // upper bound of the highest occupied bucket
}

// Stats merges the shards and extracts quantiles (safe concurrently with
// Observe; the snapshot is approximate while writers are active, as any
// scrape is).
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	var merged [histBuckets]int64
	var count, sum int64
	for i := range h.shards {
		s := &h.shards[i]
		count += atomic.LoadInt64(&s.count)
		sum += atomic.LoadInt64(&s.sum)
		for b := 0; b < histBuckets; b++ {
			merged[b] += atomic.LoadInt64(&s.buckets[b])
		}
	}
	st := HistogramStats{
		Count:      count,
		SumSeconds: SanitizeFloat(time.Duration(sum).Seconds()),
	}
	if count > 0 {
		st.Mean = SanitizeFloat(st.SumSeconds / float64(count))
		st.P50 = quantile(&merged, count, 0.50)
		st.P90 = quantile(&merged, count, 0.90)
		st.P99 = quantile(&merged, count, 0.99)
		for b := histBuckets - 1; b >= 0; b-- {
			if merged[b] > 0 {
				st.Max = bucketUpperSeconds(b)
				break
			}
		}
	}
	return st
}

// quantile returns the upper bound of the bucket where the cumulative count
// crosses q, in seconds.
func quantile(buckets *[histBuckets]int64, count int64, q float64) float64 {
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += buckets[b]
		if cum >= rank {
			return bucketUpperSeconds(b)
		}
	}
	return bucketUpperSeconds(histBuckets - 1)
}

// bucketUpperSeconds is bucket b's inclusive upper bound in seconds.
func bucketUpperSeconds(b int) float64 {
	if b == 0 {
		return 0
	}
	if b >= 63 {
		return time.Duration(math.MaxInt64).Seconds()
	}
	return time.Duration(int64(1)<<b - 1).Seconds()
}

// Snapshot is one merged scrape of every registered metric — the /progress
// payload and the manifest's final-state record.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot merges every metric's shards. Nil-safe: a nil registry scrapes
// to nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]namedCounter, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, namedCounter{name, c})
	}
	gauges := make([]namedGauge, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, namedGauge{name, g})
	}
	hists := make([]namedHist, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, namedHist{name, h})
	}
	r.mu.Unlock()

	s := &Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramStats, len(hists)),
	}
	for _, c := range counters {
		s.Counters[c.name] = c.c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.g.Value()
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.h.Stats()
	}
	return s
}

type namedCounter struct {
	name string
	c    *Counter
}
type namedGauge struct {
	name string
	g    *Gauge
}
type namedHist struct {
	name string
	h    *Histogram
}

// SanitizeFloat maps NaN and ±Inf to 0 so derived rates and shares always
// survive encoding/json (which rejects non-finite values).
func SanitizeFloat(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// Rate returns n per second over elapsed, guarded against zero, negative,
// and denormal elapsed times — the shared helper behind every reads/s
// figure, so manifests and /progress never emit NaN or Inf.
func Rate(n float64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return SanitizeFloat(n / elapsed.Seconds())
}

// sortedNames returns the keys of a metric map in stable order (scrape
// output must be diffable between runs).
func sortedNames[M any](m map[string]M) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
