// Package obs is the unified observability layer: a sharded metrics
// registry (counters, gauges, log-bucketed latency histograms), a
// Prometheus-text scrape and Perfetto trace export over the same data the
// paper's instrumentation header collects (§III), a run manifest emitted
// next to every result file, and a live debug HTTP endpoint.
//
// The design mirrors trace.Recorder: the record path is per-worker, so the
// hot kernels never share a cache line, never take a lock, and pay one
// uncontended atomic add per event; shards are merged only on scrape. Every
// entry point is nil-safe — a nil *Registry hands out nil metric handles
// whose methods are no-ops — so instrumented code needs no configuration
// branches and the default (observability off) keeps the hot path clean.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// cell is one shard's counter storage, padded to a cache line so adjacent
// shards never false-share.
type cell struct {
	v int64
	_ [56]byte
}

// Registry hands out named metrics. Registration (Counter, Gauge,
// Histogram) takes a lock and is meant for setup paths; the returned handles
// record lock-free. Names must be string literals or named constants — the
// metricname analyzer enforces bounded cardinality.
type Registry struct {
	shards int

	// workerShards is how many leading shards belong to map workers — the
	// population the derived claim-imbalance gauges are computed over (the
	// trailing ingest/emit shards never claim batches and must not dilute
	// the mean). Zero disables the derivation.
	workerShards int64

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates a registry with one shard per worker. Shard indices
// passed to the handles are clamped, so sizing for the map-worker count is
// enough even when auxiliary goroutines (ingest, emit, extractors) record
// too.
func NewRegistry(shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	return &Registry{
		shards:   shards,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Shards returns the per-worker shard count (0 for a nil registry).
func (r *Registry) Shards() int {
	if r == nil {
		return 0
	}
	return r.shards
}

// SetWorkerShards declares that the first n shards are map workers. Scrapes
// then derive the scheduler straggler gauges (sched_claim_imbalance_milli,
// sched_steal_share_milli) from the per-shard claim counters, so a worker
// that claims far more batches than the mean shows up in the series even
// though the claim counter itself scrapes as a merged total. Nil-safe.
func (r *Registry) SetWorkerShards(n int) {
	if r == nil || n <= 0 {
		return
	}
	atomic.StoreInt64(&r.workerShards, int64(n))
}

// updateDerived refreshes the derived scheduler gauges from the claim/steal
// counters' per-shard values. Called on every Snapshot so the manifest, the
// Prometheus scrape, and the archived series all see fresh values.
func (r *Registry) updateDerived() {
	n := int(atomic.LoadInt64(&r.workerShards))
	if n <= 0 {
		return
	}
	r.mu.Lock()
	claims := r.counters[MetricSchedClaims]
	steals := r.counters[MetricSchedSteals]
	r.mu.Unlock()
	if claims == nil {
		return
	}
	if n > len(claims.cells) {
		n = len(claims.cells)
	}
	var sum, maxv int64
	for i := 0; i < n; i++ {
		v := atomic.LoadInt64(&claims.cells[i].v)
		sum += v
		if v > maxv {
			maxv = v
		}
	}
	if sum == 0 {
		return
	}
	mean := float64(sum) / float64(n)
	r.Gauge(MetricSchedClaimImbalance).Set(0, int64(math.Round(1000*float64(maxv)/mean)))
	if steals != nil {
		r.Gauge(MetricSchedStealShare).Set(0, int64(math.Round(1000*float64(steals.Value())/float64(sum))))
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe: a
// nil registry returns a nil handle whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{cells: make([]cell, r.shards)}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{cells: make([]cell, r.shards)}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(r.shards)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	cells []cell
}

// Add adds delta on the worker's shard. Out-of-range shards clamp to 0, so
// single-writer stages can just use shard 0.
func (c *Counter) Add(shard int, delta int64) {
	if c == nil {
		return
	}
	if uint(shard) >= uint(len(c.cells)) {
		shard = 0
	}
	atomic.AddInt64(&c.cells[shard].v, delta)
}

// Inc adds one on the worker's shard.
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value merges the shards (safe concurrently with Add).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.cells {
		sum += atomic.LoadInt64(&c.cells[i].v)
	}
	return sum
}

// Gauge is a sharded up/down value; the scraped value is the sum over
// shards, so paired Add(+1)/Add(-1) from different stages read as the
// current in-flight level.
type Gauge struct {
	cells []cell
}

// Add moves the gauge on the worker's shard.
func (g *Gauge) Add(shard int, delta int64) {
	if g == nil {
		return
	}
	if uint(shard) >= uint(len(g.cells)) {
		shard = 0
	}
	atomic.AddInt64(&g.cells[shard].v, delta)
}

// Set stores v on the worker's shard (meaningful for single-writer gauges).
func (g *Gauge) Set(shard int, v int64) {
	if g == nil {
		return
	}
	if uint(shard) >= uint(len(g.cells)) {
		shard = 0
	}
	atomic.StoreInt64(&g.cells[shard].v, v)
}

// Value merges the shards.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	var sum int64
	for i := range g.cells {
		sum += atomic.LoadInt64(&g.cells[i].v)
	}
	return sum
}

// histBuckets is the bucket count of the log2 histogram: bucket b holds
// durations whose nanosecond value has bit length b, i.e. [2^(b-1), 2^b).
// Bucket 0 is exactly zero. 64 bit lengths cover every int64 duration.
const histBuckets = 65

// histShard is one worker's histogram storage. The buckets span multiple
// cache lines; only the first and last line can false-share with a
// neighbouring shard, which the trailing pad avoids.
type histShard struct {
	count   int64
	sum     int64 // nanoseconds
	min     int64 // exact recorded minimum; math.MaxInt64 until the first Observe
	max     int64 // exact recorded maximum
	buckets [histBuckets]int64
	_       [24]byte
}

// newHistogram allocates the shard storage with each shard's recorded
// minimum at its sentinel.
func newHistogram(shards int) *Histogram {
	h := &Histogram{shards: make([]histShard, shards)}
	for i := range h.shards {
		h.shards[i].min = math.MaxInt64 //vetgiraffe:ignore atomicmix init before the histogram is published
	}
	return h
}

// Histogram is a sharded log2-bucketed latency histogram. Observe is one
// atomic add per field; quantiles are extracted from the merged buckets on
// scrape, with each bucket answering with its upper bound (a ≤2× upper
// estimate, matching the paper's order-of-magnitude latency breakdown
// needs).
type Histogram struct {
	shards []histShard
}

// Observe folds one duration into the worker's shard. Negative durations
// (clock steps) clamp to zero.
func (h *Histogram) Observe(shard int, d time.Duration) {
	if h == nil {
		return
	}
	if uint(shard) >= uint(len(h.shards)) {
		shard = 0
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	s := &h.shards[shard]
	atomic.AddInt64(&s.count, 1)
	atomic.AddInt64(&s.sum, ns)
	atomic.AddInt64(&s.buckets[bits.Len64(uint64(ns))], 1)
	// Exact recorded bounds ride alongside the log2 buckets: the CAS loops
	// almost never iterate (the bound moves only on a new extreme) and never
	// allocate, so the hot path stays one cache line of uncontended atomics.
	for {
		cur := atomic.LoadInt64(&s.min)
		if ns >= cur || atomic.CompareAndSwapInt64(&s.min, cur, ns) {
			break
		}
	}
	for {
		cur := atomic.LoadInt64(&s.max)
		if ns <= cur || atomic.CompareAndSwapInt64(&s.max, cur, ns) {
			break
		}
	}
}

// HistogramStats is one histogram's merged scrape: totals, quantile
// estimates in seconds, the exact recorded min/max alongside the
// log2-approximate quantiles, and the occupied buckets themselves so
// external consumers (the Prometheus _bucket series, obsdiff, the archived
// series loader) can recompute quantiles. All float fields are finite by
// construction, so the struct always marshals to valid JSON.
type HistogramStats struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	Mean       float64 `json:"mean_seconds"`
	P50        float64 `json:"p50_seconds"`
	P90        float64 `json:"p90_seconds"`
	P99        float64 `json:"p99_seconds"`
	// Min and Max are exact recorded bounds on a live scrape. A histogram
	// reconstructed from an archived series carries bucket bounds instead
	// (the series stores bucket deltas, not extremes).
	Min float64 `json:"min_seconds"`
	Max float64 `json:"max_seconds"`
	// Buckets lists the occupied log2 buckets with per-bucket (not
	// cumulative) counts, in increasing bit order.
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one occupied log2 bucket: durations whose nanosecond value
// has bit length Bit, i.e. [2^(Bit-1), 2^Bit) ns; Bit 0 is exactly zero.
type HistBucket struct {
	Bit   int   `json:"bit"`
	Count int64 `json:"count"`
}

// UpperSeconds is the bucket's inclusive upper bound in seconds.
func (b HistBucket) UpperSeconds() float64 { return bucketUpperSeconds(b.Bit) }

// Stats merges the shards and extracts quantiles (safe concurrently with
// Observe; the snapshot is approximate while writers are active, as any
// scrape is).
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	var merged [histBuckets]int64
	var count, sum int64
	minNs, maxNs := int64(math.MaxInt64), int64(0)
	for i := range h.shards {
		s := &h.shards[i]
		count += atomic.LoadInt64(&s.count)
		sum += atomic.LoadInt64(&s.sum)
		if v := atomic.LoadInt64(&s.min); v < minNs {
			minNs = v
		}
		if v := atomic.LoadInt64(&s.max); v > maxNs {
			maxNs = v
		}
		for b := 0; b < histBuckets; b++ {
			merged[b] += atomic.LoadInt64(&s.buckets[b])
		}
	}
	st := statsFromMerged(count, sum, &merged)
	if count > 0 {
		st.Min = SanitizeFloat(time.Duration(minNs).Seconds())
		st.Max = SanitizeFloat(time.Duration(maxNs).Seconds())
	}
	return st
}

// statsFromMerged derives the bucket-based fields (totals, quantiles, the
// occupied-bucket list, and bucket-bound Min/Max) from an already-merged
// bucket array. Histogram.Stats overwrites Min/Max with the exact recorded
// extremes; the series loader, which has only buckets, keeps the bounds.
func statsFromMerged(count, sum int64, merged *[histBuckets]int64) HistogramStats {
	st := HistogramStats{
		Count:      count,
		SumSeconds: SanitizeFloat(time.Duration(sum).Seconds()),
	}
	for b := 0; b < histBuckets; b++ {
		if merged[b] > 0 {
			st.Buckets = append(st.Buckets, HistBucket{Bit: b, Count: merged[b]})
		}
	}
	if count > 0 {
		st.Mean = SanitizeFloat(st.SumSeconds / float64(count))
		st.P50 = quantile(merged, count, 0.50)
		st.P90 = quantile(merged, count, 0.90)
		st.P99 = quantile(merged, count, 0.99)
		if n := len(st.Buckets); n > 0 {
			st.Min = bucketLowerSeconds(st.Buckets[0].Bit)
			st.Max = bucketUpperSeconds(st.Buckets[n-1].Bit)
		}
	}
	return st
}

// quantile returns the upper bound of the bucket where the cumulative count
// crosses q, in seconds.
func quantile(buckets *[histBuckets]int64, count int64, q float64) float64 {
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += buckets[b]
		if cum >= rank {
			return bucketUpperSeconds(b)
		}
	}
	return bucketUpperSeconds(histBuckets - 1)
}

// bucketUpperSeconds is bucket b's inclusive upper bound in seconds.
func bucketUpperSeconds(b int) float64 {
	if b == 0 {
		return 0
	}
	if b >= 63 {
		return time.Duration(math.MaxInt64).Seconds()
	}
	return time.Duration(int64(1)<<b - 1).Seconds()
}

// bucketLowerSeconds is bucket b's inclusive lower bound in seconds.
func bucketLowerSeconds(b int) float64 {
	if b <= 0 {
		return 0
	}
	return time.Duration(int64(1) << (b - 1)).Seconds()
}

// Snapshot is one merged scrape of every registered metric — the /progress
// payload and the manifest's final-state record.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot merges every metric's shards. Nil-safe: a nil registry scrapes
// to nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.updateDerived()
	r.mu.Lock()
	counters := make([]namedCounter, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, namedCounter{name, c})
	}
	gauges := make([]namedGauge, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, namedGauge{name, g})
	}
	hists := make([]namedHist, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, namedHist{name, h})
	}
	r.mu.Unlock()

	s := &Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramStats, len(hists)),
	}
	for _, c := range counters {
		s.Counters[c.name] = c.c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.g.Value()
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.h.Stats()
	}
	return s
}

type namedCounter struct {
	name string
	c    *Counter
}
type namedGauge struct {
	name string
	g    *Gauge
}
type namedHist struct {
	name string
	h    *Histogram
}

// SanitizeFloat maps NaN and ±Inf to 0 so derived rates and shares always
// survive encoding/json (which rejects non-finite values).
func SanitizeFloat(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// Rate returns n per second over elapsed, guarded against zero, negative,
// and denormal elapsed times — the shared helper behind every reads/s
// figure, so manifests and /progress never emit NaN or Inf.
func Rate(n float64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return SanitizeFloat(n / elapsed.Seconds())
}

// sortedNames returns the keys of a metric map in stable order (scrape
// output must be diffable between runs).
func sortedNames[M any](m map[string]M) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
