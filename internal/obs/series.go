package obs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the flight recorder: a self-scraper that snapshots the
// registry on a fixed interval and appends delta-encoded samples to a
// compact binary series file written alongside the run manifest, plus the
// loader that reconstructs the absolute per-metric time series. The point is
// to answer "when did this run degrade" after the process is gone, without
// deploying an external Prometheus (the ROADMAP's continuous-scrape item).
//
// On-disk format (all integers varint; `s` = zig-zag signed, `u` = unsigned):
//
//	header:  "MGSR" | version u8 (=2) | s start-unix-nanos | s nominal-interval-nanos
//	sample:  'S' | s dt-nanos (since previous sample; first since start)
//	         | u #counters | #counters x (nameRef, s delta)
//	         | u #gauges   | #gauges   x (nameRef, s absolute-value)
//	         | u #hists    | #hists    x (nameRef, s d-count, s d-sum-nanos,
//	                                      u #buckets, #buckets x (u bit, s d-count))
//	         | u #extra    | #extra    x (kind u8, u byte-length, payload)   [v2+]
//	nameRef: u id; id 0 declares a new name (u byte-length + bytes) and
//	         assigns it the next id (1-based, per metric kind).
//
// Counters and histograms are delta-encoded (a metric absent from a sample
// means "unchanged"), gauges carry absolute values when they change, and
// sample timestamps are explicit, so retention compaction (dropping every
// other sample once the cap is hit) never loses the ability to reconstruct
// exact absolute values at every retained point.
//
// The v2 trailing extra-section list is the forward-compat hook: each extra
// section is a (kind byte, length, payload) triple, so a reader that does
// not know a future metric kind skips its payload by length and keeps
// decoding — an unknown kind is not a torn file (Truncated stays false).
// v2 writers currently always emit zero extra sections; v1 files (no extra
// list) still load.

// seriesMagic opens every series file.
const seriesMagic = "MGSR"

// seriesVersion is the current format version. v2 added the per-sample
// extra-section list (and the runtime_* telemetry rode along in the ordinary
// kinds); v1 files remain loadable.
const seriesVersion = 2

// Default self-scrape cadence and retention. At the default interval the cap
// covers ~17 minutes at full resolution; each compaction halves resolution
// and doubles the covered span, flight-recorder style.
const (
	DefaultSeriesInterval   = 250 * time.Millisecond
	DefaultSeriesMaxSamples = 4096
)

// metric-kind indices for the per-kind name dictionaries.
const (
	kindCounter = iota
	kindGauge
	kindHist
	numKinds
)

// rawBucket is one occupied log2 bucket in a raw scrape (sparse form).
type rawBucket struct {
	bit int
	n   int64
}

// rawHist is a histogram's exact merged state at one scrape.
type rawHist struct {
	count   int64
	sum     int64 // nanoseconds
	buckets []rawBucket
}

// rawSample is one exact scrape of the registry, in absolute terms. The
// recorder keeps absolute samples in memory (delta encoding happens at write
// time), which makes retention compaction trivially lossless for the
// retained points.
type rawSample struct {
	t        time.Time
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]rawHist
}

// rawScrape captures the registry's exact state: integer counters and sums,
// sparse buckets — no float quantile approximations, so the series file can
// round-trip losslessly.
func (r *Registry) rawScrape(t time.Time) rawSample {
	sm := rawSample{
		t:        t,
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		hists:    make(map[string]rawHist),
	}
	if r == nil {
		return sm
	}
	r.updateDerived()
	r.mu.Lock()
	counters := make([]namedCounter, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, namedCounter{name, c})
	}
	gauges := make([]namedGauge, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, namedGauge{name, g})
	}
	hists := make([]namedHist, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, namedHist{name, h})
	}
	r.mu.Unlock()
	for _, c := range counters {
		sm.counters[c.name] = c.c.Value()
	}
	for _, g := range gauges {
		sm.gauges[g.name] = g.g.Value()
	}
	for _, h := range hists {
		sm.hists[h.name] = h.h.raw()
	}
	return sm
}

// raw merges the shards into exact sparse form (safe concurrently with
// Observe, like Stats).
func (h *Histogram) raw() rawHist {
	var merged [histBuckets]int64
	var rh rawHist
	for i := range h.shards {
		s := &h.shards[i]
		rh.count += atomic.LoadInt64(&s.count)
		rh.sum += atomic.LoadInt64(&s.sum)
		for b := 0; b < histBuckets; b++ {
			merged[b] += atomic.LoadInt64(&s.buckets[b])
		}
	}
	for b := 0; b < histBuckets; b++ {
		if merged[b] > 0 {
			rh.buckets = append(rh.buckets, rawBucket{bit: b, n: merged[b]})
		}
	}
	return rh
}

// SeriesRecorder is the self-scraper: a background goroutine samples the
// registry every interval, appends the delta-encoded sample to the series
// file, and rotates the slow-read window so exemplar windows line up with
// series samples. Retention is bounded: past maxSamples the recorder keeps
// every other sample (newest always retained) and rewrites the file, halving
// resolution instead of growing without bound.
type SeriesRecorder struct {
	reg      *Registry
	slow     *SlowReads
	traces   *ReqTracer
	runtime  *runtimeSampler
	path     string
	interval time.Duration
	max      int
	start    time.Time

	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	enc     *seriesEnc
	samples []rawSample
	err     error // first write error; reported by Stop

	stopOnce sync.Once
	quit     chan struct{}
	done     chan struct{}
}

// StartSeries opens path, writes the header, takes an immediate baseline
// sample, and starts the scrape loop. interval ≤0 defaults to
// DefaultSeriesInterval, maxSamples ≤0 to DefaultSeriesMaxSamples. slow and
// traces may be nil; when present their windows are rotated once per tick, so
// exemplar and request-trace windows line up with series samples. Every tick
// also samples the Go runtime's own metrics into the registry as runtime_*
// series (GC cycles/CPU/pauses, heap live and goal, goroutines, scheduler
// latency), so the archive regresses runtime behavior cross-run exactly like
// the pipeline's metrics. Stop flushes the final sample and closes the file.
func StartSeries(reg *Registry, slow *SlowReads, traces *ReqTracer, path string, interval time.Duration, maxSamples int) (*SeriesRecorder, error) {
	if reg == nil {
		return nil, errors.New("obs: series recording needs a registry")
	}
	if interval <= 0 {
		interval = DefaultSeriesInterval
	}
	if maxSamples <= 0 {
		maxSamples = DefaultSeriesMaxSamples
	}
	if maxSamples < 2 {
		maxSamples = 2
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := &SeriesRecorder{
		reg:      reg,
		slow:     slow,
		traces:   traces,
		runtime:  newRuntimeSampler(reg),
		path:     path,
		interval: interval,
		max:      maxSamples,
		start:    time.Now(),
		f:        f,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.bw = bufio.NewWriter(f)
	s.enc = newSeriesEnc(s.bw, s.start)
	if err := s.enc.header(s.interval); err != nil {
		f.Close()
		return nil, err
	}
	s.sampleNow(s.start)
	//vetgiraffe:ignore nakedgoroutine loop exits via s.quit and signals s.done; Stop closes and waits
	go s.loop()
	return s, nil
}

// Path returns the series file path.
func (s *SeriesRecorder) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

func (s *SeriesRecorder) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sampleNow(time.Now())
		case <-s.quit:
			return
		}
	}
}

// sampleNow takes one scrape at time now and persists it. Split from the
// loop so tests can drive deterministic timelines.
func (s *SeriesRecorder) sampleNow(now time.Time) {
	// Refresh the runtime_* gauges and counters first so this scrape (and
	// the manifest snapshot taken after Stop's final sample) sees them.
	s.runtime.sample()
	sm := s.reg.rawScrape(now)
	s.slow.Rotate()
	s.traces.Rotate()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.samples = append(s.samples, sm)
	if len(s.samples) > s.max {
		s.compactLocked()
		s.err = s.rewriteLocked()
		return
	}
	if err := s.enc.sample(sm); err != nil {
		s.err = err
		return
	}
	s.err = s.bw.Flush()
}

// compactLocked halves retention by keeping every other sample, counted from
// the newest so the most recent state always survives.
func (s *SeriesRecorder) compactLocked() {
	kept := s.samples[:0]
	n := len(s.samples)
	for i := 0; i < n; i++ {
		if (n-1-i)%2 == 0 {
			kept = append(kept, s.samples[i])
		}
	}
	s.samples = kept
}

// rewriteLocked re-encodes the retained samples from scratch (the delta
// chain and name dictionary are invalid after compaction).
func (s *SeriesRecorder) rewriteLocked() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := s.f.Truncate(0); err != nil {
		return err
	}
	s.bw = bufio.NewWriter(s.f)
	s.enc = newSeriesEnc(s.bw, s.start)
	if err := s.enc.header(s.interval); err != nil {
		return err
	}
	for _, sm := range s.samples {
		if err := s.enc.sample(sm); err != nil {
			return err
		}
	}
	return s.bw.Flush()
}

// Stop takes a final sample, stops the scrape loop, and closes the file. It
// returns the first error the recorder hit, so a silently failing flight
// recorder cannot masquerade as a healthy one. Idempotent and nil-safe.
func (s *SeriesRecorder) Stop() error {
	if s == nil {
		return nil
	}
	s.stopOnce.Do(func() {
		close(s.quit)
		<-s.done
		s.sampleNow(time.Now())
		s.mu.Lock()
		if err := s.f.Close(); err != nil && s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// seriesEnc delta-encodes samples against the previous one.
type seriesEnc struct {
	w       *bufio.Writer
	start   time.Time
	prevT   time.Time
	prev    rawSample
	dict    [numKinds]map[string]uint64
	scratch [binary.MaxVarintLen64]byte
}

func newSeriesEnc(w *bufio.Writer, start time.Time) *seriesEnc {
	e := &seriesEnc{w: w, start: start, prevT: start}
	for k := range e.dict {
		e.dict[k] = make(map[string]uint64)
	}
	return e
}

func (e *seriesEnc) header(interval time.Duration) error {
	if _, err := e.w.WriteString(seriesMagic); err != nil {
		return err
	}
	if err := e.w.WriteByte(seriesVersion); err != nil {
		return err
	}
	if err := e.svarint(e.start.UnixNano()); err != nil {
		return err
	}
	return e.svarint(int64(interval))
}

func (e *seriesEnc) uvarint(v uint64) error {
	n := binary.PutUvarint(e.scratch[:], v)
	_, err := e.w.Write(e.scratch[:n])
	return err
}

func (e *seriesEnc) svarint(v int64) error {
	n := binary.PutVarint(e.scratch[:], v)
	_, err := e.w.Write(e.scratch[:n])
	return err
}

// nameRef writes the dictionary reference for name, declaring it on first
// use.
func (e *seriesEnc) nameRef(kind int, name string) error {
	if id, ok := e.dict[kind][name]; ok {
		return e.uvarint(id)
	}
	if err := e.uvarint(0); err != nil {
		return err
	}
	if err := e.uvarint(uint64(len(name))); err != nil {
		return err
	}
	if _, err := e.w.WriteString(name); err != nil {
		return err
	}
	e.dict[kind][name] = uint64(len(e.dict[kind]) + 1)
	return nil
}

// sample writes one delta-encoded sample and advances the encoder state.
func (e *seriesEnc) sample(sm rawSample) error {
	if err := e.w.WriteByte('S'); err != nil {
		return err
	}
	if err := e.svarint(sm.t.Sub(e.prevT).Nanoseconds()); err != nil {
		return err
	}

	// Counters: non-zero deltas only.
	type cdelta struct {
		name string
		d    int64
	}
	var cds []cdelta
	for _, name := range sortedNames(sm.counters) {
		var prev int64
		if e.prev.counters != nil {
			prev = e.prev.counters[name]
		}
		if d := sm.counters[name] - prev; d != 0 {
			cds = append(cds, cdelta{name, d})
		}
	}
	if err := e.uvarint(uint64(len(cds))); err != nil {
		return err
	}
	for _, cd := range cds {
		if err := e.nameRef(kindCounter, cd.name); err != nil {
			return err
		}
		if err := e.svarint(cd.d); err != nil {
			return err
		}
	}

	// Gauges: absolute values, written only when changed (or first seen with
	// a non-zero value).
	var gds []cdelta
	for _, name := range sortedNames(sm.gauges) {
		v := sm.gauges[name]
		prev, seen := int64(0), false
		if e.prev.gauges != nil {
			prev, seen = e.prev.gauges[name]
		}
		if v != prev || (!seen && v != 0) {
			gds = append(gds, cdelta{name, v})
		}
	}
	if err := e.uvarint(uint64(len(gds))); err != nil {
		return err
	}
	for _, gd := range gds {
		if err := e.nameRef(kindGauge, gd.name); err != nil {
			return err
		}
		if err := e.svarint(gd.d); err != nil {
			return err
		}
	}

	// Histograms: count/sum deltas plus sparse bucket deltas.
	type hdelta struct {
		name         string
		dCount, dSum int64
		bucketDeltas []rawBucket
	}
	var hds []hdelta
	for _, name := range sortedNames(sm.hists) {
		cur := sm.hists[name]
		var prev rawHist
		if e.prev.hists != nil {
			prev = e.prev.hists[name]
		}
		hd := hdelta{
			name:   name,
			dCount: cur.count - prev.count,
			dSum:   cur.sum - prev.sum,
		}
		hd.bucketDeltas = diffBuckets(prev.buckets, cur.buckets)
		if hd.dCount != 0 || hd.dSum != 0 || len(hd.bucketDeltas) > 0 {
			hds = append(hds, hd)
		}
	}
	if err := e.uvarint(uint64(len(hds))); err != nil {
		return err
	}
	for _, hd := range hds {
		if err := e.nameRef(kindHist, hd.name); err != nil {
			return err
		}
		if err := e.svarint(hd.dCount); err != nil {
			return err
		}
		if err := e.svarint(hd.dSum); err != nil {
			return err
		}
		if err := e.uvarint(uint64(len(hd.bucketDeltas))); err != nil {
			return err
		}
		for _, b := range hd.bucketDeltas {
			if err := e.uvarint(uint64(b.bit)); err != nil {
				return err
			}
			if err := e.svarint(b.n); err != nil {
				return err
			}
		}
	}

	// v2 extra-section list: always present, currently always empty. Future
	// metric kinds append (kind, length, payload) triples here; old readers
	// skip by length.
	if err := e.uvarint(0); err != nil {
		return err
	}

	e.prevT = sm.t
	e.prev = sm
	return nil
}

// diffBuckets returns the sparse per-bucket deltas between two sorted sparse
// bucket lists.
func diffBuckets(prev, cur []rawBucket) []rawBucket {
	var out []rawBucket
	i, j := 0, 0
	for i < len(prev) || j < len(cur) {
		switch {
		case j >= len(cur) || (i < len(prev) && prev[i].bit < cur[j].bit):
			out = append(out, rawBucket{bit: prev[i].bit, n: -prev[i].n})
			i++
		case i >= len(prev) || cur[j].bit < prev[i].bit:
			out = append(out, rawBucket{bit: cur[j].bit, n: cur[j].n})
			j++
		default:
			if d := cur[j].n - prev[i].n; d != 0 {
				out = append(out, rawBucket{bit: cur[j].bit, n: d})
			}
			i++
			j++
		}
	}
	return out
}

// SeriesPoint is one reconstructed absolute sample: cumulative counters,
// gauge levels, and histograms with quantiles recomputed from the cumulative
// buckets (Min/Max are bucket bounds here — the series stores buckets, not
// exact extremes).
type SeriesPoint struct {
	Time       time.Time                 `json:"time"`
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Series is a loaded, reconstructed metric time-series.
type Series struct {
	Start    time.Time
	Interval time.Duration // nominal scrape interval (compaction may have widened real spacing)
	// Truncated reports that the file ended mid-record (a crashed run); the
	// samples before the tear are still valid.
	Truncated bool
	Samples   []SeriesPoint
}

// LoadSeries reads and reconstructs the series file at path.
func LoadSeries(path string) (*Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSeries(f)
	if err != nil {
		return nil, fmt.Errorf("obs: series %s: %w", path, err)
	}
	return s, nil
}

// ReadSeries decodes a series stream and reconstructs the absolute series. A
// stream torn mid-record (the writing process died) yields the samples
// before the tear with Truncated set rather than an error.
func ReadSeries(r io.Reader) (*Series, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(seriesMagic)+1)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	if string(magic[:len(seriesMagic)]) != seriesMagic {
		return nil, fmt.Errorf("bad magic %q", magic[:len(seriesMagic)])
	}
	version := magic[len(seriesMagic)]
	if version < 1 || version > seriesVersion {
		return nil, fmt.Errorf("unsupported series version %d", version)
	}
	startNs, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("reading start: %w", err)
	}
	intervalNs, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("reading interval: %w", err)
	}
	s := &Series{
		Start:    time.Unix(0, startNs),
		Interval: time.Duration(intervalNs),
	}

	dec := &seriesDec{r: br, version: version}
	t := s.Start
	counters := make(map[string]int64)
	gauges := make(map[string]int64)
	hists := make(map[string]*decHist)
	for {
		marker, err := br.ReadByte()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		if marker != 'S' {
			return nil, fmt.Errorf("bad sample marker 0x%02x", marker)
		}
		dt, c, g, h, err := dec.sample()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				s.Truncated = true
				return s, nil
			}
			return nil, err
		}
		t = t.Add(time.Duration(dt))
		for name, d := range c {
			counters[name] += d
		}
		for name, v := range g {
			gauges[name] = v
		}
		for name, hd := range h {
			dh := hists[name]
			if dh == nil {
				dh = &decHist{}
				hists[name] = dh
			}
			dh.count += hd.dCount
			dh.sum += hd.dSum
			for _, b := range hd.buckets {
				if b.bit >= 0 && b.bit < histBuckets {
					dh.buckets[b.bit] += b.n
				}
			}
		}
		pt := SeriesPoint{
			Time:       t,
			Counters:   make(map[string]int64, len(counters)),
			Gauges:     make(map[string]int64, len(gauges)),
			Histograms: make(map[string]HistogramStats, len(hists)),
		}
		for name, v := range counters {
			pt.Counters[name] = v
		}
		for name, v := range gauges {
			pt.Gauges[name] = v
		}
		for name, dh := range hists {
			pt.Histograms[name] = statsFromMerged(dh.count, dh.sum, &dh.buckets)
		}
		s.Samples = append(s.Samples, pt)
	}
}

// decHist accumulates one histogram's absolute state during decode.
type decHist struct {
	count, sum int64
	buckets    [histBuckets]int64
}

// histSampleDelta is one histogram's decoded per-sample delta.
type histSampleDelta struct {
	dCount, dSum int64
	buckets      []rawBucket
}

// seriesDec decodes sample records, maintaining the per-kind dictionaries.
type seriesDec struct {
	r       *bufio.Reader
	version byte
	dict    [numKinds][]string
}

// name resolves a nameRef, learning new names.
func (d *seriesDec) name(kind int) (string, error) {
	id, err := binary.ReadUvarint(d.r)
	if err != nil {
		return "", err
	}
	if id == 0 {
		n, err := binary.ReadUvarint(d.r)
		if err != nil {
			return "", err
		}
		if n > 1<<16 {
			return "", fmt.Errorf("metric name length %d too large", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(d.r, buf); err != nil {
			return "", err
		}
		d.dict[kind] = append(d.dict[kind], string(buf))
		return string(buf), nil
	}
	if id > uint64(len(d.dict[kind])) {
		return "", fmt.Errorf("dangling name ref %d", id)
	}
	return d.dict[kind][id-1], nil
}

// sample decodes the body of one sample record (the caller consumed the
// marker byte).
func (d *seriesDec) sample() (dt int64, counters, gauges map[string]int64, hists map[string]histSampleDelta, err error) {
	dt, err = binary.ReadVarint(d.r)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	counters = make(map[string]int64, n)
	for i := uint64(0); i < n; i++ {
		name, err := d.name(kindCounter)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		v, err := binary.ReadVarint(d.r)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		counters[name] = v
	}
	n, err = binary.ReadUvarint(d.r)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	gauges = make(map[string]int64, n)
	for i := uint64(0); i < n; i++ {
		name, err := d.name(kindGauge)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		v, err := binary.ReadVarint(d.r)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		gauges[name] = v
	}
	n, err = binary.ReadUvarint(d.r)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	hists = make(map[string]histSampleDelta, n)
	for i := uint64(0); i < n; i++ {
		name, err := d.name(kindHist)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		var hd histSampleDelta
		if hd.dCount, err = binary.ReadVarint(d.r); err != nil {
			return 0, nil, nil, nil, err
		}
		if hd.dSum, err = binary.ReadVarint(d.r); err != nil {
			return 0, nil, nil, nil, err
		}
		nb, err := binary.ReadUvarint(d.r)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		if nb > histBuckets {
			return 0, nil, nil, nil, fmt.Errorf("histogram %s: %d bucket deltas (max %d)", name, nb, histBuckets)
		}
		for j := uint64(0); j < nb; j++ {
			bit, err := binary.ReadUvarint(d.r)
			if err != nil {
				return 0, nil, nil, nil, err
			}
			if bit >= histBuckets {
				return 0, nil, nil, nil, fmt.Errorf("histogram %s: bucket bit %d out of range", name, bit)
			}
			v, err := binary.ReadVarint(d.r)
			if err != nil {
				return 0, nil, nil, nil, err
			}
			hd.buckets = append(hd.buckets, rawBucket{bit: int(bit), n: v})
		}
		hists[name] = hd
	}
	if d.version >= 2 {
		if err := d.skipExtraSections(); err != nil {
			return 0, nil, nil, nil, err
		}
	}
	return dt, counters, gauges, hists, nil
}

// skipExtraSections consumes the v2 trailing extra-section list. Sections
// with a metric kind this reader does not know are skipped by their length —
// forward compatibility, not corruption, so the caller's Truncated logic
// never fires on them (a genuinely torn payload still surfaces as
// io.ErrUnexpectedEOF).
func (d *seriesDec) skipExtraSections() error {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if _, err := d.r.ReadByte(); err != nil { // kind byte (no known kinds yet)
			return noteEOF(err)
		}
		size, err := binary.ReadUvarint(d.r)
		if err != nil {
			return noteEOF(err)
		}
		if size > 1<<24 {
			return fmt.Errorf("extra section of %d bytes too large", size)
		}
		if _, err := io.CopyN(io.Discard, d.r, int64(size)); err != nil {
			return noteEOF(err)
		}
	}
	return nil
}

// noteEOF maps a clean io.EOF inside a record to io.ErrUnexpectedEOF so the
// torn-tail detection in ReadSeries treats it as a truncation, matching how
// binary.ReadUvarint already reports mid-record ends.
func noteEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
