package obs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestManifestCapturesEnvironmentAndFlags(t *testing.T) {
	m := NewManifest("testtool")
	if m.Tool != "testtool" || m.GoVersion != runtime.Version() ||
		m.GOMAXPROCS != runtime.GOMAXPROCS(0) || m.Start.IsZero() {
		t.Fatalf("manifest missing environment capture: %+v", m)
	}
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.Int("threads", 4, "")
	fs.String("sched", "dynamic", "")
	if err := fs.Parse([]string{"-threads", "8"}); err != nil {
		t.Fatal(err)
	}
	m.AddFlagSet(fs)
	if m.Flags["threads"] != "8" {
		t.Errorf("Flags[threads] = %q, want the parsed value 8", m.Flags["threads"])
	}
	if m.Flags["sched"] != "dynamic" {
		t.Errorf("Flags[sched] = %q, want the default to be recorded too", m.Flags["sched"])
	}
}

func TestManifestWorkloadHash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.bin")
	content := []byte("deterministic workload bytes")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewManifest("t")
	if err := m.AddWorkload("seeds", path); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(content)
	w := m.Workloads[0]
	if w.Label != "seeds" || w.Bytes != int64(len(content)) || w.SHA256 != hex.EncodeToString(sum[:]) {
		t.Fatalf("workload record wrong: %+v", w)
	}
	if err := m.AddWorkload("missing", filepath.Join(dir, "nope")); err == nil {
		t.Fatal("AddWorkload on a missing file should error")
	}
}

func TestManifestFinishAndWriteRoundTrip(t *testing.T) {
	reg := NewRegistry(1)
	reg.Counter("reads_total").Add(0, 5)
	reg.Histogram("lat_seconds").Observe(0, time.Millisecond)
	m := NewManifest("t")
	m.AddResult("out.csv")
	m.Finish(reg)
	if m.End.Before(m.Start) || m.ElapsedSeconds < 0 {
		t.Fatalf("Finish produced an inverted interval: %+v", m)
	}
	if m.Metrics == nil || m.Metrics.Counters["reads_total"] != 5 {
		t.Fatalf("Finish did not attach the metric snapshot: %+v", m.Metrics)
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written manifest is not valid JSON: %v", err)
	}
	if back.Tool != "t" || back.Results[0] != "out.csv" || back.Metrics.Counters["reads_total"] != 5 {
		t.Fatalf("round-tripped manifest lost fields: %+v", back)
	}
}

func TestManifestEncodeSurvivesNonFiniteFloats(t *testing.T) {
	m := NewManifest("t")
	m.Finish(nil)
	m.ElapsedSeconds = math.NaN()
	m.Metrics = &Snapshot{Histograms: map[string]HistogramStats{
		"bad": {Mean: math.Inf(1), P50: math.NaN()},
	}}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("Encode must sanitize non-finite floats, got: %v", err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.ElapsedSeconds != 0 || back.Metrics.Histograms["bad"].Mean != 0 {
		t.Fatalf("sanitization did not zero non-finite values: %+v", back)
	}
}

func TestManifestFinishNilRegistry(t *testing.T) {
	m := NewManifest("t")
	m.Finish(nil)
	if m.Metrics != nil {
		t.Fatal("nil registry must leave the metrics section empty")
	}
}
