package obs

import (
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

func tid(n uint64) trace.ID { return trace.ID{Hi: 1, Lo: n} }

// durs lists the sampled 2xx durations (nanos), ascending.
func sampledDurs(t *testing.T, snap ReqTraceSnapshot) []int64 {
	t.Helper()
	var out []int64
	for _, tr := range snap.Traces {
		if tr.Status >= 200 && tr.Status < 300 {
			out = append(out, tr.DurNanos)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestReqTracerTopKByLatency(t *testing.T) {
	tr := NewReqTracer(1, 3, 4, nil)
	for i, dur := range []int64{10, 40, 20, 30, 5, 35} {
		rt := tr.Start(tid(uint64(i+1)), "c")
		tr.finishDur(rt, 200, dur)
	}
	got := sampledDurs(t, tr.Snapshot())
	want := []int64{30, 35, 40}
	if len(got) != len(want) {
		t.Fatalf("sampled %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sampled %v, want %v", got, want)
		}
	}
}

func TestReqTracerRetainsAllErrors(t *testing.T) {
	reg := NewRegistry(2)
	tr := NewReqTracer(2, 1, 8, reg)
	statuses := []int{429, 504, 500, 429, 503, 400, 504, 429}
	ids := make(map[trace.ID]int)
	for i, st := range statuses {
		id := tid(uint64(i + 1))
		ids[id] = st
		rt := tr.Start(id, "c")
		tr.finishDur(rt, st, int64(i))
	}
	snap := tr.Snapshot()
	if len(snap.Traces) != len(statuses) {
		t.Fatalf("retained %d traces, want all %d errors", len(snap.Traces), len(statuses))
	}
	for _, s := range snap.Traces {
		if want, ok := ids[s.TraceID]; !ok || s.Status != want {
			t.Fatalf("trace %v status %d, want %d", s.TraceID, s.Status, want)
		}
	}
	if snap.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", snap.Dropped)
	}
	if got := reg.Counter(MetricServeTraceErrors).Value(); got != int64(len(statuses)) {
		t.Fatalf("%s = %d, want %d", MetricServeTraceErrors, got, len(statuses))
	}
}

func TestReqTracerErrorCapDropsVisibly(t *testing.T) {
	tr := NewReqTracer(1, 1, 2, nil)
	for i := 0; i < 5; i++ {
		rt := tr.Start(tid(uint64(i+1)), "c")
		tr.finishDur(rt, 429, 1)
	}
	snap := tr.Snapshot()
	if len(snap.Traces) != 2 {
		t.Fatalf("retained %d error traces, want cap 2", len(snap.Traces))
	}
	if snap.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", snap.Dropped)
	}
}

func TestReqTracerRotateFoldsIntoRun(t *testing.T) {
	tr := NewReqTracer(1, 2, 4, nil)
	a := tr.Start(tid(1), "c")
	tr.finishDur(a, 200, 100)
	e := tr.Start(tid(2), "c")
	tr.finishDur(e, 504, 50)
	tr.Rotate()
	// New window: a faster 2xx must still be sampled (floor reset), and the
	// rotated traces must still appear in the snapshot.
	b := tr.Start(tid(3), "c")
	tr.finishDur(b, 200, 60)
	snap := tr.Snapshot()
	if len(snap.Traces) != 3 {
		t.Fatalf("snapshot has %d traces after rotate, want 3", len(snap.Traces))
	}
	seen := map[trace.ID]bool{}
	for _, s := range snap.Traces {
		seen[s.TraceID] = true
	}
	for _, id := range []trace.ID{tid(1), tid(2), tid(3)} {
		if !seen[id] {
			t.Fatalf("trace %v missing after rotate; snapshot %+v", id, snap.Traces)
		}
	}
}

func TestReqTracerSpansAndSummary(t *testing.T) {
	tr := NewReqTracer(1, 4, 4, nil)
	rt := tr.Start(tid(7), "alice")
	rt.SetReads(9)
	now := tr.Epoch().Add(time.Millisecond)
	rt.AddSpan(SpanAdmit, -1, now, 10*time.Microsecond)
	rt.AddSpan(SpanQueueWait, 3, now, 20*time.Microsecond)
	rt.AddMapSpan(3, now, 30*time.Microsecond, &SubBatch{
		Trace:           tid(7),
		ClusterNanos:    11,
		ExtendNanos:     22,
		CacheBuildNanos: 33,
	}, true)
	rt.AddSpan(SpanEmit, -1, now, 5*time.Microsecond)
	tr.finishDur(rt, 504, int64(2*time.Millisecond))

	snap := tr.Snapshot()
	if len(snap.Traces) != 1 {
		t.Fatalf("snapshot has %d traces, want 1", len(snap.Traces))
	}
	s := snap.Traces[0]
	if s.Client != "alice" || s.Reads != 9 || s.Status != 504 {
		t.Fatalf("trace header = %+v", s)
	}
	wantNames := []string{SpanAdmit, SpanQueueWait, SpanMapSubbatch, SpanEmit}
	if len(s.Spans) != len(wantNames) {
		t.Fatalf("spans %+v, want %d", s.Spans, len(wantNames))
	}
	for i, name := range wantNames {
		if s.Spans[i].Name != name {
			t.Fatalf("span[%d] = %q, want %q", i, s.Spans[i].Name, name)
		}
	}
	m := s.Spans[2]
	if m.ClusterNanos != 11 || m.ExtendNanos != 22 || m.CacheBuildNanos != 33 || !m.Canceled {
		t.Fatalf("map span kernel fields = %+v", m)
	}

	sum := tr.Summary()
	if sum.Sampled != 1 || sum.Errors != 1 || sum.ByStatus["504"] != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.SlowestID != tid(7) || sum.SlowestMs != 2 {
		t.Fatalf("summary slowest = %v %.3fms", sum.SlowestID, sum.SlowestMs)
	}
}

func TestReqTracerNilSafe(t *testing.T) {
	var tr *ReqTracer
	rt := tr.Start(tid(1), "c")
	if rt != nil {
		t.Fatal("nil tracer returned a trace")
	}
	rt.SetClient("x")
	rt.SetReads(1)
	rt.AddSpan(SpanAdmit, -1, time.Time{}, 0)
	rt.AddMapSpan(0, time.Time{}, 0, nil, false)
	tr.Finish(rt, 200)
	tr.Rotate()
	if snap := tr.Snapshot(); len(snap.Traces) != 0 {
		t.Fatal("nil tracer snapshot non-empty")
	}
	if tr.Summary() != nil {
		t.Fatal("nil tracer summary non-nil")
	}
	if tr.K() != 0 || rt.ID() != (trace.ID{}) {
		t.Fatal("nil accessors")
	}
}

// TestReqTracerNotSampledPathZeroAlloc locks the tentpole's fast-path
// guarantee: once the reservoir floor is set and the free list warm, a full
// Start → AddSpan×4 → Finish(2xx) cycle that loses the tail race allocates
// nothing.
func TestReqTracerNotSampledPathZeroAlloc(t *testing.T) {
	tr := NewReqTracer(1, 1, 1, nil)
	// Fill the k=1 reservoir with an unbeatably slow request so the floor
	// gate rejects everything the measured loop finishes.
	warm := tr.Start(tid(1), "w")
	tr.finishDur(warm, 200, int64(time.Hour))

	id := tid(2)
	epoch := tr.Epoch()
	allocs := testing.AllocsPerRun(1000, func() {
		rt := tr.Start(id, "client")
		rt.SetReads(64)
		rt.AddSpan(SpanAdmit, -1, epoch, time.Microsecond)
		rt.AddSpan(SpanQueueWait, 0, epoch, time.Microsecond)
		rt.AddMapSpan(0, epoch, time.Microsecond, &SubBatch{Trace: id}, false)
		rt.AddSpan(SpanEmit, -1, epoch, time.Microsecond)
		tr.Finish(rt, 200)
	})
	if allocs != 0 {
		t.Fatalf("not-sampled request path allocates %.1f/op, want 0", allocs)
	}
}

// TestReqTracerStress exercises concurrent finishers against scrapes and
// rotations; run under -race this is the sampler's publication-safety proof.
func TestReqTracerStress(t *testing.T) {
	tr := NewReqTracer(4, 8, 16, NewRegistry(4))
	const workers = 8
	const perWorker = 300
	var wg, scraper sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := tr.Snapshot()
			for _, s := range snap.Traces {
				_ = s.Spans
			}
			tr.Rotate()
			_ = tr.Summary()
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := trace.ID{Hi: uint64(w + 1), Lo: uint64(i + 1)}
				rt := tr.Start(id, "c")
				rt.AddSpan(SpanAdmit, -1, time.Now(), time.Microsecond)
				var inner sync.WaitGroup
				inner.Add(1)
				go func() {
					defer inner.Done()
					rt.AddSpan(SpanQueueWait, w, time.Now(), time.Microsecond)
					rt.AddMapSpan(w, time.Now(), time.Microsecond, &SubBatch{Trace: id}, false)
				}()
				inner.Wait()
				switch i % 4 {
				case 0:
					tr.finishDur(rt, 429, int64(i))
				case 1:
					tr.finishDur(rt, 504, int64(i))
				default:
					tr.finishDur(rt, 200, int64(i*w))
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()
	snap := tr.Snapshot()
	if len(snap.Traces) == 0 {
		t.Fatal("stress run retained no traces")
	}
}
