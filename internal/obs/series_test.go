package obs

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// startTestSeries returns a recorder whose ticker never fires, so tests
// drive the timeline by calling sampleNow directly.
func startTestSeries(t *testing.T, reg *Registry, slow *SlowReads, maxSamples int) (*SeriesRecorder, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.series")
	s, err := StartSeries(reg, slow, nil, path, time.Hour, maxSamples)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestSeriesRoundTrip(t *testing.T) {
	reg := NewRegistry(2)
	reads := reg.Counter(MetricPipelineReads)
	inFlight := reg.Gauge(MetricPipelineInFlight)
	lat := reg.Histogram(MetricStageMap)

	s, path := startTestSeries(t, reg, nil, 0)
	base := s.start

	// Three deterministic mutations, each followed by a scrape; remember the
	// exact expected absolute state after each.
	type state struct {
		reads    int64
		inFlight int64
		lat      HistogramStats
	}
	var want []state
	snap := func() {
		want = append(want, state{
			reads:    reads.Value(),
			inFlight: inFlight.Value(),
			lat:      lat.Stats(),
		})
	}
	snap() // the initial sample taken by StartSeries

	reads.Add(0, 100)
	inFlight.Set(0, 4)
	lat.Observe(0, 2*time.Millisecond)
	s.sampleNow(base.Add(1 * time.Second))
	snap()

	reads.Add(1, 50)
	lat.Observe(1, 3*time.Millisecond)
	lat.Observe(1, 40*time.Microsecond)
	s.sampleNow(base.Add(2 * time.Second))
	snap()

	// A quiet tick: nothing changed, the sample should still round-trip.
	s.sampleNow(base.Add(3 * time.Second))
	snap()

	inFlight.Set(0, 0)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	snap() // Stop's final sample

	got, err := LoadSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Truncated {
		t.Fatal("clean series loaded as truncated")
	}
	if got.Interval != time.Hour {
		t.Errorf("Interval = %v, want %v", got.Interval, time.Hour)
	}
	if len(got.Samples) != len(want) {
		t.Fatalf("loaded %d samples, want %d", len(got.Samples), len(want))
	}
	for i, w := range want {
		pt := got.Samples[i]
		// Times must advance between the driven samples (the final Stop
		// sample is stamped with the real clock, behind our synthetic
		// future timeline, so it is excluded).
		if i > 0 && i < len(want)-1 && !pt.Time.After(got.Samples[i-1].Time) {
			t.Errorf("sample %d time %v not after previous %v", i, pt.Time, got.Samples[i-1].Time)
		}
		if v := pt.Counters[MetricPipelineReads]; v != w.reads {
			t.Errorf("sample %d reads = %d, want %d", i, v, w.reads)
		}
		if v := pt.Gauges[MetricPipelineInFlight]; v != w.inFlight {
			t.Errorf("sample %d in-flight = %d, want %d", i, v, w.inFlight)
		}
		h := pt.Histograms[MetricStageMap]
		// The series stores exact counts, sums, and buckets; quantiles are
		// recomputed from them, so everything except the exact min/max (which
		// the archive intentionally quantizes to bucket bounds) must match a
		// live scrape bit-for-bit.
		if h.Count != w.lat.Count || h.SumSeconds != w.lat.SumSeconds {
			t.Errorf("sample %d hist count/sum = %d/%g, want %d/%g",
				i, h.Count, h.SumSeconds, w.lat.Count, w.lat.SumSeconds)
		}
		if h.P50 != w.lat.P50 || h.P90 != w.lat.P90 || h.P99 != w.lat.P99 {
			t.Errorf("sample %d hist quantiles = %g/%g/%g, want %g/%g/%g",
				i, h.P50, h.P90, h.P99, w.lat.P50, w.lat.P90, w.lat.P99)
		}
		if !reflect.DeepEqual(h.Buckets, w.lat.Buckets) {
			t.Errorf("sample %d hist buckets = %+v, want %+v", i, h.Buckets, w.lat.Buckets)
		}
	}

	// A second Stop is a no-op reporting the same (nil) error.
	if err := s.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

func TestSeriesCompaction(t *testing.T) {
	reg := NewRegistry(1)
	reads := reg.Counter(MetricPipelineReads)
	const maxSamples = 4
	s, path := startTestSeries(t, reg, nil, maxSamples)
	base := s.start

	// 12 ticks, each adding 10 reads: retention must stay bounded while the
	// retained samples keep exact absolute values, and the newest sample must
	// always survive.
	for i := 1; i <= 12; i++ {
		reads.Add(0, 10)
		s.sampleNow(base.Add(time.Duration(i) * time.Second))
	}
	finalReads := reads.Value()
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) > maxSamples {
		t.Fatalf("retention failed: %d samples on disk, cap %d", len(got.Samples), maxSamples)
	}
	last := got.Samples[len(got.Samples)-1]
	if v := last.Counters[MetricPipelineReads]; v != finalReads {
		t.Errorf("newest sample reads = %d, want %d (newest must survive compaction)", v, finalReads)
	}
	// Every retained sample must carry an exact absolute value: counters
	// moved in multiples of 10, so any reconstructed value must too.
	for i, pt := range got.Samples {
		if v := pt.Counters[MetricPipelineReads]; v%10 != 0 {
			t.Errorf("sample %d reads = %d, not a multiple of 10: compaction corrupted deltas", i, v)
		}
		if i > 0 && pt.Counters[MetricPipelineReads] < got.Samples[i-1].Counters[MetricPipelineReads] {
			t.Errorf("sample %d reads went backwards", i)
		}
	}
}

func TestSeriesTruncatedTail(t *testing.T) {
	reg := NewRegistry(1)
	c := reg.Counter(MetricPipelineReads)
	s, path := startTestSeries(t, reg, nil, 0)
	base := s.start
	c.Add(0, 7)
	s.sampleNow(base.Add(time.Second))
	c.Add(0, 5)
	s.sampleNow(base.Add(2 * time.Second))
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-record, as a crashed writer would.
	torn := filepath.Join(t.TempDir(), "torn.series")
	if err := os.WriteFile(torn, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSeries(torn)
	if err != nil {
		t.Fatalf("torn series must still load: %v", err)
	}
	if !got.Truncated {
		t.Error("torn series not flagged Truncated")
	}
	if len(got.Samples) == 0 {
		t.Fatal("torn series lost all samples")
	}
	if v := got.Samples[1].Counters[MetricPipelineReads]; v != 7 {
		t.Errorf("sample before the tear reads = %d, want 7", v)
	}
}

func TestSeriesRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.series")
	if err := os.WriteFile(bad, []byte("NOTASERIESFILE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSeries(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := LoadSeries(filepath.Join(dir, "missing.series")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestStartSeriesNilRegistry(t *testing.T) {
	if _, err := StartSeries(nil, nil, nil, filepath.Join(t.TempDir(), "x.series"), 0, 0); err == nil {
		t.Error("nil registry accepted")
	}
	var s *SeriesRecorder
	if err := s.Stop(); err != nil {
		t.Errorf("nil recorder Stop: %v", err)
	}
	if s.Path() != "" {
		t.Error("nil recorder Path")
	}
}

// TestSeriesRuntimeTelemetry: every series tick samples the Go runtime into
// runtime_* series, so GC behavior archives next to the pipeline's metrics.
func TestSeriesRuntimeTelemetry(t *testing.T) {
	reg := NewRegistry(1)
	s, path := startTestSeries(t, reg, nil, 0)
	// Force a GC cycle between ticks so the cumulative counters have a delta
	// to report.
	runtime.GC()
	s.sampleNow(s.start.Add(time.Second))
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	last := got.Samples[len(got.Samples)-1]
	if v := last.Gauges[MetricRuntimeGoroutines]; v <= 0 {
		t.Errorf("%s = %d, want > 0", MetricRuntimeGoroutines, v)
	}
	if v := last.Gauges[MetricRuntimeHeapLive]; v <= 0 {
		t.Errorf("%s = %d, want > 0", MetricRuntimeHeapLive, v)
	}
	if v := last.Gauges[MetricRuntimeHeapGoal]; v <= 0 {
		t.Errorf("%s = %d, want > 0", MetricRuntimeHeapGoal, v)
	}
	if v := last.Counters[MetricRuntimeGCCycles]; v < 1 {
		t.Errorf("%s = %d, want >= 1 after runtime.GC()", MetricRuntimeGCCycles, v)
	}
	if v := last.Counters[MetricRuntimeHeapAllocs]; v <= 0 {
		t.Errorf("%s = %d, want > 0", MetricRuntimeHeapAllocs, v)
	}
}

// TestSeriesUnknownExtraSectionSkipped: a reader must skip extra sections of
// a kind it does not know (a future writer's addition) by length, without
// flagging the series truncated — that is the whole point of the v2
// length-prefixed trailer. A tear *inside* such a section still flags.
func TestSeriesUnknownExtraSectionSkipped(t *testing.T) {
	reg := NewRegistry(1)
	c := reg.Counter(MetricPipelineReads)
	s, path := startTestSeries(t, reg, nil, 0)
	c.Add(0, 7)
	s.sampleNow(s.start.Add(time.Second))
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The final bytes of a clean series are the last sample's extra-section
	// list: a single 0 (uvarint count) from the current writer.
	if data[len(data)-1] != 0 {
		t.Fatalf("final byte = %#x, want 0 (empty extra-section list)", data[len(data)-1])
	}
	// Rewrite it as one section of an unknown kind: count=1, kind=0xAB,
	// length=3, payload "xyz".
	crafted := append(append([]byte{}, data[:len(data)-1]...), 0x01, 0xAB, 0x03, 'x', 'y', 'z')
	future := filepath.Join(t.TempDir(), "future.series")
	if err := os.WriteFile(future, crafted, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSeries(future)
	if err != nil {
		t.Fatalf("series with unknown extra section must load: %v", err)
	}
	if got.Truncated {
		t.Error("unknown extra-section kind flagged Truncated; must be skipped by length")
	}
	if len(got.Samples) != 3 {
		t.Fatalf("loaded %d samples, want 3", len(got.Samples))
	}
	if v := got.Samples[1].Counters[MetricPipelineReads]; v != 7 {
		t.Errorf("sample reads = %d, want 7 (payload skip misaligned the decoder?)", v)
	}

	// Tearing inside the unknown section is a torn tail, not a clean skip.
	torn := filepath.Join(t.TempDir(), "torn.series")
	if err := os.WriteFile(torn, crafted[:len(crafted)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LoadSeries(torn)
	if err != nil {
		t.Fatalf("series torn inside an extra section must still load: %v", err)
	}
	if !got.Truncated {
		t.Error("tear inside an extra section not flagged Truncated")
	}
}

// TestSeriesRotatesSlowWindow pins the window semantics: one scrape tick is
// one exemplar window.
func TestSeriesRotatesSlowWindow(t *testing.T) {
	reg := NewRegistry(1)
	slow := NewSlowReads(1, 2)
	s, _ := startTestSeries(t, reg, slow, 0)
	slow.Offer(0, Exemplar{Read: "a", TotalNanos: 10})
	s.sampleNow(s.start.Add(time.Second))
	if got := len(slow.Window()); got != 0 {
		t.Errorf("window not rotated by the scrape tick: %d exemplars still windowed", got)
	}
	if top := slow.Top(); len(top) != 1 || top[0].Read != "a" {
		t.Errorf("rotated exemplar missing from run view: %+v", top)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
}
