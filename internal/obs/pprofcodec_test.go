package obs

import (
	"bytes"
	"context"
	"reflect"
	"runtime/pprof"
	"testing"
	"time"
)

// testProfile builds a small two-column CPU profile by hand.
func testProfile() *Profile {
	st := []ValueType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}}
	frame := func(fn string, line int64) Frame {
		return Frame{Func: fn, File: "repro/hot.go", Line: line, StartLine: line - 5}
	}
	return &Profile{
		SampleTypes:   st,
		PeriodType:    ValueType{Type: "cpu", Unit: "nanoseconds"},
		Period:        10_000_000,
		TimeNanos:     1700000000_000000000,
		DurationNanos: int64(2 * time.Second),
		Samples: []*Sample{
			{
				Stack:  []Frame{frame("mapRecord", 42), frame("MapBatch", 120), frame("main", 12)},
				Values: []int64{3, 30_000_000},
				Labels: []Label{
					{Key: LabelStage, Str: StageMap},
					{Key: LabelWorker, Str: "0"},
					{Key: "seq", Num: 7, NumUnit: "id"},
				},
			},
			{
				Stack:  []Frame{frame("emitBatch", 88), frame("main", 12)},
				Values: []int64{1, 10_000_000},
				Labels: []Label{{Key: LabelStage, Str: StageEmit}},
			},
			// Unlabeled sample sharing a frame with the first.
			{
				Stack:  []Frame{frame("MapBatch", 120), frame("main", 12)},
				Values: []int64{2, 20_000_000},
			},
		},
	}
}

// TestPProfRoundTrip: encode → parse reproduces the profile exactly —
// frames with call-site and start lines, string and numeric labels, value
// columns, and the header fields PGO and profdiff consume.
func TestPProfRoundTrip(t *testing.T) {
	want := testProfile()
	data, err := want.EncodePProf()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatal("encoded profile is not gzipped")
	}
	got, err := ParsePProf(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// A second round trip must be byte-stable (same tables, same order).
	data2, err := got.EncodePProf()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("re-encoding a parsed profile changed the bytes")
	}
}

// TestParseRuntimeCapture parses an actual runtime/pprof CPU capture,
// proving the hand-rolled reader handles what the runtime really writes
// (packed fields, mappings to skip, inlined frames, goroutine labels).
func TestParseRuntimeCapture(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("CPU profiler unavailable: %v", err)
	}
	// Burn CPU under a stage label so samples have something to attribute.
	pprof.Do(context.Background(), pprof.Labels(LabelStage, StageMap), func(context.Context) {
		deadline := time.Now().Add(300 * time.Millisecond)
		x := 1.0
		for time.Now().Before(deadline) {
			for i := 0; i < 1000; i++ {
				x = x*1.000000001 + 1e-9
			}
		}
		sinkFloat = x
	})
	pprof.StopCPUProfile()

	p, err := ParsePProf(buf.Bytes())
	if err != nil {
		t.Fatalf("parsing a real capture: %v", err)
	}
	var hasCPU bool
	for _, vt := range p.SampleTypes {
		if vt.Type == "cpu" && vt.Unit == "nanoseconds" {
			hasCPU = true
		}
	}
	if !hasCPU {
		t.Fatalf("sample types %+v missing cpu/nanoseconds", p.SampleTypes)
	}
	if p.Period <= 0 {
		t.Errorf("period = %d, want > 0", p.Period)
	}
	if len(p.Samples) == 0 {
		// A starved CI runner can legitimately deliver no SIGPROF ticks;
		// the header checks above still ran against real runtime output.
		t.Log("capture contains no samples (starved runner?); frame checks skipped")
		return
	}
	for _, s := range p.Samples {
		if len(s.Stack) == 0 {
			t.Fatal("sample with empty stack")
		}
		for _, f := range s.Stack {
			if f.Func == "" {
				t.Fatalf("frame with empty function name in %+v", s.Stack)
			}
		}
	}
	// The labeled spin must show up under the map stage.
	byStage := p.StageBreakdown(LabelStage, cpuValueIndex(p))
	if byStage[StageMap] == 0 {
		t.Errorf("no CPU attributed to stage=%s: %+v", StageMap, byStage)
	}
	// And the capture must survive our encoder (the pgo-capture path).
	if _, err := p.EncodePProf(); err != nil {
		t.Fatalf("re-encoding a real capture: %v", err)
	}
}

var sinkFloat float64

// TestMergePProf: identical stacks+labels sum, distinct ones coexist,
// durations add, incompatible sample types refuse.
func TestMergePProf(t *testing.T) {
	a := testProfile()
	b := testProfile()
	merged, err := MergePProf([]*Profile{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Samples) != len(a.Samples) {
		t.Fatalf("merged %d samples, want %d (identical stacks must sum)", len(merged.Samples), len(a.Samples))
	}
	for i, s := range merged.Samples {
		for j, v := range s.Values {
			if want := 2 * a.Samples[i].Values[j]; v != want {
				t.Errorf("sample %d value %d = %d, want %d", i, j, v, want)
			}
		}
	}
	if want := a.DurationNanos + b.DurationNanos; merged.DurationNanos != want {
		t.Errorf("merged duration %d, want %d", merged.DurationNanos, want)
	}

	// A differently-labeled copy of an existing stack stays separate.
	c := testProfile()
	c.Samples = c.Samples[:1]
	c.Samples[0].Labels = []Label{{Key: LabelStage, Str: StageIngest}}
	merged2, err := MergePProf([]*Profile{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged2.Samples) != len(a.Samples)+1 {
		t.Errorf("merged %d samples, want %d (label change must not merge)", len(merged2.Samples), len(a.Samples)+1)
	}

	bad := testProfile()
	bad.SampleTypes = []ValueType{{Type: "alloc_space", Unit: "bytes"}}
	bad.Samples = nil
	if _, err := MergePProf([]*Profile{a, bad}); err == nil {
		t.Error("merging incompatible sample types succeeded")
	}
	if _, err := MergePProf(nil); err == nil {
		t.Error("merging nothing succeeded")
	}
}
