package obs

// Canonical metric names. Every name handed to the Registry must be a
// string literal or a named constant (the metricname analyzer enforces
// this): metric cardinality stays bounded and the /metrics scrape is
// diffable between runs. Instrumented packages share these constants so
// the reporter and tools can find the pipeline's metrics by name.
const (
	// Streaming pipeline (internal/pipeline).
	MetricPipelineReads    = "pipeline_reads_total"
	MetricPipelineBatches  = "pipeline_batches_total"
	MetricPipelineInFlight = "pipeline_in_flight_batches"
	MetricStageIngest      = "pipeline_stage_ingest_seconds"
	MetricStageMap         = "pipeline_stage_map_seconds"
	MetricStageEmit        = "pipeline_stage_emit_seconds"
	MetricBatchLatency     = "pipeline_batch_seconds"

	// Scheduler claim/steal discipline (internal/sched and the streaming
	// claim queue).
	MetricSchedClaims = "sched_claims_total"
	MetricSchedSteals = "sched_steals_total"

	// Derived straggler gauges, recomputed on every scrape from the claim
	// counters' per-worker shards (Registry.SetWorkerShards declares the
	// worker population): max/mean claims per worker and steals/claims,
	// both in parts per thousand so they stay integers.
	MetricSchedClaimImbalance = "sched_claim_imbalance_milli"
	MetricSchedStealShare     = "sched_steal_share_milli"

	// Mapper kernels (internal/core): the paper's two critical functions
	// plus the per-batch CachedGBWT rebuild (§VII-B).
	MetricClusterLatency   = "mapper_cluster_seeds_seconds"
	MetricThresholdLatency = "mapper_process_until_threshold_c_seconds"
	MetricCacheBuild       = "mapper_cache_build_seconds"

	// Streaming seed extraction (internal/giraffe.ExtractSource).
	MetricExtractReads      = "extract_reads_total"
	MetricExtractSeeds      = "extract_seeds_total"
	MetricExtractPreprocess = "extract_preprocess_seconds"
)
