package obs

// Canonical metric names. Every name handed to the Registry must be a
// string literal or a named constant (the metricname analyzer enforces
// this): metric cardinality stays bounded and the /metrics scrape is
// diffable between runs. Instrumented packages share these constants so
// the reporter and tools can find the pipeline's metrics by name.
const (
	// Streaming pipeline (internal/pipeline).
	MetricPipelineReads    = "pipeline_reads_total"
	MetricPipelineBatches  = "pipeline_batches_total"
	MetricPipelineInFlight = "pipeline_in_flight_batches"
	MetricStageIngest      = "pipeline_stage_ingest_seconds"
	MetricStageMap         = "pipeline_stage_map_seconds"
	MetricStageEmit        = "pipeline_stage_emit_seconds"
	MetricBatchLatency     = "pipeline_batch_seconds"

	// Scheduler claim/steal discipline (internal/sched and the streaming
	// claim queue).
	MetricSchedClaims = "sched_claims_total"
	MetricSchedSteals = "sched_steals_total"

	// Derived straggler gauges, recomputed on every scrape from the claim
	// counters' per-worker shards (Registry.SetWorkerShards declares the
	// worker population): max/mean claims per worker and steals/claims,
	// both in parts per thousand so they stay integers.
	MetricSchedClaimImbalance = "sched_claim_imbalance_milli"
	MetricSchedStealShare     = "sched_steal_share_milli"

	// Mapper kernels (internal/core): the paper's two critical functions
	// plus the per-batch CachedGBWT rebuild (§VII-B). Under the epoch
	// discipline MetricCacheBuild covers only the (small) private overflow
	// construction; the shared-epoch build cost lands in
	// MetricCacheBuildShared so the attribution split is visible in
	// obsdiff.
	MetricClusterLatency   = "mapper_cluster_seeds_seconds"
	MetricThresholdLatency = "mapper_process_until_threshold_c_seconds"
	MetricCacheBuild       = "mapper_cache_build_seconds"

	// Epoch-published shared cache (internal/gbwt.SharedBiCache via
	// internal/core): publication count and build latency of the off-path
	// builder, resident record population of the live snapshots, and the
	// shared-vs-private hit split on the read side.
	MetricCacheBuildShared  = "mapper_cache_build_shared_seconds"
	MetricEpochPublishes    = "mapper_epoch_publishes_total"
	MetricEpochResident     = "mapper_epoch_resident_records"
	MetricEpochSharedHits   = "mapper_epoch_shared_hits_total"
	MetricEpochPrivateHits  = "mapper_epoch_private_hits_total"
	MetricEpochDecodeMisses = "mapper_epoch_decode_misses_total"

	// Streaming seed extraction (internal/giraffe.ExtractSource).
	MetricExtractReads      = "extract_reads_total"
	MetricExtractSeeds      = "extract_seeds_total"
	MetricExtractPreprocess = "extract_preprocess_seconds"

	// Serving session (pipeline.Session): the request-scoped view of the
	// mapping pool. Queue depth is the admission-control bound; rejected
	// requests never entered the queue; canceled batches are jobs whose
	// request deadline fired before (skipped entirely) or while (stopped at
	// a record boundary) a worker ran them.
	MetricServeQueueDepth     = "serve_queue_depth_batches"
	MetricServeInFlight       = "serve_in_flight_requests"
	MetricServeRequests       = "serve_requests_total"
	MetricServeReads          = "serve_reads_total"
	MetricServeQueueRejects   = "serve_queue_rejects_total"
	MetricServeCanceled       = "serve_canceled_batches_total"
	MetricServeCanceledReads  = "serve_canceled_reads_total"
	MetricServeServiceLatency = "serve_service_seconds"
	MetricServeQueueWait      = "serve_queue_wait_seconds"

	// Request-trace tail sampler (internal/obs/reqtrace.go): retained vs
	// lost traces. sampled counts every retention (2xx reservoir entries and
	// kept errors), errors the error-class subset, dropped the non-2xx traces
	// lost to the per-shard/run caps — nonzero dropped means the error cap is
	// undersized for the workload's failure rate.
	MetricServeTraceSampled = "serve_trace_sampled_total"
	MetricServeTraceErrors  = "serve_trace_errors_kept_total"
	MetricServeTraceDropped = "serve_trace_dropped_total"

	// Serving front end (internal/serve): HTTP-level admission and outcome
	// mix. Client rejects are per-client in-flight bound violations (the
	// queue rejects above are the shared-queue bound); deadline expiries
	// surface as 504s.
	MetricServeHTTPRequests  = "serve_http_requests_total"
	MetricServeHTTPOK        = "serve_http_ok_total"
	MetricServeClientRejects = "serve_client_rejects_total"
	MetricServeDeadline      = "serve_deadline_expired_total"
	MetricServeDrainRejects  = "serve_drain_rejects_total"
	MetricServeBadRequests   = "serve_bad_requests_total"
	MetricServeExtract       = "serve_extract_seconds"

	// Runtime telemetry (internal/obs/runtime.go): the Go runtime's own
	// behavior, sampled from runtime/metrics on every flight-recorder tick
	// so GC and scheduler health archive and diff like any pipeline metric.
	// Counters advance by deltas of the runtime's cumulative totals; the
	// p99 gauges are run-level quantiles of the runtime's own histograms,
	// in integer microseconds. runtime_* series names must be named
	// constants declared here (the metricname analyzer enforces the
	// stricter rule for this prefix, keeping the runtime catalogue in one
	// place).
	MetricRuntimeGoroutines  = "runtime_goroutines"
	MetricRuntimeHeapLive    = "runtime_heap_live_bytes"
	MetricRuntimeHeapGoal    = "runtime_heap_goal_bytes"
	MetricRuntimeGCCycles    = "runtime_gc_cycles_total"
	MetricRuntimeGCCPU       = "runtime_gc_cpu_micros_total"
	MetricRuntimeHeapAllocs  = "runtime_heap_alloc_bytes_total"
	MetricRuntimeGCPauseP99  = "runtime_gc_pause_p99_micros"
	MetricRuntimeSchedLatP99 = "runtime_sched_latency_p99_micros"

	// Load generator (cmd/loadgen): the client-side view of the same
	// traffic, so a serving run and the loadgen run that drove it can be
	// diffed pairwise with cmd/obsdiff.
	MetricLoadgenSent     = "loadgen_requests_total"
	MetricLoadgenOK       = "loadgen_ok_total"
	MetricLoadgenRejected = "loadgen_rejected_total"
	MetricLoadgenTimeout  = "loadgen_timeout_total"
	MetricLoadgenErrors   = "loadgen_errors_total"
	MetricLoadgenLatency  = "loadgen_service_seconds"
)
