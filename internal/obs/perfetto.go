package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/trace"
)

// traceEvent is one Chrome trace-event JSON object — the format Perfetto
// and chrome://tracing load. Complete events ("ph":"X") carry a start
// timestamp and duration in microseconds; metadata events ("ph":"M") name
// the threads.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoTrace is the JSON-object form of the trace-event format.
type perfettoTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// perfettoPid is the single process id every span is filed under; the
// recorder's worker index becomes the thread id.
const perfettoPid = 1

// WritePerfettoTrace converts the recorder's spans to Chrome trace-event
// JSON, loadable in ui.perfetto.dev or chrome://tracing: one named thread
// per worker, one complete event per span, timestamps in microseconds from
// the recorder's epoch. Spans are exported in canonical sorted order
// (matching WriteTimelineCSV), so the same spans always produce the same
// bytes. A nil recorder writes an empty, still-valid trace.
func WritePerfettoTrace(w io.Writer, rec *trace.Recorder) error {
	out := perfettoTrace{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if rec != nil {
		for worker := 0; worker < rec.Workers(); worker++ {
			spans := rec.SortedSpans(worker)
			if len(spans) == 0 {
				continue
			}
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "thread_name",
				Ph:   "M",
				Pid:  perfettoPid,
				Tid:  worker,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", worker)},
			})
			for _, s := range spans {
				out.TraceEvents = append(out.TraceEvents, traceEvent{
					Name: s.Region,
					Cat:  "minigiraffe",
					Ph:   "X",
					Ts:   float64(s.Start.Nanoseconds()) / 1e3,
					Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
					Pid:  perfettoPid,
					Tid:  worker,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// perfettoReqPid files request tracks under their own process so the worker
// timeline (pid 1) and the request view of the same run load side by side.
const perfettoReqPid = 2

// WritePerfettoRequests converts sampled request traces to Chrome
// trace-event JSON: one named thread ("req <trace-id> <status>") per sampled
// request, one complete event per span. map_subbatch events carry the worker
// attribution and kernel decomposition in args, so clicking a slow span in
// ui.perfetto.dev shows where its time went. Snapshot order is deterministic,
// so the same snapshot always produces the same bytes.
func WritePerfettoRequests(w io.Writer, snap ReqTraceSnapshot) error {
	out := perfettoTrace{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for tid, tr := range snap.Traces {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  perfettoReqPid,
			Tid:  tid,
			Args: map[string]any{"name": fmt.Sprintf("req %s %d", tr.TraceID, tr.Status)},
		})
		for _, sp := range tr.Spans {
			ev := traceEvent{
				Name: sp.Name,
				Cat:  "request",
				Ph:   "X",
				Ts:   float64(sp.StartNanos) / 1e3,
				Dur:  float64(sp.DurNanos) / 1e3,
				Pid:  perfettoReqPid,
				Tid:  tid,
			}
			args := map[string]any{"worker": sp.Worker}
			if sp.Canceled {
				args["canceled"] = true
			}
			if sp.Name == SpanMapSubbatch {
				args["cluster_ns"] = sp.ClusterNanos
				args["extend_ns"] = sp.ExtendNanos
				args["cache_build_ns"] = sp.CacheBuildNanos
			}
			ev.Args = args
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
