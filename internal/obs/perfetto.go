package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/trace"
)

// traceEvent is one Chrome trace-event JSON object — the format Perfetto
// and chrome://tracing load. Complete events ("ph":"X") carry a start
// timestamp and duration in microseconds; metadata events ("ph":"M") name
// the threads.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoTrace is the JSON-object form of the trace-event format.
type perfettoTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// perfettoPid is the single process id every span is filed under; the
// recorder's worker index becomes the thread id.
const perfettoPid = 1

// WritePerfettoTrace converts the recorder's spans to Chrome trace-event
// JSON, loadable in ui.perfetto.dev or chrome://tracing: one named thread
// per worker, one complete event per span, timestamps in microseconds from
// the recorder's epoch. Spans are exported in canonical sorted order
// (matching WriteTimelineCSV), so the same spans always produce the same
// bytes. A nil recorder writes an empty, still-valid trace.
func WritePerfettoTrace(w io.Writer, rec *trace.Recorder) error {
	out := perfettoTrace{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if rec != nil {
		for worker := 0; worker < rec.Workers(); worker++ {
			spans := rec.SortedSpans(worker)
			if len(spans) == 0 {
				continue
			}
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "thread_name",
				Ph:   "M",
				Pid:  perfettoPid,
				Tid:  worker,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", worker)},
			})
			for _, s := range spans {
				out.TraceEvents = append(out.TraceEvents, traceEvent{
					Name: s.Region,
					Cat:  "minigiraffe",
					Ph:   "X",
					Ts:   float64(s.Start.Nanoseconds()) / 1e3,
					Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
					Pid:  perfettoPid,
					Tid:  worker,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
