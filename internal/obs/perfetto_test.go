package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the Perfetto golden file")

// goldenRecorder builds a fixed-epoch recorder with a deterministic span
// set: two workers plus an ingest row, out-of-order recording on worker 0 to
// exercise the canonical sort.
func goldenRecorder() *trace.Recorder {
	epoch := time.Unix(1700000000, 0)
	rec := trace.NewRecorderEpoch(3, epoch)
	at := func(off time.Duration) time.Time { return epoch.Add(off) }
	// Recorded out of start order: SortedSpans must fix it.
	rec.Record(0, trace.RegionThresholdC, at(300*time.Microsecond), 450*time.Microsecond)
	rec.Record(0, trace.RegionCluster, at(100*time.Microsecond), 200*time.Microsecond)
	rec.Record(1, trace.RegionCacheBuild, at(50*time.Microsecond), 20*time.Microsecond)
	rec.Record(1, trace.RegionMapBatch, at(50*time.Microsecond), 900*time.Microsecond)
	rec.Record(2, trace.RegionIngest, at(0), 40*time.Microsecond)
	return rec
}

func TestWritePerfettoTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfettoTrace(&buf, goldenRecorder()); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "perfetto-golden.json")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Perfetto output drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWritePerfettoTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WritePerfettoTrace(&a, goldenRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfettoTrace(&b, goldenRecorder()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same spans differ")
	}
}

func TestWritePerfettoTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfettoTrace(&buf, goldenRecorder()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", out.DisplayTimeUnit)
	}
	meta, complete := 0, 0
	var prevTs float64
	var prevTid = -1
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Tid == prevTid && e.Ts < prevTs {
				t.Errorf("spans on tid %d not sorted: ts %g after %g", e.Tid, e.Ts, prevTs)
			}
			prevTid, prevTs = e.Tid, e.Ts
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
		if e.Pid != perfettoPid {
			t.Errorf("event pid = %d, want %d", e.Pid, perfettoPid)
		}
	}
	if meta != 3 {
		t.Errorf("thread_name metadata events = %d, want 3 (one per non-empty worker)", meta)
	}
	if complete != 5 {
		t.Errorf("complete events = %d, want 5", complete)
	}
}

func TestWritePerfettoRequestsShape(t *testing.T) {
	snap := ReqTraceSnapshot{
		K: 2,
		Traces: []SampledTrace{
			{
				TraceID: trace.ID{Hi: 0xabc, Lo: 0x123},
				Status:  504,
				Spans: []ReqSpan{
					{Name: SpanAdmit, Worker: -1, StartNanos: 1000, DurNanos: 500},
					{Name: SpanQueueWait, Worker: 0, StartNanos: 1500, DurNanos: 2000},
					{Name: SpanMapSubbatch, Worker: 0, StartNanos: 3500, DurNanos: 4000,
						ClusterNanos: 100, ExtendNanos: 200, CacheBuildNanos: 50, Canceled: true},
					{Name: SpanCancel, Worker: 1, StartNanos: 8000, DurNanos: 0, Canceled: true},
				},
			},
			{
				TraceID: trace.ID{Hi: 1, Lo: 2},
				Status:  200,
				Spans: []ReqSpan{
					{Name: SpanAdmit, Worker: -1, StartNanos: 0, DurNanos: 10},
					{Name: SpanEmit, Worker: -1, StartNanos: 20, DurNanos: 5},
				},
			},
		},
	}
	var buf bytes.Buffer
	if err := WritePerfettoRequests(&buf, snap); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("request export is not valid JSON: %v", err)
	}
	meta, complete := 0, 0
	for _, e := range out.TraceEvents {
		if e.Pid != perfettoReqPid {
			t.Errorf("event pid = %d, want %d", e.Pid, perfettoReqPid)
		}
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
		}
	}
	if meta != 2 || complete != 6 {
		t.Fatalf("events = %d meta + %d complete, want 2 + 6", meta, complete)
	}
	// Track name carries the trace ID and status so a 504 track is greppable.
	if want := "req " + snap.Traces[0].TraceID.String() + " 504"; out.TraceEvents[0].Args["name"] != want {
		t.Errorf("track name = %v, want %q", out.TraceEvents[0].Args["name"], want)
	}
	// The map_subbatch span exposes its kernel decomposition in args.
	m := out.TraceEvents[3]
	if m.Name != SpanMapSubbatch || m.Args["cluster_ns"] != float64(100) ||
		m.Args["extend_ns"] != float64(200) || m.Args["canceled"] != true {
		t.Errorf("map span args = %+v", m)
	}

	var again bytes.Buffer
	if err := WritePerfettoRequests(&again, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two request exports of the same snapshot differ")
	}
}

func TestWritePerfettoTraceNilRecorder(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfettoTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil-recorder export is not valid JSON: %v", err)
	}
	if events, ok := out["traceEvents"].([]any); !ok || len(events) != 0 {
		t.Fatalf("nil-recorder export should hold an empty traceEvents array, got %v", out["traceEvents"])
	}
}
