package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Exemplar is one captured slow read: enough context to explain a
// cluster_seeds / process_until_threshold_c tail hit (the paper's Fig. 5-7
// characterization) without re-running — which read, how many seeds it
// carried, where the time went, and how much of its batch's CachedGBWT
// rebuild it rode behind. Durations are nanoseconds so the hot capture path
// never converts floats.
type Exemplar struct {
	Read   string `json:"read"`
	Index  int    `json:"index"`  // global record index in the workload
	Worker int    `json:"worker"` // shard that mapped it
	Seeds  int    `json:"seeds"`
	// ClusterNanos and ExtendNanos split the read's time between the two
	// critical functions; TotalNanos (their sum) is the reservoir's ranking
	// key.
	ClusterNanos int64 `json:"cluster_ns"`
	ExtendNanos  int64 `json:"extend_ns"`
	TotalNanos   int64 `json:"total_ns"`
	// CacheBuildNanos attributes the batch's per-batch CachedGBWT rebuild
	// (§VII-B) to the read: a "slow" read in a batch with an expensive
	// rebuild is a cache-capacity problem, not a kernel problem. Under the
	// epoch discipline it covers only the private overflow construction.
	CacheBuildNanos int64 `json:"cache_build_ns"`
	// SharedBuildNanos attributes a shared-epoch publication this worker
	// performed at the preceding batch boundary to the reads of the batch
	// that follows it; zero when the epoch cache is off or another worker
	// won the publication.
	SharedBuildNanos int64 `json:"cache_build_shared_ns,omitempty"`
	// Trace is the owning request's trace ID when the read was mapped by a
	// serving Session (zero, rendered "", in batch mode), joining a /slow
	// entry to its request's span tree in /traces.
	Trace trace.ID `json:"trace_id"`
}

// slowShard is one worker's reservoir: a min-heap of its K slowest reads in
// the current window. floor caches the heap root's TotalNanos once the heap
// is full, so the common case — a read faster than everything retained —
// rejects with one atomic load and no lock.
type slowShard struct {
	floor int64 // atomic; 0 until the heap first fills
	mu    sync.Mutex
	heap  []Exemplar // min-heap by TotalNanos, capacity k
	_     [40]byte   // keep neighbouring shards off this cache line
}

// SlowReads is a sharded reservoir of the K slowest reads. Offer is the
// mapper hot-path entry: per-worker sharded, allocation-free, and nil-safe
// (a nil *SlowReads ignores offers), mirroring the Registry's discipline.
// Rotate closes a window, folding it into the run-level top K; the debug
// endpoint's /slow serves both views and the manifest archives the run view.
type SlowReads struct {
	k      int
	shards []slowShard

	mu  sync.Mutex
	run []Exemplar // min-heap: top K across all rotated windows
}

// NewSlowReads sizes the reservoir: one shard per worker (size for the map
// worker count; out-of-range shards clamp), each retaining the k slowest
// reads of the current window.
func NewSlowReads(shards, k int) *SlowReads {
	if shards < 1 {
		shards = 1
	}
	if k < 1 {
		k = 1
	}
	s := &SlowReads{k: k, shards: make([]slowShard, shards)}
	for i := range s.shards {
		s.shards[i].heap = make([]Exemplar, 0, k)
	}
	return s
}

// K returns the per-window retention (0 for a nil reservoir).
func (s *SlowReads) K() int {
	if s == nil {
		return 0
	}
	return s.k
}

// Offer folds one mapped read into the worker's shard, keeping it only if it
// ranks among the shard's K slowest this window. Reads no slower than the
// shard's current floor (including zero-duration reads) return after a
// single atomic load. Never allocates: the heap's backing array is
// preallocated at capacity K.
//
//minigiraffe:hot
func (s *SlowReads) Offer(shard int, ex Exemplar) {
	if s == nil {
		return
	}
	if uint(shard) >= uint(len(s.shards)) {
		shard = 0
	}
	sh := &s.shards[shard]
	if ex.TotalNanos <= atomic.LoadInt64(&sh.floor) {
		return
	}
	sh.mu.Lock() //vetgiraffe:ignore hotpath the atomic floor gate above means only genuine top-K inserts reach this uncontended per-shard lock
	if len(sh.heap) < s.k {
		sh.heap = append(sh.heap, ex)
		siftUp(sh.heap, len(sh.heap)-1)
		if len(sh.heap) == s.k {
			atomic.StoreInt64(&sh.floor, sh.heap[0].TotalNanos)
		}
	} else if ex.TotalNanos > sh.heap[0].TotalNanos {
		sh.heap[0] = ex
		siftDown(sh.heap, 0)
		atomic.StoreInt64(&sh.floor, sh.heap[0].TotalNanos)
	}
	sh.mu.Unlock()
}

// Rotate closes the current window: every shard's reservoir is drained into
// the run-level top K and reset. The series self-scraper rotates once per
// scrape tick, so a window is one scrape interval.
func (s *SlowReads) Rotate() {
	if s == nil {
		return
	}
	var window []Exemplar
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		window = append(window, sh.heap...)
		sh.heap = make([]Exemplar, 0, s.k)
		atomic.StoreInt64(&sh.floor, 0)
		sh.mu.Unlock()
	}
	s.mu.Lock()
	for _, ex := range window {
		if len(s.run) < s.k {
			s.run = append(s.run, ex)
			siftUp(s.run, len(s.run)-1)
		} else if ex.TotalNanos > s.run[0].TotalNanos {
			s.run[0] = ex
			siftDown(s.run, 0)
		}
	}
	s.mu.Unlock()
}

// Window returns the current (un-rotated) window's top K, slowest first.
func (s *SlowReads) Window() []Exemplar {
	if s == nil {
		return nil
	}
	var all []Exemplar
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		all = append(all, sh.heap...)
		sh.mu.Unlock()
	}
	return topK(all, s.k)
}

// Top returns the run-level top K — every rotated window folded together
// with the current one — slowest first. This is what the manifest archives.
func (s *SlowReads) Top() []Exemplar {
	if s == nil {
		return nil
	}
	all := s.Window()
	s.mu.Lock()
	all = append(all, s.run...)
	s.mu.Unlock()
	return topK(all, s.k)
}

// topK sorts slowest-first and truncates.
func topK(all []Exemplar, k int) []Exemplar {
	sort.Slice(all, func(i, j int) bool {
		if all[i].TotalNanos != all[j].TotalNanos {
			return all[i].TotalNanos > all[j].TotalNanos
		}
		return all[i].Index < all[j].Index
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// siftUp restores the min-heap property (by TotalNanos) after an append.
func siftUp(h []Exemplar, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].TotalNanos <= h[i].TotalNanos {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// siftDown restores the min-heap property after replacing the root.
func siftDown(h []Exemplar, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].TotalNanos < h[small].TotalNanos {
			small = l
		}
		if r < len(h) && h[r].TotalNanos < h[small].TotalNanos {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}
