package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry(2)
	reg.Counter("b_reads_total").Add(0, 41)
	reg.Counter("b_reads_total").Inc(1)
	reg.Counter("a_batches_total").Inc(0)
	reg.Gauge("in_flight").Set(0, 3)
	reg.Histogram("lat_seconds").Observe(0, 2*time.Millisecond)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_batches_total counter",
		"a_batches_total 1",
		"b_reads_total 42",
		"# TYPE in_flight gauge",
		"in_flight 3",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 0.002",
		"lat_seconds_count 1",
		"# TYPE lat_seconds_min_seconds gauge",
		"lat_seconds_min_seconds 0.002",
		"lat_seconds_max_seconds 0.002",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape output missing %q:\n%s", want, out)
		}
	}
	// The 2ms observation lands in one finite le bucket whose cumulative
	// count already covers everything, and min/max are the exact value (not
	// the log2 bucket bound).
	if strings.Contains(out, `{quantile=`) {
		t.Errorf("scrape still uses the summary quantile format:\n%s", out)
	}
	// Names must come out sorted so scrapes diff cleanly between runs.
	if strings.Index(out, "a_batches_total") > strings.Index(out, "b_reads_total") {
		t.Errorf("counter names not sorted:\n%s", out)
	}
	// Two scrapes of the same registry are byte-identical.
	var again bytes.Buffer
	if err := reg.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("consecutive scrapes of an idle registry differ")
	}
}

// TestWritePrometheusGolden pins the exact exposition format — bucket
// bounds, cumulative counts, ordering, the min/max gauges — against a
// checked-in golden file. Run with -update-golden to regenerate after a
// deliberate format change.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry(2)
	reg.Counter("reads_total").Add(0, 1000)
	reg.Gauge("in_flight").Set(0, 2)
	h := reg.Histogram("lat_seconds")
	h.Observe(0, 0)                    // bucket 0: exactly zero
	h.Observe(0, 2*time.Millisecond)   // bit 21
	h.Observe(1, 3*time.Millisecond)   // bit 22
	h.Observe(1, 100*time.Microsecond) // bit 17

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("scrape format drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var reg *Registry
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil registry scrape: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry scrape produced output: %q", buf.String())
	}
}
