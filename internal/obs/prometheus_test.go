package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry(2)
	reg.Counter("b_reads_total").Add(0, 41)
	reg.Counter("b_reads_total").Inc(1)
	reg.Counter("a_batches_total").Inc(0)
	reg.Gauge("in_flight").Set(0, 3)
	reg.Histogram("lat_seconds").Observe(0, 2*time.Millisecond)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_batches_total counter",
		"a_batches_total 1",
		"b_reads_total 42",
		"# TYPE in_flight gauge",
		"in_flight 3",
		"# TYPE lat_seconds summary",
		`lat_seconds{quantile="0.5"}`,
		`lat_seconds{quantile="0.99"}`,
		"lat_seconds_sum",
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape output missing %q:\n%s", want, out)
		}
	}
	// Names must come out sorted so scrapes diff cleanly between runs.
	if strings.Index(out, "a_batches_total") > strings.Index(out, "b_reads_total") {
		t.Errorf("counter names not sorted:\n%s", out)
	}
	// Two scrapes of the same registry are byte-identical.
	var again bytes.Buffer
	if err := reg.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("consecutive scrapes of an idle registry differ")
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var reg *Registry
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil registry scrape: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry scrape produced output: %q", buf.String())
	}
}
