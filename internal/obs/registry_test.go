package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterMergesShards(t *testing.T) {
	reg := NewRegistry(4)
	c := reg.Counter("c_total")
	for shard := 0; shard < 4; shard++ {
		c.Add(shard, int64(shard+1))
	}
	if got := c.Value(); got != 1+2+3+4 {
		t.Fatalf("Value() = %d, want 10", got)
	}
	// Out-of-range and negative shards clamp to shard 0 instead of panicking.
	c.Inc(99)
	c.Inc(-1)
	if got := c.Value(); got != 12 {
		t.Fatalf("Value() after clamped adds = %d, want 12", got)
	}
}

func TestGaugeAddSetValue(t *testing.T) {
	reg := NewRegistry(2)
	g := reg.Gauge("g")
	g.Add(0, 5)
	g.Add(1, -2)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value() = %d, want 3", got)
	}
	g.Set(0, 10)
	if got := g.Value(); got != 8 {
		t.Fatalf("Value() after Set = %d, want 8", got)
	}
}

func TestRegistryReturnsSameHandle(t *testing.T) {
	reg := NewRegistry(1)
	if reg.Counter("x") != reg.Counter("x") {
		t.Fatal("Counter returned distinct handles for one name")
	}
	if reg.Gauge("x") != reg.Gauge("x") {
		t.Fatal("Gauge returned distinct handles for one name")
	}
	if reg.Histogram("x") != reg.Histogram("x") {
		t.Fatal("Histogram returned distinct handles for one name")
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var reg *Registry
	if reg.Shards() != 0 {
		t.Fatal("nil registry Shards() != 0")
	}
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	// None of these may panic.
	c.Add(0, 1)
	c.Inc(3)
	g.Add(1, -1)
	g.Set(0, 7)
	h.Observe(2, time.Second)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles reported non-zero values")
	}
	if st := h.Stats(); st.Count != 0 {
		t.Fatal("nil histogram reported observations")
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry Snapshot() != nil")
	}
}

func TestHistogramQuantilesAndBounds(t *testing.T) {
	reg := NewRegistry(2)
	h := reg.Histogram("lat")
	// 90 fast observations and 10 slow ones, split across shards: p50/p90
	// must land in the fast bucket's bound, p99 in the slow one's.
	fast, slow := 900*time.Nanosecond, 800*time.Microsecond
	for i := 0; i < 90; i++ {
		h.Observe(i%2, fast)
	}
	for i := 0; i < 10; i++ {
		h.Observe(i%2, slow)
	}
	st := h.Stats()
	if st.Count != 100 {
		t.Fatalf("Count = %d, want 100", st.Count)
	}
	wantSum := (90*fast + 10*slow).Seconds()
	if math.Abs(st.SumSeconds-wantSum) > 1e-12 {
		t.Fatalf("SumSeconds = %g, want %g", st.SumSeconds, wantSum)
	}
	// The log2 bucket upper bound over-estimates by at most 2x.
	for _, q := range []struct {
		name  string
		got   float64
		exact time.Duration
	}{
		{"p50", st.P50, fast},
		{"p90", st.P90, fast},
		{"p99", st.P99, slow},
		{"max", st.Max, slow},
	} {
		lo, hi := q.exact.Seconds(), 2*q.exact.Seconds()
		if q.got < lo || q.got > hi {
			t.Errorf("%s = %g, want within [%g, %g]", q.name, q.got, lo, hi)
		}
	}
	// A negative duration clamps to the zero bucket rather than corrupting
	// the bucket index.
	h.Observe(0, -time.Second)
	if st := h.Stats(); st.Count != 101 {
		t.Fatalf("Count after negative observe = %d, want 101", st.Count)
	}
}

func TestHistogramZeroOnly(t *testing.T) {
	reg := NewRegistry(1)
	h := reg.Histogram("z")
	h.Observe(0, 0)
	st := h.Stats()
	if st.P50 != 0 || st.P99 != 0 || st.Max != 0 {
		t.Fatalf("zero-only histogram reported non-zero quantiles: %+v", st)
	}
}

func TestSnapshotMarshalsToFiniteJSON(t *testing.T) {
	reg := NewRegistry(2)
	reg.Counter("reads_total").Add(0, 7)
	reg.Gauge("in_flight").Add(1, 3)
	reg.Histogram("lat_seconds").Observe(0, 3*time.Millisecond)
	s := reg.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["reads_total"] != 7 || back.Gauges["in_flight"] != 3 {
		t.Fatalf("round-tripped snapshot lost values: %+v", back)
	}
	if back.Histograms["lat_seconds"].Count != 1 {
		t.Fatalf("round-tripped histogram lost observations: %+v", back.Histograms)
	}
}

func TestSanitizeFloatAndRate(t *testing.T) {
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := SanitizeFloat(x); got != 0 {
			t.Errorf("SanitizeFloat(%v) = %g, want 0", x, got)
		}
	}
	if got := SanitizeFloat(1.5); got != 1.5 {
		t.Errorf("SanitizeFloat(1.5) = %g", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Errorf("Rate over zero elapsed = %g, want 0", got)
	}
	if got := Rate(100, -time.Second); got != 0 {
		t.Errorf("Rate over negative elapsed = %g, want 0", got)
	}
	if got := Rate(100, 2*time.Second); got != 50 {
		t.Errorf("Rate(100, 2s) = %g, want 50", got)
	}
}

// TestRegistryConcurrentStress hammers every metric kind from many goroutines
// while a scraper concurrently snapshots — the -race configuration this runs
// under (make race) is the real assertion; the count checks at the end catch
// lost updates.
func TestRegistryConcurrentStress(t *testing.T) {
	const (
		workers = 8
		iters   = 2000
	)
	reg := NewRegistry(workers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scraper goroutine: snapshot and Prometheus-render concurrently with
	// the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.Snapshot()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			c := reg.Counter("stress_total")
			g := reg.Gauge("stress_gauge")
			h := reg.Histogram("stress_seconds")
			for i := 0; i < iters; i++ {
				c.Inc(worker)
				g.Add(worker, 1)
				g.Add(worker, -1)
				h.Observe(worker, time.Duration(i)*time.Microsecond)
			}
		}(w)
	}
	// Registration races against registration for the same names, too.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Counter("registered_total").Inc(worker)
			}
		}(w)
	}
	time.Sleep(time.Millisecond)
	close(stop)
	wg.Wait()
	if got := reg.Counter("stress_total").Value(); got != workers*iters {
		t.Fatalf("lost counter updates: %d, want %d", got, workers*iters)
	}
	if got := reg.Gauge("stress_gauge").Value(); got != 0 {
		t.Fatalf("gauge should settle at 0, got %d", got)
	}
	if st := reg.Histogram("stress_seconds").Stats(); st.Count != workers*iters {
		t.Fatalf("lost histogram observations: %d, want %d", st.Count, workers*iters)
	}
	if got := reg.Counter("registered_total").Value(); got != 4*200 {
		t.Fatalf("racing registration lost updates: %d, want 800", got)
	}
}
