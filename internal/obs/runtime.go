package obs

import (
	"math"
	"runtime/metrics"
)

// Runtime telemetry: the flight recorder samples the Go runtime's own
// metrics (runtime/metrics) into the registry as runtime_* series on every
// series tick, so GC pressure, scheduler latency, and heap growth archive
// next to the pipeline's metrics and cmd/obsdiff regresses them cross-run
// like any other series. All names are the Metric* constants in metrics.go;
// the metricname analyzer requires runtime_* series names to be named
// constants, so the runtime catalogue cannot fragment silently.

// runtime/metrics source names. Each feeds exactly one runtime_* series;
// names a runtime version does not publish (KindBad) are skipped, so the
// sampler degrades gracefully across Go releases.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapLive   = "/memory/classes/heap/objects:bytes"
	rmHeapGoal   = "/gc/heap/goal:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCCPU      = "/cpu/classes/gc/total:cpu-seconds"
	rmHeapAllocs = "/gc/heap/allocs:bytes"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// runtimeSampler owns the metrics.Sample buffer and the registry handles the
// runtime series feed. One instance per SeriesRecorder; sample runs on the
// recorder's scrape goroutine (shard 0), so no synchronization is needed
// beyond the registry cells' own atomics.
type runtimeSampler struct {
	samples []metrics.Sample

	goroutines  *Gauge
	heapLive    *Gauge
	heapGoal    *Gauge
	gcPauseP99  *Gauge
	schedLatP99 *Gauge

	gcCycles   *Counter
	gcCPU      *Counter
	heapAllocs *Counter

	// Previous absolute values behind the cumulative counters: the runtime
	// reports totals, the registry counters want deltas.
	prevCycles int64
	prevCPUus  int64
	prevAllocs int64
}

func newRuntimeSampler(reg *Registry) *runtimeSampler {
	names := []string{
		rmGoroutines, rmHeapLive, rmHeapGoal, rmGCCycles,
		rmGCCPU, rmHeapAllocs, rmGCPauses, rmSchedLat,
	}
	rs := &runtimeSampler{
		samples:     make([]metrics.Sample, len(names)),
		goroutines:  reg.Gauge(MetricRuntimeGoroutines),
		heapLive:    reg.Gauge(MetricRuntimeHeapLive),
		heapGoal:    reg.Gauge(MetricRuntimeHeapGoal),
		gcPauseP99:  reg.Gauge(MetricRuntimeGCPauseP99),
		schedLatP99: reg.Gauge(MetricRuntimeSchedLatP99),
		gcCycles:    reg.Counter(MetricRuntimeGCCycles),
		gcCPU:       reg.Counter(MetricRuntimeGCCPU),
		heapAllocs:  reg.Counter(MetricRuntimeHeapAllocs),
	}
	for i, name := range names {
		rs.samples[i].Name = name
	}
	return rs
}

// sample reads the runtime metrics and feeds the registry. Gauges carry the
// current absolute level; counters advance by the delta since the previous
// sample, so the archived series deltas reconstruct the runtime totals.
func (rs *runtimeSampler) sample() {
	if rs == nil {
		return
	}
	metrics.Read(rs.samples)
	for i := range rs.samples {
		s := &rs.samples[i]
		switch s.Name {
		case rmGoroutines:
			if v, ok := sampleInt(s); ok {
				rs.goroutines.Set(0, v)
			}
		case rmHeapLive:
			if v, ok := sampleInt(s); ok {
				rs.heapLive.Set(0, v)
			}
		case rmHeapGoal:
			if v, ok := sampleInt(s); ok {
				rs.heapGoal.Set(0, v)
			}
		case rmGCCycles:
			if v, ok := sampleInt(s); ok {
				rs.prevCycles = advance(rs.gcCycles, rs.prevCycles, v)
			}
		case rmGCCPU:
			if s.Value.Kind() == metrics.KindFloat64 {
				us := int64(s.Value.Float64() * 1e6)
				rs.prevCPUus = advance(rs.gcCPU, rs.prevCPUus, us)
			}
		case rmHeapAllocs:
			if v, ok := sampleInt(s); ok {
				rs.prevAllocs = advance(rs.heapAllocs, rs.prevAllocs, v)
			}
		case rmGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				rs.gcPauseP99.Set(0, histP99Micros(s.Value.Float64Histogram()))
			}
		case rmSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				rs.schedLatP99.Set(0, histP99Micros(s.Value.Float64Histogram()))
			}
		}
	}
}

// sampleInt extracts an integer-valued sample, false for unsupported kinds.
func sampleInt(s *metrics.Sample) (int64, bool) {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		v := s.Value.Uint64()
		if v > math.MaxInt64 {
			v = math.MaxInt64
		}
		return int64(v), true
	case metrics.KindFloat64:
		return int64(s.Value.Float64()), true
	default:
		return 0, false
	}
}

// advance feeds a cumulative runtime total into a registry counter as a
// delta, returning the new previous value. A total that moved backwards
// (impossible in practice) is absorbed by re-basing without a negative add.
func advance(c *Counter, prev, cur int64) int64 {
	if cur > prev {
		c.Add(0, cur-prev)
	}
	return cur
}

// histP99Micros extracts the p99 upper bound of a runtime histogram in
// integer microseconds (gauges are integers). Runtime histograms carry
// cumulative counts since process start, so this is the run-level p99 —
// exactly the granularity obsdiff compares.
func histP99Micros(h *metrics.Float64Histogram) int64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total) * 0.99)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				ub = h.Buckets[i]
			}
			return int64(ub * 1e6)
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 1) {
		last = h.Buckets[len(h.Buckets)-2]
	}
	return int64(last * 1e6)
}
