package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// This file is the request-lifecycle tracer behind the serving path: every
// /map request carries a trace.ID (traceparent header), accumulates a span
// tree — admit (parse/admission/extraction on the handler), queue_wait and
// map_subbatch per pipeline.Session sub-batch (worker-attributed, kernel
// nanos folded in from core.Mapper), emit, and cancel markers — and is then
// offered to a sharded tail-based sampler: every non-2xx request is retained
// (up to a cap), while 2xx requests compete for a top-K-by-latency reservoir
// guarded by the same atomic-floor rejection idiom as the slow-read exemplars
// (exemplar.go), so the common fast-2xx path recycles its trace buffer with
// zero allocations. Sampled traces are served at /traces, exported as
// Perfetto tracks (one per request), and summarised into the run manifest.

// Request-lifecycle span names. Every AddSpan call site must pass one of
// these (or another named constant) — the metricname analyzer enforces it, so
// the span vocabulary stays a greppable closed set.
const (
	// SpanAdmit covers the serve-side preamble: body parse, per-client and
	// queue admission, and seed extraction, ending when the request is
	// submitted to (or rejected by) the mapping session.
	SpanAdmit = "admit"
	// SpanQueueWait is one sub-batch's time in the session claim queue, from
	// enqueue to a worker claiming it.
	SpanQueueWait = "queue_wait"
	// SpanMapSubbatch is one sub-batch's time on a mapper worker; its kernel
	// fields split the span into cluster/extend/cache-build nanos.
	SpanMapSubbatch = "map_subbatch"
	// SpanEmit covers response construction and serialisation.
	SpanEmit = "emit"
	// SpanCancel marks a sub-batch skipped outright because the request's
	// deadline fired while it was still queued.
	SpanCancel = "cancel"
)

// ReqSpan is one node of a request's span tree. Offsets are nanoseconds from
// the tracer's epoch so spans from the HTTP handler and from different
// pipeline workers share one timeline.
type ReqSpan struct {
	Name string `json:"name"`
	// Worker is the pipeline worker that executed the span; -1 for spans
	// recorded on the HTTP handler goroutine.
	Worker     int   `json:"worker"`
	StartNanos int64 `json:"start_ns"`
	DurNanos   int64 `json:"dur_ns"`
	// Kernel attribution, folded in from core.Mapper for map_subbatch spans:
	// how much of the span went to the paper's two critical functions and to
	// the per-batch cache rebuild.
	ClusterNanos    int64 `json:"cluster_ns,omitempty"`
	ExtendNanos     int64 `json:"extend_ns,omitempty"`
	CacheBuildNanos int64 `json:"cache_build_ns,omitempty"`
	// Canceled marks a map_subbatch stopped at a record boundary by the
	// request deadline (cancel spans are implicitly canceled).
	Canceled bool `json:"canceled,omitempty"`
}

// SubBatch carries per-sub-batch request attribution into
// core.Mapper.MapBatchUntil and back: the owning request's trace ID flows
// down (tagging slow-read exemplars), the kernel nano totals flow up (tagging
// the map_subbatch span). A nil *SubBatch disables both, so the batch
// pipeline pays one nil check per record.
type SubBatch struct {
	Trace           trace.ID
	ClusterNanos    int64
	ExtendNanos     int64
	CacheBuildNanos int64
}

// ReqTrace is one in-flight request's span accumulator. Handed out by
// ReqTracer.Start, filled via AddSpan/AddMapSpan from the HTTP handler and
// any pipeline worker (concurrently — appends lock), and judged by
// ReqTracer.Finish. All methods are nil-safe so untraced paths need no
// branches.
type ReqTrace struct {
	t      *ReqTracer
	id     trace.ID
	shard  int
	client string
	reads  int
	start  int64 // nanos since tracer epoch
	status int
	dur    int64

	mu    sync.Mutex
	spans []ReqSpan
}

// ID returns the request's trace ID (zero for a nil trace).
func (rt *ReqTrace) ID() trace.ID {
	if rt == nil {
		return trace.ID{}
	}
	return rt.id
}

// SetClient attributes the trace to a client identity (call before Finish).
func (rt *ReqTrace) SetClient(client string) {
	if rt != nil {
		rt.client = client
	}
}

// SetReads records the request's read count (call before Finish).
func (rt *ReqTrace) SetReads(n int) {
	if rt != nil {
		rt.reads = n
	}
}

// AddSpan appends one span. name must be a named constant (the metricname
// analyzer enforces it). Safe to call concurrently from several workers; a
// nil trace ignores the span.
func (rt *ReqTrace) AddSpan(name string, worker int, start time.Time, dur time.Duration) {
	if rt == nil {
		return
	}
	rt.append(ReqSpan{
		Name:       name,
		Worker:     worker,
		StartNanos: start.Sub(rt.t.epoch).Nanoseconds(),
		DurNanos:   dur.Nanoseconds(),
	})
}

// AddMapSpan appends the map_subbatch span for one mapped sub-batch, folding
// in the kernel nanos MapBatchUntil accumulated and whether the deadline
// stopped the kernel mid-batch.
func (rt *ReqTrace) AddMapSpan(worker int, start time.Time, dur time.Duration, sb *SubBatch, canceled bool) {
	if rt == nil {
		return
	}
	sp := ReqSpan{
		Name:       SpanMapSubbatch,
		Worker:     worker,
		StartNanos: start.Sub(rt.t.epoch).Nanoseconds(),
		DurNanos:   dur.Nanoseconds(),
		Canceled:   canceled,
	}
	if sb != nil {
		sp.ClusterNanos = sb.ClusterNanos
		sp.ExtendNanos = sb.ExtendNanos
		sp.CacheBuildNanos = sb.CacheBuildNanos
	}
	rt.append(sp)
}

func (rt *ReqTrace) append(sp ReqSpan) {
	rt.mu.Lock()
	rt.spans = append(rt.spans, sp)
	rt.mu.Unlock()
}

// reset clears the trace for reuse, keeping the span backing array.
func (rt *ReqTrace) reset() {
	rt.mu.Lock()
	rt.spans = rt.spans[:0]
	rt.mu.Unlock()
	rt.id, rt.client, rt.reads, rt.start, rt.status, rt.dur = trace.ID{}, "", 0, 0, 0, 0
}

// reqSpanPrealloc sizes a fresh trace's span buffer: admit + emit + a
// queue_wait/map_subbatch pair for a handful of sub-batches without growing.
const reqSpanPrealloc = 16

// reqShard is one sampler shard: the window's top-K 2xx traces (min-heap by
// duration, atomic-floor-gated) plus every non-2xx trace of the window, and a
// free list of recycled trace buffers feeding the zero-alloc Start path.
type reqShard struct {
	floor int64 // atomic: heap root's dur once the heap is full; 0 before
	mu    sync.Mutex
	heap  []*ReqTrace // min-heap by dur, capacity k (2xx window reservoir)
	errs  []*ReqTrace // all non-2xx this window, capacity errCap
	free  []*ReqTrace // recycled buffers (only ever fed from the 2xx path)
}

// ReqTracer is the sharded tail-based request sampler. The sampling decision
// happens at Finish, when the outcome is known ("tail-based"): error-class
// requests are always kept, successful ones only if they rank among the
// shard's K slowest — the policy that keeps exactly the traces a p99/error
// investigation needs while the sunny-path request costs two lock-free checks
// and no allocation.
type ReqTracer struct {
	k      int
	errCap int // per shard
	epoch  time.Time
	shards []reqShard
	seq    atomic.Uint64 // shard spreader for zero trace IDs

	sampled *Counter // serve_trace_sampled_total: traces retained at Finish
	errKept *Counter // serve_trace_errors_kept_total
	dropped *Counter // serve_trace_dropped_total: non-2xx lost to the cap

	droppedN atomic.Int64 // authoritative drop count (metric mirrors it)

	mu      sync.Mutex
	run     []*ReqTrace // min-heap: top-K 2xx across rotated windows
	runErrs []*ReqTrace // rotated non-2xx, capacity errCap*shards
}

// NewReqTracer sizes the sampler: one shard per expected concurrent finisher
// (the serving path uses the worker count), each retaining the k slowest
// successful requests per window plus up to errCap error-class requests.
// reg may be nil (no sampler metrics).
func NewReqTracer(shards, k, errCap int, reg *Registry) *ReqTracer {
	if shards < 1 {
		shards = 1
	}
	if k < 1 {
		k = 1
	}
	if errCap < 1 {
		errCap = 1
	}
	t := &ReqTracer{
		k:       k,
		errCap:  errCap,
		epoch:   time.Now(),
		shards:  make([]reqShard, shards),
		sampled: reg.Counter(MetricServeTraceSampled),
		errKept: reg.Counter(MetricServeTraceErrors),
		dropped: reg.Counter(MetricServeTraceDropped),
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.heap = make([]*ReqTrace, 0, k)
		sh.errs = make([]*ReqTrace, 0, errCap)
		sh.free = make([]*ReqTrace, 0, k+errCap)
	}
	return t
}

// K returns the per-shard 2xx retention (0 for a nil tracer).
func (t *ReqTracer) K() int {
	if t == nil {
		return 0
	}
	return t.k
}

// Epoch returns the tracer's time origin — span offsets are nanoseconds
// since this instant.
func (t *ReqTracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// shardFor spreads traces over shards by ID (stable: the same request always
// lands on the same shard) with a round-robin fallback for zero IDs.
func (t *ReqTracer) shardFor(id trace.ID) int {
	if id.IsZero() {
		return int(t.seq.Add(1) % uint64(len(t.shards)))
	}
	return int(id.Lo % uint64(len(t.shards)))
}

// Start opens a trace for one request. The returned trace comes from the
// shard's free list when possible, so a request that ends up not sampled
// completes a full Start → AddSpan → Finish cycle without allocating. A nil
// tracer returns a nil trace (every downstream method no-ops).
func (t *ReqTracer) Start(id trace.ID, client string) *ReqTrace {
	if t == nil {
		return nil
	}
	shard := t.shardFor(id)
	sh := &t.shards[shard]
	var rt *ReqTrace
	sh.mu.Lock()
	if n := len(sh.free); n > 0 {
		rt = sh.free[n-1]
		sh.free = sh.free[:n-1]
	}
	sh.mu.Unlock()
	if rt == nil {
		rt = &ReqTrace{spans: make([]ReqSpan, 0, reqSpanPrealloc)}
	}
	rt.t = t
	rt.id = id
	rt.shard = shard
	rt.client = client
	rt.start = time.Since(t.epoch).Nanoseconds()
	return rt
}

// Finish closes the trace with the request's final status and makes the
// tail-based sampling decision: non-2xx traces are always retained (counted
// as dropped past the per-shard cap), 2xx traces enter the shard's top-K
// duration reservoir or — the common case — fail the atomic floor check and
// recycle their buffer. Call exactly once per Start; nil-safe.
func (t *ReqTracer) Finish(rt *ReqTrace, status int) {
	if t == nil || rt == nil {
		return
	}
	t.finishDur(rt, status, time.Since(t.epoch).Nanoseconds()-rt.start)
}

// finishDur is Finish with an explicit duration (tests drive deterministic
// reservoir states through it).
func (t *ReqTracer) finishDur(rt *ReqTrace, status int, durNanos int64) {
	rt.status = status
	rt.dur = durNanos
	sh := &t.shards[rt.shard]
	if status < 200 || status >= 300 {
		sh.mu.Lock()
		if len(sh.errs) < t.errCap {
			sh.errs = append(sh.errs, rt)
			sh.mu.Unlock()
			t.errKept.Inc(rt.shard)
			t.sampled.Inc(rt.shard)
			return
		}
		sh.mu.Unlock()
		// Cap hit: the trace is lost, visibly. It is NOT recycled — late
		// worker spans may still arrive on a canceled request's trace, and a
		// recycled buffer would splice them into a different request.
		t.droppedN.Add(1)
		t.dropped.Inc(rt.shard)
		return
	}
	// 2xx tail sampling: one atomic load rejects anything faster than the
	// K-th slowest retained request, and the buffer goes straight back to the
	// free list — a successful request is fully done with its trace by the
	// time Finish runs, so reuse is safe.
	if durNanos <= atomic.LoadInt64(&sh.floor) {
		t.recycle(sh, rt)
		return
	}
	var evicted *ReqTrace
	sh.mu.Lock()
	if len(sh.heap) < t.k {
		sh.heap = append(sh.heap, rt)
		reqSiftUp(sh.heap, len(sh.heap)-1)
		if len(sh.heap) == t.k {
			atomic.StoreInt64(&sh.floor, sh.heap[0].dur)
		}
	} else if durNanos > sh.heap[0].dur {
		evicted = sh.heap[0]
		sh.heap[0] = rt
		reqSiftDown(sh.heap, 0)
		atomic.StoreInt64(&sh.floor, sh.heap[0].dur)
	} else {
		// Lost the race between the floor load and the lock.
		sh.mu.Unlock()
		t.recycle(sh, rt)
		return
	}
	sh.mu.Unlock()
	t.sampled.Inc(rt.shard)
	if evicted != nil {
		t.recycle(sh, evicted)
	}
}

// recycle resets a 2xx trace buffer and returns it to the shard's free list
// (dropped on the floor when the list is full).
func (t *ReqTracer) recycle(sh *reqShard, rt *ReqTrace) {
	rt.reset()
	sh.mu.Lock()
	if len(sh.free) < cap(sh.free) {
		sh.free = append(sh.free, rt)
	}
	sh.mu.Unlock()
}

// Rotate closes the sampling window: every shard's 2xx reservoir is folded
// into the run-level top-K, its error list into the run-level error archive
// (bounded at errCap x shards, overflow counted as dropped), and the shard
// floors reset so the next window re-learns its tail. The series self-scraper
// rotates once per tick, mirroring SlowReads.
func (t *ReqTracer) Rotate() {
	if t == nil {
		return
	}
	var window, errs []*ReqTrace
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		window = append(window, sh.heap...)
		errs = append(errs, sh.errs...)
		sh.heap = make([]*ReqTrace, 0, t.k)
		sh.errs = make([]*ReqTrace, 0, t.errCap)
		atomic.StoreInt64(&sh.floor, 0)
		sh.mu.Unlock()
	}
	runErrCap := t.errCap * len(t.shards)
	t.mu.Lock()
	for _, rt := range window {
		if len(t.run) < t.k {
			t.run = append(t.run, rt)
			reqSiftUp(t.run, len(t.run)-1)
		} else if rt.dur > t.run[0].dur {
			t.run[0] = rt
			reqSiftDown(t.run, 0)
		}
		// Evicted run-level traces are dropped, not recycled: snapshots taken
		// before this rotation may still reference them.
	}
	for _, rt := range errs {
		if len(t.runErrs) < runErrCap {
			t.runErrs = append(t.runErrs, rt)
		} else {
			t.droppedN.Add(1)
			t.dropped.Inc(0)
		}
	}
	t.mu.Unlock()
}

// SampledTrace is one retained request in scrape form: identity, outcome,
// and the span tree, plus (filled by the serving layer) the slow-read
// exemplars attributed to this request.
type SampledTrace struct {
	TraceID    trace.ID   `json:"trace_id"`
	Client     string     `json:"client,omitempty"`
	Status     int        `json:"status"`
	Reads      int        `json:"reads,omitempty"`
	StartNanos int64      `json:"start_ns"`
	DurNanos   int64      `json:"dur_ns"`
	Spans      []ReqSpan  `json:"spans"`
	SlowReads  []Exemplar `json:"slow_reads,omitempty"`
}

// ReqTraceSnapshot is the /traces payload: every currently retained trace
// (window and rotated run views merged), sorted by start offset then ID.
type ReqTraceSnapshot struct {
	K       int            `json:"k"`
	Dropped int64          `json:"dropped"`
	Traces  []SampledTrace `json:"traces"`
}

// Snapshot copies out every retained trace. Safe concurrently with Start,
// Finish, AddSpan, and Rotate; spans recorded after the snapshot simply miss
// it. Nil-safe.
func (t *ReqTracer) Snapshot() ReqTraceSnapshot {
	if t == nil {
		return ReqTraceSnapshot{}
	}
	var refs []*ReqTrace
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		refs = append(refs, sh.heap...)
		refs = append(refs, sh.errs...)
		sh.mu.Unlock()
	}
	t.mu.Lock()
	refs = append(refs, t.run...)
	refs = append(refs, t.runErrs...)
	t.mu.Unlock()
	snap := ReqTraceSnapshot{K: t.k, Dropped: t.droppedN.Load()}
	snap.Traces = make([]SampledTrace, 0, len(refs))
	for _, rt := range refs {
		st := SampledTrace{
			TraceID:    rt.id,
			Client:     rt.client,
			Status:     rt.status,
			Reads:      rt.reads,
			StartNanos: rt.start,
			DurNanos:   rt.dur,
		}
		rt.mu.Lock()
		st.Spans = append([]ReqSpan(nil), rt.spans...)
		rt.mu.Unlock()
		snap.Traces = append(snap.Traces, st)
	}
	sort.Slice(snap.Traces, func(i, j int) bool {
		a, b := &snap.Traces[i], &snap.Traces[j]
		if a.StartNanos != b.StartNanos {
			return a.StartNanos < b.StartNanos
		}
		if a.TraceID.Hi != b.TraceID.Hi {
			return a.TraceID.Hi < b.TraceID.Hi
		}
		return a.TraceID.Lo < b.TraceID.Lo
	})
	return snap
}

// ReqTraceSummary is the manifest's record of the sampler's run: how many
// traces were retained and lost, the status mix, and the slowest retained
// request — enough to decide whether the full /traces artifact is worth
// opening.
type ReqTraceSummary struct {
	Sampled   int            `json:"sampled"`
	Errors    int            `json:"errors"`
	Dropped   int64          `json:"dropped"`
	ByStatus  map[string]int `json:"by_status,omitempty"`
	SlowestID trace.ID       `json:"slowest_trace_id"`
	SlowestMs float64        `json:"slowest_ms"`
}

// Summary condenses the current snapshot (nil tracer: nil summary).
func (t *ReqTracer) Summary() *ReqTraceSummary {
	if t == nil {
		return nil
	}
	snap := t.Snapshot()
	sum := &ReqTraceSummary{
		Sampled:  len(snap.Traces),
		Dropped:  snap.Dropped,
		ByStatus: make(map[string]int),
	}
	for i := range snap.Traces {
		tr := &snap.Traces[i]
		sum.ByStatus[statusKey(tr.Status)]++
		if tr.Status < 200 || tr.Status >= 300 {
			sum.Errors++
		}
		if tr.DurNanos > int64(sum.SlowestMs*1e6) {
			sum.SlowestMs = float64(tr.DurNanos) / 1e6
			sum.SlowestID = tr.TraceID
		}
	}
	return sum
}

// statusKey buckets an HTTP status for the summary's mix map.
func statusKey(status int) string {
	switch {
	case status >= 200 && status < 300:
		return "2xx"
	case status == 429:
		return "429"
	case status == 504:
		return "504"
	default:
		return "other"
	}
}

// reqSiftUp restores the min-heap property (by dur) after an append.
func reqSiftUp(h []*ReqTrace, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dur <= h[i].dur {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// reqSiftDown restores the min-heap property after replacing the root.
func reqSiftDown(h []*ReqTrace, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].dur < h[small].dur {
			small = l
		}
		if r < len(h) && h[r].dur < h[small].dur {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}
