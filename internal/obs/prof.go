package obs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"
)

// This file is the continuous-profiling half of the flight recorder: a
// self-capturing profiler that rotates CPU profile segments (plus a heap
// profile at every boundary) into a directory next to the run manifest, and
// the pprof label taxonomy that makes those samples decomposable offline.
// Where the metric series answers "when did this run degrade", the profile
// segments answer "which function" — cmd/profdiff aligns two captures by
// symbol and gates CI on flat/cum regressions, and `make pgo-capture`
// distills the same capture into the committed default.pgo.

// pprof label taxonomy. Labels are applied at sub-batch granularity — a
// worker sets its goroutine labels when it claims a batch, never per record —
// so the hot map path stays allocation-free while every CPU sample still
// carries its pipeline stage, worker index, and serving-vs-batch class.
// Label keys must be these named constants (the metricname analyzer enforces
// it), exactly as metric and span names must: profdiff groups by key, so a
// runtime-assembled key would silently split the breakdown.
const (
	// LabelStage partitions samples by pipeline stage.
	LabelStage = "stage"
	// LabelWorker is the claiming worker's index (map stage only).
	LabelWorker = "worker"
	// LabelRequestClass separates the serving path from batch runs.
	LabelRequestClass = "request_class"
)

// LabelStage values, mirroring the pipeline_stage_* metric split.
const (
	StageIngest  = "ingest"
	StageMap     = "map"
	StageEmit    = "emit"
	StageExtract = "extract"
)

// LabelRequestClass values: a CLI/batch run versus the serving path
// (pipeline.Session sub-batches and the HTTP handlers feeding them).
const (
	ClassBatch = "batch"
	ClassServe = "serve"
)

// ProfLabels is a prebuilt set of goroutine-label contexts for one execution
// path: one context per (stage, worker) pair, constructed once at pool
// startup so applying labels at a sub-batch boundary is an array index plus
// pprof.SetGoroutineLabels — no per-batch allocation, nothing at all per
// record. A nil *ProfLabels is a no-op on every method, mirroring the
// nil-safe registry handles.
type ProfLabels struct {
	mapCtxs                      []context.Context
	ingest, emit, extract, clear context.Context
}

// NewProfLabels prebuilds label contexts for a pool of workers under the
// given request class (ClassBatch or ClassServe). workers is clamped to at
// least 1.
func NewProfLabels(class string, workers int) *ProfLabels {
	if workers < 1 {
		workers = 1
	}
	// The label contexts are pure value carriers handed to
	// pprof.SetGoroutineLabels; they never flow into request paths, carry no
	// deadline, and are built once at startup.
	root := context.Background() //vetgiraffe:ignore ctxflow label contexts are value-only pprof carriers built once at pool startup, not request contexts
	p := &ProfLabels{
		clear:   root,
		ingest:  pprof.WithLabels(root, pprof.Labels(LabelStage, StageIngest, LabelRequestClass, class)),
		emit:    pprof.WithLabels(root, pprof.Labels(LabelStage, StageEmit, LabelRequestClass, class)),
		extract: pprof.WithLabels(root, pprof.Labels(LabelStage, StageExtract, LabelRequestClass, class)),
		mapCtxs: make([]context.Context, workers),
	}
	for w := range p.mapCtxs {
		p.mapCtxs[w] = pprof.WithLabels(root, pprof.Labels(
			LabelStage, StageMap,
			LabelWorker, strconv.Itoa(w),
			LabelRequestClass, class))
	}
	return p
}

// ApplyMap labels the calling goroutine as map-stage work on worker's behalf.
// Out-of-range workers clamp onto the prebuilt range, like registry shards.
func (p *ProfLabels) ApplyMap(worker int) {
	if p == nil {
		return
	}
	if worker < 0 {
		worker = 0
	}
	if worker >= len(p.mapCtxs) {
		worker = len(p.mapCtxs) - 1
	}
	pprof.SetGoroutineLabels(p.mapCtxs[worker])
}

// ApplyIngest labels the calling goroutine as the ingest stage.
func (p *ProfLabels) ApplyIngest() {
	if p == nil {
		return
	}
	pprof.SetGoroutineLabels(p.ingest)
}

// ApplyEmit labels the calling goroutine as the emit stage.
func (p *ProfLabels) ApplyEmit() {
	if p == nil {
		return
	}
	pprof.SetGoroutineLabels(p.emit)
}

// ApplyExtract labels the calling goroutine as seed extraction (the serving
// front end's preprocessing).
func (p *ProfLabels) ApplyExtract() {
	if p == nil {
		return
	}
	pprof.SetGoroutineLabels(p.extract)
}

// Clear removes the goroutine's labels. Stages that run on a caller's
// goroutine (the pipeline's emit loop, HTTP handlers) clear on the way out so
// the labels don't outlive the stage.
func (p *ProfLabels) Clear() {
	if p == nil {
		return
	}
	pprof.SetGoroutineLabels(p.clear)
}

// DefaultProfileInterval is the default CPU-segment rotation cadence. Short
// bench-smoke runs produce a single segment; long serving runs rotate so the
// capture stays bounded per file and a crash loses at most one interval.
const DefaultProfileInterval = 30 * time.Second

// ProfileRecorder is the self-capturing profiler: StartProfiles begins a CPU
// profile into dir/cpu-0000.pb.gz and a background loop rotates it every
// interval, writing a heap profile (heap-NNNN.pb.gz) at each boundary. CPU
// segments are disjoint in time, so summing them reconstructs the run;
// consecutive heap profiles carry cumulative alloc_space, so adjacent
// segments subtract into per-interval allocation deltas. Stop closes the
// final segment pair and reports the first capture error.
type ProfileRecorder struct {
	dir      string
	interval time.Duration

	mu  sync.Mutex
	seg int
	cpu *os.File
	err error

	stopOnce sync.Once
	quit     chan struct{}
	done     chan struct{}
}

// StartProfiles creates dir (if needed) and starts the capture loop.
// interval ≤0 defaults to DefaultProfileInterval. Only one CPU profile can
// be active per process: StartProfiles fails if another capture (e.g. a
// -cpuprofile flag or the pprof debug endpoint) already holds it.
func StartProfiles(dir string, interval time.Duration) (*ProfileRecorder, error) {
	if dir == "" {
		return nil, fmt.Errorf("obs: profile capture needs a directory")
	}
	if interval <= 0 {
		interval = DefaultProfileInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	p := &ProfileRecorder{
		dir:      dir,
		interval: interval,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if err := p.startSegmentLocked(); err != nil {
		return nil, err
	}
	//vetgiraffe:ignore nakedgoroutine loop exits via p.quit and signals p.done; Stop closes and waits
	go p.loop()
	return p, nil
}

// Dir returns the capture directory.
func (p *ProfileRecorder) Dir() string {
	if p == nil {
		return ""
	}
	return p.dir
}

func (p *ProfileRecorder) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.rotate()
		case <-p.quit:
			return
		}
	}
}

// startSegmentLocked opens segment p.seg and starts the CPU profile into it.
func (p *ProfileRecorder) startSegmentLocked() error {
	f, err := os.Create(p.cpuPath(p.seg))
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("obs: starting CPU profile: %w", err)
	}
	p.cpu = f
	return nil
}

// closeSegmentLocked stops the running CPU profile, closes its file, and
// writes the boundary heap profile.
func (p *ProfileRecorder) closeSegmentLocked() error {
	if p.cpu == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := p.cpu.Close()
	p.cpu = nil
	hf, herr := os.Create(p.heapPath(p.seg))
	if herr == nil {
		// WriteTo(_, 0) emits the gzipped protobuf form; debug>0 would emit
		// the legacy text form, which profdiff and PGO cannot read.
		if werr := pprof.Lookup("heap").WriteTo(hf, 0); werr != nil && herr == nil {
			herr = werr
		}
		if cerr := hf.Close(); cerr != nil && herr == nil {
			herr = cerr
		}
	}
	if err == nil {
		err = herr
	}
	return err
}

// rotate closes the current segment and opens the next. A capture error
// latches: rotation stops, Stop reports it.
func (p *ProfileRecorder) rotate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	if err := p.closeSegmentLocked(); err != nil {
		p.err = err
		return
	}
	p.seg++
	if err := p.startSegmentLocked(); err != nil {
		p.err = err
	}
}

// Stop ends the capture: the in-flight CPU segment and its boundary heap
// profile are flushed and closed. Idempotent and nil-safe; returns the first
// error the recorder hit so a silently failing capture cannot pass for a
// healthy one.
func (p *ProfileRecorder) Stop() error {
	if p == nil {
		return nil
	}
	p.stopOnce.Do(func() {
		close(p.quit)
		<-p.done
		p.mu.Lock()
		if err := p.closeSegmentLocked(); err != nil && p.err == nil {
			p.err = err
		}
		p.mu.Unlock()
	})
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *ProfileRecorder) cpuPath(seg int) string {
	return filepath.Join(p.dir, fmt.Sprintf("cpu-%04d.pb.gz", seg))
}

func (p *ProfileRecorder) heapPath(seg int) string {
	return filepath.Join(p.dir, fmt.Sprintf("heap-%04d.pb.gz", seg))
}
