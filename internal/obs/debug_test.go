package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry(2)
	reg.Counter(MetricPipelineReads).Add(0, 1200)
	reg.Counter(MetricPipelineBatches).Add(1, 3)
	reg.Gauge(MetricPipelineInFlight).Set(0, 2)
	reg.Histogram(MetricStageMap).Observe(0, 4*time.Millisecond)

	slow := NewSlowReads(2, 4)
	slow.Offer(0, Exemplar{Read: "r1", Index: 7, Seeds: 3, TotalNanos: 900})

	d, err := StartDebugServer("127.0.0.1:0", reg, slow, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE " + MetricPipelineReads + " counter",
		MetricPipelineReads + " 1200",
		MetricPipelineInFlight + " 2",
		"# TYPE " + MetricStageMap + " histogram",
		MetricStageMap + `_bucket{le="+Inf"} 1`,
		MetricStageMap + "_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	progress, ctype := get("/progress")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/progress Content-Type = %q", ctype)
	}
	var p Progress
	if err := json.Unmarshal([]byte(progress), &p); err != nil {
		t.Fatalf("/progress is not valid JSON: %v\n%s", err, progress)
	}
	// The reporter sampled once at startup, after the counters above.
	if p.Reads != 1200 || p.Batches != 3 || p.InFlightBatches != 2 {
		t.Errorf("/progress = %+v, want reads 1200, batches 3, in-flight 2", p)
	}
	if p.StageP50Seconds[MetricStageMap] <= 0 {
		t.Errorf("/progress stage p50 for %s = %g, want > 0", MetricStageMap, p.StageP50Seconds[MetricStageMap])
	}

	vars, _ := get("/debug/vars")
	if !json.Valid([]byte(vars)) {
		t.Errorf("/debug/vars is not valid JSON:\n%s", vars)
	}

	slowBody, ctype := get("/slow")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/slow Content-Type = %q", ctype)
	}
	var slowPayload struct {
		K      int        `json:"k"`
		Window []Exemplar `json:"window"`
		Run    []Exemplar `json:"run"`
	}
	if err := json.Unmarshal([]byte(slowBody), &slowPayload); err != nil {
		t.Fatalf("/slow is not valid JSON: %v\n%s", err, slowBody)
	}
	if slowPayload.K != 4 || len(slowPayload.Window) != 1 || slowPayload.Window[0].Read != "r1" {
		t.Errorf("/slow = %+v, want k=4 and the offered exemplar in the window", slowPayload)
	}

	index, _ := get("/")
	for _, link := range []string{"/metrics", "/progress", "/slow", "/debug/pprof/", "/debug/vars"} {
		if !strings.Contains(index, link) {
			t.Errorf("index page missing link to %s", link)
		}
	}

	if _, err := http.Get(base + "/no-such-page"); err != nil {
		t.Fatalf("GET unknown path: %v", err)
	}
	resp, err := http.Get(base + "/no-such-page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", resp.StatusCode)
	}

	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// After Close the listener must be gone.
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
}

func TestReporterWindowedRate(t *testing.T) {
	reg := NewRegistry(1)
	r := StartReporter(reg, 10*time.Millisecond)
	defer r.Stop()
	reg.Counter(MetricPipelineReads).Add(0, 500)
	deadline := time.Now().Add(2 * time.Second)
	for {
		p := r.Progress()
		if p.Reads == 500 && p.ReadsPerSec > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reporter never observed the counter delta: %+v", p)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReporterNilRegistry(t *testing.T) {
	r := StartReporter(nil, time.Millisecond)
	defer r.Stop()
	p := r.Progress()
	if p.Reads != 0 || p.ReadsPerSec != 0 {
		t.Fatalf("nil-registry reporter published non-zero progress: %+v", p)
	}
	var nilR *Reporter
	nilR.Stop() // must not panic
	if nilR.Progress().Reads != 0 {
		t.Fatal("nil reporter progress")
	}
	var nilD *DebugServer
	if err := nilD.Close(); err != nil {
		t.Fatalf("nil DebugServer Close: %v", err)
	}
}
