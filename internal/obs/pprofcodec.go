package obs

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// A stdlib-only codec for the pprof protobuf profile format
// (github.com/google/pprof/proto/profile.proto), hand-rolled against the
// protobuf wire encoding so cmd/profdiff and `make pgo-capture` need no
// third-party dependency. The codec is deliberately lossy where loss is
// safe: mapping tables and instruction addresses are dropped (profdiff
// aligns by symbol, and the compiler's PGO pass consumes only function
// names, file names, line numbers, and start lines), but every frame —
// including inlined frames — survives a parse/encode round trip with its
// call-site line intact, so a merged capture still drives `go build -pgo`.

// ValueType is one sample dimension, e.g. {cpu, nanoseconds}.
type ValueType struct {
	Type, Unit string
}

// Frame is one resolved stack frame. Inlined frames are expanded in order
// (innermost first), each carrying the call-site line and the enclosing
// function's start line — the pair PGO needs to compute call-site offsets.
type Frame struct {
	Func      string
	File      string
	Line      int64
	StartLine int64
}

// Label is one pprof sample label; Str is set for string labels, Num (with
// optional NumUnit) for numeric ones.
type Label struct {
	Key     string
	Str     string
	Num     int64
	NumUnit string
}

// Sample is one resolved profile sample: the stack (leaf first), one value
// per SampleTypes entry, and the goroutine labels active at capture.
type Sample struct {
	Stack  []Frame
	Values []int64
	Labels []Label
}

// Profile is a parsed pprof profile with string and symbol tables resolved
// away.
type Profile struct {
	SampleTypes   []ValueType
	PeriodType    ValueType
	Period        int64
	TimeNanos     int64
	DurationNanos int64
	Samples       []*Sample
}

// StageBreakdown sums the sample values at index vi per value of the given
// label key (e.g. LabelStage); samples without the key land under "".
func (p *Profile) StageBreakdown(key string, vi int) map[string]int64 {
	out := make(map[string]int64)
	for _, s := range p.Samples {
		if vi >= len(s.Values) {
			continue
		}
		v := ""
		for _, l := range s.Labels {
			if l.Key == key && l.Str != "" {
				v = l.Str
				break
			}
		}
		out[v] += s.Values[vi]
	}
	return out
}

// ---------------------------------------------------------------------------
// Wire-format primitives.

const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

type pbuf struct {
	data []byte
	pos  int
}

func (b *pbuf) done() bool { return b.pos >= len(b.data) }

func (b *pbuf) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		if b.pos >= len(b.data) {
			return 0, io.ErrUnexpectedEOF
		}
		c := b.data[b.pos]
		b.pos++
		if i == 9 && c > 1 {
			return 0, fmt.Errorf("pprof: varint overflows uint64")
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

// field reads a tag, returning the field number and wire type.
func (b *pbuf) field() (int, int, error) {
	tag, err := b.uvarint()
	if err != nil {
		return 0, 0, err
	}
	return int(tag >> 3), int(tag & 7), nil
}

// bytesField reads a length-delimited payload.
func (b *pbuf) bytesField() ([]byte, error) {
	n, err := b.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b.data)-b.pos) {
		return nil, io.ErrUnexpectedEOF
	}
	p := b.data[b.pos : b.pos+int(n)]
	b.pos += int(n)
	return p, nil
}

func (b *pbuf) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := b.uvarint()
		return err
	case wireFixed64:
		if len(b.data)-b.pos < 8 {
			return io.ErrUnexpectedEOF
		}
		b.pos += 8
		return nil
	case wireBytes:
		_, err := b.bytesField()
		return err
	case wireFixed32:
		if len(b.data)-b.pos < 4 {
			return io.ErrUnexpectedEOF
		}
		b.pos += 4
		return nil
	default:
		return fmt.Errorf("pprof: unsupported wire type %d", wire)
	}
}

// repeatedUint64 appends one or more values for a repeated numeric field,
// handling both packed (wire type 2) and unpacked (wire type 0) encodings.
func repeatedUint64(b *pbuf, wire int, dst []uint64) ([]uint64, error) {
	if wire == wireVarint {
		v, err := b.uvarint()
		if err != nil {
			return nil, err
		}
		return append(dst, v), nil
	}
	if wire != wireBytes {
		return nil, fmt.Errorf("pprof: repeated field with wire type %d", wire)
	}
	payload, err := b.bytesField()
	if err != nil {
		return nil, err
	}
	pb := &pbuf{data: payload}
	for !pb.done() {
		v, err := pb.uvarint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// ---------------------------------------------------------------------------
// Parsing.

type pbRawLine struct {
	funcID uint64
	line   int64
}

type pbRawLocation struct {
	id    uint64
	lines []pbRawLine
}

type pbRawFunction struct {
	id         uint64
	name, file int64
	startLine  int64
}

type pbRawLabel struct {
	key, str, numUnit int64
	num               int64
}

type pbRawSample struct {
	locIDs []uint64
	values []int64
	labels []pbRawLabel
}

// ParsePProf decodes a pprof profile (gzipped or raw protobuf) into the
// resolved in-memory form.
func ParsePProf(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("pprof: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("pprof: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("pprof: %w", err)
		}
		data = raw
	}

	var (
		strtab     []string
		sampleType []ValueType
		periodRaw  []byte
		samples    []pbRawSample
		locs       = map[uint64]pbRawLocation{}
		funcs      = map[uint64]pbRawFunction{}
		p          = &Profile{}
	)
	// String indices inside ValueType submessages can appear before the
	// string table has been read, so value types are held raw and resolved
	// after the single pass.
	var sampleTypeRaw [][]byte

	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			payload, err := b.bytesField()
			if err != nil {
				return nil, err
			}
			sampleTypeRaw = append(sampleTypeRaw, payload)
		case 2: // sample
			payload, err := b.bytesField()
			if err != nil {
				return nil, err
			}
			s, err := parseSample(payload)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			payload, err := b.bytesField()
			if err != nil {
				return nil, err
			}
			l, err := parseLocation(payload)
			if err != nil {
				return nil, err
			}
			locs[l.id] = l
		case 5: // function
			payload, err := b.bytesField()
			if err != nil {
				return nil, err
			}
			f, err := parseFunction(payload)
			if err != nil {
				return nil, err
			}
			funcs[f.id] = f
		case 6: // string_table
			payload, err := b.bytesField()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(payload))
		case 9: // time_nanos
			v, err := b.uvarint()
			if err != nil {
				return nil, err
			}
			p.TimeNanos = int64(v)
		case 10: // duration_nanos
			v, err := b.uvarint()
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64(v)
		case 11: // period_type
			payload, err := b.bytesField()
			if err != nil {
				return nil, err
			}
			periodRaw = payload
		case 12: // period
			v, err := b.uvarint()
			if err != nil {
				return nil, err
			}
			p.Period = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i <= 0 || int(i) >= len(strtab) {
			return ""
		}
		return strtab[i]
	}
	for _, raw := range sampleTypeRaw {
		vt, err := parseValueType(raw, str)
		if err != nil {
			return nil, err
		}
		sampleType = append(sampleType, vt)
	}
	p.SampleTypes = sampleType
	if periodRaw != nil {
		vt, err := parseValueType(periodRaw, str)
		if err != nil {
			return nil, err
		}
		p.PeriodType = vt
	}

	for _, rs := range samples {
		s := &Sample{Values: rs.values}
		for _, id := range rs.locIDs {
			loc, ok := locs[id]
			if !ok {
				return nil, fmt.Errorf("pprof: sample references unknown location %d", id)
			}
			for _, ln := range loc.lines {
				fn, ok := funcs[ln.funcID]
				if !ok {
					return nil, fmt.Errorf("pprof: location %d references unknown function %d", id, ln.funcID)
				}
				s.Stack = append(s.Stack, Frame{
					Func:      str(fn.name),
					File:      str(fn.file),
					Line:      ln.line,
					StartLine: fn.startLine,
				})
			}
		}
		for _, rl := range rs.labels {
			s.Labels = append(s.Labels, Label{
				Key:     str(rl.key),
				Str:     str(rl.str),
				Num:     rl.num,
				NumUnit: str(rl.numUnit),
			})
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

func parseValueType(data []byte, str func(int64) string) (ValueType, error) {
	var t, u int64
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return ValueType{}, err
		}
		switch num {
		case 1:
			v, err := b.uvarint()
			if err != nil {
				return ValueType{}, err
			}
			t = int64(v)
		case 2:
			v, err := b.uvarint()
			if err != nil {
				return ValueType{}, err
			}
			u = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return ValueType{}, err
			}
		}
	}
	return ValueType{Type: str(t), Unit: str(u)}, nil
}

func parseSample(data []byte) (pbRawSample, error) {
	var s pbRawSample
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return s, err
		}
		switch num {
		case 1: // location_id
			s.locIDs, err = repeatedUint64(b, wire, s.locIDs)
			if err != nil {
				return s, err
			}
		case 2: // value
			var vals []uint64
			vals, err = repeatedUint64(b, wire, nil)
			if err != nil {
				return s, err
			}
			for _, v := range vals {
				s.values = append(s.values, int64(v))
			}
		case 3: // label
			payload, err := b.bytesField()
			if err != nil {
				return s, err
			}
			l, err := parseLabel(payload)
			if err != nil {
				return s, err
			}
			s.labels = append(s.labels, l)
		default:
			if err := b.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLabel(data []byte) (pbRawLabel, error) {
	var l pbRawLabel
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return l, err
		}
		switch num {
		case 1, 2, 3, 4:
			v, err := b.uvarint()
			if err != nil {
				return l, err
			}
			switch num {
			case 1:
				l.key = int64(v)
			case 2:
				l.str = int64(v)
			case 3:
				l.num = int64(v)
			case 4:
				l.numUnit = int64(v)
			}
		default:
			if err := b.skip(wire); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

func parseLocation(data []byte) (pbRawLocation, error) {
	var l pbRawLocation
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return l, err
		}
		switch num {
		case 1: // id
			v, err := b.uvarint()
			if err != nil {
				return l, err
			}
			l.id = v
		case 4: // line
			payload, err := b.bytesField()
			if err != nil {
				return l, err
			}
			ln, err := parseLine(payload)
			if err != nil {
				return l, err
			}
			l.lines = append(l.lines, ln)
		default:
			if err := b.skip(wire); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

func parseLine(data []byte) (pbRawLine, error) {
	var l pbRawLine
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return l, err
		}
		switch num {
		case 1:
			v, err := b.uvarint()
			if err != nil {
				return l, err
			}
			l.funcID = v
		case 2:
			v, err := b.uvarint()
			if err != nil {
				return l, err
			}
			l.line = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

func parseFunction(data []byte) (pbRawFunction, error) {
	var f pbRawFunction
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return f, err
		}
		switch num {
		case 1, 2, 4, 5:
			v, err := b.uvarint()
			if err != nil {
				return f, err
			}
			switch num {
			case 1:
				f.id = v
			case 2:
				f.name = int64(v)
			case 4:
				f.file = int64(v)
			case 5:
				f.startLine = int64(v)
			}
		default:
			if err := b.skip(wire); err != nil {
				return f, err
			}
		}
	}
	return f, nil
}

// ---------------------------------------------------------------------------
// Encoding.

func apUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func apTag(b []byte, field, wire int) []byte {
	return apUvarint(b, uint64(field)<<3|uint64(wire))
}

// apInt appends a varint field, omitted when zero (proto3 default).
func apInt(b []byte, field int, v int64) []byte {
	if v == 0 {
		return b
	}
	b = apTag(b, field, wireVarint)
	return apUvarint(b, uint64(v))
}

func apBytes(b []byte, field int, payload []byte) []byte {
	b = apTag(b, field, wireBytes)
	b = apUvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

// apPacked appends a packed repeated varint field.
func apPacked(b []byte, field int, vals []uint64) []byte {
	if len(vals) == 0 {
		return b
	}
	var payload []byte
	for _, v := range vals {
		payload = apUvarint(payload, v)
	}
	return apBytes(b, field, payload)
}

type strTable struct {
	idx  map[string]int64
	list []string
}

func newStrTable() *strTable {
	return &strTable{idx: map[string]int64{"": 0}, list: []string{""}}
}

func (t *strTable) id(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

// EncodePProf serializes the profile back to gzipped pprof protobuf. Symbol
// tables are rebuilt from the resolved frames: functions dedupe on
// (name, file, start line), locations on (function, call line). Each frame
// becomes its own single-line location — inline grouping is not reproduced,
// which pprof and the compiler's PGO pass both accept (frames are consumed
// linearly).
func (p *Profile) EncodePProf() ([]byte, error) {
	st := newStrTable()

	vtBytes := func(vt ValueType) []byte {
		var b []byte
		b = apInt(b, 1, st.id(vt.Type))
		b = apInt(b, 2, st.id(vt.Unit))
		return b
	}

	type funcKey struct {
		name, file string
		startLine  int64
	}
	type locKey struct {
		funcID uint64
		line   int64
	}
	funcIDs := map[funcKey]uint64{}
	var funcList []funcKey
	locIDs := map[locKey]uint64{}
	var locList []locKey

	var sampleBytes []byte
	for _, s := range p.Samples {
		var sb []byte
		ids := make([]uint64, 0, len(s.Stack))
		for _, fr := range s.Stack {
			fk := funcKey{name: fr.Func, file: fr.File, startLine: fr.StartLine}
			fid, ok := funcIDs[fk]
			if !ok {
				fid = uint64(len(funcList) + 1)
				funcIDs[fk] = fid
				funcList = append(funcList, fk)
			}
			lk := locKey{funcID: fid, line: fr.Line}
			lid, ok := locIDs[lk]
			if !ok {
				lid = uint64(len(locList) + 1)
				locIDs[lk] = lid
				locList = append(locList, lk)
			}
			ids = append(ids, lid)
		}
		sb = apPacked(sb, 1, ids)
		vals := make([]uint64, len(s.Values))
		for i, v := range s.Values {
			vals[i] = uint64(v)
		}
		sb = apPacked(sb, 2, vals)
		for _, l := range s.Labels {
			var lb []byte
			lb = apInt(lb, 1, st.id(l.Key))
			lb = apInt(lb, 2, st.id(l.Str))
			lb = apInt(lb, 3, l.Num)
			lb = apInt(lb, 4, st.id(l.NumUnit))
			sb = apBytes(sb, 3, lb)
		}
		sampleBytes = apBytes(sampleBytes, 2, sb)
	}

	var out []byte
	for _, vt := range p.SampleTypes {
		out = apBytes(out, 1, vtBytes(vt))
	}
	out = append(out, sampleBytes...)
	for i, lk := range locList {
		var lb []byte
		lb = apInt(lb, 1, int64(i+1))
		var line []byte
		line = apInt(line, 1, int64(lk.funcID))
		line = apInt(line, 2, lk.line)
		lb = apBytes(lb, 4, line)
		out = apBytes(out, 4, lb)
	}
	for i, fk := range funcList {
		var fb []byte
		fb = apInt(fb, 1, int64(i+1))
		fb = apInt(fb, 2, st.id(fk.name))
		fb = apInt(fb, 4, st.id(fk.file))
		fb = apInt(fb, 5, fk.startLine)
		out = apBytes(out, 5, fb)
	}
	for _, s := range st.list {
		out = apBytes(out, 6, []byte(s))
	}
	out = apInt(out, 9, p.TimeNanos)
	out = apInt(out, 10, p.DurationNanos)
	if p.PeriodType != (ValueType{}) {
		out = apBytes(out, 11, vtBytes(p.PeriodType))
	}
	out = apInt(out, 12, p.Period)

	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(out); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return gz.Bytes(), nil
}

// ---------------------------------------------------------------------------
// Merging.

// MergePProf combines profiles with identical sample and period types into
// one: samples with the same stack and labels sum their values, durations
// add, and the earliest start time wins. This is how rotated CPU segments
// (disjoint in time by construction) reassemble into the whole-run profile
// behind profdiff and `make pgo-capture`.
func MergePProf(profiles []*Profile) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("pprof: nothing to merge")
	}
	first := profiles[0]
	out := &Profile{
		SampleTypes: first.SampleTypes,
		PeriodType:  first.PeriodType,
		Period:      first.Period,
		TimeNanos:   first.TimeNanos,
	}
	merged := map[string]*Sample{}
	var order []string
	for _, p := range profiles {
		if err := compatible(first, p); err != nil {
			return nil, err
		}
		out.DurationNanos += p.DurationNanos
		if p.TimeNanos != 0 && (out.TimeNanos == 0 || p.TimeNanos < out.TimeNanos) {
			out.TimeNanos = p.TimeNanos
		}
		if p.Period > out.Period {
			out.Period = p.Period
		}
		for _, s := range p.Samples {
			k := sampleKey(s)
			if m, ok := merged[k]; ok {
				for i := range m.Values {
					if i < len(s.Values) {
						m.Values[i] += s.Values[i]
					}
				}
				continue
			}
			cp := &Sample{
				Stack:  append([]Frame(nil), s.Stack...),
				Values: append([]int64(nil), s.Values...),
				Labels: append([]Label(nil), s.Labels...),
			}
			merged[k] = cp
			order = append(order, k)
		}
	}
	for _, k := range order {
		out.Samples = append(out.Samples, merged[k])
	}
	return out, nil
}

func compatible(a, b *Profile) error {
	if len(a.SampleTypes) != len(b.SampleTypes) {
		return fmt.Errorf("pprof: cannot merge profiles with %d vs %d sample types",
			len(a.SampleTypes), len(b.SampleTypes))
	}
	for i := range a.SampleTypes {
		if a.SampleTypes[i] != b.SampleTypes[i] {
			return fmt.Errorf("pprof: cannot merge profiles with sample types %v vs %v",
				a.SampleTypes[i], b.SampleTypes[i])
		}
	}
	if a.PeriodType != b.PeriodType {
		return fmt.Errorf("pprof: cannot merge profiles with period types %v vs %v",
			a.PeriodType, b.PeriodType)
	}
	return nil
}

// sampleKey canonicalizes a sample's identity: the full stack plus sorted
// labels.
func sampleKey(s *Sample) string {
	var b strings.Builder
	for _, f := range s.Stack {
		b.WriteString(f.Func)
		b.WriteByte('@')
		b.WriteString(f.File)
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(f.Line, 10))
		b.WriteByte(';')
	}
	if len(s.Labels) > 0 {
		labels := append([]Label(nil), s.Labels...)
		sort.Slice(labels, func(i, j int) bool {
			if labels[i].Key != labels[j].Key {
				return labels[i].Key < labels[j].Key
			}
			return labels[i].Str < labels[j].Str
		})
		b.WriteByte('|')
		for _, l := range labels {
			b.WriteString(l.Key)
			b.WriteByte('=')
			b.WriteString(l.Str)
			b.WriteByte('#')
			b.WriteString(strconv.FormatInt(l.Num, 10))
			b.WriteByte(';')
		}
	}
	return b.String()
}
