package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestProfileRecorderSegments drives the recorder through explicit rotations
// (the ticker is set far out) and checks every segment parses as a profile.
func TestProfileRecorderSegments(t *testing.T) {
	dir := t.TempDir()
	p, err := StartProfiles(dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	labels := NewProfLabels(ClassBatch, 2)
	labels.ApplyMap(0)
	spin(20 * time.Millisecond)
	p.rotate()
	labels.ApplyEmit()
	spin(20 * time.Millisecond)
	labels.Clear()
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}

	for _, name := range []string{"cpu-0000.pb.gz", "cpu-0001.pb.gz", "heap-0000.pb.gz", "heap-0001.pb.gz"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("segment %s: %v", name, err)
		}
		if _, err := ParsePProf(data); err != nil {
			t.Errorf("segment %s does not parse: %v", name, err)
		}
	}
	// The rotated capture merges back into one whole-run profile.
	if _, err := LoadCPUProfiles(dir); err != nil {
		t.Fatalf("merging recorder output: %v", err)
	}
	if p.Dir() != dir {
		t.Errorf("Dir() = %q, want %q", p.Dir(), dir)
	}
}

// spin burns CPU for roughly d so SIGPROF has something to sample.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 1.0
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x = x*1.0000001 + 1e-9
		}
	}
	sinkFloat = x
}

func TestStartProfilesErrors(t *testing.T) {
	if _, err := StartProfiles("", time.Hour); err == nil {
		t.Error("empty directory accepted")
	}
	// Only one CPU profile may be active per process: a second recorder
	// must fail cleanly while the first holds the profiler.
	dir := t.TempDir()
	p, err := StartProfiles(dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if p2, err := StartProfiles(t.TempDir(), time.Hour); err == nil {
		p2.Stop()
		t.Error("second concurrent recorder accepted")
	}
}

// TestProfLabelsNil: every method on a nil *ProfLabels is a no-op, so call
// sites need no guards (mirroring the nil-safe registry handles).
func TestProfLabelsNil(t *testing.T) {
	var p *ProfLabels
	p.ApplyMap(3)
	p.ApplyIngest()
	p.ApplyEmit()
	p.ApplyExtract()
	p.Clear()
}

// TestProfLabelsClamp: out-of-range workers clamp onto the prebuilt contexts
// instead of panicking, and a non-positive pool still gets one slot.
func TestProfLabelsClamp(t *testing.T) {
	p := NewProfLabels(ClassServe, 2)
	p.ApplyMap(-1)
	p.ApplyMap(0)
	p.ApplyMap(1)
	p.ApplyMap(99)
	p.Clear()
	one := NewProfLabels(ClassBatch, 0)
	one.ApplyMap(0)
	one.ApplyMap(7)
	one.Clear()
}

// TestProfLabelsZeroAlloc: applying labels at a sub-batch boundary must not
// allocate — the contexts are prebuilt, the switch is an array index plus
// pprof.SetGoroutineLabels.
func TestProfLabelsZeroAlloc(t *testing.T) {
	p := NewProfLabels(ClassBatch, 4)
	defer p.Clear()
	if n := testing.AllocsPerRun(200, func() {
		p.ApplyMap(2)
		p.ApplyEmit()
	}); n != 0 {
		t.Errorf("label application allocates %.1f per switch, want 0", n)
	}
}
