package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestSlowReadsTopK(t *testing.T) {
	s := NewSlowReads(2, 3)
	if s.K() != 3 {
		t.Fatalf("K = %d, want 3", s.K())
	}
	// Offer six reads across both shards; only the three slowest survive.
	for i, total := range []int64{50, 10, 90, 30, 70, 20} {
		s.Offer(i%2, Exemplar{Read: fmt.Sprintf("r%d", i), Index: i, TotalNanos: total})
	}
	win := s.Window()
	if len(win) != 3 {
		t.Fatalf("window len = %d, want 3", len(win))
	}
	for i, wantTotal := range []int64{90, 70, 50} {
		if win[i].TotalNanos != wantTotal {
			t.Errorf("window[%d].TotalNanos = %d, want %d (slowest first)", i, win[i].TotalNanos, wantTotal)
		}
	}

	// Rotating folds the window into the run view and empties the window.
	s.Rotate()
	if len(s.Window()) != 0 {
		t.Error("window not empty after Rotate")
	}
	// A later window with one slower and one faster read: the run view keeps
	// the global top 3.
	s.Offer(0, Exemplar{Read: "late-slow", Index: 10, TotalNanos: 80})
	s.Offer(1, Exemplar{Read: "late-fast", Index: 11, TotalNanos: 5})
	top := s.Top()
	if len(top) != 3 {
		t.Fatalf("run top len = %d, want 3", len(top))
	}
	for i, wantTotal := range []int64{90, 80, 70} {
		if top[i].TotalNanos != wantTotal {
			t.Errorf("top[%d].TotalNanos = %d, want %d", i, top[i].TotalNanos, wantTotal)
		}
	}
}

func TestSlowReadsFloorRejects(t *testing.T) {
	s := NewSlowReads(1, 2)
	s.Offer(0, Exemplar{Read: "a", TotalNanos: 100})
	s.Offer(0, Exemplar{Read: "b", TotalNanos: 200})
	// Heap full; floor is 100. An equal-or-slower total must be rejected, a
	// faster one replaces the floor entry.
	s.Offer(0, Exemplar{Read: "reject", TotalNanos: 100})
	s.Offer(0, Exemplar{Read: "accept", TotalNanos: 150})
	win := s.Window()
	if len(win) != 2 || win[0].Read != "b" || win[1].Read != "accept" {
		t.Errorf("window = %+v, want [b accept]", win)
	}
	// Zero-duration reads never enter (floor starts at 0).
	s2 := NewSlowReads(1, 2)
	s2.Offer(0, Exemplar{Read: "zero", TotalNanos: 0})
	if len(s2.Window()) != 0 {
		t.Error("zero-duration read entered the reservoir")
	}
}

func TestSlowReadsNil(t *testing.T) {
	var s *SlowReads
	s.Offer(0, Exemplar{TotalNanos: 1}) // must not panic
	s.Rotate()
	if s.K() != 0 || s.Window() != nil || s.Top() != nil {
		t.Error("nil reservoir returned non-zero state")
	}
	var m Manifest
	m.AddSlowReads(s)
	if m.SlowReads != nil {
		t.Error("nil reservoir archived exemplars")
	}
}

func TestSlowReadsShardClamp(t *testing.T) {
	s := NewSlowReads(2, 1)
	s.Offer(99, Exemplar{Read: "clamped", TotalNanos: 10}) // out of range → shard 0
	s.Offer(-1, Exemplar{Read: "negative", TotalNanos: 20})
	if win := s.Window(); len(win) != 1 || win[0].Read != "negative" {
		t.Errorf("window = %+v, want the clamped offers folded into shard 0", win)
	}
}

// TestSlowReadsConcurrent hammers Offer from many goroutines while Rotate,
// Window, and Top run concurrently — the -race gate for the reservoir.
func TestSlowReadsConcurrent(t *testing.T) {
	const workers = 4
	s := NewSlowReads(workers, 8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s.Offer(w, Exemplar{Read: "r", Index: i, Worker: w, TotalNanos: int64(i%257) + 1})
			}
		}(w)
	}
	var scrapeWg sync.WaitGroup
	scrapeWg.Add(1)
	go func() {
		defer scrapeWg.Done()
		for i := 0; i < 50; i++ {
			s.Window()
			s.Top()
			if i%10 == 9 {
				s.Rotate()
			}
		}
	}()
	wg.Wait()
	scrapeWg.Wait()
	s.Rotate()
	top := s.Top()
	if len(top) != 8 {
		t.Fatalf("run top len = %d, want 8", len(top))
	}
	// The slowest possible total is 257; the reservoir must have kept it.
	if top[0].TotalNanos != 257 {
		t.Errorf("top total = %d, want 257", top[0].TotalNanos)
	}
}

// TestOfferZeroAlloc is the acceptance criterion: exemplar capture adds zero
// allocations on the hot path — for disabled capture (nil reservoir), for
// the floor fast-reject, and for accepted offers (the heap is preallocated).
func TestOfferZeroAlloc(t *testing.T) {
	var nilRes *SlowReads
	if n := testing.AllocsPerRun(100, func() {
		nilRes.Offer(0, Exemplar{Read: "r", TotalNanos: 100})
	}); n != 0 {
		t.Errorf("nil reservoir Offer allocates %.1f/op", n)
	}

	s := NewSlowReads(1, 4)
	for i := int64(1); i <= 4; i++ {
		s.Offer(0, Exemplar{Read: "seed", TotalNanos: 1000 * i})
	}
	if n := testing.AllocsPerRun(100, func() {
		s.Offer(0, Exemplar{Read: "fast", TotalNanos: 1}) // below floor
	}); n != 0 {
		t.Errorf("floor-rejected Offer allocates %.1f/op", n)
	}

	var total int64 = 10000
	if n := testing.AllocsPerRun(100, func() {
		total++
		s.Offer(0, Exemplar{Read: "slow", TotalNanos: total}) // accepted, replaces root
	}); n != 0 {
		t.Errorf("accepted Offer allocates %.1f/op", n)
	}
}
