package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// flatProfile builds a single-frame-per-sample CPU profile from a
// function→nanos map, optionally tagging everything with a stage label.
func flatProfile(flat map[string]int64, stages map[string]string) *Profile {
	p := &Profile{
		SampleTypes:   []ValueType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}},
		PeriodType:    ValueType{Type: "cpu", Unit: "nanoseconds"},
		Period:        10_000_000,
		DurationNanos: 1_000_000_000,
	}
	// Deterministic order so encoded fixtures are stable.
	names := make([]string, 0, len(flat))
	for n := range flat {
		names = append(names, n)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		s := &Sample{
			Stack: []Frame{
				{Func: name, File: "repro/hot.go", Line: 10, StartLine: 5},
				{Func: "main", File: "repro/main.go", Line: 20, StartLine: 15},
			},
			Values: []int64{1, flat[name]},
		}
		if st, ok := stages[name]; ok {
			s.Labels = []Label{{Key: LabelStage, Str: st}}
		}
		p.Samples = append(p.Samples, s)
	}
	return p
}

// TestProfDiffSlowdownTrips is the acceptance fixture: a deliberate hot spot
// new in the candidate must trip the gate, with no added/removed exemption.
func TestProfDiffSlowdownTrips(t *testing.T) {
	base := flatProfile(map[string]int64{"mapper": 600, "emit": 400},
		map[string]string{"mapper": StageMap, "emit": StageEmit})
	cand := flatProfile(map[string]int64{"mapper": 600, "emit": 400, "slowHot": 1000},
		map[string]string{"mapper": StageMap, "emit": StageEmit, "slowHot": StageMap})

	r := DiffProfiles(base, cand, ProfDiffOptions{})
	if !r.Regressed() {
		t.Fatal("deliberate slowdown did not trip the gate")
	}
	var hot *ProfDiffRow
	for i := range r.Rows {
		if r.Rows[i].Name == "slowHot" {
			hot = &r.Rows[i]
		}
	}
	if hot == nil {
		t.Fatal("slowHot missing from report")
	}
	if !hot.Failed {
		t.Errorf("slowHot not failed: %+v", *hot)
	}
	if hot.BaseShare != 0 {
		t.Errorf("slowHot base share = %v, want 0 (absent from baseline)", hot.BaseShare)
	}
	if hot.CandShare != 0.5 {
		t.Errorf("slowHot cand share = %v, want 0.5", hot.CandShare)
	}
	if hot.Stages != "map 100%" {
		t.Errorf("slowHot stages = %q, want %q", hot.Stages, "map 100%")
	}
	// The report is sorted by share movement: the regression leads.
	if r.Rows[0].Name != "slowHot" {
		t.Errorf("first row is %s, want slowHot", r.Rows[0].Name)
	}
	// mapper fell from 60% to 30% — a share *drop* must not fail.
	for _, row := range r.Rows {
		if row.Name != "slowHot" && row.Failed {
			t.Errorf("%s failed the gate without regressing: %+v", row.Name, row)
		}
	}

	var md strings.Builder
	if err := r.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{"slowHot", "**FAIL**", "**Verdict: REGRESSED.**", "map 100%"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

// TestProfDiffScaleInvariant: the same workload captured 3× longer moves no
// shares, so the gate stays quiet — the cross-machine robustness property.
func TestProfDiffScaleInvariant(t *testing.T) {
	base := flatProfile(map[string]int64{"mapper": 600, "emit": 400}, nil)
	cand := flatProfile(map[string]int64{"mapper": 1800, "emit": 1200}, nil)
	r := DiffProfiles(base, cand, ProfDiffOptions{})
	if r.Regressed() {
		t.Fatalf("scaled-only profile regressed: %+v", r.Rows)
	}
	var md strings.Builder
	if err := r.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "Verdict: within thresholds.") {
		t.Errorf("markdown missing clean verdict:\n%s", md.String())
	}
}

// TestProfDiffMinShareExempt: a rise that stays under MinShare is noise, not
// a regression.
func TestProfDiffMinShareExempt(t *testing.T) {
	base := flatProfile(map[string]int64{"mapper": 1000}, nil)
	cand := flatProfile(map[string]int64{"mapper": 955, "tiny": 45}, nil)
	// tiny rose 0% → 4.5%: past the default ShareRise but under MinShare 0.05.
	if r := DiffProfiles(base, cand, ProfDiffOptions{}); r.Regressed() {
		t.Fatalf("sub-MinShare rise regressed: %+v", r.Rows)
	}
	// Tightening MinShare fires it.
	if r := DiffProfiles(base, cand, ProfDiffOptions{MinShare: 0.02}); !r.Regressed() {
		t.Fatal("rise past a tightened MinShare did not trip")
	}
}

// TestLoadCPUProfilesDir merges a ProfileRecorder-style directory: cpu-*
// segments sum, heap-* files are ignored.
func TestLoadCPUProfilesDir(t *testing.T) {
	dir := t.TempDir()
	seg := flatProfile(map[string]int64{"mapper": 500}, map[string]string{"mapper": StageMap})
	data, err := seg.EncodePProf()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu-0000.pb.gz", "cpu-0001.pb.gz"} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A heap profile in the directory must not be swept into the CPU merge.
	if err := os.WriteFile(filepath.Join(dir, "heap-0000.pb.gz"), []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}

	merged, err := LoadCPUProfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	ix := indexProfile(merged)
	if ix.flat["mapper"] != 1000 {
		t.Errorf("merged mapper flat = %d, want 1000 (two 500ns segments)", ix.flat["mapper"])
	}

	// Single-file mode still works.
	single, err := LoadCPUProfiles(filepath.Join(dir, "cpu-0000.pb.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if got := indexProfile(single).flat["mapper"]; got != 500 {
		t.Errorf("single-file mapper flat = %d, want 500", got)
	}

	// An empty directory is an explicit error, not an empty profile.
	if _, err := LoadCPUProfiles(t.TempDir()); err == nil {
		t.Error("loading an empty directory succeeded")
	}
}
