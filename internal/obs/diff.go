package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// This file compares two recorded runs — manifest plus optional archived
// series — and renders a markdown perf report with a machine-readable
// verdict. cmd/obsdiff wraps it as the CI perf-regression gate: bench-smoke
// output is diffed against the checked-in baseline under results/baseline/
// and the build fails when throughput drops or tail latency rises past the
// noise thresholds.

// RunData is one loaded run: the manifest (required) and the archived series
// (optional — older runs and crashed runs may not have one).
type RunData struct {
	Path     string
	Manifest *Manifest
	Series   *Series
}

// LoadRun loads a run from a manifest file or a directory containing one.
// A directory is searched for run-manifest.json, then for a single
// *manifest*.json. The series file is resolved from the manifest's
// Notes["series"] basename next to the manifest, falling back to a single
// *.series file in the same directory; a missing series is not an error.
func LoadRun(path string) (*RunData, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	manifestPath := path
	if info.IsDir() {
		manifestPath, err = findManifest(path)
		if err != nil {
			return nil, err
		}
	}
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("obs: manifest %s: %w", manifestPath, err)
	}
	run := &RunData{Path: manifestPath, Manifest: &man}
	dir := filepath.Dir(manifestPath)
	var seriesPath string
	if name := man.Notes["series"]; name != "" {
		p := filepath.Join(dir, filepath.Base(name))
		if _, err := os.Stat(p); err == nil {
			seriesPath = p
		}
	}
	if seriesPath == "" {
		matches, _ := filepath.Glob(filepath.Join(dir, "*.series"))
		if len(matches) == 1 {
			seriesPath = matches[0]
		}
	}
	if seriesPath != "" {
		s, err := LoadSeries(seriesPath)
		if err != nil {
			return nil, err
		}
		run.Series = s
	}
	return run, nil
}

// findManifest locates the manifest inside a run directory.
func findManifest(dir string) (string, error) {
	p := filepath.Join(dir, "run-manifest.json")
	if _, err := os.Stat(p); err == nil {
		return p, nil
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*manifest*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 1 {
		return matches[0], nil
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("obs: no manifest in %s", dir)
	}
	return "", fmt.Errorf("obs: %d manifests in %s, pass the file explicitly", len(matches), dir)
}

// DiffOptions are the regression thresholds. The defaults absorb normal
// run-to-run noise on a quiet machine; CI widens them further because the
// baseline was recorded on different hardware.
type DiffOptions struct {
	// P99Rise is the fractional p99 increase that counts as a regression
	// (0.25 = +25%). The log2 histogram quantizes p99 to powers of two, so
	// values below 1.0 effectively flag "moved up a bucket".
	P99Rise float64
	// ThroughputDrop is the fractional reads/s decrease that counts as a
	// regression (0.15 = -15%).
	ThroughputDrop float64
	// MinCount exempts histograms with fewer observations in either run
	// (quantiles of tiny samples are noise).
	MinCount int64
	// MinP99Seconds exempts p99s below this absolute floor in the candidate;
	// a 2µs→4µs bucket hop is not a regression worth failing CI over.
	MinP99Seconds float64
}

// DefaultDiffOptions returns the single-machine defaults.
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{
		P99Rise:        0.25,
		ThroughputDrop: 0.15,
		MinCount:       100,
		MinP99Seconds:  1e-4,
	}
}

// DiffRow is one metric's comparison.
type DiffRow struct {
	Name      string
	Base      float64
	Cand      float64
	Delta     float64 // fractional change, candidate vs baseline
	Gated     bool    // participates in the regression verdict
	Regressed bool
	Note      string
}

// DiffReport is the full comparison.
type DiffReport struct {
	Baseline, Candidate *RunData
	Opts                DiffOptions
	// Throughput rows are reads (or items) per second from *_total counters
	// over manifest elapsed time; only the pipeline read counter is gated.
	Throughput []DiffRow
	// Latency rows compare histogram p99s; Base/Cand are seconds.
	Latency []DiffRow
	// Gauges compare final gauge levels (absolute values, not rates) —
	// informational, never gated: levels like queue depth or the runtime_*
	// telemetry (heap live/goal, GC pause p99) are workload-shaped, so the
	// report shows the drift and a human judges it. Gauges present in both
	// runs align here rather than landing in Added/Removed.
	Gauges []DiffRow
	// Added and Removed list metrics present in only one run — reported, not
	// failed, so instrumentation changes don't block CI.
	Added, Removed []string
}

// Regressed reports whether any gated row breached its threshold.
func (r *DiffReport) Regressed() bool {
	for _, row := range r.Throughput {
		if row.Regressed {
			return true
		}
	}
	for _, row := range r.Latency {
		if row.Regressed {
			return true
		}
	}
	return false
}

// Diff aligns the two runs by metric name and computes the comparison.
func Diff(base, cand *RunData, opts DiffOptions) *DiffReport {
	if opts.P99Rise <= 0 {
		opts.P99Rise = DefaultDiffOptions().P99Rise
	}
	if opts.ThroughputDrop <= 0 {
		opts.ThroughputDrop = DefaultDiffOptions().ThroughputDrop
	}
	if opts.MinCount <= 0 {
		opts.MinCount = DefaultDiffOptions().MinCount
	}
	if opts.MinP99Seconds <= 0 {
		opts.MinP99Seconds = DefaultDiffOptions().MinP99Seconds
	}
	r := &DiffReport{Baseline: base, Candidate: cand, Opts: opts}

	bm, cm := snapshotOf(base), snapshotOf(cand)

	// Throughput from cumulative counters over elapsed wall time.
	for _, name := range unionNames(bm.Counters, cm.Counters) {
		bv, bok := bm.Counters[name]
		cv, cok := cm.Counters[name]
		switch {
		case bok && !cok:
			r.Removed = append(r.Removed, name)
			continue
		case cok && !bok:
			r.Added = append(r.Added, name)
			continue
		}
		if !strings.HasSuffix(name, "_total") {
			continue
		}
		row := DiffRow{
			Name: name,
			Base: Rate(float64(bv), elapsedOf(base)),
			Cand: Rate(float64(cv), elapsedOf(cand)),
		}
		if row.Base > 0 {
			row.Delta = SanitizeFloat(row.Cand/row.Base - 1)
		}
		if name == MetricPipelineReads {
			row.Gated = true
			row.Regressed = row.Base > 0 && row.Delta < -opts.ThroughputDrop
		}
		r.Throughput = append(r.Throughput, row)
	}

	// Steady-state read rate from the archived series (middle half of the
	// samples, dodging warm-up and drain), informational.
	if row, ok := steadyRate(base, cand); ok {
		r.Throughput = append(r.Throughput, row)
	}

	// Gauge levels (runtime_* telemetry and pipeline levels), informational.
	for _, name := range unionNames(bm.Gauges, cm.Gauges) {
		bv, bok := bm.Gauges[name]
		cv, cok := cm.Gauges[name]
		switch {
		case bok && !cok:
			r.Removed = append(r.Removed, name)
			continue
		case cok && !bok:
			r.Added = append(r.Added, name)
			continue
		}
		row := DiffRow{Name: name, Base: float64(bv), Cand: float64(cv)}
		if bv != 0 {
			row.Delta = SanitizeFloat(row.Cand/row.Base - 1)
		}
		r.Gauges = append(r.Gauges, row)
	}

	// Tail latency per histogram.
	for _, name := range unionNames(bm.Histograms, cm.Histograms) {
		bh, bok := bm.Histograms[name]
		ch, cok := cm.Histograms[name]
		switch {
		case bok && !cok:
			r.Removed = append(r.Removed, name)
			continue
		case cok && !bok:
			r.Added = append(r.Added, name)
			continue
		}
		row := DiffRow{Name: name, Base: bh.P99, Cand: ch.P99, Gated: true}
		if bh.P99 > 0 {
			row.Delta = SanitizeFloat(ch.P99/bh.P99 - 1)
		}
		switch {
		case bh.Count < opts.MinCount || ch.Count < opts.MinCount:
			row.Gated = false
			row.Note = fmt.Sprintf("n/a: counts %d/%d below %d", bh.Count, ch.Count, opts.MinCount)
		case ch.P99 <= opts.MinP99Seconds:
			row.Note = fmt.Sprintf("below %.0fµs floor", opts.MinP99Seconds*1e6)
		case bh.P99 > 0 && row.Delta > opts.P99Rise:
			row.Regressed = true
		}
		r.Latency = append(r.Latency, row)
	}
	sort.Strings(r.Added)
	sort.Strings(r.Removed)
	return r
}

// snapshotOf returns the run's final metric snapshot (empty if absent).
func snapshotOf(run *RunData) *Snapshot {
	if run != nil && run.Manifest != nil && run.Manifest.Metrics != nil {
		return run.Manifest.Metrics
	}
	return &Snapshot{}
}

// elapsedOf returns the run's wall time.
func elapsedOf(run *RunData) time.Duration {
	if run == nil || run.Manifest == nil {
		return 0
	}
	return time.Duration(run.Manifest.ElapsedSeconds * float64(time.Second))
}

// steadyRate derives the pipeline read rate over each run's middle samples.
func steadyRate(base, cand *RunData) (DiffRow, bool) {
	bv, bok := seriesSteadyRate(base)
	cv, cok := seriesSteadyRate(cand)
	if !bok || !cok {
		return DiffRow{}, false
	}
	row := DiffRow{
		Name: MetricPipelineReads + " (steady-state, from series)",
		Base: bv,
		Cand: cv,
	}
	if bv > 0 {
		row.Delta = SanitizeFloat(cv/bv - 1)
	}
	return row, true
}

// seriesSteadyRate computes the read rate over the middle half of a run's
// series samples.
func seriesSteadyRate(run *RunData) (float64, bool) {
	if run == nil || run.Series == nil || len(run.Series.Samples) < 4 {
		return 0, false
	}
	s := run.Series.Samples
	lo, hi := len(s)/4, len(s)-1-len(s)/4
	if hi <= lo {
		return 0, false
	}
	dr := s[hi].Counters[MetricPipelineReads] - s[lo].Counters[MetricPipelineReads]
	dt := s[hi].Time.Sub(s[lo].Time)
	if dr <= 0 || dt <= 0 {
		return 0, false
	}
	return Rate(float64(dr), dt), true
}

// unionNames returns the sorted union of two metric maps' keys.
func unionNames[A, B any](a map[string]A, b map[string]B) []string {
	set := make(map[string]struct{}, len(a)+len(b))
	for name := range a {
		set[name] = struct{}{}
	}
	for name := range b {
		set[name] = struct{}{}
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteMarkdown renders the report for humans and CI artifacts.
func (r *DiffReport) WriteMarkdown(w io.Writer) error {
	verdict := "PASS"
	if r.Regressed() {
		verdict = "REGRESSED"
	}
	if _, err := fmt.Fprintf(w, "# Perf diff: %s\n\n", verdict); err != nil {
		return err
	}
	fmt.Fprintf(w, "| run | manifest | tool | host | go | elapsed |\n|---|---|---|---|---|---|\n")
	for _, rd := range []struct {
		label string
		run   *RunData
	}{{"baseline", r.Baseline}, {"candidate", r.Candidate}} {
		m := rd.run.Manifest
		fmt.Fprintf(w, "| %s | `%s` | %s | %s | %s | %.2fs |\n",
			rd.label, rd.run.Path, m.Tool, m.Hostname, m.GoVersion, m.ElapsedSeconds)
	}

	fmt.Fprintf(w, "\n## Throughput\n\n| metric | baseline/s | candidate/s | delta | verdict |\n|---|---:|---:|---:|---|\n")
	for _, row := range r.Throughput {
		fmt.Fprintf(w, "| %s | %.1f | %.1f | %+.1f%% | %s |\n",
			row.Name, row.Base, row.Cand, row.Delta*100, rowVerdict(row))
	}

	fmt.Fprintf(w, "\n## Tail latency (p99)\n\n| metric | baseline | candidate | delta | verdict |\n|---|---:|---:|---:|---|\n")
	for _, row := range r.Latency {
		fmt.Fprintf(w, "| %s | %s | %s | %+.1f%% | %s |\n",
			row.Name, fmtSeconds(row.Base), fmtSeconds(row.Cand), row.Delta*100, rowVerdict(row))
	}

	if len(r.Gauges) > 0 {
		fmt.Fprintf(w, "\n## Gauge levels (final values, informational)\n\n| metric | baseline | candidate | delta |\n|---|---:|---:|---:|\n")
		for _, row := range r.Gauges {
			fmt.Fprintf(w, "| %s | %.0f | %.0f | %+.1f%% |\n",
				row.Name, row.Base, row.Cand, row.Delta*100)
		}
	}

	if len(r.Added) > 0 {
		fmt.Fprintf(w, "\nMetrics only in candidate: %s\n", strings.Join(r.Added, ", "))
	}
	if len(r.Removed) > 0 {
		fmt.Fprintf(w, "\nMetrics only in baseline: %s\n", strings.Join(r.Removed, ", "))
	}

	if m := r.Candidate.Manifest; m != nil && len(m.SlowReads) > 0 {
		fmt.Fprintf(w, "\n## Candidate slow reads\n\n| read | seeds | cluster | extend | total | cache build |\n|---|---:|---:|---:|---:|---:|\n")
		for _, ex := range m.SlowReads {
			fmt.Fprintf(w, "| %s | %d | %s | %s | %s | %s |\n",
				ex.Read, ex.Seeds,
				fmtSeconds(time.Duration(ex.ClusterNanos).Seconds()),
				fmtSeconds(time.Duration(ex.ExtendNanos).Seconds()),
				fmtSeconds(time.Duration(ex.TotalNanos).Seconds()),
				fmtSeconds(time.Duration(ex.CacheBuildNanos).Seconds()))
		}
	}

	_, err := fmt.Fprintf(w, "\nVerdict: **%s** (p99 rise >%.0f%%, throughput drop >%.0f%%, min count %d)\n",
		verdict, r.Opts.P99Rise*100, r.Opts.ThroughputDrop*100, r.Opts.MinCount)
	return err
}

// rowVerdict renders a row's outcome cell.
func rowVerdict(row DiffRow) string {
	switch {
	case row.Regressed:
		return "**REGRESSED**"
	case row.Note != "":
		return row.Note
	case !row.Gated:
		return "info"
	default:
		return "ok"
	}
}

// fmtSeconds renders a duration in engineer-friendly units.
func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-6:
		return fmt.Sprintf("%.0fns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
