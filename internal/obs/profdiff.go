package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// profdiff: align two CPU profiles by function symbol and report flat-time
// regressions. All comparisons run on each function's *share* of its own
// run's total CPU time, not raw nanoseconds — two captures rarely run for
// the same duration or on the same machine, but "mapper went from 30% of
// the run to 45%" survives both. cmd/profdiff fronts this next to obsdiff
// in `make perfdiff` and CI: obsdiff answers whether the run got slower,
// profdiff answers which function is to blame.

// LoadCPUProfiles loads a CPU profile from a file, or merges every
// cpu-*.pb.gz segment under a directory (the layout ProfileRecorder
// writes) into the whole-run profile.
func LoadCPUProfiles(path string) (*Profile, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	files := []string{path}
	if fi.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "cpu-*.pb.gz"))
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("profdiff: no cpu-*.pb.gz segments under %s", path)
		}
		sort.Strings(files)
	}
	profiles := make([]*Profile, 0, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		p, err := ParsePProf(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		profiles = append(profiles, p)
	}
	return MergePProf(profiles)
}

// cpuValueIndex picks the sample-value column holding CPU time: the
// {cpu, nanoseconds} dimension of a runtime CPU profile, falling back to
// the last column (pprof convention for the default).
func cpuValueIndex(p *Profile) int {
	for i, vt := range p.SampleTypes {
		if vt.Type == "cpu" {
			return i
		}
	}
	return len(p.SampleTypes) - 1
}

// profIndex aggregates one profile by function symbol.
type profIndex struct {
	total int64            // total CPU nanos
	flat  map[string]int64 // leaf-frame time per function
	cum   map[string]int64 // time with the function anywhere on stack
	stage map[string]map[string]int64
}

func indexProfile(p *Profile) *profIndex {
	ix := &profIndex{
		flat:  map[string]int64{},
		cum:   map[string]int64{},
		stage: map[string]map[string]int64{},
	}
	vi := cpuValueIndex(p)
	if vi < 0 {
		return ix
	}
	seen := map[string]bool{}
	for _, s := range p.Samples {
		if vi >= len(s.Values) {
			continue
		}
		v := s.Values[vi]
		ix.total += v
		if len(s.Stack) == 0 {
			continue
		}
		leaf := s.Stack[0].Func
		ix.flat[leaf] += v
		stage := ""
		for _, l := range s.Labels {
			if l.Key == LabelStage && l.Str != "" {
				stage = l.Str
				break
			}
		}
		byStage := ix.stage[leaf]
		if byStage == nil {
			byStage = map[string]int64{}
			ix.stage[leaf] = byStage
		}
		byStage[stage] += v
		// Cumulative time counts each function once per sample even when
		// recursion puts it on the stack several times.
		for k := range seen {
			delete(seen, k)
		}
		for _, f := range s.Stack {
			if !seen[f.Func] {
				seen[f.Func] = true
				ix.cum[f.Func] += v
			}
		}
	}
	return ix
}

// ProfDiffOptions are the gate thresholds; zero values take defaults.
type ProfDiffOptions struct {
	// ShareRise is the flat-share increase (in absolute share points)
	// that fails the gate. Default 0.04: a function must absorb 4 more
	// points of the run's CPU than it did in the baseline.
	ShareRise float64
	// MinShare exempts functions that stay small: the gate only fires if
	// the candidate share is at least this. Default 0.05.
	MinShare float64
	// Top bounds the rows in the report (failed rows always appear).
	// Default 20.
	Top int
}

func (o ProfDiffOptions) withDefaults() ProfDiffOptions {
	if o.ShareRise == 0 {
		o.ShareRise = 0.04
	}
	if o.MinShare == 0 {
		o.MinShare = 0.05
	}
	if o.Top == 0 {
		o.Top = 20
	}
	return o
}

// ProfDiffRow is one function's alignment across the two profiles. Shares
// are fractions of each run's total CPU time.
type ProfDiffRow struct {
	Name                 string
	BaseShare, CandShare float64 // flat share
	BaseCum, CandCum     float64 // cumulative share
	Failed               bool
	Stages               string // candidate flat time by stage label
}

// ProfDiffReport is the verdict of aligning two CPU profiles.
type ProfDiffReport struct {
	Opts                       ProfDiffOptions
	BaseTotal, CandTotal       time.Duration
	BaseDuration, CandDuration time.Duration
	Rows                       []ProfDiffRow
}

// DiffProfiles aligns two CPU profiles by function symbol.
func DiffProfiles(base, cand *Profile, opts ProfDiffOptions) *ProfDiffReport {
	opts = opts.withDefaults()
	bix, cix := indexProfile(base), indexProfile(cand)
	r := &ProfDiffReport{
		Opts:         opts,
		BaseTotal:    time.Duration(bix.total),
		CandTotal:    time.Duration(cix.total),
		BaseDuration: time.Duration(base.DurationNanos),
		CandDuration: time.Duration(cand.DurationNanos),
	}

	names := map[string]bool{}
	for n := range bix.flat {
		names[n] = true
	}
	for n := range cix.flat {
		names[n] = true
	}
	for name := range names {
		row := ProfDiffRow{Name: name}
		if bix.total > 0 {
			row.BaseShare = float64(bix.flat[name]) / float64(bix.total)
			row.BaseCum = float64(bix.cum[name]) / float64(bix.total)
		}
		if cix.total > 0 {
			row.CandShare = float64(cix.flat[name]) / float64(cix.total)
			row.CandCum = float64(cix.cum[name]) / float64(cix.total)
		}
		// A function absent from the baseline gates like any other: its
		// baseline share is simply zero, so brand-new hot code cannot hide
		// behind an added/removed exemption the way renamed metrics can.
		row.Failed = row.CandShare-row.BaseShare >= opts.ShareRise &&
			row.CandShare >= opts.MinShare
		row.Stages = stageSummary(cix, name)
		r.Rows = append(r.Rows, row)
	}
	sort.Slice(r.Rows, func(i, j int) bool {
		di := r.Rows[i].CandShare - r.Rows[i].BaseShare
		dj := r.Rows[j].CandShare - r.Rows[j].BaseShare
		if di != dj {
			return di > dj
		}
		return r.Rows[i].Name < r.Rows[j].Name
	})
	return r
}

// stageSummary formats a function's candidate flat time split by the stage
// label, largest first, e.g. "map 82%, emit 18%".
func stageSummary(ix *profIndex, name string) string {
	byStage := ix.stage[name]
	flat := ix.flat[name]
	if len(byStage) == 0 || flat == 0 {
		return ""
	}
	type sv struct {
		stage string
		v     int64
	}
	parts := make([]sv, 0, len(byStage))
	for s, v := range byStage {
		parts = append(parts, sv{s, v})
	}
	sort.Slice(parts, func(i, j int) bool {
		if parts[i].v != parts[j].v {
			return parts[i].v > parts[j].v
		}
		return parts[i].stage < parts[j].stage
	})
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		stage := p.stage
		if stage == "" {
			stage = "(unlabeled)"
		}
		out += fmt.Sprintf("%s %.0f%%", stage, 100*float64(p.v)/float64(flat))
	}
	return out
}

// Regressed reports whether any function tripped the gate.
func (r *ProfDiffReport) Regressed() bool {
	for _, row := range r.Rows {
		if row.Failed {
			return true
		}
	}
	return false
}

// WriteMarkdown renders the report: run totals, then the top functions by
// flat-share movement (every failed row included regardless of rank).
func (r *ProfDiffReport) WriteMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "# CPU profile diff\n\n")
	fmt.Fprintf(w, "Baseline: %v CPU over %v wall. Candidate: %v CPU over %v wall.\n",
		r.BaseTotal.Round(time.Millisecond), r.BaseDuration.Round(time.Millisecond),
		r.CandTotal.Round(time.Millisecond), r.CandDuration.Round(time.Millisecond))
	fmt.Fprintf(w, "Shares are fractions of each run's own CPU total; the gate fails a function whose flat share rose ≥%.1f points to at least %.1f%%.\n",
		100*r.Opts.ShareRise, 100*r.Opts.MinShare)
	fmt.Fprintf(w, "\n## Flat time by function\n\n")
	fmt.Fprintf(w, "| function | base flat | cand flat | Δshare | cand cum | stages | verdict |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---|---|\n")
	shown := 0
	for _, row := range r.Rows {
		if shown >= r.Opts.Top && !row.Failed {
			continue
		}
		shown++
		verdict := "ok"
		if row.Failed {
			verdict = "**FAIL**"
		}
		fmt.Fprintf(w, "| %s | %.1f%% | %.1f%% | %+.1fpt | %.1f%% | %s | %s |\n",
			row.Name, 100*row.BaseShare, 100*row.CandShare,
			100*(row.CandShare-row.BaseShare), 100*row.CandCum, row.Stages, verdict)
	}
	if len(r.Rows) > shown {
		fmt.Fprintf(w, "\n(%d more functions below the top-%d cut.)\n", len(r.Rows)-shown, r.Opts.Top)
	}
	if r.Regressed() {
		fmt.Fprintf(w, "\n**Verdict: REGRESSED.**\n")
	} else {
		fmt.Fprintf(w, "\nVerdict: within thresholds.\n")
	}
	return nil
}
