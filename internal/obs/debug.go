package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Progress is the /progress payload: the live view a human (or a load
// balancer) polls during a long streaming run — overall rate, in-flight
// window, and the per-stage tail latencies that Fig. 2/3 of the paper shows
// post-hoc. Every float is finite by construction.
type Progress struct {
	Timestamp       time.Time `json:"timestamp"`
	ElapsedSeconds  float64   `json:"elapsed_seconds"`
	Reads           int64     `json:"reads"`
	Batches         int64     `json:"batches"`
	InFlightBatches int64     `json:"in_flight_batches"`
	// ReadsPerSec is the windowed rate over the last reporter interval;
	// ReadsPerSecTotal is reads over the whole elapsed time.
	ReadsPerSec      float64            `json:"reads_per_sec"`
	ReadsPerSecTotal float64            `json:"reads_per_sec_total"`
	StageP50Seconds  map[string]float64 `json:"stage_p50_seconds,omitempty"`
	StageP99Seconds  map[string]float64 `json:"stage_p99_seconds,omitempty"`
}

// Reporter is the periodic goroutine behind /progress: every interval it
// scrapes the registry, derives the windowed read rate from the delta since
// the previous tick, and publishes the result. Nil-safe: a Reporter over a
// nil registry publishes zeros.
type Reporter struct {
	reg      *Registry
	interval time.Duration
	start    time.Time

	mu        sync.Mutex
	latest    Progress
	lastReads int64
	lastTick  time.Time

	stopOnce sync.Once
	quit     chan struct{}
	done     chan struct{}
}

// StartReporter launches the reporter goroutine. interval ≤0 defaults to
// one second. Stop it with Stop.
func StartReporter(reg *Registry, interval time.Duration) *Reporter {
	if interval <= 0 {
		interval = time.Second
	}
	now := time.Now()
	r := &Reporter{
		reg:      reg,
		interval: interval,
		start:    now,
		lastTick: now,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	r.sample()
	//vetgiraffe:ignore nakedgoroutine loop exits via r.quit and signals r.done; Stop closes and waits
	go r.loop()
	return r
}

func (r *Reporter) loop() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.sample()
		case <-r.quit:
			return
		}
	}
}

// sample scrapes the registry and publishes a fresh Progress.
func (r *Reporter) sample() {
	now := time.Now()
	s := r.reg.Snapshot()
	p := Progress{Timestamp: now}
	r.mu.Lock()
	defer r.mu.Unlock()
	p.ElapsedSeconds = SanitizeFloat(now.Sub(r.start).Seconds())
	if s != nil {
		p.Reads = s.Counters[MetricPipelineReads]
		p.Batches = s.Counters[MetricPipelineBatches]
		p.InFlightBatches = s.Gauges[MetricPipelineInFlight]
		p.ReadsPerSec = Rate(float64(p.Reads-r.lastReads), now.Sub(r.lastTick))
		p.ReadsPerSecTotal = Rate(float64(p.Reads), now.Sub(r.start))
		if len(s.Histograms) > 0 {
			p.StageP50Seconds = make(map[string]float64, len(s.Histograms))
			p.StageP99Seconds = make(map[string]float64, len(s.Histograms))
			for name, h := range s.Histograms {
				p.StageP50Seconds[name] = h.P50
				p.StageP99Seconds[name] = h.P99
			}
		}
	}
	r.lastReads = p.Reads
	r.lastTick = now
	r.latest = p
}

// Progress returns the most recently published sample.
func (r *Reporter) Progress() Progress {
	if r == nil {
		return Progress{Timestamp: time.Now()}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.latest
}

// Stop terminates the reporter goroutine and waits for it to exit.
// Idempotent: extra calls (a deferred Close after an explicit one) are no-ops.
func (r *Reporter) Stop() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() { close(r.quit) })
	<-r.done
}

// DebugServer is the live observability endpoint (-debug-addr): standard Go
// pprof and expvar, a Prometheus-text scrape of the registry at /metrics,
// the reporter-driven /progress JSON, and the slow-read exemplar reservoir
// at /slow.
type DebugServer struct {
	reg      *Registry
	slow     *SlowReads
	reporter *Reporter
	ln       net.Listener
	srv      *http.Server
}

// StartDebugServer binds addr (":0" picks a free port), starts the
// progress reporter at the given interval, and serves in a background
// goroutine until Close. slow may be nil; /slow then serves an empty
// reservoir.
func StartDebugServer(addr string, reg *Registry, slow *SlowReads, interval time.Duration) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		reg:      reg,
		slow:     slow,
		reporter: StartReporter(reg, interval),
		ln:       ln,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/progress", d.handleProgress)
	mux.HandleFunc("/slow", d.handleSlow)
	mux.HandleFunc("/", d.handleIndex)
	d.srv = &http.Server{Handler: mux}
	//vetgiraffe:ignore nakedgoroutine Serve returns when Close shuts the listener down
	go d.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return d, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

func (d *DebugServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := d.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (d *DebugServer) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(d.reporter.Progress()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleSlow serves the exemplar reservoir: the current window's slowest
// reads and the run-level top K (nil reservoir: empty lists, k=0).
func (d *DebugServer) handleSlow(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	payload := struct {
		K      int        `json:"k"`
		Window []Exemplar `json:"window"`
		Run    []Exemplar `json:"run"`
	}{
		K:      d.slow.K(),
		Window: d.slow.Window(),
		Run:    d.slow.Top(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (d *DebugServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><body><h1>minigiraffe debug</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text scrape</li>
<li><a href="/progress">/progress</a> — live pipeline progress JSON</li>
<li><a href="/slow">/slow</a> — slowest-read exemplars (window + run)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go profiles</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar</li>
</ul></body></html>
`)
}

// Close stops the reporter and shuts the server down.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	d.reporter.Stop()
	return d.srv.Close()
}
