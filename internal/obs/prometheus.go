package obs

import (
	"fmt"
	"io"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format: counters and gauges with their native types, histograms with
// cumulative _bucket series (one le= bound per occupied log2 bucket plus
// +Inf) and _sum/_count, so an external scraper can recompute any quantile
// instead of trusting our log2 approximations. The exact recorded bounds
// ride along as <name>_min_seconds / <name>_max_seconds gauges. Output is
// sorted by metric name so consecutive scrapes diff cleanly. Nil-safe: a nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	if s == nil {
		return nil
	}
	return s.WritePrometheus(w)
}

// WritePrometheus renders an already-taken snapshot (the debug endpoint
// scrapes once and renders from the merged view).
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedNames(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b.UpperSeconds(), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			name, h.Count, name, h.SumSeconds, name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w,
			"# TYPE %s_min_seconds gauge\n%s_min_seconds %g\n# TYPE %s_max_seconds gauge\n%s_max_seconds %g\n",
			name, name, h.Min, name, name, h.Max); err != nil {
			return err
		}
	}
	return nil
}
