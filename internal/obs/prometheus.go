package obs

import (
	"fmt"
	"io"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format: counters and gauges with their native types, histograms as
// summaries (quantile labels plus _sum/_count). Output is sorted by metric
// name so consecutive scrapes diff cleanly. Nil-safe: a nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	if s == nil {
		return nil
	}
	return s.WritePrometheus(w)
}

// WritePrometheus renders an already-taken snapshot (the debug endpoint
// scrapes once and renders from the merged view).
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedNames(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %g\n%s{quantile=\"0.9\"} %g\n%s{quantile=\"0.99\"} %g\n%s_sum %g\n%s_count %d\n",
			name, name, h.P50, name, h.P90, name, h.P99, name, h.SumSeconds, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
