package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"io"
	"os"
	"runtime"
	"time"
)

// Manifest is the run record emitted next to every result file: enough to
// answer "what produced this artifact" without re-running — the exact
// binary invocation, the environment, content hashes of the inputs, and the
// final metric snapshot. The paper's methodology (§VI) depends on knowing
// precisely which configuration produced each figure; the manifest makes
// that machine-checkable for our artifacts.
type Manifest struct {
	Tool           string            `json:"tool"`
	Args           []string          `json:"args"`
	Flags          map[string]string `json:"flags,omitempty"`
	GoVersion      string            `json:"go_version"`
	GOOS           string            `json:"goos"`
	GOARCH         string            `json:"goarch"`
	GOMAXPROCS     int               `json:"gomaxprocs"`
	NumCPU         int               `json:"num_cpu"`
	Hostname       string            `json:"hostname,omitempty"`
	Start          time.Time         `json:"start"`
	End            time.Time         `json:"end"`
	ElapsedSeconds float64           `json:"elapsed_seconds"`
	Workloads      []WorkloadFile    `json:"workloads,omitempty"`
	Results        []string          `json:"results,omitempty"`
	Notes          map[string]string `json:"notes,omitempty"`
	Metrics        *Snapshot         `json:"metrics,omitempty"`
	// SlowReads archives the run-level slowest-read exemplars (slowest
	// first), so a tail-latency regression flagged by obsdiff comes with the
	// reads that caused it.
	SlowReads []Exemplar `json:"slow_reads,omitempty"`
	// ReqTraces summarises the request-trace tail sampler's run: retained
	// counts, status mix, and the slowest sampled request's trace ID — the
	// pointer into the full /traces or Perfetto artifact.
	ReqTraces *ReqTraceSummary `json:"req_traces,omitempty"`
}

// WorkloadFile identifies one input by content: runs over different inputs
// can never be confused even when the file paths match.
type WorkloadFile struct {
	Label  string `json:"label"`
	Path   string `json:"path"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// NewManifest starts a manifest for the named tool, capturing the
// invocation and environment now and the start timestamp.
func NewManifest(tool string) *Manifest {
	host, _ := os.Hostname()
	return &Manifest{
		Tool:       tool,
		Args:       append([]string(nil), os.Args...),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Hostname:   host,
		Start:      time.Now(),
		Flags:      make(map[string]string),
		Notes:      make(map[string]string),
	}
}

// AddFlagSet records every flag's effective value (defaults included), so
// the manifest reflects the resolved configuration, not just what was typed.
func (m *Manifest) AddFlagSet(fs *flag.FlagSet) {
	fs.VisitAll(func(f *flag.Flag) {
		m.Flags[f.Name] = f.Value.String()
	})
}

// AddWorkload hashes the input file at path and records it under label.
func (m *Manifest) AddWorkload(label, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return err
	}
	m.Workloads = append(m.Workloads, WorkloadFile{
		Label:  label,
		Path:   path,
		Bytes:  n,
		SHA256: hex.EncodeToString(h.Sum(nil)),
	})
	return nil
}

// AddResult records an artifact path this run produced.
func (m *Manifest) AddResult(path string) {
	m.Results = append(m.Results, path)
}

// AddSlowReads archives the reservoir's run-level top K (nil or empty
// reservoir: no section).
func (m *Manifest) AddSlowReads(s *SlowReads) {
	m.SlowReads = s.Top()
}

// AddReqTraces archives the request-trace sampler's summary (nil tracer: no
// section).
func (m *Manifest) AddReqTraces(t *ReqTracer) {
	m.ReqTraces = t.Summary()
}

// Finish stamps the end time and attaches the registry's final metric
// snapshot (nil registry: no metrics section).
func (m *Manifest) Finish(reg *Registry) {
	m.End = time.Now()
	m.ElapsedSeconds = SanitizeFloat(m.End.Sub(m.Start).Seconds())
	m.Metrics = reg.Snapshot()
}

// sanitize scrubs every float field so the manifest always marshals:
// encoding/json rejects NaN/Inf, and a rate computed over a zero-length run
// must not be able to lose the whole manifest.
func (m *Manifest) sanitize() {
	m.ElapsedSeconds = SanitizeFloat(m.ElapsedSeconds)
	if m.Metrics == nil {
		return
	}
	for name, h := range m.Metrics.Histograms {
		h.SumSeconds = SanitizeFloat(h.SumSeconds)
		h.Mean = SanitizeFloat(h.Mean)
		h.P50 = SanitizeFloat(h.P50)
		h.P90 = SanitizeFloat(h.P90)
		h.P99 = SanitizeFloat(h.P99)
		h.Min = SanitizeFloat(h.Min)
		h.Max = SanitizeFloat(h.Max)
		m.Metrics.Histograms[name] = h
	}
}

// Encode marshals the manifest as indented JSON.
func (m *Manifest) Encode(w io.Writer) error {
	m.sanitize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Write saves the manifest to path.
func (m *Manifest) Write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
