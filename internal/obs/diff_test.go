package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeRun writes a run directory with a manifest carrying the given final
// snapshot.
func writeRun(t *testing.T, elapsed float64, snap *Snapshot) string {
	t.Helper()
	dir := t.TempDir()
	m := NewManifest("test")
	m.ElapsedSeconds = elapsed
	m.Metrics = snap
	if err := m.Write(filepath.Join(dir, "run-manifest.json")); err != nil {
		t.Fatal(err)
	}
	return dir
}

// loadRun loads a run directory written by writeRun.
func loadRun(t *testing.T, dir string) *RunData {
	t.Helper()
	run, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func hist(count int64, p99 float64) HistogramStats {
	return HistogramStats{Count: count, P99: p99, P50: p99 / 2, SumSeconds: p99 * float64(count) / 2}
}

func TestDiffP99Regression(t *testing.T) {
	base := loadRun(t, writeRun(t, 10, &Snapshot{
		Counters:   map[string]int64{MetricPipelineReads: 10000},
		Histograms: map[string]HistogramStats{MetricStageMap: hist(1000, 0.001)},
	}))
	cand := loadRun(t, writeRun(t, 10, &Snapshot{
		Counters:   map[string]int64{MetricPipelineReads: 10000},
		Histograms: map[string]HistogramStats{MetricStageMap: hist(1000, 0.004)},
	}))
	r := Diff(base, cand, DiffOptions{})
	if !r.Regressed() {
		t.Fatal("4x p99 rise not flagged")
	}
	var buf bytes.Buffer
	if err := r.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"REGRESSED", MetricStageMap, "## Throughput", "## Tail latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDiffThroughputDrop(t *testing.T) {
	base := loadRun(t, writeRun(t, 10, &Snapshot{
		Counters: map[string]int64{MetricPipelineReads: 10000},
	}))
	cand := loadRun(t, writeRun(t, 10, &Snapshot{
		Counters: map[string]int64{MetricPipelineReads: 4000},
	}))
	r := Diff(base, cand, DiffOptions{})
	if !r.Regressed() {
		t.Fatal("60% throughput drop not flagged")
	}
	// Within the threshold: 10% down is noise.
	cand2 := loadRun(t, writeRun(t, 10, &Snapshot{
		Counters: map[string]int64{MetricPipelineReads: 9000},
	}))
	if Diff(base, cand2, DiffOptions{}).Regressed() {
		t.Error("10% throughput drop flagged at a 15% threshold")
	}
	// Custom threshold: 75% tolerance passes even the big drop.
	if Diff(base, cand, DiffOptions{ThroughputDrop: 0.75}).Regressed() {
		t.Error("60% drop flagged at a 75% threshold")
	}
}

func TestDiffExemptions(t *testing.T) {
	// Low observation counts: quantiles are noise, never a failure.
	base := loadRun(t, writeRun(t, 1, &Snapshot{
		Histograms: map[string]HistogramStats{MetricStageMap: hist(5, 0.001)},
	}))
	cand := loadRun(t, writeRun(t, 1, &Snapshot{
		Histograms: map[string]HistogramStats{MetricStageMap: hist(5, 0.1)},
	}))
	if Diff(base, cand, DiffOptions{}).Regressed() {
		t.Error("low-count histogram flagged")
	}

	// Tiny absolute p99s: a bucket hop below the floor is not a regression.
	base = loadRun(t, writeRun(t, 1, &Snapshot{
		Histograms: map[string]HistogramStats{MetricStageMap: hist(1000, 2e-6)},
	}))
	cand = loadRun(t, writeRun(t, 1, &Snapshot{
		Histograms: map[string]HistogramStats{MetricStageMap: hist(1000, 8e-6)},
	}))
	if Diff(base, cand, DiffOptions{}).Regressed() {
		t.Error("sub-floor p99 rise flagged")
	}
}

func TestDiffAddedRemovedMetrics(t *testing.T) {
	base := loadRun(t, writeRun(t, 1, &Snapshot{
		Counters:   map[string]int64{"old_total": 5},
		Histograms: map[string]HistogramStats{"old_seconds": hist(1000, 0.01)},
	}))
	cand := loadRun(t, writeRun(t, 1, &Snapshot{
		Counters:   map[string]int64{"new_total": 5},
		Histograms: map[string]HistogramStats{"new_seconds": hist(1000, 0.01)},
	}))
	r := Diff(base, cand, DiffOptions{})
	if r.Regressed() {
		t.Error("instrumentation change flagged as regression")
	}
	wantAdded := []string{"new_seconds", "new_total"}
	wantRemoved := []string{"old_seconds", "old_total"}
	if strings.Join(r.Added, ",") != strings.Join(wantAdded, ",") {
		t.Errorf("Added = %v, want %v", r.Added, wantAdded)
	}
	if strings.Join(r.Removed, ",") != strings.Join(wantRemoved, ",") {
		t.Errorf("Removed = %v, want %v", r.Removed, wantRemoved)
	}
	var buf bytes.Buffer
	if err := r.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only in candidate") || !strings.Contains(buf.String(), "only in baseline") {
		t.Errorf("report missing added/removed sections:\n%s", buf.String())
	}
}

// TestDiffGaugeAlignment: gauges present in both runs align into the
// informational Gauges section and never gate; one-sided gauges still land in
// Added/Removed. This is what lets the runtime_* telemetry ride the diff
// without a baseline refresh tripping the added/removed lists.
func TestDiffGaugeAlignment(t *testing.T) {
	base := loadRun(t, writeRun(t, 1, &Snapshot{
		Gauges: map[string]int64{
			MetricRuntimeGoroutines: 10,
			MetricRuntimeHeapLive:   1 << 20,
			"gone_gauge":            3,
		},
	}))
	cand := loadRun(t, writeRun(t, 1, &Snapshot{
		Gauges: map[string]int64{
			MetricRuntimeGoroutines: 200, // 20x worse — still informational
			MetricRuntimeHeapLive:   2 << 20,
			"fresh_gauge":           4,
		},
	}))
	r := Diff(base, cand, DiffOptions{})
	if r.Regressed() {
		t.Error("gauge movement gated the diff; gauges are informational")
	}
	if len(r.Gauges) != 2 {
		t.Fatalf("aligned %d gauges, want 2: %+v", len(r.Gauges), r.Gauges)
	}
	byName := map[string]DiffRow{}
	for _, row := range r.Gauges {
		byName[row.Name] = row
	}
	g := byName[MetricRuntimeGoroutines]
	if g.Base != 10 || g.Cand != 200 || g.Delta != 19 {
		t.Errorf("goroutines row = %+v, want base 10 cand 200 delta 19", g)
	}
	if strings.Join(r.Added, ",") != "fresh_gauge" {
		t.Errorf("Added = %v, want [fresh_gauge]", r.Added)
	}
	if strings.Join(r.Removed, ",") != "gone_gauge" {
		t.Errorf("Removed = %v, want [gone_gauge]", r.Removed)
	}

	var buf bytes.Buffer
	if err := r.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "## Gauge levels") || !strings.Contains(out, MetricRuntimeGoroutines) {
		t.Errorf("report missing gauge section:\n%s", out)
	}
}

func TestLoadRunResolvesSeries(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(1)
	reg.Counter(MetricPipelineReads).Add(0, 10)
	rec, err := StartSeries(reg, nil, nil, filepath.Join(dir, "run.series"), time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
	m := NewManifest("test")
	m.Notes["series"] = "run.series"
	m.Metrics = reg.Snapshot()
	if err := m.Write(filepath.Join(dir, "run-manifest.json")); err != nil {
		t.Fatal(err)
	}

	run, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if run.Series == nil {
		t.Fatal("series not resolved from manifest notes")
	}
	if len(run.Series.Samples) < 1 {
		t.Fatal("series loaded empty")
	}

	// A run without a series still loads.
	dir2 := writeRun(t, 1, &Snapshot{})
	run2, err := LoadRun(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if run2.Series != nil {
		t.Error("phantom series resolved")
	}

	// A missing baseline reports os.IsNotExist so the CLI can soft-fail.
	if _, err := LoadRun(filepath.Join(dir, "nope")); !os.IsNotExist(err) {
		t.Errorf("missing run error = %v, want IsNotExist", err)
	}
}

func TestDiffSlowReadsInReport(t *testing.T) {
	base := loadRun(t, writeRun(t, 1, &Snapshot{}))
	dir := t.TempDir()
	m := NewManifest("test")
	m.SlowReads = []Exemplar{{Read: "read-42", Seeds: 9, TotalNanos: 5_000_000, ClusterNanos: 1_000_000, ExtendNanos: 4_000_000}}
	if err := m.Write(filepath.Join(dir, "run-manifest.json")); err != nil {
		t.Fatal(err)
	}
	cand := loadRun(t, dir)
	var buf bytes.Buffer
	if err := Diff(base, cand, DiffOptions{}).WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "read-42") {
		t.Errorf("report missing candidate slow reads:\n%s", buf.String())
	}
}
