package snarl

import (
	"repro/internal/vgraph"
)

// Unreachable is returned when no forward walk connects two positions.
const Unreachable = -1

// chainOf returns the boundary index at-or-before node v's chain location,
// plus whether v itself is a boundary and its link index otherwise.
func (t *Tree) chainOf(v vgraph.NodeID) (nodePos, bool) {
	if int(v) >= len(t.position) {
		return nodePos{}, false
	}
	pos := t.position[v]
	return pos, pos.known
}

// StartCoord returns the minimum number of bases from the start of the
// chain to the start of node v — the snarl-tree analogue of the backbone
// coordinate.
func (t *Tree) StartCoord(v vgraph.NodeID) (int32, bool) {
	pos, ok := t.chainOf(v)
	if !ok {
		return 0, false
	}
	if pos.boundary {
		return t.prefixMin[pos.index], true
	}
	l := &t.links[pos.index]
	// From-boundary start + From length + interior min to v's start.
	fromPos := t.position[l.From]
	return t.prefixMin[fromPos.index] + int32(t.g.SeqLen(l.From)) + t.minFromLinkStart[v], true
}

// MinDistance returns the minimum number of bases separating positions a
// and b along a forward walk in either direction, or Unreachable. Results
// are exact for the decomposed chain: positions in different chain elements
// combine per-element minima via prefix sums; positions inside the same
// snarl fall back to a local search over the (small) interior.
func (t *Tree) MinDistance(a, b vgraph.Position) int {
	if d := t.directed(a, b); d != Unreachable {
		return d
	}
	return t.directed(b, a)
}

// directed computes the forward distance a→b.
func (t *Tree) directed(a, b vgraph.Position) int {
	pa, okA := t.chainOf(a.Node)
	pb, okB := t.chainOf(b.Node)
	if !okA || !okB {
		return Unreachable
	}
	if a.Node == b.Node {
		if b.Off >= a.Off {
			return int(b.Off - a.Off)
		}
		return Unreachable
	}
	// Same-snarl interiors need the local search.
	if !pa.boundary && !pb.boundary && pa.index == pb.index {
		return t.interiorDistance(&t.links[pa.index], a, b)
	}
	// Order on the chain: compute each position's element span.
	aAfter := t.elementAfter(pa)   // boundary index from which a's tail exits
	bBefore := t.elementBefore(pb) // boundary index through which b is entered
	if aAfter > bBefore {
		return Unreachable // b lies before a on the chain
	}
	// tail(a): bases from a (exclusive of a's base? inclusive convention:
	// distance counts bases strictly between, so from position a, moving to
	// the start of the next element) …
	tail, ok := t.tailToBoundary(a, pa)
	if !ok {
		return Unreachable
	}
	head, ok := t.headFromBoundary(b, pb)
	if !ok {
		return Unreachable
	}
	// Chain distance between boundary aAfter's start and bBefore's start.
	between := int(t.prefixMin[bBefore] - t.prefixMin[aAfter])
	return tail + between + head
}

// elementAfter returns the index of the first boundary at-or-after the
// position's exit point.
func (t *Tree) elementAfter(p nodePos) int {
	if p.boundary {
		return int(p.index)
	}
	return int(p.index) + 1 // interior of link i exits at boundary i+1
}

// elementBefore returns the index of the boundary through which the
// position is reached.
func (t *Tree) elementBefore(p nodePos) int {
	if p.boundary {
		return int(p.index)
	}
	return int(p.index) // interior of link i is entered from boundary i
}

// tailToBoundary returns the min bases from position a to the START of
// boundary elementAfter(pa).
func (t *Tree) tailToBoundary(a vgraph.Position, pa nodePos) (int, bool) {
	if pa.boundary {
		// Distance from a to the start of its own boundary node's... the
		// element is the node itself: zero bases consumed before its start
		// minus the offset already inside. Conceptually the caller combines
		// with prefix sums anchored at the node start, so subtract the
		// offset.
		return -int(a.Off), true
	}
	// a → end of its node → min to link end (start of To boundary).
	rest := int32(t.g.SeqLen(a.Node)) - a.Off
	return int(rest + t.minToLinkEnd[a.Node]), true
}

// headFromBoundary returns the min bases from the START of boundary
// elementBefore(pb) to position b.
func (t *Tree) headFromBoundary(b vgraph.Position, pb nodePos) (int, bool) {
	if pb.boundary {
		return int(b.Off), true
	}
	l := &t.links[pb.index]
	return int(int32(t.g.SeqLen(l.From)) + t.minFromLinkStart[b.Node] + b.Off), true
}

// interiorDistance handles two positions inside the same snarl with a
// bounded BFS over the (small) interior; allocation-free via linear scans
// over the inner node list.
func (t *Tree) interiorDistance(l *Link, a, b vgraph.Position) int {
	g := t.g
	innerIdx := func(v vgraph.NodeID) int {
		for i, u := range l.Inner {
			if u == v {
				return i
			}
		}
		return -1
	}
	type item struct {
		node vgraph.NodeID
		d    int32
	}
	var bestArr [16]int32
	best := bestArr[:0]
	for range l.Inner {
		best = append(best, int32(-1))
	}
	var queueArr [16]item
	queue := queueArr[:0]
	start := int32(g.SeqLen(a.Node)) - a.Off
	for _, c := range g.Successors(a.Node) {
		if innerIdx(c) >= 0 {
			queue = append(queue, item{node: c, d: start})
		}
	}
	res := int32(-1)
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		ii := innerIdx(it.node)
		if prev := best[ii]; prev >= 0 && prev <= it.d {
			continue
		}
		best[ii] = it.d
		if it.node == b.Node {
			d := it.d + b.Off
			if res < 0 || d < res {
				res = d
			}
			continue
		}
		nd := it.d + int32(g.SeqLen(it.node))
		for _, c := range g.Successors(it.node) {
			if innerIdx(c) >= 0 {
				queue = append(queue, item{node: c, d: nd})
			}
		}
	}
	if res < 0 {
		return Unreachable
	}
	return int(res)
}
