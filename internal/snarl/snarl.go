// Package snarl implements superbubble (snarl) decomposition of variation
// graphs — the structure Giraffe's distance index is built over (§II-B(c):
// "the distance index maps the minimum graph distance between seeds").
// A snarl is a source/sink pair whose interior is reachable only through
// them; in the bubble-chain pangenomes of this reproduction, snarls are the
// variant sites and the decomposition is a single top-level chain of
// boundary nodes and snarls. The chain yields O(1) exact minimum-distance
// queries via prefix sums, with only positions interior to the same snarl
// needing a (small) local search.
package snarl

import (
	"errors"
	"fmt"

	"repro/internal/vgraph"
)

// Link is one chain element: the stretch strictly between two consecutive
// boundary nodes. A trivial link (direct edge) has Min = Max = 0 and no
// interior.
type Link struct {
	// From and To are the flanking boundary nodes.
	From, To vgraph.NodeID
	// Min and Max are the minimum and maximum interior path lengths in
	// bases (excluding both boundary nodes).
	Min, Max int32
	// Inner lists the interior nodes (empty for trivial links).
	Inner []vgraph.NodeID
}

// IsSnarl reports whether the link has interior structure.
func (l *Link) IsSnarl() bool { return len(l.Inner) > 0 }

// Tree is the decomposition of a single-source, single-sink DAG into a
// top-level chain of boundary nodes and snarls.
type Tree struct {
	g *vgraph.Graph
	// boundaries in chain order; boundaries[i] precedes boundaries[i+1].
	boundaries []vgraph.NodeID
	// links[i] sits between boundaries[i] and boundaries[i+1].
	links []Link
	// position[v] locates node v in the decomposition (dense, indexed by
	// node id; the distance query is the clustering hot path).
	position []nodePos
	// prefixMin[i] = minimum bases from the start of boundaries[0] to the
	// start of boundaries[i].
	prefixMin []int32
	// minFromLinkStart[v], for interior v: min bases from the END of the
	// link's From boundary to the START of v.
	minFromLinkStart []int32
	// minToLinkEnd[v], for interior v: min bases from the END of v to the
	// START of the link's To boundary.
	minToLinkEnd []int32
}

// nodePos locates a node in the decomposition.
type nodePos struct {
	known    bool
	boundary bool
	index    int32 // boundary index or link index
}

// ErrNotDecomposable reports a graph outside the single-source single-sink
// superbubble-chain class.
var ErrNotDecomposable = errors.New("snarl: graph is not a single chain of superbubbles")

// Decompose builds the snarl tree of g.
func Decompose(g *vgraph.Graph) (*Tree, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("snarl: empty graph")
	}
	source, sink := vgraph.Invalid, vgraph.Invalid
	for id := vgraph.NodeID(1); int(id) <= n; id++ {
		if len(g.Predecessors(id)) == 0 {
			if source != vgraph.Invalid {
				return nil, fmt.Errorf("%w: multiple sources (%d, %d)", ErrNotDecomposable, source, id)
			}
			source = id
		}
		if len(g.Successors(id)) == 0 {
			if sink != vgraph.Invalid {
				return nil, fmt.Errorf("%w: multiple sinks (%d, %d)", ErrNotDecomposable, sink, id)
			}
			sink = id
		}
	}
	if source == vgraph.Invalid || sink == vgraph.Invalid {
		return nil, fmt.Errorf("%w: missing source or sink", ErrNotDecomposable)
	}

	t := &Tree{
		g:                g,
		position:         make([]nodePos, n+1),
		minFromLinkStart: make([]int32, n+1),
		minToLinkEnd:     make([]int32, n+1),
	}
	cur := source
	t.addBoundary(cur)
	for cur != sink {
		succs := g.Successors(cur)
		if len(succs) == 0 {
			return nil, fmt.Errorf("%w: dead end at node %d before sink", ErrNotDecomposable, cur)
		}
		if len(succs) == 1 && len(g.Predecessors(succs[0])) == 1 {
			// Trivial link: direct edge to the next boundary.
			next := succs[0]
			t.links = append(t.links, Link{From: cur, To: next})
			t.addBoundary(next)
			cur = next
			continue
		}
		// Superbubble starting at cur: find its exit and interior.
		exit, inner, err := findSuperbubble(g, cur)
		if err != nil {
			return nil, err
		}
		link := Link{From: cur, To: exit, Inner: inner}
		if err := t.measureLink(&link); err != nil {
			return nil, err
		}
		li := int32(len(t.links))
		t.links = append(t.links, link)
		for _, v := range inner {
			t.position[v] = nodePos{known: true, boundary: false, index: li}
		}
		t.addBoundary(exit)
		cur = exit
	}
	// Prefix sums of minimum distances along the chain.
	t.prefixMin = make([]int32, len(t.boundaries))
	for i := 1; i < len(t.boundaries); i++ {
		prev := t.boundaries[i-1]
		t.prefixMin[i] = t.prefixMin[i-1] + int32(g.SeqLen(prev)) + t.links[i-1].Min
	}
	return t, nil
}

func (t *Tree) addBoundary(v vgraph.NodeID) {
	t.position[v] = nodePos{known: true, boundary: true, index: int32(len(t.boundaries))}
	t.boundaries = append(t.boundaries, v)
}

// findSuperbubble locates the exit of the superbubble starting at s using
// the Onodera-style frontier procedure, returning the exit and the interior
// nodes (exclusive of s and the exit).
func findSuperbubble(g *vgraph.Graph, s vgraph.NodeID) (vgraph.NodeID, []vgraph.NodeID, error) {
	seen := map[vgraph.NodeID]bool{s: true}
	visited := map[vgraph.NodeID]bool{}
	frontier := []vgraph.NodeID{s}
	var interior []vgraph.NodeID
	for len(frontier) > 0 {
		v := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		visited[v] = true
		if v != s {
			interior = append(interior, v)
		}
		succs := g.Successors(v)
		if len(succs) == 0 {
			return vgraph.Invalid, nil, fmt.Errorf("%w: tip at node %d inside bubble from %d", ErrNotDecomposable, v, s)
		}
		for _, c := range succs {
			seen[c] = true
			ready := true
			for _, p := range g.Predecessors(c) {
				if !visited[p] {
					ready = false
					break
				}
			}
			if ready {
				frontier = append(frontier, c)
			}
		}
		// Exit test: exactly one frontier node and nothing else pending.
		if len(frontier) == 1 && len(seen) == len(visited)+1 {
			exit := frontier[0]
			// The exit must not re-enter the bubble (DAG: impossible) and
			// must be the only seen-but-unvisited node.
			if seen[exit] && !visited[exit] {
				return exit, interior, nil
			}
		}
	}
	return vgraph.Invalid, nil, fmt.Errorf("%w: no superbubble exit from node %d", ErrNotDecomposable, s)
}

// measureLink computes Min/Max interior path lengths and the per-node
// minimum distances used for interior queries. Interior nodes are processed
// in topological order (they form a DAG between From and To).
func (t *Tree) measureLink(l *Link) error {
	g := t.g
	inSet := make(map[vgraph.NodeID]bool, len(l.Inner))
	for _, v := range l.Inner {
		inSet[v] = true
	}
	// Topological order of the interior via Kahn restricted to the bubble.
	indeg := map[vgraph.NodeID]int{}
	for _, v := range l.Inner {
		for _, p := range g.Predecessors(v) {
			if inSet[p] {
				indeg[v]++
			}
		}
	}
	var order []vgraph.NodeID
	var queue []vgraph.NodeID
	for _, v := range l.Inner {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, c := range g.Successors(v) {
			if inSet[c] {
				indeg[c]--
				if indeg[c] == 0 {
					queue = append(queue, c)
				}
			}
		}
	}
	if len(order) != len(l.Inner) {
		return fmt.Errorf("%w: cyclic bubble interior at %d..%d", ErrNotDecomposable, l.From, l.To)
	}
	// Forward pass: min bases from the end of From to the start of v.
	const inf = int32(1 << 30)
	for _, v := range order {
		best := inf
		for _, p := range g.Predecessors(v) {
			switch {
			case p == l.From:
				if best > 0 {
					best = 0
				}
			case inSet[p]:
				if d := t.minFromLinkStart[p] + int32(g.SeqLen(p)); d < best {
					best = d
				}
			}
		}
		t.minFromLinkStart[v] = best
	}
	// Backward pass: min bases from the end of v to the start of To.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := inf
		for _, c := range g.Successors(v) {
			switch {
			case c == l.To:
				if best > 0 {
					best = 0
				}
			case inSet[c]:
				if d := t.minToLinkEnd[c] + int32(g.SeqLen(c)); d < best {
					best = d
				}
			}
		}
		t.minToLinkEnd[v] = best
	}
	// Min/Max through-paths from end-of-From to start-of-To.
	minThrough, maxThrough := inf, int32(-1)
	// Direct From→To edge: zero interior bases.
	if g.HasEdge(l.From, l.To) {
		minThrough, maxThrough = 0, 0
	}
	// DP for max as well.
	maxFrom := map[vgraph.NodeID]int32{}
	for _, v := range order {
		best := int32(-1)
		for _, p := range g.Predecessors(v) {
			switch {
			case p == l.From:
				if best < 0 {
					best = 0
				}
			case inSet[p]:
				if d := maxFrom[p] + int32(g.SeqLen(p)); d > best {
					best = d
				}
			}
		}
		maxFrom[v] = best
	}
	for _, v := range order {
		for _, c := range g.Successors(v) {
			if c == l.To {
				through := t.minFromLinkStart[v] + int32(g.SeqLen(v))
				if through < minThrough {
					minThrough = through
				}
				if mx := maxFrom[v] + int32(g.SeqLen(v)); mx > maxThrough {
					maxThrough = mx
				}
			}
		}
	}
	if minThrough == inf || maxThrough < 0 {
		return fmt.Errorf("%w: bubble %d..%d has no through path", ErrNotDecomposable, l.From, l.To)
	}
	l.Min, l.Max = minThrough, maxThrough
	return nil
}

// NumSnarls returns the number of non-trivial chain elements.
func (t *Tree) NumSnarls() int {
	n := 0
	for i := range t.links {
		if t.links[i].IsSnarl() {
			n++
		}
	}
	return n
}

// Links returns the chain elements in order. The slice aliases tree storage.
func (t *Tree) Links() []Link { return t.links }

// Boundaries returns the chain's boundary nodes in order.
func (t *Tree) Boundaries() []vgraph.NodeID { return t.boundaries }

// Contains reports whether the decomposition covers node v.
func (t *Tree) Contains(v vgraph.NodeID) bool {
	return int(v) < len(t.position) && t.position[v].known
}
