package snarl

import (
	"container/heap"
	"math/rand"
	"testing"

	"repro/internal/dna"
	"repro/internal/vgraph"
)

// buildPangenome constructs a random bubble-chain pangenome.
func buildPangenome(t testing.TB, seed int64, refLen int) *vgraph.Pangenome {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := make(dna.Sequence, refLen)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	var vs []vgraph.Variant
	for pos := 50; pos < refLen-50; pos += 60 + rng.Intn(80) {
		switch rng.Intn(3) {
		case 0:
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.SNP, Alt: dna.Sequence{(ref[pos] + 1) & 3}})
		case 1:
			ins := make(dna.Sequence, 1+rng.Intn(6))
			for i := range ins {
				ins[i] = dna.Base(rng.Intn(4))
			}
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.Insertion, Alt: ins})
		case 2:
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.Deletion, DelLen: 1 + rng.Intn(8)})
		}
	}
	pg, err := vgraph.BuildPangenome(ref, vs, 20)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestDecomposeLinearChain(t *testing.T) {
	g := &vgraph.Graph{}
	var ids []vgraph.NodeID
	for _, s := range []string{"ACGT", "GG", "TTT"} {
		id, err := g.AddNode(dna.MustParse(s))
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) > 0 {
			if err := g.AddEdge(ids[len(ids)-1], id); err != nil {
				t.Fatal(err)
			}
		}
		ids = append(ids, id)
	}
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumSnarls() != 0 {
		t.Errorf("linear chain has %d snarls", tree.NumSnarls())
	}
	if len(tree.Boundaries()) != 3 {
		t.Errorf("%d boundaries, want 3", len(tree.Boundaries()))
	}
	for _, id := range ids {
		if !tree.Contains(id) {
			t.Errorf("node %d missing from decomposition", id)
		}
	}
}

func TestDecomposeSingleBubble(t *testing.T) {
	// S -> {A(1), B(3)} -> E
	g := &vgraph.Graph{}
	s, _ := g.AddNode(dna.MustParse("AC"))
	a, _ := g.AddNode(dna.MustParse("G"))
	b, _ := g.AddNode(dna.MustParse("TTT"))
	e, _ := g.AddNode(dna.MustParse("CA"))
	for _, edge := range [][2]vgraph.NodeID{{s, a}, {s, b}, {a, e}, {b, e}} {
		if err := g.AddEdge(edge[0], edge[1]); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumSnarls() != 1 {
		t.Fatalf("%d snarls, want 1", tree.NumSnarls())
	}
	link := tree.Links()[0]
	if link.From != s || link.To != e {
		t.Errorf("snarl spans %d..%d, want %d..%d", link.From, link.To, s, e)
	}
	if link.Min != 1 || link.Max != 3 {
		t.Errorf("snarl min/max = %d/%d, want 1/3", link.Min, link.Max)
	}
}

func TestDecomposeDeletionBubble(t *testing.T) {
	// S -> {D(2), direct} -> E: min through = 0.
	g := &vgraph.Graph{}
	s, _ := g.AddNode(dna.MustParse("AC"))
	d, _ := g.AddNode(dna.MustParse("GG"))
	e, _ := g.AddNode(dna.MustParse("CA"))
	for _, edge := range [][2]vgraph.NodeID{{s, d}, {d, e}, {s, e}} {
		if err := g.AddEdge(edge[0], edge[1]); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	link := tree.Links()[0]
	if link.Min != 0 || link.Max != 2 {
		t.Errorf("deletion bubble min/max = %d/%d, want 0/2", link.Min, link.Max)
	}
}

func TestDecomposeRejectsMultiSource(t *testing.T) {
	g := &vgraph.Graph{}
	a, _ := g.AddNode(dna.MustParse("A"))
	b, _ := g.AddNode(dna.MustParse("C"))
	c, _ := g.AddNode(dna.MustParse("G"))
	if err := g.AddEdge(a, c); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	if _, err := Decompose(g); err == nil {
		t.Error("two-source graph decomposed")
	}
}

func TestDecomposePangenomeCountsSites(t *testing.T) {
	pg := buildPangenome(t, 1, 3000)
	tree, err := Decompose(pg.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumSnarls() != pg.NumSites() {
		t.Errorf("%d snarls for %d variant sites", tree.NumSnarls(), pg.NumSites())
	}
	// Every node belongs to the decomposition.
	for id := vgraph.NodeID(1); int(id) <= pg.NumNodes(); id++ {
		if !tree.Contains(id) {
			t.Errorf("node %d missing", id)
		}
	}
}

// TestMinDistanceMatchesDijkstra cross-validates the chain arithmetic
// against the distindex Dijkstra oracle on random position pairs.
func TestMinDistanceMatchesDijkstra(t *testing.T) {
	pg := buildPangenome(t, 2, 4000)
	tree, err := Decompose(pg.Graph)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := pg.NumNodes()
	for trial := 0; trial < 300; trial++ {
		a := vgraph.Position{Node: vgraph.NodeID(1 + rng.Intn(n))}
		b := vgraph.Position{Node: vgraph.NodeID(1 + rng.Intn(n))}
		a.Off = int32(rng.Intn(pg.SeqLen(a.Node)))
		b.Off = int32(rng.Intn(pg.SeqLen(b.Node)))
		want := oracleMinDistance(pg.Graph, a, b)
		got := tree.MinDistance(a, b)
		if got != want {
			t.Fatalf("trial %d: MinDistance(%v,%v) = %d, oracle %d", trial, a, b, got, want)
		}
	}
}

func TestMinDistanceSamePosition(t *testing.T) {
	pg := buildPangenome(t, 4, 1500)
	tree, err := Decompose(pg.Graph)
	if err != nil {
		t.Fatal(err)
	}
	p := vgraph.Position{Node: 1, Off: 2}
	if d := tree.MinDistance(p, p); d != 0 {
		t.Errorf("identity distance = %d", d)
	}
}

func TestMinDistanceUnknownNode(t *testing.T) {
	pg := buildPangenome(t, 5, 1500)
	tree, err := Decompose(pg.Graph)
	if err != nil {
		t.Fatal(err)
	}
	a := vgraph.Position{Node: 1}
	bad := vgraph.Position{Node: vgraph.NodeID(pg.NumNodes() + 100)}
	if d := tree.MinDistance(a, bad); d != Unreachable {
		t.Errorf("distance to unknown node = %d", d)
	}
}

func BenchmarkTreeMinDistance(b *testing.B) {
	pg := buildPangenome(b, 6, 6000)
	tree, err := Decompose(pg.Graph)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	n := pg.NumNodes()
	type pair struct{ a, b vgraph.Position }
	pairs := make([]pair, 256)
	for i := range pairs {
		p := pair{
			a: vgraph.Position{Node: vgraph.NodeID(1 + rng.Intn(n))},
			b: vgraph.Position{Node: vgraph.NodeID(1 + rng.Intn(n))},
		}
		p.a.Off = int32(rng.Intn(pg.SeqLen(p.a.Node)))
		p.b.Off = int32(rng.Intn(pg.SeqLen(p.b.Node)))
		pairs[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		tree.MinDistance(p.a, p.b)
	}
}

func BenchmarkDijkstraMinDistance(b *testing.B) {
	pg := buildPangenome(b, 6, 6000)
	rng := rand.New(rand.NewSource(7))
	n := pg.NumNodes()
	type pair struct{ a, b vgraph.Position }
	pairs := make([]pair, 256)
	for i := range pairs {
		p := pair{
			a: vgraph.Position{Node: vgraph.NodeID(1 + rng.Intn(n))},
			b: vgraph.Position{Node: vgraph.NodeID(1 + rng.Intn(n))},
		}
		p.a.Off = int32(rng.Intn(pg.SeqLen(p.a.Node)))
		p.b.Off = int32(rng.Intn(pg.SeqLen(p.b.Node)))
		pairs[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		oracleDirected(pg.Graph, p.a, p.b)
	}
}

// oracleMinDistance is an independent Dijkstra ground truth (kept local to
// avoid an import cycle with distindex, which consumes this package).
func oracleMinDistance(g *vgraph.Graph, a, b vgraph.Position) int {
	if d := oracleDirected(g, a, b); d >= 0 {
		return d
	}
	if d := oracleDirected(g, b, a); d >= 0 {
		return d
	}
	return Unreachable
}

type oracleItem struct {
	node vgraph.NodeID
	d    int32
}
type oraclePQ []oracleItem

func (q oraclePQ) Len() int            { return len(q) }
func (q oraclePQ) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q oraclePQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *oraclePQ) Push(x interface{}) { *q = append(*q, x.(oracleItem)) }
func (q *oraclePQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func oracleDirected(g *vgraph.Graph, a, b vgraph.Position) int {
	if a.Node == b.Node {
		if b.Off >= a.Off {
			return int(b.Off - a.Off)
		}
		return -1
	}
	tail := int32(g.SeqLen(a.Node)) - a.Off
	best := map[vgraph.NodeID]int32{}
	q := oraclePQ{}
	for _, s := range g.Successors(a.Node) {
		heap.Push(&q, oracleItem{node: s, d: 0})
	}
	for q.Len() > 0 {
		it := heap.Pop(&q).(oracleItem)
		if prev, ok := best[it.node]; ok && prev <= it.d {
			continue
		}
		best[it.node] = it.d
		if it.node == b.Node {
			return int(tail + it.d + b.Off)
		}
		nd := it.d + int32(g.SeqLen(it.node))
		for _, s := range g.Successors(it.node) {
			if prev, ok := best[s]; !ok || nd < prev {
				heap.Push(&q, oracleItem{node: s, d: nd})
			}
		}
	}
	return -1
}

func TestStartCoordMonotoneOnBoundaries(t *testing.T) {
	pg := buildPangenome(t, 8, 2000)
	tree, err := Decompose(pg.Graph)
	if err != nil {
		t.Fatal(err)
	}
	prev := int32(-1)
	for _, b := range tree.Boundaries() {
		c, ok := tree.StartCoord(b)
		if !ok {
			t.Fatalf("boundary %d has no coordinate", b)
		}
		if c <= prev {
			t.Fatalf("boundary coordinates not strictly increasing: %d after %d", c, prev)
		}
		prev = c
	}
	if _, ok := tree.StartCoord(vgraph.NodeID(pg.NumNodes() + 5)); ok {
		t.Error("unknown node has a coordinate")
	}
}
