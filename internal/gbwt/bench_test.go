package gbwt

import (
	"testing"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: record
// compression cost (why CachedGBWT exists), cache capacity (rehash
// amortisation), and the bidirectional synchronisation overhead.

func benchPaths(b *testing.B) (*GBWT, [][]NodeID) {
	g, paths := buildRandomHaplotypes(b, 3, 24)
	return g, paths
}

func BenchmarkRecordDecode(b *testing.B) {
	g, _ := benchPaths(b)
	// Pick a mid-graph node with visits.
	var v NodeID
	for v = 1; v <= g.MaxNode(); v++ {
		if g.NumVisits(v) > 8 {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := g.Record(v); rec == nil {
			b.Fatal("nil record")
		}
	}
}

func BenchmarkExtendCachedVsUncached(b *testing.B) {
	g, paths := benchPaths(b)
	sub := paths[0][:12]
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Find(sub)
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := NewCached(g, DefaultCacheCapacity)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Find(sub)
		}
	})
}

func BenchmarkCacheInitialCapacity(b *testing.B) {
	g, paths := benchPaths(b)
	// Touch a batch-sized working set per iteration through a fresh cache,
	// as the mapper does per batch: small initial capacities pay rehashes.
	for _, capacity := range []int{16, 256, 4096} {
		b.Run(map[int]string{16: "cc16", 256: "cc256", 4096: "cc4096"}[capacity], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := NewCached(g, capacity)
				for _, p := range paths {
					c.Find(p[:16])
				}
			}
		})
	}
}

func BenchmarkBidirectionalSync(b *testing.B) {
	_, paths := benchPaths(b)
	bi, err := NewBidirectional(paths)
	if err != nil {
		b.Fatal(err)
	}
	p := paths[0]
	b.Run("right-only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := bi.Forward().FullState(p[0])
			for _, v := range p[1:12] {
				s = bi.Forward().Extend(s, v)
			}
		}
	})
	b.Run("bidirectional-right", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := bi.BiFullState(p[0])
			for _, v := range p[1:12] {
				s = bi.ExtendRight(s, v)
			}
		}
	})
	b.Run("bidirectional-left", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := bi.BiFullState(p[12])
			for j := 11; j >= 1; j-- {
				s = bi.ExtendLeft(s, p[j])
			}
		}
	})
}

func BenchmarkSerializeDeserialize(b *testing.B) {
	g, _ := benchPaths(b)
	b.Run("serialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := g.Serialize(discard{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
