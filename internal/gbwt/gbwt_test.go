package gbwt

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dna"
	"repro/internal/vgraph"
)

// diamondPaths returns a small fixed path set over a diamond-ish DAG:
//
//	1 -> {2,3} -> 4 -> {5,6} -> 7
var diamondPaths = [][]NodeID{
	{1, 2, 4, 5, 7},
	{1, 3, 4, 5, 7},
	{1, 2, 4, 6, 7},
	{1, 3, 4, 6, 7},
	{1, 2, 4, 5, 7}, // duplicate haplotype
}

func mustGBWT(t testing.TB, paths [][]NodeID) *GBWT {
	t.Helper()
	g, err := New(paths)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("no paths accepted")
	}
	if _, err := New([][]NodeID{{}}); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := New([][]NodeID{{1, 0, 2}}); err == nil {
		t.Error("endmarker in path accepted")
	}
	if _, err := New([][]NodeID{{1, 1}}); err == nil {
		t.Error("consecutive repeat accepted")
	}
	if _, err := New([][]NodeID{{1, 2}, {2, 1}}); err == nil {
		t.Error("cyclic adjacencies accepted")
	}
}

func TestNumVisits(t *testing.T) {
	g := mustGBWT(t, diamondPaths)
	want := map[NodeID]int{1: 5, 2: 3, 3: 2, 4: 5, 5: 3, 6: 2, 7: 5}
	for v, n := range want {
		if got := g.NumVisits(v); got != n {
			t.Errorf("NumVisits(%d) = %d, want %d", v, got, n)
		}
	}
	if g.NumVisits(99) != 0 {
		t.Error("NumVisits of absent node != 0")
	}
	if g.NumPaths() != len(diamondPaths) {
		t.Errorf("NumPaths = %d", g.NumPaths())
	}
}

func TestFindCounts(t *testing.T) {
	g := mustGBWT(t, diamondPaths)
	cases := []struct {
		path []NodeID
		want int
	}{
		{[]NodeID{1}, 5},
		{[]NodeID{1, 2}, 3},
		{[]NodeID{1, 3}, 2},
		{[]NodeID{2, 4, 5}, 2},
		{[]NodeID{1, 2, 4, 5, 7}, 2},
		{[]NodeID{1, 3, 4, 6, 7}, 1},
		{[]NodeID{3, 4, 5}, 1},
		{[]NodeID{2, 3}, 0},
		{[]NodeID{7, 1}, 0},
		{nil, 0},
	}
	for _, tc := range cases {
		if got := g.Find(tc.path).Size(); got != tc.want {
			t.Errorf("Find(%v).Size = %d, want %d", tc.path, got, tc.want)
		}
	}
}

func TestLocatePaths(t *testing.T) {
	g := mustGBWT(t, diamondPaths)
	got := g.LocatePaths(g.Find([]NodeID{1, 2, 4, 5}))
	want := []int{0, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LocatePaths = %v, want %v", got, want)
	}
	got = g.LocatePaths(g.Find([]NodeID{6, 7}))
	want = []int{2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LocatePaths(6,7) = %v, want %v", got, want)
	}
}

func TestExtractPath(t *testing.T) {
	g := mustGBWT(t, diamondPaths)
	for i, want := range diamondPaths {
		got, err := g.ExtractPath(i)
		if err != nil {
			t.Fatalf("ExtractPath(%d): %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ExtractPath(%d) = %v, want %v", i, got, want)
		}
	}
	if _, err := g.ExtractPath(-1); err == nil {
		t.Error("negative path id accepted")
	}
	if _, err := g.ExtractPath(len(diamondPaths)); err == nil {
		t.Error("out-of-range path id accepted")
	}
}

func TestSuccessors(t *testing.T) {
	g := mustGBWT(t, diamondPaths)
	got := g.Successors(4)
	want := []NodeID{5, 6}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Successors(4) = %v, want %v", got, want)
	}
	// Last node's only successor is the endmarker, which is excluded.
	if s := g.Successors(7); len(s) != 0 {
		t.Errorf("Successors(7) = %v, want empty", s)
	}
	if s := g.Successors(99); s != nil {
		t.Errorf("Successors(absent) = %v", s)
	}
}

func TestExtendMonotonic(t *testing.T) {
	g := mustGBWT(t, diamondPaths)
	s := g.FullState(1)
	sizes := []int{s.Size()}
	for _, v := range []NodeID{2, 4, 5, 7} {
		s = g.Extend(s, v)
		sizes = append(sizes, s.Size())
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("state grew: %v", sizes)
		}
	}
	if s.Size() != 2 {
		t.Errorf("final size = %d, want 2", s.Size())
	}
}

// buildRandomHaplotypes samples paths through a random pangenome and checks
// the full battery of GBWT invariants against them.
func buildRandomHaplotypes(t testing.TB, seed int64, nHaps int) (*GBWT, [][]NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := make(dna.Sequence, 3000)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	var vs []vgraph.Variant
	for pos := 50; pos < 2900; pos += 60 + rng.Intn(60) {
		switch rng.Intn(3) {
		case 0:
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.SNP, Alt: dna.Sequence{(ref[pos] + 1) & 3}})
		case 1:
			ins := make(dna.Sequence, 1+rng.Intn(6))
			for i := range ins {
				ins[i] = dna.Base(rng.Intn(4))
			}
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.Insertion, Alt: ins})
		case 2:
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.Deletion, DelLen: 1 + rng.Intn(8)})
		}
	}
	p, err := vgraph.BuildPangenome(ref, vs, 16)
	if err != nil {
		t.Fatalf("BuildPangenome: %v", err)
	}
	paths := make([][]NodeID, nHaps)
	for h := range paths {
		alleles := make([]int, p.NumSites())
		for i := range alleles {
			alleles[i] = rng.Intn(p.NumAlleles(i))
		}
		path, err := p.HaplotypePath(alleles)
		if err != nil {
			t.Fatal(err)
		}
		paths[h] = path
	}
	return mustGBWT(t, paths), paths
}

func TestRandomHaplotypesRoundTrip(t *testing.T) {
	g, paths := buildRandomHaplotypes(t, 42, 12)
	// Every path is extractable and findable.
	for i, p := range paths {
		got, err := g.ExtractPath(i)
		if err != nil {
			t.Fatalf("ExtractPath(%d): %v", i, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("ExtractPath(%d) mismatch", i)
		}
		s := g.Find(p)
		if s.Empty() {
			t.Fatalf("path %d not found", i)
		}
		ids := g.LocatePaths(s)
		found := false
		for _, id := range ids {
			if id == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("path %d not among located ids %v", i, ids)
		}
	}
	// Random subpaths have Find counts equal to naive substring counts.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		p := paths[rng.Intn(len(paths))]
		start := rng.Intn(len(p) - 4)
		sub := p[start : start+2+rng.Intn(3)]
		want := 0
		for _, q := range paths {
			for i := 0; i+len(sub) <= len(q); i++ {
				match := true
				for j := range sub {
					if q[i+j] != sub[j] {
						match = false
						break
					}
				}
				if match {
					want++
				}
			}
		}
		if got := g.Find(sub).Size(); got != want {
			t.Fatalf("Find(%v).Size = %d, want %d", sub, got, want)
		}
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	g, _ := buildRandomHaplotypes(t, 7, 8)
	for v := NodeID(0); v <= g.MaxNode(); v++ {
		if !g.Contains(v) {
			continue
		}
		rec := g.Record(v)
		enc := encodeRecord(rec)
		dec, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("decode(encode) node %d: %v", v, err)
		}
		if !reflect.DeepEqual(rec, dec) {
			t.Fatalf("codec round trip mismatch at node %d", v)
		}
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	bad := [][]byte{
		{},                 // truncated numEdges
		{0x01},             // truncated edge
		{0x00, 0x05, 0x00}, // run for record with no edges... rank >= nEdges
	}
	for i, b := range bad {
		if _, err := decodeRecord(b); err == nil {
			t.Errorf("case %d: corrupt record accepted", i)
		}
	}
	// Trailing garbage.
	rec := &DecodedRecord{Edges: []Edge{{To: 0}}, Ranks: []byte{0}}
	enc := append(encodeRecord(rec), 0xFF)
	if _, err := decodeRecord(enc); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	g, paths := buildRandomHaplotypes(t, 99, 10)
	var buf bytes.Buffer
	if err := g.Serialize(&buf); err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	g2, err := Deserialize(&buf)
	if err != nil {
		t.Fatalf("Deserialize: %v", err)
	}
	if g2.NumPaths() != g.NumPaths() || g2.MaxNode() != g.MaxNode() {
		t.Fatal("header mismatch after round trip")
	}
	for i, p := range paths {
		got, err := g2.ExtractPath(i)
		if err != nil {
			t.Fatalf("ExtractPath(%d): %v", i, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("path %d mismatch after round trip", i)
		}
	}
}

func TestDeserializeCorrupt(t *testing.T) {
	g, _ := buildRandomHaplotypes(t, 5, 4)
	var buf bytes.Buffer
	if err := g.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Deserialize(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := Deserialize(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestCachedMatchesUncached(t *testing.T) {
	g, paths := buildRandomHaplotypes(t, 17, 10)
	for _, capacity := range []int{0, 1, 2, 16, 256, 4096} {
		c := NewCached(g, capacity)
		for i, p := range paths {
			if got, want := c.Find(p).Size(), g.Find(p).Size(); got != want {
				t.Fatalf("cap %d: cached Find(path %d) = %d, want %d", capacity, i, got, want)
			}
		}
		rng := rand.New(rand.NewSource(18))
		for trial := 0; trial < 40; trial++ {
			p := paths[rng.Intn(len(paths))]
			start := rng.Intn(len(p) - 3)
			sub := p[start : start+3]
			if got, want := c.Find(sub).Size(), g.Find(sub).Size(); got != want {
				t.Fatalf("cap %d: cached Find(%v) = %d, want %d", capacity, sub, got, want)
			}
		}
	}
}

func TestCacheStatsAndRehash(t *testing.T) {
	g, paths := buildRandomHaplotypes(t, 23, 6)
	c := NewCached(g, 2)
	for _, p := range paths {
		c.Find(p)
	}
	st := c.Stats()
	if st.Accesses == 0 || st.Misses == 0 {
		t.Fatalf("no cache activity recorded: %+v", st)
	}
	if st.Rehashes == 0 {
		t.Error("tiny cache never rehashed despite large working set")
	}
	// Second pass over the same paths must be nearly all hits.
	before := c.Stats()
	for _, p := range paths {
		c.Find(p)
	}
	after := c.Stats()
	if after.Misses != before.Misses {
		t.Errorf("second pass decompressed again: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits <= before.Hits {
		t.Error("second pass produced no hits")
	}
}

func TestCacheDisabled(t *testing.T) {
	g, paths := buildRandomHaplotypes(t, 31, 3)
	c := NewCached(g, 0)
	c.Find(paths[0])
	c.Find(paths[0])
	st := c.Stats()
	if st.Hits != 0 {
		t.Errorf("disabled cache recorded %d hits", st.Hits)
	}
	if st.Misses != st.Accesses {
		t.Errorf("disabled cache: misses %d != accesses %d", st.Misses, st.Accesses)
	}
}

func TestCacheReset(t *testing.T) {
	g, paths := buildRandomHaplotypes(t, 37, 3)
	c := NewCached(g, 64)
	c.Find(paths[0])
	if c.Len() == 0 {
		t.Fatal("nothing cached")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("Len after Reset = %d", c.Len())
	}
	if got, want := c.Find(paths[0]).Size(), g.Find(paths[0]).Size(); got != want {
		t.Errorf("post-Reset Find = %d, want %d", got, want)
	}
}

func TestSearchStateBasics(t *testing.T) {
	var s SearchState
	if !s.Empty() || s.Size() != 0 {
		t.Error("zero state should be empty")
	}
	s = SearchState{Node: 1, Start: 2, End: 5}
	if s.Empty() || s.Size() != 3 {
		t.Errorf("state %+v: Empty=%v Size=%d", s, s.Empty(), s.Size())
	}
}

func BenchmarkFindCached(b *testing.B) {
	g, paths := buildRandomHaplotypes(b, 3, 16)
	c := NewCached(g, DefaultCacheCapacity)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := paths[i%len(paths)]
		c.Find(p[:10])
	}
}

func BenchmarkFindUncached(b *testing.B) {
	g, paths := buildRandomHaplotypes(b, 3, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := paths[i%len(paths)]
		g.Find(p[:10])
	}
}
