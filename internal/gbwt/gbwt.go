// Package gbwt implements the Graph Burrows-Wheeler Transform (Sirén et
// al.), the haplotype index at the heart of Giraffe: haplotypes are stored as
// paths in the variation graph, represented as a BWT over node identifiers.
// Each graph node owns a *record* holding its outgoing edges and a
// run-length compressed body of successor ranks; LF-mapping over records
// supports haplotype-consistent search and extension.
//
// Records are stored compressed (run-length + varint, mirroring the GBZ
// in-memory layout) and decompressed on access. The CachedGBWT type keeps
// decompressed records in a hash table whose initial capacity is the
// "CachedGBWT capacity" tuning parameter studied in the miniGiraffe paper
// (§VII-B): too small and the mapper pays repeated decompressions and
// rehashes; too large and it wastes cache locality.
package gbwt

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/vgraph"
)

// NodeID aliases the graph's node identifier. ID 0 is the endmarker: a
// virtual node that precedes every path start and terminates every path.
type NodeID = vgraph.NodeID

// Endmarker is the virtual node terminating every path.
const Endmarker NodeID = 0

// maxEdges bounds a record's out-degree so successor ranks fit in a byte.
const maxEdges = 255

// Edge is one outgoing edge of a record: the successor node and the offset
// of this record's first arrival inside the successor's record (the LF
// base).
type Edge struct {
	To     NodeID
	Offset int32
}

// DecodedRecord is a decompressed node record: the sorted outgoing edges and
// the BWT body, one successor edge-rank per haplotype visit, in GBWT visit
// order.
type DecodedRecord struct {
	Edges []Edge
	Ranks []byte
}

// NumVisits returns the number of haplotype visits through the record.
func (r *DecodedRecord) NumVisits() int { return len(r.Ranks) }

// edgeRank returns the index of `to` in the sorted edge list, or -1. The
// binary search is inlined by hand: sort.Search's func parameter keeps this
// leaf out of the compiler's inlining budget, and edgeRank sits on every
// Record step of the extension kernel.
//
//minigiraffe:hot
func (r *DecodedRecord) edgeRank(to NodeID) int {
	lo, hi := 0, len(r.Edges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.Edges[mid].To < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.Edges) && r.Edges[lo].To == to {
		return lo
	}
	return -1
}

// rankAt counts occurrences of edge-rank e in Ranks[0:i).
//
//minigiraffe:hot
func (r *DecodedRecord) rankAt(e int, i int32) int32 {
	var n int32
	b := byte(e)
	for _, v := range r.Ranks[:i] {
		if v == b {
			n++
		}
	}
	return n
}

// GBWT is an immutable Graph BWT over a set of paths. Records live
// compressed; use Record (or a CachedGBWT) to access them.
type GBWT struct {
	// comp[v] is the compressed record of node v (index 0 = endmarker);
	// nil for nodes with no visits.
	comp [][]byte
	// visits[v] caches the visit count per node so NumVisits avoids decoding.
	visits []int32
	// endDA is the document array of the endmarker record: the path
	// identifier of each arrival, in visit order. Supports LocatePaths.
	endDA    []int32
	numPaths int
}

// Reader provides access to decoded records. GBWT itself decodes on every
// call; CachedGBWT memoises.
type Reader interface {
	// Record returns the decoded record of v, or nil if v has no visits.
	Record(v NodeID) *DecodedRecord
	// Base returns the underlying GBWT.
	Base() *GBWT
}

// NumPaths returns the number of indexed paths.
func (g *GBWT) NumPaths() int { return g.numPaths }

// MaxNode returns the largest node identifier with a record (0 if empty).
func (g *GBWT) MaxNode() NodeID { return NodeID(len(g.comp) - 1) }

// Contains reports whether node v is visited by any path.
func (g *GBWT) Contains(v NodeID) bool {
	return int(v) < len(g.comp) && g.comp[v] != nil
}

// NumVisits returns the number of path visits through node v.
func (g *GBWT) NumVisits(v NodeID) int {
	if int(v) >= len(g.visits) {
		return 0
	}
	return int(g.visits[v])
}

// Record decodes and returns node v's record, or nil when v is unvisited.
// Each call decompresses afresh; use CachedGBWT to amortise.
func (g *GBWT) Record(v NodeID) *DecodedRecord {
	if int(v) >= len(g.comp) || g.comp[v] == nil {
		return nil
	}
	rec, err := decodeRecord(g.comp[v])
	if err != nil {
		// Compressed records are produced by this package; a decode failure
		// is a programming error, not a user error.
		panic(fmt.Sprintf("gbwt: corrupt record for node %d: %v", v, err))
	}
	return rec
}

// Base implements Reader.
func (g *GBWT) Base() *GBWT { return g }

// SearchState is a half-open range [Start,End) of visits in Node's record:
// the haplotype set whose next step is being tracked.
type SearchState struct {
	Node       NodeID
	Start, End int32
}

// Empty reports whether the state matches no haplotypes.
func (s SearchState) Empty() bool { return s.Start >= s.End }

// Size returns the number of haplotypes in the state.
func (s SearchState) Size() int {
	if s.Empty() {
		return 0
	}
	return int(s.End - s.Start)
}

// FullState returns the state covering every visit of node v.
func (g *GBWT) FullState(v NodeID) SearchState {
	return SearchState{Node: v, End: int32(g.NumVisits(v))}
}

// ExtendWith advances state along the edge to `to` using reader r,
// LF-mapping the visit range into to's record. The result is empty if no
// haplotype in the state continues to `to`.
//
//minigiraffe:hot
func ExtendWith(r Reader, s SearchState, to NodeID) SearchState {
	if s.Empty() {
		return SearchState{Node: to}
	}
	rec := r.Record(s.Node)
	if rec == nil {
		return SearchState{Node: to}
	}
	e := rec.edgeRank(to)
	if e < 0 {
		return SearchState{Node: to}
	}
	off := rec.Edges[e].Offset
	return SearchState{
		Node:  to,
		Start: off + rec.rankAt(e, s.Start),
		End:   off + rec.rankAt(e, s.End),
	}
}

// Extend is ExtendWith over the uncached GBWT.
func (g *GBWT) Extend(s SearchState, to NodeID) SearchState { return ExtendWith(g, s, to) }

// Find returns the search state of haplotypes containing the node sequence
// `path` as a consecutive subpath.
func (g *GBWT) Find(path []NodeID) SearchState {
	return FindWith(g, path)
}

// FindWith is Find through an arbitrary Reader.
func FindWith(r Reader, path []NodeID) SearchState {
	if len(path) == 0 {
		return SearchState{}
	}
	s := r.Base().FullState(path[0])
	for _, v := range path[1:] {
		s = ExtendWith(r, s, v)
		if s.Empty() {
			break
		}
	}
	return s
}

// Successors returns the nodes reachable from v along at least one
// haplotype, ascending, excluding the endmarker.
func (g *GBWT) Successors(v NodeID) []NodeID {
	rec := g.Record(v)
	if rec == nil {
		return nil
	}
	out := make([]NodeID, 0, len(rec.Edges))
	for _, e := range rec.Edges {
		if e.To != Endmarker {
			out = append(out, e.To)
		}
	}
	return out
}

// LocatePaths resolves a search state to the identifiers of the matching
// paths by following each haplotype forward to the endmarker. Cost is
// O(size × remaining-path-length); intended for validation, not hot loops.
func (g *GBWT) LocatePaths(s SearchState) []int {
	out := make([]int, 0, s.Size())
	for i := s.Start; i < s.End; i++ {
		out = append(out, g.locateOne(s.Node, i))
	}
	sort.Ints(out)
	return out
}

// locateOne follows the haplotype at visit i of node v to the endmarker and
// returns its path id from the document array.
func (g *GBWT) locateOne(v NodeID, i int32) int {
	for v != Endmarker {
		rec := g.Record(v)
		e := int(rec.Ranks[i])
		edge := rec.Edges[e]
		i = edge.Offset + rec.rankAt(e, i)
		v = edge.To
	}
	return int(g.endDA[i])
}

// ExtractPath reconstructs path id p by walking from the endmarker record.
func (g *GBWT) ExtractPath(p int) ([]NodeID, error) {
	if p < 0 || p >= g.numPaths {
		return nil, fmt.Errorf("gbwt: path %d out of range [0,%d)", p, g.numPaths)
	}
	end := g.Record(Endmarker)
	// Endmarker visits are in path order by construction.
	v := end.Edges[end.Ranks[p]].To
	i := end.Edges[end.Ranks[p]].Offset + end.rankAt(int(end.Ranks[p]), int32(p))
	var out []NodeID
	for v != Endmarker {
		out = append(out, v)
		rec := g.Record(v)
		e := int(rec.Ranks[i])
		edge := rec.Edges[e]
		i = edge.Offset + rec.rankAt(e, i)
		v = edge.To
	}
	if len(out) == 0 {
		return nil, errors.New("gbwt: empty path")
	}
	return out, nil
}
