package gbwt

// CachedGBWT keeps decompressed records in an open-addressing hash table so
// repeated accesses to the same subgraph skip decompression. This mirrors
// Giraffe's CachedGBWT: the table's *initial capacity* is a tuning parameter
// (default 256 in Giraffe), and growth happens through an expensive rehash —
// which is exactly why the miniGiraffe autotuning study (§VII-B) found the
// initial capacity to be the statistically significant knob.
//
// A CachedGBWT is not safe for concurrent use; the mapper gives each worker
// thread its own cache, as Giraffe does.
type CachedGBWT struct {
	g *GBWT
	// Open addressing with linear probing. Slot keys store node+1 so the
	// zero value means empty (the endmarker is cacheable as key 1).
	keys []NodeID
	vals []*DecodedRecord
	used int
	// capacity 0 disables caching entirely.
	disabled bool

	stats CacheStats
}

// CacheStats counts cache behaviour for the instrumentation and counter
// models.
type CacheStats struct {
	Accesses int64
	Hits     int64 // private-layer hits
	Misses   int64 // decompressions
	Rehashes int64
	// SharedHits counts hits answered by the shared epoch snapshot
	// (EpochReader); zero when running per-batch private caches only.
	// Snapshot hits are counted in Accesses but not in Hits, so
	// Hits+SharedHits+Misses == Accesses regardless of cache discipline.
	SharedHits int64
}

// Add accumulates another cache's counters into s (workers drain their
// per-batch caches into a per-run aggregate). Addition is commutative, so
// merging per-worker stats is order-independent whichever worker finishes
// first.
func (s *CacheStats) Add(o CacheStats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Rehashes += o.Rehashes
	s.SharedHits += o.SharedHits
}

// TotalHits returns hits across both layers (private + shared snapshot).
func (s CacheStats) TotalHits() int64 { return s.Hits + s.SharedHits }

// DefaultCacheCapacity is Giraffe's default initial CachedGBWT capacity.
const DefaultCacheCapacity = 256

// maxLoadNum/maxLoadDen is the load factor threshold (3/4) that triggers a
// rehash to double capacity.
const (
	maxLoadNum = 3
	maxLoadDen = 4
)

// NewCached wraps g with a record cache of the given initial capacity.
// Capacity 0 disables caching (every access decompresses); other values are
// rounded up to a power of two.
func NewCached(g *GBWT, capacity int) *CachedGBWT {
	c := &CachedGBWT{g: g}
	if capacity <= 0 {
		c.disabled = true
		return c
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	c.keys = make([]NodeID, n)
	c.vals = make([]*DecodedRecord, n)
	return c
}

// Base implements Reader.
func (c *CachedGBWT) Base() *GBWT { return c.g }

// Stats returns a copy of the cache counters.
func (c *CachedGBWT) Stats() CacheStats { return c.stats }

// Capacity returns the current table capacity (0 when disabled).
func (c *CachedGBWT) Capacity() int { return len(c.keys) }

// Len returns the number of cached records.
func (c *CachedGBWT) Len() int { return c.used }

// hash mixes the node id; table sizes are powers of two so we multiply by a
// 32-bit odd constant (Knuth) and fold.
func (c *CachedGBWT) hash(v NodeID) int {
	h := uint32(v) * 2654435761
	return int(h) & (len(c.keys) - 1)
}

// Record implements Reader with memoisation.
//
//minigiraffe:hot
func (c *CachedGBWT) Record(v NodeID) *DecodedRecord {
	c.stats.Accesses++
	if c.disabled {
		c.stats.Misses++
		return c.g.Record(v)
	}
	key := v + 1
	i := c.hash(v)
	for c.keys[i] != 0 {
		if c.keys[i] == key {
			c.stats.Hits++
			return c.vals[i]
		}
		i = (i + 1) & (len(c.keys) - 1)
	}
	c.stats.Misses++
	rec := c.g.Record(v)
	if rec == nil {
		return nil
	}
	c.insert(key, rec, i)
	return rec
}

// insert places the record at the probe slot, rehashing first if the load
// factor would exceed the threshold.
func (c *CachedGBWT) insert(key NodeID, rec *DecodedRecord, slot int) {
	if (c.used+1)*maxLoadDen > len(c.keys)*maxLoadNum {
		c.rehash()
		// Re-probe in the grown table.
		slot = c.hash(key - 1)
		for c.keys[slot] != 0 {
			slot = (slot + 1) & (len(c.keys) - 1)
		}
	}
	c.keys[slot] = key
	c.vals[slot] = rec
	c.used++
}

// rehash doubles the table and reinserts every entry — the expensive growth
// operation the initial-capacity parameter exists to avoid.
func (c *CachedGBWT) rehash() {
	c.stats.Rehashes++
	oldKeys, oldVals := c.keys, c.vals
	c.keys = make([]NodeID, len(oldKeys)*2)
	c.vals = make([]*DecodedRecord, len(oldVals)*2)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := c.hash(k - 1)
		for c.keys[j] != 0 {
			j = (j + 1) & (len(c.keys) - 1)
		}
		c.keys[j] = k
		c.vals[j] = oldVals[i]
	}
}

// Extend advances a search state through the cache.
func (c *CachedGBWT) Extend(s SearchState, to NodeID) SearchState {
	return ExtendWith(c, s, to)
}

// Find searches for a node path through the cache.
func (c *CachedGBWT) Find(path []NodeID) SearchState { return FindWith(c, path) }

// Reset drops all cached records, keeping the current capacity.
func (c *CachedGBWT) Reset() {
	for i := range c.keys {
		c.keys[i] = 0
		c.vals[i] = nil
	}
	c.used = 0
}
