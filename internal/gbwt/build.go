package gbwt

import (
	"errors"
	"fmt"
	"sort"
)

// visit identifies one step of one path: path `path` is at its `pos`-th node.
type visit struct {
	path int32
	pos  int32
}

// New builds a GBWT over the given haplotype paths. Paths are sequences of
// node identifiers (never the endmarker 0). The node adjacencies observed
// across all paths must form a DAG — true for the bubble-chain variation
// graphs this reproduction constructs — because the builder finalises each
// node's visit order after all of its predecessors.
func New(paths [][]NodeID) (*GBWT, error) {
	if len(paths) == 0 {
		return nil, errors.New("gbwt: no paths")
	}
	maxNode := NodeID(0)
	for j, p := range paths {
		if len(p) == 0 {
			return nil, fmt.Errorf("gbwt: path %d is empty", j)
		}
		for _, v := range p {
			if v == Endmarker {
				return nil, fmt.Errorf("gbwt: path %d contains the endmarker id 0", j)
			}
			if v > maxNode {
				maxNode = v
			}
		}
	}

	n := int(maxNode) + 1 // index space including the endmarker
	// arrivals[w][pred] = visits arriving at w from pred, in pred-record
	// order. Predecessor 0 is the endmarker (path starts).
	arrivals := make([]map[NodeID][]visit, n)
	addArrival := func(w, pred NodeID, vt visit) {
		if arrivals[w] == nil {
			arrivals[w] = make(map[NodeID][]visit)
		}
		arrivals[w][pred] = append(arrivals[w][pred], vt)
	}

	// Observed adjacency and dependency edges for Kahn's algorithm.
	succOf := make([]map[NodeID]bool, n)
	indeg := make([]int, n)
	addDep := func(v, w NodeID) {
		if succOf[v] == nil {
			succOf[v] = make(map[NodeID]bool)
		}
		if !succOf[v][w] {
			succOf[v][w] = true
			indeg[w]++
		}
	}
	active := make([]bool, n)
	for _, p := range paths {
		active[p[0]] = true
		for i := 1; i < len(p); i++ {
			if p[i] == p[i-1] {
				return nil, fmt.Errorf("gbwt: path repeats node %d consecutively (self-loop)", p[i])
			}
			active[p[i]] = true
			addDep(p[i-1], p[i])
		}
	}

	// Seed: the endmarker record's body lists path starts in path order, and
	// LF from body position p arrives at the first node with offset 0.
	for j, p := range paths {
		addArrival(p[0], Endmarker, visit{path: int32(j), pos: 0})
	}

	// visitLists[v] = visits of node v in GBWT order (pred asc, pred order).
	visitLists := make([][]visit, n)
	finalize := func(w NodeID) []visit {
		groups := arrivals[w]
		preds := make([]NodeID, 0, len(groups))
		for p := range groups {
			preds = append(preds, p)
		}
		sort.Slice(preds, func(a, b int) bool { return preds[a] < preds[b] })
		var list []visit
		for _, p := range preds {
			list = append(list, groups[p]...)
		}
		return list
	}

	// Kahn over active nodes.
	var frontier []NodeID
	for v := NodeID(1); int(v) < n; v++ {
		if active[v] && indeg[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	processed := 0
	totalActive := 0
	for v := NodeID(1); int(v) < n; v++ {
		if active[v] {
			totalActive++
		}
	}
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		processed++
		list := finalize(v)
		visitLists[v] = list
		// Propagate each visit to its successor's arrival list, in record
		// order.
		for _, vt := range list {
			p := paths[vt.path]
			if int(vt.pos)+1 < len(p) {
				addArrival(p[vt.pos+1], v, visit{path: vt.path, pos: vt.pos + 1})
			} else {
				addArrival(Endmarker, v, vt)
			}
		}
		for w := range succOf[v] {
			indeg[w]--
			if indeg[w] == 0 {
				frontier = append(frontier, w)
			}
		}
		// Deterministic ordering of the frontier keeps builds reproducible.
		sort.Slice(frontier, func(a, b int) bool { return frontier[a] < frontier[b] })
	}
	if processed != totalActive {
		return nil, errors.New("gbwt: path adjacencies contain a cycle; only DAGs are supported")
	}

	// Phase 2: bodies, edges, offsets.
	g := &GBWT{
		comp:     make([][]byte, n),
		visits:   make([]int32, n),
		numPaths: len(paths),
	}
	// arrivalsBefore(w, v) = number of visits at w from preds with id < v.
	arrivalsBefore := func(w, v NodeID) int32 {
		var total int32
		for p, lst := range arrivals[w] {
			if p < v {
				total += int32(len(lst))
			}
		}
		return total
	}
	buildRecord := func(v NodeID, list []visit) (*DecodedRecord, error) {
		succs := make(map[NodeID]bool)
		for _, vt := range list {
			p := paths[vt.path]
			s := Endmarker
			if int(vt.pos)+1 < len(p) {
				s = p[vt.pos+1]
			}
			succs[s] = true
		}
		if len(succs) > maxEdges {
			return nil, fmt.Errorf("gbwt: node %d has %d successors (max %d)", v, len(succs), maxEdges)
		}
		rec := &DecodedRecord{}
		for s := range succs {
			rec.Edges = append(rec.Edges, Edge{To: s, Offset: arrivalsBefore(s, v)})
		}
		sort.Slice(rec.Edges, func(a, b int) bool { return rec.Edges[a].To < rec.Edges[b].To })
		rec.Ranks = make([]byte, len(list))
		for i, vt := range list {
			p := paths[vt.path]
			s := Endmarker
			if int(vt.pos)+1 < len(p) {
				s = p[vt.pos+1]
			}
			rec.Ranks[i] = byte(rec.edgeRank(s))
		}
		return rec, nil
	}
	for v := NodeID(1); int(v) < n; v++ {
		if !active[v] {
			continue
		}
		rec, err := buildRecord(v, visitLists[v])
		if err != nil {
			return nil, err
		}
		g.visits[v] = int32(len(visitLists[v]))
		g.comp[v] = encodeRecord(rec)
	}

	// Endmarker record: body in path order, successor = first node.
	endRec := &DecodedRecord{}
	firstNodes := make(map[NodeID]bool)
	for _, p := range paths {
		firstNodes[p[0]] = true
	}
	for s := range firstNodes {
		endRec.Edges = append(endRec.Edges, Edge{To: s, Offset: 0})
	}
	sort.Slice(endRec.Edges, func(a, b int) bool { return endRec.Edges[a].To < endRec.Edges[b].To })
	endRec.Ranks = make([]byte, len(paths))
	for j, p := range paths {
		endRec.Ranks[j] = byte(endRec.edgeRank(p[0]))
	}
	g.visits[Endmarker] = int32(len(paths))
	g.comp[Endmarker] = encodeRecord(endRec)

	// Document array: arrivals at the endmarker in (pred asc, pred order).
	groups := arrivals[Endmarker]
	preds := make([]NodeID, 0, len(groups))
	for p := range groups {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(a, b int) bool { return preds[a] < preds[b] })
	for _, p := range preds {
		for _, vt := range groups[p] {
			g.endDA = append(g.endDA, vt.path)
		}
	}
	if len(g.endDA) != len(paths) {
		return nil, fmt.Errorf("gbwt: document array has %d entries for %d paths", len(g.endDA), len(paths))
	}
	return g, nil
}
