package gbwt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Serialization layout (all unsigned varints unless noted):
//
//	numPaths
//	n                      (record index space, including endmarker)
//	endDA[numPaths]
//	per node v in 0..n-1:
//	    recordLen          (0 = node unvisited)
//	    visits             (present only when recordLen > 0)
//	    recordLen bytes    (compressed record, stored as-is)
//
// The GBZ container (package gbz) wraps this stream with its header and CRC.

// Serialize writes the GBWT to w.
func (g *GBWT) Serialize(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := put(uint64(g.numPaths)); err != nil {
		return err
	}
	if err := put(uint64(len(g.comp))); err != nil {
		return err
	}
	for _, d := range g.endDA {
		if err := put(uint64(d)); err != nil {
			return err
		}
	}
	for v := range g.comp {
		rec := g.comp[v]
		if err := put(uint64(len(rec))); err != nil {
			return err
		}
		if len(rec) == 0 {
			continue
		}
		if err := put(uint64(g.visits[v])); err != nil {
			return err
		}
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxReasonableNodes guards deserialization against hostile or corrupt
// headers.
const maxReasonableNodes = 1 << 31

// Deserialize reads a GBWT written by Serialize.
func Deserialize(r io.Reader) (*GBWT, error) {
	br := bufio.NewReader(r)
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	numPaths, err := get()
	if err != nil {
		return nil, fmt.Errorf("gbwt: reading numPaths: %w", err)
	}
	n, err := get()
	if err != nil {
		return nil, fmt.Errorf("gbwt: reading node count: %w", err)
	}
	if n == 0 || n > maxReasonableNodes || numPaths > maxReasonableNodes {
		return nil, errors.New("gbwt: implausible header")
	}
	g := &GBWT{
		comp:     make([][]byte, n),
		visits:   make([]int32, n),
		numPaths: int(numPaths),
		endDA:    make([]int32, numPaths),
	}
	for i := range g.endDA {
		d, err := get()
		if err != nil {
			return nil, fmt.Errorf("gbwt: reading document array: %w", err)
		}
		if d >= numPaths {
			return nil, fmt.Errorf("gbwt: document array entry %d out of range", d)
		}
		g.endDA[i] = int32(d)
	}
	for v := uint64(0); v < n; v++ {
		recLen, err := get()
		if err != nil {
			return nil, fmt.Errorf("gbwt: reading record %d length: %w", v, err)
		}
		if recLen == 0 {
			continue
		}
		visits, err := get()
		if err != nil {
			return nil, fmt.Errorf("gbwt: reading record %d visits: %w", v, err)
		}
		buf := make([]byte, recLen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("gbwt: reading record %d body: %w", v, err)
		}
		// Validate the record decodes and its visit count matches.
		rec, err := decodeRecord(buf)
		if err != nil {
			return nil, fmt.Errorf("gbwt: record %d: %w", v, err)
		}
		if uint64(len(rec.Ranks)) != visits {
			return nil, fmt.Errorf("gbwt: record %d visit count %d != declared %d", v, len(rec.Ranks), visits)
		}
		g.comp[v] = buf
		g.visits[v] = int32(visits)
	}
	return g, nil
}
