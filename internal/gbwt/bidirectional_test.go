package gbwt

import (
	"math/rand"
	"reflect"
	"testing"
)

func mustBi(t testing.TB, paths [][]NodeID) *Bidirectional {
	t.Helper()
	b, err := NewBidirectional(paths)
	if err != nil {
		t.Fatalf("NewBidirectional: %v", err)
	}
	return b
}

// naiveCount counts occurrences of sub as a consecutive subpath across paths.
func naiveCount(paths [][]NodeID, sub []NodeID) int {
	n := 0
	for _, p := range paths {
		for i := 0; i+len(sub) <= len(p); i++ {
			match := true
			for j := range sub {
				if p[i+j] != sub[j] {
					match = false
					break
				}
			}
			if match {
				n++
			}
		}
	}
	return n
}

func TestBidirectionalDiamond(t *testing.T) {
	b := mustBi(t, diamondPaths)
	cases := [][]NodeID{
		{1}, {1, 2}, {2, 4}, {1, 2, 4, 5}, {4, 5, 7}, {1, 3, 4, 6, 7}, {2, 3},
	}
	for _, sub := range cases {
		want := naiveCount(diamondPaths, sub)
		if got := b.FindBi(sub).Size(); got != want {
			t.Errorf("FindBi(%v) = %d, want %d", sub, got, want)
		}
		// Forward and bidirectional search agree.
		if got := b.Forward().Find(sub).Size(); got != want {
			t.Errorf("forward Find(%v) = %d, want %d", sub, got, want)
		}
	}
}

func TestExtendLeftStepwise(t *testing.T) {
	b := mustBi(t, diamondPaths)
	// Start at node 7 and walk the match leftward: 7, 5·7?, ...
	s := b.BiFullState(7)
	if s.Size() != 5 {
		t.Fatalf("full state at 7: %d", s.Size())
	}
	s = b.ExtendLeft(s, 5)
	if got, want := s.Size(), naiveCount(diamondPaths, []NodeID{5, 7}); got != want {
		t.Fatalf("after left 5: %d, want %d", got, want)
	}
	s = b.ExtendLeft(s, 4)
	if got, want := s.Size(), naiveCount(diamondPaths, []NodeID{4, 5, 7}); got != want {
		t.Fatalf("after left 4: %d, want %d", got, want)
	}
	s = b.ExtendLeft(s, 2)
	if got, want := s.Size(), naiveCount(diamondPaths, []NodeID{2, 4, 5, 7}); got != want {
		t.Fatalf("after left 2: %d, want %d", got, want)
	}
	// A non-predecessor kills the state.
	if !b.ExtendLeft(s, 6).Empty() {
		t.Error("impossible left extension survived")
	}
}

func TestBiStateSizesAgree(t *testing.T) {
	b := mustBi(t, diamondPaths)
	s := b.BiFullState(4)
	steps := []struct {
		left bool
		node NodeID
	}{{false, 5}, {true, 2}, {false, 7}, {true, 1}}
	for _, st := range steps {
		if st.left {
			s = b.ExtendLeft(s, st.node)
		} else {
			s = b.ExtendRight(s, st.node)
		}
		if s.Fwd.Size() != s.Rev.Size() {
			t.Fatalf("ranges desynchronised: fwd %d, rev %d", s.Fwd.Size(), s.Rev.Size())
		}
	}
	if got, want := s.Size(), naiveCount(diamondPaths, []NodeID{1, 2, 4, 5, 7}); got != want {
		t.Fatalf("final size %d, want %d", got, want)
	}
}

func TestBidirectionalRandomised(t *testing.T) {
	g, paths := buildRandomHaplotypes(t, 77, 12)
	_ = g
	b := mustBi(t, paths)
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 80; trial++ {
		p := paths[rng.Intn(len(paths))]
		start := rng.Intn(len(p) - 6)
		sub := p[start : start+2+rng.Intn(5)]
		want := naiveCount(paths, sub)

		// Random interleaving of left/right extensions from a random anchor.
		anchor := rng.Intn(len(sub))
		s := b.BiFullState(sub[anchor])
		l, r := anchor-1, anchor+1
		for l >= 0 || r < len(sub) {
			goLeft := l >= 0 && (r >= len(sub) || rng.Intn(2) == 0)
			if goLeft {
				s = b.ExtendLeft(s, sub[l])
				l--
			} else {
				s = b.ExtendRight(s, sub[r])
				r++
			}
			if s.Fwd.Size() != s.Rev.Size() {
				t.Fatalf("trial %d: desynchronised sizes", trial)
			}
		}
		if got := s.Size(); got != want {
			t.Fatalf("trial %d: interleaved count %d, want %d (sub %v)", trial, got, want, sub)
		}
	}
}

func TestBidirectionalLocateAgreement(t *testing.T) {
	// After a pure-left walk, the fwd state must locate the same path set as
	// a forward search for the same match.
	_, paths := buildRandomHaplotypes(t, 99, 8)
	b := mustBi(t, paths)
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 30; trial++ {
		p := paths[rng.Intn(len(paths))]
		start := rng.Intn(len(p) - 5)
		sub := p[start : start+4]
		s := b.BiFullState(sub[len(sub)-1])
		for i := len(sub) - 2; i >= 0; i-- {
			s = b.ExtendLeft(s, sub[i])
		}
		wantState := b.Forward().Find(sub)
		if s.Fwd != wantState {
			t.Fatalf("trial %d: left-walk fwd state %+v != forward search %+v", trial, s.Fwd, wantState)
		}
		got := b.Forward().LocatePaths(s.Fwd)
		want := b.Forward().LocatePaths(wantState)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: located paths differ", trial)
		}
	}
}

func TestPredecessorsWith(t *testing.T) {
	b := mustBi(t, diamondPaths)
	r := b.NewBiReader(64)
	s := b.BiFullState(4)
	preds := b.PredecessorsWith(r, s)
	want := []NodeID{2, 3}
	if !reflect.DeepEqual(preds, want) {
		t.Errorf("PredecessorsWith(4) = %v, want %v", preds, want)
	}
	// After restricting to haplotypes through 2·4, only 2 remains.
	s = b.ExtendLeft(s, 2)
	preds = b.PredecessorsWith(r, s)
	if !reflect.DeepEqual(preds, []NodeID{1}) {
		t.Errorf("predecessors of 2·4 = %v, want [1]", preds)
	}
	// First node of every path: the only predecessor is the endmarker,
	// which is excluded.
	s1 := b.BiFullState(1)
	if preds := b.PredecessorsWith(r, s1); len(preds) != 0 {
		t.Errorf("predecessors at path start = %v, want none", preds)
	}
}

func TestBiReaderCachedMatchesUncached(t *testing.T) {
	_, paths := buildRandomHaplotypes(t, 55, 10)
	b := mustBi(t, paths)
	cached := b.NewBiReader(32)
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 40; trial++ {
		p := paths[rng.Intn(len(paths))]
		i := 1 + rng.Intn(len(p)-2)
		s := b.BiFullState(p[i])
		viaPlain := b.ExtendLeft(s, p[i-1])
		viaCache := ExtendLeftWith(cached, s, p[i-1])
		if viaPlain != viaCache {
			t.Fatalf("trial %d: cached left extension diverged", trial)
		}
		viaPlainR := b.ExtendRight(s, p[i+1])
		viaCacheR := ExtendRightWith(cached, s, p[i+1])
		if viaPlainR != viaCacheR {
			t.Fatalf("trial %d: cached right extension diverged", trial)
		}
	}
}

func TestFromForward(t *testing.T) {
	fwd := mustGBWT(t, diamondPaths)
	b, err := FromForward(fwd, diamondPaths)
	if err != nil {
		t.Fatal(err)
	}
	if b.Forward() != fwd {
		t.Error("FromForward rebuilt the forward index")
	}
	if got, want := b.FindBi([]NodeID{1, 2, 4}).Size(), naiveCount(diamondPaths, []NodeID{1, 2, 4}); got != want {
		t.Errorf("FindBi = %d, want %d", got, want)
	}
	if _, err := FromForward(nil, nil); err == nil {
		t.Error("nil forward accepted")
	}
}

func TestFindBiEmptyPath(t *testing.T) {
	b := mustBi(t, diamondPaths)
	if !b.FindBi(nil).Empty() {
		t.Error("empty path matched")
	}
}
