package gbwt

// Epoch-published shared record cache.
//
// The per-batch CachedGBWT rebuild (Giraffe's cache lifetime, §VII-B) is the
// single biggest attributed cost in slow-read exemplars: every worker
// re-decodes the same zipf-hot node records every batch. This file replaces
// that discipline with a two-layer design borrowed from Doppel's phase-split
// playbook:
//
//   - A SharedCache holds an immutable Snapshot of decoded records that
//     every worker reads lock-free through an atomic.Pointer. Hot records
//     survive across batches and across workers.
//   - Each worker keeps a small private CachedGBWT as an overflow layer for
//     records missing from the snapshot, preserving the paper's capacity
//     knob (the overflow is still rebuilt per batch).
//   - Access-frequency feedback flows off the hot path: overflow *misses*
//     bump lock-free frequency slots; snapshot *hits* bump per-worker
//     per-slot counters on the snapshot itself. At batch boundaries a single
//     builder (CAS-elected) ranks residents + candidates by observed
//     frequency, decodes the winners, and publishes the next epoch.
//
// Immutability invariant: once published, a Snapshot's keys/vals are never
// written again — readers that pinned an old epoch keep a consistent view
// until they drop it. The per-worker hit counters are the only mutable cells
// on a published snapshot; they are atomic, advisory (they only steer the
// next epoch's ranking), and never affect lookup results. Correctness is
// cache-independent by construction: every layer returns decoded records of
// the same underlying GBWT, so mapping output is byte-identical whichever
// layer answers (the differential harness in internal/giraffe locks this).

import (
	"sort"
	"sync/atomic"
	"time"
)

// DefaultEpochInterval is the number of batch boundaries between epoch
// publications when EpochConfig.Interval is unset. Small keeps the snapshot
// fresh while a CAS guard ensures at most one builder runs at a time.
const DefaultEpochInterval = 2

// EpochConfig sizes a shared epoch cache.
type EpochConfig struct {
	// Capacity is the maximum number of hot records retained per direction
	// in the published snapshot (a top-K bound, not a table size; the open
	// addressing table is sized to a power of two above it).
	Capacity int
	// Workers is the number of per-worker hit-counter rows; out-of-range
	// worker indices clamp to the last row. ≤0 means 1.
	Workers int
	// Interval is the number of batch boundaries between publications;
	// ≤0 means DefaultEpochInterval.
	Interval int
}

func (c EpochConfig) normalize() EpochConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Interval <= 0 {
		c.Interval = DefaultEpochInterval
	}
	return c
}

// Snapshot is one published epoch: an immutable open-addressing table of
// decoded records. Lookup is lock-free and allocation-free; the only mutable
// state is the advisory per-worker hit counters consumed by the next
// publish.
type Snapshot struct {
	epoch int64
	// keys stores node+1 so the zero value means empty, as CachedGBWT does.
	keys []NodeID
	vals []*DecodedRecord
	used int
	// hits is rows × len(keys) atomic counters, row-major per worker, so
	// concurrent workers never contend on one cache line for the same slot.
	hits []atomic.Int64
	rows int
}

// Epoch returns the snapshot's publication number (0 = the empty seed
// snapshot that exists before the first publish).
func (s *Snapshot) Epoch() int64 { return s.epoch }

// Len returns the number of resident records.
func (s *Snapshot) Len() int { return s.used }

// lookup probes the immutable table. The second result is the slot index
// for hit accounting; it is meaningless when the record is nil.
//
//minigiraffe:hot
func (s *Snapshot) lookup(v NodeID) (*DecodedRecord, int32) {
	if len(s.keys) == 0 {
		return nil, 0
	}
	key := v + 1
	mask := uint32(len(s.keys) - 1)
	i := (uint32(v) * 2654435761) & mask
	for s.keys[i] != 0 {
		if s.keys[i] == key {
			return s.vals[i], int32(i)
		}
		i = (i + 1) & mask
	}
	return nil, 0
}

// hit bumps the worker-row counter of a resident slot — one uncontended
// atomic add; rows keep workers off each other's cache lines.
//
//minigiraffe:hot
func (s *Snapshot) hit(row int, slot int32) {
	s.hits[row*len(s.keys)+int(slot)].Add(1)
}

// slotHits sums a slot's hit counters across all worker rows.
func (s *Snapshot) slotHits(slot int) int64 {
	var n int64
	for r := 0; r < s.rows; r++ {
		n += s.hits[r*len(s.keys)+slot].Load()
	}
	return n
}

// SharedCache is the epoch-published shared record cache of one GBWT
// direction: the current Snapshot plus the miss-frequency feedback the next
// epoch is built from.
type SharedCache struct {
	g   *GBWT
	cfg EpochConfig

	cur atomic.Pointer[Snapshot]

	// Feedback slots: a lock-free Misra-Gries-style frequency sketch fed by
	// overflow misses. slotNode stores node+1 (0 = empty); collisions decay
	// the incumbent and eventually take the slot over. Races only blur
	// counts — the sketch is advisory.
	slotNode  []atomic.Uint64
	slotCount []atomic.Int64

	building  atomic.Bool
	publishes atomic.Int64
}

// NewShared builds a shared epoch cache over g. The initial snapshot is
// empty: every access overflows into the private layer (and feeds the
// frequency sketch) until the first publish.
func NewShared(g *GBWT, cfg EpochConfig) *SharedCache {
	cfg = cfg.normalize()
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	// 4× capacity slots keep the sketch's collision rate low without
	// tracking exact per-node counts.
	slots := pow2ceil(4 * cfg.Capacity)
	c := &SharedCache{
		g:         g,
		cfg:       cfg,
		slotNode:  make([]atomic.Uint64, slots),
		slotCount: make([]atomic.Int64, slots),
	}
	c.cur.Store(&Snapshot{rows: cfg.Workers})
	return c
}

// Base returns the underlying GBWT.
func (c *SharedCache) Base() *GBWT { return c.g }

// Current returns the live snapshot (readers should pin it once per batch
// via NewReader instead of loading per access).
func (c *SharedCache) Current() *Snapshot { return c.cur.Load() }

// Publishes returns how many epochs have been published.
func (c *SharedCache) Publishes() int64 { return c.publishes.Load() }

// Resident returns the record count of the live snapshot.
func (c *SharedCache) Resident() int { return c.cur.Load().used }

// note feeds one overflow miss into the frequency sketch: lock-free,
// allocation-free, tolerant of racing writers.
//
//minigiraffe:hot
func (c *SharedCache) note(v NodeID) {
	mask := uint32(len(c.slotNode) - 1)
	h := (uint32(v) * 2654435761) & mask
	key := uint64(v) + 1
	n := c.slotNode[h].Load()
	switch {
	case n == key:
		c.slotCount[h].Add(1)
	case n == 0 && c.slotNode[h].CompareAndSwap(0, key):
		c.slotCount[h].Add(1)
	default:
		// Collision: decay the incumbent; once drained, take the slot over.
		if c.slotCount[h].Add(-1) <= 0 {
			c.slotNode[h].Store(key)
			c.slotCount[h].Store(1)
		}
	}
}

// Publish builds and publishes the next epoch from the drained frequency
// sketch plus the current residents ranked by their observed hits. At most
// one publisher runs at a time; a concurrent call returns false without
// blocking. Publish is the builder's entry point — it is deliberately off
// the mapping hot path (batch boundaries only).
func (c *SharedCache) Publish() bool {
	if !c.building.CompareAndSwap(false, true) {
		return false
	}
	defer c.building.Store(false)
	old := c.cur.Load()

	type cand struct {
		node  NodeID
		count int64
	}
	cands := make([]cand, 0, len(c.slotNode)+old.used)
	// Drain the sketch: candidates that missed the current snapshot.
	for i := range c.slotNode {
		n := c.slotNode[i].Swap(0)
		cnt := c.slotCount[i].Swap(0)
		if n == 0 || cnt <= 0 {
			continue
		}
		cands = append(cands, cand{node: NodeID(n - 1), count: cnt})
	}
	// Current residents, ranked by this epoch's hit counters: entries that
	// kept hitting stay; entries nobody touched age out against fresh
	// candidates.
	for i, k := range old.keys {
		if k == 0 {
			continue
		}
		cands = append(cands, cand{node: k - 1, count: old.slotHits(i)})
	}
	// A node can appear as both resident and sketch candidate (a reader
	// pinned to an older epoch missed it); merge counts deterministically.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].node != cands[b].node {
			return cands[a].node < cands[b].node
		}
		return cands[a].count > cands[b].count
	})
	merged := cands[:0]
	for _, cd := range cands {
		if n := len(merged); n > 0 && merged[n-1].node == cd.node {
			merged[n-1].count += cd.count
			continue
		}
		merged = append(merged, cd)
	}
	// Rank by frequency, ties by node id so equal-frequency publishes are
	// deterministic within a run.
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].count != merged[b].count {
			return merged[a].count > merged[b].count
		}
		return merged[a].node < merged[b].node
	})
	if len(merged) > c.cfg.Capacity {
		merged = merged[:c.cfg.Capacity]
	}

	snap := &Snapshot{epoch: old.epoch + 1, rows: c.cfg.Workers}
	if len(merged) > 0 {
		size := pow2ceil(2 * len(merged))
		snap.keys = make([]NodeID, size)
		snap.vals = make([]*DecodedRecord, size)
		snap.hits = make([]atomic.Int64, c.cfg.Workers*size)
		mask := uint32(size - 1)
		for _, cd := range merged {
			rec := c.g.Record(cd.node)
			if rec == nil {
				continue // unvisited node noted by a stale sketch entry
			}
			i := (uint32(cd.node) * 2654435761) & mask
			for snap.keys[i] != 0 {
				i = (i + 1) & mask
			}
			snap.keys[i] = cd.node + 1
			snap.vals[i] = rec
			snap.used++
		}
	}
	c.cur.Store(snap)
	c.publishes.Add(1)
	return true
}

// EpochReader reads snapshot-first with a private CachedGBWT overflow — the
// per-worker, per-batch reader of the epoch discipline. Not safe for
// concurrent use (the overflow layer is private); each worker builds its own
// per batch, which pins one snapshot for the whole batch.
type EpochReader struct {
	c    *SharedCache
	snap *Snapshot
	over *CachedGBWT
	row  int

	sharedHits int64
}

// NewReader pins the current snapshot and wraps it with a fresh private
// overflow cache of the given capacity (the §VII-B knob; 0 disables the
// overflow layer so every snapshot miss decompresses).
func (c *SharedCache) NewReader(worker, overflowCapacity int) *EpochReader {
	row := worker
	if row < 0 {
		row = 0
	}
	if row >= c.cfg.Workers {
		row = c.cfg.Workers - 1
	}
	return &EpochReader{
		c:    c,
		snap: c.cur.Load(),
		over: NewCached(c.g, overflowCapacity),
		row:  row,
	}
}

// Base implements Reader.
func (r *EpochReader) Base() *GBWT { return r.c.g }

// Snapshot returns the epoch pinned by this reader.
func (r *EpochReader) Snapshot() *Snapshot { return r.snap }

// Record implements Reader: snapshot hit (lock-free, zero-alloc) → private
// overflow → decode. Overflow decodes feed the frequency sketch so the next
// epoch learns what this one was missing.
//
//minigiraffe:hot
func (r *EpochReader) Record(v NodeID) *DecodedRecord {
	if rec, slot := r.snap.lookup(v); rec != nil {
		r.sharedHits++
		r.snap.hit(r.row, slot)
		return rec
	}
	m0 := r.over.stats.Misses
	rec := r.over.Record(v)
	if rec != nil && r.over.stats.Misses != m0 {
		r.c.note(v)
	}
	return rec
}

// Extend advances a search state through the reader.
func (r *EpochReader) Extend(s SearchState, to NodeID) SearchState {
	return ExtendWith(r, s, to)
}

// Find searches for a node path through the reader.
func (r *EpochReader) Find(path []NodeID) SearchState { return FindWith(r, path) }

// Stats drains the reader's counters: snapshot hits count as accesses (and
// as SharedHits), the private overflow contributes its usual hit/miss/rehash
// split.
func (r *EpochReader) Stats() CacheStats {
	s := r.over.Stats()
	s.Accesses += r.sharedHits
	s.SharedHits = r.sharedHits
	return s
}

// SharedBiCache pairs one SharedCache per direction of a bidirectional
// index and owns the epoch clock: batch boundaries tick it, and every
// Interval ticks one caller (CAS-elected) publishes both directions.
type SharedBiCache struct {
	Fwd, Rev *SharedCache

	interval int64
	batches  atomic.Int64
	building atomic.Bool
}

// NewSharedBi builds shared epoch caches over both directions of b.
func NewSharedBi(b *Bidirectional, cfg EpochConfig) *SharedBiCache {
	cfg = cfg.normalize()
	return &SharedBiCache{
		Fwd:      NewShared(b.Forward(), cfg),
		Rev:      NewShared(b.Reverse(), cfg),
		interval: int64(cfg.Interval),
	}
}

// NewBiReader builds the per-worker epoch reader pair, pinning the current
// snapshots and wrapping them with private overflow caches of the given
// capacity.
func (s *SharedBiCache) NewBiReader(worker, overflowCapacity int) BiReader {
	return BiReader{
		Fwd: s.Fwd.NewReader(worker, overflowCapacity),
		Rev: s.Rev.NewReader(worker, overflowCapacity),
	}
}

// MaybePublish is the batch-boundary hook: it ticks the epoch clock and,
// every Interval ticks, publishes the next epoch of both directions in the
// calling goroutine (off the record-mapping hot path). The build duration is
// returned to whoever won the publication so the cost can be attributed;
// everyone else returns false immediately.
func (s *SharedBiCache) MaybePublish() (time.Duration, bool) {
	if s.batches.Add(1) < s.interval {
		return 0, false
	}
	if !s.building.CompareAndSwap(false, true) {
		return 0, false
	}
	defer s.building.Store(false)
	s.batches.Store(0)
	t0 := time.Now()
	s.Fwd.Publish()
	s.Rev.Publish()
	return time.Since(t0), true
}

// Publishes returns the forward direction's epoch count (both directions
// publish together).
func (s *SharedBiCache) Publishes() int64 { return s.Fwd.Publishes() }

// Resident returns the total records resident across both directions.
func (s *SharedBiCache) Resident() int { return s.Fwd.Resident() + s.Rev.Resident() }

// pow2ceil rounds n up to the next power of two (minimum 1).
func pow2ceil(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
