package gbwt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDAGPaths derives a small random DAG path set from a seed: node ids
// are strictly increasing within each path, which guarantees the adjacency
// DAG property the builder requires.
func randomDAGPaths(seed int64) [][]NodeID {
	rng := rand.New(rand.NewSource(seed))
	nPaths := 1 + rng.Intn(6)
	maxNode := 4 + rng.Intn(20)
	paths := make([][]NodeID, nPaths)
	for i := range paths {
		// Random increasing subset of 1..maxNode.
		var p []NodeID
		for v := 1; v <= maxNode; v++ {
			if rng.Intn(2) == 0 {
				p = append(p, NodeID(v))
			}
		}
		if len(p) == 0 {
			p = []NodeID{NodeID(1 + rng.Intn(maxNode))}
		}
		paths[i] = p
	}
	return paths
}

// TestQuickBuildRoundTrip property-checks that every inserted path is
// extractable, findable, and located, over arbitrary DAG path sets.
func TestQuickBuildRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		paths := randomDAGPaths(seed)
		g, err := New(paths)
		if err != nil {
			return false
		}
		for i, p := range paths {
			got, err := g.ExtractPath(i)
			if err != nil || len(got) != len(p) {
				return false
			}
			for j := range p {
				if got[j] != p[j] {
					return false
				}
			}
			if g.Find(p).Empty() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickFindMatchesNaive property-checks subpath counts against the
// brute force over random path sets and random query windows.
func TestQuickFindMatchesNaive(t *testing.T) {
	f := func(seed int64, pick uint8, start, width uint8) bool {
		paths := randomDAGPaths(seed)
		g, err := New(paths)
		if err != nil {
			return false
		}
		p := paths[int(pick)%len(paths)]
		s := int(start) % len(p)
		w := 1 + int(width)%4
		if s+w > len(p) {
			w = len(p) - s
		}
		sub := p[s : s+w]
		return g.Find(sub).Size() == naiveCount(paths, sub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickSerializePreservesQueries property-checks that serialization
// round trips preserve Find results.
func TestQuickSerializePreservesQueries(t *testing.T) {
	f := func(seed int64) bool {
		paths := randomDAGPaths(seed)
		g, err := New(paths)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := g.Serialize(&buf); err != nil {
			return false
		}
		g2, err := Deserialize(&buf)
		if err != nil {
			return false
		}
		for _, p := range paths {
			if g.Find(p).Size() != g2.Find(p).Size() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickBidirectionalAgreement property-checks bidirectional search
// against forward search over arbitrary path sets.
func TestQuickBidirectionalAgreement(t *testing.T) {
	f := func(seed int64, pick, start uint8) bool {
		paths := randomDAGPaths(seed)
		bi, err := NewBidirectional(paths)
		if err != nil {
			return false
		}
		p := paths[int(pick)%len(paths)]
		s := int(start) % len(p)
		w := len(p) - s
		if w > 5 {
			w = 5
		}
		sub := p[s : s+w]
		return bi.FindBi(sub).Size() == bi.Forward().Find(sub).Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
