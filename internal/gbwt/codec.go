package gbwt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Record wire format (all integers unsigned varints):
//
//	numEdges
//	repeated numEdges times: deltaTo (To - prevTo, first edge absolute), offset
//	numVisits
//	repeated runs until numVisits consumed: rank, runLength
//
// The run-length body is what makes repeated decompression costly enough for
// the CachedGBWT to matter, mirroring the GBZ/GBWT byte layout.

// encodeRecord serialises a decoded record.
func encodeRecord(rec *DecodedRecord) []byte {
	buf := make([]byte, 0, 16+len(rec.Edges)*4+len(rec.Ranks))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Edges)))
	prev := uint64(0)
	for i, e := range rec.Edges {
		to := uint64(e.To)
		if i == 0 {
			buf = binary.AppendUvarint(buf, to)
		} else {
			buf = binary.AppendUvarint(buf, to-prev)
		}
		prev = to
		buf = binary.AppendUvarint(buf, uint64(e.Offset))
	}
	buf = binary.AppendUvarint(buf, uint64(len(rec.Ranks)))
	for i := 0; i < len(rec.Ranks); {
		j := i + 1
		for j < len(rec.Ranks) && rec.Ranks[j] == rec.Ranks[i] {
			j++
		}
		buf = binary.AppendUvarint(buf, uint64(rec.Ranks[i]))
		buf = binary.AppendUvarint(buf, uint64(j-i))
		i = j
	}
	return buf
}

// errTruncated reports a record that ends mid-field.
var errTruncated = errors.New("gbwt: truncated record")

// decodeRecord parses the wire format back into a DecodedRecord.
func decodeRecord(buf []byte) (*DecodedRecord, error) {
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, errTruncated
		}
		pos += n
		return v, nil
	}
	nEdges, err := next()
	if err != nil {
		return nil, err
	}
	if nEdges > maxEdges+1 {
		return nil, fmt.Errorf("gbwt: record claims %d edges", nEdges) //vetgiraffe:ignore hotpath corrupt-input error path, never taken on valid indexes
	}
	rec := &DecodedRecord{Edges: make([]Edge, nEdges)}
	prev := uint64(0)
	for i := range rec.Edges {
		d, err := next()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		off, err := next()
		if err != nil {
			return nil, err
		}
		rec.Edges[i] = Edge{To: NodeID(prev), Offset: int32(off)}
	}
	nVisits, err := next()
	if err != nil {
		return nil, err
	}
	rec.Ranks = make([]byte, 0, nVisits)
	for uint64(len(rec.Ranks)) < nVisits {
		rank, err := next()
		if err != nil {
			return nil, err
		}
		runLen, err := next()
		if err != nil {
			return nil, err
		}
		if rank >= nEdges || runLen == 0 || uint64(len(rec.Ranks))+runLen > nVisits {
			return nil, fmt.Errorf("gbwt: bad run (rank %d, len %d) in record", rank, runLen) //vetgiraffe:ignore hotpath corrupt-input error path, never taken on valid indexes
		}
		for k := uint64(0); k < runLen; k++ {
			rec.Ranks = append(rec.Ranks, byte(rank))
		}
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("gbwt: %d trailing bytes in record", len(buf)-pos) //vetgiraffe:ignore hotpath corrupt-input error path, never taken on valid indexes
	}
	return rec, nil
}

// CompressedSize returns the total compressed byte size of all records, the
// figure that stands in for the GBZ payload size.
func (g *GBWT) CompressedSize() int {
	n := 0
	for _, c := range g.comp {
		n += len(c)
	}
	return n
}
