package gbwt

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// epochPaths is a larger path set than the diamond fixture so the frequency
// ranking has something to discriminate: node 1 is on every path, the mid
// nodes split the haplotypes.
func epochPaths() [][]NodeID {
	paths := make([][]NodeID, 0, 16)
	for i := 0; i < 16; i++ {
		p := []NodeID{1}
		if i%2 == 0 {
			p = append(p, 2)
		} else {
			p = append(p, 3)
		}
		p = append(p, 4)
		if i%4 < 2 {
			p = append(p, 5)
		} else {
			p = append(p, 6)
		}
		p = append(p, 7, NodeID(8+i%5))
		paths = append(paths, p)
	}
	return paths
}

// allNodes lists every node id visited by epochPaths.
func allNodes() []NodeID {
	return []NodeID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
}

// TestEpochReaderEquivalence locks the correctness-by-construction claim:
// whichever layer answers (snapshot, overflow, or raw decode), the record
// contents are identical to a fresh GBWT decode — across several epochs and
// feedback states.
func TestEpochReaderEquivalence(t *testing.T) {
	g := mustGBWT(t, epochPaths())
	c := NewShared(g, EpochConfig{Capacity: 4, Workers: 2})
	for round := 0; round < 5; round++ {
		r := c.NewReader(round%2, 8)
		for _, v := range allNodes() {
			want := g.Record(v)
			got := r.Record(v)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d node %d: record mismatch", round, v)
			}
			// Snapshot hits serve a shared pointer; re-reading must return
			// the same contents.
			if again := r.Record(v); !reflect.DeepEqual(again, want) {
				t.Fatalf("round %d node %d: re-read mismatch", round, v)
			}
		}
		if !c.Publish() {
			t.Fatalf("round %d: publish refused", round)
		}
	}
	if got := c.Current().Epoch(); got != 5 {
		t.Errorf("epoch = %d, want 5", got)
	}
	if c.Resident() == 0 {
		t.Error("no residents after 5 epochs of feedback")
	}
	if c.Resident() > 4 {
		t.Errorf("resident %d exceeds capacity 4", c.Resident())
	}
}

// TestEpochReaderUnvisitedNode: nodes outside the GBWT return nil through
// every layer and never poison the snapshot.
func TestEpochReaderUnvisitedNode(t *testing.T) {
	g := mustGBWT(t, epochPaths())
	c := NewShared(g, EpochConfig{Capacity: 4})
	r := c.NewReader(0, 4)
	if rec := r.Record(999); rec != nil {
		t.Fatal("unvisited node returned a record")
	}
	c.Publish()
	for i, k := range c.Current().keys {
		if k == NodeID(999)+1 {
			t.Fatalf("unvisited node resident at slot %d", i)
		}
	}
}

// TestSharedCachePublishRanking: the builder keeps the hottest nodes when
// feedback exceeds capacity, and hit-less residents age out against fresh
// candidates.
func TestSharedCachePublishRanking(t *testing.T) {
	g := mustGBWT(t, epochPaths())
	c := NewShared(g, EpochConfig{Capacity: 2, Workers: 1})
	// Feedback: node 1 hottest, node 4 second, node 7 cold.
	for i := 0; i < 100; i++ {
		c.note(1)
	}
	for i := 0; i < 50; i++ {
		c.note(4)
	}
	c.note(7)
	if !c.Publish() {
		t.Fatal("publish refused")
	}
	snap := c.Current()
	if snap.Len() != 2 {
		t.Fatalf("resident %d, want capacity 2", snap.Len())
	}
	for _, v := range []NodeID{1, 4} {
		if rec, _ := snap.lookup(v); rec == nil {
			t.Errorf("hot node %d not resident", v)
		}
	}
	if rec, _ := snap.lookup(7); rec != nil {
		t.Error("cold node 7 resident over hotter candidates")
	}

	// Next epoch: node 1 keeps hitting through a reader, node 4 goes idle
	// while nodes 2 and 3 flood the feedback. Node 1 must survive.
	r := c.NewReader(0, 0)
	for i := 0; i < 100; i++ {
		r.Record(1)
	}
	for i := 0; i < 60; i++ {
		c.note(2)
		c.note(3)
	}
	if !c.Publish() {
		t.Fatal("second publish refused")
	}
	snap = c.Current()
	if rec, _ := snap.lookup(1); rec == nil {
		t.Error("hit-heavy resident 1 evicted by feedback flood")
	}
	if rec, _ := snap.lookup(4); rec != nil {
		t.Error("idle resident 4 survived over hotter candidates")
	}
}

// TestEpochReaderOverflowFeedback: a snapshot miss that decodes through the
// overflow layer feeds the sketch, so the next epoch adopts the node.
func TestEpochReaderOverflowFeedback(t *testing.T) {
	g := mustGBWT(t, epochPaths())
	c := NewShared(g, EpochConfig{Capacity: 8})
	r := c.NewReader(0, 4)
	r.Record(5)
	r.Record(5) // second access hits the private overflow: no new feedback
	st := r.Stats()
	if st.SharedHits != 0 || st.Hits != 1 || st.Misses != 1 || st.Accesses != 2 {
		t.Fatalf("pre-publish stats = %+v", st)
	}
	c.Publish()
	if rec, _ := c.Current().lookup(5); rec == nil {
		t.Fatal("missed node not adopted by next epoch")
	}
	r2 := c.NewReader(0, 4)
	r2.Record(5)
	st2 := r2.Stats()
	if st2.SharedHits != 1 || st2.Accesses != 1 || st2.Hits != 0 || st2.Misses != 0 {
		t.Fatalf("post-publish stats = %+v", st2)
	}
}

// TestEpochStatsInvariant: Hits+SharedHits+Misses == Accesses under a mixed
// access pattern, and the merged aggregate is order-independent however the
// per-worker stats arrive.
func TestEpochStatsInvariant(t *testing.T) {
	g := mustGBWT(t, epochPaths())
	c := NewShared(g, EpochConfig{Capacity: 4, Workers: 3})
	// Warm the snapshot.
	w := c.NewReader(0, 8)
	for _, v := range allNodes() {
		w.Record(v)
	}
	c.Publish()

	rng := rand.New(rand.NewSource(42))
	nodes := allNodes()
	parts := make([]CacheStats, 3)
	for i := range parts {
		r := c.NewReader(i, 2)
		for j := 0; j < 200; j++ {
			r.Record(nodes[rng.Intn(len(nodes))])
		}
		parts[i] = r.Stats()
		if got := parts[i].Hits + parts[i].SharedHits + parts[i].Misses; got != parts[i].Accesses {
			t.Fatalf("worker %d: hits %d + shared %d + misses %d != accesses %d",
				i, parts[i].Hits, parts[i].SharedHits, parts[i].Misses, parts[i].Accesses)
		}
		if parts[i].SharedHits == 0 {
			t.Fatalf("worker %d: no shared hits against a warm snapshot", i)
		}
	}
	perms := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}}
	var want CacheStats
	for _, i := range perms[0] {
		want.Add(parts[i])
	}
	for _, p := range perms[1:] {
		var got CacheStats
		for _, i := range p {
			got.Add(parts[i])
		}
		if got != want {
			t.Fatalf("order %v: merged stats %+v != %+v", p, got, want)
		}
	}
	if want.TotalHits() != want.Hits+want.SharedHits {
		t.Fatalf("TotalHits %d != %d + %d", want.TotalHits(), want.Hits, want.SharedHits)
	}
}

// TestSnapshotHitZeroAlloc asserts the lock-free snapshot hit path never
// allocates: the property the hotpath/escapebudget analyzers police
// statically, verified dynamically here.
func TestSnapshotHitZeroAlloc(t *testing.T) {
	g := mustGBWT(t, epochPaths())
	c := NewShared(g, EpochConfig{Capacity: 4})
	c.note(1)
	c.note(4)
	c.Publish()
	r := c.NewReader(0, 0) // no overflow layer: every access is snapshot-or-decode
	if rec, _ := r.snap.lookup(1); rec == nil {
		t.Fatal("node 1 not resident; cannot measure the hit path")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if r.Record(1) == nil {
			t.Fatal("hit path returned nil")
		}
		r.Record(4)
	})
	if allocs != 0 {
		t.Errorf("snapshot hit path allocates %.1f per run, want 0", allocs)
	}
}

// TestSharedBiCacheInterval: MaybePublish honours the batch interval and
// publishes both directions together.
func TestSharedBiCacheInterval(t *testing.T) {
	paths := epochPaths()
	fwd := mustGBWT(t, paths)
	bi, err := FromForward(fwd, paths)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSharedBi(bi, EpochConfig{Capacity: 4, Interval: 3})
	r := s.NewBiReader(0, 8)
	for _, v := range allNodes() {
		r.Fwd.(*EpochReader).Record(v)
		r.Rev.(*EpochReader).Record(v)
	}
	for tick := 1; tick <= 6; tick++ {
		_, published := s.MaybePublish()
		if want := tick%3 == 0; published != want {
			t.Fatalf("tick %d: published = %v, want %v", tick, published, want)
		}
	}
	if s.Publishes() != 2 {
		t.Fatalf("publishes = %d, want 2", s.Publishes())
	}
	if s.Fwd.Resident() == 0 || s.Rev.Resident() == 0 {
		t.Fatal("a direction has no residents after publication")
	}
}

// TestEpochRace is the publish/read stress test: readers hammer snapshot
// lookups (pinning fresh snapshots every "batch") while a builder
// republishes concurrently and every goroutine feeds the frequency sketch.
// Run under -race this exercises the immutability invariant — published
// tables are never written, the atomic.Pointer swap is the only handoff.
func TestEpochRace(t *testing.T) {
	g := mustGBWT(t, epochPaths())
	c := NewShared(g, EpochConfig{Capacity: 4, Workers: 4})
	want := make(map[NodeID]*DecodedRecord)
	for _, v := range allNodes() {
		want[v] = g.Record(v)
	}
	var stopFlag atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			nodes := allNodes()
			for !stopFlag.Load() {
				r := c.NewReader(worker, 2) // fresh batch: pin the live snapshot
				for j := 0; j < 64; j++ {
					v := nodes[rng.Intn(len(nodes))]
					if got := r.Record(v); !reflect.DeepEqual(got, want[v]) {
						select {
						case errs <- "record mismatch under concurrent publish":
						default:
						}
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.Publish()
		}
		stopFlag.Store(true)
	}()
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if c.Publishes() != 200 {
		t.Fatalf("publishes = %d, want 200", c.Publishes())
	}
}

// TestPublishExclusion: concurrent Publish calls are CAS-elected — exactly
// one wins per round, nobody blocks.
func TestPublishExclusion(t *testing.T) {
	g := mustGBWT(t, epochPaths())
	c := NewShared(g, EpochConfig{Capacity: 4})
	c.note(1)
	const callers = 8
	var published atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			if c.Publish() {
				published.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()
	if published.Load() < 1 {
		t.Fatal("no caller published")
	}
	if got := c.Publishes(); got != published.Load() {
		t.Fatalf("publish count %d != winners %d", got, published.Load())
	}
}
