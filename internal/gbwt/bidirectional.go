package gbwt

import (
	"errors"
)

// Bidirectional is a bidirectional GBWT: the forward index plus an index of
// the reversed paths, with synchronised search states — the structure
// Giraffe uses to extend seed matches in both directions while staying
// haplotype-consistent (the gapless extension of §IV-B walks left and right
// from every seed).
//
// The synchronisation follows the bidirectional-FM-index construction: a
// match M = m1..mk is tracked as a forward range (at mk, ordered within the
// match class by the predecessors of m1) and a reverse range (at m1 in the
// reversed index, ordered by the successors of mk). Extending on one side is
// one LF step in that side's index; the other side's range shrinks in place,
// with its new offset obtained by counting, in the stepped side's record,
// the occurrences of smaller-ordered edges inside the old range.
type Bidirectional struct {
	fwd *GBWT
	rev *GBWT
}

// BiState is a synchronised pair of search states. Fwd sits at the match's
// last node in the forward index; Rev sits at the match's first node in the
// reversed index. Both ranges always have the same size.
type BiState struct {
	Fwd, Rev SearchState
}

// Empty reports whether the state matches no haplotypes.
func (s BiState) Empty() bool { return s.Fwd.Empty() }

// Size returns the number of matching haplotype occurrences.
func (s BiState) Size() int { return s.Fwd.Size() }

// NewBidirectional builds both orientations from the same path set.
func NewBidirectional(paths [][]NodeID) (*Bidirectional, error) {
	fwd, err := New(paths)
	if err != nil {
		return nil, err
	}
	rev := make([][]NodeID, len(paths))
	for i, p := range paths {
		r := make([]NodeID, len(p))
		for j, v := range p {
			r[len(p)-1-j] = v
		}
		rev[i] = r
	}
	revIdx, err := New(rev)
	if err != nil {
		return nil, err
	}
	return &Bidirectional{fwd: fwd, rev: revIdx}, nil
}

// FromForward wraps an existing forward GBWT, rebuilding the reverse index
// from the given paths (which must be the ones fwd was built from).
func FromForward(fwd *GBWT, paths [][]NodeID) (*Bidirectional, error) {
	if fwd == nil {
		return nil, errors.New("gbwt: nil forward index")
	}
	rev := make([][]NodeID, len(paths))
	for i, p := range paths {
		r := make([]NodeID, len(p))
		for j, v := range p {
			r[len(p)-1-j] = v
		}
		rev[i] = r
	}
	revIdx, err := New(rev)
	if err != nil {
		return nil, err
	}
	return &Bidirectional{fwd: fwd, rev: revIdx}, nil
}

// Forward returns the forward index.
func (b *Bidirectional) Forward() *GBWT { return b.fwd }

// Reverse returns the reversed-path index.
func (b *Bidirectional) Reverse() *GBWT { return b.rev }

// BiFullState returns the state matching every visit of node v (the
// single-node match M = [v]).
func (b *Bidirectional) BiFullState(v NodeID) BiState {
	return BiState{Fwd: b.fwd.FullState(v), Rev: b.rev.FullState(v)}
}

// BiReader pairs per-direction record readers (e.g. two CachedGBWTs) so the
// extension kernel's cache behaviour covers both orientations.
type BiReader struct {
	Fwd, Rev Reader
}

// NewBiReader builds cached readers over both directions with the given
// initial capacity.
func (b *Bidirectional) NewBiReader(capacity int) BiReader {
	return BiReader{
		Fwd: NewCached(b.fwd, capacity),
		Rev: NewCached(b.rev, capacity),
	}
}

// smallerEdgeCount counts, within rec.Ranks[start:end), occurrences of edges
// ordered strictly before `to`.
//
//minigiraffe:hot
func smallerEdgeCount(rec *DecodedRecord, start, end int32, to NodeID) int32 {
	var n int32
	for _, v := range rec.Ranks[start:end] {
		if rec.Edges[v].To < to {
			n++
		}
	}
	return n
}

// ExtendRight extends the match with a following node: M ↦ M·to. The
// forward range takes an LF step; the reverse range shrinks in place, its
// offset advanced by the in-range occurrences of successors smaller than
// `to`.
//
//minigiraffe:hot
func ExtendRightWith(r BiReader, s BiState, to NodeID) BiState {
	if s.Empty() {
		return BiState{Fwd: SearchState{Node: to}, Rev: s.Rev}
	}
	rec := r.Fwd.Record(s.Fwd.Node)
	if rec == nil {
		return BiState{Fwd: SearchState{Node: to}, Rev: s.Rev}
	}
	newFwd := ExtendWith(r.Fwd, s.Fwd, to)
	if newFwd.Empty() {
		return BiState{Fwd: newFwd, Rev: SearchState{Node: s.Rev.Node}}
	}
	off := smallerEdgeCount(rec, s.Fwd.Start, s.Fwd.End, to)
	newRev := SearchState{
		Node:  s.Rev.Node,
		Start: s.Rev.Start + off,
	}
	newRev.End = newRev.Start + int32(newFwd.Size())
	return BiState{Fwd: newFwd, Rev: newRev}
}

// ExtendLeft extends the match with a preceding node: M ↦ u·M. The reverse
// range takes an LF step (u follows the first node in the reversed paths);
// the forward range shrinks in place by the count of in-range predecessors
// smaller than u.
//
//minigiraffe:hot
func ExtendLeftWith(r BiReader, s BiState, u NodeID) BiState {
	if s.Empty() {
		return BiState{Fwd: s.Fwd, Rev: SearchState{Node: u}}
	}
	rec := r.Rev.Record(s.Rev.Node)
	if rec == nil {
		return BiState{Fwd: s.Fwd, Rev: SearchState{Node: u}}
	}
	newRev := ExtendWith(r.Rev, s.Rev, u)
	if newRev.Empty() {
		return BiState{Fwd: SearchState{Node: s.Fwd.Node}, Rev: newRev}
	}
	off := smallerEdgeCount(rec, s.Rev.Start, s.Rev.End, u)
	newFwd := SearchState{
		Node:  s.Fwd.Node,
		Start: s.Fwd.Start + off,
	}
	newFwd.End = newFwd.Start + int32(newRev.Size())
	return BiState{Fwd: newFwd, Rev: newRev}
}

// ExtendRight extends through plain (uncached) readers.
func (b *Bidirectional) ExtendRight(s BiState, to NodeID) BiState {
	return ExtendRightWith(BiReader{Fwd: b.fwd, Rev: b.rev}, s, to)
}

// ExtendLeft extends through plain (uncached) readers.
func (b *Bidirectional) ExtendLeft(s BiState, u NodeID) BiState {
	return ExtendLeftWith(BiReader{Fwd: b.fwd, Rev: b.rev}, s, u)
}

// FindBi searches for the node path bidirectionally (seeding on the middle
// node and alternating directions) — primarily a consistency exerciser; its
// result must match the forward Find.
func (b *Bidirectional) FindBi(path []NodeID) BiState {
	if len(path) == 0 {
		return BiState{}
	}
	mid := len(path) / 2
	s := b.BiFullState(path[mid])
	// Alternate directions to exercise the synchronisation both ways.
	left, right := mid-1, mid+1
	for !s.Empty() && (left >= 0 || right < len(path)) {
		if right < len(path) {
			s = b.ExtendRight(s, path[right])
			right++
		}
		if !s.Empty() && left >= 0 {
			s = b.ExtendLeft(s, path[left])
			left--
		}
	}
	return s
}

// Predecessors returns the haplotype-consistent predecessors of the match's
// first node under the current state: the reverse-index successors with a
// non-empty left extension, ascending.
func (b *Bidirectional) PredecessorsWith(r BiReader, s BiState) []NodeID {
	rec := r.Rev.Record(s.Rev.Node)
	if rec == nil || s.Empty() {
		return nil
	}
	var out []NodeID
	for _, e := range rec.Edges {
		if e.To == Endmarker {
			continue
		}
		// Only report predecessors actually taken within the state's range.
		if rec.rankAt(rec.edgeRank(e.To), s.Rev.End)-rec.rankAt(rec.edgeRank(e.To), s.Rev.Start) > 0 {
			out = append(out, e.To)
		}
	}
	return out
}
