package gbwt_test

import (
	"fmt"

	"repro/internal/gbwt"
)

// Example_haplotypeSearch indexes four haplotypes over a diamond-shaped
// graph and counts haplotype-consistent walks.
func Example_haplotypeSearch() {
	// Node ids sketch the graph 1 -> {2,3} -> 4 -> {5,6} -> 7.
	haplotypes := [][]gbwt.NodeID{
		{1, 2, 4, 5, 7},
		{1, 3, 4, 5, 7},
		{1, 2, 4, 6, 7},
		{1, 2, 4, 5, 7},
	}
	index, err := gbwt.New(haplotypes)
	if err != nil {
		panic(err)
	}
	fmt.Println("haplotypes through 2→4:", index.Find([]gbwt.NodeID{2, 4}).Size())
	fmt.Println("haplotypes through 2→4→5:", index.Find([]gbwt.NodeID{2, 4, 5}).Size())
	fmt.Println("haplotypes through 3→4→6:", index.Find([]gbwt.NodeID{3, 4, 6}).Size())
	fmt.Println("paths of 2→4→5:", index.LocatePaths(index.Find([]gbwt.NodeID{2, 4, 5})))
	// Output:
	// haplotypes through 2→4: 3
	// haplotypes through 2→4→5: 2
	// haplotypes through 3→4→6: 0
	// paths of 2→4→5: [0 3]
}

// Example_bidirectional extends a match in both directions while staying
// haplotype-consistent — the search mode Giraffe's extender uses.
func Example_bidirectional() {
	haplotypes := [][]gbwt.NodeID{
		{1, 2, 4, 5, 7},
		{1, 3, 4, 5, 7},
		{1, 2, 4, 6, 7},
	}
	bi, err := gbwt.NewBidirectional(haplotypes)
	if err != nil {
		panic(err)
	}
	// Anchor on node 4, then grow the match outwards.
	state := bi.BiFullState(4)
	fmt.Println("anchor [4]:", state.Size())
	state = bi.ExtendLeft(state, 2)
	fmt.Println("after left 2:", state.Size())
	state = bi.ExtendRight(state, 5)
	fmt.Println("after right 5:", state.Size())
	state = bi.ExtendLeft(state, 1)
	fmt.Println("after left 1:", state.Size())
	// Output:
	// anchor [4]: 3
	// after left 2: 2
	// after right 5: 1
	// after left 1: 1
}

// ExampleCachedGBWT shows the decompressed-record cache whose initial
// capacity is the paper's key tuning parameter.
func ExampleCachedGBWT() {
	haplotypes := [][]gbwt.NodeID{{1, 2, 3}, {1, 2, 3}}
	index, err := gbwt.New(haplotypes)
	if err != nil {
		panic(err)
	}
	cache := gbwt.NewCached(index, 64)
	cache.Find([]gbwt.NodeID{1, 2, 3})
	cache.Find([]gbwt.NodeID{1, 2, 3}) // second pass hits the cache
	stats := cache.Stats()
	fmt.Println("accesses:", stats.Accesses, "misses:", stats.Misses)
	// Output:
	// accesses: 4 misses: 2
}
