package gbwt

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSnapshotHitZeroAllocUnderProfiling re-runs the snapshot hit-path
// allocation guard with the continuous profiler capturing and pprof labels
// applied — the configuration every production run now uses. Labels are set
// at sub-batch granularity, so turning profiling on must not add a single
// allocation to the per-record path.
func TestSnapshotHitZeroAllocUnderProfiling(t *testing.T) {
	rec, err := obs.StartProfiles(t.TempDir(), time.Hour)
	if err != nil {
		t.Skipf("CPU profiler unavailable (another capture active?): %v", err)
	}
	defer func() {
		if err := rec.Stop(); err != nil {
			t.Errorf("stopping profiler: %v", err)
		}
	}()

	g := mustGBWT(t, epochPaths())
	c := NewShared(g, EpochConfig{Capacity: 4})
	c.note(1)
	c.note(4)
	c.Publish()
	r := c.NewReader(0, 0)
	if rec, _ := r.snap.lookup(1); rec == nil {
		t.Fatal("node 1 not resident; cannot measure the hit path")
	}

	labels := obs.NewProfLabels(obs.ClassBatch, 1)
	labels.ApplyMap(0)
	defer labels.Clear()

	allocs := testing.AllocsPerRun(200, func() {
		if r.Record(1) == nil {
			t.Fatal("hit path returned nil")
		}
		r.Record(4)
	})
	if allocs != 0 {
		t.Errorf("snapshot hit path allocates %.1f per run with profiling on, want 0", allocs)
	}
}
