package align

import (
	"math/rand"
	"testing"

	"repro/internal/dna"
)

func randSeq(n int, seed int64) dna.Sequence {
	rng := rand.New(rand.NewSource(seed))
	s := make(dna.Sequence, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(4))
	}
	return s
}

func TestGlobalIdentical(t *testing.T) {
	s := dna.MustParse("ACGTACGTAC")
	r := Global(s, s, DefaultParams())
	if r.Score != int32(len(s)) {
		t.Errorf("score = %d, want %d", r.Score, len(s))
	}
	if r.Mismatches != 0 || r.Gaps != 0 || r.Matches != len(s) {
		t.Errorf("counts: %d/%d/%d", r.Matches, r.Mismatches, r.Gaps)
	}
	if r.CIGARString() != "10M" {
		t.Errorf("CIGAR = %s", r.CIGARString())
	}
}

func TestGlobalSingleMismatch(t *testing.T) {
	a := dna.MustParse("ACGTACGTAC")
	b := a.Clone()
	b[4] = (b[4] + 1) & 3
	r := Global(a, b, DefaultParams())
	if r.Score != 9-4 {
		t.Errorf("score = %d, want 5", r.Score)
	}
	if r.Mismatches != 1 {
		t.Errorf("mismatches = %d", r.Mismatches)
	}
	if r.CIGARString() != "10M" {
		t.Errorf("CIGAR = %s", r.CIGARString())
	}
}

func TestGlobalSingleInsertion(t *testing.T) {
	ref := dna.MustParse("ACGTACGTACGTACGT")
	read := append(append(ref[:8].Clone(), dna.T), ref[8:]...)
	r := Global(read, ref, DefaultParams())
	// 16 matches + one inserted base: 16*1 - 6.
	if r.Score != 10 {
		t.Errorf("score = %d, want 10", r.Score)
	}
	if r.Gaps != 1 {
		t.Errorf("gaps = %d", r.Gaps)
	}
	// CIGAR must contain exactly one 1I.
	found := false
	for _, op := range r.CIGAR {
		if op.Kind == OpInsert {
			if op.Len != 1 || found {
				t.Fatalf("bad insert ops: %s", r.CIGARString())
			}
			found = true
		}
	}
	if !found {
		t.Errorf("no insertion in CIGAR %s", r.CIGARString())
	}
}

func TestGlobalDeletion(t *testing.T) {
	ref := dna.MustParse("ACGTACGTACGTACGT")
	read := append(ref[:6].Clone(), ref[9:]...) // 3-base deletion
	r := Global(read, ref, DefaultParams())
	// 13 matches - (6 + 1 + 1) affine for a 3-gap.
	if r.Score != 13-8 {
		t.Errorf("score = %d, want 5", r.Score)
	}
	wantGaps := 3
	if r.Gaps != wantGaps {
		t.Errorf("gaps = %d, want %d", r.Gaps, wantGaps)
	}
}

func TestGlobalEmpty(t *testing.T) {
	r := Global(nil, nil, DefaultParams())
	if r.Score != 0 || len(r.CIGAR) != 0 {
		t.Errorf("empty alignment: %+v", r)
	}
	if r.CIGARString() != "*" {
		t.Errorf("CIGAR = %s", r.CIGARString())
	}
	// One side empty: pure gap.
	ref := dna.MustParse("ACGT")
	r = Global(nil, ref, DefaultParams())
	if r.Score != -6-3*1 {
		t.Errorf("all-delete score = %d, want -9", r.Score)
	}
	if r.CIGARString() != "4D" {
		t.Errorf("CIGAR = %s", r.CIGARString())
	}
}

// naiveGlobal is an unbanded affine-gap reference implementation.
func naiveGlobal(read, ref dna.Sequence, p Params) int32 {
	n, m := len(read), len(ref)
	M := make([][]int32, m+1)
	X := make([][]int32, m+1)
	Y := make([][]int32, m+1)
	for j := range M {
		M[j] = make([]int32, n+1)
		X[j] = make([]int32, n+1)
		Y[j] = make([]int32, n+1)
		for i := range M[j] {
			M[j][i], X[j][i], Y[j][i] = negInf, negInf, negInf
		}
	}
	M[0][0] = 0
	for i := 1; i <= n; i++ {
		Y[0][i] = p.GapOpen + p.GapExtend*int32(i-1)
	}
	for j := 1; j <= m; j++ {
		X[j][0] = p.GapOpen + p.GapExtend*int32(j-1)
	}
	max3 := func(a, b, c int32) int32 {
		if b > a {
			a = b
		}
		if c > a {
			a = c
		}
		return a
	}
	for j := 1; j <= m; j++ {
		for i := 1; i <= n; i++ {
			sub := p.Mismatch
			if read[i-1] == ref[j-1] {
				sub = p.Match
			}
			if d := max3(M[j-1][i-1], X[j-1][i-1], Y[j-1][i-1]); d > negInf {
				M[j][i] = d + sub
			}
			xo, xe := M[j-1][i]+p.GapOpen, X[j-1][i]+p.GapExtend
			if M[j-1][i] == negInf {
				xo = negInf
			}
			if X[j-1][i] == negInf {
				xe = negInf
			}
			if xo > xe {
				X[j][i] = xo
			} else {
				X[j][i] = xe
			}
			yo, ye := M[j][i-1]+p.GapOpen, Y[j][i-1]+p.GapExtend
			if M[j][i-1] == negInf {
				yo = negInf
			}
			if Y[j][i-1] == negInf {
				ye = negInf
			}
			if yo > ye {
				Y[j][i] = yo
			} else {
				Y[j][i] = ye
			}
		}
	}
	return max3(M[m][n], X[m][n], Y[m][n])
}

func TestGlobalMatchesNaive(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		ref := randSeq(30+rng.Intn(40), int64(trial))
		// Derive the read by mutating the ref: substitutions + indels.
		read := ref.Clone()
		for k := 0; k < rng.Intn(4); k++ {
			p := rng.Intn(len(read))
			read[p] = (read[p] + 1) & 3
		}
		if rng.Intn(2) == 0 && len(read) > 12 {
			cut := 1 + rng.Intn(3)
			at := rng.Intn(len(read) - cut)
			read = append(read[:at].Clone(), read[at+cut:]...)
		}
		got := Global(read, ref, p)
		want := naiveGlobal(read, ref, p)
		if got.Score != want {
			t.Fatalf("trial %d: banded %d != naive %d", trial, got.Score, want)
		}
		// CIGAR consistency: consumed lengths match inputs, column counts
		// match the tallies.
		ri, fj := 0, 0
		for _, op := range got.CIGAR {
			switch op.Kind {
			case OpMatch:
				ri += op.Len
				fj += op.Len
			case OpInsert:
				ri += op.Len
			case OpDelete:
				fj += op.Len
			}
		}
		if ri != len(read) || fj != len(ref) {
			t.Fatalf("trial %d: CIGAR consumes %d/%d of %d/%d", trial, ri, fj, len(read), len(ref))
		}
		if got.Matches+got.Mismatches+got.Gaps != ri+fj-got.Matches-got.Mismatches {
			// columns consume 2 bases; gaps 1: total bases = 2*(cols) + gaps
			t.Fatalf("trial %d: inconsistent tallies", trial)
		}
	}
}

func TestBandTooNarrowStillTerminates(t *testing.T) {
	// A read much longer than the ref forces the band to widen to the
	// length difference.
	ref := dna.MustParse("ACGT")
	read := randSeq(60, 9)
	r := Global(read, ref, Params{Match: 1, Mismatch: -4, GapOpen: -6, GapExtend: -1, Band: 2})
	if r.Score <= negInf {
		t.Error("alignment unreachable despite widened band")
	}
}

func BenchmarkGlobal150(b *testing.B) {
	ref := randSeq(150, 1)
	read := ref.Clone()
	read[40] = (read[40] + 1) & 3
	read = append(read[:100].Clone(), read[101:]...)
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Global(read, ref, p)
	}
}
