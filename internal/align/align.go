// Package align implements banded gapped alignment, the refinement phase
// that follows gapless extension in Giraffe's pipeline (§IV-B: "the
// application then continues to the alignment phase, which generates the
// mapping output"): read tails that the seed-and-extend kernel could not
// cover gaplessly are aligned against the haplotype sequence with
// affine-gap dynamic programming, recovering alignments that span small
// insertions and deletions.
package align

import (
	"fmt"

	"repro/internal/dna"
)

// Params are affine-gap alignment scores. Giraffe's defaults (from its
// scoring model): match +1, mismatch -4, gap open -6, gap extend -1.
type Params struct {
	Match     int32
	Mismatch  int32 // penalty, negative
	GapOpen   int32 // penalty for the first gapped base, negative
	GapExtend int32 // penalty per additional gapped base, negative
	// Band limits |i-j| in the DP to keep cost linear; ≤0 means max(16,
	// length difference + 8).
	Band int
}

// DefaultParams returns Giraffe's scoring defaults.
func DefaultParams() Params {
	return Params{Match: 1, Mismatch: -4, GapOpen: -6, GapExtend: -1}
}

// OpKind is a CIGAR operation kind.
type OpKind byte

// CIGAR operation kinds.
const (
	OpMatch  OpKind = 'M' // match or mismatch (alignment column)
	OpInsert OpKind = 'I' // base present in the read, absent in the ref
	OpDelete OpKind = 'D' // base present in the ref, absent in the read
)

// Op is one run-length CIGAR operation.
type Op struct {
	Kind OpKind
	Len  int
}

// Result is a completed global alignment of a read segment against a
// reference segment.
type Result struct {
	Score int32
	CIGAR []Op
	// Matches and Mismatches count alignment columns; Gaps counts gapped
	// bases (I+D total).
	Matches, Mismatches, Gaps int
}

// CIGARString renders the standard compact form, e.g. "87M1I60M".
func (r *Result) CIGARString() string {
	var out []byte
	for _, op := range r.CIGAR {
		out = append(out, []byte(fmt.Sprintf("%d%c", op.Len, op.Kind))...)
	}
	if len(out) == 0 {
		return "*"
	}
	return string(out)
}

const negInf = int32(-1 << 29)

// Global computes a banded global affine-gap alignment of read against ref.
// Both sequences must be non-empty unless both are empty (score 0).
func Global(read, ref dna.Sequence, p Params) Result {
	n, m := len(read), len(ref)
	if n == 0 && m == 0 {
		return Result{}
	}
	band := p.Band
	diff := n - m
	if diff < 0 {
		diff = -diff
	}
	if band <= 0 {
		band = diff + 8
		if band < 16 {
			band = 16
		}
	}
	if band < diff {
		band = diff // a narrower band cannot reach the corner
	}
	// Affine DP with three matrices (M: in-column, X: gap-in-read (delete),
	// Y: gap-in-ref (insert)), band-restricted. Rows are read positions.
	width := 2*band + 1
	idx := func(j, i int) int { return j*width + (i - (j - band)) }
	inBand := func(j, i int) bool { return i >= j-band && i <= j+band && i >= 0 && i <= n }
	size := (m + 1) * width
	M := make([]int32, size)
	X := make([]int32, size)
	Y := make([]int32, size)
	// ptr packs the traceback: 2 bits per matrix cell.
	type bt struct{ m, x, y uint8 }
	ptr := make([]bt, size)
	for i := range M {
		M[i], X[i], Y[i] = negInf, negInf, negInf
	}
	// Initialise (0,0) and the first row/column inside the band.
	M[idx(0, 0)] = 0
	for i := 1; inBand(0, i); i++ { // read-only prefix: insertions
		Y[idx(0, i)] = p.GapOpen + p.GapExtend*int32(i-1)
		ptr[idx(0, i)].y = 2 // extend
	}
	for j := 1; j <= m; j++ {
		if inBand(j, 0) {
			X[idx(j, 0)] = p.GapOpen + p.GapExtend*int32(j-1)
			ptr[idx(j, 0)].x = 2
		}
		lo := j - band
		if lo < 1 {
			lo = 1
		}
		hi := j + band
		if hi > n {
			hi = n
		}
		for i := lo; i <= hi; i++ {
			cur := idx(j, i)
			// M: diagonal step consuming read[i-1] vs ref[j-1].
			if inBand(j-1, i-1) {
				prev := idx(j-1, i-1)
				best := M[prev]
				from := uint8(0)
				if X[prev] > best {
					best, from = X[prev], 1
				}
				if Y[prev] > best {
					best, from = Y[prev], 2
				}
				if best > negInf {
					sub := p.Mismatch
					if read[i-1] == ref[j-1] {
						sub = p.Match
					}
					M[cur] = best + sub
					ptr[cur].m = from
				}
			}
			// X (delete): consume ref[j-1] only.
			if inBand(j-1, i) {
				prev := idx(j-1, i)
				open := M[prev] + p.GapOpen
				ext := X[prev] + p.GapExtend
				if open >= ext {
					if M[prev] > negInf {
						X[cur] = open
						ptr[cur].x = 0
					}
				} else if X[prev] > negInf {
					X[cur] = ext
					ptr[cur].x = 2
				}
			}
			// Y (insert): consume read[i-1] only.
			if inBand(j, i-1) {
				prev := idx(j, i-1)
				open := M[prev] + p.GapOpen
				ext := Y[prev] + p.GapExtend
				if open >= ext {
					if M[prev] > negInf {
						Y[cur] = open
						ptr[cur].y = 0
					}
				} else if Y[prev] > negInf {
					Y[cur] = ext
					ptr[cur].y = 2
				}
			}
		}
	}
	// Terminal cell.
	end := idx(m, n)
	if !inBand(m, n) {
		return Result{Score: negInf}
	}
	state := 0 // 0=M 1=X 2=Y
	score := M[end]
	if X[end] > score {
		score, state = X[end], 1
	}
	if Y[end] > score {
		score, state = Y[end], 2
	}
	res := Result{Score: score}
	if score <= negInf {
		return res
	}
	// Traceback.
	var ops []Op
	push := func(k OpKind) {
		if len(ops) > 0 && ops[len(ops)-1].Kind == k {
			ops[len(ops)-1].Len++
			return
		}
		ops = append(ops, Op{Kind: k, Len: 1})
	}
	i, j := n, m
	for i > 0 || j > 0 {
		cur := idx(j, i)
		switch state {
		case 0: // M consumed both
			push(OpMatch)
			if read[i-1] == ref[j-1] {
				res.Matches++
			} else {
				res.Mismatches++
			}
			state = int(ptr[cur].m)
			i--
			j--
		case 1: // X consumed ref
			push(OpDelete)
			res.Gaps++
			if ptr[cur].x == 0 {
				state = 0
			}
			j--
		case 2: // Y consumed read
			push(OpInsert)
			res.Gaps++
			if ptr[cur].y == 0 {
				state = 0
			}
			i--
		}
	}
	// ops were collected end-to-start; reverse.
	for a, b := 0, len(ops)-1; a < b; a, b = a+1, b-1 {
		ops[a], ops[b] = ops[b], ops[a]
	}
	res.CIGAR = ops
	return res
}
