package gaf

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/giraffe"
	"repro/internal/vgraph"
	"repro/internal/workload"
)

func mapFixture(t *testing.T) (*workload.Bundle, *giraffe.Result) {
	t.Helper()
	b, err := workload.Generate(workload.AHuman().Scaled(0.03))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := giraffe.BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	res, err := giraffe.Map(ix, b.Reads, giraffe.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return b, res
}

func TestWriteParseRoundTrip(t *testing.T) {
	b, res := mapFixture(t)
	lens := make([]int, len(b.Reads))
	for i := range b.Reads {
		lens[i] = b.Reads[i].Len()
	}
	var buf bytes.Buffer
	if err := Write(&buf, b.Pangenome.Graph, res.Alignments, lens); err != nil {
		t.Fatal(err)
	}
	recs, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mapped := 0
	for _, al := range res.Alignments {
		if al.Mapped {
			mapped++
		}
	}
	if len(recs) != mapped {
		t.Fatalf("%d GAF records for %d mapped reads", len(recs), mapped)
	}
	// Verify field consistency on every record.
	j := 0
	for i, al := range res.Alignments {
		if !al.Mapped {
			continue
		}
		rec := recs[j]
		j++
		if rec.QueryName != al.ReadName {
			t.Fatalf("record %d name %q != %q", j, rec.QueryName, al.ReadName)
		}
		if rec.QueryLen != b.Reads[i].Len() {
			t.Fatalf("record %d query length %d", j, rec.QueryLen)
		}
		if rec.Matches+rec.Mismatches != rec.BlockLen {
			t.Fatalf("record %d: matches %d + NM %d != block %d", j, rec.Matches, rec.Mismatches, rec.BlockLen)
		}
		if rec.Identity() <= 0.9 {
			t.Fatalf("record %d identity %.3f suspiciously low", j, rec.Identity())
		}
		if !reflect.DeepEqual(rec.Path, al.Best.Path) {
			t.Fatalf("record %d path mismatch", j)
		}
		if got := rec.ExtensionOf(); got.ReadStart != al.Best.ReadStart || got.Rev != al.Best.Rev {
			t.Fatalf("record %d ExtensionOf mismatch", j)
		}
	}
}

func TestWriteLengthMismatch(t *testing.T) {
	_, res := mapFixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, nil, res.Alignments, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"too few fields", "q\t10\t0\t10\t+\t>1\t10\t0\t10\t10\t10\n"},
		{"bad int", "q\tX\t0\t10\t+\t>1\t10\t0\t10\t10\t10\t60\n"},
		{"bad strand", "q\t10\t0\t10\t?\t>1\t10\t0\t10\t10\t10\t60\n"},
		{"bad path", "q\t10\t0\t10\t+\t1>2\t10\t0\t10\t10\t10\t60\n"},
		{"reverse traversal", "q\t10\t0\t10\t+\t<1\t10\t0\t10\t10\t10\t60\n"},
		{"empty node id", "q\t10\t0\t10\t+\t>\t10\t0\t10\t10\t10\t60\n"},
		{"bad NM", "q\t10\t0\t10\t+\t>1\t10\t0\t10\t10\t10\t60\tNM:i:x\n"},
	}
	for _, tc := range cases {
		if _, err := Parse(strings.NewReader(tc.line)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestParseSkipsEmptyLines(t *testing.T) {
	data := "\nq\t10\t0\t10\t+\t>1>2\t12\t0\t10\t9\t10\t60\tNM:i:1\n\n"
	recs, err := Parse(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Mismatches != 1 || len(recs[0].Path) != 2 {
		t.Errorf("parsed record wrong: %+v", recs[0])
	}
}

func TestIdentityZeroBlock(t *testing.T) {
	r := Record{}
	if r.Identity() != 0 {
		t.Error("zero block identity != 0")
	}
}

func TestFromAlignmentUnmapped(t *testing.T) {
	al := giraffe.Alignment{ReadName: "u"}
	if _, ok := FromAlignment(nil, &al, 100); ok {
		t.Error("unmapped alignment produced a record")
	}
}

func TestScoreTagRoundTrip(t *testing.T) {
	rec := Record{
		QueryName: "q", QueryLen: 10, QueryEnd: 10, Strand: '+',
		Path: []vgraph.NodeID{1}, PathLen: 12, PathEnd: 10,
		Matches: 9, BlockLen: 10, MapQ: 60, Mismatches: 1, Score: 14,
	}
	var buf bytes.Buffer
	if err := WriteRecord(&buf, &rec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AS:i:14") {
		t.Fatalf("no AS tag in %q", buf.String())
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Score != 14 {
		t.Errorf("Score = %d", got[0].Score)
	}
	if _, err := Parse(strings.NewReader("q\t10\t0\t10\t+\t>1\t10\t0\t10\t10\t10\t60\tAS:i:x\n")); err == nil {
		t.Error("bad AS tag accepted")
	}
}
