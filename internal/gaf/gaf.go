// Package gaf reads and writes the Graph Alignment Format, the standard
// output of vg Giraffe's alignment phase (§IV-B: "the alignment phase ...
// generates the mapping output"). GAF is TSV with twelve mandatory columns —
// query name/length/start/end, strand, the graph path (">1>2>5" style), path
// length and interval, residue matches, block length, mapping quality —
// followed by optional typed tags; this package emits the NM (mismatch
// count) and AS (alignment score) tags.
package gaf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/extend"
	"repro/internal/giraffe"
	"repro/internal/vgraph"
)

// Record is one GAF line.
type Record struct {
	QueryName  string
	QueryLen   int
	QueryStart int
	QueryEnd   int
	Strand     byte // '+' or '-'
	Path       []vgraph.NodeID
	PathLen    int
	PathStart  int
	PathEnd    int
	Matches    int
	BlockLen   int
	MapQ       int
	Mismatches int   // NM tag
	Score      int32 // AS tag: the alignment-phase (refined) score
}

// FromAlignment converts a mapped alignment into a GAF record; g resolves
// node lengths for the path columns. Returns false for unmapped alignments.
func FromAlignment(g *vgraph.Graph, al *giraffe.Alignment, queryLen int) (Record, bool) {
	if !al.Mapped {
		return Record{}, false
	}
	e := &al.Best
	rec := Record{
		QueryName:  al.ReadName,
		QueryLen:   queryLen,
		QueryStart: int(e.ReadStart),
		QueryEnd:   int(e.ReadEnd),
		Strand:     '+',
		Path:       e.Path,
		MapQ:       al.MappingQuality,
		Mismatches: len(e.Mismatches),
		BlockLen:   int(e.Len()),
		Matches:    int(e.Len()) - len(e.Mismatches),
		Score:      al.RefinedScore,
	}
	if e.Rev {
		rec.Strand = '-'
	}
	for _, id := range e.Path {
		rec.PathLen += g.SeqLen(id)
	}
	rec.PathStart = int(e.StartPos.Off)
	rec.PathEnd = rec.PathStart + int(e.Len())
	return rec, true
}

// WriteRecord emits one GAF line.
func WriteRecord(w io.Writer, r *Record) error {
	var path strings.Builder
	for _, id := range r.Path {
		// All nodes are traversed forward in this reproduction's graphs.
		fmt.Fprintf(&path, ">%d", id)
	}
	_, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%c\t%s\t%d\t%d\t%d\t%d\t%d\t%d\tNM:i:%d\tAS:i:%d\n",
		r.QueryName, r.QueryLen, r.QueryStart, r.QueryEnd, r.Strand,
		path.String(), r.PathLen, r.PathStart, r.PathEnd,
		r.Matches, r.BlockLen, r.MapQ, r.Mismatches, r.Score)
	return err
}

// Write emits GAF records for every mapped alignment of a result. reads
// supplies query lengths, index-aligned with the alignments.
func Write(w io.Writer, g *vgraph.Graph, alignments []giraffe.Alignment, queryLens []int) error {
	if len(alignments) != len(queryLens) {
		return fmt.Errorf("gaf: %d alignments but %d query lengths", len(alignments), len(queryLens))
	}
	bw := bufio.NewWriter(w)
	for i := range alignments {
		rec, ok := FromAlignment(g, &alignments[i], queryLens[i])
		if !ok {
			continue
		}
		if err := WriteRecord(bw, &rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads GAF records back (mandatory columns plus the NM tag).
func Parse(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 12 {
			return nil, fmt.Errorf("gaf: line %d has %d fields, need 12", lineNo, len(fields))
		}
		var rec Record
		rec.QueryName = fields[0]
		ints := []*int{
			&rec.QueryLen, &rec.QueryStart, &rec.QueryEnd,
		}
		for i, dst := range ints {
			v, err := strconv.Atoi(fields[1+i])
			if err != nil {
				return nil, fmt.Errorf("gaf: line %d field %d: %w", lineNo, 2+i, err)
			}
			*dst = v
		}
		if fields[4] != "+" && fields[4] != "-" {
			return nil, fmt.Errorf("gaf: line %d: bad strand %q", lineNo, fields[4])
		}
		rec.Strand = fields[4][0]
		path, err := parsePath(fields[5])
		if err != nil {
			return nil, fmt.Errorf("gaf: line %d: %w", lineNo, err)
		}
		rec.Path = path
		tail := []*int{&rec.PathLen, &rec.PathStart, &rec.PathEnd, &rec.Matches, &rec.BlockLen, &rec.MapQ}
		for i, dst := range tail {
			v, err := strconv.Atoi(fields[6+i])
			if err != nil {
				return nil, fmt.Errorf("gaf: line %d field %d: %w", lineNo, 7+i, err)
			}
			*dst = v
		}
		for _, tag := range fields[12:] {
			switch {
			case strings.HasPrefix(tag, "NM:i:"):
				v, err := strconv.Atoi(tag[5:])
				if err != nil {
					return nil, fmt.Errorf("gaf: line %d: bad NM tag %q", lineNo, tag)
				}
				rec.Mismatches = v
			case strings.HasPrefix(tag, "AS:i:"):
				v, err := strconv.Atoi(tag[5:])
				if err != nil {
					return nil, fmt.Errorf("gaf: line %d: bad AS tag %q", lineNo, tag)
				}
				rec.Score = int32(v)
			}
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parsePath decodes a ">1>2>5"-style oriented path.
func parsePath(s string) ([]vgraph.NodeID, error) {
	if s == "" || s == "*" {
		return nil, nil
	}
	var out []vgraph.NodeID
	i := 0
	for i < len(s) {
		if s[i] != '>' && s[i] != '<' {
			return nil, fmt.Errorf("gaf: bad path segment at %q", s[i:])
		}
		if s[i] == '<' {
			return nil, fmt.Errorf("gaf: reverse traversals unsupported in this reproduction")
		}
		i++
		j := i
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == i {
			return nil, fmt.Errorf("gaf: empty node id in path %q", s)
		}
		v, err := strconv.ParseUint(s[i:j], 10, 32)
		if err != nil {
			return nil, err
		}
		out = append(out, vgraph.NodeID(v))
		i = j
	}
	return out, nil
}

// Identity returns matches/block-length, the standard GAF alignment
// identity.
func (r *Record) Identity() float64 {
	if r.BlockLen == 0 {
		return 0
	}
	return float64(r.Matches) / float64(r.BlockLen)
}

// ExtensionOf reconstructs the raw extension interval a record encodes
// (inverse of FromAlignment for the fields the kernel owns).
func (r *Record) ExtensionOf() extend.Extension {
	return extend.Extension{
		Path:      r.Path,
		ReadStart: int32(r.QueryStart),
		ReadEnd:   int32(r.QueryEnd),
		Rev:       r.Strand == '-',
	}
}
