package cluster

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/counters"
	"repro/internal/distindex"
	"repro/internal/dna"
	"repro/internal/seeds"
	"repro/internal/vgraph"
)

// linearGraph builds a chain of nodes of the given length.
func linearGraph(t *testing.T, total, nodeLen int) (*vgraph.Graph, []vgraph.NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := &vgraph.Graph{}
	var ids []vgraph.NodeID
	for i := 0; i < total; i += nodeLen {
		n := nodeLen
		if i+n > total {
			n = total - i
		}
		seq := make(dna.Sequence, n)
		for j := range seq {
			seq[j] = dna.Base(rng.Intn(4))
		}
		id, err := g.AddNode(seq)
		if err != nil {
			t.Fatal(err)
		}
		g.SetBackbone(id, int32(i))
		if len(ids) > 0 {
			if err := g.AddEdge(ids[len(ids)-1], id); err != nil {
				t.Fatal(err)
			}
		}
		ids = append(ids, id)
	}
	return g, ids
}

// seedAt makes a forward seed at linear coordinate c on a chain with the
// given node length.
func seedAt(ids []vgraph.NodeID, nodeLen, c int, score float32, readOff int32) seeds.Seed {
	return seeds.Seed{
		Pos:     vgraph.Position{Node: ids[c/nodeLen], Off: int32(c % nodeLen)},
		ReadOff: readOff,
		Score:   score,
	}
}

func TestClusterSeedsEmpty(t *testing.T) {
	g, _ := linearGraph(t, 100, 10)
	ix := distindex.New(g)
	if cs := ClusterSeeds(ix, nil, DefaultParams(), nil, 0); cs != nil {
		t.Errorf("clusters of no seeds = %v", cs)
	}
}

func TestClusterSeedsTwoGroups(t *testing.T) {
	g, ids := linearGraph(t, 2000, 10)
	ix := distindex.New(g)
	ss := []seeds.Seed{
		seedAt(ids, 10, 100, 2, 0),
		seedAt(ids, 10, 130, 2, 30),
		seedAt(ids, 10, 160, 2, 60),
		// far away: separate cluster
		seedAt(ids, 10, 1500, 3, 10),
		seedAt(ids, 10, 1520, 3, 40),
	}
	cs := ClusterSeeds(ix, ss, Params{DistanceLimit: 100, CheckWindow: 4}, nil, 0)
	if len(cs) != 2 {
		t.Fatalf("%d clusters, want 2", len(cs))
	}
	var sizes []int
	for _, c := range cs {
		sizes = append(sizes, len(c.SeedIdx))
	}
	sort.Ints(sizes)
	if !reflect.DeepEqual(sizes, []int{2, 3}) {
		t.Errorf("cluster sizes = %v, want [2 3]", sizes)
	}
}

func TestClusteringIsPartition(t *testing.T) {
	g, ids := linearGraph(t, 3000, 16)
	ix := distindex.New(g)
	rng := rand.New(rand.NewSource(7))
	var ss []seeds.Seed
	for i := 0; i < 60; i++ {
		ss = append(ss, seedAt(ids, 16, rng.Intn(2900), float32(1+rng.Float64()), int32(rng.Intn(100))))
	}
	cs := ClusterSeeds(ix, ss, DefaultParams(), nil, 0)
	seen := make([]bool, len(ss))
	for _, c := range cs {
		for _, i := range c.SeedIdx {
			if seen[i] {
				t.Fatalf("seed %d in two clusters", i)
			}
			seen[i] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("seed %d in no cluster", i)
		}
	}
}

func TestNearbySeedsShareCluster(t *testing.T) {
	g, ids := linearGraph(t, 1000, 10)
	ix := distindex.New(g)
	// Any two seeds within the limit must be in one cluster (direct check
	// window covers them).
	ss := []seeds.Seed{
		seedAt(ids, 10, 300, 1, 0),
		seedAt(ids, 10, 320, 1, 20),
	}
	cs := ClusterSeeds(ix, ss, Params{DistanceLimit: 50, CheckWindow: 4}, nil, 0)
	if len(cs) != 1 {
		t.Fatalf("%d clusters, want 1", len(cs))
	}
}

func TestOrientationSeparatesClusters(t *testing.T) {
	g, ids := linearGraph(t, 1000, 10)
	ix := distindex.New(g)
	fwd := seedAt(ids, 10, 300, 1, 0)
	rev := seedAt(ids, 10, 305, 1, 0)
	rev.Rev = true
	cs := ClusterSeeds(ix, []seeds.Seed{fwd, rev}, DefaultParams(), nil, 0)
	if len(cs) != 2 {
		t.Fatalf("%d clusters, want 2 (orientations must not merge)", len(cs))
	}
}

func TestPermutationInvariance(t *testing.T) {
	g, ids := linearGraph(t, 2000, 10)
	ix := distindex.New(g)
	rng := rand.New(rand.NewSource(3))
	var ss []seeds.Seed
	for i := 0; i < 30; i++ {
		ss = append(ss, seedAt(ids, 10, rng.Intn(1900), float32(1+rng.Float64()), int32(rng.Intn(90))))
	}
	canon := func(in []seeds.Seed) [][]vgraph.Position {
		cs := ClusterSeeds(ix, in, DefaultParams(), nil, 0)
		var out [][]vgraph.Position
		for _, c := range cs {
			var poss []vgraph.Position
			for _, i := range c.SeedIdx {
				poss = append(poss, in[i].Pos)
			}
			sort.Slice(poss, func(a, b int) bool {
				if poss[a].Node != poss[b].Node {
					return poss[a].Node < poss[b].Node
				}
				return poss[a].Off < poss[b].Off
			})
			out = append(out, poss)
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a][0].Node != out[b][0].Node {
				return out[a][0].Node < out[b][0].Node
			}
			return out[a][0].Off < out[b][0].Off
		})
		return out
	}
	want := canon(ss)
	for trial := 0; trial < 5; trial++ {
		shuffled := make([]seeds.Seed, len(ss))
		copy(shuffled, ss)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := canon(shuffled); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: clusters depend on seed order", trial)
		}
	}
}

func TestClusterScore(t *testing.T) {
	g, ids := linearGraph(t, 500, 10)
	ix := distindex.New(g)
	// Two seeds at the same read offset: only the best counts; a third at a
	// different offset adds its own score.
	ss := []seeds.Seed{
		seedAt(ids, 10, 100, 2.0, 0),
		seedAt(ids, 10, 104, 3.0, 0),
		seedAt(ids, 10, 110, 1.5, 25),
	}
	cs := ClusterSeeds(ix, ss, DefaultParams(), nil, 0)
	if len(cs) != 1 {
		t.Fatalf("%d clusters, want 1", len(cs))
	}
	if got, want := cs[0].Score, 4.5; got != want {
		t.Errorf("Score = %f, want %f", got, want)
	}
}

func TestClustersSortedByScore(t *testing.T) {
	g, ids := linearGraph(t, 3000, 10)
	ix := distindex.New(g)
	ss := []seeds.Seed{
		seedAt(ids, 10, 100, 1, 0),
		seedAt(ids, 10, 1000, 5, 0),
		seedAt(ids, 10, 2000, 3, 0),
	}
	cs := ClusterSeeds(ix, ss, Params{DistanceLimit: 50, CheckWindow: 4}, nil, 0)
	if len(cs) != 3 {
		t.Fatalf("%d clusters, want 3", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i].Score > cs[i-1].Score {
			t.Fatalf("clusters not score-sorted: %v", cs)
		}
	}
}

func TestProbeAccounting(t *testing.T) {
	g, ids := linearGraph(t, 1000, 10)
	ix := distindex.New(g)
	ss := []seeds.Seed{
		seedAt(ids, 10, 100, 1, 0),
		seedAt(ids, 10, 120, 1, 20),
	}
	h := counters.NewDefaultHierarchy()
	ClusterSeeds(ix, ss, DefaultParams(), h, 0)
	c := h.Snapshot(counters.DefaultCycleModel)
	if c.Instr == 0 {
		t.Error("probe recorded no instructions")
	}
	if c.L1DA == 0 {
		t.Error("probe recorded no accesses")
	}
}

// exactClusters computes the ground-truth partition: transitive closure of
// "graph distance ≤ limit" over all same-orientation seed pairs.
func exactClusters(ix *distindex.Index, ss []seeds.Seed, limit int) [][]int {
	uf := newUnionFind(len(ss))
	for i := 0; i < len(ss); i++ {
		for j := i + 1; j < len(ss); j++ {
			if ss[i].Rev != ss[j].Rev {
				continue
			}
			if ix.MinDistance(ss[i].Pos, ss[j].Pos, limit) != distindex.Unreachable {
				uf.union(i, j)
			}
		}
	}
	groups := map[int][]int{}
	for i := range ss {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	var out [][]int
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// TestWindowedClusteringMatchesExact cross-validates the windowed union-find
// against the all-pairs ground truth on random seed sets. On backbone-sorted
// seeds the window heuristic finds the same partition whenever cluster
// members are within the check window of a neighbour — which random
// cluster-scale seed sets satisfy.
func TestWindowedClusteringMatchesExact(t *testing.T) {
	g, ids := linearGraph(t, 4000, 16)
	ix := distindex.New(g)
	rng := rand.New(rand.NewSource(99))
	params := DefaultParams()
	for trial := 0; trial < 10; trial++ {
		var ss []seeds.Seed
		// A few dense clumps plus isolated seeds.
		for c := 0; c < 4; c++ {
			center := 200 + rng.Intn(3400)
			for k := 0; k < 3+rng.Intn(4); k++ {
				ss = append(ss, seedAt(ids, 16, center+rng.Intn(120), 1, int32(k*20)))
			}
		}
		for k := 0; k < 5; k++ {
			ss = append(ss, seedAt(ids, 16, rng.Intn(3900), 1, 0))
		}
		got := ClusterSeeds(ix, ss, params, nil, 0)
		var gotSets [][]int
		for _, c := range got {
			gotSets = append(gotSets, c.SeedIdx)
		}
		sort.Slice(gotSets, func(a, b int) bool { return gotSets[a][0] < gotSets[b][0] })
		want := exactClusters(ix, ss, params.DistanceLimit)
		if !reflect.DeepEqual(gotSets, want) {
			t.Fatalf("trial %d: windowed partition %v != exact %v", trial, gotSets, want)
		}
	}
}

func BenchmarkClusterSeeds(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := &vgraph.Graph{}
	var ids []vgraph.NodeID
	for i := 0; i < 6000; i += 16 {
		seq := make(dna.Sequence, 16)
		for j := range seq {
			seq[j] = dna.Base(rng.Intn(4))
		}
		id, _ := g.AddNode(seq)
		g.SetBackbone(id, int32(i))
		if len(ids) > 0 {
			if err := g.AddEdge(ids[len(ids)-1], id); err != nil {
				b.Fatal(err)
			}
		}
		ids = append(ids, id)
	}
	ix := distindex.New(g)
	// A realistic per-read seed set: one dense clump + scattered noise.
	var ss []seeds.Seed
	center := 2000
	for k := 0; k < 12; k++ {
		ss = append(ss, seedAt(ids, 16, center+k*10, float32(1+rng.Float64()), int32(k*12)))
	}
	for k := 0; k < 6; k++ {
		ss = append(ss, seedAt(ids, 16, rng.Intn(5900), 1, int32(rng.Intn(140))))
	}
	p := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClusterSeeds(ix, ss, p, nil, 0)
	}
}
