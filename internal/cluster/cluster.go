// Package cluster implements cluster_seeds, the second most expensive
// critical function in Giraffe's mapping pipeline (11.6%–21% of runtime in
// the paper's characterisation, §IV-A): it groups a read's seeds by minimum
// graph distance and scores each group so the extension stage can
// concentrate on the most promising regions of the pangenome.
package cluster

import (
	"cmp"
	"slices"

	"repro/internal/counters"
	"repro/internal/distindex"
	"repro/internal/seeds"
)

// Params tunes the clustering kernel.
type Params struct {
	// DistanceLimit is the maximum graph distance (bases) between two seeds
	// in the same cluster. Giraffe derives it from the read length; the
	// synthetic workloads default to 200.
	DistanceLimit int
	// CheckWindow bounds how many backbone-sorted neighbours each seed is
	// compared against; seeds further apart in backbone order than this are
	// connected transitively if at all.
	CheckWindow int
}

// DefaultParams mirrors Giraffe's short-read defaults at this scale.
func DefaultParams() Params { return Params{DistanceLimit: 200, CheckWindow: 6} }

// normalize fills zero fields with defaults so a zero Params means "Giraffe
// defaults", matching extend.Params behaviour.
func (p Params) normalize() Params {
	d := DefaultParams()
	if p.DistanceLimit == 0 {
		p.DistanceLimit = d.DistanceLimit
	}
	if p.CheckWindow == 0 {
		p.CheckWindow = d.CheckWindow
	}
	return p
}

// Cluster is one group of distance-consistent seeds.
type Cluster struct {
	// SeedIdx are indices into the read's seed slice, ascending.
	SeedIdx []int
	// Score is the sum, over distinct read offsets in the cluster, of the
	// best minimizer score at that offset — Giraffe's cluster score.
	Score float64
}

// unionFind is a standard path-halving union-find.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if ra > rb {
			ra, rb = rb, ra
		}
		u.parent[rb] = ra
	}
}

// ClusterSeeds groups the seeds of one read. readIdx identifies the read for
// the instrumentation address map; probe may be nil.
//
// The algorithm sorts seeds by orientation and projected backbone
// coordinate, then unions each seed with its nearby neighbours whenever
// their exact graph distance is within the limit. Same-orientation seeds
// only: a forward and a reverse seed never share a cluster.
//
//minigiraffe:hot
func ClusterSeeds(ix *distindex.Index, ss []seeds.Seed, p Params, probe counters.Probe, readIdx int) []Cluster {
	p = p.normalize()
	if len(ss) == 0 {
		return nil
	}
	g := ix.Graph()
	// Sort seed indices by (orientation, backbone coordinate).
	order := make([]int, len(ss))
	coord := make([]int, len(ss))
	for i := range ss {
		order[i] = i
		coord[i] = int(g.Backbone(ss[i].Pos.Node)) + int(ss[i].Pos.Off)
	}
	slices.SortFunc(order, func(ia, ib int) int {
		if ss[ia].Rev != ss[ib].Rev {
			if ss[ib].Rev {
				return -1
			}
			return 1
		}
		if coord[ia] != coord[ib] {
			return cmp.Compare(coord[ia], coord[ib])
		}
		return cmp.Compare(ia, ib)
	})
	if probe != nil {
		// Sorting cost and one touch per seed record.
		probe.Instr(int64(len(ss)) * 24)
		for i := range ss {
			probe.Access(counters.SeedAddr(readIdx, i), counters.SeedSize)
		}
	}

	uf := newUnionFind(len(ss))
	for a := 0; a < len(order); a++ {
		i := order[a]
		for b := a + 1; b < len(order) && b <= a+p.CheckWindow; b++ {
			j := order[b]
			if ss[i].Rev != ss[j].Rev {
				break // orientation groups are contiguous in the sort
			}
			if coord[j]-coord[i] > p.DistanceLimit {
				break // sorted by coordinate: later neighbours only farther
			}
			if probe != nil {
				probe.Instr(40)
				probe.Access(counters.NodeSeqAddr(uint32(ss[i].Pos.Node), 0), 8)
				probe.Access(counters.NodeSeqAddr(uint32(ss[j].Pos.Node), 0), 8)
			}
			d := ix.MinDistance(ss[i].Pos, ss[j].Pos, p.DistanceLimit)
			if d != distindex.Unreachable {
				uf.union(i, j)
			}
		}
	}

	// Collect clusters and score them. Ordering seed indices by union-find
	// root (ties by index) makes every cluster one contiguous run, so the
	// per-read map the grouping used to allocate is unnecessary and each
	// SeedIdx slice comes out ascending for free.
	byRoot := make([]int, len(ss))
	nGroups := 0
	for i := range byRoot {
		byRoot[i] = i
		if uf.find(i) == i {
			nGroups++
		}
	}
	slices.SortFunc(byRoot, func(a, b int) int {
		if ra, rb := uf.find(a), uf.find(b); ra != rb {
			return cmp.Compare(ra, rb)
		}
		return cmp.Compare(a, b)
	})
	out := make([]Cluster, 0, nGroups)
	for lo := 0; lo < len(byRoot); {
		root := uf.find(byRoot[lo])
		hi := lo + 1
		for hi < len(byRoot) && uf.find(byRoot[hi]) == root {
			hi++
		}
		idxs := make([]int, hi-lo)
		copy(idxs, byRoot[lo:hi])
		out = append(out, Cluster{SeedIdx: idxs, Score: scoreCluster(ss, idxs)})
		lo = hi
	}
	// Deterministic order: score descending, then first seed index.
	slices.SortFunc(out, func(a, b Cluster) int {
		if a.Score != b.Score {
			return cmp.Compare(b.Score, a.Score)
		}
		return cmp.Compare(a.SeedIdx[0], b.SeedIdx[0])
	})
	if probe != nil {
		probe.Instr(int64(len(out)) * 16)
	}
	return out
}

// scoreCluster sums the best minimizer score per distinct read offset.
// Clusters hold a handful of seeds, so an O(n²) scan beats allocating a
// per-cluster map — and unlike map iteration, the float accumulation order
// is deterministic.
func scoreCluster(ss []seeds.Seed, idxs []int) float64 {
	total := 0.0
	for a, i := range idxs {
		off, sc := ss[i].ReadOff, float64(ss[i].Score)
		best := true
		for b, j := range idxs {
			if b == a || ss[j].ReadOff != off {
				continue
			}
			if sj := float64(ss[j].Score); sj > sc || (sj == sc && b < a) {
				best = false
				break
			}
		}
		if best {
			total += sc
		}
	}
	return total
}
