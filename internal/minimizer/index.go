package minimizer

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dna"
	"repro/internal/vgraph"
)

// Occurrence is one graph position of an indexed minimizer: the position of
// the canonical k-mer's first base on the strand given by Rev.
type Occurrence struct {
	Pos vgraph.Position
	Rev bool
}

// HardHitCap mirrors Giraffe's hard hit cap: minimizers with more graph
// occurrences than this are dropped as repetitive.
const HardHitCap = 512

// Index maps canonical k-mer values to their graph occurrences across all
// indexed haplotype paths, with duplicate occurrences (the same position
// reached by several haplotypes) collapsed.
type Index struct {
	cfg  Config
	hits map[uint64][]Occurrence
	// dropped counts minimizers discarded by the hard hit cap.
	dropped int
}

// Config returns the index's parameters.
func (ix *Index) Config() Config { return ix.cfg }

// NumKmers returns the number of distinct indexed minimizer k-mers.
func (ix *Index) NumKmers() int { return len(ix.hits) }

// Dropped returns how many distinct k-mers were dropped by the hit cap.
func (ix *Index) Dropped() int { return ix.dropped }

// Build indexes the minimizers of the given haplotype paths of graph g.
// Paths are node-ID sequences (as stored in the GBWT); each path's spelled
// sequence is scanned and every minimizer occurrence is recorded with its
// graph position.
func Build(g *vgraph.Graph, paths [][]vgraph.NodeID, cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{cfg: cfg, hits: make(map[uint64][]Occurrence)}
	type key struct {
		kmer uint64
		pos  vgraph.Position
		rev  bool
	}
	seen := make(map[key]bool)
	for pi, path := range paths {
		// Spell the path and remember, for each spelled offset, its node and
		// within-node offset.
		var seq dna.Sequence
		type coord struct {
			node vgraph.NodeID
			off  int32
		}
		var coords []coord
		for _, id := range path {
			if !g.Has(id) {
				return nil, fmt.Errorf("minimizer: path %d references missing node %d", pi, id)
			}
			label := g.Seq(id)
			for off := range label {
				coords = append(coords, coord{node: id, off: int32(off)})
			}
			seq = append(seq, label...)
		}
		mins, err := Minimizers(seq, cfg)
		if err != nil {
			// Paths shorter than a window contribute nothing.
			continue
		}
		for _, m := range mins {
			c := coords[m.Off]
			pos := vgraph.Position{Node: c.node, Off: c.off}
			k := key{kmer: m.Kmer, pos: pos, rev: m.Rev}
			if seen[k] {
				continue
			}
			seen[k] = true
			ix.hits[m.Kmer] = append(ix.hits[m.Kmer], Occurrence{Pos: pos, Rev: m.Rev})
		}
	}
	// Apply the hard hit cap and sort occurrence lists for determinism.
	for kmer, occs := range ix.hits {
		if len(occs) > HardHitCap {
			delete(ix.hits, kmer)
			ix.dropped++
			continue
		}
		sort.Slice(occs, func(a, b int) bool {
			if occs[a].Pos.Node != occs[b].Pos.Node {
				return occs[a].Pos.Node < occs[b].Pos.Node
			}
			if occs[a].Pos.Off != occs[b].Pos.Off {
				return occs[a].Pos.Off < occs[b].Pos.Off
			}
			return !occs[a].Rev && occs[b].Rev
		})
	}
	return ix, nil
}

// Hits returns the graph occurrences of a canonical k-mer (nil when absent).
// The slice aliases index storage.
func (ix *Index) Hits(kmer uint64) []Occurrence { return ix.hits[kmer] }

// Frequency returns the number of graph occurrences of the k-mer.
func (ix *Index) Frequency(kmer uint64) int { return len(ix.hits[kmer]) }

// Score returns the seeding score of a minimizer with the given graph
// frequency: rarer minimizers are more informative. The formula mirrors
// Giraffe's frequency-weighted scoring: ln(cap/freq) clamped to ≥ 1.
func Score(freq int) float64 {
	if freq <= 0 {
		return 0
	}
	s := math.Log(float64(HardHitCap) / float64(freq))
	if s < 1 {
		return 1
	}
	return s
}

// ReadMinimizer pairs a read's minimizer with its index occurrences.
type ReadMinimizer struct {
	Min   Minimizer
	Occs  []Occurrence
	Score float64
}

// LookupRead computes the read's minimizers and gathers their graph
// occurrences. Minimizers absent from the index are omitted.
func (ix *Index) LookupRead(seq dna.Sequence) ([]ReadMinimizer, error) {
	mins, err := Minimizers(seq, ix.cfg)
	if err != nil {
		return nil, err
	}
	out := make([]ReadMinimizer, 0, len(mins))
	for _, m := range mins {
		occs := ix.hits[m.Kmer]
		if len(occs) == 0 {
			continue
		}
		out = append(out, ReadMinimizer{Min: m, Occs: occs, Score: Score(len(occs))})
	}
	return out, nil
}
