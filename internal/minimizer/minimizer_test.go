package minimizer

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dna"
	"repro/internal/vgraph"
)

func randomSeq(n int, seed int64) dna.Sequence {
	rng := rand.New(rand.NewSource(seed))
	s := make(dna.Sequence, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(4))
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{{K: 0, W: 5}, {K: 32, W: 5}, {K: 15, W: 0}, {K: -1, W: 1}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Config %+v accepted", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestMinimizersTooShort(t *testing.T) {
	_, err := Minimizers(randomSeq(10, 1), Config{K: 8, W: 4})
	if !errors.Is(err, ErrSequenceTooShort) {
		t.Errorf("err = %v, want ErrSequenceTooShort", err)
	}
}

// naiveMinimizers recomputes minimizers without the deque, as ground truth.
func naiveMinimizers(seq dna.Sequence, cfg Config) []int32 {
	k, w := cfg.K, cfg.W
	nKmers := len(seq) - k + 1
	hash := func(j int) uint64 {
		var fwd, rc uint64
		for i := 0; i < k; i++ {
			b := seq[j+i]
			fwd = (fwd << 2) | uint64(b)
			rc |= uint64(b.Complement()) << uint(2*i)
		}
		canon := fwd
		if rc < fwd {
			canon = rc
		}
		return splitmix64(canon)
	}
	var offs []int32
	last := -1
	for start := 0; start+w <= nKmers; start++ {
		best := start
		for j := start + 1; j < start+w; j++ {
			if hash(j) < hash(best) {
				best = j
			}
		}
		if best != last {
			offs = append(offs, int32(best))
			last = best
		}
	}
	return offs
}

func TestMinimizersMatchNaive(t *testing.T) {
	cfg := Config{K: 7, W: 5}
	for seed := int64(0); seed < 10; seed++ {
		seq := randomSeq(200, seed)
		got, err := Minimizers(seq, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveMinimizers(seq, cfg)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d minimizers, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i].Off != want[i] {
				t.Fatalf("seed %d: minimizer %d at %d, want %d", seed, i, got[i].Off, want[i])
			}
		}
	}
}

func TestMinimizerWindowProperty(t *testing.T) {
	// Every window of w k-mers must contain at least one emitted minimizer.
	cfg := Config{K: 9, W: 6}
	seq := randomSeq(500, 77)
	mins, err := Minimizers(seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	isMin := map[int32]bool{}
	for _, m := range mins {
		isMin[m.Off] = true
	}
	nKmers := len(seq) - cfg.K + 1
	for start := 0; start+cfg.W <= nKmers; start++ {
		covered := false
		for j := start; j < start+cfg.W; j++ {
			if isMin[int32(j)] {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("window at %d has no minimizer", start)
		}
	}
}

func TestMinimizersStrandSymmetric(t *testing.T) {
	// The canonical k-mer set of a sequence equals that of its reverse
	// complement (offsets differ, canonical k-mer values must coincide).
	cfg := Config{K: 11, W: 7}
	seq := randomSeq(300, 5)
	fwd, err := Minimizers(seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Minimizers(seq.RevComp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fwdSet := map[uint64]bool{}
	for _, m := range fwd {
		fwdSet[m.Kmer] = true
	}
	revSet := map[uint64]bool{}
	for _, m := range rev {
		revSet[m.Kmer] = true
	}
	if len(fwdSet) != len(revSet) {
		t.Fatalf("canonical sets differ in size: %d vs %d", len(fwdSet), len(revSet))
	}
	for k := range fwdSet {
		if !revSet[k] {
			t.Fatalf("canonical k-mer %s missing from reverse set", KmerString(k, cfg.K))
		}
	}
}

func TestKmerString(t *testing.T) {
	// ACGT = 00 01 10 11 = 0x1B.
	if got := KmerString(0x1B, 4); got != "ACGT" {
		t.Errorf("KmerString = %q, want ACGT", got)
	}
}

func TestSplitmixDeterministic(t *testing.T) {
	f := func(x uint64) bool { return splitmix64(x) == splitmix64(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreMonotoneDecreasing(t *testing.T) {
	prev := Score(1)
	for f := 2; f <= HardHitCap; f *= 2 {
		s := Score(f)
		if s > prev {
			t.Fatalf("Score(%d)=%f > Score(%d)=%f", f, s, f/2, prev)
		}
		if s < 1 {
			t.Fatalf("Score(%d)=%f < 1", f, s)
		}
		prev = s
	}
	if Score(0) != 0 {
		t.Error("Score(0) != 0")
	}
}

// buildLinearIndex indexes a single linear path over a chain graph.
func buildLinearIndex(t *testing.T, seq dna.Sequence, nodeLen int, cfg Config) (*Index, *vgraph.Graph, []vgraph.NodeID) {
	t.Helper()
	g := &vgraph.Graph{}
	var path []vgraph.NodeID
	for i := 0; i < len(seq); i += nodeLen {
		end := i + nodeLen
		if end > len(seq) {
			end = len(seq)
		}
		id, err := g.AddNode(seq[i:end].Clone())
		if err != nil {
			t.Fatal(err)
		}
		if len(path) > 0 {
			if err := g.AddEdge(path[len(path)-1], id); err != nil {
				t.Fatal(err)
			}
		}
		path = append(path, id)
	}
	ix, err := Build(g, [][]vgraph.NodeID{path}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix, g, path
}

func TestIndexFindsPlantedMatches(t *testing.T) {
	cfg := Config{K: 13, W: 7}
	seq := randomSeq(1000, 9)
	ix, g, _ := buildLinearIndex(t, seq, 16, cfg)
	if ix.NumKmers() == 0 {
		t.Fatal("empty index")
	}
	// A read copied from the reference must have all its minimizers hit, and
	// each hit must point at a graph position spelling the same k-mer.
	read := seq[200:320]
	rms, err := ix.LookupRead(read)
	if err != nil {
		t.Fatal(err)
	}
	if len(rms) == 0 {
		t.Fatal("no read minimizers found in index")
	}
	mins, err := Minimizers(read, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rms) != len(mins) {
		t.Errorf("%d of %d read minimizers matched; exact copy should match all", len(rms), len(mins))
	}
	for _, rm := range rms {
		if rm.Score < 1 {
			t.Errorf("score %f < 1", rm.Score)
		}
		for _, occ := range rm.Occs {
			// Spell k bases in the graph starting at occ (forward strand of
			// the canonical k-mer) and compare to the canonical k-mer.
			spelled := spellFrom(g, occ.Pos, cfg.K)
			if spelled == nil {
				continue // ran off the path end
			}
			want := rm.Min.Kmer
			var got uint64
			if occ.Rev {
				for _, b := range spelled.RevComp() {
					got = (got << 2) | uint64(b)
				}
			} else {
				for _, b := range spelled {
					got = (got << 2) | uint64(b)
				}
			}
			if got != want {
				t.Fatalf("occurrence at %v spells %s, want %s",
					occ.Pos, KmerString(got, cfg.K), KmerString(want, cfg.K))
			}
		}
	}
}

// spellFrom walks the (linear) graph from pos collecting k bases.
func spellFrom(g *vgraph.Graph, pos vgraph.Position, k int) dna.Sequence {
	var out dna.Sequence
	node, off := pos.Node, pos.Off
	for len(out) < k {
		label := g.Seq(node)
		for int(off) < len(label) && len(out) < k {
			out = append(out, label[off])
			off++
		}
		if len(out) < k {
			succs := g.Successors(node)
			if len(succs) == 0 {
				return nil
			}
			node, off = succs[0], 0
		}
	}
	return out
}

func TestIndexDeduplicatesAcrossHaplotypes(t *testing.T) {
	cfg := Config{K: 11, W: 5}
	seq := randomSeq(400, 21)
	g := &vgraph.Graph{}
	id, err := g.AddNode(seq)
	if err != nil {
		t.Fatal(err)
	}
	path := []vgraph.NodeID{id}
	// The same path indexed twice must not duplicate occurrences.
	once, err := Build(g, [][]vgraph.NodeID{path}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Build(g, [][]vgraph.NodeID{path, path}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if once.NumKmers() != twice.NumKmers() {
		t.Fatalf("kmer counts differ: %d vs %d", once.NumKmers(), twice.NumKmers())
	}
	for kmer := range once.hits {
		if once.Frequency(kmer) != twice.Frequency(kmer) {
			t.Fatalf("frequency differs for %s", KmerString(kmer, cfg.K))
		}
	}
}

func TestBuildRejectsMissingNode(t *testing.T) {
	g := &vgraph.Graph{}
	if _, err := Build(g, [][]vgraph.NodeID{{42}}, DefaultConfig()); err == nil {
		t.Error("missing node accepted")
	}
}

func TestLookupReadTooShort(t *testing.T) {
	cfg := Config{K: 13, W: 7}
	ix, _, _ := buildLinearIndex(t, randomSeq(300, 30), 16, cfg)
	if _, err := ix.LookupRead(randomSeq(5, 1)); err == nil {
		t.Error("short read accepted")
	}
}

func BenchmarkMinimizers(b *testing.B) {
	seq := randomSeq(150, 8)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Minimizers(seq, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
