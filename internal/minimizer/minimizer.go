// Package minimizer implements the minimizer index Giraffe seeds its mapping
// with (Zheng, Kingsford, Marçais, Bioinformatics 2020): for every window of
// w consecutive k-mers, the k-mer with the smallest hash is a *minimizer*.
// Indexing the minimizers of the pangenome's haplotype paths and intersecting
// them with the minimizers of a read yields candidate seed positions at a
// fraction of the memory of a full k-mer index.
package minimizer

import (
	"errors"
	"fmt"

	"repro/internal/dna"
)

// Config holds the k-mer and window lengths. Giraffe's short-read defaults
// are k=29, w=11; this reproduction defaults smaller because synthetic
// genomes are smaller.
type Config struct {
	K int // k-mer length, 1..31
	W int // window length in k-mers, ≥1
}

// DefaultConfig matches the scaled-down synthetic workloads.
func DefaultConfig() Config { return Config{K: 15, W: 8} }

// Validate checks parameter bounds.
func (c Config) Validate() error {
	if c.K < 1 || c.K > 31 {
		return fmt.Errorf("minimizer: k=%d outside [1,31]", c.K)
	}
	if c.W < 1 {
		return fmt.Errorf("minimizer: w=%d < 1", c.W)
	}
	return nil
}

// Minimizer is one selected k-mer occurrence in a sequence.
type Minimizer struct {
	// Off is the offset of the k-mer's first base in the sequence.
	Off int32
	// Hash orders k-mers; the minimizer is the window's smallest hash.
	Hash uint64
	// Kmer is the canonical 2-bit packed k-mer value.
	Kmer uint64
	// Rev is true when the canonical form is the reverse complement of the
	// sequence's forward k-mer.
	Rev bool
}

// ErrSequenceTooShort reports a sequence shorter than one full window.
var ErrSequenceTooShort = errors.New("minimizer: sequence shorter than k+w-1")

// splitmix64 is the finaliser used to order k-mers; it is invertible and
// well-distributed, mirroring the hash family used in practice.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Minimizers returns the minimizers of seq under cfg, in ascending offset
// order, with consecutive duplicates (same occurrence winning several
// windows) collapsed. It returns ErrSequenceTooShort when seq has no
// complete window.
func Minimizers(seq dna.Sequence, cfg Config) ([]Minimizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k, w := cfg.K, cfg.W
	if len(seq) < k+w-1 {
		return nil, fmt.Errorf("%w: len %d < %d", ErrSequenceTooShort, len(seq), k+w-1)
	}
	nKmers := len(seq) - k + 1
	// Rolling canonical k-mers.
	mask := uint64(1)<<(2*k) - 1
	var fwd, rc uint64
	hashes := make([]uint64, nKmers)
	kmers := make([]uint64, nKmers)
	revs := make([]bool, nKmers)
	for i, b := range seq {
		fwd = ((fwd << 2) | uint64(b)) & mask
		rc = (rc >> 2) | (uint64(b.Complement()) << uint(2*(k-1)))
		if i >= k-1 {
			j := i - k + 1
			canon, rev := fwd, false
			if rc < fwd {
				canon, rev = rc, true
			}
			kmers[j] = canon
			revs[j] = rev
			hashes[j] = splitmix64(canon)
		}
	}
	// Sliding-window minima via monotonic deque over k-mer indices.
	var out []Minimizer
	deque := make([]int, 0, w)
	lastEmitted := -1
	for j := 0; j < nKmers; j++ {
		// Strict comparison keeps the leftmost k-mer among equal hashes,
		// the standard minimizer tie-break.
		for len(deque) > 0 && hashes[deque[len(deque)-1]] > hashes[j] {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, j)
		if deque[0] <= j-w {
			deque = deque[1:]
		}
		if j >= w-1 {
			m := deque[0]
			if m != lastEmitted {
				out = append(out, Minimizer{
					Off:  int32(m),
					Hash: hashes[m],
					Kmer: kmers[m],
					Rev:  revs[m],
				})
				lastEmitted = m
			}
		}
	}
	return out, nil
}

// KmerString decodes a 2-bit packed k-mer back to bases (for debugging and
// tests).
func KmerString(kmer uint64, k int) string {
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = dna.Base(kmer & 3).Char()
		kmer >>= 2
	}
	return string(out)
}
