// Package core is miniGiraffe: the proxy application for Giraffe's
// pangenome mapping pipeline (§V of the paper). It consumes the inputs
// captured from the parent right before the critical functions — the reads
// with their preprocessed seeds (package seeds' .bin format) and the
// pangenome reference as a GBZ file — and executes exactly the two critical
// functions, cluster_seeds and process_until_threshold_c, under a
// configurable parallel scheduler. Its output is the raw mapping result:
// the offsets and scores of each match, with no post-processing.
//
// The three tuning parameters of the paper's autotuning study (§VII-B) are
// all exposed: scheduling policy, batch size, and the initial CachedGBWT
// capacity.
package core

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/extend"
	"repro/internal/gbwt"
	"repro/internal/gbz"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/trace"
)

// Options configures a proxy run: the paper's tuning parameters plus
// instrumentation hooks.
type Options struct {
	// Threads is the worker count; ≤0 means GOMAXPROCS.
	Threads int
	// BatchSize is the scheduler batch size (default 512, as in Giraffe).
	BatchSize int
	// CacheCapacity is each worker's initial CachedGBWT capacity; 0 means
	// the Giraffe default (256), negative disables caching. Under the epoch
	// discipline (EpochCapacity > 0) this sizes the per-worker private
	// overflow layer instead — the same §VII-B knob, applied to snapshot
	// misses only.
	CacheCapacity int
	// EpochCapacity, when > 0, turns on the epoch-published shared cache:
	// a read-only snapshot of up to EpochCapacity hot records per GBWT
	// direction that all workers query lock-free, republished at batch
	// boundaries from access-frequency feedback. 0 (the default) keeps the
	// paper's rebuild-per-worker-per-batch discipline.
	EpochCapacity int
	// Scheduler selects the parallel scheduling policy.
	Scheduler sched.Kind
	// Trace records per-region spans when non-nil.
	Trace *trace.Recorder
	// Obs, when non-nil, receives kernel latency histograms (cluster,
	// process_until_threshold_c, per-batch cache rebuild) and scheduler
	// counters. Nil keeps the hot path free of timing calls.
	Obs *obs.Registry
	// Slow, when non-nil, receives a slow-read exemplar for every mapped
	// record: the reservoir keeps the K slowest, with per-kernel timing and
	// cache-rebuild attribution. Nil (the default) keeps the hot path
	// capture-free.
	Slow *obs.SlowReads
	// Probe drives the hardware-counter model; only honoured with
	// Threads == 1.
	Probe counters.Probe
	// Extend and Cluster tune the critical functions.
	Extend  extend.Params
	Cluster cluster.Params
}

func (o Options) normalize() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = sched.DefaultBatchSize
	}
	switch {
	case o.CacheCapacity == 0:
		o.CacheCapacity = gbwt.DefaultCacheCapacity
	case o.CacheCapacity < 0:
		o.CacheCapacity = 0
	}
	if o.EpochCapacity < 0 {
		o.EpochCapacity = 0
	}
	return o
}

// Result is a completed proxy run.
type Result struct {
	// Extensions holds the raw kernel output per input record.
	Extensions [][]extend.Extension
	// Makespan is the end-to-end mapping wall time (the paper's tuning
	// metric, §VII-B).
	Makespan time.Duration
	// Sched reports scheduler behaviour.
	Sched sched.Stats
	// Cache aggregates every worker's CachedGBWT statistics.
	Cache gbwt.CacheStats
}

// Run executes the proxy over the captured records: index preparation plus a
// batch mapping pass. Callers that map more than once (or stream) should
// build a Mapper and reuse it.
func Run(f *gbz.File, records []seeds.ReadSeeds, opts Options) (*Result, error) {
	m, err := NewMapper(f, opts)
	if err != nil {
		return nil, err
	}
	return m.Run(records)
}

// defaultThreads mirrors sched's default worker count.
func defaultThreads() int { return runtime.GOMAXPROCS(0) }

// WriteCSV emits the proxy's raw mapping output: one row per extension with
// the read name, graph position, strand, read interval, score, and mismatch
// offsets — the .csv output format of the artifact.
func WriteCSV(w io.Writer, records []seeds.ReadSeeds, res *Result) error {
	if len(records) != len(res.Extensions) {
		return fmt.Errorf("core: %d records but %d extension sets", len(records), len(res.Extensions))
	}
	if err := WriteCSVHeader(w); err != nil {
		return err
	}
	for i := range records {
		if err := WriteCSVRecord(w, &records[i], res.Extensions[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVHeader writes the CSV column header. The streaming pipeline's
// emitter shares it with WriteCSV so both modes produce byte-identical
// output.
func WriteCSVHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, "read,node,offset,strand,read_start,read_end,score,mismatches")
	return err
}

// WriteCSVRecord writes one record's extension rows.
func WriteCSVRecord(w io.Writer, rec *seeds.ReadSeeds, exts []extend.Extension) error {
	for _, e := range exts {
		strand := "+"
		if e.Rev {
			strand = "-"
		}
		mism := make([]string, len(e.Mismatches))
		for j, m := range e.Mismatches {
			mism[j] = fmt.Sprint(m)
		}
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%s,%d,%d,%d,%s\n",
			rec.Read.Name, e.StartPos.Node, e.StartPos.Off, strand,
			e.ReadStart, e.ReadEnd, e.Score, strings.Join(mism, ";")); err != nil {
			return err
		}
	}
	return nil
}

// ValidationReport summarises the §VI-a functional validation: property (1)
// every expected match appears in the proxy output, property (2) the proxy
// output contains no match absent from the expected output.
type ValidationReport struct {
	Reads          int
	ExpectedTotal  int
	GotTotal       int
	MissingInProxy int // expected but absent
	ExtraInProxy   int // present but unexpected
}

// Match reports a 100% two-way match.
func (v ValidationReport) Match() bool { return v.MissingInProxy == 0 && v.ExtraInProxy == 0 }

// String renders the report one line per property.
func (v ValidationReport) String() string {
	status := "FAIL"
	if v.Match() {
		status = "PASS (100% match)"
	}
	return fmt.Sprintf("validation %s: reads=%d expected=%d got=%d missing=%d extra=%d",
		status, v.Reads, v.ExpectedTotal, v.GotTotal, v.MissingInProxy, v.ExtraInProxy)
}

// Validate compares the parent's exported extensions against the proxy's,
// read by read, in both directions.
func Validate(expected, got [][]extend.Extension) (ValidationReport, error) {
	if len(expected) != len(got) {
		return ValidationReport{}, fmt.Errorf("core: %d expected reads vs %d proxy reads", len(expected), len(got))
	}
	rep := ValidationReport{Reads: len(expected)}
	for i := range expected {
		rep.ExpectedTotal += len(expected[i])
		rep.GotTotal += len(got[i])
		exp := keySet(expected[i])
		act := keySet(got[i])
		for k := range exp {
			if !act[k] {
				rep.MissingInProxy++
			}
		}
		for k := range act {
			if !exp[k] {
				rep.ExtraInProxy++
			}
		}
	}
	return rep, nil
}

// keySet builds the canonical identity set of an extension list, including
// the score so a score drift also fails validation.
func keySet(exts []extend.Extension) map[string]bool {
	m := make(map[string]bool, len(exts))
	for _, e := range exts {
		m[fmt.Sprintf("%s@%d", e.Key(), e.Score)] = true
	}
	return m
}

// SortExtensions orders a read's extensions canonically (already the kernel
// order); exported for tools that merge outputs.
func SortExtensions(exts []extend.Extension) {
	sort.Slice(exts, func(a, b int) bool {
		if exts[a].Score != exts[b].Score {
			return exts[a].Score > exts[b].Score
		}
		if exts[a].StartPos.Node != exts[b].StartPos.Node {
			return exts[a].StartPos.Node < exts[b].StartPos.Node
		}
		if exts[a].StartPos.Off != exts[b].StartPos.Off {
			return exts[a].StartPos.Off < exts[b].StartPos.Off
		}
		return exts[a].ReadStart < exts[b].ReadStart
	})
}
