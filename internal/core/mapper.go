package core

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/distindex"
	"repro/internal/extend"
	"repro/internal/gbwt"
	"repro/internal/gbz"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/trace"
)

// mapperMetrics caches the obs handles the mapping kernels record into.
// All handles are nil when observability is off; the handle methods are
// nil-safe no-ops, so the kernels carry no configuration branches beyond
// the single instr check that gates the time.Now calls.
type mapperMetrics struct {
	cluster    *obs.Histogram
	threshold  *obs.Histogram
	cacheBuild *obs.Histogram

	// Epoch-cache instrumentation: the off-path publication cost and the
	// read-side hit split (shared snapshot vs private overflow vs decode).
	cacheBuildShared *obs.Histogram
	epochPublishes   *obs.Counter
	epochResident    *obs.Gauge
	epochShared      *obs.Counter
	epochPrivate     *obs.Counter
	epochDecode      *obs.Counter
}

func newMapperMetrics(reg *obs.Registry) mapperMetrics {
	return mapperMetrics{
		cluster:          reg.Histogram(obs.MetricClusterLatency),
		threshold:        reg.Histogram(obs.MetricThresholdLatency),
		cacheBuild:       reg.Histogram(obs.MetricCacheBuild),
		cacheBuildShared: reg.Histogram(obs.MetricCacheBuildShared),
		epochPublishes:   reg.Counter(obs.MetricEpochPublishes),
		epochResident:    reg.Gauge(obs.MetricEpochResident),
		epochShared:      reg.Counter(obs.MetricEpochSharedHits),
		epochPrivate:     reg.Counter(obs.MetricEpochPrivateHits),
		epochDecode:      reg.Counter(obs.MetricEpochDecodeMisses),
	}
}

// Mapper is the reusable mapping engine: the prepared query structures
// (distance index plus the bidirectional haplotype index, the expensive part
// of a run's setup) built once and shared by every caller — the batch Run,
// the parent emulator (package giraffe), and the streaming pipeline all map
// records through the same Mapper, which is what keeps their outputs
// identical by construction.
type Mapper struct {
	file *gbz.File
	dist *distindex.Index
	bi   *gbwt.Bidirectional
	opts Options
	met  mapperMetrics
	slow *obs.SlowReads
	// instr gates the kernel timing calls: true when the trace recorder,
	// the obs registry, or the slow-read reservoir wants per-region
	// durations.
	instr bool

	// shared is the epoch-published shared cache (nil unless
	// Options.EpochCapacity > 0). It is safe for concurrent use: workers
	// read pinned immutable snapshots; publication happens at batch
	// boundaries via TryPublishEpoch.
	shared *gbwt.SharedBiCache
	// pendingShared[row] holds the duration of an epoch publication won by
	// that worker at a batch boundary, picked up (and zeroed) by its next
	// MapBatchUntil so exemplars can attribute the build to the reads that
	// ran behind it.
	pendingShared []atomic.Int64
}

// NewMapper prepares the indexes from a GBZ file: the graph distance index
// and the reverse orientation of the embedded haplotype index, so both
// extension directions are haplotype-constrained.
func NewMapper(f *gbz.File, opts Options) (*Mapper, error) {
	if f == nil || f.Graph == nil || f.Index == nil {
		return nil, errors.New("core: nil GBZ file")
	}
	if f.Graph.NumPaths() == 0 {
		return nil, errors.New("core: GBZ has no embedded haplotype paths")
	}
	paths := make([][]gbwt.NodeID, f.Graph.NumPaths())
	for i := range paths {
		paths[i] = f.Graph.Path(i)
	}
	bi, err := gbwt.FromForward(f.Index, paths)
	if err != nil {
		return nil, err
	}
	return NewMapperFromIndexes(f, distindex.New(f.Graph), bi, opts)
}

// NewMapperFromIndexes wraps indexes that were already built elsewhere
// (e.g. giraffe.BuildIndexes) so the parent emulator and the proxy share one
// mapping engine without rebuilding anything.
func NewMapperFromIndexes(f *gbz.File, dist *distindex.Index, bi *gbwt.Bidirectional, opts Options) (*Mapper, error) {
	if f == nil || f.Graph == nil {
		return nil, errors.New("core: nil GBZ file")
	}
	if dist == nil || bi == nil {
		return nil, errors.New("core: nil index")
	}
	opts = opts.normalize()
	m := &Mapper{
		file:  f,
		dist:  dist,
		bi:    bi,
		opts:  opts,
		met:   newMapperMetrics(opts.Obs),
		slow:  opts.Slow,
		instr: opts.Trace != nil || opts.Obs != nil || opts.Slow != nil,
	}
	if opts.EpochCapacity > 0 {
		// Row count sizes the snapshot's per-worker hit-counter rows and
		// the publication-attribution slots; out-of-range worker indices
		// clamp, so a pipeline with more workers than Threads stays
		// correct (it only shares the last row).
		rows := opts.Threads
		if rows <= 0 {
			rows = defaultThreads()
		}
		m.shared = gbwt.NewSharedBi(bi, gbwt.EpochConfig{
			Capacity: opts.EpochCapacity,
			Workers:  rows,
		})
		m.pendingShared = make([]atomic.Int64, rows)
	}
	return m, nil
}

// EpochEnabled reports whether the mapper runs the epoch-published shared
// cache discipline.
func (m *Mapper) EpochEnabled() bool { return m.shared != nil }

// sharedRow clamps a worker index onto the shared cache's row range.
func (m *Mapper) sharedRow(worker int) int {
	if worker < 0 {
		return 0
	}
	if worker >= len(m.pendingShared) {
		return len(m.pendingShared) - 1
	}
	return worker
}

// TryPublishEpoch is the batch-boundary hook of the epoch discipline:
// callers (pipeline workers, the batch scheduler's callback, the serving
// session) invoke it after finishing a batch, off the record-mapping hot
// path. It ticks the epoch clock, and — when this call wins the
// CAS-elected publication — rebuilds both directions' snapshots from the
// accumulated access-frequency feedback, records the build cost, and
// leaves the duration for this worker's next batch to attribute in its
// exemplars. Returns whether this call published. No-op (false) when the
// epoch cache is off.
func (m *Mapper) TryPublishEpoch(worker int) bool {
	if m.shared == nil {
		return false
	}
	d, ok := m.shared.MaybePublish()
	if !ok {
		return false
	}
	row := m.sharedRow(worker)
	m.pendingShared[row].Store(int64(d))
	m.met.cacheBuildShared.Observe(row, d)
	m.met.epochPublishes.Inc(row)
	m.met.epochResident.Set(row, int64(m.shared.Resident()))
	return true
}

// Options returns the mapper's normalized run options.
func (m *Mapper) Options() Options { return m.opts }

// WithoutProbe returns a mapper that maps without the hardware-counter
// probe. Probes are single-threaded instruments; concurrent consumers (the
// streaming pipeline, multi-threaded Run) must drop them.
func (m *Mapper) WithoutProbe() *Mapper {
	if m.opts.Probe == nil {
		return m
	}
	c := *m
	c.opts.Probe = nil
	return &c
}

// NewReader builds worker's per-batch reader pair. Under the default
// discipline that is a fresh CachedGBWT pair at the configured initial
// capacity — Giraffe's per-batch cache lifetime, the mechanism behind the
// paper's most significant tuning parameter (§VII-B). Under the epoch
// discipline it pins the current shared snapshots and wraps them with a
// private overflow pair of the same capacity.
func (m *Mapper) NewReader(worker int) gbwt.BiReader {
	if m.shared != nil {
		return m.shared.NewBiReader(m.sharedRow(worker), m.opts.CacheCapacity)
	}
	return m.bi.NewBiReader(m.opts.CacheCapacity)
}

// MapRecord runs the two critical functions (cluster_seeds and
// process_until_threshold_c) for one record. index is the record's global
// position in the workload; worker tags trace spans. The reader carries the
// batch's cache state and must not be shared across goroutines.
//
//minigiraffe:hot
func (m *Mapper) MapRecord(worker int, reader gbwt.BiReader, rec *seeds.ReadSeeds, index int) []extend.Extension {
	return m.mapRecordSlow(worker, reader, rec, index, 0, 0, nil)
}

// mapRecordSlow is MapRecord plus the slow-read exemplar capture:
// cacheNanos attributes the caller's per-batch CachedGBWT rebuild to each
// read it covers, sharedNanos an epoch publication the worker performed at
// the preceding batch boundary. The capture is allocation-free (Exemplar
// is a value; the reservoir preallocates) and skipped entirely when no
// reservoir is configured. sb, when non-nil, is the serving path's
// per-sub-batch request attribution: the record's kernel nanos accumulate
// into it (plain adds — the sub-batch is owned by this worker until the
// batch returns) and its trace ID tags the exemplar.
//
//minigiraffe:hot
func (m *Mapper) mapRecordSlow(worker int, reader gbwt.BiReader, rec *seeds.ReadSeeds, index int, cacheNanos, sharedNanos int64, sb *obs.SubBatch) []extend.Extension {
	var t0 time.Time
	var dc, dt time.Duration
	if m.instr {
		t0 = time.Now()
	}
	cls := cluster.ClusterSeeds(m.dist, rec.Seeds, m.opts.Cluster, m.opts.Probe, index)
	if m.instr {
		dc = time.Since(t0)
		if m.opts.Trace != nil {
			m.opts.Trace.Record(worker, trace.RegionCluster, t0, dc)
		}
		m.met.cluster.Observe(worker, dc)
		t0 = time.Now()
	}
	env := &extend.Env{Graph: m.file.Graph, Bi: reader, Probe: m.opts.Probe}
	exts := extend.ProcessUntilThresholdC(env, &rec.Read, rec.Seeds, cls, m.opts.Extend, index)
	if m.instr {
		dt = time.Since(t0)
		if m.opts.Trace != nil {
			m.opts.Trace.Record(worker, trace.RegionThresholdC, t0, dt)
		}
		m.met.threshold.Observe(worker, dt)
		if sb != nil {
			sb.ClusterNanos += int64(dc)
			sb.ExtendNanos += int64(dt)
		}
		if m.slow != nil {
			ex := obs.Exemplar{
				Read:             rec.Read.Name,
				Index:            index,
				Worker:           worker,
				Seeds:            len(rec.Seeds),
				ClusterNanos:     int64(dc),
				ExtendNanos:      int64(dt),
				TotalNanos:       int64(dc + dt),
				CacheBuildNanos:  cacheNanos,
				SharedBuildNanos: sharedNanos,
			}
			if sb != nil {
				ex.Trace = sb.Trace
			}
			m.slow.Offer(worker, ex)
		}
	}
	return exts
}

// MapBatch maps recs (whose global indices start at base) through a fresh
// per-batch CachedGBWT, storing record j's extensions in out[j], and returns
// the batch's drained cache statistics. len(out) must be len(recs).
//
//minigiraffe:hot
func (m *Mapper) MapBatch(worker int, recs []seeds.ReadSeeds, base int, out [][]extend.Extension) gbwt.CacheStats {
	cs, _ := m.MapBatchUntil(worker, recs, base, out, nil, nil)
	return cs
}

// MapBatchUntil is MapBatch with a cooperative cancellation point between
// records: when stop becomes true mid-batch, the remaining records are left
// unmapped and mapped reports how many completed. This is the mechanism
// behind request-level deadlines in the serving path (pipeline.Session): a
// deadline that fires while a batch is on a worker stops the mapper at the
// next record boundary instead of running the batch to completion. A nil
// stop never cancels, so the batch pipeline pays only a nil check per
// record. sb, when non-nil, receives the batch's request attribution: the
// cache-build and per-record kernel nanos accumulate into it and its trace
// ID tags every slow-read exemplar the batch produces (the serving path's
// map_subbatch span decomposition).
//
//minigiraffe:hot
func (m *Mapper) MapBatchUntil(worker int, recs []seeds.ReadSeeds, base int, out [][]extend.Extension, stop *atomic.Bool, sb *obs.SubBatch) (cs gbwt.CacheStats, mapped int) {
	var t0 time.Time
	if m.instr {
		t0 = time.Now()
	}
	reader := m.NewReader(worker)
	var cacheNanos, sharedNanos int64
	if m.shared != nil {
		sharedNanos = m.pendingShared[m.sharedRow(worker)].Swap(0)
	}
	if m.instr {
		// The per-batch CachedGBWT rebuild is Giraffe's cache lifetime —
		// the cost the §VII-B capacity parameter trades against hit rate.
		// Under the epoch discipline this times only the private overflow
		// construction; the shared build is attributed by TryPublishEpoch.
		d := time.Since(t0)
		if m.opts.Trace != nil {
			m.opts.Trace.Record(worker, trace.RegionCacheBuild, t0, d)
		}
		m.met.cacheBuild.Observe(worker, d)
		cacheNanos = int64(d)
		if sb != nil {
			sb.CacheBuildNanos += int64(d)
		}
	}
	for j := range recs {
		if stop != nil && stop.Load() {
			break
		}
		out[j] = m.mapRecordSlow(worker, reader, &recs[j], base+j, cacheNanos, sharedNanos, sb)
		mapped++
	}
	cs = ReaderCacheStats(reader)
	if m.shared != nil {
		m.met.epochShared.Add(worker, cs.SharedHits)
		m.met.epochPrivate.Add(worker, cs.Hits)
		m.met.epochDecode.Add(worker, cs.Misses)
	}
	return cs, mapped
}

// cacheStatser is any reader layer that can drain its cache counters —
// CachedGBWT and the epoch discipline's EpochReader both qualify.
type cacheStatser interface{ Stats() gbwt.CacheStats }

// ReaderCacheStats drains the cache counters of both directions of a
// BiReader (zero when caching is disabled). It works across cache
// disciplines: any reader exposing Stats contributes, so shared-epoch and
// private-only stats merge identically — and since CacheStats.Add is
// commutative, the per-worker aggregation is order-independent.
func ReaderCacheStats(r gbwt.BiReader) (s gbwt.CacheStats) {
	for _, rd := range []gbwt.Reader{r.Fwd, r.Rev} {
		if c, ok := rd.(cacheStatser); ok {
			s.Add(c.Stats())
		}
	}
	return s
}

// Run executes the batch proxy over records on the prepared mapper: the
// whole workload is scheduled at once under the configured policy, with each
// batch getting a fresh CachedGBWT.
func (m *Mapper) Run(records []seeds.ReadSeeds) (*Result, error) {
	opts := m.opts
	// Worker count resolution mirrors sched.Run's normalisation so the
	// per-worker stats slices are sized correctly.
	threads := opts.Threads
	if threads <= 0 {
		threads = defaultThreads()
	}
	if threads > len(records) && len(records) > 0 {
		threads = len(records)
	}
	if threads < 1 {
		threads = 1
	}
	run := m
	if threads != 1 {
		run = m.WithoutProbe()
	}
	res := &Result{Extensions: make([][]extend.Extension, len(records))}
	cacheStats := make([]gbwt.CacheStats, threads)

	// pprof labels at batch granularity: the claim callback re-labels its
	// goroutine per claimed batch (scheduler workers are reused across
	// batches), never per record, so -profile captures split by worker with
	// the map hot path untouched.
	labels := obs.NewProfLabels(obs.ClassBatch, threads)
	start := time.Now()
	stats, err := sched.RunBatches(sched.Config{
		Kind:      opts.Scheduler,
		Threads:   threads,
		BatchSize: opts.BatchSize,
		Obs:       opts.Obs,
	}, len(records), func(worker, lo, hi int) {
		labels.ApplyMap(worker)
		cacheStats[worker].Add(run.MapBatch(worker, records[lo:hi], lo, res.Extensions[lo:hi]))
		// Batch boundary: tick the epoch clock (publishes the next shared
		// snapshot every interval; no-op without the epoch cache).
		run.TryPublishEpoch(worker)
	})
	if err != nil {
		return nil, err
	}
	res.Makespan = time.Since(start)
	res.Sched = stats
	for _, s := range cacheStats {
		res.Cache.Add(s)
	}
	return res, nil
}
