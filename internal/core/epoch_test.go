package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gbwt"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestEpochRunMatchesRebuild: core.Run output under the epoch discipline is
// identical to the per-batch-rebuild discipline, and the merged cache stats
// keep the accounting invariant Hits + SharedHits + Misses == Accesses.
func TestEpochRunMatchesRebuild(t *testing.T) {
	spec := workload.BYeast().Scaled(0.004)
	spec.ZipfS = 1.4
	b, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := b.CaptureSeeds()
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Run(b.GBZ(), recs, core.Options{Threads: 2, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMapper(b.GBZ(), core.Options{
		Threads: 2, BatchSize: 8, CacheCapacity: 16, EpochCapacity: 64,
		Scheduler: sched.WorkStealing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.EpochEnabled() {
		t.Fatal("EpochCapacity did not enable the epoch cache")
	}
	// Two passes through one mapper: the first seeds the frequency
	// feedback and publishes epochs at batch boundaries, the second maps
	// against a warm snapshot.
	for pass := 0; pass < 2; pass++ {
		res, err := m.Run(recs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Extensions, base.Extensions) {
			t.Fatalf("pass %d: epoch-cache extensions differ from rebuild-per-batch", pass)
		}
		c := res.Cache
		if c.Hits+c.SharedHits+c.Misses != c.Accesses {
			t.Fatalf("pass %d: hits %d + shared %d + misses %d != accesses %d",
				pass, c.Hits, c.SharedHits, c.Misses, c.Accesses)
		}
		if pass == 1 && c.SharedHits == 0 {
			t.Error("warm pass never hit the shared snapshot")
		}
	}
}

// TestReaderCacheStatsEpochReader locks the aggregation fix: the epoch
// discipline's readers must contribute their counters through
// ReaderCacheStats (the old implementation type-asserted *gbwt.CachedGBWT
// only and silently dropped anything else).
func TestReaderCacheStatsEpochReader(t *testing.T) {
	f, _, _ := fixture(t, 0.02)
	m, err := core.NewMapper(f, core.Options{CacheCapacity: 16, EpochCapacity: 32, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := m.NewReader(0)
	for v := gbwt.NodeID(1); v <= 8; v++ {
		r.Fwd.Record(v)
		r.Rev.Record(v)
	}
	cs := core.ReaderCacheStats(r)
	if cs.Accesses == 0 {
		t.Fatal("epoch reader stats dropped by ReaderCacheStats")
	}
	if cs.Hits+cs.SharedHits+cs.Misses != cs.Accesses {
		t.Fatalf("invariant broken: %+v", cs)
	}
}
