package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/giraffe"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Example_proxyPipeline runs the complete proxy flow on a generated input
// set and validates it against the parent — the repository's whole purpose
// in fifteen lines.
func Example_proxyPipeline() {
	bundle, err := workload.Generate(workload.AHuman().Scaled(0.02))
	if err != nil {
		panic(err)
	}
	ix, err := giraffe.BuildIndexes(bundle.GBZ())
	if err != nil {
		panic(err)
	}
	parent, err := giraffe.Map(ix, bundle.Reads, giraffe.Options{Threads: 2, CaptureSeeds: true})
	if err != nil {
		panic(err)
	}
	proxy, err := core.Run(bundle.GBZ(), parent.Captured, core.Options{
		Threads:   2,
		Scheduler: sched.WorkStealing,
	})
	if err != nil {
		panic(err)
	}
	report, err := core.Validate(parent.Extensions, proxy.Extensions)
	if err != nil {
		panic(err)
	}
	fmt.Println("match:", report.Match())
	fmt.Println("reads:", report.Reads)
	// Output:
	// match: true
	// reads: 30
}
