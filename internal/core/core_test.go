package core_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/extend"
	"repro/internal/gbz"
	"repro/internal/giraffe"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/trace"
	"repro/internal/vgraph"
	"repro/internal/workload"
)

// fixture generates a bundle and captures its seeds — the proxy's inputs.
func fixture(t testing.TB, scale float64) (*gbz.File, []seeds.ReadSeeds, *workload.Bundle) {
	t.Helper()
	b, err := workload.Generate(workload.AHuman().Scaled(scale))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := b.CaptureSeeds()
	if err != nil {
		t.Fatal(err)
	}
	return b.GBZ(), recs, b
}

func TestRunBasic(t *testing.T) {
	f, recs, _ := fixture(t, 0.05)
	res, err := core.Run(f, recs, core.Options{Threads: 2, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Extensions) != len(recs) {
		t.Fatalf("%d extension sets for %d records", len(res.Extensions), len(recs))
	}
	withExt := 0
	for _, exts := range res.Extensions {
		if len(exts) > 0 {
			withExt++
		}
	}
	if frac := float64(withExt) / float64(len(recs)); frac < 0.9 {
		t.Errorf("only %.0f%% of reads extended", frac*100)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	if res.Cache.Accesses == 0 {
		t.Error("no cache activity recorded")
	}
}

func TestRunNilFile(t *testing.T) {
	if _, err := core.Run(nil, nil, core.Options{}); err == nil {
		t.Error("nil file accepted")
	}
	if _, err := core.Run(&gbz.File{}, nil, core.Options{}); err == nil {
		t.Error("empty file accepted")
	}
}

// TestProxyMatchesParent is the §VI-a functional validation: the proxy's
// outputs must exactly equal the parent's exported extensions, in both
// directions, for every scheduler and cache capacity.
func TestProxyMatchesParent(t *testing.T) {
	f, _, b := fixture(t, 0.08)
	ix, err := giraffe.BuildIndexes(f)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := giraffe.Map(ix, b.Reads, giraffe.Options{Threads: 2, BatchSize: 8, CaptureSeeds: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheduler := range []sched.Kind{sched.Dynamic, sched.WorkStealing, sched.Static} {
		for _, capacity := range []int{-1, 64, 256, 4096} {
			res, err := core.Run(f, parent.Captured, core.Options{
				Threads: 3, BatchSize: 4, Scheduler: scheduler, CacheCapacity: capacity,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.Validate(parent.Extensions, res.Extensions)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Match() {
				t.Fatalf("sched=%v cap=%d: %s", scheduler, capacity, rep)
			}
		}
	}
}

func TestValidateDetectsDrift(t *testing.T) {
	f, recs, _ := fixture(t, 0.03)
	res, err := core.Run(f, recs, core.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Identical → match.
	rep, err := core.Validate(res.Extensions, res.Extensions)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match() {
		t.Fatalf("self-validation failed: %s", rep)
	}
	// Mutate one extension: both directions must flag it.
	mutated := make([][]extend.Extension, len(res.Extensions))
	copy(mutated, res.Extensions)
	found := false
	for i := range mutated {
		if len(mutated[i]) > 0 {
			row := make([]extend.Extension, len(mutated[i]))
			copy(row, mutated[i])
			row[0].Score++
			mutated[i] = row
			found = true
			break
		}
	}
	if !found {
		t.Skip("no extensions to mutate")
	}
	rep, err = core.Validate(res.Extensions, mutated)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match() {
		t.Error("mutated output validated as matching")
	}
	if rep.MissingInProxy != 1 || rep.ExtraInProxy != 1 {
		t.Errorf("missing=%d extra=%d, want 1,1", rep.MissingInProxy, rep.ExtraInProxy)
	}
	if !strings.Contains(rep.String(), "FAIL") {
		t.Errorf("report string %q lacks FAIL", rep.String())
	}
	// Length mismatch is an error.
	if _, err := core.Validate(res.Extensions, res.Extensions[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRunDeterministicAcrossSchedulers(t *testing.T) {
	f, recs, _ := fixture(t, 0.05)
	var all [][][]extend.Extension
	for _, kind := range []sched.Kind{sched.Dynamic, sched.WorkStealing, sched.Static} {
		res, err := core.Run(f, recs, core.Options{Threads: 4, BatchSize: 4, Scheduler: kind})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, res.Extensions)
	}
	for i := 1; i < len(all); i++ {
		if !reflect.DeepEqual(all[0], all[i]) {
			t.Fatalf("scheduler %d changed output", i)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	f, recs, _ := fixture(t, 0.03)
	res, err := core.Run(f, recs, core.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.WriteCSV(&buf, recs, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "read,node,offset,strand,read_start,read_end,score,mismatches" {
		t.Errorf("header = %q", lines[0])
	}
	total := 0
	for _, exts := range res.Extensions {
		total += len(exts)
	}
	if len(lines)-1 != total {
		t.Errorf("%d CSV rows for %d extensions", len(lines)-1, total)
	}
	// Mismatched lengths rejected.
	if err := core.WriteCSV(&buf, recs[:1], res); err == nil {
		t.Error("mismatched record count accepted")
	}
}

func TestRunWithTraceAndStats(t *testing.T) {
	f, recs, _ := fixture(t, 0.04)
	rec := trace.NewRecorder(2)
	res, err := core.Run(f, recs, core.Options{Threads: 2, BatchSize: 4, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	shares := rec.Shares()
	regions := map[string]bool{}
	for _, s := range shares {
		regions[s.Region] = true
	}
	if !regions[trace.RegionCluster] || !regions[trace.RegionThresholdC] {
		t.Errorf("missing kernel regions in trace: %v", shares)
	}
	var processed int64
	for _, p := range res.Sched.Processed {
		processed += p
	}
	if processed != int64(len(recs)) {
		t.Errorf("sched processed %d of %d", processed, len(recs))
	}
}

func TestRunSingleThreadProbe(t *testing.T) {
	f, recs, _ := fixture(t, 0.03)
	h := counters.NewDefaultHierarchy()
	if _, err := core.Run(f, recs, core.Options{Threads: 1, Probe: h}); err != nil {
		t.Fatal(err)
	}
	if c := h.Snapshot(counters.DefaultCycleModel); c.Instr == 0 {
		t.Error("probe recorded nothing on single-thread run")
	}
}

func TestCacheCapacityAffectsStats(t *testing.T) {
	f, recs, _ := fixture(t, 0.05)
	disabled, err := core.Run(f, recs, core.Options{Threads: 1, CacheCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := core.Run(f, recs, core.Options{Threads: 1, CacheCapacity: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if disabled.Cache.Hits != 0 {
		t.Errorf("disabled cache had %d hits", disabled.Cache.Hits)
	}
	if cached.Cache.Hits == 0 {
		t.Error("enabled cache had no hits")
	}
	if cached.Cache.Misses >= disabled.Cache.Misses {
		t.Errorf("cache did not reduce decompressions: %d vs %d",
			cached.Cache.Misses, disabled.Cache.Misses)
	}
}

func TestSortExtensions(t *testing.T) {
	exts := []extend.Extension{
		{Score: 1, StartPos: vgraph.Position{Node: 2}},
		{Score: 5, StartPos: vgraph.Position{Node: 1}},
		{Score: 5, StartPos: vgraph.Position{Node: 3}},
	}
	core.SortExtensions(exts)
	if exts[0].Score != 5 || exts[0].StartPos.Node != 1 {
		t.Errorf("sort wrong: %+v", exts)
	}
	if exts[2].Score != 1 {
		t.Errorf("sort wrong: %+v", exts)
	}
}
