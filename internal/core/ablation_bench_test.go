package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/gbz"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/workload"
)

// Ablation benchmarks over the proxy's tuning surface: scheduler policy,
// batch size, CachedGBWT capacity, and instrumentation overhead.

var (
	ablOnce sync.Once
	ablFile *gbz.File
	ablRecs []seeds.ReadSeeds
	ablErr  error
)

func ablationFixture(b *testing.B) (*gbz.File, []seeds.ReadSeeds) {
	b.Helper()
	ablOnce.Do(func() {
		ablFile, ablRecs, ablErr = fixtureShared()
	})
	if ablErr != nil {
		b.Fatal(ablErr)
	}
	return ablFile, ablRecs
}

// fixtureShared builds the shared benchmark input.
func fixtureShared() (*gbz.File, []seeds.ReadSeeds, error) {
	bundle, err := workload.Generate(workload.AHuman().Scaled(0.2))
	if err != nil {
		return nil, nil, err
	}
	recs, err := bundle.CaptureSeeds()
	if err != nil {
		return nil, nil, err
	}
	return bundle.GBZ(), recs, nil
}

func BenchmarkAblationScheduler(b *testing.B) {
	f, recs := ablationFixture(b)
	for _, kind := range []sched.Kind{sched.Dynamic, sched.WorkStealing, sched.Static} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(f, recs, Options{Threads: 2, BatchSize: 64, Scheduler: kind}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationBatchSize(b *testing.B) {
	f, recs := ablationFixture(b)
	for _, bs := range []int{16, 128, 512, 2048} {
		b.Run(fmt.Sprintf("bs%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(f, recs, Options{Threads: 2, BatchSize: bs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationCacheCapacity(b *testing.B) {
	f, recs := ablationFixture(b)
	for _, cc := range []int{-1, 64, 256, 4096} {
		name := fmt.Sprintf("cc%d", cc)
		if cc < 0 {
			name = "disabled"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(f, recs, Options{Threads: 2, CacheCapacity: cc}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
