package core_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/extend"
)

// TestMapBatchUntil pins the cooperative-cancellation contract that the
// serving path's request deadlines rely on: a nil stop maps everything
// (identically to MapBatch), a pre-set stop maps nothing, and a stop raised
// mid-batch leaves the remaining records unmapped with an accurate mapped
// count.
func TestMapBatchUntil(t *testing.T) {
	f, recs, _ := fixture(t, 0.05)
	m, err := core.NewMapper(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	want := make([][]extend.Extension, len(recs))
	m.MapBatch(0, recs, 0, want)

	t.Run("nil stop maps all", func(t *testing.T) {
		out := make([][]extend.Extension, len(recs))
		_, mapped := m.MapBatchUntil(0, recs, 0, out, nil, nil)
		if mapped != len(recs) {
			t.Fatalf("mapped %d of %d", mapped, len(recs))
		}
		for i := range out {
			if len(out[i]) != len(want[i]) {
				t.Fatalf("record %d: %d extensions, want %d", i, len(out[i]), len(want[i]))
			}
		}
	})

	t.Run("pre-set stop maps none", func(t *testing.T) {
		var stop atomic.Bool
		stop.Store(true)
		out := make([][]extend.Extension, len(recs))
		_, mapped := m.MapBatchUntil(0, recs, 0, out, &stop, nil)
		if mapped != 0 {
			t.Fatalf("mapped %d records under a pre-set stop", mapped)
		}
		for i := range out {
			if out[i] != nil {
				t.Fatalf("record %d written despite stop", i)
			}
		}
	})

	t.Run("mid-batch stop leaves a suffix unmapped", func(t *testing.T) {
		if len(recs) < 2 {
			t.Skip("fixture too small")
		}
		// The stop flag cannot be raised deterministically from outside a
		// single-threaded call, so raise it from the instrumentation side:
		// run the batch on a goroutine-free path by stopping after a bounded
		// spin. Instead, exercise determinism directly — flip the flag
		// between two sub-batch calls, which is exactly how the session's
		// workers observe it (at record granularity within each call).
		var stop atomic.Bool
		out := make([][]extend.Extension, len(recs))
		half := len(recs) / 2
		_, mappedA := m.MapBatchUntil(0, recs[:half], 0, out[:half], &stop, nil)
		stop.Store(true)
		_, mappedB := m.MapBatchUntil(0, recs[half:], half, out[half:], &stop, nil)
		if mappedA != half || mappedB != 0 {
			t.Fatalf("mapped %d+%d, want %d+0", mappedA, mappedB, half)
		}
	})
}
