package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/extend"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TestMapBatchUntilSubBatchAttribution pins the serving path's kernel
// fold-in: a SubBatch passed into MapBatchUntil accumulates the batch's
// cluster/extend/cache-build nanos (so the request's map_subbatch span can
// be decomposed) and its trace ID tags every slow-read exemplar the batch
// offers, while a nil SubBatch leaves exemplars unattributed.
func TestMapBatchUntilSubBatchAttribution(t *testing.T) {
	f, recs, _ := fixture(t, 0.05)
	slow := obs.NewSlowReads(1, len(recs))
	m, err := core.NewMapper(f, core.Options{Slow: slow})
	if err != nil {
		t.Fatal(err)
	}

	id := trace.ID{Hi: 7, Lo: 7}
	sb := &obs.SubBatch{Trace: id}
	out := make([][]extend.Extension, len(recs))
	_, mapped := m.MapBatchUntil(0, recs, 0, out, nil, sb)
	if mapped != len(recs) {
		t.Fatalf("mapped %d of %d", mapped, len(recs))
	}
	if sb.ClusterNanos <= 0 || sb.ExtendNanos <= 0 {
		t.Fatalf("kernel nanos not folded in: cluster=%d extend=%d", sb.ClusterNanos, sb.ExtendNanos)
	}
	if sb.CacheBuildNanos < 0 {
		t.Fatalf("cache-build nanos negative: %d", sb.CacheBuildNanos)
	}
	exemplars := slow.Top()
	if len(exemplars) == 0 {
		t.Fatal("no exemplars captured")
	}
	// The per-exemplar kernel nanos must sum to no more than the batch
	// totals (the reservoir holds every read at k=len(recs)).
	var exCluster, exExtend int64
	for _, ex := range exemplars {
		if ex.Trace != id {
			t.Fatalf("exemplar %q carries trace %v, want %v", ex.Read, ex.Trace, id)
		}
		exCluster += ex.ClusterNanos
		exExtend += ex.ExtendNanos
	}
	if exCluster > sb.ClusterNanos || exExtend > sb.ExtendNanos {
		t.Fatalf("exemplar nanos exceed batch totals: %d/%d cluster, %d/%d extend",
			exCluster, sb.ClusterNanos, exExtend, sb.ExtendNanos)
	}

	// Untraced path: exemplars stay unattributed.
	slow2 := obs.NewSlowReads(1, len(recs))
	m2, err := core.NewMapper(f, core.Options{Slow: slow2})
	if err != nil {
		t.Fatal(err)
	}
	m2.MapBatchUntil(0, recs, 0, out, nil, nil)
	for _, ex := range slow2.Top() {
		if !ex.Trace.IsZero() {
			t.Fatalf("untraced batch produced attributed exemplar %+v", ex)
		}
	}
}
