package counters

import (
	"math/rand"
	"testing"
)

func TestCacheConfigValid(t *testing.T) {
	good := []CacheConfig{DefaultL1, DefaultLLC, {Size: 1024, LineSize: 64, Ways: 4}}
	for _, c := range good {
		if !c.Valid() {
			t.Errorf("config %+v reported invalid", c)
		}
	}
	bad := []CacheConfig{
		{},
		{Size: 100, LineSize: 64, Ways: 4}, // lines < ways
		{Size: -1, LineSize: 64, Ways: 1},
	}
	for _, c := range bad {
		if c.Valid() {
			t.Errorf("config %+v reported valid", c)
		}
	}
}

func TestHierarchyHitsAfterWarm(t *testing.T) {
	h := NewHierarchy(CacheConfig{Size: 4096, LineSize: 64, Ways: 4}, DefaultLLC)
	// Touch one line twice: first access misses, second hits.
	h.Access(0x1000, 8)
	h.Access(0x1000, 8)
	c := h.Snapshot(DefaultCycleModel)
	if c.L1DA != 2 {
		t.Errorf("L1DA = %d, want 2", c.L1DA)
	}
	if c.L1DM != 1 {
		t.Errorf("L1DM = %d, want 1", c.L1DM)
	}
}

func TestAccessSpansLines(t *testing.T) {
	h := NewDefaultHierarchy()
	// A 130-byte read starting mid-line touches 3 lines.
	h.Access(0x1020, 130)
	c := h.Snapshot(DefaultCycleModel)
	if c.L1DA != 3 {
		t.Errorf("L1DA = %d, want 3", c.L1DA)
	}
}

func TestAccessZeroSize(t *testing.T) {
	h := NewDefaultHierarchy()
	h.Access(0x1000, 0)
	if c := h.Snapshot(DefaultCycleModel); c.L1DA != 0 {
		t.Errorf("zero-size access counted: %d", c.L1DA)
	}
}

func TestLRUEviction(t *testing.T) {
	// Tiny direct-ish cache: 2 sets × 2 ways of 64B lines = 256 B.
	cfg := CacheConfig{Size: 256, LineSize: 64, Ways: 2}
	h := NewHierarchy(cfg, DefaultLLC)
	// Three lines mapping to the same set (stride = sets*linesize = 128).
	h.Access(0, 1)   // miss, set 0 way A
	h.Access(128, 1) // miss, set 0 way B
	h.Access(0, 1)   // hit (LRU now 128)
	h.Access(256, 1) // miss, evicts 128
	h.Access(128, 1) // miss again (was evicted)
	c := h.Snapshot(DefaultCycleModel)
	if c.L1DM != 4 {
		t.Errorf("L1DM = %d, want 4", c.L1DM)
	}
	if c.L1DA != 5 {
		t.Errorf("L1DA = %d, want 5", c.L1DA)
	}
}

func TestLLCOnlySeesL1Misses(t *testing.T) {
	h := NewDefaultHierarchy()
	for i := 0; i < 100; i++ {
		h.Access(0x2000, 8) // same line: 1 miss then hits
	}
	c := h.Snapshot(DefaultCycleModel)
	if c.LLDA != 1 {
		t.Errorf("LLDA = %d, want 1 (only the L1 miss)", c.LLDA)
	}
}

func TestWorkingSetMissRates(t *testing.T) {
	// A working set far larger than L1 but inside LLC must show a high L1
	// miss rate on random access and a low LLC miss rate after warm-up.
	l1 := CacheConfig{Size: 32 << 10, LineSize: 64, Ways: 8}
	llc := CacheConfig{Size: 4 << 20, LineSize: 64, Ways: 8}
	h := NewHierarchy(l1, llc)
	rng := rand.New(rand.NewSource(1))
	const ws = 2 << 20
	// Warm.
	for a := 0; a < ws; a += 64 {
		h.Access(uint64(a), 1)
	}
	warm := h.Snapshot(DefaultCycleModel)
	for i := 0; i < 200000; i++ {
		h.Access(uint64(rng.Intn(ws)), 1)
	}
	c := h.Snapshot(DefaultCycleModel)
	l1Rate := float64(c.L1DM-warm.L1DM) / float64(c.L1DA-warm.L1DA)
	llcRate := float64(c.LLDM-warm.LLDM) / float64(c.LLDA-warm.LLDA+1)
	if l1Rate < 0.9 {
		t.Errorf("random-access L1 miss rate = %.3f, want near 1", l1Rate)
	}
	if llcRate > 0.05 {
		t.Errorf("in-LLC working set LLC miss rate = %.3f, want near 0", llcRate)
	}
}

func TestSnapshotIPC(t *testing.T) {
	h := NewDefaultHierarchy()
	h.Instr(1000)
	c := h.Snapshot(DefaultCycleModel)
	if c.Instr != 1000 {
		t.Errorf("Instr = %d", c.Instr)
	}
	if c.IPC <= 0 || c.IPC > DefaultCycleModel.IdealIPC {
		t.Errorf("IPC = %f outside (0, ideal]", c.IPC)
	}
}

func TestTopDownSumsToOne(t *testing.T) {
	h := NewDefaultHierarchy()
	rng := rand.New(rand.NewSource(2))
	h.Instr(5_000_000)
	for i := 0; i < 100000; i++ {
		h.Access(uint64(rng.Intn(64<<20)), 16)
	}
	c := h.Snapshot(DefaultCycleModel)
	td := c.TopDownSplit(DefaultCycleModel)
	sum := td.FrontEnd + td.BackEnd + td.BadSpec + td.Retiring
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("top-down sums to %f", sum)
	}
	if td.Retiring <= 0 || td.BackEnd < 0 {
		t.Errorf("degenerate split: %+v", td)
	}
	if td.BackEndMemory > td.BackEnd {
		t.Errorf("memory-bound %f exceeds back-end %f", td.BackEndMemory, td.BackEnd)
	}
}

func TestMissRateHelpers(t *testing.T) {
	c := Counters{L1DA: 100, L1DM: 10, LLDA: 10, LLDM: 5}
	if got := c.L1MissRate(); got != 0.1 {
		t.Errorf("L1MissRate = %f", got)
	}
	if got := c.LLCMissRate(); got != 0.5 {
		t.Errorf("LLCMissRate = %f", got)
	}
	var zero Counters
	if zero.L1MissRate() != 0 || zero.LLCMissRate() != 0 {
		t.Error("zero counters produced nonzero rates")
	}
}

func TestVectorLength(t *testing.T) {
	c := Counters{Instr: 1, IPC: 2, L1DA: 3, L1DM: 4, LLDA: 5, LLDM: 6}
	v := c.Vector()
	if len(v) != 6 {
		t.Fatalf("Vector length = %d", len(v))
	}
}

func TestAddressSpace(t *testing.T) {
	as := NewAddressSpace()
	a := as.Alloc(100, 64)
	b := as.Alloc(10, 64)
	if a%64 != 0 || b%64 != 0 {
		t.Errorf("allocations unaligned: %x %x", a, b)
	}
	if b <= a || b < a+100 {
		t.Errorf("allocations overlap: %x %x", a, b)
	}
}

func TestNewHierarchyPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config did not panic")
		}
	}()
	NewHierarchy(CacheConfig{}, DefaultLLC)
}
