// Package counters substitutes for the hardware performance counters (perf /
// VTune) the miniGiraffe paper uses for validation (Tables IV and V): a
// set-associative cache-hierarchy simulator plus instruction accounting,
// driven by probes the mapping kernels fire as they touch reads, graph
// sequences, and GBWT records. Counter *ratios* — miss rates, proxy-versus-
// parent deltas, cosine similarity — come from the same access streams the
// real kernels generate, which is what the validation compares.
package counters

// Probe receives kernel events. Kernels accept a nil Probe and skip
// accounting entirely, keeping the fast path unburdened.
type Probe interface {
	// Instr records n retired instructions (a model proxy: base comparisons,
	// rank computations, and bookkeeping all convert to instruction counts).
	Instr(n int64)
	// Access records a sequential data read of size bytes at virtual
	// address addr.
	Access(addr uint64, size int)
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Size     int // total bytes
	LineSize int // bytes per line
	Ways     int // associativity
}

// Valid reports whether the configuration is internally consistent.
func (c CacheConfig) Valid() bool {
	if c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0 {
		return false
	}
	lines := c.Size / c.LineSize
	return lines >= c.Ways && lines%c.Ways == 0
}

// cacheLevel is an LRU set-associative cache.
type cacheLevel struct {
	cfg      CacheConfig
	sets     int
	lineBits uint
	// tags[set*ways + way]; 0 means empty (tags stored as line addr + 1).
	tags []uint64
	// age[set*ways+way] for LRU; a global tick counter provides ordering.
	age      []uint64
	tick     uint64
	accesses int64
	misses   int64
}

func newCacheLevel(cfg CacheConfig) *cacheLevel {
	lines := cfg.Size / cfg.LineSize
	sets := lines / cfg.Ways
	bits := uint(0)
	for 1<<bits < cfg.LineSize {
		bits++
	}
	return &cacheLevel{
		cfg:      cfg,
		sets:     sets,
		lineBits: bits,
		tags:     make([]uint64, lines),
		age:      make([]uint64, lines),
	}
}

// access looks up one line address; returns true on hit and updates LRU.
func (c *cacheLevel) access(lineAddr uint64) bool {
	c.accesses++
	c.tick++
	set := int(lineAddr % uint64(c.sets))
	base := set * c.cfg.Ways
	key := lineAddr + 1
	victim := base
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.tags[i] == key {
			c.age[i] = c.tick
			return true
		}
		if c.age[i] < c.age[victim] {
			victim = i
		}
	}
	c.misses++
	c.tags[victim] = key
	c.age[victim] = c.tick
	return false
}

// Hierarchy is a two-level (L1D + LLC) data-cache model with instruction
// accounting. It implements Probe. Not safe for concurrent use: the mapper
// instruments single-threaded runs, as the paper does for Table V.
type Hierarchy struct {
	l1  *cacheLevel
	llc *cacheLevel
	// instr counts modelled retired instructions.
	instr int64
}

// Default cache geometries follow local-intel (Xeon 8260, Table II): 32 KB
// 8-way L1D and a 35.75 MB LLC modelled at 36 MB 12-way, 64 B lines.
var (
	DefaultL1  = CacheConfig{Size: 32 << 10, LineSize: 64, Ways: 8}
	DefaultLLC = CacheConfig{Size: 36 << 20, LineSize: 64, Ways: 12}
)

// NewHierarchy builds a hierarchy with the given level configurations.
func NewHierarchy(l1, llc CacheConfig) *Hierarchy {
	if !l1.Valid() || !llc.Valid() {
		panic("counters: invalid cache configuration")
	}
	return &Hierarchy{l1: newCacheLevel(l1), llc: newCacheLevel(llc)}
}

// NewDefaultHierarchy builds the local-intel model.
func NewDefaultHierarchy() *Hierarchy { return NewHierarchy(DefaultL1, DefaultLLC) }

// Instr implements Probe.
func (h *Hierarchy) Instr(n int64) { h.instr += n }

// Access implements Probe: the read is split into cache lines; each line is
// looked up in L1D and, on miss, in the LLC.
func (h *Hierarchy) Access(addr uint64, size int) {
	if size <= 0 {
		return
	}
	first := addr >> h.l1.lineBits
	last := (addr + uint64(size) - 1) >> h.l1.lineBits
	for line := first; line <= last; line++ {
		if !h.l1.access(line) {
			h.llc.access(line)
		}
	}
}

// Counters is the measured counter set of Table V.
type Counters struct {
	Instr  int64 // retired instructions (model)
	Cycles int64 // modelled cycles (see CycleModel)
	IPC    float64
	L1DA   int64 // L1D accesses
	L1DM   int64 // L1D misses
	LLDA   int64 // LLC data accesses
	LLDM   int64 // LLC data misses
}

// CycleModel converts counters to cycles: a superscalar ideal IPC plus
// per-miss penalties. Constants approximate a Cascade Lake core.
type CycleModel struct {
	IdealIPC      float64
	L1MissCycles  float64 // L1 miss, LLC hit
	LLCMissCycles float64 // full memory access
	FrontEndFrac  float64 // front-end stall share (of retiring slots)
	BadSpecFrac   float64 // bad-speculation share (of retiring slots)
	CoreBoundFrac float64 // non-memory back-end share (ports, dividers)
}

// DefaultCycleModel is calibrated so the A-human workload reproduces the
// Table IV top-down split (≈23.5/22.8/10.2/43.4).
var DefaultCycleModel = CycleModel{
	IdealIPC:      2.4,
	L1MissCycles:  14,
	LLCMissCycles: 120,
	FrontEndFrac:  0.225,
	BadSpecFrac:   0.098,
	CoreBoundFrac: 0.10,
}

// Snapshot computes the counter set under the given cycle model.
func (h *Hierarchy) Snapshot(m CycleModel) Counters {
	c := Counters{
		Instr: h.instr,
		L1DA:  h.l1.accesses,
		L1DM:  h.l1.misses,
		LLDA:  h.llc.accesses,
		LLDM:  h.llc.misses,
	}
	ideal := float64(c.Instr) / m.IdealIPC
	stalls := float64(c.L1DM)*m.L1MissCycles + float64(c.LLDM)*m.LLCMissCycles
	fe := ideal * m.FrontEndFrac / 0.434
	bs := ideal * m.BadSpecFrac / 0.434
	core := ideal * m.CoreBoundFrac / 0.434
	c.Cycles = int64(ideal + stalls + fe + bs + core)
	if c.Cycles > 0 {
		c.IPC = float64(c.Instr) / float64(c.Cycles)
	}
	return c
}

// L1MissRate returns L1DM/L1DA.
func (c Counters) L1MissRate() float64 {
	if c.L1DA == 0 {
		return 0
	}
	return float64(c.L1DM) / float64(c.L1DA)
}

// LLCMissRate returns LLDM/LLDA.
func (c Counters) LLCMissRate() float64 {
	if c.LLDA == 0 {
		return 0
	}
	return float64(c.LLDM) / float64(c.LLDA)
}

// Vector flattens the counters for cosine-similarity comparison, the metric
// the paper borrows from Richards et al. to quantify proxy fidelity.
func (c Counters) Vector() []float64 {
	return []float64{
		float64(c.Instr), c.IPC,
		float64(c.L1DA), float64(c.L1DM),
		float64(c.LLDA), float64(c.LLDM),
	}
}

// TopDown is the four-bucket Top-Down Microarchitecture Analysis split
// (Table IV), as fractions of pipeline slots.
type TopDown struct {
	FrontEnd      float64
	BackEnd       float64
	BackEndMemory float64 // second-level: memory-bound share of back-end
	BadSpec       float64
	Retiring      float64
}

// TopDownSplit derives the top-down buckets from the counters under the
// cycle model: retiring = ideal cycles / total, back-end from miss stalls,
// front-end and bad-speculation from the model's per-instruction fractions.
func (c Counters) TopDownSplit(m CycleModel) TopDown {
	if c.Cycles == 0 {
		return TopDown{}
	}
	total := float64(c.Cycles)
	ideal := float64(c.Instr) / m.IdealIPC
	mem := float64(c.L1DM)*m.L1MissCycles + float64(c.LLDM)*m.LLCMissCycles
	fe := ideal * m.FrontEndFrac / 0.434
	bs := ideal * m.BadSpecFrac / 0.434
	// The core-bound share lands in BackEnd via the remainder below.
	td := TopDown{
		FrontEnd: fe / total,
		BadSpec:  bs / total,
		Retiring: ideal / total,
	}
	td.BackEnd = 1 - td.FrontEnd - td.BadSpec - td.Retiring
	if td.BackEnd < 0 {
		td.BackEnd = 0
	}
	if td.BackEnd > 0 {
		memFrac := mem / total
		if memFrac > td.BackEnd {
			memFrac = td.BackEnd
		}
		td.BackEndMemory = memFrac
	}
	return td
}

// AddressSpace hands out virtual address ranges so kernels can give the
// cache model realistic, stable addresses for reads, node sequences, and
// GBWT records.
type AddressSpace struct {
	next uint64
}

// NewAddressSpace starts allocation at a non-zero base.
func NewAddressSpace() *AddressSpace { return &AddressSpace{next: 0x10000} }

// Alloc reserves size bytes aligned to align (a power of two) and returns
// the base address.
func (a *AddressSpace) Alloc(size int, align int) uint64 {
	if align > 0 {
		mask := uint64(align - 1)
		a.next = (a.next + mask) &^ mask
	}
	base := a.next
	a.next += uint64(size)
	return base
}
