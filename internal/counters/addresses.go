package counters

// Virtual-address conventions shared by the instrumented kernels. Each data
// structure class lives in its own region; within a region, layout follows
// the real structures' locality (consecutive node ids are adjacent, a read's
// bases are contiguous) so the cache model sees realistic access streams.
const (
	// RegionReads holds read bases: read i's bases start at
	// RegionReads + i*ReadStride.
	RegionReads uint64 = 0x1000_0000_0000
	// RegionSeeds holds seed records: read i's seed j lives at
	// RegionSeeds + i*SeedRowStride + j*SeedSize.
	RegionSeeds uint64 = 0x2000_0000_0000
	// RegionGraph holds node sequences: node v's bases start at
	// RegionGraph + v*NodeStride.
	RegionGraph uint64 = 0x3000_0000_0000
	// RegionGBWT holds decompressed GBWT records at
	// RegionGBWT + v*RecordStride.
	RegionGBWT uint64 = 0x4000_0000_0000
	// RegionCache holds the CachedGBWT hash table.
	RegionCache uint64 = 0x5000_0000_0000
)

// Strides within the regions (bytes).
const (
	ReadStride    = 256 // max short-read length, rounded
	SeedRowStride = 1024
	SeedSize      = 16
	NodeStride    = 32 // average node label length in the synthetic graphs
	RecordStride  = 48 // average decompressed record footprint
)

// ReadAddr returns the virtual address of base `off` of read `read`.
func ReadAddr(read int, off int32) uint64 {
	return RegionReads + uint64(read)*ReadStride + uint64(off)
}

// SeedAddr returns the virtual address of seed `seed` of read `read`.
func SeedAddr(read, seed int) uint64 {
	return RegionSeeds + uint64(read)*SeedRowStride + uint64(seed)*SeedSize
}

// NodeSeqAddr returns the virtual address of base `off` of node v's label.
func NodeSeqAddr(node uint32, off int32) uint64 {
	return RegionGraph + uint64(node)*NodeStride + uint64(off)
}

// RecordAddr returns the virtual address of node v's decompressed record.
func RecordAddr(node uint32) uint64 {
	return RegionGBWT + uint64(node)*RecordStride
}

// RegionGBWTRev holds the reverse-orientation GBWT records (the second half
// of the bidirectional index).
const RegionGBWTRev uint64 = 0x6000_0000_0000

// RecordRevAddr returns the virtual address of node v's decompressed
// reverse-index record.
func RecordRevAddr(node uint32) uint64 {
	return RegionGBWTRev + uint64(node)*RecordStride
}
