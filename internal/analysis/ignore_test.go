package analysis_test

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// dummy builds an analyzer that reports every call to a function whose name
// starts with "bad".
func dummy(name string) *analysis.Analyzer {
	a := &analysis.Analyzer{Name: name, Doc: "test analyzer"}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok {
					if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && strings.HasPrefix(fn.Name(), "bad") {
						pass.Reportf(call.Pos(), "call to %s", fn.Name())
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// lineOf locates a marker substring in the fixture so the test does not
// hardcode line numbers.
func lineOf(t *testing.T, path, marker string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range strings.Split(string(data), "\n") {
		if strings.Contains(l, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not found in %s", marker, path)
	return 0
}

func TestIgnoreDirectives(t *testing.T) {
	const fixture = "testdata/ignorefix/a.go"
	pkg, err := analysis.LoadDir("testdata/ignorefix")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*analysis.Analyzer{dummy("dummyA"), dummy("dummyB")}
	diags, err := analysis.RunWith(analysis.RunOptions{StaleIgnores: true},
		[]*analysis.Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	got := make(map[string]string) // "line/analyzer" → message
	for _, d := range diags {
		key := fmt.Sprintf("%d/%s", d.Pos.Line, d.Analyzer)
		if prev, dup := got[key]; dup {
			t.Errorf("duplicate diagnostic at %s: %q and %q", key, prev, d.Message)
		}
		got[key] = d.Message
	}

	want := map[string]string{
		// Trailing and preceding directives suppress dummyA but not dummyB.
		fmt.Sprintf("%d/dummyB", lineOf(t, fixture, "trailing placement")):  "call to bad",
		fmt.Sprintf("%d/dummyB", lineOf(t, fixture, "preceding placement")): "call to bad",
		// One directive, two analyzers: both suppressed, nothing expected.
		// A directive naming only dummyA leaves dummyB's finding alone.
		fmt.Sprintf("%d/dummyB", lineOf(t, fixture, "dummyB still fires")): "call to bad",
		// A directive matching no diagnostic is stale; an unknown analyzer
		// name is reported even though it can never match.
		fmt.Sprintf("%d/vetgiraffe", lineOf(t, fixture, "matches nothing")):       "stale ignore directive",
		fmt.Sprintf("%d/vetgiraffe", lineOf(t, fixture, "unknown analyzer name")): "unknown analyzer dummyC",
	}
	// "preceding placement" marker is on the directive line; dummyB reports
	// on the call line below it.
	delete(want, fmt.Sprintf("%d/dummyB", lineOf(t, fixture, "preceding placement")))
	want[fmt.Sprintf("%d/dummyB", lineOf(t, fixture, "preceding placement")+1)] = "call to bad"

	for key, substr := range want {
		msg, ok := got[key]
		if !ok {
			t.Errorf("missing diagnostic %s (want message containing %q); got %v", key, substr, got)
			continue
		}
		if !strings.Contains(msg, substr) {
			t.Errorf("diagnostic %s = %q, want containing %q", key, msg, substr)
		}
		delete(got, key)
	}
	for key, msg := range got {
		t.Errorf("unexpected diagnostic %s: %q", key, msg)
	}
}

// TestIgnoreDirectivesQuiet checks that stale reporting is off by default:
// the same fixture under plain Run yields only the unsuppressed findings.
func TestIgnoreDirectivesQuiet(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/ignorefix")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{dummy("dummyA"), dummy("dummyB")})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == "vetgiraffe" {
			t.Errorf("stale-directive diagnostic without StaleIgnores: %s", d)
		}
	}
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3 (dummyB at trailing, preceding, onlyA): %v", len(diags), diags)
	}
}
