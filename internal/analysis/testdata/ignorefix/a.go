// Fixture for ignore-directive edge cases: suppression from the same line
// and from the line above, one directive naming several analyzers, stale
// directives, and directives naming analyzers that do not exist. The dummy
// analyzers report every call to a function whose name starts with "bad".
package ignorefix

func bad() {}

func ok() {}

func trailing() {
	bad() //vetgiraffe:ignore dummyA trailing placement
}

func preceding() {
	//vetgiraffe:ignore dummyA preceding placement
	bad()
}

func both() {
	bad() //vetgiraffe:ignore dummyA,dummyB one directive, two analyzers
}

func onlyA() {
	bad() //vetgiraffe:ignore dummyA dummyB still fires here
}

func stale() {
	//vetgiraffe:ignore dummyA matches nothing
	ok()
}

func typo() {
	//vetgiraffe:ignore dummyC unknown analyzer name
	ok()
}
