package tracepair_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/tracepair"
)

func TestTracePair(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", tracepair.Analyzer)
}
