// Package tracepair checks that every trace region begun is also ended:
// the result of (*trace.Recorder).Begin is the region's end function, and a
// begun region that never ends silently corrupts the per-thread span data
// behind the paper's Figure 2/3 regeneration — timings look plausible but the
// open region's duration is simply missing.
//
// Accepted patterns, per function:
//
//	defer r.Begin(w, region)()            // deferred end, covers all paths
//	end := r.Begin(w, region)             // ... later: defer end()
//	end := r.Begin(w, region); ...; end() // with no return before end()
//
// Reported: discarding the end function (expression statement or blank
// assignment), never invoking it, and any return statement between Begin and
// the first end() call (an early return leaves the region open — use defer).
package tracepair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the tracepair check.
var Analyzer = &analysis.Analyzer{
	Name: "tracepair",
	Doc: "report trace regions begun via (*trace.Recorder).Begin whose end " +
		"function is discarded, never called, or skipped by an early return",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc analyzes one function body. Nested function literals are skipped;
// ast.Inspect in run visits them as functions in their own right.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Walk the body once, classifying every Begin call by its syntactic
	// context and collecting the statements needed for the path check.
	deferred := make(map[*ast.CallExpr]bool)  // Begin calls invoked under defer
	immediate := make(map[*ast.CallExpr]bool) // r.Begin(...)() — begins and ends in place
	type binding struct {
		begin *ast.CallExpr
		obj   types.Object
	}
	var bindings []binding
	bound := make(map[*ast.CallExpr]bool)
	var returns []*ast.ReturnStmt
	var begins []*ast.CallExpr

	walkShallow(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.DeferStmt:
			if inner, ok := s.Call.Fun.(*ast.CallExpr); ok && isBeginCall(pass, inner) {
				deferred[inner] = true
			}
		case *ast.CallExpr:
			if isBeginCall(pass, s) {
				begins = append(begins, s)
			} else if inner, ok := s.Fun.(*ast.CallExpr); ok && isBeginCall(pass, inner) {
				immediate[inner] = true
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 || len(s.Lhs) != 1 {
				return
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isBeginCall(pass, call) {
				return
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return
			}
			bound[call] = true
			if id.Name == "_" {
				bindings = append(bindings, binding{begin: call}) // discarded
				return
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			bindings = append(bindings, binding{begin: call, obj: obj})
		case *ast.ReturnStmt:
			returns = append(returns, s)
		}
	})

	for _, b := range bindings {
		if b.obj == nil {
			pass.Reportf(b.begin.Pos(),
				"result of Begin discarded: the trace region never ends")
			continue
		}
		endDeferred, firstCall := endUses(pass, body, b.obj)
		if endDeferred {
			continue // defer covers every return path
		}
		if firstCall == token.NoPos {
			pass.Reportf(b.begin.Pos(),
				"end function %s for this trace region is never called", b.obj.Name())
			continue
		}
		for _, ret := range returns {
			if ret.Pos() > b.begin.Pos() && ret.Pos() < firstCall {
				pass.Reportf(ret.Pos(),
					"return leaves the trace region begun at %s open: call %s() first or use defer",
					pass.Posn(b.begin.Pos()), b.obj.Name())
			}
		}
	}

	for _, call := range begins {
		if deferred[call] || immediate[call] || bound[call] {
			continue
		}
		if isExprStmt(body, call) {
			pass.Reportf(call.Pos(),
				"result of Begin discarded: the trace region never ends")
		}
		// Other contexts (argument, return value, struct field) escape this
		// function; the pairing cannot be decided locally.
	}
}

// endUses scans for invocations of the end-function variable obj: whether it
// is ever deferred, and the position of its first direct call.
func endUses(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) (deferredEnd bool, firstCall token.Pos) {
	firstCall = token.NoPos
	walkShallow(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.DeferStmt:
			if id, ok := s.Call.Fun.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				deferredEnd = true
			}
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				if firstCall == token.NoPos || s.Pos() < firstCall {
					firstCall = s.Pos()
				}
			}
		}
	})
	return deferredEnd, firstCall
}

// isExprStmt reports whether call appears as a bare expression statement
// anywhere in body.
func isExprStmt(body *ast.BlockStmt, call *ast.CallExpr) (found bool) {
	walkShallow(body, func(n ast.Node) {
		if es, ok := n.(*ast.ExprStmt); ok && es.X == call {
			found = true
		}
	})
	return found
}

// walkShallow visits every node in body except the interiors of nested
// function literals.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// isBeginCall reports whether call invokes (*trace.Recorder).Begin from the
// project's trace package.
func isBeginCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Begin" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Recorder" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/trace")
}
