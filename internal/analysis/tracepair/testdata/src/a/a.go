// Fixture for the tracepair analyzer: every trace region begun must end on
// all return paths.
package a

import "repro/internal/trace"

func deferredInline(r *trace.Recorder) {
	defer r.Begin(0, trace.RegionExtend)()
}

func deferredVar(r *trace.Recorder) int {
	end := r.Begin(0, trace.RegionCluster)
	defer end()
	return 1
}

func straightLine(r *trace.Recorder, n int) int {
	end := r.Begin(0, trace.RegionEmit)
	v := n * 2
	end()
	return v
}

func guarded(r *trace.Recorder, on bool, n int) int {
	var end func()
	if on {
		end = r.Begin(0, trace.RegionIngest)
	}
	v := n + 1
	if end != nil {
		end()
	}
	return v
}

func discarded(r *trace.Recorder) {
	r.Begin(0, trace.RegionAlign) // want `result of Begin discarded`
}

func blankAssigned(r *trace.Recorder) {
	_ = r.Begin(0, trace.RegionAlign) // want `result of Begin discarded`
}

func neverCalled(r *trace.Recorder) {
	end := r.Begin(0, trace.RegionAlign) // want `never called`
	_ = end
}

func earlyReturn(r *trace.Recorder, n int) int {
	end := r.Begin(0, trace.RegionAlign)
	if n < 0 {
		return 0 // want `return leaves the trace region`
	}
	end()
	return n
}

func nestedLiteral(r *trace.Recorder) func() {
	return func() {
		end := r.Begin(0, trace.RegionAlign) // want `never called`
		_ = end
	}
}
