// Package atomicmix flags struct fields that are accessed through
// sync/atomic somewhere in a package but read or written plainly elsewhere —
// the exact bug class fixed in internal/distindex (PR 1), where a counter
// was atomically incremented on one path and non-atomically read on another.
// Mixed access makes the atomic side pointless: the plain side still races.
//
// The check is package-scoped: a field is "atomic" if any `&x.f` in the
// package is passed to an atomic read-modify-write, load, or store. Plain
// accesses of such a field are reported unless suppressed with
// `//vetgiraffe:ignore atomicmix` (legitimate, e.g., after every goroutine
// has joined).
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomicmix check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "report non-atomic accesses to struct fields that are accessed " +
		"atomically elsewhere in the package",
	Run: run,
}

// atomicFuncs are the sync/atomic functions whose first argument is the
// address being accessed atomically.
var atomicFuncs = map[string]bool{}

func init() {
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		for _, ty := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			atomicFuncs[op+ty] = true
		}
	}
}

func run(pass *analysis.Pass) error {
	// First pass: find fields whose address feeds sync/atomic calls, plus
	// the selector nodes that constitute those atomic accesses. Selectors
	// under any & are excluded from the second pass: an address that escapes
	// to a helper cannot be classified here.
	atomicAt := make(map[*types.Var]token.Pos)
	atomicOperand := make(map[*ast.SelectorExpr]bool)
	addressed := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if sel, ok := unparen(ue.X).(*ast.SelectorExpr); ok {
					addressed[sel] = true
				}
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			ue, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				return true
			}
			sel, ok := unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fld := fieldOf(pass, sel); fld != nil {
				if _, seen := atomicAt[fld]; !seen {
					atomicAt[fld] = sel.Pos()
				}
				atomicOperand[sel] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil
	}

	// Second pass: every other selection of those fields is a mixed access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicOperand[sel] || addressed[sel] {
				return true
			}
			fld := fieldOf(pass, sel)
			if fld == nil {
				return true
			}
			if at, ok := atomicAt[fld]; ok {
				pass.Reportf(sel.Pos(),
					"non-atomic access to field %s, which is accessed atomically at %s",
					fld.Name(), pass.Posn(at))
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a tracked sync/atomic function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return atomicFuncs[fn.Name()]
}

// fieldOf resolves sel to a struct field, or nil.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
