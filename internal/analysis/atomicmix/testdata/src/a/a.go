// Fixture for the atomicmix analyzer: mixed atomic/non-atomic access to the
// same struct field must be reported (the internal/distindex PR 1 bug class).
package a

import "sync/atomic"

type counterSet struct {
	hits  int64
	total int64 // never accessed atomically: plain access is fine
}

func (c *counterSet) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counterSet) snapshot() (int64, int64) {
	return c.hits, c.total // want `non-atomic access to field hits`
}

func (c *counterSet) reset() {
	c.hits = 0 // want `non-atomic access to field hits`
	c.total = 0
}

func (c *counterSet) increment() {
	c.hits++ // want `non-atomic access to field hits`
}

func (c *counterSet) loadOK() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counterSet) casOK(old, new int64) bool {
	return atomic.CompareAndSwapInt64(&c.hits, old, new)
}

func (c *counterSet) drained() int64 {
	return c.hits //vetgiraffe:ignore atomicmix read after all workers joined
}

// newCounterSet uses a composite literal: initialization before the value is
// shared is not a mixed access.
func newCounterSet() *counterSet {
	return &counterSet{hits: 0, total: 0}
}

// escape passes the field's address to a helper; classification is left to
// the helper's own package pass.
func (c *counterSet) escape(f func(*int64)) {
	f(&c.hits)
}
