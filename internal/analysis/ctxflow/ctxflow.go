// Package ctxflow enforces context and stop-flag threading on the request
// path. The serving stack (internal/serve → pipeline.Session →
// core.Mapper.MapBatchUntil) is cooperative: cancellation arrives as a
// context.Context at the HTTP boundary and travels inward as a derived
// context or an *atomic.Bool stop flag. A function that swaps the incoming
// context for a fresh context.Background(), or passes a nil stop flag while
// holding a cancellation source, silently severs that chain — requests keep
// mapping after the client is gone.
//
// Three rules:
//
//  1. context.Background() / context.TODO() are legal only in package main
//     and test files. Everywhere else the context must come in as a
//     parameter.
//  2. In a function that receives a context.Context (or an *http.Request,
//     whose Context method is the boundary source), every context-typed
//     call argument must be derived from an incoming one — the parameter
//     itself, or a value assigned (transitively) from it, e.g.
//     context.WithTimeout(r.Context(), d).
//  3. In a function holding a stop source (a context.Context or
//     *atomic.Bool parameter), passing a literal nil where a callee expects
//     an *atomic.Bool drops the chain. Functions with no source — the
//     batch-mode MapBatch wrapper — may pass nil freely.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the context/stop-flag threading check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "require request-path functions to thread their incoming " +
		"context.Context / *atomic.Bool stop flag; restrict " +
		"context.Background and context.TODO to main and tests",
	Run: run,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		file := pass.Fset.Position(f.Pos()).Filename
		exempt := isMain || strings.HasSuffix(file, "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, exempt)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, exempt bool) {
	tracked := trackedObjects(pass, fd)
	hasCtx := len(tracked) > 0
	hasStopSource := hasCtx || hasAtomicBoolParam(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// Rule 1: Background/TODO creation.
		if name, isBg := backgroundCall(pass, call); isBg && !exempt {
			pass.Reportf(call.Pos(), "call to context.%s outside package main or a test file: thread the caller's context instead", name)
		}

		sig := callSignature(pass, call)
		for i, arg := range call.Args {
			pt := paramType(sig, i)

			// Rule 2: context-typed arguments must derive from an incoming
			// context. Direct Background/TODO arguments are rule 1's finding
			// unless this file is exempt from it.
			if tv, ok := pass.TypesInfo.Types[arg]; ok && isContextType(tv.Type) && hasCtx {
				if _, isBg := backgroundCall(pass, argCall(arg)); isBg {
					if exempt {
						pass.Reportf(arg.Pos(), "%s passes a fresh context despite its incoming context", fd.Name.Name)
					}
				} else if !mentionsTracked(pass, tracked, arg) {
					pass.Reportf(arg.Pos(), "%s passes a context not derived from its incoming context", fd.Name.Name)
				}
			}

			// Rule 3: literal nil where the callee expects *atomic.Bool.
			if hasStopSource && pt != nil && isAtomicBoolPtr(pt) {
				if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
					pass.Reportf(arg.Pos(), "%s passes a nil stop flag despite holding a cancellation source", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// trackedObjects seeds the derived-context set with every context.Context
// and *http.Request parameter (of the declaration and any function literals
// inside it), then closes it over local assignments: an assignment whose
// right-hand side mentions a tracked object marks its context-typed
// left-hand idents tracked too.
func trackedObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	tracked := make(map[types.Object]bool)
	seedFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if isContextType(obj.Type()) || isRequestPtr(obj.Type()) {
					tracked[obj] = true
				}
			}
		}
	}
	seedFields(fd.Type.Params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			seedFields(lit.Type.Params)
		}
		return true
	})
	if len(tracked) == 0 {
		return tracked
	}

	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			derives := false
			for _, rhs := range as.Rhs {
				if mentionsTracked(pass, tracked, rhs) {
					derives = true
					break
				}
			}
			if !derives {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil && isContextType(obj.Type()) && !tracked[obj] {
					tracked[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return tracked
}

// mentionsTracked reports whether expr references any tracked object —
// `ctx`, `r.Context()`, `context.WithTimeout(ctx, d)` all do.
func mentionsTracked(pass *analysis.Pass, tracked map[types.Object]bool, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && tracked[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// backgroundCall reports whether call is context.Background() or
// context.TODO(), returning the name.
func backgroundCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if call == nil {
		return "", false
	}
	fn, _, ok := analysis.ResolveCallee(pass.TypesInfo, call)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

// argCall unwraps an argument to a call expression, or nil.
func argCall(arg ast.Expr) *ast.CallExpr {
	call, _ := ast.Unparen(arg).(*ast.CallExpr)
	return call
}

// callSignature resolves the static signature of the called value.
func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramType returns the type of the i-th parameter, unwrapping variadics.
func paramType(sig *types.Signature, i int) types.Type {
	if sig == nil {
		return nil
	}
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

func hasAtomicBoolParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isAtomicBoolPtr(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

func isAtomicBoolPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Bool"
}
