// Fixture for the ctxflow analyzer: context threading, Background/TODO
// restrictions, and nil stop flags, in a non-main non-test package.
package a

import (
	"context"
	"net/http"
	"sync/atomic"
)

func takesCtx(ctx context.Context) { _ = ctx }

func work(recs []int, stop *atomic.Bool) { _, _ = recs, stop }

var global context.Context

func background() {
	takesCtx(context.Background()) // want `call to context.Background outside package main or a test file`
}

func todo() {
	takesCtx(context.TODO()) // want `call to context.TODO outside package main or a test file`
}

func threads(ctx context.Context) {
	c, cancel := context.WithTimeout(ctx, 0)
	defer cancel()
	takesCtx(c)
}

func handler(w http.ResponseWriter, r *http.Request) {
	_ = w
	takesCtx(r.Context())
}

func swapsForBackground(ctx context.Context) {
	takesCtx(context.Background()) // want `call to context.Background outside package main or a test file`
}

func passesUnrelated(ctx context.Context) {
	takesCtx(global) // want `passesUnrelated passes a context not derived from its incoming context`
}

func dropsStop(ctx context.Context, recs []int) {
	work(recs, nil) // want `dropsStop passes a nil stop flag despite holding a cancellation source`
}

func forwardsStop(recs []int, stop *atomic.Bool) {
	work(recs, stop)
}

func noSource(recs []int) {
	work(recs, nil) // batch mode: no cancellation source, nil is legal
}

func suppressed() {
	takesCtx(context.Background()) //vetgiraffe:ignore ctxflow fixture-justified background use
}

func viaClosure(ctx context.Context) {
	f := func(inner context.Context) {
		takesCtx(inner)
	}
	f(ctx)
}
