// Fixture: package main may create root contexts, but swapping an incoming
// context for a fresh one is still reported.
package main

import "context"

func takesCtx(ctx context.Context) { _ = ctx }

func main() {
	takesCtx(context.Background())
}

func helperDrops(ctx context.Context) {
	takesCtx(context.Background()) // want `helperDrops passes a fresh context despite its incoming context`
}
