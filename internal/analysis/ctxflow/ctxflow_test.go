package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", ctxflow.Analyzer)
}

func TestCtxFlowMainExempt(t *testing.T) {
	analysistest.Run(t, "testdata/src/mainexempt", ctxflow.Analyzer)
}
