// Package metricname checks that every metric and trace-region name is a
// compile-time constant: the name argument of (*obs.Registry).Counter,
// Gauge, and Histogram, and the region argument of (*trace.Recorder).Begin
// and Record. Scrapes, manifests, and the Perfetto exporter all aggregate by
// name, so a name assembled at runtime (fmt.Sprintf, concatenation with a
// variable, a loop index) silently explodes the metric cardinality — every
// distinct string becomes its own time series — and defeats the grep-ability
// of the internal/obs/metrics.go catalogue. Constant expressions (string
// literals, named constants, and concatenations of constants) are accepted.
//
// Two stricter rules ride on top:
//
//   - pprof label keys (the even-position arguments of runtime/pprof.Labels)
//     must be named constants, not bare literals: cmd/profdiff groups
//     profile samples by key, so an ad-hoc key string silently splits the
//     stage/worker breakdown away from the obs.Label* taxonomy.
//   - runtime_* metric names must be named constants for the same reason:
//     the runtime-telemetry catalogue lives in internal/obs/metrics.go, and
//     a bare "runtime_..." literal elsewhere would fragment it invisibly.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the metricname check.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "report metric or trace-region names that are not compile-time " +
		"constants (obs Registry lookups and trace Begin/Record regions)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPprofLabels(pass, call) {
				// Keys are the even-position arguments of the flat
				// key/value list; values are unconstrained.
				for i := 0; i < len(call.Args); i += 2 {
					if !isNamedConst(pass, call.Args[i]) {
						pass.Reportf(call.Args[i].Pos(),
							"pprof label key must be a named constant (the obs.Label* taxonomy): "+
								"profdiff groups samples by key, so an ad-hoc key splits the breakdown")
					}
				}
				return true
			}
			idx, what := nameArg(pass, call)
			if idx < 0 || idx >= len(call.Args) {
				return true
			}
			arg := call.Args[idx]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil {
				pass.Reportf(arg.Pos(),
					"%s name must be a string literal or named constant, not a runtime value: "+
						"dynamic names explode scrape cardinality (declare it in internal/obs/metrics.go or internal/trace)",
					what)
				return true
			}
			// Constant-foldable. runtime_* names additionally must be named
			// constants so the runtime-telemetry catalogue stays in one place.
			if strings.HasPrefix(constant.StringVal(tv.Value), "runtime_") && !isNamedConst(pass, arg) {
				pass.Reportf(arg.Pos(),
					"runtime_* %s name must be a named constant from internal/obs/metrics.go, not a bare literal: "+
						"the runtime-telemetry catalogue must not fragment", what)
			}
			return true
		})
	}
	return nil
}

// isPprofLabels reports whether call is runtime/pprof.Labels.
func isPprofLabels(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Labels" || fn.Pkg() == nil || fn.Pkg().Path() != "runtime/pprof" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isNamedConst reports whether expr is a reference to a declared string
// constant (pkg.Name or a local identifier) — stricter than constant
// foldability, which also admits bare literals and concatenations.
func isNamedConst(pass *analysis.Pass, expr ast.Expr) bool {
	for {
		p, ok := expr.(*ast.ParenExpr)
		if !ok {
			break
		}
		expr = p.X
	}
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	_, ok := pass.TypesInfo.Uses[id].(*types.Const)
	return ok
}

// nameArg classifies call: the index of its name argument and what kind of
// name it is, or (-1, "") when the call is not one the check covers.
func nameArg(pass *analysis.Pass, call *ast.CallExpr) (int, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return -1, ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return -1, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return -1, ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return -1, ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return -1, ""
	}
	switch {
	case obj.Name() == "Registry" && strings.HasSuffix(obj.Pkg().Path(), "internal/obs"):
		switch fn.Name() {
		case "Counter", "Gauge", "Histogram":
			return 0, "metric"
		}
	case obj.Name() == "Recorder" && strings.HasSuffix(obj.Pkg().Path(), "internal/trace"):
		switch fn.Name() {
		case "Begin", "Record":
			return 1, "trace region"
		}
	case obj.Name() == "ReqTrace" && strings.HasSuffix(obj.Pkg().Path(), "internal/obs"):
		// Request-span names feed the same aggregations (Perfetto tracks,
		// /traces, loadgen's decomposition) — the catalogue lives in the
		// Span* constants of internal/obs/reqtrace.go.
		if fn.Name() == "AddSpan" {
			return 0, "request span"
		}
	}
	return -1, ""
}
