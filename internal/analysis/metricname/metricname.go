// Package metricname checks that every metric and trace-region name is a
// compile-time constant: the name argument of (*obs.Registry).Counter,
// Gauge, and Histogram, and the region argument of (*trace.Recorder).Begin
// and Record. Scrapes, manifests, and the Perfetto exporter all aggregate by
// name, so a name assembled at runtime (fmt.Sprintf, concatenation with a
// variable, a loop index) silently explodes the metric cardinality — every
// distinct string becomes its own time series — and defeats the grep-ability
// of the internal/obs/metrics.go catalogue. Constant expressions (string
// literals, named constants, and concatenations of constants) are accepted.
package metricname

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the metricname check.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "report metric or trace-region names that are not compile-time " +
		"constants (obs Registry lookups and trace Begin/Record regions)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			idx, what := nameArg(pass, call)
			if idx < 0 || idx >= len(call.Args) {
				return true
			}
			arg := call.Args[idx]
			if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
				return true // constant-foldable: literal or named constant
			}
			pass.Reportf(arg.Pos(),
				"%s name must be a string literal or named constant, not a runtime value: "+
					"dynamic names explode scrape cardinality (declare it in internal/obs/metrics.go or internal/trace)",
				what)
			return true
		})
	}
	return nil
}

// nameArg classifies call: the index of its name argument and what kind of
// name it is, or (-1, "") when the call is not one the check covers.
func nameArg(pass *analysis.Pass, call *ast.CallExpr) (int, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return -1, ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return -1, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return -1, ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return -1, ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return -1, ""
	}
	switch {
	case obj.Name() == "Registry" && strings.HasSuffix(obj.Pkg().Path(), "internal/obs"):
		switch fn.Name() {
		case "Counter", "Gauge", "Histogram":
			return 0, "metric"
		}
	case obj.Name() == "Recorder" && strings.HasSuffix(obj.Pkg().Path(), "internal/trace"):
		switch fn.Name() {
		case "Begin", "Record":
			return 1, "trace region"
		}
	case obj.Name() == "ReqTrace" && strings.HasSuffix(obj.Pkg().Path(), "internal/obs"):
		// Request-span names feed the same aggregations (Perfetto tracks,
		// /traces, loadgen's decomposition) — the catalogue lives in the
		// Span* constants of internal/obs/reqtrace.go.
		if fn.Name() == "AddSpan" {
			return 0, "request span"
		}
	}
	return -1, ""
}
