// Fixture for the metricname analyzer: metric, trace-region, and request-span
// names must be compile-time constants.
package a

import (
	"fmt"
	"runtime/pprof"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

const localMetric = "local_metric_total"

func literals(reg *obs.Registry) {
	reg.Counter("reads_total").Inc(0)
	reg.Gauge("in_flight").Set(0, 1)
	reg.Histogram("latency_seconds").Observe(0, time.Millisecond)
}

func namedConstants(reg *obs.Registry) {
	reg.Counter(obs.MetricPipelineReads).Inc(0)
	reg.Counter(localMetric).Inc(0)
	// Concatenating constants still folds at compile time.
	reg.Histogram(localMetric+"_seconds").Observe(0, time.Second)
}

func dynamicMetric(reg *obs.Registry, worker int) {
	reg.Counter(fmt.Sprintf("worker_%d_reads", worker)).Inc(worker) // want `metric name must be a string literal or named constant`
	name := "gauge_" + fmt.Sprint(worker)
	reg.Gauge(name).Set(worker, 1) // want `metric name must be a string literal or named constant`
}

func dynamicHistogram(reg *obs.Registry, stage string) {
	reg.Histogram("stage_"+stage).Observe(0, time.Second) // want `metric name must be a string literal or named constant`
}

func traceRegions(r *trace.Recorder, worker int, stage string) {
	end := r.Begin(worker, trace.RegionCluster)
	end()
	r.Record(worker, "fixed_region", time.Now(), time.Millisecond)
	r.Record(worker, stage, time.Now(), time.Millisecond) // want `trace region name must be a string literal or named constant`
	end2 := r.Begin(worker, "region_"+stage)              // want `trace region name must be a string literal or named constant`
	end2()
}

func requestSpans(rt *obs.ReqTrace, worker int, stage string) {
	rt.AddSpan(obs.SpanAdmit, worker, time.Now(), time.Millisecond)
	rt.AddSpan("fixed_span", worker, time.Now(), time.Millisecond)
	rt.AddSpan("span_"+stage, worker, time.Now(), time.Millisecond)   // want `request span name must be a string literal or named constant`
	rt.AddSpan(fmt.Sprintf("span_%d", worker), worker, time.Now(), 0) // want `request span name must be a string literal or named constant`
}

func suppressed(reg *obs.Registry, name string) {
	reg.Counter(name).Inc(0) //vetgiraffe:ignore metricname fixture exercises the suppression path
}

const localLabelKey = "stage"

func pprofLabelKeys(class string) {
	_ = pprof.Labels(obs.LabelStage, "map", obs.LabelRequestClass, class)
	_ = pprof.Labels(localLabelKey, "emit")
	_ = pprof.Labels("stage", "map")                          // want `pprof label key must be a named constant`
	_ = pprof.Labels(obs.LabelStage+"x", "ingest")            // want `pprof label key must be a named constant`
	_ = pprof.Labels(obs.LabelWorker, "0", "ad_hoc_key", "v") // want `pprof label key must be a named constant`
}

func runtimeSeries(reg *obs.Registry) {
	reg.Gauge(obs.MetricRuntimeGoroutines).Set(0, 1)
	reg.Counter(localMetric).Inc(0)
	reg.Gauge("runtime_goroutines").Set(0, 1)          // want `runtime_\* metric name must be a named constant`
	reg.Counter("runtime_" + "gc_cycles_total").Inc(0) // want `runtime_\* metric name must be a named constant`
}
