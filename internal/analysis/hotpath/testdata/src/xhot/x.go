// Fixture hot root: inherits xpkg's effect summaries through serialized
// facts — the blocking lock it reports lives two calls away in another
// package.
package xhot

import "repro/internal/analysis/hotpath/testdata/src/xpkg"

//minigiraffe:hot
func HotRoot() {
	xpkg.Middle() // want `call to \(\*sync.Mutex\).Lock \(blocking\) at x.go:\d+ reachable from hot function HotRoot via xpkg.Middle -> deep`
}

//minigiraffe:hot
func HotCallsForeignHot(ch chan int) {
	xpkg.HotLeaf(ch) // foreign hot callee is policed at its definition: no finding
}
