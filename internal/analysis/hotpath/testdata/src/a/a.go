// Fixture for the hotpath analyzer: blocking and allocating operations
// reachable transitively from //minigiraffe:hot roots, within one package.
package a

import (
	"fmt"
	"sync"
	"time"
)

var mu sync.Mutex

// helper2 is two calls below the hot root.
func helper2(x int) string {
	return fmt.Sprintf("%d", x)
}

// helper1 forwards to helper2.
func helper1(x int) string {
	return helper2(x)
}

//minigiraffe:hot
func hotTransitiveFmt(x int) string {
	return helper1(x) // want `call to fmt.Sprintf at a.go:\d+ reachable from hot function hotTransitiveFmt via helper1 -> helper2`
}

//minigiraffe:hot
func hotDirectBlocking(ch chan int) int {
	mu.Lock() // want `call to \(\*sync.Mutex\).Lock \(blocking\) in hot function hotDirectBlocking`
	v := <-ch // want `channel receive in hot function hotDirectBlocking`
	mu.Unlock()
	return v
}

//minigiraffe:hot
func hotSleep() {
	time.Sleep(time.Millisecond) // want `call to time.Sleep \(blocking/timer\) in hot function hotSleep`
}

// sleeper hides a sleep one call deep.
func sleeper() {
	time.Sleep(time.Millisecond)
}

//minigiraffe:hot
func hotViaSleeper() {
	sleeper() // want `call to time.Sleep \(blocking/timer\) at a.go:\d+ reachable from hot function hotViaSleeper via sleeper`
}

//minigiraffe:hot
func hotSuppressedCall() {
	sleeper() //vetgiraffe:ignore hotpath cold startup path, measured off the clock
}

// lockedHelper's lock is justified at the origin, so no hot caller sees it.
func lockedHelper() {
	mu.Lock() //vetgiraffe:ignore hotpath sub-microsecond critical section
	mu.Unlock()
}

//minigiraffe:hot
func hotViaLockedHelper() {
	lockedHelper()
}

//minigiraffe:hot
func hotLeaf(ch chan int) {
	ch <- 1 // want `channel send in hot function hotLeaf`
}

//minigiraffe:hot
func hotCallsHot(ch chan int) {
	hotLeaf(ch) // hot callee is policed at its own definition: no finding here
}

// mustPositive formats only on the crash path.
func mustPositive(x int) {
	if x < 0 {
		panic(fmt.Sprintf("bad %d", x))
	}
}

//minigiraffe:hot
func hotViaMustPositive(x int) {
	mustPositive(x)
}

// filter takes an interface-typed callback: closures handed to it escape.
func filter(pred any) { _ = pred }

//minigiraffe:hot
func hotEscapingClosure(n int) {
	filter(func(v int) bool { return v > n }) // want `escaping closure capturing n in hot function hotEscapingClosure`
}

// each takes a concrete func parameter: closures stay on the stack.
func each(xs []int, f func(int)) {
	for _, x := range xs {
		f(x)
	}
}

//minigiraffe:hot
func hotConcreteClosure(xs []int, n int) {
	each(xs, func(v int) { _ = v + n }) // concrete func param: no finding
}

//minigiraffe:hot
func hotMapWrite(m map[int]int, k int) {
	m[k] = 1 // want `map assignment \(possible growth\) in hot function hotMapWrite`
}

//minigiraffe:hot
func hotGo(f func()) {
	go f() // want `goroutine spawn in hot function hotGo`
}

//minigiraffe:hot
func hotSelect(a, b chan int) int {
	select { // want `select statement in hot function hotSelect`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
