// Fixture dependency package: its effect summaries are serialized as facts
// and consumed when xhot (which imports it) is analyzed.
package xpkg

import "sync"

var mu sync.Mutex

// deep is two levels below the exported entry point.
func deep() {
	mu.Lock()
	mu.Unlock()
}

// Middle is the exported entry point xhot's hot root calls.
func Middle() {
	deep()
}

//minigiraffe:hot
func HotLeaf(ch chan int) {
	ch <- 1 // want `channel send in hot function HotLeaf`
}
