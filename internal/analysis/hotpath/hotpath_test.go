package hotpath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", hotpath.Analyzer)
}

// TestHotPathCrossPackage loads two real module packages with the full
// loader so xpkg's summaries reach xhot only through serialized facts.
func TestHotPathCrossPackage(t *testing.T) {
	analysistest.RunPkgs(t, ".", hotpath.Analyzer,
		"./testdata/src/xpkg", "./testdata/src/xhot")
}
