// Package hotpath is the whole-program extension of hotalloc: it propagates
// the `//minigiraffe:hot` contract transitively through the static call
// graph. Where hotalloc inspects one annotated body at a time, hotpath
// computes a bottom-up *effect summary* for every declared function —
// blocking operations (channel send/receive/select, mutex locks, sleeps),
// I/O and fmt calls, map growth, escaping closure captures, goroutine
// spawns — folding in its callees' summaries, and exports the summary as a
// Fact on the function's package-level object. When a dependent package is
// analyzed later, its hot roots see everything reachable two, three, or ten
// calls deep across package boundaries.
//
// Conventions (see DESIGN.md):
//
//   - A `//minigiraffe:hot` callee is skipped when summarizing callers: it
//     is policed at its own definition, so effects are reported exactly once.
//   - Dynamic calls through interfaces are not followed; a concrete hot
//     implementation of an interface method must carry its own annotation
//     (core.Mapper.MapBatchUntil behind pipeline.BatchMapper does).
//   - Calls into packages outside the analyzed set resolve against a small
//     table of known-blocking/IO standard-library entry points (sync locks,
//     time.Sleep, fmt, os/io/net/log); anything else external is assumed
//     clean — runtime-internal machinery like slices.SortFunc or
//     sync/atomic does not block.
//   - `panic(fmt.Sprintf(...))` is exempt: the crash path is not a hot path.
//   - Direct in-body fmt calls, string concatenation, and map allocation in
//     a hot function are hotalloc's findings and are not re-reported here;
//     hotpath reports them only when reached through a call.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/hotalloc"
)

// Analyzer is the transitive hot-path check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "report blocking or allocating operations transitively reachable " +
		"from //minigiraffe:hot functions, across package boundaries via facts",
	Run:       run,
	FactTypes: []analysis.Fact{(*EffectsFact)(nil), (*HotFact)(nil)},
}

// Effect kinds. The hotalloc-owned kinds are suppressed for direct (in-body)
// occurrences in hot functions to avoid double reporting.
const (
	kindBlock    = "block"         // chan ops, select, known-blocking calls
	kindFmt      = "fmt"           // hotalloc-owned when direct
	kindIO       = "io"            // os/io/net/log calls
	kindMapAlloc = "map-alloc"     // hotalloc-owned when direct
	kindMapWrite = "map-write"     // assignment may grow the map
	kindConcat   = "string-concat" // hotalloc-owned when direct
	kindClosure  = "closure"       // escaping closure capture
	kindGo       = "goroutine"     // spawn inside a hot region
)

// Effect is one blocking or allocating operation in a function's summary.
type Effect struct {
	Kind string
	// Desc is the human-readable operation, e.g. "channel send" or
	// "call to (*sync.Mutex).Lock (blocking)".
	Desc string
	// Posn locates the operation itself ("file.go:42"), which may be several
	// calls away from where the effect is finally reported.
	Posn string
	// Via is the call chain from the summarized function down to the
	// operation, exclusive of both endpoints.
	Via []string
}

// EffectsFact is a function's transitive effect summary, exported on its
// package-level object so dependent packages inherit it.
type EffectsFact struct{ Effects []Effect }

// AFact marks EffectsFact as a fact.
func (*EffectsFact) AFact() {}

// HotFact marks a function annotated `//minigiraffe:hot`; callers skip its
// summary because it is policed at its own definition.
type HotFact struct{}

// AFact marks HotFact as a fact.
func (*HotFact) AFact() {}

// maxEffects bounds a single function's serialized summary; kernels with
// more findings than this are broken enough that truncation costs nothing.
const maxEffects = 64

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)

	// Locally hot functions: annotation in the doc comment.
	hot := make(map[*types.Func]bool)
	for fn, decl := range g.Decls {
		if isHot(decl) {
			hot[fn] = true
			if _, ok := exportableKey(fn); ok {
				pass.ExportObjectFact(fn, &HotFact{})
			}
		}
	}

	// Direct per-body effects.
	direct := make(map[*types.Func][]Effect, len(g.Decls))
	for fn, decl := range g.Decls {
		direct[fn] = collectDirect(pass, decl)
	}

	// Bottom-up summaries over the SCC condensation: a function's summary is
	// its direct effects plus, per call site, the callee's summary (skipping
	// hot callees). Members of one SCC see only each other's direct effects,
	// which keeps recursion finite.
	summaries := make(map[*types.Func][]Effect, len(g.Decls))
	for _, comp := range g.BottomUp() {
		inComp := make(map[*types.Func]bool, len(comp))
		for _, fn := range comp {
			inComp[fn] = true
		}
		for _, fn := range comp {
			sum := append([]Effect(nil), direct[fn]...)
			for _, cs := range g.Calls[fn] {
				if pass.Suppressed(cs.Pos) {
					continue
				}
				for _, eff := range calleeEffects(pass, g, hot, summaries, direct, inComp, cs) {
					if len(sum) >= maxEffects {
						break
					}
					sum = append(sum, eff)
				}
			}
			summaries[fn] = dedupe(sum)
		}
	}

	// Export summaries for package-level functions so dependents inherit.
	for fn, sum := range summaries {
		if len(sum) == 0 {
			continue
		}
		if _, ok := exportableKey(fn); ok {
			pass.ExportObjectFact(fn, &EffectsFact{Effects: sum})
		}
	}

	// Report at the hot roots.
	for fn := range hot {
		reportHot(pass, g, hot, summaries, fn)
	}
	return nil
}

// exportableKey reports whether fn can carry facts (package-level function
// or method of a package-level named type).
func exportableKey(fn *types.Func) (string, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil && fn.Parent() != fn.Pkg().Scope() {
		return "", false
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if _, named := t.(*types.Named); !named {
			return "", false
		}
	}
	return fn.Name(), true
}

func isHot(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, hotalloc.HotDirective) {
			return true
		}
	}
	return false
}

// calleeEffects resolves one call site's contribution to the caller's
// summary: nothing for hot or interface callees, the local or imported
// summary for known functions, a table entry for known-blocking externals.
func calleeEffects(pass *analysis.Pass, g *analysis.CallGraph, hot map[*types.Func]bool,
	summaries, direct map[*types.Func][]Effect, inComp map[*types.Func]bool,
	cs analysis.CallSite) []Effect {

	callee := cs.Callee
	if cs.Interface {
		return nil // concrete hot implementations must self-annotate
	}
	if _, local := g.Decls[callee]; local {
		if hot[callee] {
			return nil
		}
		var sub []Effect
		if inComp[callee] {
			sub = direct[callee] // cycle: direct effects only
		} else {
			sub = summaries[callee]
		}
		return inherit(pass, cs, callee, sub)
	}
	// Foreign callee: hot fact → skip; effects fact → inherit. Calls into
	// the known-blocking external table are classified by the *direct*
	// collector (which also applies the panic-path exemption), not here.
	if pass.ImportObjectFact(callee, &HotFact{}) {
		return nil
	}
	var fact EffectsFact
	if pass.ImportObjectFact(callee, &fact) {
		return inherit(pass, cs, callee, fact.Effects)
	}
	return nil
}

// inherit rebases a callee's effects onto the caller: the call chain grows
// by the callee's name and the carrying position becomes the call site.
func inherit(pass *analysis.Pass, cs analysis.CallSite, callee *types.Func, sub []Effect) []Effect {
	if len(sub) == 0 {
		return nil
	}
	label := funcLabel(pass, callee)
	out := make([]Effect, 0, len(sub))
	for _, e := range sub {
		via := make([]string, 0, len(e.Via)+1)
		via = append(via, label)
		via = append(via, e.Via...)
		out = append(out, Effect{Kind: e.Kind, Desc: e.Desc, Posn: e.Posn, Via: via})
	}
	return out
}

// funcLabel names a callee for call chains: package-qualified when foreign.
func funcLabel(pass *analysis.Pass, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// knownExternal classifies calls into packages outside the analyzed set.
func knownExternal(fn *types.Func) (Effect, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return Effect{}, false
	}
	full := fn.FullName()
	switch pkg.Path() {
	case "fmt":
		return Effect{Kind: kindFmt, Desc: "call to " + full}, true
	case "time":
		switch fn.Name() {
		case "Sleep", "After", "Tick", "NewTicker", "NewTimer", "AfterFunc":
			return Effect{Kind: kindBlock, Desc: "call to " + full + " (blocking/timer)"}, true
		}
	case "sync":
		switch fn.Name() {
		case "Lock", "RLock", "Wait", "Do":
			return Effect{Kind: kindBlock, Desc: "call to " + full + " (blocking)"}, true
		}
	case "os", "io", "bufio", "net", "net/http", "log", "syscall":
		return Effect{Kind: kindIO, Desc: "I/O call to " + full}, true
	}
	return Effect{}, false
}

// hotallocOwned reports kinds that hotalloc already reports for direct
// in-body occurrences.
func hotallocOwned(kind string) bool {
	return kind == kindFmt || kind == kindMapAlloc || kind == kindConcat
}

// reportHot emits diagnostics for one hot function: its direct effects (at
// the operation) and everything its call sites reach (at the call site).
func reportHot(pass *analysis.Pass, g *analysis.CallGraph, hot map[*types.Func]bool,
	summaries map[*types.Func][]Effect, fn *types.Func) {

	name := fn.Name()
	decl := g.Decls[fn]
	seen := make(map[string]bool)

	// Direct effects carry their own positions; re-collect to keep them
	// (summaries only keep formatted Posn strings).
	for _, pe := range collectDirectPositioned(pass, decl) {
		if hotallocOwned(pe.eff.Kind) {
			continue
		}
		key := pe.eff.Kind + "|" + pe.eff.Posn + "|" + strings.Join(pe.eff.Via, ">")
		if seen[key] {
			continue
		}
		seen[key] = true
		pass.Reportf(pe.pos, "%s in hot function %s", pe.eff.Desc, name)
	}

	for _, cs := range g.Calls[fn] {
		if pass.Suppressed(cs.Pos) {
			continue
		}
		inComp := map[*types.Func]bool{}
		for _, eff := range calleeEffects(pass, g, hot, summaries, summaries, inComp, cs) {
			key := eff.Kind + "|" + eff.Posn + "|" + strings.Join(eff.Via, ">")
			if seen[key] {
				continue
			}
			seen[key] = true
			if len(eff.Via) == 0 {
				// Known-blocking external called directly from the hot body.
				pass.Reportf(cs.Pos, "%s in hot function %s", eff.Desc, name)
				continue
			}
			pass.Reportf(cs.Pos, "%s at %s reachable from hot function %s via %s",
				eff.Desc, eff.Posn, name, strings.Join(eff.Via, " -> "))
		}
	}
}

// positionedEffect pairs an effect with the token position of the operation.
type positionedEffect struct {
	eff Effect
	pos token.Pos
}

// collectDirect returns a function's in-body effects (suppressed operations
// excluded at the origin).
func collectDirect(pass *analysis.Pass, decl *ast.FuncDecl) []Effect {
	pes := collectDirectPositioned(pass, decl)
	out := make([]Effect, 0, len(pes))
	for _, pe := range pes {
		out = append(out, pe.eff)
	}
	return out
}

func collectDirectPositioned(pass *analysis.Pass, decl *ast.FuncDecl) []positionedEffect {
	if decl == nil || decl.Body == nil {
		return nil
	}
	parents := buildParents(decl.Body)
	var out []positionedEffect
	add := func(pos token.Pos, kind, desc string) {
		if pass.Suppressed(pos) {
			return
		}
		out = append(out, positionedEffect{
			eff: Effect{Kind: kind, Desc: desc, Posn: pass.Posn(pos)},
			pos: pos,
		})
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SendStmt:
			if !inSelectComm(parents, e) {
				add(e.Arrow, kindBlock, "channel send")
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW && !inSelectComm(parents, e) {
				add(e.OpPos, kindBlock, "channel receive")
			}
		case *ast.SelectStmt:
			add(e.Select, kindBlock, "select statement")
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[e.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					add(e.For, kindBlock, "range over channel")
				}
			}
		case *ast.GoStmt:
			add(e.Go, kindGo, "goroutine spawn")
		case *ast.CallExpr:
			collectCallEffects(pass, parents, e, add)
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if tv, ok := pass.TypesInfo.Types[ix.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							add(ix.Lbrack, kindMapWrite, "map assignment (possible growth)")
						}
					}
				}
			}
		case *ast.BinaryExpr:
			if e.Op != token.ADD {
				return true
			}
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value != nil {
				return true
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				add(e.OpPos, kindConcat, "string concatenation")
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[e]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					add(e.Lbrace, kindMapAlloc, "map allocation")
				}
			}
		case *ast.FuncLit:
			if capt, escapes := closureEscapes(pass, parents, e); escapes && capt != "" {
				add(e.Pos(), kindClosure, "escaping closure capturing "+capt)
			}
		}
		return true
	})
	return out
}

// collectCallEffects classifies one in-body call expression: fmt (unless on
// the panic path), map allocation via make, and known-blocking externals are
// all *direct* effects; calls to declared functions are handled by the
// summary machinery, not here.
func collectCallEffects(pass *analysis.Pass, parents map[ast.Node]ast.Node,
	call *ast.CallExpr, add func(token.Pos, string, string)) {

	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB && id.Name == "make" && len(call.Args) > 0 {
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					add(call.Pos(), kindMapAlloc, "map allocation")
				}
			}
		}
		return
	}
	fn, _, ok := analysis.ResolveCallee(pass.TypesInfo, call)
	if !ok || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return
	}
	eff, ok := knownExternal(fn)
	if !ok {
		return
	}
	if eff.Kind == kindFmt && onPanicPath(pass, parents, call) {
		return // crash-path formatting is not a hot-path cost
	}
	add(call.Pos(), eff.Kind, eff.Desc)
}

// inSelectComm reports whether n is (part of) the communication operation of
// a select case — the enclosing select statement already reports as one
// blocking operation.
func inSelectComm(parents map[ast.Node]ast.Node, n ast.Node) bool {
	child := n
	for p := parents[child]; p != nil; p = parents[p] {
		if cc, ok := p.(*ast.CommClause); ok {
			return cc.Comm == child
		}
		child = p
	}
	return false
}

// onPanicPath reports whether n sits inside the arguments of a panic call.
func onPanicPath(pass *analysis.Pass, parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		call, ok := p.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// closureEscapes decides whether a function literal both captures enclosing
// variables and escapes the stack. Literals passed where a *concrete*
// func-typed parameter is expected (slices.SortFunc comparators,
// sort.Search predicates) stay on the stack under current inlining and are
// exempt; literals handed to interface-typed parameters (sort.Slice's any),
// returned, or stored into fields/globals escape.
func closureEscapes(pass *analysis.Pass, parents map[ast.Node]ast.Node, lit *ast.FuncLit) (string, bool) {
	capt := capturedVar(pass, lit)
	if capt == "" {
		return "", false
	}
	switch p := parents[lit].(type) {
	case *ast.CallExpr:
		if id, ok := p.Fun.(*ast.Ident); ok {
			if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB {
				return capt, false // defer/go handled as their own kinds
			}
		}
		if p.Fun == lit {
			return capt, false // immediately invoked
		}
		// Which parameter receives the literal?
		tv, ok := pass.TypesInfo.Types[p.Fun]
		if !ok {
			return capt, false
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return capt, false
		}
		for i, arg := range p.Args {
			if arg != lit {
				continue
			}
			var pt types.Type
			if sig.Variadic() && i >= sig.Params().Len()-1 {
				last := sig.Params().At(sig.Params().Len() - 1).Type()
				if s, ok := last.(*types.Slice); ok {
					pt = s.Elem()
				}
			} else if i < sig.Params().Len() {
				pt = sig.Params().At(i).Type()
			}
			if pt != nil && types.IsInterface(pt.Underlying()) {
				return capt, true // boxed into an interface: escapes
			}
			return capt, false
		}
		return capt, false
	case *ast.ReturnStmt:
		return capt, true
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs != lit || i >= len(p.Lhs) {
				continue
			}
			switch lhs := p.Lhs[i].(type) {
			case *ast.Ident:
				obj := pass.TypesInfo.Defs[lhs]
				if obj == nil {
					obj = pass.TypesInfo.Uses[lhs]
				}
				if obj != nil && obj.Parent() == pass.Pkg.Scope() {
					return capt, true // stored to a package-level variable
				}
				return capt, false // local: let the compiler decide
			case *ast.SelectorExpr, *ast.IndexExpr:
				return capt, true // field or element store: escapes
			}
		}
		return capt, false
	case *ast.GoStmt, *ast.DeferStmt:
		return capt, false
	case *ast.KeyValueExpr, *ast.CompositeLit:
		return capt, true // stored into a composite: escapes
	case *ast.SendStmt:
		return capt, true
	}
	return capt, false
}

// capturedVar returns the name of one variable the literal captures from its
// enclosing function, or "" when it captures nothing (capture-free literals
// compile to singletons and never allocate per call).
func capturedVar(pass *analysis.Pass, lit *ast.FuncLit) string {
	inside := func(pos token.Pos) bool { return pos >= lit.Pos() && pos < lit.End() }
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() == pass.Pkg.Scope() {
			return true
		}
		if !inside(v.Pos()) {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

// dedupe drops repeated (kind, posn, via) entries while keeping order.
func dedupe(effs []Effect) []Effect {
	if len(effs) < 2 {
		return effs
	}
	seen := make(map[string]bool, len(effs))
	out := effs[:0]
	for _, e := range effs {
		key := e.Kind + "|" + e.Posn + "|" + strings.Join(e.Via, ">")
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	return out
}

// buildParents maps every node under root to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
