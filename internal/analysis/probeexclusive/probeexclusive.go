// Package probeexclusive checks that sharded reservoir write paths are only
// reached from sharded contexts: the shard argument of
// (*obs.SlowReads).Offer must be a parameter of the immediately-enclosing
// function. The reservoir's lock-free fast path assumes each worker writes
// its own shard; an Offer with a literal, a local variable, or a worker
// index captured from an outer scope (a closure outliving its batch) funnels
// every goroutine onto one shard — the floor optimisation degrades to a
// contended mutex and the exemplars misattribute which worker was slow. A
// bare parameter is the one shape the compiler can't silently stale-capture.
package probeexclusive

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the probeexclusive check.
var Analyzer = &analysis.Analyzer{
	Name: "probeexclusive",
	Doc: "report sharded reservoir offers (obs.SlowReads.Offer) whose shard " +
		"argument is not a parameter of the enclosing function",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Walk(visitor{pass: pass}, f)
	}
	return nil
}

// visitor walks the file; params holds the parameter objects of the
// innermost enclosing function, reset at every FuncDecl and FuncLit so a
// closure never inherits its parent's parameters.
type visitor struct {
	pass   *analysis.Pass
	params map[types.Object]bool
}

func (v visitor) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return visitor{pass: v.pass, params: paramSet(v.pass, n.Type)}
	case *ast.FuncLit:
		return visitor{pass: v.pass, params: paramSet(v.pass, n.Type)}
	case *ast.CallExpr:
		if isOffer(v.pass, n) && len(n.Args) > 0 && !v.isParam(n.Args[0]) {
			v.pass.Reportf(n.Args[0].Pos(),
				"SlowReads.Offer shard must be a worker-index parameter of the enclosing function: "+
					"offering from an unsharded context (literal, local, or captured index) collapses "+
					"the per-worker reservoir onto one shard and misattributes slow reads")
		}
	}
	return v
}

// isParam reports whether arg is a bare identifier bound to a parameter of
// the innermost enclosing function.
func (v visitor) isParam(arg ast.Expr) bool {
	id, ok := arg.(*ast.Ident)
	if !ok {
		return false
	}
	obj := v.pass.TypesInfo.Uses[id]
	return obj != nil && v.params[obj]
}

// paramSet collects the parameter objects declared by a function type.
func paramSet(pass *analysis.Pass, ft *ast.FuncType) map[types.Object]bool {
	set := make(map[types.Object]bool)
	if ft == nil || ft.Params == nil {
		return set
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				set[obj] = true
			}
		}
	}
	return set
}

// isOffer reports whether call is (*obs.SlowReads).Offer.
func isOffer(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Offer" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "SlowReads" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}
