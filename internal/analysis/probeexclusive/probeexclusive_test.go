package probeexclusive_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/probeexclusive"
)

func TestProbeExclusive(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", probeexclusive.Analyzer)
}
