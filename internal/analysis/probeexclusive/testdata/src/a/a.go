// Fixture for the probeexclusive analyzer: the shard argument of
// obs.SlowReads.Offer must be a parameter of the enclosing function.
package a

import "repro/internal/obs"

func okParam(s *obs.SlowReads, worker int) {
	s.Offer(worker, obs.Exemplar{TotalNanos: 1})
}

type mapper struct{ slow *obs.SlowReads }

func (m *mapper) okMethod(worker int, total int64) {
	m.slow.Offer(worker, obs.Exemplar{TotalNanos: total})
}

func okClosureOwnParam(s *obs.SlowReads) {
	fn := func(worker int) {
		s.Offer(worker, obs.Exemplar{TotalNanos: 1})
	}
	fn(0)
}

func badLocal(s *obs.SlowReads) {
	w := 0
	s.Offer(w, obs.Exemplar{TotalNanos: 1}) // want `shard must be a worker-index parameter`
}

func badLiteral(s *obs.SlowReads) {
	s.Offer(0, obs.Exemplar{TotalNanos: 1}) // want `shard must be a worker-index parameter`
}

func badArithmetic(s *obs.SlowReads, worker int) {
	s.Offer(worker+1, obs.Exemplar{TotalNanos: 1}) // want `shard must be a worker-index parameter`
}

func badClosureCapture(s *obs.SlowReads, worker int) {
	fn := func() {
		// The closure may outlive the batch that owned this worker index; a
		// captured index is no longer "this goroutine's shard".
		s.Offer(worker, obs.Exemplar{TotalNanos: 1}) // want `shard must be a worker-index parameter`
	}
	fn()
}

func suppressed(s *obs.SlowReads) {
	s.Offer(3, obs.Exemplar{TotalNanos: 1}) //vetgiraffe:ignore probeexclusive fixture exercises the suppression path
}
