// Package hotalloc enforces the `//minigiraffe:hot` annotation: functions so
// marked are mapping-kernel inner loops (extend walks, cluster grouping, GBWT
// LF-search, core.Mapper dispatch) where per-record allocation or formatting
// work distorts exactly the measurements the proxy exists to produce.
//
// Inside a hot function the analyzer reports:
//
//   - any call into package fmt (formatting allocates and reflects);
//   - non-constant string concatenation (allocates per evaluation);
//   - map allocation — make(map...) or a map composite literal;
//   - append inside a loop whose destination was not preallocated with a
//     three-argument make in the same function (unbounded growth reallocates
//     mid-kernel).
//
// Cold code is untouched: the annotation is the contract, placed next to the
// kernels in their doc comments.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// HotDirective marks a function as a hot path in its doc comment.
const HotDirective = "//minigiraffe:hot"

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "report fmt calls, string concatenation, map allocation, and " +
		"unpreallocated append growth inside //minigiraffe:hot functions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHot(fn) {
				continue
			}
			checkHot(pass, fn)
		}
	}
	return nil
}

// isHot reports whether the function's doc comment carries the directive.
func isHot(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, HotDirective) {
			return true
		}
	}
	return false
}

type span struct{ lo, hi token.Pos }

func checkHot(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Loop bodies, for the append rule.
	var loops []span
	// Objects preallocated by a 3-argument make in this function.
	prealloc := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{s.Body.Pos(), s.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{s.Body.Pos(), s.Body.End()})
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(pass, call, "make") && len(call.Args) == 3 {
					if obj := identObj(pass, id); obj != nil {
						prealloc[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range s.Values {
				if i >= len(s.Names) {
					break
				}
				if call, ok := v.(*ast.CallExpr); ok && isBuiltin(pass, call, "make") && len(call.Args) == 3 {
					if obj := identObj(pass, s.Names[i]); obj != nil {
						prealloc[obj] = true
					}
				}
			}
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if pos >= l.lo && pos < l.hi {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if name, ok := fmtCallee(pass, e); ok {
				pass.Reportf(e.Pos(), "call to fmt.%s in hot function %s", name, fn.Name.Name)
				return true
			}
			if isBuiltin(pass, e, "make") && len(e.Args) > 0 {
				if tv, ok := pass.TypesInfo.Types[e.Args[0]]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(e.Pos(), "map allocation in hot function %s", fn.Name.Name)
					}
				}
			}
			if isBuiltin(pass, e, "append") && len(e.Args) > 0 && inLoop(e.Pos()) {
				dest, ok := e.Args[0].(*ast.Ident)
				if !ok {
					pass.Reportf(e.Pos(),
						"append to non-local destination inside a loop in hot function %s", fn.Name.Name)
					return true
				}
				if obj := identObj(pass, dest); obj == nil || !prealloc[obj] {
					pass.Reportf(e.Pos(),
						"append grows %s inside a loop in hot function %s without preallocated capacity (make with an explicit cap)",
						dest.Name, fn.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if e.Op != token.ADD {
				return true
			}
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value != nil {
				return true // constant-folded at compile time
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				pass.Reportf(e.Pos(), "string concatenation in hot function %s", fn.Name.Name)
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[e]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(e.Pos(), "map allocation in hot function %s", fn.Name.Name)
				}
			}
		}
		return true
	})
}

// fmtCallee returns the function name if call targets package fmt.
func fmtCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return "", false
	}
	return fn.Name(), true
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}
