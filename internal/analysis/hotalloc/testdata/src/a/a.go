// Fixture for the hotalloc analyzer: //minigiraffe:hot functions must be
// free of fmt, string concatenation, map allocation, and unpreallocated
// append growth.
package a

import "fmt"

//minigiraffe:hot
func hotConcat(a, b string) string {
	return a + b // want `string concatenation in hot function hotConcat`
}

//minigiraffe:hot
func hotFmt(x int) string {
	return fmt.Sprintf("%d", x) // want `call to fmt.Sprintf in hot function hotFmt`
}

//minigiraffe:hot
func hotMakeMap(n int) map[int]bool {
	return make(map[int]bool, n) // want `map allocation in hot function hotMakeMap`
}

//minigiraffe:hot
func hotMapLiteral() map[string]int {
	return map[string]int{"a": 1} // want `map allocation in hot function hotMapLiteral`
}

//minigiraffe:hot
func hotAppendGrowth(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append grows out inside a loop`
	}
	return out
}

//minigiraffe:hot
func hotAppendPreallocated(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

//minigiraffe:hot
func hotAppendOutsideLoop(xs []int, x int) []int {
	return append(xs, x) // a single bounded append is amortized, not growth
}

//minigiraffe:hot
func hotConstConcat() string {
	const prefix = "a" + "b" // folded at compile time
	return prefix
}

// coldAllOfIt is unannotated: none of this is reported.
func coldAllOfIt(a, b string) string {
	m := map[string]int{}
	m[a] = 1
	return fmt.Sprintf("%s%d", a+b, m[a])
}
