// Fixture for the cachepow2 analyzer: constant cache capacities must be
// powers of two at every construction site — direct gbwt constructor calls
// and the CacheCapacity option field feeding them.
package a

import (
	"repro/internal/core"
	"repro/internal/gbwt"
)

func constructors(g *gbwt.GBWT, b *gbwt.Bidirectional) {
	_ = gbwt.NewCached(g, 256)
	_ = gbwt.NewCached(g, gbwt.DefaultCacheCapacity)
	_ = gbwt.NewCached(g, 300) // want `cache capacity 300 passed to NewCached is not a power of two`
	_ = gbwt.NewCached(g, 0)   // 0 = default: a sentinel, not a capacity
	_ = gbwt.NewCached(g, -1)  // negative = caching disabled
	_ = b.NewBiReader(64)
	_ = b.NewBiReader(1000) // want `cache capacity 1000 passed to NewBiReader is not a power of two`
}

func nonConstant(g *gbwt.GBWT, capacity int) {
	_ = gbwt.NewCached(g, capacity) // runtime values cannot be checked here
}

func optionFields() {
	_ = core.Options{Threads: 2, CacheCapacity: 512}
	_ = core.Options{CacheCapacity: 300} // want `CacheCapacity 300 is not a power of two`
	var o core.Options
	o.CacheCapacity = 100 // want `CacheCapacity 100 is not a power of two`
	o.CacheCapacity = 128
	o.CacheCapacity = -1
	_ = o
}

func suppressed() {
	o := core.Options{CacheCapacity: 300} //vetgiraffe:ignore cachepow2 deliberate off-grid ablation point
	_ = o
}
