// Package cachepow2 flags CachedGBWT capacities that are not powers of two
// at construction sites. The cache's open-addressed table rounds any
// requested capacity up to the next power of two (gbwt.NewCached), and its
// hash folds with `& (len-1)`, so a non-power-of-two constant silently
// allocates more slots than asked for — an experiment sweeping the paper's
// main tuning knob (§VII-B) would label its points with capacities that were
// never actually in effect. The check covers direct constructor calls
// (gbwt.NewCached, Bidirectional.NewBiReader) and the CacheCapacity option
// field that feeds them (composite literals and assignments).
//
// Non-positive constants are exempt: 0 selects the default capacity and
// negative values disable caching, both deliberate sentinels. Deliberate
// off-grid capacities (e.g. an ablation) can be suppressed with
// `//vetgiraffe:ignore cachepow2 <reason>`.
package cachepow2

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the cachepow2 check.
var Analyzer = &analysis.Analyzer{
	Name: "cachepow2",
	Doc: "report constant cache capacities that are not powers of two " +
		"(CachedGBWT rounds them up, so the configured knob misleads)",
	Run: run,
}

// capacityConstructors maps gbwt constructor names to the index-from-end of
// their capacity argument (both take it last).
var capacityConstructors = map[string]bool{
	"NewCached":   true,
	"NewBiReader": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.CompositeLit:
				checkComposite(pass, n)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags gbwt.NewCached(g, n) / bi.NewBiReader(n) with a constant
// non-power-of-two capacity.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	var name *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun
	case *ast.SelectorExpr:
		name = fun.Sel
	default:
		return
	}
	fn, ok := pass.TypesInfo.Uses[name].(*types.Func)
	if !ok || !capacityConstructors[fn.Name()] || len(call.Args) == 0 {
		return
	}
	if pkg := fn.Pkg(); pkg == nil || !strings.HasSuffix(pkg.Path(), "internal/gbwt") {
		return
	}
	arg := call.Args[len(call.Args)-1]
	if v, ok := constCapacity(pass, arg); ok && !powerOfTwo(v) {
		pass.Reportf(arg.Pos(),
			"cache capacity %d passed to %s is not a power of two (the cache rounds it up to %d)",
			v, fn.Name(), roundUp(v))
	}
}

// checkComposite flags Options{CacheCapacity: n} literals.
func checkComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !isCapacityField(pass, key) {
			continue
		}
		if v, ok := constCapacity(pass, kv.Value); ok && !powerOfTwo(v) {
			pass.Reportf(kv.Value.Pos(),
				"CacheCapacity %d is not a power of two (the cache rounds it up to %d)",
				v, roundUp(v))
		}
	}
}

// checkAssign flags opts.CacheCapacity = n assignments.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !isCapacityField(pass, sel.Sel) {
			continue
		}
		if v, ok := constCapacity(pass, as.Rhs[i]); ok && !powerOfTwo(v) {
			pass.Reportf(as.Rhs[i].Pos(),
				"CacheCapacity %d is not a power of two (the cache rounds it up to %d)",
				v, roundUp(v))
		}
	}
}

// isCapacityField reports whether id resolves to a struct field named
// CacheCapacity.
func isCapacityField(pass *analysis.Pass, id *ast.Ident) bool {
	if id.Name != "CacheCapacity" {
		return false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	return ok && v.IsField()
}

// constCapacity extracts a positive constant integer capacity from e.
// Non-constant expressions and the 0 / negative sentinels are not checked.
func constCapacity(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok || v <= 0 {
		return 0, false
	}
	return v, true
}

func powerOfTwo(v int64) bool { return v&(v-1) == 0 }

// roundUp returns the next power of two >= v, matching gbwt.NewCached.
func roundUp(v int64) int64 {
	n := int64(1)
	for n < v {
		n <<= 1
	}
	return n
}
