package cachepow2_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cachepow2"
)

func TestCachePow2(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", cachepow2.Analyzer)
}
