package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallSite is one static call edge out of a declared function.
type CallSite struct {
	// Callee is the resolved target: a declared function or method (possibly
	// from another package), or an interface method for dynamic calls.
	Callee *types.Func
	// Pos anchors the call expression for diagnostics.
	Pos token.Pos
	// Interface marks a dynamic call through an interface method; the
	// concrete target is unknown without class-hierarchy resolution.
	Interface bool
}

// CallGraph is the static call graph of one package: every declared function
// (including methods), its syntax, and its resolved outgoing calls. Calls
// through function-typed values are not modeled — only direct calls and
// interface method calls.
type CallGraph struct {
	// Decls maps each declared function object to its declaration. Calls
	// inside function literals are attributed to the enclosing declaration.
	Decls map[*types.Func]*ast.FuncDecl
	// Calls lists each declared function's outgoing call sites in source
	// order.
	Calls map[*types.Func][]CallSite
}

// BuildCallGraph resolves the package's static call edges.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		Decls: make(map[*types.Func]*ast.FuncDecl),
		Calls: make(map[*types.Func][]CallSite),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Decls[fn] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee, iface, ok := ResolveCallee(pass.TypesInfo, call); ok {
					g.Calls[fn] = append(g.Calls[fn], CallSite{Callee: callee, Pos: call.Pos(), Interface: iface})
				}
				return true
			})
		}
	}
	return g
}

// ResolveCallee resolves a call expression to its static target function, if
// any, and reports whether the target is an interface method. Builtins,
// conversions, and calls of function-typed values resolve to nothing.
func ResolveCallee(info *types.Info, call *ast.CallExpr) (fn *types.Func, iface bool, ok bool) {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	default:
		return nil, false, false
	}
	fn, ok = obj.(*types.Func)
	if !ok {
		return nil, false, false
	}
	if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
		iface = types.IsInterface(sig.Recv().Type())
	}
	return fn, iface, true
}

// BottomUp returns the strongly connected components of the intra-package
// call graph in dependency order: every component appears after all the
// components it calls into, so a caller processing them in order always sees
// its local callees' summaries first. Mutually recursive functions share a
// component. Iteration order is deterministic (declaration order).
func (g *CallGraph) BottomUp() [][]*types.Func {
	// Deterministic node order: by declaration position.
	nodes := make([]*types.Func, 0, len(g.Decls))
	for fn := range g.Decls {
		nodes = append(nodes, fn)
	}
	sortFuncsByPos(g, nodes)

	// Tarjan's SCC; components are emitted callees-first.
	index := make(map[*types.Func]int, len(nodes))
	low := make(map[*types.Func]int, len(nodes))
	onStack := make(map[*types.Func]bool, len(nodes))
	var stack []*types.Func
	var out [][]*types.Func
	next := 0

	var strongConnect func(v *types.Func)
	strongConnect = func(v *types.Func) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, cs := range g.Calls[v] {
			w := cs.Callee
			if _, local := g.Decls[w]; !local {
				continue
			}
			if _, seen := index[w]; !seen {
				strongConnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*types.Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongConnect(v)
		}
	}
	return out
}

func sortFuncsByPos(g *CallGraph, fns []*types.Func) {
	// Insertion sort: n is the number of declarations in one package.
	for i := 1; i < len(fns); i++ {
		for j := i; j > 0 && g.Decls[fns[j]].Pos() < g.Decls[fns[j-1]].Pos(); j-- {
			fns[j], fns[j-1] = fns[j-1], fns[j]
		}
	}
}
