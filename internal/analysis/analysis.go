// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics. The repo cannot
// vendor x/tools (the build is offline by policy), so the framework is built
// on the standard library only — go/ast, go/types, and export data served by
// the go tool (see load.go).
//
// The project-specific analyzers living in the subpackages encode the
// invariants the miniGiraffe reproduction depends on — atomic-counter
// discipline, paired trace regions, allocation-free hot kernels, and
// leak-free goroutine construction — and cmd/vetgiraffe runs them as a CI
// gate (`make lint`).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, run independently over each package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//vetgiraffe:ignore <name>` suppression directives.
	Name string
	// Doc is a one-paragraph description, shown by `vetgiraffe -help`.
	Doc string
	// Run inspects pass and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic the way `go vet` does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one package's syntax and type information through an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Posn formats a position for inclusion inside a diagnostic message (e.g.
// "field f is updated atomically at sched.go:170").
func (p *Pass) Posn(pos token.Pos) string {
	posn := p.Fset.Position(pos)
	// Keep messages compact: file base name, not the full path.
	name := posn.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, posn.Line)
}

// IgnoreDirective is the comment that suppresses a finding on its line (or
// the line directly above it): `//vetgiraffe:ignore <analyzer> [reason]`.
const IgnoreDirective = "//vetgiraffe:ignore"

// Run applies each analyzer to each package, drops findings suppressed by an
// ignore directive, and returns the remaining diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		suppressed := suppressions(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range pass.diags {
				if suppressed[suppressKey{d.Pos.Filename, d.Pos.Line, a.Name}] ||
					suppressed[suppressKey{d.Pos.Filename, d.Pos.Line - 1, a.Name}] {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// suppressions indexes every ignore directive in the package by (file, line,
// analyzer). A directive on line L suppresses findings on L and L+1, so both
// trailing and preceding-line placement work.
func suppressions(pkg *Package) map[suppressKey]bool {
	out := make(map[suppressKey]bool)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				out[suppressKey{posn.Filename, posn.Line, fields[0]}] = true
			}
		}
	}
	return out
}
