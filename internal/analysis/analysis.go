// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics, optionally
// exporting Facts on package-level objects that later analysis of importing
// packages can read back (the modular whole-program channel). The repo
// cannot vendor x/tools (the build is offline by policy), so the framework
// is built on the standard library only — go/ast, go/types, and export data
// served by the go tool (see load.go).
//
// The project-specific analyzers living in the subpackages encode the
// invariants the miniGiraffe reproduction depends on — atomic-counter
// discipline, paired trace regions, allocation-free and non-blocking hot
// kernels, context threading on the serving path, and leak-free goroutine
// construction — and cmd/vetgiraffe runs them as a CI gate (`make lint`).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one static check. Per-package analyzers (Run) execute
// independently over each package, in dependency order when they use Facts.
// Module analyzers (ModuleRun) execute once over the whole loaded set —
// escapebudget, which shells out to the compiler, is the only one.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//vetgiraffe:ignore <name>` suppression directives.
	Name string
	// Doc is a one-paragraph description, shown by `vetgiraffe -list`.
	Doc string
	// Run inspects pass and reports findings via pass.Reportf. Nil for
	// module analyzers.
	Run func(pass *Pass) error
	// FactTypes declares the fact types Run exports/imports; a non-empty
	// list is what forces dependency-ordered scheduling.
	FactTypes []Fact
	// ModuleRun, when non-nil, runs once over the full loaded set (dir is
	// the module root the packages were loaded from). The returned string is
	// an optional human-readable report that cmd/vetgiraffe archives next to
	// the diagnostics.
	ModuleRun func(dir string, pkgs []*Package) ([]Diagnostic, string, error)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic the way `go vet` does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one package's syntax and type information through an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags   []Diagnostic
	facts   *[]factEntry
	store   *factStore
	ignores *ignoreIndex
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Posn formats a position for inclusion inside a diagnostic message (e.g.
// "field f is updated atomically at sched.go:170").
func (p *Pass) Posn(pos token.Pos) string {
	posn := p.Fset.Position(pos)
	// Keep messages compact: file base name, not the full path.
	name := posn.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, posn.Line)
}

// Suppressed reports whether an `//vetgiraffe:ignore` directive for this
// analyzer covers pos (same line or the line above), marking the directive
// used. Analyzers that fold findings into summaries before reporting — the
// hotpath effect collector — call this at collection time so a justified
// ignore next to the offending operation stops the effect at its origin
// instead of at every hot caller.
func (p *Pass) Suppressed(pos token.Pos) bool {
	if p.ignores == nil {
		return false
	}
	return p.ignores.suppressed(p.Fset.Position(pos), p.Analyzer.Name)
}

// IgnoreDirective is the comment that suppresses a finding on its line (or
// the line directly above it): `//vetgiraffe:ignore <analyzer>[,<analyzer>...]
// [reason]`. A comment may carry several directives.
const IgnoreDirective = "//vetgiraffe:ignore"

// RunOptions tunes RunWith.
type RunOptions struct {
	// Workers bounds the analysis worker pool; <=0 means GOMAXPROCS.
	// Packages still start only after the packages they import (within the
	// analyzed set) have been analyzed and their facts sealed.
	Workers int
	// StaleIgnores adds a diagnostic for every ignore directive that names
	// one of the analyzers being run yet suppressed nothing, and for
	// directives naming no known analyzer. Only meaningful when the full
	// analyzer set runs — under -only most directives are legitimately
	// dormant.
	StaleIgnores bool
	// ExtraDiags are diagnostics produced outside the per-package passes —
	// module analyzers (ModuleRun) — routed through the same suppression
	// filtering and stale accounting as pass-reported findings.
	ExtraDiags []Diagnostic
}

// Run applies each analyzer to each package serially with stale-ignore
// checking off — the compatibility entry point.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWith(RunOptions{Workers: 1}, pkgs, analyzers)
}

// RunWith applies each per-package analyzer to each package over a worker
// pool, drops findings suppressed by ignore directives, and returns the
// remaining diagnostics sorted by position. Packages are scheduled in
// import-dependency order so analyzers reading Facts always find their
// dependencies' facts sealed; packages with no dependency relation analyze
// concurrently. Module analyzers (ModuleRun) are not run here — they are
// cmd/vetgiraffe's job.
func RunWith(opts RunOptions, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}

	store := newFactStore()

	// Ignore-directive indexes, one per package, shared between the analysis
	// workers, the ExtraDiags filter, and stale accounting.
	indexes := make([]*ignoreIndex, len(pkgs))
	fileOwner := make(map[string]int)
	for i, pkg := range pkgs {
		indexes[i] = buildIgnoreIndex(pkg)
		for _, f := range pkg.Syntax {
			fileOwner[pkg.Fset.Position(f.Pos()).Filename] = i
		}
	}

	// Dependency edges within the analyzed set.
	byPath := make(map[string]int, len(pkgs))
	for i, pkg := range pkgs {
		byPath[pkg.PkgPath] = i
	}
	indegree := make([]int, len(pkgs))
	dependents := make([][]int, len(pkgs))
	for i, pkg := range pkgs {
		for _, imp := range pkg.Imports {
			if j, ok := byPath[imp]; ok && j != i {
				indegree[i]++
				dependents[j] = append(dependents[j], i)
			}
		}
	}

	var (
		mu       sync.Mutex
		out      []Diagnostic
		firstErr error
	)
	ready := make(chan int, len(pkgs))
	done := make(chan int, len(pkgs))
	for i := range pkgs {
		if indegree[i] == 0 {
			ready <- i
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ready {
				diags, err := analyzePackage(pkgs[i], analyzers, store, indexes[i])
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				out = append(out, diags...)
				mu.Unlock()
				done <- i
			}
		}()
	}

	// Dispatcher: release dependents as their dependencies complete. Cycles
	// cannot occur (the go tool rejects import cycles), so every package is
	// eventually released.
	scheduled := 0
	for range pkgs {
		i := <-done
		scheduled++
		for _, dep := range dependents[i] {
			indegree[dep]--
			if indegree[dep] == 0 {
				ready <- dep
			}
		}
	}
	close(ready)
	wg.Wait()
	_ = scheduled

	if firstErr != nil {
		return nil, firstErr
	}

	// Module-analyzer diagnostics: suppressible by a directive in the file
	// they point at; unattributable files pass through unfiltered.
	for _, d := range opts.ExtraDiags {
		if i, ok := fileOwner[d.Pos.Filename]; ok && indexes[i].suppressed(d.Pos, d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	if opts.StaleIgnores {
		known := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			known[a.Name] = true
		}
		for _, ix := range indexes {
			out = append(out, ix.staleDiagnostics(known)...)
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// analyzePackage runs every per-package analyzer over pkg, filters
// suppressed findings, and seals the package's facts.
func analyzePackage(pkg *Package, analyzers []*Analyzer, store *factStore, ignores *ignoreIndex) ([]Diagnostic, error) {
	var pkgFacts []factEntry
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			facts:     &pkgFacts,
			store:     store,
			ignores:   ignores,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		for _, d := range pass.diags {
			if ignores.suppressed(d.Pos, a.Name) {
				continue
			}
			out = append(out, d)
		}
	}
	if err := store.seal(pkg.PkgPath, pkgFacts); err != nil {
		return nil, err
	}
	return out, nil
}

// ignoreDirective is one parsed `//vetgiraffe:ignore` occurrence.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string
	used      bool
}

// ignoreIndex holds a package's directives, keyed for O(1) lookup by
// (file, line, analyzer). Lookups are mutex-guarded: within one package the
// analyzers run serially, but the hotpath collector can consult the index of
// its own package while another goroutine... it cannot — packages are
// analyzed by a single worker each — the mutex simply keeps the index safe
// if that ever changes.
type ignoreIndex struct {
	mu    sync.Mutex
	byKey map[suppressKey]*ignoreDirective
	all   []*ignoreDirective
}

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// suppressed reports whether a directive for analyzer covers (file, line) —
// trailing (same line) or preceding-line placement — marking it used.
func (ix *ignoreIndex) suppressed(pos token.Position, analyzer string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if d, ok := ix.byKey[suppressKey{pos.Filename, line, analyzer}]; ok {
			d.used = true
			return true
		}
	}
	return false
}

// staleDiagnostics reports directives that suppressed nothing: every
// directive naming only analyzers from the known set that never matched, and
// every directive naming an analyzer that does not exist.
func (ix *ignoreIndex) staleDiagnostics(known map[string]bool) []Diagnostic {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var out []Diagnostic
	for _, d := range ix.all {
		if d.used {
			continue
		}
		var unknown []string
		anyKnown := false
		for _, name := range d.analyzers {
			if known[name] {
				anyKnown = true
			} else {
				unknown = append(unknown, name)
			}
		}
		switch {
		case len(unknown) > 0:
			out = append(out, Diagnostic{
				Analyzer: "vetgiraffe",
				Pos:      d.pos,
				Message: fmt.Sprintf("ignore directive names unknown analyzer %s",
					strings.Join(unknown, ", ")),
			})
		case anyKnown:
			out = append(out, Diagnostic{
				Analyzer: "vetgiraffe",
				Pos:      d.pos,
				Message: fmt.Sprintf("stale ignore directive: no %s diagnostic on this or the next line",
					strings.Join(d.analyzers, ", ")),
			})
		}
	}
	return out
}

// buildIgnoreIndex parses every ignore directive in the package. A directive
// comment must begin with the marker — prose that merely quotes the syntax
// (`a //vetgiraffe:ignore ...` in documentation) is not a directive. A
// comment may carry several directives, and one directive may name several
// analyzers (comma-separated):
// `x() //vetgiraffe:ignore hotalloc,hotpath startup only`.
func buildIgnoreIndex(pkg *Package) *ignoreIndex {
	ix := &ignoreIndex{byKey: make(map[suppressKey]*ignoreDirective)}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				parts := strings.Split(c.Text, IgnoreDirective)
				posn := pkg.Fset.Position(c.Pos())
				for _, rest := range parts[1:] {
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					var names []string
					for _, name := range strings.Split(fields[0], ",") {
						if name = strings.TrimSpace(name); name != "" {
							names = append(names, name)
						}
					}
					if len(names) == 0 {
						continue
					}
					d := &ignoreDirective{pos: posn, analyzers: names}
					ix.all = append(ix.all, d)
					for _, name := range names {
						ix.byKey[suppressKey{posn.Filename, posn.Line, name}] = d
					}
				}
			}
		}
	}
	return ix
}
