// Package escapebudget gates the hot kernels on the compiler's own
// escape-analysis and inlining verdicts. AST-level checks (hotalloc,
// hotpath) approximate what allocates; `go build -gcflags=-m=2` is the
// ground truth. The analyzer shells out to the compiler, attributes every
// "escapes to heap" / "moved to heap" diagnostic and every inlinability
// verdict to the enclosing `//minigiraffe:hot` function, and compares the
// result against the committed results/escapes_baseline.txt:
//
//   - a hot function whose heap-escape count grows past its baseline fails;
//   - a hot function the compiler could inline at baseline but no longer
//     can fails;
//   - improvements (fewer escapes, newly inlinable) pass and show up in the
//     report so the baseline can be ratcheted down.
//
// Refresh the baseline deliberately with `make escapecheck UPDATE=1` after
// auditing the report. The Go build cache replays compiler diagnostics on
// cached rebuilds, so repeated runs are cheap and never silently empty.
//
// escapebudget is a module analyzer (Analyzer.ModuleRun): it runs once over
// the whole loaded set, not per package.
package escapebudget

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/hotalloc"
)

// BaselinePath is the committed baseline, relative to the module root.
const BaselinePath = "results/escapes_baseline.txt"

// Analyzer is the escape/inline budget gate.
var Analyzer = &analysis.Analyzer{
	Name: "escapebudget",
	Doc: "fail when a //minigiraffe:hot function gains heap escapes or " +
		"loses inlinability relative to results/escapes_baseline.txt " +
		"(ground truth: go build -gcflags=-m=2)",
	ModuleRun: moduleRun,
}

// FuncState is one hot function's compiler verdict.
type FuncState struct {
	// Label is "pkgpath.Func" or "pkgpath.(T).Method" — the baseline key.
	Label string
	// File/Line anchor diagnostics at the declaration.
	File string
	Line int
	Col  int
	// Escapes lists the unique escape diagnostics inside the body.
	Escapes []string
	// Inline reports whether the compiler said "can inline".
	Inline bool
}

// baselineEntry is one parsed baseline line.
type baselineEntry struct {
	escapes int
	inline  bool
}

// Current compiles the module under -gcflags=-m=2 and returns the verdict
// for every hot function in pkgs, sorted by label.
func Current(dir string, pkgs []*analysis.Package) ([]FuncState, error) {
	hots := hotDecls(pkgs)
	if len(hots) == 0 {
		return nil, nil
	}
	diags, err := compilerDiags(dir)
	if err != nil {
		return nil, err
	}
	// Diagnostic paths are relative to the module root the build ran in.
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	// The compiler reports one escape at two lines ("x escapes to heap:"
	// heading the flow trace, then "moved to heap: x"), both anchored at the
	// same position — count unique positions, keep the first message.
	escSeen := make(map[string]bool)
	for _, d := range diags {
		file := filepath.Join(absDir, d.file)
		for _, h := range hots {
			if h.File != file {
				continue
			}
			switch {
			case strings.Contains(d.msg, "escapes to heap"),
				strings.Contains(d.msg, "moved to heap"):
				if d.line >= h.Line && d.line <= h.endLine {
					key := fmt.Sprintf("%s:%d:%d", d.file, d.line, d.col)
					if !escSeen[key] {
						escSeen[key] = true
						h.Escapes = append(h.Escapes, key+": "+strings.TrimSuffix(d.msg, ":"))
					}
				}
			case strings.HasPrefix(d.msg, "can inline "):
				if d.line == h.Line {
					h.Inline = true
				}
			}
		}
	}
	out := make([]FuncState, 0, len(hots))
	for _, h := range hots {
		sort.Strings(h.Escapes)
		out = append(out, h.FuncState)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out, nil
}

// WriteBaseline rewrites the baseline file from states.
func WriteBaseline(path string, states []FuncState) error {
	var buf bytes.Buffer
	buf.WriteString("# escapebudget baseline: per //minigiraffe:hot function, the number of\n")
	buf.WriteString("# compiler-reported heap escapes and whether the compiler can inline it.\n")
	buf.WriteString("# Regenerate with: make escapecheck UPDATE=1\n")
	for _, s := range states {
		fmt.Fprintf(&buf, "%s escapes=%d inline=%s\n", s.Label, len(s.Escapes), yesno(s.Inline))
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// report renders the human-readable comparison archived by cmd/vetgiraffe.
func report(states []FuncState, baseline map[string]baselineEntry) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "escapebudget: %d hot functions (baseline: %s)\n", len(states), BaselinePath)
	for _, s := range states {
		base, known := baseline[s.Label]
		status := "new (not in baseline)"
		if known {
			status = fmt.Sprintf("baseline escapes=%d inline=%s", base.escapes, yesno(base.inline))
		}
		fmt.Fprintf(&buf, "\n%s: escapes=%d inline=%s [%s]\n", s.Label, len(s.Escapes), yesno(s.Inline), status)
		for _, e := range s.Escapes {
			fmt.Fprintf(&buf, "  %s\n", e)
		}
	}
	return buf.String()
}

func moduleRun(dir string, pkgs []*analysis.Package) ([]analysis.Diagnostic, string, error) {
	states, err := Current(dir, pkgs)
	if err != nil {
		return nil, "", err
	}
	baseline, err := readBaseline(filepath.Join(dir, BaselinePath))
	if err != nil {
		return nil, "", err
	}
	var diags []analysis.Diagnostic
	for _, s := range states {
		base, known := baseline[s.Label]
		if !known {
			// New hot functions ratchet from zero: clean ones pass without a
			// baseline edit, allocating ones fail until fixed or baselined.
			base = baselineEntry{escapes: 0, inline: s.Inline}
		}
		pos := token.Position{Filename: s.File, Line: s.Line, Column: s.Col}
		if len(s.Escapes) > base.escapes {
			diags = append(diags, analysis.Diagnostic{
				Analyzer: "escapebudget",
				Pos:      pos,
				Message: fmt.Sprintf("hot function %s gained heap escapes: %d (baseline %d) — fix or refresh with `make escapecheck UPDATE=1`",
					s.Label, len(s.Escapes), base.escapes),
			})
		}
		if base.inline && !s.Inline {
			diags = append(diags, analysis.Diagnostic{
				Analyzer: "escapebudget",
				Pos:      pos,
				Message: fmt.Sprintf("hot function %s lost inlinability (baseline: can inline) — fix or refresh with `make escapecheck UPDATE=1`",
					s.Label),
			})
		}
	}
	return diags, report(states, baseline), nil
}

// readBaseline parses the baseline file; a missing file is an empty
// baseline (every hot function ratchets from zero escapes).
func readBaseline(path string) (map[string]baselineEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]baselineEntry{}, nil
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string]baselineEntry)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("escapebudget: %s:%d: malformed baseline line %q", path, i+1, line)
		}
		var e baselineEntry
		n, ok := strings.CutPrefix(fields[1], "escapes=")
		if !ok {
			return nil, fmt.Errorf("escapebudget: %s:%d: malformed escapes field %q", path, i+1, fields[1])
		}
		if e.escapes, err = strconv.Atoi(n); err != nil {
			return nil, fmt.Errorf("escapebudget: %s:%d: malformed escapes count %q", path, i+1, n)
		}
		switch fields[2] {
		case "inline=yes":
			e.inline = true
		case "inline=no":
			e.inline = false
		default:
			return nil, fmt.Errorf("escapebudget: %s:%d: malformed inline field %q", path, i+1, fields[2])
		}
		out[fields[0]] = e
	}
	return out, nil
}

// hotDecl is one annotated declaration with its body extent.
type hotDecl struct {
	FuncState
	endLine int
}

func hotDecls(pkgs []*analysis.Package) []*hotDecl {
	var out []*hotDecl
	for _, pkg := range pkgs {
		if pkg.Dir == "" {
			continue
		}
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHot(fd) {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				out = append(out, &hotDecl{
					FuncState: FuncState{
						Label: pkg.PkgPath + "." + declLabel(fd),
						File:  start.Filename,
						Line:  start.Line,
						Col:   start.Column,
					},
					endLine: end.Line,
				})
			}
		}
	}
	return out
}

func declLabel(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

func isHot(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, hotalloc.HotDirective) {
			return true
		}
	}
	return false
}

// compilerDiag is one parsed `-gcflags=-m=2` line.
type compilerDiag struct {
	pkg  string // import path from the preceding "# pkg" header
	file string // as printed, relative to the package directory
	line int
	col  int
	msg  string
}

// compilerDiags builds the module under -m=2 and parses the diagnostics.
// Output format: "# pkgpath" headers followed by "./file.go:line:col: msg"
// lines; indented escape-flow traces and anything else are skipped.
func compilerDiags(dir string) ([]compilerDiag, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m=2", "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escapebudget: go build -gcflags=-m=2: %v\n%s", err, firstLines(stderr.String(), 20))
	}
	var out []compilerDiag
	pkg := ""
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, "# ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "# "))
			continue
		}
		if line == "" || line[0] == ' ' || line[0] == '\t' {
			continue // escape-flow trace or blank
		}
		d, ok := parseDiagLine(pkg, line)
		if !ok {
			continue
		}
		out = append(out, d)
	}
	return out, nil
}

// parseDiagLine splits "./file.go:12:7: msg".
func parseDiagLine(pkg, line string) (compilerDiag, bool) {
	rest := strings.TrimPrefix(line, "./")
	i := strings.Index(rest, ".go:")
	if i < 0 {
		return compilerDiag{}, false
	}
	file := rest[:i+3]
	parts := strings.SplitN(rest[i+4:], ":", 3)
	if len(parts) != 3 {
		return compilerDiag{}, false
	}
	ln, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return compilerDiag{}, false
	}
	return compilerDiag{
		pkg:  pkg,
		file: file,
		line: ln,
		col:  col,
		msg:  strings.TrimSpace(parts[2]),
	}, true
}

func yesno(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
