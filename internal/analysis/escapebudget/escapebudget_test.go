package escapebudget_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/escapebudget"
)

// copyFixtureModule clones the fixture module into a writable temp dir so
// tests can add and doctor baselines.
func copyFixtureModule(t *testing.T) string {
	t.Helper()
	dst := t.TempDir()
	for _, rel := range []string{"go.mod", "esc/esc.go"} {
		data, err := os.ReadFile(filepath.Join("testdata/escmod", rel))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func loadFixture(t *testing.T, dir string) []*analysis.Package {
	t.Helper()
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func TestCurrentVerdicts(t *testing.T) {
	dir := copyFixtureModule(t)
	states, err := escapebudget.Current(dir, loadFixture(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := make(map[string]escapebudget.FuncState)
	for _, s := range states {
		byLabel[s.Label] = s
	}
	if s := byLabel["escmod/esc.Leak"]; len(s.Escapes) == 0 {
		t.Errorf("Leak: want >=1 heap escape, got %+v", s)
	}
	if s := byLabel["escmod/esc.Add"]; len(s.Escapes) != 0 || !s.Inline {
		t.Errorf("Add: want 0 escapes and inlinable, got %+v", s)
	}
	if s := byLabel["escmod/esc.Big"]; s.Inline {
		t.Errorf("Big: want non-inlinable (go:noinline), got %+v", s)
	}
}

func TestBudgetGate(t *testing.T) {
	dir := copyFixtureModule(t)
	pkgs := loadFixture(t, dir)

	// No baseline: escaping hot functions ratchet from zero and fail.
	diags, report, err := escapebudget.Analyzer.ModuleRun(dir, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if !diagFor(diags, "escmod/esc.Leak", "gained heap escapes") {
		t.Errorf("want gained-escape diagnostic for Leak, got %v", diags)
	}
	if diagFor(diags, "escmod/esc.Add", "") || diagFor(diags, "escmod/esc.Big", "") {
		t.Errorf("clean functions flagged: %v", diags)
	}
	if !strings.Contains(report, "escmod/esc.Leak") {
		t.Errorf("report does not mention Leak:\n%s", report)
	}

	// Committing the current state as the baseline makes the gate pass.
	states, err := escapebudget.Current(dir, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, escapebudget.BaselinePath)
	if err := escapebudget.WriteBaseline(basePath, states); err != nil {
		t.Fatal(err)
	}
	diags, _, err = escapebudget.Analyzer.ModuleRun(dir, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("baselined run should be clean, got %v", diags)
	}

	// Doctoring the baseline to claim Big was inlinable trips the
	// inline-loss gate; inflating Leak's budget does not (improvements and
	// headroom pass).
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(data), "escmod/esc.Big escapes=0 inline=no",
		"escmod/esc.Big escapes=0 inline=yes", 1)
	doctored = strings.Replace(doctored, "escmod/esc.Leak escapes=1", "escmod/esc.Leak escapes=99", 1)
	if doctored == string(data) {
		t.Fatalf("baseline rewrite failed; contents:\n%s", data)
	}
	if err := os.WriteFile(basePath, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, _, err = escapebudget.Analyzer.ModuleRun(dir, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if !diagFor(diags, "escmod/esc.Big", "lost inlinability") {
		t.Errorf("want inline-loss diagnostic for Big, got %v", diags)
	}
	if diagFor(diags, "escmod/esc.Leak", "") {
		t.Errorf("Leak within (inflated) budget should pass, got %v", diags)
	}
}

// TestSuppression routes module diagnostics through RunWith's ExtraDiags so
// the //vetgiraffe:ignore next to SuppressedLeak's declaration filters it.
func TestSuppression(t *testing.T) {
	dir := copyFixtureModule(t)
	pkgs := loadFixture(t, dir)
	mdiags, _, err := escapebudget.Analyzer.ModuleRun(dir, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if !diagFor(mdiags, "escmod/esc.SuppressedLeak", "gained heap escapes") {
		t.Fatalf("want raw diagnostic for SuppressedLeak, got %v", mdiags)
	}
	diags, err := analysis.RunWith(analysis.RunOptions{ExtraDiags: mdiags},
		pkgs, []*analysis.Analyzer{escapebudget.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if diagFor(diags, "escmod/esc.SuppressedLeak", "") {
		t.Errorf("SuppressedLeak should be suppressed, got %v", diags)
	}
	if !diagFor(diags, "escmod/esc.Leak", "gained heap escapes") {
		t.Errorf("Leak must survive filtering, got %v", diags)
	}
}

func diagFor(diags []analysis.Diagnostic, label, substr string) bool {
	for _, d := range diags {
		if strings.Contains(d.Message, label+" ") && strings.Contains(d.Message, substr) {
			return true
		}
	}
	return false
}
