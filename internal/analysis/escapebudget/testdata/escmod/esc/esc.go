// Fixture for the escapebudget analyzer: hot functions with known compiler
// verdicts — a guaranteed heap escape, a clean inlinable leaf, a function
// pinned non-inlinable, and an acknowledged (suppressed) escape.
package esc

// Leak returns a pointer to a local, a guaranteed heap escape.
//
//minigiraffe:hot
func Leak() *int {
	x := 42
	return &x
}

// Add is small and clean: inlinable, no escapes.
//
//minigiraffe:hot
func Add(a, b int) int {
	return a + b
}

// Big is pinned non-inlinable so the inline-loss gate can be exercised by
// doctoring its baseline entry.
//
//minigiraffe:hot
//go:noinline
func Big(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// SuppressedLeak's escape is acknowledged next to the declaration.
//
//minigiraffe:hot
//vetgiraffe:ignore escapebudget fixture-justified escape
func SuppressedLeak() *int {
	x := 7
	return &x
}
