module escmod

go 1.22
