// Facts are the framework's modular cross-package channel, mirroring the
// golang.org/x/tools go/analysis design: while analyzing package P an
// analyzer may attach a Fact to one of P's package-level objects; when a
// package that imports P is analyzed later, the same analyzer can look the
// fact up through the object it resolves from P's export data. Facts are
// gob-serialized into one blob per (package, analyzer) the moment P's
// analysis completes — the serialized form is the only thing dependents
// read, so a fact round-trips exactly as it would through an on-disk
// cache, and the format is stable enough to persist (see DESIGN.md).
package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Fact is an analyzer-defined datum attached to a package-level object and
// visible to later analysis of importing packages. Implementations must be
// gob-encodable pointer types; AFact is a marker method.
type Fact interface{ AFact() }

// objectKey names a package-level object within its package: "F" for a
// function or variable, "(T).M" / "(*T).M" for a method of a package-level
// named type. Objects that are not package-level (locals, closures, fields)
// have no key and cannot carry facts.
func objectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		// Non-function package-level objects (vars, types, consts).
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Name(), true
		}
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	recv := sig.Recv()
	if recv == nil {
		if fn.Parent() != obj.Pkg().Scope() {
			return "", false // closure or local func
		}
		return fn.Name(), true
	}
	t := recv.Type()
	ptr := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
		ptr = "*"
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("(%s%s).%s", ptr, named.Obj().Name(), fn.Name()), true
}

// factEntry is one serialized fact: the owning analyzer, the object key, the
// concrete fact type's name (a decode-time sanity check), and the gob bytes.
type factEntry struct {
	Analyzer string
	Object   string
	Type     string
	Data     []byte
}

// factStore holds every sealed package's serialized facts, keyed by package
// path. Packages are sealed in dependency order by RunWith, so by the time a
// dependent's pass asks for an imported fact the blob is present; the store
// itself is still mutex-guarded because sibling packages run concurrently.
type factStore struct {
	mu     sync.Mutex
	sealed map[string][]byte      // pkgPath → gob([]factEntry)
	cache  map[string][]factEntry // decoded on first access
}

func newFactStore() *factStore {
	return &factStore{
		sealed: make(map[string][]byte),
		cache:  make(map[string][]factEntry),
	}
}

// seal serializes a package's accumulated facts. Entries are sorted so the
// blob is deterministic regardless of analyzer-internal iteration order.
func (s *factStore) seal(pkgPath string, entries []factEntry) error {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return fmt.Errorf("analysis: sealing facts for %s: %w", pkgPath, err)
	}
	s.mu.Lock()
	s.sealed[pkgPath] = buf.Bytes()
	s.mu.Unlock()
	return nil
}

// entries decodes (and caches) a sealed package's fact list; nil when the
// package was never sealed (not part of the analyzed set).
func (s *factStore) entries(pkgPath string) []factEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if dec, ok := s.cache[pkgPath]; ok {
		return dec
	}
	blob, ok := s.sealed[pkgPath]
	if !ok {
		return nil
	}
	var dec []factEntry
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&dec); err != nil {
		// A blob we wrote ourselves failing to decode is a framework bug.
		panic(fmt.Sprintf("analysis: corrupt fact blob for %s: %v", pkgPath, err))
	}
	s.cache[pkgPath] = dec
	return dec
}

// lookup decodes the fact for (pkgPath, objKey, analyzer) into ptr, which
// must be a pointer of the same concrete type that was exported.
func (s *factStore) lookup(pkgPath, objKey, analyzer string, ptr Fact) bool {
	want := factTypeName(ptr)
	for _, e := range s.entries(pkgPath) {
		if e.Analyzer != analyzer || e.Object != objKey || e.Type != want {
			continue
		}
		if err := gob.NewDecoder(bytes.NewReader(e.Data)).Decode(ptr); err != nil {
			panic(fmt.Sprintf("analysis: decoding %s fact %s.%s: %v", analyzer, pkgPath, objKey, err))
		}
		return true
	}
	return false
}

func factTypeName(f Fact) string { return reflect.TypeOf(f).String() }

// ExportObjectFact attaches fact to obj, which must be a package-level
// object (or method of a package-level type) of the pass's own package. The
// fact becomes visible to this analyzer when importing packages are analyzed.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		return
	}
	if obj.Pkg() == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("analysis: %s: exporting fact for foreign object %v", p.Analyzer.Name, obj))
	}
	key, ok := objectKey(obj)
	if !ok {
		panic(fmt.Sprintf("analysis: %s: exporting fact for non-package-level object %v", p.Analyzer.Name, obj))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		panic(fmt.Sprintf("analysis: %s: encoding fact for %s: %v", p.Analyzer.Name, key, err))
	}
	*p.facts = append(*p.facts, factEntry{
		Analyzer: p.Analyzer.Name,
		Object:   key,
		Type:     factTypeName(fact),
		Data:     buf.Bytes(),
	})
}

// ImportObjectFact copies the fact previously exported for obj by this
// analyzer into ptr, reporting whether one was found. obj may belong to any
// package in the analyzed set; same-package objects resolve against facts
// exported earlier in this pass.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := objectKey(obj)
	if !ok {
		return false
	}
	if obj.Pkg().Path() == p.Pkg.Path() {
		if p.facts == nil {
			return false
		}
		want := factTypeName(ptr)
		for _, e := range *p.facts {
			if e.Analyzer == p.Analyzer.Name && e.Object == key && e.Type == want {
				if err := gob.NewDecoder(bytes.NewReader(e.Data)).Decode(ptr); err != nil {
					panic(fmt.Sprintf("analysis: decoding own fact %s: %v", key, err))
				}
				return true
			}
		}
		return false
	}
	if p.store == nil {
		return false
	}
	return p.store.lookup(obj.Pkg().Path(), key, p.Analyzer.Name, ptr)
}
