// Package analysistest runs an analyzer over a fixture directory and checks
// its diagnostics against `// want "regex"` comment expectations — the same
// convention as golang.org/x/tools/go/analysis/analysistest, reimplemented on
// the repo's own analysis framework.
//
// A want comment lists one or more quoted regular expressions:
//
//	x = s.f // want `non-atomic access`
//
// Every diagnostic must match an expectation on its line, and every
// expectation must be matched by some diagnostic.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one unmatched want pattern.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// Run loads the fixture package in dir, applies the analyzer (including the
// framework's suppression directives), and reports mismatches on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	check(t, []*analysis.Package{pkg}, diags)
}

// RunPkgs loads the packages matching patterns (anchored at dir) with the
// full module loader — facts flow between them in dependency order — and
// checks the combined diagnostics against want expectations in every loaded
// package. This is the harness for cross-package fact fixtures living under
// testdata/src/ as real module packages.
func RunPkgs(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", patterns, err)
	}
	diags, err := analysis.RunWith(analysis.RunOptions{}, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	check(t, pkgs, diags)
}

// check matches diagnostics against the fixtures' want expectations.
func check(t *testing.T, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}

	for _, d := range diags {
		matched := false
		for i, w := range wants {
			if w != nil && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				wants[i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if w != nil {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want pattern %q", posn.Filename, posn.Line, rest)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %q: %v", posn.Filename, posn.Line, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", posn.Filename, posn.Line, pat, err)
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, rx: rx})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}
