// Package nakedgoroutine requires every `go` statement outside the two
// scheduler packages (internal/sched and internal/pipeline, whose entire job
// is goroutine lifecycle management) to be tied to a completion mechanism:
// a sync.WaitGroup, a context.Context, or a channel the goroutine signals.
// A goroutine with none of these cannot be joined or cancelled — it leaks by
// construction, and under the autotuner's scheduler × batch × cache sweeps a
// leaked worker from one configuration silently perturbs the next.
//
// For `go func() {...}()` the literal body must call (*sync.WaitGroup).Done,
// reference a context.Context, or send on / close a channel. For a named
// function, one of its arguments must be a *sync.WaitGroup, context.Context,
// or channel. Intentional fire-and-forget goroutines can be annotated with
// `//vetgiraffe:ignore nakedgoroutine <reason>`.
package nakedgoroutine

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Exempt lists packages whose job is goroutine lifecycle management; their
// `go` statements are the synchronization primitives the rest of the tree
// is required to use.
var Exempt = map[string]bool{
	"repro/internal/pipeline": true,
	"repro/internal/sched":    true,
}

// Analyzer is the nakedgoroutine check.
var Analyzer = &analysis.Analyzer{
	Name: "nakedgoroutine",
	Doc: "report go statements not tied to a WaitGroup, context, or " +
		"channel (outside internal/sched and internal/pipeline)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if Exempt[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !tied(pass, g) {
				pass.Reportf(g.Pos(),
					"goroutine is not tied to a WaitGroup, context, or channel and can leak by construction")
			}
			return true
		})
	}
	return nil
}

// tied reports whether the spawned goroutine has a visible completion or
// cancellation mechanism.
func tied(pass *analysis.Pass, g *ast.GoStmt) bool {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return litTied(pass, lit)
	}
	// Named function (or method value): accept when it receives a
	// synchronization handle as an argument.
	for _, arg := range g.Call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && syncHandle(tv.Type) {
			return true
		}
	}
	return false
}

// litTied inspects a goroutine literal's body for a completion mechanism.
func litTied(pass *analysis.Pass, lit *ast.FuncLit) (ok bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			ok = true // completion signalled over a channel
		case *ast.CallExpr:
			if id, isIdent := s.Fun.(*ast.Ident); isIdent && id.Name == "close" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					ok = true
					return false
				}
			}
			if sel, isSel := s.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Done" {
				if fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFn {
					if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil &&
						isWaitGroup(sig.Recv().Type()) {
						ok = true
						return false
					}
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[s]; obj != nil && isContext(obj.Type()) {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}

// syncHandle reports whether t is a synchronization handle type: a
// *sync.WaitGroup, a context.Context, or a channel.
func syncHandle(t types.Type) bool {
	if isWaitGroup(t) || isContext(t) {
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamed(t, "sync", "WaitGroup")
}

func isContext(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

func isNamed(t types.Type, pkg, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}
