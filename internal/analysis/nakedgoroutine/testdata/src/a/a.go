// Fixture for the nakedgoroutine analyzer: every go statement must be tied
// to a WaitGroup, context, or channel.
package a

import (
	"context"
	"sync"
)

func okWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func okContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func okChannelSend() chan int {
	out := make(chan int, 1)
	go func() {
		out <- 1
	}()
	return out
}

func okChannelClose(done chan struct{}) {
	go func() {
		close(done)
	}()
}

func worker(wg *sync.WaitGroup) { defer wg.Done() }

func okNamedWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

func okNamedContext(ctx context.Context, f func(context.Context)) {
	go f(ctx)
}

func leakLiteral() {
	go func() { // want `not tied to a WaitGroup, context, or channel`
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}

func leakNamed(f func()) {
	go f() // want `not tied to a WaitGroup, context, or channel`
}

func suppressed(f func()) {
	//vetgiraffe:ignore nakedgoroutine intentional fire-and-forget
	go f()
}
