package nakedgoroutine_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nakedgoroutine"
)

func TestNakedGoroutine(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", nakedgoroutine.Analyzer)
}
