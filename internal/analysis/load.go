package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	PkgPath string
	Name    string
	// Dir is the package's source directory (empty for LoadDir fixtures
	// whose directory is unknown to the go tool).
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Imports lists the package's direct imports (all of them, not just
	// module-internal ones). RunWith intersects it with the analyzed set to
	// schedule fact-dependency order.
	Imports []string
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -deps -export -json` in dir and returns the decoded
// package stream. The -export flag makes the go tool compile (or reuse from
// the build cache) every listed package and report its export-data file,
// which is what lets the loader type-check against dependencies without
// golang.org/x/tools.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types import resolution by serving export-data
// files recorded by goList.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// lockedImporter serialises Import calls so packages can be type-checked
// concurrently: the gc export-data importer keeps a package cache that is not
// safe for concurrent mutation, while the *types.Packages it returns are
// read-only afterwards.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.Import(path)
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load lists, parses, and type-checks the packages matching patterns,
// resolving imports through export data from the go tool. Only non-test
// files are analyzed, matching what ships in the binaries. dir anchors the
// go tool invocation ("." means the current directory).
//
// Parsing and type-checking fan out over a worker pool: every import —
// module-internal ones included — resolves through export data, so target
// packages check independently of each other and the pool needs no ordering.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		exports[p.ImportPath] = p.Export
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := &lockedImporter{imp: exportImporter(fset, exports)}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]*Package, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t := targets[i]
				if len(t.GoFiles) == 0 {
					continue
				}
				files := make([]string, len(t.GoFiles))
				for j, f := range t.GoFiles {
					files[j] = filepath.Join(t.Dir, f)
				}
				pkg, err := check(fset, imp, t.ImportPath, files)
				if err != nil {
					errs[i] = err
					continue
				}
				pkg.Dir = t.Dir
				pkg.Imports = t.Imports
				out[i] = pkg
			}
		}()
	}
	for i := range targets {
		next <- i
	}
	close(next)
	wg.Wait()

	var pkgs []*Package
	for i := range targets {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if out[i] != nil {
			pkgs = append(pkgs, out[i])
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package formed by the .go files
// directly inside dir — the analysistest fixture loader. Imports (standard
// library or module-internal) resolve through the go tool, so fixtures may
// exercise real project types like *trace.Recorder.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)

	// Parse once up front to discover the fixture's imports.
	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	impSet := make(map[string]bool)
	for _, af := range syntax {
		for _, spec := range af.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err == nil && p != "C" {
				impSet[p] = true
			}
		}
	}
	exports := make(map[string]string)
	var imps []string
	if len(impSet) > 0 {
		for p := range impSet {
			imps = append(imps, p)
		}
		sort.Strings(imps)
		listed, err := goList(dir, imps)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
			}
			exports[p.ImportPath] = p.Export
		}
	}

	pkgPath := syntax[0].Name.Name
	pkg, err := checkParsed(fset, exportImporter(fset, exports), pkgPath, syntax)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	pkg.Imports = imps
	return pkg, nil
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, imp types.Importer, pkgPath string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	return checkParsed(fset, imp, pkgPath, syntax)
}

func checkParsed(fset *token.FileSet, imp types.Importer, pkgPath string, syntax []*ast.File) (*Package, error) {
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := newTypesInfo()
	tpkg, _ := conf.Check(pkgPath, fset, syntax, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", pkgPath, typeErrs[0])
	}
	return &Package{
		PkgPath:   pkgPath,
		Name:      tpkg.Name(),
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
