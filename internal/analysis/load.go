package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	PkgPath   string
	Name      string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -deps -export -json` in dir and returns the decoded
// package stream. The -export flag makes the go tool compile (or reuse from
// the build cache) every listed package and report its export-data file,
// which is what lets the loader type-check against dependencies without
// golang.org/x/tools.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types import resolution by serving export-data
// files recorded by goList.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load lists, parses, and type-checks the packages matching patterns,
// resolving imports through export data from the go tool. Only non-test
// files are analyzed, matching what ships in the binaries. dir anchors the
// go tool invocation ("." means the current directory).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		exports[p.ImportPath] = p.Export
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := check(fset, imp, t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir parses and type-checks the single package formed by the .go files
// directly inside dir — the analysistest fixture loader. Imports (standard
// library or module-internal) resolve through the go tool, so fixtures may
// exercise real project types like *trace.Recorder.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)

	// Parse once up front to discover the fixture's imports.
	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	impSet := make(map[string]bool)
	for _, af := range syntax {
		for _, spec := range af.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err == nil && p != "C" {
				impSet[p] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(impSet) > 0 {
		var imps []string
		for p := range impSet {
			imps = append(imps, p)
		}
		sort.Strings(imps)
		listed, err := goList(dir, imps)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
			}
			exports[p.ImportPath] = p.Export
		}
	}

	pkgPath := syntax[0].Name.Name
	return checkParsed(fset, exportImporter(fset, exports), pkgPath, syntax)
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, imp types.Importer, pkgPath string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	return checkParsed(fset, imp, pkgPath, syntax)
}

func checkParsed(fset *token.FileSet, imp types.Importer, pkgPath string, syntax []*ast.File) (*Package, error) {
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := newTypesInfo()
	tpkg, _ := conf.Check(pkgPath, fset, syntax, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", pkgPath, typeErrs[0])
	}
	return &Package{
		PkgPath:   pkgPath,
		Name:      tpkg.Name(),
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
