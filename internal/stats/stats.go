// Package stats provides the statistical machinery the miniGiraffe paper's
// evaluation uses: geometric-mean speedups (§VII-B), cosine similarity
// between hardware-counter vectors (§VI-b, after Richards et al.), and
// analysis of variance with F-distribution p-values for the tuning-parameter
// significance study (§VII-B: capacity p=0.047, batch p=0.878, scheduler
// p=0.859).
package stats

import (
	"errors"
	"math"
)

// ErrEmpty reports an empty input.
var ErrEmpty = errors.New("stats: empty input")

// Online accumulates streaming summary statistics with Welford's algorithm:
// count, running mean, variance, min, and max, without retaining samples.
// The streaming pipeline uses it for per-batch latency and throughput
// reporting where the sample count is unbounded.
type Online struct {
	N    int64
	Mean float64
	Min  float64
	Max  float64
	m2   float64
}

// Add folds one observation into the summary.
func (o *Online) Add(x float64) {
	o.N++
	if o.N == 1 {
		o.Min, o.Max = x, x
	} else {
		if x < o.Min {
			o.Min = x
		}
		if x > o.Max {
			o.Max = x
		}
	}
	d := x - o.Mean
	o.Mean += d / float64(o.N)
	o.m2 += d * (x - o.Mean)
}

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (o Online) Variance() float64 {
	if o.N < 2 {
		return 0
	}
	return o.m2 / float64(o.N-1)
}

// Std returns the sample standard deviation.
func (o Online) Std() float64 { return math.Sqrt(o.Variance()) }

// GeoMean returns the geometric mean of strictly positive values.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Cosine returns the cosine similarity of two equal-length non-zero vectors:
// 1 means identical direction. This is the proxy-fidelity metric of §VI-b.
func Cosine(a, b []float64) (float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return 0, errors.New("stats: cosine requires equal non-empty vectors")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0, errors.New("stats: cosine of zero vector")
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb)), nil
}

// ANOVA holds a one-way analysis-of-variance result.
type ANOVA struct {
	F   float64 // F statistic (MS_between / MS_within)
	P   float64 // p-value from the F distribution
	DFb int     // between-groups degrees of freedom
	DFw int     // within-groups degrees of freedom
	SSb float64 // between-groups sum of squares
	SSw float64 // within-groups sum of squares
}

// OneWayANOVA tests whether the group means differ. Each group needs ≥1
// observation and at least two groups with ≥2 total extra observations are
// required for the within-group variance to exist.
func OneWayANOVA(groups [][]float64) (ANOVA, error) {
	k := len(groups)
	if k < 2 {
		return ANOVA{}, errors.New("stats: ANOVA needs at least two groups")
	}
	n := 0
	grand := 0.0
	for _, g := range groups {
		if len(g) == 0 {
			return ANOVA{}, errors.New("stats: ANOVA group is empty")
		}
		for _, x := range g {
			grand += x
			n++
		}
	}
	if n <= k {
		return ANOVA{}, errors.New("stats: ANOVA needs more observations than groups")
	}
	grand /= float64(n)
	var ssb, ssw float64
	for _, g := range groups {
		m := 0.0
		for _, x := range g {
			m += x
		}
		m /= float64(len(g))
		ssb += float64(len(g)) * (m - grand) * (m - grand)
		for _, x := range g {
			ssw += (x - m) * (x - m)
		}
	}
	dfb := k - 1
	dfw := n - k
	out := ANOVA{DFb: dfb, DFw: dfw, SSb: ssb, SSw: ssw}
	msb := ssb / float64(dfb)
	msw := ssw / float64(dfw)
	if msw == 0 {
		if msb == 0 {
			out.F = 0
			out.P = 1
			return out, nil
		}
		out.F = math.Inf(1)
		out.P = 0
		return out, nil
	}
	out.F = msb / msw
	out.P = FSurvival(out.F, float64(dfb), float64(dfw))
	return out, nil
}

// FSurvival returns P(F_{d1,d2} > f), the upper tail of the F distribution,
// via the regularized incomplete beta function.
func FSurvival(f, d1, d2 float64) float64 {
	if f <= 0 {
		return 1
	}
	x := d2 / (d2 + d1*f)
	return RegIncBeta(d2/2, d1/2, x)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Numerical Recipes, betacf).
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a + math.Log(1-x)*b + lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - math.Exp(math.Log(1-x)*b+math.Log(x)*a+lbeta)*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Observation is one measurement in a factorial experiment: the factor
// levels it was taken at and its response value.
type Observation struct {
	Levels map[string]string
	Value  float64
}

// FactorANOVA runs a one-way ANOVA on one factor of a factorial experiment,
// grouping observations by that factor's level and treating all other
// factors as replicates — the analysis the paper applies to the tuning grid.
func FactorANOVA(obs []Observation, factor string) (ANOVA, error) {
	groups := make(map[string][]float64)
	for _, o := range obs {
		level, ok := o.Levels[factor]
		if !ok {
			return ANOVA{}, errors.New("stats: observation missing factor " + factor)
		}
		groups[level] = append(groups[level], o.Value)
	}
	gs := make([][]float64, 0, len(groups))
	// Deterministic order is not needed for the F statistic, but keep the
	// grouping stable for reproducible error messages.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		gs = append(gs, groups[k])
	}
	return OneWayANOVA(gs)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Speedups divides base by each of xs (elementwise semantics: speedup of x
// over base is base/x, for makespans where smaller is better).
func Speedups(base float64, xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x > 0 {
			out[i] = base / x
		}
	}
	return out
}
