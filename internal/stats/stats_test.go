package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !near(got, 2, 1e-12) {
		t.Errorf("GeoMean(1,4) = %f, want 2", got)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative accepted")
	}
}

func TestGeoMeanIdentityProperty(t *testing.T) {
	f := func(raw uint8, n uint8) bool {
		x := 0.5 + float64(raw)/16
		count := int(n%10) + 1
		xs := make([]float64, count)
		for i := range xs {
			xs[i] = x
		}
		g, err := GeoMean(xs)
		return err == nil && near(g, x, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3})
	if err != nil || got != 2 {
		t.Errorf("Mean = %f, %v", got, err)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestCosineSelf(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5}
	got, err := Cosine(v, v)
	if err != nil {
		t.Fatal(err)
	}
	if !near(got, 1, 1e-12) {
		t.Errorf("Cosine(v,v) = %f", got)
	}
}

func TestCosineOrthogonal(t *testing.T) {
	got, err := Cosine([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !near(got, 0, 1e-12) {
		t.Errorf("orthogonal cosine = %f", got)
	}
}

func TestCosineErrors(t *testing.T) {
	if _, err := Cosine(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Cosine([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Cosine([]float64{0}, []float64{1}); err == nil {
		t.Error("zero vector accepted")
	}
}

func TestCosineScaleInvariant(t *testing.T) {
	a := []float64{2, 3, 5}
	b := []float64{4, 6, 10}
	got, err := Cosine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !near(got, 1, 1e-12) {
		t.Errorf("scaled cosine = %f, want 1", got)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %f", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %f", got)
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !near(got, x, 1e-10) {
			t.Errorf("I_%f(1,1) = %f", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got, want := RegIncBeta(2.5, 4, 0.3), 1-RegIncBeta(4, 2.5, 0.7); !near(got, want, 1e-10) {
		t.Errorf("symmetry violated: %f vs %f", got, want)
	}
}

func TestFSurvivalKnownValues(t *testing.T) {
	// F(1, 10): P(F > 4.96) ≈ 0.05 (classic table value 4.965).
	if got := FSurvival(4.965, 1, 10); !near(got, 0.05, 0.002) {
		t.Errorf("FSurvival(4.965,1,10) = %f, want ≈0.05", got)
	}
	// P(F > 0) = 1.
	if got := FSurvival(0, 3, 7); got != 1 {
		t.Errorf("FSurvival(0) = %f", got)
	}
	// Large F → tiny p.
	if got := FSurvival(1000, 2, 20); got > 1e-6 {
		t.Errorf("FSurvival(1000,2,20) = %g, want tiny", got)
	}
}

func TestFSurvivalMonotone(t *testing.T) {
	prev := 1.0
	for f := 0.5; f < 20; f += 0.5 {
		p := FSurvival(f, 3, 12)
		if p > prev+1e-12 {
			t.Fatalf("p not monotone at F=%f", f)
		}
		prev = p
	}
}

func TestOneWayANOVASignificant(t *testing.T) {
	// Clearly separated groups: tiny p.
	groups := [][]float64{
		{1.0, 1.1, 0.9, 1.05},
		{5.0, 5.1, 4.9, 5.05},
		{9.0, 9.1, 8.9, 9.05},
	}
	res, err := OneWayANOVA(groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.F < 100 {
		t.Errorf("F = %f, want large", res.F)
	}
	if res.P > 0.001 {
		t.Errorf("P = %f, want < 0.001", res.P)
	}
	if res.DFb != 2 || res.DFw != 9 {
		t.Errorf("df = %d,%d", res.DFb, res.DFw)
	}
}

func TestOneWayANOVAInsignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	groups := make([][]float64, 3)
	for g := range groups {
		for i := 0; i < 20; i++ {
			groups[g] = append(groups[g], 10+rng.NormFloat64())
		}
	}
	res, err := OneWayANOVA(groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Errorf("identical populations gave P = %f", res.P)
	}
}

func TestOneWayANOVAErrors(t *testing.T) {
	if _, err := OneWayANOVA(nil); err == nil {
		t.Error("no groups accepted")
	}
	if _, err := OneWayANOVA([][]float64{{1}, {}}); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := OneWayANOVA([][]float64{{1}, {2}}); err == nil {
		t.Error("n == k accepted")
	}
}

func TestOneWayANOVAZeroVariance(t *testing.T) {
	// Identical values everywhere: F=0, P=1.
	res, err := OneWayANOVA([][]float64{{2, 2}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.F != 0 || res.P != 1 {
		t.Errorf("constant data: F=%f P=%f", res.F, res.P)
	}
	// Zero within-variance but different means: F=inf, P=0.
	res, err = OneWayANOVA([][]float64{{1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.F, 1) || res.P != 0 {
		t.Errorf("separated constant groups: F=%f P=%f", res.F, res.P)
	}
}

func TestFactorANOVA(t *testing.T) {
	var obs []Observation
	rng := rand.New(rand.NewSource(2))
	// Factor "cap" matters (level b adds 5), factor "sched" does not.
	for _, cap := range []string{"a", "b"} {
		for _, sched := range []string{"x", "y"} {
			for i := 0; i < 10; i++ {
				v := 10 + rng.NormFloat64()*0.5
				if cap == "b" {
					v += 5
				}
				obs = append(obs, Observation{
					Levels: map[string]string{"cap": cap, "sched": sched},
					Value:  v,
				})
			}
		}
	}
	capRes, err := FactorANOVA(obs, "cap")
	if err != nil {
		t.Fatal(err)
	}
	schedRes, err := FactorANOVA(obs, "sched")
	if err != nil {
		t.Fatal(err)
	}
	if capRes.P > 0.01 {
		t.Errorf("significant factor has P = %f", capRes.P)
	}
	if schedRes.P < 0.05 {
		t.Errorf("noise factor has P = %f", schedRes.P)
	}
	if _, err := FactorANOVA(obs, "missing"); err == nil {
		t.Error("missing factor accepted")
	}
}

func TestSpeedups(t *testing.T) {
	got := Speedups(10, []float64{5, 10, 20, 0})
	want := []float64{2, 1, 0.5, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Speedups[%d] = %f, want %f", i, got[i], want[i])
		}
	}
}

func TestOnline(t *testing.T) {
	var o Online
	if o.Variance() != 0 || o.Std() != 0 {
		t.Error("empty Online has nonzero spread")
	}
	xs := []float64{4, 7, 13, 16}
	for _, x := range xs {
		o.Add(x)
	}
	if o.N != 4 {
		t.Errorf("N = %d", o.N)
	}
	if o.Mean != 10 {
		t.Errorf("Mean = %f, want 10", o.Mean)
	}
	if o.Min != 4 || o.Max != 16 {
		t.Errorf("Min/Max = %f/%f, want 4/16", o.Min, o.Max)
	}
	// Sample variance of {4,7,13,16} is 30.
	if v := o.Variance(); math.Abs(v-30) > 1e-9 {
		t.Errorf("Variance = %f, want 30", v)
	}
	if s := o.Std(); math.Abs(s-math.Sqrt(30)) > 1e-9 {
		t.Errorf("Std = %f", s)
	}
}

func TestOnlineSingleObservation(t *testing.T) {
	var o Online
	o.Add(-2.5)
	if o.Mean != -2.5 || o.Min != -2.5 || o.Max != -2.5 {
		t.Errorf("single observation summary wrong: %+v", o)
	}
	if o.Variance() != 0 {
		t.Errorf("Variance = %f, want 0", o.Variance())
	}
}
