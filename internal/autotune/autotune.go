// Package autotune implements the paper's second case study (§VII-B): an
// exhaustive cross-product sweep over the proxy's three tuning parameters —
// scheduler, batch size, and initial CachedGBWT capacity — measuring the
// makespan of each combination, identifying the best configuration per
// input set and platform, and quantifying per-parameter significance with
// ANOVA. Cross-platform results project real local measurements through the
// machine models of package machine (the substitution DESIGN.md documents).
package autotune

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gbwt"
	"repro/internal/gbz"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Combo is one point of the tuning cross-product.
type Combo struct {
	Scheduler sched.Kind
	BatchSize int
	Capacity  int
}

// String renders "scheduler/BS/CC".
func (c Combo) String() string {
	return fmt.Sprintf("%s/bs%d/cc%d", c.Scheduler, c.BatchSize, c.Capacity)
}

// DefaultCombo is Giraffe's default configuration (OpenMP dynamic, batch
// 512, capacity 256).
func DefaultCombo() Combo {
	return Combo{Scheduler: sched.Dynamic, BatchSize: sched.DefaultBatchSize, Capacity: gbwt.DefaultCacheCapacity}
}

// Space is the searched parameter grid.
type Space struct {
	Schedulers []sched.Kind
	BatchSizes []int
	Capacities []int
}

// DefaultSpace mirrors the paper's grid: both schedulers, batch sizes in
// powers of two from 128 to 2048, and capacities up to the 4096 the
// preliminary study (Fig. 6) identified as the useful ceiling.
func DefaultSpace() Space {
	return Space{
		Schedulers: []sched.Kind{sched.Dynamic, sched.WorkStealing},
		BatchSizes: []int{128, 256, 512, 1024, 2048},
		Capacities: []int{256, 512, 1024, 2048, 4096},
	}
}

// Combos enumerates the cross-product, including the default combo if the
// grid does not already contain it.
func (s Space) Combos() []Combo {
	var out []Combo
	seen := map[Combo]bool{}
	for _, sc := range s.Schedulers {
		for _, bs := range s.BatchSizes {
			for _, cc := range s.Capacities {
				c := Combo{Scheduler: sc, BatchSize: bs, Capacity: cc}
				out = append(out, c)
				seen[c] = true
			}
		}
	}
	if d := DefaultCombo(); !seen[d] {
		out = append(out, d)
	}
	return out
}

// Measurement is one measured grid point.
type Measurement struct {
	Combo
	// Makespan is the best (minimum) wall time across repeats — the paper's
	// end-to-end tuning metric.
	Makespan time.Duration
	// Cache aggregates the run's CachedGBWT statistics.
	Cache gbwt.CacheStats
	// Imbalance is max/mean worker load.
	Imbalance float64
}

// Grid is a completed sweep for one input set.
type Grid struct {
	Input        string
	Threads      int
	Reads        int
	Measurements []Measurement
}

// Progress receives a note per completed combo; may be nil.
type Progress func(done, total int, m Measurement)

// RunGrid measures every combo on the local machine. repeats ≥ 1 runs each
// combo multiple times keeping the minimum makespan (the paper averaged
// over factorial repetitions; minimum is the standard noise-robust choice
// for makespans).
func RunGrid(f *gbz.File, recs []seeds.ReadSeeds, threads int, space Space, repeats int, progress Progress) (*Grid, error) {
	if repeats < 1 {
		repeats = 1
	}
	combos := space.Combos()
	g := &Grid{Threads: threads, Reads: len(recs), Measurements: make([]Measurement, 0, len(combos))}
	for ci, c := range combos {
		var best Measurement
		for rep := 0; rep < repeats; rep++ {
			res, err := core.Run(f, recs, core.Options{
				Threads:       threads,
				BatchSize:     c.BatchSize,
				CacheCapacity: c.Capacity,
				Scheduler:     c.Scheduler,
			})
			if err != nil {
				return nil, fmt.Errorf("autotune: combo %s: %w", c, err)
			}
			m := Measurement{
				Combo:     c,
				Makespan:  res.Makespan,
				Cache:     res.Cache,
				Imbalance: res.Sched.Imbalance(),
			}
			if rep == 0 || m.Makespan < best.Makespan {
				best = m
			}
		}
		g.Measurements = append(g.Measurements, best)
		if progress != nil {
			progress(ci+1, len(combos), best)
		}
	}
	return g, nil
}

// Best returns the minimum-makespan measurement.
func (g *Grid) Best() (Measurement, error) {
	if len(g.Measurements) == 0 {
		return Measurement{}, errors.New("autotune: empty grid")
	}
	best := g.Measurements[0]
	for _, m := range g.Measurements[1:] {
		if m.Makespan < best.Makespan {
			best = m
		}
	}
	return best, nil
}

// Default returns the default-combo measurement.
func (g *Grid) Default() (Measurement, error) {
	d := DefaultCombo()
	for _, m := range g.Measurements {
		if m.Combo == d {
			return m, nil
		}
	}
	return Measurement{}, errors.New("autotune: grid lacks the default combo")
}

// Speedup returns default makespan / best makespan — the per-cell value of
// Figure 7's comparison.
func (g *Grid) Speedup() (float64, error) {
	best, err := g.Best()
	if err != nil {
		return 0, err
	}
	def, err := g.Default()
	if err != nil {
		return 0, err
	}
	if best.Makespan <= 0 {
		return 0, errors.New("autotune: degenerate best makespan")
	}
	return float64(def.Makespan) / float64(best.Makespan), nil
}

// ANOVAByFactor runs the §VII-B analysis on the grid: a one-way ANOVA per
// tuning factor with all other factors treated as replicates. Values are
// makespans in seconds.
func (g *Grid) ANOVAByFactor() (map[string]stats.ANOVA, error) {
	obs := make([]stats.Observation, 0, len(g.Measurements))
	for _, m := range g.Measurements {
		obs = append(obs, stats.Observation{
			Levels: map[string]string{
				"scheduler": m.Scheduler.String(),
				"batch":     fmt.Sprint(m.BatchSize),
				"capacity":  fmt.Sprint(m.Capacity),
			},
			Value: m.Makespan.Seconds(),
		})
	}
	out := make(map[string]stats.ANOVA, 3)
	for _, factor := range []string{"scheduler", "batch", "capacity"} {
		a, err := stats.FactorANOVA(obs, factor)
		if err != nil {
			return nil, fmt.Errorf("autotune: ANOVA on %s: %w", factor, err)
		}
		out[factor] = a
	}
	return out, nil
}

// Projection carries a grid's makespans projected onto one modelled
// platform.
type Projection struct {
	Machine machine.Machine
	Input   string
	// Seconds[i] is the projected makespan of Grid.Measurements[i].
	Seconds []float64
	// OOM is true when the workload does not fit the machine's DRAM.
	OOM bool
}

// Project maps locally measured makespans onto a modelled machine: the local
// measurement is converted to a serial reference (multiplying by the
// effective local parallelism), then re-divided by the target machine's
// speedup curve with its cache factor applied to the combo's working set.
func Project(g *Grid, b *workload.Bundle, m machine.Machine, localSpeedup float64) (*Projection, error) {
	if localSpeedup <= 0 {
		return nil, errors.New("autotune: local speedup must be positive")
	}
	p := &Projection{Machine: m, Input: g.Input, Seconds: make([]float64, len(g.Measurements))}
	if !m.CanHold(b.Spec.MemGB) {
		p.OOM = true
		return p, nil
	}
	for i, meas := range g.Measurements {
		serialRef := meas.Makespan.Seconds() * localSpeedup
		w := machine.Workload{
			SerialRefSec: serialRef,
			Reads:        g.Reads,
			WorkingSetMB: b.WorkingSetMB(meas.Capacity, m.MaxThreads()),
			MemGB:        b.Spec.MemGB,
		}
		t, err := m.SimTime(w, m.MaxThreads())
		if err != nil {
			return nil, err
		}
		p.Seconds[i] = t
	}
	return p, nil
}

// BestIndex returns the index of the fastest projected combo.
func (p *Projection) BestIndex() (int, error) {
	if p.OOM || len(p.Seconds) == 0 {
		return 0, errors.New("autotune: projection has no data")
	}
	best := 0
	for i, s := range p.Seconds {
		if s < p.Seconds[best] {
			best = i
		}
	}
	return best, nil
}

// DefaultIndex returns the index of the default combo in the grid.
func (g *Grid) DefaultIndex() (int, error) {
	d := DefaultCombo()
	for i, m := range g.Measurements {
		if m.Combo == d {
			return i, nil
		}
	}
	return 0, errors.New("autotune: grid lacks the default combo")
}

// WriteHeatmapCSV emits the Figure 8 data: one row per (scheduler, batch),
// one column per capacity, cell = makespan seconds from the projection (or
// the local grid when proj is nil).
func WriteHeatmapCSV(w io.Writer, g *Grid, proj *Projection, space Space) error {
	value := func(i int) float64 {
		if proj != nil {
			return proj.Seconds[i]
		}
		return g.Measurements[i].Makespan.Seconds()
	}
	index := make(map[Combo]int, len(g.Measurements))
	for i, m := range g.Measurements {
		index[m.Combo] = i
	}
	if _, err := fmt.Fprint(w, "scheduler,batch"); err != nil {
		return err
	}
	for _, cc := range space.Capacities {
		if _, err := fmt.Fprintf(w, ",cc%d", cc); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, sc := range space.Schedulers {
		for _, bs := range space.BatchSizes {
			if _, err := fmt.Fprintf(w, "%s,%d", sc, bs); err != nil {
				return err
			}
			for _, cc := range space.Capacities {
				i, ok := index[Combo{Scheduler: sc, BatchSize: bs, Capacity: cc}]
				if !ok {
					return fmt.Errorf("autotune: grid missing combo %s/%d/%d", sc, bs, cc)
				}
				if _, err := fmt.Fprintf(w, ",%.4f", value(i)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}
