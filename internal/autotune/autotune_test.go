package autotune

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gbz"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/workload"
)

// tinySpace keeps sweep tests fast.
func tinySpace() Space {
	return Space{
		Schedulers: []sched.Kind{sched.Dynamic, sched.WorkStealing},
		BatchSizes: []int{4, 16},
		Capacities: []int{64, 512},
	}
}

func fixture(t testing.TB) (*gbz.File, []seeds.ReadSeeds, *workload.Bundle) {
	t.Helper()
	b, err := workload.Generate(workload.AHuman().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := b.CaptureSeeds()
	if err != nil {
		t.Fatal(err)
	}
	return b.GBZ(), recs, b
}

func TestCombosIncludeDefault(t *testing.T) {
	combos := tinySpace().Combos()
	want := 2*2*2 + 1 // grid + appended default
	if len(combos) != want {
		t.Fatalf("%d combos, want %d", len(combos), want)
	}
	found := false
	for _, c := range combos {
		if c == DefaultCombo() {
			found = true
		}
	}
	if !found {
		t.Error("default combo missing")
	}
	// A space containing the default must not duplicate it.
	s := DefaultSpace()
	count := 0
	for _, c := range s.Combos() {
		if c == DefaultCombo() {
			count++
		}
	}
	if count != 1 {
		t.Errorf("default combo appears %d times", count)
	}
}

func TestComboString(t *testing.T) {
	c := Combo{Scheduler: sched.Dynamic, BatchSize: 128, Capacity: 1024}
	if got := c.String(); got != "openmp-dynamic/bs128/cc1024" {
		t.Errorf("String = %q", got)
	}
}

func TestRunGridAndReports(t *testing.T) {
	f, recs, b := fixture(t)
	var progressed int
	g, err := RunGrid(f, recs, 2, tinySpace(), 1, func(done, total int, m Measurement) {
		progressed++
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Input = b.Spec.Name
	if len(g.Measurements) != len(tinySpace().Combos()) {
		t.Fatalf("%d measurements", len(g.Measurements))
	}
	if progressed != len(g.Measurements) {
		t.Errorf("progress called %d times", progressed)
	}
	for _, m := range g.Measurements {
		if m.Makespan <= 0 {
			t.Fatalf("combo %s has zero makespan", m.Combo)
		}
	}
	best, err := g.Best()
	if err != nil {
		t.Fatal(err)
	}
	def, err := g.Default()
	if err != nil {
		t.Fatal(err)
	}
	if best.Makespan > def.Makespan {
		t.Error("best slower than default")
	}
	sp, err := g.Speedup()
	if err != nil {
		t.Fatal(err)
	}
	if sp < 1 {
		t.Errorf("speedup %f < 1", sp)
	}
}

func TestEmptyGridErrors(t *testing.T) {
	g := &Grid{}
	if _, err := g.Best(); err == nil {
		t.Error("empty Best accepted")
	}
	if _, err := g.Default(); err == nil {
		t.Error("empty Default accepted")
	}
	if _, err := g.DefaultIndex(); err == nil {
		t.Error("empty DefaultIndex accepted")
	}
}

func TestANOVAByFactor(t *testing.T) {
	f, recs, _ := fixture(t)
	g, err := RunGrid(f, recs, 2, tinySpace(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.ANOVAByFactor()
	if err != nil {
		t.Fatal(err)
	}
	for _, factor := range []string{"scheduler", "batch", "capacity"} {
		a, ok := res[factor]
		if !ok {
			t.Fatalf("missing factor %s", factor)
		}
		if a.P < 0 || a.P > 1 {
			t.Errorf("%s: p = %f", factor, a.P)
		}
		if a.F < 0 {
			t.Errorf("%s: F = %f", factor, a.F)
		}
	}
}

func TestProjection(t *testing.T) {
	f, recs, b := fixture(t)
	g, err := RunGrid(f, recs, 2, tinySpace(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Input = b.Spec.Name
	for _, m := range machine.All() {
		p, err := Project(g, b, m, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		if p.OOM {
			t.Fatalf("%s OOM on A-human", m.Name)
		}
		if len(p.Seconds) != len(g.Measurements) {
			t.Fatalf("%s: %d projections", m.Name, len(p.Seconds))
		}
		for i, s := range p.Seconds {
			if s <= 0 {
				t.Fatalf("%s combo %d: projected %f", m.Name, i, s)
			}
		}
		if _, err := p.BestIndex(); err != nil {
			t.Fatal(err)
		}
	}
	// D-HPRC must OOM on the 256 GB machines.
	bigBundle := *b
	spec := workload.DHPRC()
	bigBundle.Spec = spec
	p, err := Project(g, &bigBundle, machine.ChiARM, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.OOM {
		t.Error("D-HPRC did not OOM on chi-arm")
	}
	if _, err := p.BestIndex(); err == nil {
		t.Error("BestIndex on OOM projection accepted")
	}
	// Invalid local speedup.
	if _, err := Project(g, b, machine.LocalAMD, 0); err == nil {
		t.Error("zero local speedup accepted")
	}
}

func TestCapacityInteractsWithL3(t *testing.T) {
	// The same grid projected on a small-L3 and a big-L3 machine: the
	// spread between capacity extremes must be wider on the small-L3 box —
	// the paper's finding that powerful hardware benefits least from
	// tuning.
	f, recs, b := fixture(t)
	space := Space{
		Schedulers: []sched.Kind{sched.Dynamic},
		BatchSizes: []int{16},
		Capacities: []int{64, 65536},
	}
	g, err := RunGrid(f, recs, 2, space, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(m machine.Machine) float64 {
		p, err := Project(g, b, m, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := p.Seconds[0], p.Seconds[0]
		for _, s := range p.Seconds[:len(space.Capacities)] {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		return hi / lo
	}
	if spread(machine.LocalIntel) <= spread(machine.LocalAMD) {
		t.Errorf("local-intel spread %.3f not above local-amd %.3f",
			spread(machine.LocalIntel), spread(machine.LocalAMD))
	}
}

func TestWriteHeatmapCSV(t *testing.T) {
	f, recs, b := fixture(t)
	space := tinySpace()
	g, err := RunGrid(f, recs, 2, space, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHeatmapCSV(&buf, g, nil, space); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + schedulers*batches rows
	if want := 1 + 2*2; len(lines) != want {
		t.Fatalf("%d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "scheduler,batch,cc64,cc512") {
		t.Errorf("header = %q", lines[0])
	}
	// With projection.
	p, err := Project(g, b, machine.ChiIntel, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteHeatmapCSV(&buf, g, p, space); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) != 5 {
		t.Error("projected heatmap malformed")
	}
}
