// Package sched provides the parallel schedulers the miniGiraffe paper
// studies (§V, §VII-B): an OpenMP-style dynamic batch scheduler (the proxy's
// default), a static partitioner, and the paper's in-house work-stealing
// scheduler, where the workload is split evenly and idle workers steal
// batch-sized chunks from victims round-robin using atomic read-modify-write
// operations. Batch size is one of the three autotuning parameters.
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Kind selects a scheduling policy.
type Kind int

// The supported policies.
const (
	// Dynamic mimics OpenMP's dynamic schedule: a shared atomic cursor hands
	// out batches in order.
	Dynamic Kind = iota
	// WorkStealing splits the iteration space evenly; idle workers steal
	// batches from the remaining work of others, round-robin.
	WorkStealing
	// Static gives each worker one contiguous share, no load balancing.
	Static
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Dynamic:
		return "openmp-dynamic"
	case WorkStealing:
		return "work-stealing"
	case Static:
		return "static"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses a policy name (as used on the command line).
func ParseKind(s string) (Kind, error) {
	switch s {
	case "openmp-dynamic", "dynamic", "omp":
		return Dynamic, nil
	case "work-stealing", "ws", "steal":
		return WorkStealing, nil
	case "static":
		return Static, nil
	default:
		return 0, fmt.Errorf("sched: unknown scheduler %q", s)
	}
}

// DefaultBatchSize is Giraffe's default batch size.
const DefaultBatchSize = 512

// Config parameterises a parallel run.
type Config struct {
	Kind      Kind
	Threads   int // ≤0 means GOMAXPROCS
	BatchSize int // ≤0 means DefaultBatchSize
	// Obs, when non-nil, receives the scheduler's claim/steal counters
	// (sched_claims_total, sched_steals_total) live as batches are claimed.
	Obs *obs.Registry
}

// normalize fills defaults.
func (c Config) normalize() Config {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	return c
}

// Stats reports per-run scheduling behaviour.
type Stats struct {
	// Processed[w] counts items executed by worker w.
	Processed []int64
	// Steals counts successful steal operations (work-stealing only).
	Steals int64
}

// Imbalance returns max/mean of per-worker processed counts (1 = perfect).
func (s Stats) Imbalance() float64 {
	if len(s.Processed) == 0 {
		return 1
	}
	var max, sum int64
	for _, p := range s.Processed {
		sum += p
		if p > max {
			max = p
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(s.Processed))
	return float64(max) / mean
}

// Run executes fn(worker, index) for every index in [0, n), distributing
// work across cfg.Threads goroutines under the configured policy. fn must be
// safe for concurrent invocation with distinct worker ids. Run blocks until
// all items complete.
func Run(cfg Config, n int, fn func(worker, index int)) (Stats, error) {
	return RunBatches(cfg, n, func(worker, start, end int) {
		for i := start; i < end; i++ {
			fn(worker, i)
		}
	})
}

// RunBatches is Run at batch granularity: fn receives each claimed batch as
// a half-open index range [start, end). Mappers use this to set up per-batch
// state (Giraffe re-creates its CachedGBWT per batch, which is why the
// initial-capacity tuning parameter exists).
func RunBatches(cfg Config, n int, fn func(worker, start, end int)) (Stats, error) {
	if n < 0 {
		return Stats{}, errors.New("sched: negative item count")
	}
	cfg = cfg.normalize()
	if cfg.Threads > n && n > 0 {
		cfg.Threads = n
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	stats := Stats{Processed: make([]int64, cfg.Threads)}
	if n == 0 {
		return stats, nil
	}
	if cfg.Obs != nil {
		// Live claim counting wraps fn; the steal total is mirrored after
		// the run (batch runs are bounded, so post-hoc is fresh enough).
		// Declaring the worker population lets scrapes derive the claim
		// imbalance and steal-share gauges from the per-shard counters.
		cfg.Obs.SetWorkerShards(cfg.Threads)
		claims := cfg.Obs.Counter(obs.MetricSchedClaims)
		inner := fn
		fn = func(worker, start, end int) {
			claims.Inc(worker)
			inner(worker, start, end)
		}
		defer func() {
			cfg.Obs.Counter(obs.MetricSchedSteals).Add(0, atomic.LoadInt64(&stats.Steals))
		}()
	}
	switch cfg.Kind {
	case Dynamic:
		runDynamic(cfg, n, fn, &stats)
	case WorkStealing:
		runWorkStealing(cfg, n, fn, &stats)
	case Static:
		runStatic(cfg, n, fn, &stats)
	default:
		return Stats{}, fmt.Errorf("sched: unknown scheduler kind %d", cfg.Kind)
	}
	return stats, nil
}

// runDynamic hands out batches from a shared atomic cursor.
func runDynamic(cfg Config, n int, fn func(worker, start, end int), stats *Stats) {
	var cursor int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&cursor, int64(cfg.BatchSize))) - cfg.BatchSize
				if start >= n {
					return
				}
				end := start + cfg.BatchSize
				if end > n {
					end = n
				}
				fn(worker, start, end)
				atomic.AddInt64(&stats.Processed[worker], int64(end-start))
			}
		}(w)
	}
	wg.Wait()
}

// runStatic gives worker w the contiguous range [w*n/T, (w+1)*n/T),
// delivered in BatchSize chunks so per-batch state costs match the dynamic
// policies.
func runStatic(cfg Config, n int, fn func(worker, start, end int), stats *Stats) {
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			start := worker * n / cfg.Threads
			end := (worker + 1) * n / cfg.Threads
			for b := start; b < end; b += cfg.BatchSize {
				be := b + cfg.BatchSize
				if be > end {
					be = end
				}
				fn(worker, b, be)
			}
			atomic.AddInt64(&stats.Processed[worker], int64(end-start))
		}(w)
	}
	wg.Wait()
}

// runWorkStealing splits [0,n) evenly into per-worker regions, each consumed
// in batch-size chunks through an atomic cursor; exhausted workers steal
// chunks from victims' cursors round-robin — the paper's lightweight
// scheduler (§VII-B).
func runWorkStealing(cfg Config, n int, fn func(worker, start, end int), stats *Stats) {
	t := cfg.Threads
	// Region bounds and cursors. cursor[w] is the next unclaimed index in
	// worker w's region.
	cursors := make([]int64, t)
	hi := make([]int64, t)
	for w := 0; w < t; w++ {
		cursors[w] = int64(w * n / t)
		hi[w] = int64((w + 1) * n / t)
	}
	// grab claims up to batch items from region w via atomic RMW. An
	// exhausted region answers with a plain load so steal probes against
	// drained victims don't pay (or cause) RMW cache-line traffic, and a
	// raced-past cursor is clamped back to hi so it cannot inflate by one
	// batch per probe for the rest of the run.
	grab := func(w int) (start, end int, ok bool) {
		h := hi[w]
		if atomic.LoadInt64(&cursors[w]) >= h {
			return 0, 0, false
		}
		s := atomic.AddInt64(&cursors[w], int64(cfg.BatchSize)) - int64(cfg.BatchSize)
		if s >= h {
			atomic.CompareAndSwapInt64(&cursors[w], s+int64(cfg.BatchSize), h)
			return 0, 0, false
		}
		e := s + int64(cfg.BatchSize)
		if e > h {
			e = h
		}
		return int(s), int(e), true
	}
	var wg sync.WaitGroup
	for w := 0; w < t; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Own region first.
			for {
				start, end, ok := grab(worker)
				if !ok {
					break
				}
				fn(worker, start, end)
				atomic.AddInt64(&stats.Processed[worker], int64(end-start))
			}
			// Steal round-robin from the next workers.
			for off := 1; off < t; off++ {
				victim := (worker + off) % t
				for {
					start, end, ok := grab(victim)
					if !ok {
						break
					}
					atomic.AddInt64(&stats.Steals, 1)
					fn(worker, start, end)
					atomic.AddInt64(&stats.Processed[worker], int64(end-start))
				}
			}
		}(w)
	}
	wg.Wait()
}
