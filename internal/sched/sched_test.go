package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func allKinds() []Kind { return []Kind{Dynamic, WorkStealing, Static} }

func TestEveryIndexProcessedExactlyOnce(t *testing.T) {
	for _, kind := range allKinds() {
		for _, n := range []int{0, 1, 7, 100, 1000, 4097} {
			for _, threads := range []int{1, 2, 4, 9} {
				for _, batch := range []int{1, 8, 512} {
					counts := make([]int64, n)
					stats, err := Run(Config{Kind: kind, Threads: threads, BatchSize: batch}, n,
						func(worker, index int) {
							atomic.AddInt64(&counts[index], 1)
						})
					if err != nil {
						t.Fatalf("%v n=%d t=%d b=%d: %v", kind, n, threads, batch, err)
					}
					for i, c := range counts {
						if c != 1 {
							t.Fatalf("%v n=%d t=%d b=%d: index %d processed %d times", kind, n, threads, batch, i, c)
						}
					}
					var total int64
					for _, p := range stats.Processed {
						total += p
					}
					if total != int64(n) {
						t.Fatalf("%v: stats total %d, want %d", kind, total, n)
					}
				}
			}
		}
	}
}

func TestRunPropertyQuick(t *testing.T) {
	f := func(nRaw uint16, tRaw, bRaw uint8, kindRaw uint8) bool {
		n := int(nRaw % 2000)
		threads := int(tRaw%8) + 1
		batch := int(bRaw%64) + 1
		kind := allKinds()[int(kindRaw)%3]
		var processed int64
		_, err := Run(Config{Kind: kind, Threads: threads, BatchSize: batch}, n,
			func(worker, index int) { atomic.AddInt64(&processed, 1) })
		return err == nil && processed == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNegativeCount(t *testing.T) {
	if _, err := Run(Config{}, -1, func(int, int) {}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestWorkerIDsInRange(t *testing.T) {
	for _, kind := range allKinds() {
		const threads = 4
		var bad int64
		_, err := Run(Config{Kind: kind, Threads: threads, BatchSize: 16}, 500,
			func(worker, index int) {
				if worker < 0 || worker >= threads {
					atomic.AddInt64(&bad, 1)
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		if bad != 0 {
			t.Errorf("%v: %d out-of-range worker ids", kind, bad)
		}
	}
}

func TestWorkStealingBalancesSkewedWork(t *testing.T) {
	// Front-loaded work: static scheduling leaves worker 0 doing nearly all
	// the time; work stealing must spread it.
	const n = 400
	work := func(worker, index int) {
		if index < 100 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	stats, err := Run(Config{Kind: WorkStealing, Threads: 4, BatchSize: 8}, n, work)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steals == 0 {
		t.Error("no steals despite skewed work")
	}
	// The hard property is that stealing happened; the balance bound is
	// loose because single-CPU hosts (and the race detector) serialise the
	// sleep-dominated work.
	if imb := stats.Imbalance(); imb > 3.6 {
		t.Errorf("imbalance %f too high for work stealing", imb)
	}
}

func TestStaticNoSteals(t *testing.T) {
	stats, err := Run(Config{Kind: Static, Threads: 4, BatchSize: 8}, 100, func(int, int) {})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steals != 0 {
		t.Errorf("static scheduler recorded %d steals", stats.Steals)
	}
}

// TestRunBatchesEdgeCases pins the batch-granularity contract on the shapes
// that have historically broken schedulers: workloads smaller than a batch,
// more threads than items, empty workloads, and unit batches. Every index
// must be visited exactly once, in well-formed batch ranges.
func TestRunBatchesEdgeCases(t *testing.T) {
	cases := []struct{ n, threads, batch int }{
		{n: 5, threads: 2, batch: 8},   // n < BatchSize
		{n: 3, threads: 9, batch: 2},   // Threads > n
		{n: 0, threads: 4, batch: 8},   // n == 0
		{n: 97, threads: 4, batch: 1},  // BatchSize == 1
		{n: 1, threads: 1, batch: 1},   // minimal
		{n: 16, threads: 16, batch: 1}, // one item per worker, max steal pressure
	}
	for _, kind := range allKinds() {
		for _, c := range cases {
			counts := make([]int64, c.n)
			var batches int64
			stats, err := RunBatches(Config{Kind: kind, Threads: c.threads, BatchSize: c.batch}, c.n,
				func(worker, start, end int) {
					atomic.AddInt64(&batches, 1)
					if start < 0 || end > c.n || start >= end {
						t.Errorf("%v n=%d t=%d b=%d: malformed batch [%d,%d)", kind, c.n, c.threads, c.batch, start, end)
						return
					}
					if end-start > c.batch {
						t.Errorf("%v n=%d t=%d b=%d: batch [%d,%d) exceeds batch size", kind, c.n, c.threads, c.batch, start, end)
					}
					for i := start; i < end; i++ {
						atomic.AddInt64(&counts[i], 1)
					}
				})
			if err != nil {
				t.Fatalf("%v n=%d t=%d b=%d: %v", kind, c.n, c.threads, c.batch, err)
			}
			for i, cnt := range counts {
				if cnt != 1 {
					t.Fatalf("%v n=%d t=%d b=%d: index %d visited %d times", kind, c.n, c.threads, c.batch, i, cnt)
				}
			}
			if c.n == 0 && batches != 0 {
				t.Errorf("%v: %d batches delivered for empty workload", kind, batches)
			}
			var total int64
			for _, p := range stats.Processed {
				total += p
			}
			if total != int64(c.n) {
				t.Errorf("%v n=%d t=%d b=%d: stats total %d", kind, c.n, c.threads, c.batch, total)
			}
		}
	}
}

// TestWorkStealingGrabExhaustion hammers tiny regions with many thieves so
// every worker probes exhausted victims repeatedly — the path where the grab
// cursor used to inflate by a batch per probe.
func TestWorkStealingGrabExhaustion(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		const n, threads = 7, 8
		counts := make([]int64, n)
		_, err := RunBatches(Config{Kind: WorkStealing, Threads: threads, BatchSize: 1}, n,
			func(worker, start, end int) {
				for i := start; i < end; i++ {
					atomic.AddInt64(&counts[i], 1)
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("iter %d: index %d visited %d times", iter, i, c)
			}
		}
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"dynamic": Dynamic, "openmp-dynamic": Dynamic, "omp": Dynamic,
		"work-stealing": WorkStealing, "ws": WorkStealing, "steal": WorkStealing,
		"static": Static,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range allKinds() {
		if k.String() == "" {
			t.Errorf("empty String for kind %d", int(k))
		}
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Errorf("round trip failed for %v", k)
		}
	}
}

func TestImbalance(t *testing.T) {
	s := Stats{Processed: []int64{10, 10, 10, 10}}
	if got := s.Imbalance(); got != 1 {
		t.Errorf("balanced imbalance = %f", got)
	}
	s = Stats{Processed: []int64{40, 0, 0, 0}}
	if got := s.Imbalance(); got != 4 {
		t.Errorf("skewed imbalance = %f, want 4", got)
	}
	if (Stats{}).Imbalance() != 1 {
		t.Error("empty stats imbalance != 1")
	}
}

func TestConcurrentWorkersActuallyParallel(t *testing.T) {
	// With 4 threads and sleep-heavy items, wall time must be well under the
	// serial sum.
	const n = 40
	const itemDelay = 2 * time.Millisecond
	var mu sync.Mutex
	seen := map[int]bool{}
	start := time.Now()
	_, err := Run(Config{Kind: Dynamic, Threads: 4, BatchSize: 1}, n, func(worker, index int) {
		time.Sleep(itemDelay)
		mu.Lock()
		seen[worker] = true
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if serial := time.Duration(n) * itemDelay; elapsed > serial*3/4 {
		t.Errorf("elapsed %v suggests no parallelism (serial would be %v)", elapsed, serial)
	}
	if len(seen) < 2 {
		t.Errorf("only %d workers participated", len(seen))
	}
}

func BenchmarkDynamicOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Kind: Dynamic, Threads: 4, BatchSize: 64}, 10000, func(int, int) {}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkStealingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Kind: WorkStealing, Threads: 4, BatchSize: 64}, 10000, func(int, int) {}); err != nil {
			b.Fatal(err)
		}
	}
}
