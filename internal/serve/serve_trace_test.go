package serve_test

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/trace"
)

func getTraces(t *testing.T, url string) obs.ReqTraceSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/traces status %d", resp.StatusCode)
	}
	var snap obs.ReqTraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func findTrace(snap obs.ReqTraceSnapshot, id trace.ID) *obs.SampledTrace {
	for i := range snap.Traces {
		if snap.Traces[i].TraceID == id {
			return &snap.Traces[i]
		}
	}
	return nil
}

func spanNames(tr *obs.SampledTrace) map[string]int {
	names := make(map[string]int)
	for _, sp := range tr.Spans {
		names[sp.Name]++
	}
	return names
}

func TestTracePropagationAndSpans(t *testing.T) {
	tracer := obs.NewReqTracer(2, 8, 8, nil)
	ts, _ := harness(t, &fakeMapper{}, pipeline.Options{Workers: 2, BatchSize: 4, Depth: 16},
		serve.Config{Traces: tracer})

	id := trace.ID{Hi: 0xfeed, Lo: 0xbeef}
	resp := postMap(t, ts.URL, mapBody(t, 10), map[string]string{
		trace.TraceparentHeader: trace.Traceparent(id),
		"X-Client":              "alice",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	// The response echoes the trace identity: header and body.
	if got, ok := trace.ParseTraceparent(resp.Header.Get(trace.TraceparentHeader)); !ok || got != id {
		t.Fatalf("response traceparent = %q, want id %v", resp.Header.Get(trace.TraceparentHeader), id)
	}
	var mr serve.MapResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.TraceID != id {
		t.Fatalf("response trace_id = %v, want %v", mr.TraceID, id)
	}

	tr := findTrace(getTraces(t, ts.URL), id)
	if tr == nil {
		t.Fatal("2xx trace not sampled (k=8 reservoir should keep it)")
	}
	if tr.Client != "alice" || tr.Status != http.StatusOK || tr.Reads != 10 {
		t.Fatalf("trace header = %+v", tr)
	}
	names := spanNames(tr)
	// 10 reads at batch size 4 → 3 sub-batches, each with a queue_wait and a
	// map_subbatch span, bracketed by admit and emit.
	if names[obs.SpanAdmit] != 1 || names[obs.SpanEmit] != 1 ||
		names[obs.SpanQueueWait] != 3 || names[obs.SpanMapSubbatch] != 3 {
		t.Fatalf("span census = %v", names)
	}
	for _, sp := range tr.Spans {
		if sp.Name == obs.SpanMapSubbatch && sp.Worker < 0 {
			t.Fatalf("map span missing worker attribution: %+v", sp)
		}
		if sp.Canceled {
			t.Fatalf("successful request has canceled span %+v", sp)
		}
	}
}

func TestTraceGeneratedIDWithoutHeader(t *testing.T) {
	tracer := obs.NewReqTracer(1, 4, 4, nil)
	ts, _ := harness(t, &fakeMapper{}, pipeline.Options{Workers: 1, BatchSize: 8, Depth: 16},
		serve.Config{Traces: tracer})
	resp := postMap(t, ts.URL, mapBody(t, 2), nil)
	defer resp.Body.Close()
	var mr serve.MapResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.TraceID.IsZero() {
		t.Fatal("server did not generate a trace ID for a headerless request")
	}
	if findTrace(getTraces(t, ts.URL), mr.TraceID) == nil {
		t.Fatal("generated-ID trace not sampled")
	}
}

func TestTrace504KeptWithCancellation(t *testing.T) {
	tracer := obs.NewReqTracer(1, 1, 8, nil)
	fm := &fakeMapper{delay: 2 * time.Millisecond}
	ts, reg := harness(t, fm, pipeline.Options{Workers: 1, BatchSize: 8, Depth: 64},
		serve.Config{Traces: tracer})

	id := trace.ID{Hi: 5, Lo: 4}
	resp := postMap(t, ts.URL, mapBody(t, 256), map[string]string{
		trace.TraceparentHeader: trace.Traceparent(id),
		"X-Deadline-Ms":         "20",
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	// Wait for the workers to drain the canceled sub-batches so their cancel
	// spans have landed on the trace.
	waitFor(t, func() bool {
		return reg.Snapshot().Gauges[obs.MetricServeQueueDepth] == 0
	})
	tr := findTrace(getTraces(t, ts.URL), id)
	if tr == nil {
		t.Fatal("504 trace not retained — tail sampler must keep every non-2xx")
	}
	if tr.Status != http.StatusGatewayTimeout {
		t.Fatalf("trace status = %d, want 504", tr.Status)
	}
	names := spanNames(tr)
	if names[obs.SpanAdmit] != 1 || names[obs.SpanQueueWait] == 0 {
		t.Fatalf("span census = %v", names)
	}
	// The deadline either stopped a kernel mid-batch (canceled map span) or
	// skipped queued sub-batches outright (cancel spans) — a 504 shows at
	// least one of the two.
	sawCancel := names[obs.SpanCancel] > 0
	for _, sp := range tr.Spans {
		if sp.Name == obs.SpanMapSubbatch && sp.Canceled {
			sawCancel = true
		}
	}
	if !sawCancel {
		t.Fatalf("504 trace shows no cancellation: %v", names)
	}
	if names[obs.SpanEmit] != 0 {
		t.Fatal("504 trace has an emit span; the response was an error body")
	}
}

func TestTraceSlowReadCrossLink(t *testing.T) {
	tracer := obs.NewReqTracer(1, 4, 4, nil)
	slow := obs.NewSlowReads(2, 4)
	fm := &fakeMapper{slow: slow}
	ts, _ := harness(t, fm, pipeline.Options{Workers: 1, BatchSize: 8, Depth: 16},
		serve.Config{Traces: tracer, Slow: slow})

	id := trace.ID{Hi: 9, Lo: 9}
	resp := postMap(t, ts.URL, mapBody(t, 4), map[string]string{
		trace.TraceparentHeader: trace.Traceparent(id),
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	tr := findTrace(getTraces(t, ts.URL), id)
	if tr == nil {
		t.Fatal("trace not sampled")
	}
	if len(tr.SlowReads) == 0 {
		t.Fatal("sampled trace not cross-linked to its slow-read exemplars")
	}
	for _, ex := range tr.SlowReads {
		if ex.Trace != id {
			t.Fatalf("cross-linked exemplar carries trace %v, want %v", ex.Trace, id)
		}
	}
}
