package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dna"
	"repro/internal/extend"
	"repro/internal/gbwt"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/seeds"
	"repro/internal/serve"
	"repro/internal/vgraph"
)

// fakeMapper maps each record to one extension whose node encodes the
// record's global index, after an optional per-record delay and an optional
// gate on batch entry, honouring the stop flag as core.Mapper does.
type fakeMapper struct {
	delay time.Duration
	gate  chan struct{}
	// slow, when set, receives one exemplar per mapped record carrying the
	// sub-batch's trace ID, mimicking core.Mapper's slow-read attribution.
	slow *obs.SlowReads
}

func (f *fakeMapper) MapBatchUntil(worker int, recs []seeds.ReadSeeds, base int, out [][]extend.Extension, stop *atomic.Bool, sb *obs.SubBatch) (gbwt.CacheStats, int) {
	if f.gate != nil {
		<-f.gate
	}
	mapped := 0
	for j := range recs {
		if stop != nil && stop.Load() {
			break
		}
		if f.delay > 0 {
			time.Sleep(f.delay)
		}
		out[j] = []extend.Extension{{StartPos: vgraph.Position{Node: vgraph.NodeID(base + j)}, Score: 7}}
		if f.slow != nil && sb != nil {
			f.slow.Offer(worker, obs.Exemplar{
				Read: recs[j].Read.Name, Index: base + j, Worker: worker,
				TotalNanos: int64(base + j + 1), Trace: sb.Trace,
			})
		}
		mapped++
	}
	return gbwt.CacheStats{}, mapped
}

// harness builds a server over a fake-mapper session and an identity
// extractor, returning the test server and the registry for counter
// assertions.
func harness(t *testing.T, fm *fakeMapper, popts pipeline.Options, cfg serve.Config) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry(4)
	sess, err := pipeline.NewSession(fm, popts, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	cfg.Session = sess
	cfg.Reg = reg
	if cfg.Extract == nil {
		cfg.Extract = func(read *dna.Read) (seeds.ReadSeeds, error) {
			return seeds.ReadSeeds{Read: *read}, nil
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

func mapBody(t *testing.T, n int) []byte {
	t.Helper()
	req := serve.MapRequest{Reads: make([]serve.WireRead, n)}
	for i := range req.Reads {
		req.Reads[i] = serve.WireRead{Name: fmt.Sprintf("r%d", i), Seq: "ACGTACGT"}
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postMap(t *testing.T, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/map", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestMapOK(t *testing.T) {
	ts, _ := harness(t, &fakeMapper{}, pipeline.Options{Workers: 2, BatchSize: 4, Depth: 16}, serve.Config{})
	resp := postMap(t, ts.URL, mapBody(t, 10), nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var mr serve.MapResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Reads != 10 || len(mr.Results) != 10 {
		t.Fatalf("reads=%d results=%d, want 10/10", mr.Reads, len(mr.Results))
	}
	for i, res := range mr.Results {
		if res.Read != fmt.Sprintf("r%d", i) {
			t.Fatalf("result %d is read %q — responses must preserve request order", i, res.Read)
		}
		if len(res.Extensions) != 1 || res.Extensions[0].Score != 7 {
			t.Fatalf("result %d: unexpected extensions %+v", i, res.Extensions)
		}
	}
	if mr.Extensions != 10 {
		t.Errorf("extension total %d, want 10", mr.Extensions)
	}
}

// TestMapOrderedUnderConcurrency drives many clients concurrently and
// checks every response's results are in that request's order (the fake
// encodes the global record index, which must be contiguous per request).
func TestMapOrderedUnderConcurrency(t *testing.T) {
	ts, _ := harness(t, &fakeMapper{}, pipeline.Options{Workers: 4, BatchSize: 3, Depth: 256}, serve.Config{PerClient: 64})
	const clients, perClient, reads = 6, 10, 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				resp := postMap(t, ts.URL, mapBody(t, reads), map[string]string{"X-Client": fmt.Sprintf("c%d", c)})
				var mr serve.MapResponse
				err := json.NewDecoder(resp.Body).Decode(&mr)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				first := mr.Results[0].Extensions[0].Node
				for i, res := range mr.Results {
					if res.Read != fmt.Sprintf("r%d", i) {
						errCh <- fmt.Errorf("result %d is read %q", i, res.Read)
						return
					}
					if res.Extensions[0].Node != first+uint32(i) {
						errCh <- fmt.Errorf("result %d: node %d, want %d (out of order)", i, res.Extensions[0].Node, first+uint32(i))
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestPerClientAdmission: a client at its in-flight cap gets 429 with
// Retry-After while another client is still admitted.
func TestPerClientAdmission(t *testing.T) {
	fm := &fakeMapper{gate: make(chan struct{})}
	ts, reg := harness(t, fm, pipeline.Options{Workers: 1, BatchSize: 4, Depth: 16}, serve.Config{PerClient: 1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postMap(t, ts.URL, mapBody(t, 4), map[string]string{"X-Client": "greedy"})
		resp.Body.Close()
	}()
	waitFor(t, func() bool { return reg.Counter(obs.MetricSchedClaims).Value() == 1 })

	resp := postMap(t, ts.URL, mapBody(t, 4), map[string]string{"X-Client": "greedy"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second in-flight request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := reg.Counter(obs.MetricServeClientRejects).Value(); got != 1 {
		t.Errorf("serve_client_rejects_total = %d, want 1", got)
	}
	close(fm.gate)
	wg.Wait()
}

// TestQueueFullAdmission: with the worker parked and the session queue
// packed, a fresh client's request is rejected 429 by the shared bound.
func TestQueueFullAdmission(t *testing.T) {
	fm := &fakeMapper{gate: make(chan struct{})}
	ts, reg := harness(t, fm, pipeline.Options{Workers: 1, BatchSize: 4, Depth: 1}, serve.Config{PerClient: 8})

	var wg sync.WaitGroup
	post := func(client string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postMap(t, ts.URL, mapBody(t, 4), map[string]string{"X-Client": client})
			resp.Body.Close()
		}()
	}
	post("a") // parks on the gated worker
	waitFor(t, func() bool { return reg.Counter(obs.MetricSchedClaims).Value() == 1 })
	post("b") // fills the depth-1 queue
	waitFor(t, func() bool { return reg.Gauge(obs.MetricServeQueueDepth).Value() >= 1 })

	resp := postMap(t, ts.URL, mapBody(t, 4), map[string]string{"X-Client": "c"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full request: status %d, want 429", resp.StatusCode)
	}
	if got := reg.Counter(obs.MetricServeQueueRejects).Value(); got != 1 {
		t.Errorf("serve_queue_rejects_total = %d, want 1", got)
	}
	close(fm.gate)
	wg.Wait()
}

// TestDeadline: a request whose deadline cannot be met gets 504, and the
// cancellation is visible in the session's canceled counters — the mapper
// really stopped.
func TestDeadline(t *testing.T) {
	fm := &fakeMapper{delay: 2 * time.Millisecond}
	ts, reg := harness(t, fm, pipeline.Options{Workers: 1, BatchSize: 8, Depth: 64}, serve.Config{})

	resp := postMap(t, ts.URL, mapBody(t, 256), map[string]string{"X-Deadline-Ms": "20"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("impossible deadline: status %d, want 504", resp.StatusCode)
	}
	waitFor(t, func() bool {
		snap := reg.Snapshot()
		return snap.Counters[obs.MetricServeDeadline] == 1 &&
			snap.Counters[obs.MetricServeCanceledReads] > 0 &&
			snap.Gauges[obs.MetricServeQueueDepth] == 0
	})
}

// TestDrain: after EnterDrain, /map and /healthz answer 503 while /stats
// stays up; in-flight requests complete.
func TestDrain(t *testing.T) {
	fm := &fakeMapper{gate: make(chan struct{})}
	reg := obs.NewRegistry(4)
	sess, err := pipeline.NewSession(fm, pipeline.Options{Workers: 1, BatchSize: 4, Depth: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	srv, err := serve.New(serve.Config{
		Session: sess,
		Reg:     reg,
		Extract: func(read *dna.Read) (seeds.ReadSeeds, error) { return seeds.ReadSeeds{Read: *read}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	inFlightStatus := make(chan int, 1)
	go func() {
		defer wg.Done()
		resp := postMap(t, ts.URL, mapBody(t, 4), nil)
		resp.Body.Close()
		inFlightStatus <- resp.StatusCode
	}()
	waitFor(t, func() bool { return reg.Counter(obs.MetricSchedClaims).Value() == 1 })

	srv.EnterDrain()
	resp := postMap(t, ts.URL, mapBody(t, 4), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/map while draining: status %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining: status %d, want 503", hresp.StatusCode)
	}
	if got := reg.Counter(obs.MetricServeDrainRejects).Value(); got == 0 {
		t.Error("serve_drain_rejects_total = 0, want > 0")
	}

	close(fm.gate)
	wg.Wait()
	if got := <-inFlightStatus; got != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200 (drain must not drop accepted work)", got)
	}
}

func TestBadRequests(t *testing.T) {
	ts, reg := harness(t, &fakeMapper{}, pipeline.Options{Workers: 1, BatchSize: 4, Depth: 16}, serve.Config{MaxReads: 8})
	for _, tc := range []struct {
		name string
		body []byte
		want int
	}{
		{"not json", []byte("{"), http.StatusBadRequest},
		{"no reads", []byte(`{"reads":[]}`), http.StatusBadRequest},
		{"too many reads", mapBody(t, 9), http.StatusRequestEntityTooLarge},
		{"bad base", []byte(`{"reads":[{"name":"r","seq":"AXGT"}]}`), http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := postMap(t, ts.URL, tc.body, nil)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
	if got := reg.Counter(obs.MetricServeBadRequests).Value(); got != 4 {
		t.Errorf("serve_bad_requests_total = %d, want 4", got)
	}
}

// TestEndpoints smoke-checks the observability surface.
func TestEndpoints(t *testing.T) {
	ts, _ := harness(t, &fakeMapper{}, pipeline.Options{Workers: 1, BatchSize: 4, Depth: 16}, serve.Config{})
	resp := postMap(t, ts.URL, mapBody(t, 4), nil)
	resp.Body.Close()
	for _, path := range []string{"/healthz", "/stats", "/metrics", "/slow"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
