// Package serve is the mapping-as-a-service front end behind cmd/giraffed:
// an HTTP/JSON API over a pipeline.Session that loads the substrate once
// and maps read batches for many concurrent clients. It owns the
// request-scoped policies the batch binaries never needed:
//
//   - Admission control. Two bounds, both answered with 429 + Retry-After:
//     a per-client in-flight cap (one client cannot monopolise the pool)
//     and the session's shared queue depth (pipeline.ErrQueueFull).
//   - Deadlines. Every request runs under a context deadline — the
//     client's X-Deadline-Ms (or deadline_ms body field) clamped to the
//     server maximum, or the server default — which cancels queued and
//     in-flight mapping through the session; expiry surfaces as 504.
//   - Drain. EnterDrain flips /healthz to 503 and rejects new mapping
//     requests while in-flight ones finish, so a SIGTERM rollout loses no
//     accepted work.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dna"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/seeds"
	"repro/internal/trace"
)

// Config assembles a Server. Session and Extract are required.
type Config struct {
	// Session is the shared mapping pool.
	Session *pipeline.Session
	// Extract runs Giraffe's per-read preprocessing (minimizer lookup and
	// seed creation) — giraffe.Preprocess over the server's index in
	// production, a stub in tests.
	Extract func(read *dna.Read) (seeds.ReadSeeds, error)
	// Reg receives the HTTP-level metrics; may be nil.
	Reg *obs.Registry
	// Slow, when non-nil, is served at /slow.
	Slow *obs.SlowReads
	// Traces, when non-nil, tail-samples request lifecycle traces: every
	// /map request gets a span tree (admit, queue_wait, map_subbatch, emit),
	// the sampler keeps all non-2xx plus the top-K slowest 2xx, and the
	// retained traces are served at /traces.
	Traces *obs.ReqTracer
	// PerClient caps each client's in-flight requests; ≤0 means 4.
	PerClient int
	// MaxReads caps the reads per request; ≤0 means 4096.
	MaxReads int
	// DefaultDeadline applies when the client sends none; ≤0 means 10s.
	DefaultDeadline time.Duration
	// MaxDeadline clamps client deadlines; ≤0 means 60s.
	MaxDeadline time.Duration
	// RetryAfter is advertised on 429/503 responses; ≤0 means 1s.
	RetryAfter time.Duration
}

func (c Config) normalize() Config {
	if c.PerClient <= 0 {
		c.PerClient = 4
	}
	if c.MaxReads <= 0 {
		c.MaxReads = 4096
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the HTTP front end. Create with New, mount via Handler, drain
// with EnterDrain before shutting the http.Server down.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	draining atomic.Bool

	mu      sync.Mutex
	clients map[string]int // in-flight requests per client id

	// traceBase seeds server-generated trace IDs (requests arriving without
	// a traceparent header): Hi is fixed non-zero per process, Lo counts.
	traceBase uint64
	traceSeq  atomic.Uint64

	// Metric handles (nil-safe when cfg.Reg is nil). HTTP handlers run on
	// net/http's goroutines, not pipeline workers, so they round-robin over
	// the registry shards instead of claiming one.
	rr            atomic.Int64
	httpRequests  *obs.Counter
	httpOK        *obs.Counter
	clientRejects *obs.Counter
	deadlineHits  *obs.Counter
	drainRejects  *obs.Counter
	badRequests   *obs.Counter
	hExtract      *obs.Histogram

	// labels are the serving-class pprof labels the extraction stage wears
	// while preprocessing on the handler goroutine, so -profile captures
	// attribute seed extraction separately from mapping.
	labels *obs.ProfLabels
}

// New validates cfg and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.Session == nil {
		return nil, errors.New("serve: nil session")
	}
	if cfg.Extract == nil {
		return nil, errors.New("serve: nil extract function")
	}
	cfg = cfg.normalize()
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		start:     time.Now(),
		clients:   make(map[string]int),
		traceBase: uint64(time.Now().UnixNano()),

		httpRequests:  cfg.Reg.Counter(obs.MetricServeHTTPRequests),
		httpOK:        cfg.Reg.Counter(obs.MetricServeHTTPOK),
		clientRejects: cfg.Reg.Counter(obs.MetricServeClientRejects),
		deadlineHits:  cfg.Reg.Counter(obs.MetricServeDeadline),
		drainRejects:  cfg.Reg.Counter(obs.MetricServeDrainRejects),
		badRequests:   cfg.Reg.Counter(obs.MetricServeBadRequests),
		hExtract:      cfg.Reg.Histogram(obs.MetricServeExtract),
		labels:        obs.NewProfLabels(obs.ClassServe, 1),
	}
	s.mux.HandleFunc("POST /map", s.handleMap)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /slow", s.handleSlow)
	s.mux.HandleFunc("GET /traces", s.handleTraces)
	return s, nil
}

// Handler returns the route table, ready for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// EnterDrain rejects new mapping requests from now on (idempotent). The
// caller then lets http.Server.Shutdown wait out in-flight handlers and
// closes the session.
func (s *Server) EnterDrain() { s.draining.Store(true) }

// Draining reports whether EnterDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// MapRequest is the POST /map body.
type MapRequest struct {
	// Client identifies the submitting client for per-client admission;
	// the X-Client header takes precedence. Empty means "anon".
	Client string `json:"client,omitempty"`
	// DeadlineMs is the request's service deadline in milliseconds; the
	// X-Deadline-Ms header takes precedence. 0 means the server default.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Reads are the reads to map.
	Reads []WireRead `json:"reads"`
}

// WireRead is one read on the wire.
type WireRead struct {
	Name string `json:"name"`
	Seq  string `json:"seq"`
}

// MapResponse is the POST /map success body.
type MapResponse struct {
	// TraceID echoes the request's trace identity (the traceparent header's
	// trace-id field, or the server-generated one), so a client can join its
	// own latency observation to the server's /traces span tree.
	TraceID    trace.ID     `json:"trace_id"`
	Client     string       `json:"client"`
	Reads      int          `json:"reads"`
	Extensions int          `json:"extensions"`
	ServiceMs  float64      `json:"service_ms"`
	Results    []WireResult `json:"results"`
}

// WireResult is one read's mapping output.
type WireResult struct {
	Read       string          `json:"read"`
	Extensions []WireExtension `json:"extensions"`
}

// WireExtension mirrors the CSV row schema of the batch proxy (read, node,
// offset, strand, read interval, score, mismatches).
type WireExtension struct {
	Node       uint32  `json:"node"`
	Offset     int32   `json:"offset"`
	Strand     string  `json:"strand"`
	ReadStart  int32   `json:"read_start"`
	ReadEnd    int32   `json:"read_end"`
	Score      int32   `json:"score"`
	Mismatches []int32 `json:"mismatches,omitempty"`
}

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error string `json:"error"`
}

// shard picks a registry shard for this handler invocation: handlers run on
// arbitrary net/http goroutines, so spreading over shards keeps the record
// path as contention-free as the pipeline's.
func (s *Server) shard() int {
	n := s.cfg.Reg.Shards()
	if n <= 1 {
		return 0
	}
	return int(s.rr.Add(1)) % n
}

// handleMap owns the request's trace lifecycle: resolve the trace identity
// (propagated traceparent header, or a server-generated ID), open the trace,
// run the request, and hand the final status to the tail sampler — exactly
// one Finish per Start, whatever path serveMap exits through.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	sh := s.shard()
	s.httpRequests.Inc(sh)
	id, ok := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
	if !ok {
		id = trace.ID{Hi: s.traceBase, Lo: s.traceSeq.Add(1)}
	}
	w.Header().Set(trace.TraceparentHeader, trace.Traceparent(id))
	rt := s.cfg.Traces.Start(id, "")
	status := s.serveMap(w, r, sh, id, rt)
	s.cfg.Traces.Finish(rt, status)
}

// serveMap runs one mapping request and returns the HTTP status it wrote.
// The admit span covers everything up to session submission (parse, client
// and queue admission, seed extraction) and is recorded exactly once on
// every exit path; the emit span covers response construction.
func (s *Server) serveMap(w http.ResponseWriter, r *http.Request, sh int, id trace.ID, rt *obs.ReqTrace) int {
	admitStart := time.Now()
	admitDone := false
	endAdmit := func() {
		if !admitDone {
			admitDone = true
			rt.AddSpan(obs.SpanAdmit, -1, admitStart, time.Since(admitStart))
		}
	}
	defer endAdmit()
	if s.draining.Load() {
		s.drainRejects.Inc(sh)
		return s.reject(w, http.StatusServiceUnavailable, "draining")
	}
	var req MapRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		s.badRequests.Inc(sh)
		return s.fail(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
	}
	client := req.Client
	if h := r.Header.Get("X-Client"); h != "" {
		client = h
	}
	if client == "" {
		client = "anon"
	}
	rt.SetClient(client)
	rt.SetReads(len(req.Reads))
	if len(req.Reads) == 0 {
		s.badRequests.Inc(sh)
		return s.fail(w, http.StatusBadRequest, errors.New("no reads"))
	}
	if len(req.Reads) > s.cfg.MaxReads {
		s.badRequests.Inc(sh)
		return s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%d reads exceeds the %d-read request cap", len(req.Reads), s.cfg.MaxReads))
	}

	// Per-client admission: the first bound a greedy client hits.
	if !s.admitClient(client) {
		s.clientRejects.Inc(sh)
		return s.reject(w, http.StatusTooManyRequests,
			fmt.Sprintf("client %q has %d requests in flight", client, s.cfg.PerClient))
	}
	defer s.releaseClient(client)

	deadline := s.cfg.DefaultDeadline
	dms := req.DeadlineMs
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil {
			s.badRequests.Inc(sh)
			return s.fail(w, http.StatusBadRequest, fmt.Errorf("X-Deadline-Ms: %w", err))
		}
		dms = v
	}
	if dms > 0 {
		deadline = time.Duration(dms) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// Preprocess (minimizer lookup, seed creation) happens on the handler
	// goroutine: it is cheap relative to mapping and keeps the session's
	// workers on kernel work only.
	t0 := time.Now()
	s.labels.ApplyExtract()
	// Cleared explicitly right after the loop; the defer covers the
	// bad-request early returns inside it (Clear is idempotent).
	defer s.labels.Clear()
	recs := make([]seeds.ReadSeeds, len(req.Reads))
	for i, wr := range req.Reads {
		seq, err := dna.Parse(wr.Seq)
		if err != nil {
			s.badRequests.Inc(sh)
			return s.fail(w, http.StatusBadRequest, fmt.Errorf("read %q: %w", wr.Name, err))
		}
		rec, err := s.cfg.Extract(&dna.Read{Name: wr.Name, Seq: seq, Fragment: -1})
		if err != nil {
			s.badRequests.Inc(sh)
			return s.fail(w, http.StatusBadRequest, fmt.Errorf("read %q: %w", wr.Name, err))
		}
		recs[i] = rec
	}
	s.hExtract.Observe(sh, time.Since(t0))
	// The handler goroutine belongs to net/http's pool: clear the stage
	// label so it doesn't bleed into response encoding or the next request.
	s.labels.Clear()

	endAdmit()
	exts, err := s.cfg.Session.SubmitTraced(ctx, recs, rt)
	switch {
	case err == nil:
	case errors.Is(err, pipeline.ErrQueueFull):
		return s.reject(w, http.StatusTooManyRequests, "mapping queue full")
	case errors.Is(err, pipeline.ErrSessionClosed):
		s.drainRejects.Inc(sh)
		return s.reject(w, http.StatusServiceUnavailable, "draining")
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineHits.Inc(sh)
		return s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("deadline %v exceeded", deadline))
	default:
		// context.Canceled: the client went away; the response is best
		// effort.
		return s.fail(w, http.StatusServiceUnavailable, err)
	}

	emitStart := time.Now()
	resp := MapResponse{
		TraceID:   id,
		Client:    client,
		Reads:     len(recs),
		ServiceMs: float64(time.Since(t0)) / float64(time.Millisecond),
		Results:   make([]WireResult, len(recs)),
	}
	for i := range recs {
		wes := make([]WireExtension, len(exts[i]))
		for j, e := range exts[i] {
			strand := "+"
			if e.Rev {
				strand = "-"
			}
			wes[j] = WireExtension{
				Node:       uint32(e.StartPos.Node),
				Offset:     e.StartPos.Off,
				Strand:     strand,
				ReadStart:  e.ReadStart,
				ReadEnd:    e.ReadEnd,
				Score:      e.Score,
				Mismatches: e.Mismatches,
			}
		}
		resp.Results[i] = WireResult{Read: recs[i].Read.Name, Extensions: wes}
		resp.Extensions += len(wes)
	}
	s.httpOK.Inc(sh)
	s.writeJSON(w, http.StatusOK, resp)
	rt.AddSpan(obs.SpanEmit, -1, emitStart, time.Since(emitStart))
	return http.StatusOK
}

// admitClient reserves an in-flight slot for the client, false when the
// per-client bound is reached.
func (s *Server) admitClient(client string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clients[client] >= s.cfg.PerClient {
		return false
	}
	s.clients[client]++
	return true
}

func (s *Server) releaseClient(client string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clients[client]--; s.clients[client] <= 0 {
		delete(s.clients, client)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleStats serves the merged metric snapshot plus uptime — the serving
// analogue of the batch binaries' stderr summary line.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	payload := struct {
		UptimeSeconds float64       `json:"uptime_seconds"`
		Draining      bool          `json:"draining"`
		Metrics       *obs.Snapshot `json:"metrics,omitempty"`
	}{
		UptimeSeconds: obs.SanitizeFloat(time.Since(s.start).Seconds()),
		Draining:      s.draining.Load(),
		Metrics:       s.cfg.Reg.Snapshot(),
	}
	s.writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.cfg.Reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleSlow mirrors the debug endpoint's /slow: current window and
// run-level top-K slow-read exemplars.
func (s *Server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	payload := struct {
		K      int            `json:"k"`
		Window []obs.Exemplar `json:"window"`
		Run    []obs.Exemplar `json:"run"`
	}{
		K:      s.cfg.Slow.K(),
		Window: s.cfg.Slow.Window(),
		Run:    s.cfg.Slow.Top(),
	}
	s.writeJSON(w, http.StatusOK, payload)
}

// handleTraces serves the tail sampler's retained traces, each cross-linked
// to the slow-read exemplars its sub-batches produced (matched by trace ID
// over the reservoir's window and run views), so one payload answers both
// "where did this request's time go" and "which reads made it slow".
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	snap := s.cfg.Traces.Snapshot()
	if s.cfg.Slow != nil && len(snap.Traces) > 0 {
		byID := make(map[trace.ID][]obs.Exemplar)
		seen := make(map[int]bool) // Top duplicates Window entries; Index is unique per read
		for _, ex := range append(s.cfg.Slow.Top(), s.cfg.Slow.Window()...) {
			if ex.Trace.IsZero() || seen[ex.Index] {
				continue
			}
			seen[ex.Index] = true
			byID[ex.Trace] = append(byID[ex.Trace], ex)
		}
		for i := range snap.Traces {
			snap.Traces[i].SlowReads = byID[snap.Traces[i].TraceID]
		}
	}
	s.writeJSON(w, http.StatusOK, snap)
}

// reject answers an admission or drain rejection, with Retry-After so
// well-behaved clients back off. Returns the status so serveMap exits can
// report what they wrote.
func (s *Server) reject(w http.ResponseWriter, status int, msg string) int {
	w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	s.writeJSON(w, status, errorBody{Error: msg})
	return status
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) int {
	s.writeJSON(w, status, errorBody{Error: err.Error()})
	return status
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the response is already committed; nothing to do
}

// retryAfterSeconds renders d for the Retry-After header (integer seconds,
// minimum 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
