// Package serve is the mapping-as-a-service front end behind cmd/giraffed:
// an HTTP/JSON API over a pipeline.Session that loads the substrate once
// and maps read batches for many concurrent clients. It owns the
// request-scoped policies the batch binaries never needed:
//
//   - Admission control. Two bounds, both answered with 429 + Retry-After:
//     a per-client in-flight cap (one client cannot monopolise the pool)
//     and the session's shared queue depth (pipeline.ErrQueueFull).
//   - Deadlines. Every request runs under a context deadline — the
//     client's X-Deadline-Ms (or deadline_ms body field) clamped to the
//     server maximum, or the server default — which cancels queued and
//     in-flight mapping through the session; expiry surfaces as 504.
//   - Drain. EnterDrain flips /healthz to 503 and rejects new mapping
//     requests while in-flight ones finish, so a SIGTERM rollout loses no
//     accepted work.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dna"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/seeds"
)

// Config assembles a Server. Session and Extract are required.
type Config struct {
	// Session is the shared mapping pool.
	Session *pipeline.Session
	// Extract runs Giraffe's per-read preprocessing (minimizer lookup and
	// seed creation) — giraffe.Preprocess over the server's index in
	// production, a stub in tests.
	Extract func(read *dna.Read) (seeds.ReadSeeds, error)
	// Reg receives the HTTP-level metrics; may be nil.
	Reg *obs.Registry
	// Slow, when non-nil, is served at /slow.
	Slow *obs.SlowReads
	// PerClient caps each client's in-flight requests; ≤0 means 4.
	PerClient int
	// MaxReads caps the reads per request; ≤0 means 4096.
	MaxReads int
	// DefaultDeadline applies when the client sends none; ≤0 means 10s.
	DefaultDeadline time.Duration
	// MaxDeadline clamps client deadlines; ≤0 means 60s.
	MaxDeadline time.Duration
	// RetryAfter is advertised on 429/503 responses; ≤0 means 1s.
	RetryAfter time.Duration
}

func (c Config) normalize() Config {
	if c.PerClient <= 0 {
		c.PerClient = 4
	}
	if c.MaxReads <= 0 {
		c.MaxReads = 4096
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the HTTP front end. Create with New, mount via Handler, drain
// with EnterDrain before shutting the http.Server down.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	draining atomic.Bool

	mu      sync.Mutex
	clients map[string]int // in-flight requests per client id

	// Metric handles (nil-safe when cfg.Reg is nil). HTTP handlers run on
	// net/http's goroutines, not pipeline workers, so they round-robin over
	// the registry shards instead of claiming one.
	rr            atomic.Int64
	httpRequests  *obs.Counter
	httpOK        *obs.Counter
	clientRejects *obs.Counter
	deadlineHits  *obs.Counter
	drainRejects  *obs.Counter
	badRequests   *obs.Counter
	hExtract      *obs.Histogram
}

// New validates cfg and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.Session == nil {
		return nil, errors.New("serve: nil session")
	}
	if cfg.Extract == nil {
		return nil, errors.New("serve: nil extract function")
	}
	cfg = cfg.normalize()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		clients: make(map[string]int),

		httpRequests:  cfg.Reg.Counter(obs.MetricServeHTTPRequests),
		httpOK:        cfg.Reg.Counter(obs.MetricServeHTTPOK),
		clientRejects: cfg.Reg.Counter(obs.MetricServeClientRejects),
		deadlineHits:  cfg.Reg.Counter(obs.MetricServeDeadline),
		drainRejects:  cfg.Reg.Counter(obs.MetricServeDrainRejects),
		badRequests:   cfg.Reg.Counter(obs.MetricServeBadRequests),
		hExtract:      cfg.Reg.Histogram(obs.MetricServeExtract),
	}
	s.mux.HandleFunc("POST /map", s.handleMap)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /slow", s.handleSlow)
	return s, nil
}

// Handler returns the route table, ready for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// EnterDrain rejects new mapping requests from now on (idempotent). The
// caller then lets http.Server.Shutdown wait out in-flight handlers and
// closes the session.
func (s *Server) EnterDrain() { s.draining.Store(true) }

// Draining reports whether EnterDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// MapRequest is the POST /map body.
type MapRequest struct {
	// Client identifies the submitting client for per-client admission;
	// the X-Client header takes precedence. Empty means "anon".
	Client string `json:"client,omitempty"`
	// DeadlineMs is the request's service deadline in milliseconds; the
	// X-Deadline-Ms header takes precedence. 0 means the server default.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Reads are the reads to map.
	Reads []WireRead `json:"reads"`
}

// WireRead is one read on the wire.
type WireRead struct {
	Name string `json:"name"`
	Seq  string `json:"seq"`
}

// MapResponse is the POST /map success body.
type MapResponse struct {
	Client     string       `json:"client"`
	Reads      int          `json:"reads"`
	Extensions int          `json:"extensions"`
	ServiceMs  float64      `json:"service_ms"`
	Results    []WireResult `json:"results"`
}

// WireResult is one read's mapping output.
type WireResult struct {
	Read       string          `json:"read"`
	Extensions []WireExtension `json:"extensions"`
}

// WireExtension mirrors the CSV row schema of the batch proxy (read, node,
// offset, strand, read interval, score, mismatches).
type WireExtension struct {
	Node       uint32  `json:"node"`
	Offset     int32   `json:"offset"`
	Strand     string  `json:"strand"`
	ReadStart  int32   `json:"read_start"`
	ReadEnd    int32   `json:"read_end"`
	Score      int32   `json:"score"`
	Mismatches []int32 `json:"mismatches,omitempty"`
}

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error string `json:"error"`
}

// shard picks a registry shard for this handler invocation: handlers run on
// arbitrary net/http goroutines, so spreading over shards keeps the record
// path as contention-free as the pipeline's.
func (s *Server) shard() int {
	n := s.cfg.Reg.Shards()
	if n <= 1 {
		return 0
	}
	return int(s.rr.Add(1)) % n
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	sh := s.shard()
	s.httpRequests.Inc(sh)
	if s.draining.Load() {
		s.drainRejects.Inc(sh)
		s.reject(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req MapRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		s.badRequests.Inc(sh)
		s.fail(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return
	}
	client := req.Client
	if h := r.Header.Get("X-Client"); h != "" {
		client = h
	}
	if client == "" {
		client = "anon"
	}
	if len(req.Reads) == 0 {
		s.badRequests.Inc(sh)
		s.fail(w, http.StatusBadRequest, errors.New("no reads"))
		return
	}
	if len(req.Reads) > s.cfg.MaxReads {
		s.badRequests.Inc(sh)
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%d reads exceeds the %d-read request cap", len(req.Reads), s.cfg.MaxReads))
		return
	}

	// Per-client admission: the first bound a greedy client hits.
	if !s.admitClient(client) {
		s.clientRejects.Inc(sh)
		s.reject(w, http.StatusTooManyRequests,
			fmt.Sprintf("client %q has %d requests in flight", client, s.cfg.PerClient))
		return
	}
	defer s.releaseClient(client)

	deadline := s.cfg.DefaultDeadline
	dms := req.DeadlineMs
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil {
			s.badRequests.Inc(sh)
			s.fail(w, http.StatusBadRequest, fmt.Errorf("X-Deadline-Ms: %w", err))
			return
		}
		dms = v
	}
	if dms > 0 {
		deadline = time.Duration(dms) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// Preprocess (minimizer lookup, seed creation) happens on the handler
	// goroutine: it is cheap relative to mapping and keeps the session's
	// workers on kernel work only.
	t0 := time.Now()
	recs := make([]seeds.ReadSeeds, len(req.Reads))
	for i, wr := range req.Reads {
		seq, err := dna.Parse(wr.Seq)
		if err != nil {
			s.badRequests.Inc(sh)
			s.fail(w, http.StatusBadRequest, fmt.Errorf("read %q: %w", wr.Name, err))
			return
		}
		rec, err := s.cfg.Extract(&dna.Read{Name: wr.Name, Seq: seq, Fragment: -1})
		if err != nil {
			s.badRequests.Inc(sh)
			s.fail(w, http.StatusBadRequest, fmt.Errorf("read %q: %w", wr.Name, err))
			return
		}
		recs[i] = rec
	}
	s.hExtract.Observe(sh, time.Since(t0))

	exts, err := s.cfg.Session.Submit(ctx, recs)
	switch {
	case err == nil:
	case errors.Is(err, pipeline.ErrQueueFull):
		s.reject(w, http.StatusTooManyRequests, "mapping queue full")
		return
	case errors.Is(err, pipeline.ErrSessionClosed):
		s.drainRejects.Inc(sh)
		s.reject(w, http.StatusServiceUnavailable, "draining")
		return
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineHits.Inc(sh)
		s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("deadline %v exceeded", deadline))
		return
	default:
		// context.Canceled: the client went away; the response is best
		// effort.
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}

	resp := MapResponse{
		Client:    client,
		Reads:     len(recs),
		ServiceMs: float64(time.Since(t0)) / float64(time.Millisecond),
		Results:   make([]WireResult, len(recs)),
	}
	for i := range recs {
		wes := make([]WireExtension, len(exts[i]))
		for j, e := range exts[i] {
			strand := "+"
			if e.Rev {
				strand = "-"
			}
			wes[j] = WireExtension{
				Node:       uint32(e.StartPos.Node),
				Offset:     e.StartPos.Off,
				Strand:     strand,
				ReadStart:  e.ReadStart,
				ReadEnd:    e.ReadEnd,
				Score:      e.Score,
				Mismatches: e.Mismatches,
			}
		}
		resp.Results[i] = WireResult{Read: recs[i].Read.Name, Extensions: wes}
		resp.Extensions += len(wes)
	}
	s.httpOK.Inc(sh)
	s.writeJSON(w, http.StatusOK, resp)
}

// admitClient reserves an in-flight slot for the client, false when the
// per-client bound is reached.
func (s *Server) admitClient(client string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clients[client] >= s.cfg.PerClient {
		return false
	}
	s.clients[client]++
	return true
}

func (s *Server) releaseClient(client string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clients[client]--; s.clients[client] <= 0 {
		delete(s.clients, client)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleStats serves the merged metric snapshot plus uptime — the serving
// analogue of the batch binaries' stderr summary line.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	payload := struct {
		UptimeSeconds float64       `json:"uptime_seconds"`
		Draining      bool          `json:"draining"`
		Metrics       *obs.Snapshot `json:"metrics,omitempty"`
	}{
		UptimeSeconds: obs.SanitizeFloat(time.Since(s.start).Seconds()),
		Draining:      s.draining.Load(),
		Metrics:       s.cfg.Reg.Snapshot(),
	}
	s.writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.cfg.Reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleSlow mirrors the debug endpoint's /slow: current window and
// run-level top-K slow-read exemplars.
func (s *Server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	payload := struct {
		K      int            `json:"k"`
		Window []obs.Exemplar `json:"window"`
		Run    []obs.Exemplar `json:"run"`
	}{
		K:      s.cfg.Slow.K(),
		Window: s.cfg.Slow.Window(),
		Run:    s.cfg.Slow.Top(),
	}
	s.writeJSON(w, http.StatusOK, payload)
}

// reject answers an admission or drain rejection, with Retry-After so
// well-behaved clients back off.
func (s *Server) reject(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	s.writeJSON(w, status, errorBody{Error: msg})
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the response is already committed; nothing to do
}

// retryAfterSeconds renders d for the Retry-After header (integer seconds,
// minimum 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
