package extend

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/distindex"
	"repro/internal/dna"
	"repro/internal/gbwt"
	"repro/internal/minimizer"
	"repro/internal/seeds"
	"repro/internal/vgraph"
)

// fixture bundles a pangenome, its GBWT, minimizer and distance indices.
type fixture struct {
	pg    *vgraph.Pangenome
	index *gbwt.GBWT
	bi    *gbwt.Bidirectional
	minIx *minimizer.Index
	dist  *distindex.Index
	haps  [][]vgraph.NodeID
	seqs  []dna.Sequence
}

func buildFixture(t testing.TB, seed int64, refLen, nHaps int) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := make(dna.Sequence, refLen)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	var vs []vgraph.Variant
	for pos := 60; pos < refLen-60; pos += 70 + rng.Intn(70) {
		switch rng.Intn(3) {
		case 0:
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.SNP, Alt: dna.Sequence{(ref[pos] + 1) & 3}})
		case 1:
			ins := make(dna.Sequence, 1+rng.Intn(5))
			for i := range ins {
				ins[i] = dna.Base(rng.Intn(4))
			}
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.Insertion, Alt: ins})
		case 2:
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.Deletion, DelLen: 1 + rng.Intn(6)})
		}
	}
	pg, err := vgraph.BuildPangenome(ref, vs, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{pg: pg}
	for h := 0; h < nHaps; h++ {
		alleles := make([]int, pg.NumSites())
		for i := range alleles {
			alleles[i] = rng.Intn(pg.NumAlleles(i))
		}
		path, err := pg.HaplotypePath(alleles)
		if err != nil {
			t.Fatal(err)
		}
		f.haps = append(f.haps, path)
		seq, err := pg.HaplotypeSeq(alleles)
		if err != nil {
			t.Fatal(err)
		}
		f.seqs = append(f.seqs, seq)
	}
	f.index, err = gbwt.New(f.haps)
	if err != nil {
		t.Fatal(err)
	}
	f.bi, err = gbwt.FromForward(f.index, f.haps)
	if err != nil {
		t.Fatal(err)
	}
	f.minIx, err = minimizer.Build(pg.Graph, f.haps, minimizer.Config{K: 15, W: 8})
	if err != nil {
		t.Fatal(err)
	}
	f.dist = distindex.New(pg.Graph)
	return f
}

// mapRead runs the full kernel pipeline for a read.
func (f *fixture) mapRead(t testing.TB, read *dna.Read, capacity int, probe counters.Probe) []Extension {
	t.Helper()
	ss, err := seeds.Extract(f.minIx, read)
	if err != nil {
		t.Fatal(err)
	}
	cls := cluster.ClusterSeeds(f.dist, ss, cluster.DefaultParams(), probe, 0)
	env := &Env{
		Graph: f.pg.Graph,
		Bi:    f.bi.NewBiReader(capacity),
		Probe: probe,
	}
	return ProcessUntilThresholdC(env, read, ss, cls, Params{}, 0)
}

// spellExtension walks the extension's path from StartPos, returning the
// graph bases it covers.
func (f *fixture) spellExtension(t *testing.T, e *Extension) dna.Sequence {
	t.Helper()
	g := f.pg.Graph
	var out dna.Sequence
	need := int(e.Len())
	for pi, node := range e.Path {
		label := g.Seq(node)
		start := 0
		if pi == 0 {
			if node != e.StartPos.Node {
				t.Fatalf("path[0]=%d but StartPos.Node=%d", node, e.StartPos.Node)
			}
			start = int(e.StartPos.Off)
		}
		for o := start; o < len(label) && len(out) < need; o++ {
			out = append(out, label[o])
		}
		if len(out) >= need {
			break
		}
	}
	return out
}

func TestExactReadFullExtension(t *testing.T) {
	f := buildFixture(t, 1, 4000, 6)
	hap := 2
	read := &dna.Read{Name: "r0", Seq: f.seqs[hap][500:620].Clone(), Fragment: -1}
	exts := f.mapRead(t, read, 256, nil)
	if len(exts) == 0 {
		t.Fatal("no extensions for exact read")
	}
	best := exts[0]
	if best.ReadStart != 0 || best.ReadEnd != int32(len(read.Seq)) {
		t.Errorf("best extension covers [%d,%d), want full read [0,%d)", best.ReadStart, best.ReadEnd, len(read.Seq))
	}
	if len(best.Mismatches) != 0 {
		t.Errorf("exact read has %d mismatches: %v", len(best.Mismatches), best.Mismatches)
	}
	wantScore := int32(len(read.Seq)) + 2*5 // all matches + both full-length bonuses
	if best.Score != wantScore {
		t.Errorf("Score = %d, want %d", best.Score, wantScore)
	}
	if best.Rev {
		t.Error("forward read mapped as reverse")
	}
}

func TestReadWithOneError(t *testing.T) {
	f := buildFixture(t, 2, 4000, 6)
	read := &dna.Read{Name: "r1", Seq: f.seqs[0][1000:1120].Clone(), Fragment: -1}
	read.Seq[60] = (read.Seq[60] + 1) & 3 // plant one error mid-read
	exts := f.mapRead(t, read, 256, nil)
	if len(exts) == 0 {
		t.Fatal("no extensions")
	}
	best := exts[0]
	if best.ReadStart != 0 || best.ReadEnd != int32(len(read.Seq)) {
		t.Fatalf("extension covers [%d,%d), want full", best.ReadStart, best.ReadEnd)
	}
	if len(best.Mismatches) != 1 || best.Mismatches[0] != 60 {
		t.Errorf("Mismatches = %v, want [60]", best.Mismatches)
	}
	wantScore := int32(len(read.Seq)-1) - 4 + 10
	if best.Score != wantScore {
		t.Errorf("Score = %d, want %d", best.Score, wantScore)
	}
}

func TestReverseStrandRead(t *testing.T) {
	f := buildFixture(t, 3, 4000, 6)
	fwd := &dna.Read{Name: "f", Seq: f.seqs[1][700:820].Clone(), Fragment: -1}
	rev := &dna.Read{Name: "r", Seq: f.seqs[1][700:820].RevComp(), Fragment: -1}
	fe := f.mapRead(t, fwd, 256, nil)
	re := f.mapRead(t, rev, 256, nil)
	if len(fe) == 0 || len(re) == 0 {
		t.Fatal("missing extensions")
	}
	if fe[0].Rev {
		t.Error("forward read marked Rev")
	}
	if !re[0].Rev {
		t.Error("reverse read not marked Rev")
	}
	// Both strands anchor the same graph region with the same score.
	if fe[0].StartPos != re[0].StartPos {
		t.Errorf("start positions differ: %v vs %v", fe[0].StartPos, re[0].StartPos)
	}
	if fe[0].Score != re[0].Score {
		t.Errorf("scores differ: %d vs %d", fe[0].Score, re[0].Score)
	}
}

func TestExtensionSpellsRead(t *testing.T) {
	f := buildFixture(t, 4, 5000, 8)
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		hap := rng.Intn(len(f.seqs))
		start := rng.Intn(len(f.seqs[hap]) - 130)
		seq := f.seqs[hap][start : start+120].Clone()
		nErr := rng.Intn(3)
		for e := 0; e < nErr; e++ {
			p := rng.Intn(len(seq))
			seq[p] = (seq[p] + 1 + dna.Base(rng.Intn(3))) & 3
		}
		read := &dna.Read{Name: "t", Seq: seq, Fragment: -1}
		exts := f.mapRead(t, read, 256, nil)
		for _, e := range exts {
			oriented := read.Seq
			if e.Rev {
				oriented = read.Seq.RevComp()
			}
			spelled := f.spellExtension(t, &e)
			if int32(len(spelled)) != e.Len() {
				t.Fatalf("trial %d: spelled %d bases for extension of length %d", trial, len(spelled), e.Len())
			}
			mismSet := map[int32]bool{}
			for _, m := range e.Mismatches {
				mismSet[m] = true
			}
			for j := int32(0); j < e.Len(); j++ {
				ro := e.ReadStart + j
				if mismSet[ro] {
					if spelled[j] == oriented[ro] {
						t.Fatalf("trial %d: offset %d reported mismatch but matches", trial, ro)
					}
				} else if spelled[j] != oriented[ro] {
					t.Fatalf("trial %d: offset %d mismatches but not reported", trial, ro)
				}
			}
			// Score formula holds.
			want := (e.Len()-int32(len(e.Mismatches)))*1 - int32(len(e.Mismatches))*4
			if e.ReadStart == 0 {
				want += 5
			}
			if e.ReadEnd == int32(len(oriented)) {
				want += 5
			}
			if e.Score != want {
				t.Fatalf("trial %d: score %d, want %d", trial, e.Score, want)
			}
		}
	}
}

func TestCacheCapacityDoesNotChangeOutput(t *testing.T) {
	f := buildFixture(t, 5, 4000, 6)
	read := &dna.Read{Name: "r", Seq: f.seqs[3][2000:2120].Clone(), Fragment: -1}
	var results [][]Extension
	for _, capacity := range []int{0, 2, 64, 1024} {
		results = append(results, f.mapRead(t, read, capacity, nil))
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("capacity variant %d changed the mapping output", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	f := buildFixture(t, 6, 4000, 6)
	read := &dna.Read{Name: "r", Seq: f.seqs[0][100:220].Clone(), Fragment: -1}
	a := f.mapRead(t, read, 256, nil)
	b := f.mapRead(t, read, 256, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("kernel output not deterministic")
	}
}

func TestThresholdCStopsLowClusters(t *testing.T) {
	f := buildFixture(t, 7, 4000, 6)
	read := &dna.Read{Name: "r", Seq: f.seqs[0][300:420].Clone(), Fragment: -1}
	ss, err := seeds.Extract(f.minIx, read)
	if err != nil {
		t.Fatal(err)
	}
	cls := cluster.ClusterSeeds(f.dist, ss, cluster.DefaultParams(), nil, 0)
	if len(cls) == 0 {
		t.Skip("read produced a single cluster")
	}
	env := &Env{Graph: f.pg.Graph, Bi: f.bi.NewBiReader(256)}
	// With MaxClusters=1 only the top cluster is extended.
	one := ProcessUntilThresholdC(env, read, ss, cls, Params{MaxClusters: 1, MinClusters: 1}, 0)
	all := ProcessUntilThresholdC(env, read, ss, cls, Params{MaxClusters: 1000, MinClusters: 1000}, 0)
	if len(one) > len(all) {
		t.Errorf("restricted run produced more extensions (%d) than full (%d)", len(one), len(all))
	}
}

func TestMaxMismatchBudget(t *testing.T) {
	f := buildFixture(t, 8, 4000, 6)
	seq := f.seqs[0][1500:1620].Clone()
	// Plant many errors in the right half: extension must stop early.
	for p := 70; p < 110; p += 4 {
		seq[p] = (seq[p] + 1) & 3
	}
	read := &dna.Read{Name: "r", Seq: seq, Fragment: -1}
	exts := f.mapRead(t, read, 256, nil)
	for _, e := range exts {
		if len(e.Mismatches) > 4 {
			t.Fatalf("extension has %d mismatches, budget is 4", len(e.Mismatches))
		}
	}
}

func TestEmptyClusterList(t *testing.T) {
	f := buildFixture(t, 9, 4000, 4)
	env := &Env{Graph: f.pg.Graph, Bi: f.bi.NewBiReader(256)}
	read := &dna.Read{Name: "r", Seq: f.seqs[0][:120].Clone(), Fragment: -1}
	if out := ProcessUntilThresholdC(env, read, nil, nil, Params{}, 0); out != nil {
		t.Errorf("extensions from no clusters: %v", out)
	}
}

func TestProbeCountsWork(t *testing.T) {
	f := buildFixture(t, 10, 4000, 6)
	read := &dna.Read{Name: "r", Seq: f.seqs[2][900:1020].Clone(), Fragment: -1}
	h := counters.NewDefaultHierarchy()
	f.mapRead(t, read, 256, h)
	c := h.Snapshot(counters.DefaultCycleModel)
	if c.Instr == 0 || c.L1DA == 0 {
		t.Errorf("probe recorded nothing: %+v", c)
	}
}

func TestExtensionKey(t *testing.T) {
	e := Extension{StartPos: vgraph.Position{Node: 5, Off: 3}, ReadStart: 0, ReadEnd: 100}
	if e.Key() != "5:3+:0-100" {
		t.Errorf("Key = %q", e.Key())
	}
	e.Rev = true
	if e.Key() != "5:3-:0-100" {
		t.Errorf("Key = %q", e.Key())
	}
}

func TestParamsNormalize(t *testing.T) {
	p := Params{}.normalize()
	if !reflect.DeepEqual(p, DefaultParams()) {
		t.Errorf("normalize(zero) = %+v, want defaults", p)
	}
	custom := Params{MaxMismatches: 2}.normalize()
	if custom.MaxMismatches != 2 || custom.MaxClusters != DefaultParams().MaxClusters {
		t.Errorf("partial normalize wrong: %+v", custom)
	}
}

func BenchmarkProcessUntilThresholdC(b *testing.B) {
	f := buildFixture(b, 11, 8000, 8)
	rng := rand.New(rand.NewSource(12))
	type work struct {
		read *dna.Read
		ss   []seeds.Seed
		cls  []cluster.Cluster
	}
	var items []work
	for i := 0; i < 50; i++ {
		hap := rng.Intn(len(f.seqs))
		start := rng.Intn(len(f.seqs[hap]) - 130)
		read := &dna.Read{Name: "b", Seq: f.seqs[hap][start : start+120].Clone(), Fragment: -1}
		ss, err := seeds.Extract(f.minIx, read)
		if err != nil {
			b.Fatal(err)
		}
		cls := cluster.ClusterSeeds(f.dist, ss, cluster.DefaultParams(), nil, 0)
		items = append(items, work{read, ss, cls})
	}
	env := &Env{Graph: f.pg.Graph, Bi: f.bi.NewBiReader(256)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := items[i%len(items)]
		ProcessUntilThresholdC(env, w.read, w.ss, w.cls, Params{}, 0)
	}
}
