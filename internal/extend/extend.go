// Package extend implements process_until_threshold_c, the most expensive
// critical function in Giraffe's mapping pipeline (up to 52% of computation
// time in the paper's characterisation, §IV-A): clusters are processed in
// descending score order until a score-fraction threshold stops the walk,
// and each processed cluster's seeds are extended into maximal gapless local
// alignments by walking the variation graph along GBWT haplotypes and
// comparing graph bases against the read — the seed-and-extend core where
// the actual read-to-pangenome comparison happens.
//
// Both the parent emulator (package giraffe) and the proxy (package core)
// call this same kernel; the paper's proxy was built by extracting exactly
// these functions, which is why its outputs match Giraffe's bit-for-bit.
package extend

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/dna"
	"repro/internal/gbwt"
	"repro/internal/seeds"
	"repro/internal/vgraph"
)

// Params tunes the extension kernel. Zero values are replaced by defaults
// mirroring Giraffe's short-read configuration at this scale.
type Params struct {
	// MaxMismatches bounds mismatches per extension (Giraffe default 4).
	MaxMismatches int
	// ScoreFraction is the threshold c: clusters scoring below
	// ScoreFraction × best-cluster-score are not processed.
	ScoreFraction float64
	// MinClusters are always processed regardless of the threshold.
	MinClusters int
	// MaxClusters caps the clusters processed per read.
	MaxClusters int
	// MaxSeedsPerCluster caps extension starts per cluster.
	MaxSeedsPerCluster int
	// Scoring constants: match bonus, mismatch penalty (positive), and the
	// bonus awarded per read end reached.
	MatchScore      int32
	MismatchPenalty int32
	FullLengthBonus int32
}

// DefaultParams returns the kernel defaults.
func DefaultParams() Params {
	return Params{
		MaxMismatches:      4,
		ScoreFraction:      0.6,
		MinClusters:        2,
		MaxClusters:        16,
		MaxSeedsPerCluster: 4,
		MatchScore:         1,
		MismatchPenalty:    4,
		FullLengthBonus:    5,
	}
}

// normalize fills zero fields with defaults.
func (p Params) normalize() Params {
	d := DefaultParams()
	if p.MaxMismatches == 0 {
		p.MaxMismatches = d.MaxMismatches
	}
	if p.ScoreFraction == 0 {
		p.ScoreFraction = d.ScoreFraction
	}
	if p.MinClusters == 0 {
		p.MinClusters = d.MinClusters
	}
	if p.MaxClusters == 0 {
		p.MaxClusters = d.MaxClusters
	}
	if p.MaxSeedsPerCluster == 0 {
		p.MaxSeedsPerCluster = d.MaxSeedsPerCluster
	}
	if p.MatchScore == 0 {
		p.MatchScore = d.MatchScore
	}
	if p.MismatchPenalty == 0 {
		p.MismatchPenalty = d.MismatchPenalty
	}
	if p.FullLengthBonus == 0 {
		p.FullLengthBonus = d.FullLengthBonus
	}
	return p
}

// Extension is one maximal gapless local alignment: the proxy's raw output
// (§V: "offsets and scores of each match").
type Extension struct {
	// StartPos is the graph position aligned to the oriented read's
	// ReadStart base.
	StartPos vgraph.Position
	// Path is the node walk the extension covers, in order.
	Path []vgraph.NodeID
	// ReadStart/ReadEnd delimit the matched interval of the oriented read
	// (the reverse complement when Rev).
	ReadStart, ReadEnd int32
	// Mismatches lists the oriented-read offsets that mismatch the graph.
	Mismatches []int32
	// Score under the kernel's scoring constants.
	Score int32
	// Rev marks reverse-strand mappings.
	Rev bool
}

// Len returns the matched read length.
func (e *Extension) Len() int32 { return e.ReadEnd - e.ReadStart }

// Key returns a canonical identity string (used for deduplication and
// output validation).
func (e *Extension) Key() string {
	strand := '+'
	if e.Rev {
		strand = '-'
	}
	return fmt.Sprintf("%d:%d%c:%d-%d", e.StartPos.Node, e.StartPos.Off, strand, e.ReadStart, e.ReadEnd)
}

// Env bundles the immutable structures the kernel walks plus the per-worker
// bidirectional GBWT readers and instrumentation probe (both may differ
// across workers). The bidirectional readers let both extension directions
// stay haplotype-constrained, as Giraffe's extender does (§IV-B: "Giraffe
// will try to extend seed alignments in both directions").
type Env struct {
	Graph *vgraph.Graph
	Bi    gbwt.BiReader
	Probe counters.Probe // nil disables accounting
}

// extKey is the comparable identity used to deduplicate extensions on the
// hot path. Extension.Key() builds the same identity as a string, which
// costs one fmt.Sprintf per candidate; it is kept for cold-path validation
// and debugging output only.
type extKey struct {
	node               vgraph.NodeID
	off                int32
	readStart, readEnd int32
	rev                bool
}

// ProcessUntilThresholdC runs the extension stage for one read: clusters
// (score-descending, as produced by cluster.ClusterSeeds) are processed
// until the score threshold or the cluster cap stops the loop; every
// processed cluster's best seeds are extended and the deduplicated
// extensions are returned sorted by descending score (ties broken by
// position for determinism). readIdx identifies the read for the probe's
// address map.
//
//minigiraffe:hot
func ProcessUntilThresholdC(env *Env, read *dna.Read, ss []seeds.Seed, clusters []cluster.Cluster, p Params, readIdx int) []Extension {
	p = p.normalize()
	if len(clusters) == 0 {
		return nil
	}
	best := clusters[0].Score
	var fwd, rev dna.Sequence
	fwd = read.Seq
	// Deduplicate via a linear scan over comparable keys: the candidate set
	// is capped at MaxClusters×MaxSeedsPerCluster (64 at the defaults), so a
	// scan beats hashing and keeps this function map- and Sprintf-free.
	keys := make([]extKey, 0, p.MaxClusters*p.MaxSeedsPerCluster)
	out := make([]Extension, 0, p.MaxClusters*p.MaxSeedsPerCluster)

	processed := 0
	for _, cl := range clusters {
		if processed >= p.MaxClusters {
			break
		}
		if processed >= p.MinClusters && cl.Score < p.ScoreFraction*best {
			break
		}
		processed++
		if env.Probe != nil {
			env.Probe.Instr(32)
		}
		for _, si := range pickSeeds(ss, cl.SeedIdx, p.MaxSeedsPerCluster) {
			seed := ss[si]
			oriented := fwd
			if seed.Rev {
				if rev == nil {
					rev = fwd.RevComp()
					if env.Probe != nil {
						env.Probe.Instr(int64(len(fwd)) * 2)
					}
				}
				oriented = rev
			}
			ext, ok := extendSeed(env, oriented, seed, p, readIdx)
			if !ok {
				continue
			}
			key := extKey{
				node:      ext.StartPos.Node,
				off:       ext.StartPos.Off,
				readStart: ext.ReadStart,
				readEnd:   ext.ReadEnd,
				rev:       ext.Rev,
			}
			dup := false
			for _, k := range keys {
				if k == key {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			keys = append(keys, key)
			out = append(out, ext)
		}
	}
	slices.SortFunc(out, func(a, b Extension) int {
		if a.Score != b.Score {
			return cmp.Compare(b.Score, a.Score)
		}
		if a.StartPos.Node != b.StartPos.Node {
			return cmp.Compare(a.StartPos.Node, b.StartPos.Node)
		}
		if a.StartPos.Off != b.StartPos.Off {
			return cmp.Compare(a.StartPos.Off, b.StartPos.Off)
		}
		return cmp.Compare(a.ReadStart, b.ReadStart)
	})
	return out
}

// pickSeeds selects up to max seed indices from the cluster, preferring
// higher scores then lower read offsets (deterministic).
func pickSeeds(ss []seeds.Seed, idxs []int, max int) []int {
	sorted := make([]int, len(idxs))
	copy(sorted, idxs)
	slices.SortFunc(sorted, func(a, b int) int {
		sa, sb := ss[a], ss[b]
		if sa.Score != sb.Score {
			return cmp.Compare(sb.Score, sa.Score)
		}
		if sa.ReadOff != sb.ReadOff {
			return cmp.Compare(sa.ReadOff, sb.ReadOff)
		}
		return cmp.Compare(a, b)
	})
	if len(sorted) > max {
		sorted = sorted[:max]
	}
	return sorted
}

// walkResult carries one direction's outcome.
type walkResult struct {
	readPos int32           // exclusive end (right) / inclusive start (left)
	mism    []int32         // mismatch read offsets, walk order
	path    []vgraph.NodeID // nodes entered during the walk, walk order
	pos     vgraph.Position // final boundary position (left only)
	reached bool            // read end/start reached
}

// extendSeed extends a single seed bidirectionally. Returns false if the
// anchor itself is invalid (position outside the node).
//
//minigiraffe:hot
func extendSeed(env *Env, r dna.Sequence, seed seeds.Seed, p Params, readIdx int) (Extension, bool) {
	g := env.Graph
	node := seed.Pos.Node
	if !g.Has(node) || int(seed.Pos.Off) >= g.SeqLen(node) {
		return Extension{}, false
	}
	if int(seed.ReadOff) >= len(r) || seed.ReadOff < 0 {
		return Extension{}, false
	}

	// The seed's single-node match anchors a bidirectional search state.
	state := gbwt.BiState{
		Fwd: env.Bi.Fwd.Base().FullState(node),
		Rev: env.Bi.Rev.Base().FullState(node),
	}
	if state.Empty() {
		return Extension{}, false
	}
	// Right: from the anchor base forward, haplotype-constrained.
	right := extendRight(env, r, seed.ReadOff, node, seed.Pos.Off, state, 0, p, readIdx)

	// Left: from the base before the anchor backward, haplotype-constrained
	// through the reverse index. The left walk restricts the same seed
	// state (its haplotypes are a superset of the right walk's survivors,
	// which is what Giraffe's extender tracks per direction).
	left := extendLeft(env, r, seed.ReadOff-1, node, seed.Pos.Off-1, state, p.MaxMismatches-len(right.mism), p, readIdx)

	ext := Extension{
		StartPos:  left.pos,
		ReadStart: left.readPos,
		ReadEnd:   right.readPos,
		Rev:       seed.Rev,
	}
	// Assemble mismatches: left's are collected walking backward. Sized up
	// front; stays nil when the alignment is mismatch-free.
	if n := len(left.mism) + len(right.mism); n > 0 {
		mism := make([]int32, 0, n)
		for i := len(left.mism) - 1; i >= 0; i-- {
			mism = append(mism, left.mism[i])
		}
		mism = append(mism, right.mism...)
		ext.Mismatches = mism
	}
	// Path: left path is collected walking backward (excluding seed node);
	// right path starts with the seed node.
	path := make([]vgraph.NodeID, 0, len(left.path)+len(right.path))
	for i := len(left.path) - 1; i >= 0; i-- {
		path = append(path, left.path[i])
	}
	path = append(path, right.path...)
	ext.Path = path

	matched := ext.Len() - int32(len(ext.Mismatches))
	ext.Score = matched*p.MatchScore - int32(len(ext.Mismatches))*p.MismatchPenalty
	if left.reached {
		ext.Score += p.FullLengthBonus
	}
	if right.reached {
		ext.Score += p.FullLengthBonus
	}
	return ext, true
}

// extendRight walks the graph forward from (node, off) matching r[i:],
// following GBWT haplotypes, branching at node boundaries and keeping the
// best-scoring completion. The returned path includes the starting node.
//
//minigiraffe:hot
func extendRight(env *Env, r dna.Sequence, i int32, node vgraph.NodeID, off int32, state gbwt.BiState, mismUsed int, p Params, readIdx int) walkResult {
	g := env.Graph
	label := g.Seq(node)
	// At most MaxMismatches-mismUsed mismatches can be consumed here: the
	// budget check below stops the walk before the slice would grow.
	mism := make([]int32, 0, p.MaxMismatches-mismUsed)
	if env.Probe != nil {
		n := int32(len(label)) - off
		if rem := int32(len(r)) - i; rem < n {
			n = rem
		}
		if n > 0 {
			env.Probe.Access(counters.NodeSeqAddr(uint32(node), off), int(n))
			env.Probe.Access(counters.ReadAddr(readIdx, i), int(n))
			env.Probe.Instr(int64(n) * 6)
		}
	}
	for int(off) < len(label) && int(i) < len(r) {
		if label[off] != r[i] {
			if mismUsed+len(mism)+1 > p.MaxMismatches {
				// Stop before consuming the over-budget mismatch.
				return walkResult{readPos: i, mism: mism, path: []vgraph.NodeID{node}}
			}
			mism = append(mism, i)
		}
		off++
		i++
	}
	if int(i) >= len(r) {
		return walkResult{readPos: i, mism: mism, path: []vgraph.NodeID{node}, reached: true}
	}
	// Node exhausted: branch along haplotype-consistent successors.
	rec := env.Bi.Fwd.Record(state.Fwd.Node)
	if env.Probe != nil {
		env.Probe.Access(counters.RecordAddr(uint32(state.Fwd.Node)), counters.RecordStride)
		env.Probe.Instr(20)
	}
	var best walkResult
	haveBest := false
	if rec != nil {
		for _, e := range rec.Edges {
			if e.To == gbwt.Endmarker {
				continue
			}
			next := gbwt.ExtendRightWith(env.Bi, state, e.To)
			if next.Empty() {
				continue
			}
			sub := extendRight(env, r, i, e.To, 0, next, mismUsed+len(mism), p, readIdx)
			if !haveBest || betterRight(sub, best, p) {
				best = sub
				haveBest = true
			}
		}
	}
	if !haveBest {
		// Dead end: the extension stops at the node boundary.
		return walkResult{readPos: i, mism: mism, path: []vgraph.NodeID{node}}
	}
	merged := walkResult{
		readPos: best.readPos,
		mism:    append(mism, best.mism...),
		path:    append([]vgraph.NodeID{node}, best.path...),
		reached: best.reached,
	}
	return merged
}

// betterRight compares right-walk completions by score.
func betterRight(a, b walkResult, p Params) bool {
	sa := score1(a.readPos, int32(len(a.mism)), p)
	sb := score1(b.readPos, int32(len(b.mism)), p)
	if sa != sb {
		return sa > sb
	}
	// Deterministic tie-break: longer reach, then lexicographically smaller
	// first path node.
	if a.readPos != b.readPos {
		return a.readPos > b.readPos
	}
	if len(a.path) > 0 && len(b.path) > 0 && a.path[0] != b.path[0] {
		return a.path[0] < b.path[0]
	}
	return false
}

func score1(reach, mism int32, p Params) int32 {
	return (reach-mism)*p.MatchScore - mism*p.MismatchPenalty
}

// extendLeft walks the graph backward from (node, off) matching r[..i]
// leftward. Predecessor steps are fully haplotype-constrained: the
// bidirectional state is extended left through the reverse index, so only
// walks some indexed haplotype actually takes survive. The returned pos is
// the graph position of the leftmost matched base; readPos is the inclusive
// read start; path lists nodes *before* the seed node, in walk
// (right-to-left) order.
//
//minigiraffe:hot
func extendLeft(env *Env, r dna.Sequence, i int32, node vgraph.NodeID, off int32, state gbwt.BiState, mismBudget int, p Params, readIdx int) walkResult {
	g := env.Graph
	mb := mismBudget
	if mb < 0 {
		mb = 0
	}
	mism := make([]int32, 0, mb)
	path := make([]vgraph.NodeID, 0, 4)
	curNode, curOff := node, off
	for {
		label := g.Seq(curNode)
		if env.Probe != nil && curOff >= 0 && i >= 0 {
			n := curOff + 1
			if i+1 < n {
				n = i + 1
			}
			if n > 0 {
				env.Probe.Access(counters.NodeSeqAddr(uint32(curNode), curOff-n+1), int(n))
				env.Probe.Access(counters.ReadAddr(readIdx, i-n+1), int(n))
				env.Probe.Instr(int64(n) * 6)
			}
		}
		for curOff >= 0 && i >= 0 {
			if label[curOff] != r[i] {
				if len(mism)+1 > mismBudget {
					return walkResult{
						readPos: i + 1,
						mism:    mism,
						path:    path,
						pos:     vgraph.Position{Node: curNode, Off: curOff + 1},
					}
				}
				mism = append(mism, i)
			}
			curOff--
			i--
		}
		if i < 0 {
			return walkResult{
				readPos: 0,
				mism:    mism,
				path:    path,
				pos:     vgraph.Position{Node: curNode, Off: curOff + 1},
				reached: true,
			}
		}
		// Node start reached: step to the best haplotype-consistent
		// predecessor. Greedy: choose the predecessor whose tail matches the
		// read furthest (deterministic by node id on ties).
		pred, next := bestPredecessor(env, r, i, state, p)
		if pred == vgraph.Invalid {
			return walkResult{
				readPos: i + 1,
				mism:    mism,
				path:    path,
				pos:     vgraph.Position{Node: curNode, Off: 0},
			}
		}
		path = append(path, pred)
		state = next
		curNode = pred
		curOff = int32(g.SeqLen(pred)) - 1
	}
}

// bestPredecessor returns the haplotype-consistent predecessor of the
// state's first node whose label tail best matches the read ending at i,
// together with the left-extended state, or Invalid when no haplotype
// continues leftward.
//
//minigiraffe:hot
func bestPredecessor(env *Env, r dna.Sequence, i int32, state gbwt.BiState, p Params) (vgraph.NodeID, gbwt.BiState) {
	g := env.Graph
	rec := env.Bi.Rev.Record(state.Rev.Node)
	if env.Probe != nil {
		env.Probe.Access(counters.RecordRevAddr(uint32(state.Rev.Node)), counters.RecordStride)
		env.Probe.Instr(20)
	}
	if rec == nil {
		return vgraph.Invalid, state
	}
	best := vgraph.Invalid
	var bestState gbwt.BiState
	bestMatch := int32(-1)
	for _, e := range rec.Edges {
		u := e.To
		if u == gbwt.Endmarker {
			continue
		}
		next := gbwt.ExtendLeftWith(env.Bi, state, u)
		if next.Empty() {
			continue
		}
		// Count matching tail bases (up to 8) for the greedy choice.
		label := g.Seq(u)
		m := int32(0)
		ri, li := i, int32(len(label))-1
		for m < 8 && ri >= 0 && li >= 0 && label[li] == r[ri] {
			m++
			ri--
			li--
		}
		if env.Probe != nil {
			env.Probe.Instr(int64(m+1) * 6)
		}
		if m > bestMatch {
			bestMatch = m
			best = u
			bestState = next
		}
	}
	return best, bestState
}
