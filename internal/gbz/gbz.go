// Package gbz implements a GBZ-like container file format for pangenome
// graphs (Sirén & Paten, "GBZ file format for pangenome graphs",
// Bioinformatics 2022): a single file bundling the variation graph's node
// sequences and edges together with the GBWT haplotype index, compressed,
// with integrity checking. Giraffe (and miniGiraffe) load the pangenome
// reference from this format and decompress GBWT records on demand at
// runtime.
//
// Layout:
//
//	offset 0: magic "GBZg" (4 bytes)
//	          version uint16 LE, flags uint16 LE (bit 0: payload deflated)
//	          payloadLen uint64 LE (stored length)
//	          payload (graph section, then GBWT section; see below),
//	          DEFLATE-compressed when flag bit 0 is set
//	          crc32(IEEE) of the stored payload bytes, uint32 LE
//
// Graph section (varints): numNodes; per node: seqLen, packed 2-bit bases,
// zigzag backbone coordinate; numEdges; per edge: delta-from, to; numPaths;
// per path: length, node ids (delta within path).
package gbz

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/dna"
	"repro/internal/gbwt"
	"repro/internal/vgraph"
)

// Magic identifies GBZ files written by this package.
var Magic = [4]byte{'G', 'B', 'Z', 'g'}

// Version is the current format version.
const Version uint16 = 1

// flagDeflate marks a DEFLATE-compressed payload, the on-disk compression
// the GBZ format is named for (per-record run-length coding handles the
// in-memory compression; file-level deflate squeezes the remainder).
const flagDeflate uint16 = 1 << 0

// File is the decoded content of a GBZ container.
type File struct {
	Graph *vgraph.Graph
	Index *gbwt.GBWT
}

// Errors reported by Read.
var (
	ErrBadMagic   = errors.New("gbz: bad magic")
	ErrBadVersion = errors.New("gbz: unsupported version")
	ErrCorrupt    = errors.New("gbz: payload CRC mismatch")
)

// zigzag encodes a signed value for varint storage.
func zigzag(v int32) uint64 { return uint64(uint32(v<<1) ^ uint32(v>>31)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int32 { return int32(uint32(u)>>1) ^ -int32(uint32(u)&1) }

// Write serialises f to w with a DEFLATE-compressed payload.
func Write(w io.Writer, f *File) error { return write(w, f, true) }

// WriteUncompressed serialises f without payload compression (faster load,
// larger file).
func WriteUncompressed(w io.Writer, f *File) error { return write(w, f, false) }

func write(w io.Writer, f *File, compress bool) error {
	if f == nil || f.Graph == nil || f.Index == nil {
		return errors.New("gbz: nil file, graph, or index")
	}
	var payload bytes.Buffer
	if err := writeGraph(&payload, f.Graph); err != nil {
		return err
	}
	if err := f.Index.Serialize(&payload); err != nil {
		return err
	}
	stored := payload.Bytes()
	flags := uint16(0)
	if compress {
		var zbuf bytes.Buffer
		zw, err := flate.NewWriter(&zbuf, flate.BestSpeed)
		if err != nil {
			return err
		}
		if _, err := zw.Write(stored); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		stored = zbuf.Bytes()
		flags |= flagDeflate
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint16(hdr[0:], Version)
	binary.LittleEndian.PutUint16(hdr[2:], flags)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(stored)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	sum := crc32.ChecksumIEEE(stored)
	if _, err := bw.Write(stored); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	if _, err := bw.Write(tail[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a GBZ container from r, verifying magic, version, and CRC.
func Read(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("gbz: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("gbz: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	flags := binary.LittleEndian.Uint16(hdr[2:])
	if flags&^flagDeflate != 0 {
		return nil, fmt.Errorf("gbz: unknown flags %#x", flags)
	}
	payloadLen := binary.LittleEndian.Uint64(hdr[4:])
	const maxPayload = 1 << 36
	if payloadLen > maxPayload {
		return nil, fmt.Errorf("gbz: implausible payload length %d", payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("gbz: reading payload: %w", err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("gbz: reading checksum: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail[:]) {
		return nil, ErrCorrupt
	}
	if flags&flagDeflate != 0 {
		zr := flate.NewReader(bytes.NewReader(payload))
		inflated, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("gbz: inflating payload: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, err
		}
		payload = inflated
	}

	pr := bytes.NewReader(payload)
	g, err := readGraph(pr)
	if err != nil {
		return nil, err
	}
	idx, err := gbwt.Deserialize(pr)
	if err != nil {
		return nil, err
	}
	return &File{Graph: g, Index: idx}, nil
}

// Save writes f to a file at path.
func Save(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(out, f); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Load reads a GBZ file from disk.
func Load(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return Read(in)
}

// writeGraph emits the graph section.
func writeGraph(buf *bytes.Buffer, g *vgraph.Graph) error {
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	n := g.NumNodes()
	put(uint64(n))
	for id := vgraph.NodeID(1); int(id) <= n; id++ {
		seq := g.Seq(id)
		packed := dna.Pack(seq)
		data, ln := packed.Raw()
		put(uint64(ln))
		buf.Write(data)
		put(zigzag(g.Backbone(id)))
	}
	put(uint64(g.NumEdges()))
	prevFrom := uint64(0)
	for id := vgraph.NodeID(1); int(id) <= n; id++ {
		for _, to := range g.Successors(id) {
			put(uint64(id) - prevFrom)
			prevFrom = uint64(id)
			put(uint64(to))
		}
	}
	put(uint64(g.NumPaths()))
	for i := 0; i < g.NumPaths(); i++ {
		p := g.Path(i)
		put(uint64(len(p)))
		for _, v := range p {
			put(uint64(v))
		}
	}
	return nil
}

// readGraph parses the graph section.
func readGraph(r *bytes.Reader) (*vgraph.Graph, error) {
	get := func() (uint64, error) { return binary.ReadUvarint(r) }
	n, err := get()
	if err != nil {
		return nil, fmt.Errorf("gbz: node count: %w", err)
	}
	g := &vgraph.Graph{}
	for i := uint64(0); i < n; i++ {
		ln, err := get()
		if err != nil {
			return nil, fmt.Errorf("gbz: node %d seq length: %w", i+1, err)
		}
		data := make([]byte, (ln+3)/4)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("gbz: node %d bases: %w", i+1, err)
		}
		packed, err := dna.PackedFromRaw(data, int(ln))
		if err != nil {
			return nil, err
		}
		if _, err := g.AddNode(packed.Unpack()); err != nil {
			return nil, err
		}
		bb, err := get()
		if err != nil {
			return nil, fmt.Errorf("gbz: node %d backbone: %w", i+1, err)
		}
		g.SetBackbone(vgraph.NodeID(i+1), unzigzag(bb))
	}
	nEdges, err := get()
	if err != nil {
		return nil, fmt.Errorf("gbz: edge count: %w", err)
	}
	prevFrom := uint64(0)
	for i := uint64(0); i < nEdges; i++ {
		df, err := get()
		if err != nil {
			return nil, fmt.Errorf("gbz: edge %d from: %w", i, err)
		}
		from := prevFrom + df
		prevFrom = from
		to, err := get()
		if err != nil {
			return nil, fmt.Errorf("gbz: edge %d to: %w", i, err)
		}
		if err := g.AddEdge(vgraph.NodeID(from), vgraph.NodeID(to)); err != nil {
			return nil, err
		}
	}
	nPaths, err := get()
	if err != nil {
		return nil, fmt.Errorf("gbz: path count: %w", err)
	}
	for i := uint64(0); i < nPaths; i++ {
		ln, err := get()
		if err != nil {
			return nil, fmt.Errorf("gbz: path %d length: %w", i, err)
		}
		path := make([]vgraph.NodeID, ln)
		for j := range path {
			v, err := get()
			if err != nil {
				return nil, fmt.Errorf("gbz: path %d step %d: %w", i, j, err)
			}
			path[j] = vgraph.NodeID(v)
		}
		if _, err := g.AddPath(path); err != nil {
			return nil, err
		}
	}
	return g, nil
}
