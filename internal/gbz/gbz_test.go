package gbz

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dna"
	"repro/internal/gbwt"
	"repro/internal/vgraph"
)

// buildTestFile creates a pangenome with haplotypes and its GBWT.
func buildTestFile(t testing.TB, seed int64) *File {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := make(dna.Sequence, 1500)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	var vs []vgraph.Variant
	for pos := 40; pos < 1400; pos += 80 {
		vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.SNP, Alt: dna.Sequence{(ref[pos] + 1) & 3}})
	}
	p, err := vgraph.BuildPangenome(ref, vs, 24)
	if err != nil {
		t.Fatal(err)
	}
	var paths [][]vgraph.NodeID
	for h := 0; h < 6; h++ {
		alleles := make([]int, p.NumSites())
		for i := range alleles {
			alleles[i] = rng.Intn(p.NumAlleles(i))
		}
		path, err := p.HaplotypePath(alleles)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.AddPath(path); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	idx, err := gbwt.New(paths)
	if err != nil {
		t.Fatal(err)
	}
	return &File{Graph: p.Graph, Index: idx}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := buildTestFile(t, 1)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	g, h := f.Graph, got.Graph
	if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() || g.NumPaths() != h.NumPaths() {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			g.NumNodes(), g.NumEdges(), g.NumPaths(), h.NumNodes(), h.NumEdges(), h.NumPaths())
	}
	for id := vgraph.NodeID(1); int(id) <= g.NumNodes(); id++ {
		if !g.Seq(id).Equal(h.Seq(id)) {
			t.Fatalf("node %d sequence mismatch", id)
		}
		if g.Backbone(id) != h.Backbone(id) {
			t.Fatalf("node %d backbone mismatch", id)
		}
		if !reflect.DeepEqual(g.Successors(id), h.Successors(id)) {
			t.Fatalf("node %d successors mismatch", id)
		}
	}
	for i := 0; i < g.NumPaths(); i++ {
		if !reflect.DeepEqual(g.Path(i), h.Path(i)) {
			t.Fatalf("path %d mismatch", i)
		}
	}
	// GBWT queries agree.
	if f.Index.NumPaths() != got.Index.NumPaths() {
		t.Fatal("GBWT path count mismatch")
	}
	for i := 0; i < f.Index.NumPaths(); i++ {
		a, err1 := f.Index.ExtractPath(i)
		b, err2 := got.Index.ExtractPath(i)
		if err1 != nil || err2 != nil || !reflect.DeepEqual(a, b) {
			t.Fatalf("GBWT path %d mismatch (%v, %v)", i, err1, err2)
		}
	}
	if err := got.Graph.Validate(); err != nil {
		t.Fatalf("deserialized graph invalid: %v", err)
	}
}

func TestSaveLoad(t *testing.T) {
	f := buildTestFile(t, 2)
	path := filepath.Join(t.TempDir(), "test.gbz")
	if err := Save(path, f); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Graph.NumNodes() != f.Graph.NumNodes() {
		t.Error("node count mismatch after Save/Load")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.gbz")); err == nil {
		t.Error("Load of missing file succeeded")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("NOPE0123456789abcdef")))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	f := buildTestFile(t, 3)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 0xFF // version LSB
	_, err := Read(bytes.NewReader(data))
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	f := buildTestFile(t, 4)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a payload byte (past the 16-byte header).
	data[64] ^= 0x40
	_, err := Read(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadTruncated(t *testing.T) {
	f := buildTestFile(t, 5)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 3, 10, 20, len(data) - 2} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestWriteNil(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err == nil {
		t.Error("Write(nil) succeeded")
	}
	if err := Write(&buf, &File{}); err == nil {
		t.Error("Write(empty File) succeeded")
	}
}

func TestSaveToUnwritablePath(t *testing.T) {
	f := buildTestFile(t, 6)
	if err := Save(string(os.PathSeparator)+"nonexistent-dir-xyz/file.gbz", f); err == nil {
		t.Error("Save to bad path succeeded")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int32{0, 1, -1, 2, -2, 1 << 30, -(1 << 30), -42} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
}

func TestUncompressedRoundTrip(t *testing.T) {
	f := buildTestFile(t, 7)
	var plain, deflated bytes.Buffer
	if err := WriteUncompressed(&plain, f); err != nil {
		t.Fatal(err)
	}
	if err := Write(&deflated, f); err != nil {
		t.Fatal(err)
	}
	// Compression must actually shrink the random-but-structured payload.
	if deflated.Len() >= plain.Len() {
		t.Errorf("deflated %d ≥ plain %d bytes", deflated.Len(), plain.Len())
	}
	for name, buf := range map[string]*bytes.Buffer{"plain": &plain, "deflated": &deflated} {
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Graph.NumNodes() != f.Graph.NumNodes() {
			t.Fatalf("%s: node count mismatch", name)
		}
	}
}

func TestReadRejectsUnknownFlags(t *testing.T) {
	f := buildTestFile(t, 8)
	var buf bytes.Buffer
	if err := WriteUncompressed(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[6] |= 0x80 // set an undefined flag bit
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("unknown flag accepted")
	}
}
