package fastq

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dna"
)

func TestRoundTrip(t *testing.T) {
	reads := []dna.Read{
		{Name: "r1", Seq: dna.MustParse("ACGT"), Fragment: -1},
		{Name: "frag.0/1", Seq: dna.MustParse("GGCC"), Fragment: 0, End: 0},
		{Name: "frag.0/2", Seq: dna.MustParse("TTAA"), Fragment: 0, End: 1},
	}
	var buf bytes.Buffer
	if err := Write(&buf, reads); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reads) {
		t.Fatalf("%d reads, want %d", len(got), len(reads))
	}
	for i := range reads {
		if got[i].Name != reads[i].Name || !got[i].Seq.Equal(reads[i].Seq) {
			t.Fatalf("read %d mismatch: %+v", i, got[i])
		}
	}
	if got[0].Paired() {
		t.Error("single read parsed as paired")
	}
	if !got[1].Paired() || !got[2].Paired() {
		t.Error("paired reads parsed as single")
	}
	if got[1].Fragment != got[2].Fragment {
		t.Error("pair fragments differ")
	}
	if got[1].End != 0 || got[2].End != 1 {
		t.Error("pair ends wrong")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reads.fq")
	reads := []dna.Read{{Name: "a", Seq: dna.MustParse("ACGTACGT"), Fragment: -1}}
	if err := WriteFile(path, reads); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Seq.Equal(reads[0].Seq) {
		t.Fatalf("round trip failed: %+v", got)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"no header", "ACGT\n"},
		{"truncated after header", "@r1\n"},
		{"bad base", "@r1\nACGN\n+\nIIII\n"},
		{"missing separator", "@r1\nACGT\nACGT\nIIII\n"},
		{"quality length", "@r1\nACGT\n+\nII\n"},
		{"truncated before quality", "@r1\nACGT\n+\n"},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(tc.data)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("%d reads from empty input", len(got))
	}
}

func TestFragmentNumbering(t *testing.T) {
	data := "@a/1\nAC\n+\nII\n@a/2\nGT\n+\nII\n@b/1\nAC\n+\nII\n@b/2\nGT\n+\nII\n"
	got, err := Read(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Fragment != 0 || got[1].Fragment != 0 {
		t.Error("first pair not fragment 0")
	}
	if got[2].Fragment != 1 || got[3].Fragment != 1 {
		t.Error("second pair not fragment 1")
	}
}

func TestFastaRoundTrip(t *testing.T) {
	recs := []FastaRecord{
		{Name: "chr1", Seq: dna.MustParse(strings.Repeat("ACGT", 50))}, // wraps
		{Name: "chr2 description", Seq: dna.MustParse("GG")},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d records", len(got))
	}
	for i := range recs {
		if got[i].Name != recs[i].Name || !got[i].Seq.Equal(recs[i].Seq) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestFastaWrapWidth(t *testing.T) {
	recs := []FastaRecord{{Name: "x", Seq: dna.MustParse(strings.Repeat("A", 150))}}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 70 + 70 + 10
		t.Fatalf("%d lines", len(lines))
	}
	if len(lines[1]) != 70 || len(lines[3]) != 10 {
		t.Errorf("wrap widths: %d, %d", len(lines[1]), len(lines[3]))
	}
}

func TestFastaErrors(t *testing.T) {
	if _, err := ReadFasta(strings.NewReader("ACGT\n")); err == nil {
		t.Error("headerless sequence accepted")
	}
	if _, err := ReadFasta(strings.NewReader(">x\nACGN\n")); err == nil {
		t.Error("invalid base accepted")
	}
}

func TestFastaFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ref.fa")
	recs := []FastaRecord{{Name: "r", Seq: dna.MustParse("ACGTACGT")}}
	if err := WriteFastaFile(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Seq.Equal(recs[0].Seq) {
		t.Error("file round trip failed")
	}
}
