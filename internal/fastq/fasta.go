package fastq

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/dna"
)

// FASTA support for reference sequences (the linear references the
// pangenomes are built from). Sequences wrap at the conventional 70 columns.

// FastaRecord is one named sequence.
type FastaRecord struct {
	Name string
	Seq  dna.Sequence
}

// fastaLineWidth is the wrap column.
const fastaLineWidth = 70

// WriteFasta emits records in FASTA format.
func WriteFasta(w io.Writer, records []FastaRecord) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		if _, err := fmt.Fprintf(bw, ">%s\n", r.Name); err != nil {
			return err
		}
		s := r.Seq.String()
		for i := 0; i < len(s); i += fastaLineWidth {
			end := i + fastaLineWidth
			if end > len(s) {
				end = len(s)
			}
			if _, err := fmt.Fprintln(bw, s[i:end]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFasta parses FASTA records.
func ReadFasta(r io.Reader) ([]FastaRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []FastaRecord
	var cur *FastaRecord
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		if strings.HasPrefix(text, ">") {
			out = append(out, FastaRecord{Name: strings.TrimSpace(text[1:])})
			cur = &out[len(out)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fastq: FASTA line %d: sequence before header", line)
		}
		seq, err := dna.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("fastq: FASTA record %q line %d: %w", cur.Name, line, err)
		}
		cur.Seq = append(cur.Seq, seq...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFastaFile saves records to a .fa file.
func WriteFastaFile(path string, records []FastaRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFasta(f, records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFastaFile loads a .fa file.
func ReadFastaFile(path string) ([]FastaRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFasta(f)
}
