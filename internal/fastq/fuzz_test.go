package fastq

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dna"
)

// FuzzFASTQ throws arbitrary bytes at the FASTQ parsers. Garbage headers,
// truncated records, bad bases, and mismatched quality lengths must all
// surface as errors — never a panic. Two properties are checked on every
// input: the incremental Scanner and the batch Read must agree exactly
// (the streaming extraction path depends on that), and any workload that
// parses must survive a write/reparse round trip unchanged.
func FuzzFASTQ(f *testing.F) {
	f.Add([]byte("@r0/1\nACGT\n+\nIIII\n@r0/2\nTTTT\n+\nIIII\n"))
	f.Add([]byte("@solo\nacgtacgt\n+\nJJJJJJJJ\n"))
	f.Add([]byte("\n\n@blank-lines\nAC\n+\nII\n"))
	f.Add([]byte("no header\nACGT\n+\nIIII\n"))
	f.Add([]byte("@truncated\nACGT\n"))
	f.Add([]byte("@qual-short\nACGT\n+\nIII\n"))
	f.Add([]byte("@bad-base\nACGN\n+\nIIII\n"))
	f.Add([]byte("@no-separator\nACGT\nACGT\nIIII\n"))
	f.Add([]byte("@empty-seq\n\n+\n\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		reads, err := Read(bytes.NewReader(data))

		// Differential: one record at a time through the Scanner must give
		// the same records (and the same verdict) as the batch path.
		sc := NewScanner(bytes.NewReader(data))
		var scanned []dna.Read
		var scanErr error
		for {
			rd, nextErr := sc.Next()
			if nextErr == io.EOF {
				break
			}
			if nextErr != nil {
				scanErr = nextErr
				break
			}
			scanned = append(scanned, rd)
		}
		if (err == nil) != (scanErr == nil) {
			t.Fatalf("batch error %v, scanner error %v", err, scanErr)
		}
		if err != nil {
			return
		}
		if !reflect.DeepEqual(reads, scanned) {
			t.Fatal("scanner records differ from batch records")
		}

		// Round trip. A name with a trailing carriage return cannot survive
		// one (the rewritten "name\r\n" ending is CRLF, whose \r the next
		// parse strips), so that degenerate case is exempt.
		for _, rd := range reads {
			if strings.HasSuffix(rd.Name, "\r") {
				return
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, reads); err != nil {
			t.Fatal(err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("reparsing written FASTQ: %v", err)
		}
		if !reflect.DeepEqual(reads, again) {
			t.Fatal("FASTQ round trip altered the records")
		}
	})
}
