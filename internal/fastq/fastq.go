// Package fastq reads and writes short reads in FASTQ format, the standard
// sequencer output the paper's input sets arrive in (Table III). Quality
// strings are synthesised (the mapper does not use them) and paired-end
// identity is carried in the conventional "/1"-"/2" name suffixes.
package fastq

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/dna"
)

// Write emits reads in FASTQ.
func Write(w io.Writer, reads []dna.Read) error {
	bw := bufio.NewWriter(w)
	for i := range reads {
		r := &reads[i]
		qual := strings.Repeat("I", len(r.Seq))
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", r.Name, r.Seq.String(), qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile saves reads to a FASTQ file.
func WriteFile(path string, reads []dna.Read) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, reads); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses FASTQ records. Names ending in "/1" or "/2" are paired:
// consecutive /1-/2 records form a fragment, numbered in file order.
func Read(r io.Reader) ([]dna.Read, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []dna.Read
	fragment := 0
	line := 0
	for sc.Scan() {
		header := sc.Text()
		line++
		if header == "" {
			continue
		}
		if !strings.HasPrefix(header, "@") {
			return nil, fmt.Errorf("fastq: line %d: expected @header, got %q", line, header)
		}
		if !sc.Scan() {
			return nil, fmt.Errorf("fastq: record %q truncated before sequence", header)
		}
		line++
		seq, err := dna.Parse(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("fastq: record %q: %w", header, err)
		}
		if !sc.Scan() || !strings.HasPrefix(sc.Text(), "+") {
			return nil, fmt.Errorf("fastq: record %q missing separator line", header)
		}
		line++
		if !sc.Scan() {
			return nil, fmt.Errorf("fastq: record %q truncated before quality", header)
		}
		line++
		if len(sc.Text()) != len(seq) {
			return nil, fmt.Errorf("fastq: record %q quality length %d != sequence %d", header, len(sc.Text()), len(seq))
		}
		name := strings.TrimPrefix(header, "@")
		read := dna.Read{Name: name, Seq: seq, Fragment: -1}
		switch {
		case strings.HasSuffix(name, "/1"):
			read.Fragment = fragment
			read.End = 0
		case strings.HasSuffix(name, "/2"):
			read.Fragment = fragment
			read.End = 1
			fragment++
		}
		out = append(out, read)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadFile loads a FASTQ file.
func ReadFile(path string) ([]dna.Read, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
