// Package fastq reads and writes short reads in FASTQ format, the standard
// sequencer output the paper's input sets arrive in (Table III). Quality
// strings are synthesised (the mapper does not use them) and paired-end
// identity is carried in the conventional "/1"-"/2" name suffixes.
package fastq

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/dna"
)

// Write emits reads in FASTQ.
func Write(w io.Writer, reads []dna.Read) error {
	bw := bufio.NewWriter(w)
	for i := range reads {
		r := &reads[i]
		qual := strings.Repeat("I", len(r.Seq))
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", r.Name, r.Seq.String(), qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile saves reads to a FASTQ file.
func WriteFile(path string, reads []dna.Read) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, reads); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Scanner reads FASTQ records one at a time — the incremental front end of
// the streaming extraction path (giraffe.ExtractSource), where buffering the
// whole read set would defeat the pipeline's bounded-memory guarantee. It
// carries the pairing state across records: names ending in "/1" or "/2"
// are paired, consecutive /1-/2 records form a fragment, numbered in file
// order — exactly the numbering the batch Read produces, so streamed and
// materialized workloads are record-for-record identical.
type Scanner struct {
	sc       *bufio.Scanner
	line     int
	fragment int
	err      error
}

// NewScanner wraps r for incremental record reading.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &Scanner{sc: sc}
}

// Next returns the next record, or io.EOF after the last one. Parse errors
// are sticky: once Next fails, every later call returns the same error.
func (s *Scanner) Next() (dna.Read, error) {
	if s.err != nil {
		return dna.Read{}, s.err
	}
	rd, err := s.next()
	if err != nil {
		s.err = err
	}
	return rd, err
}

func (s *Scanner) next() (dna.Read, error) {
	for s.sc.Scan() {
		header := s.sc.Text()
		s.line++
		if header == "" {
			continue
		}
		if !strings.HasPrefix(header, "@") {
			return dna.Read{}, fmt.Errorf("fastq: line %d: expected @header, got %q", s.line, header)
		}
		if !s.sc.Scan() {
			return dna.Read{}, fmt.Errorf("fastq: record %q truncated before sequence", header)
		}
		s.line++
		seq, err := dna.Parse(s.sc.Text())
		if err != nil {
			return dna.Read{}, fmt.Errorf("fastq: record %q: %w", header, err)
		}
		if !s.sc.Scan() || !strings.HasPrefix(s.sc.Text(), "+") {
			return dna.Read{}, fmt.Errorf("fastq: record %q missing separator line", header)
		}
		s.line++
		if !s.sc.Scan() {
			return dna.Read{}, fmt.Errorf("fastq: record %q truncated before quality", header)
		}
		s.line++
		if len(s.sc.Text()) != len(seq) {
			return dna.Read{}, fmt.Errorf("fastq: record %q quality length %d != sequence %d", header, len(s.sc.Text()), len(seq))
		}
		name := strings.TrimPrefix(header, "@")
		read := dna.Read{Name: name, Seq: seq, Fragment: -1}
		switch {
		case strings.HasSuffix(name, "/1"):
			read.Fragment = s.fragment
			read.End = 0
		case strings.HasSuffix(name, "/2"):
			read.Fragment = s.fragment
			read.End = 1
			s.fragment++
		}
		return read, nil
	}
	if err := s.sc.Err(); err != nil {
		return dna.Read{}, err
	}
	return dna.Read{}, io.EOF
}

// Read parses FASTQ records. Names ending in "/1" or "/2" are paired:
// consecutive /1-/2 records form a fragment, numbered in file order.
func Read(r io.Reader) ([]dna.Read, error) {
	sc := NewScanner(r)
	var out []dna.Read
	for {
		rd, err := sc.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rd)
	}
}

// ReadFile loads a FASTQ file.
func ReadFile(path string) ([]dna.Read, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
