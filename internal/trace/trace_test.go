package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBeginEnd(t *testing.T) {
	r := NewRecorder(2)
	end := r.Begin(0, RegionCluster)
	time.Sleep(2 * time.Millisecond)
	end()
	spans := r.Spans(0)
	if len(spans) != 1 {
		t.Fatalf("%d spans, want 1", len(spans))
	}
	if spans[0].Region != RegionCluster {
		t.Errorf("region = %q", spans[0].Region)
	}
	if spans[0].Dur < time.Millisecond {
		t.Errorf("dur = %v, want ≥ 1ms", spans[0].Dur)
	}
	if len(r.Spans(1)) != 0 {
		t.Error("worker 1 has phantom spans")
	}
}

func TestRecordDirect(t *testing.T) {
	r := NewRecorder(1)
	r.Record(0, RegionExtend, time.Now(), 5*time.Millisecond)
	if got := r.Spans(0)[0].Dur; got != 5*time.Millisecond {
		t.Errorf("dur = %v", got)
	}
}

func TestRegionTotals(t *testing.T) {
	r := NewRecorder(2)
	now := time.Now()
	r.Record(0, RegionCluster, now, 10*time.Millisecond)
	r.Record(0, RegionCluster, now, 20*time.Millisecond)
	r.Record(1, RegionExtend, now, 40*time.Millisecond)
	totals := r.RegionTotals()
	if got := totals[0][RegionCluster]; got != 30*time.Millisecond {
		t.Errorf("worker 0 cluster total = %v", got)
	}
	if got := totals[1][RegionExtend]; got != 40*time.Millisecond {
		t.Errorf("worker 1 extend total = %v", got)
	}
}

func TestShares(t *testing.T) {
	r := NewRecorder(1)
	now := time.Now()
	r.Record(0, RegionThresholdC, now, 60*time.Millisecond)
	r.Record(0, RegionCluster, now, 30*time.Millisecond)
	r.Record(0, RegionIO, now, 900*time.Millisecond)
	r.Record(0, RegionMinimizer, now, 10*time.Millisecond)
	shares := r.Shares(RegionIO)
	if len(shares) != 3 {
		t.Fatalf("%d shares, want 3", len(shares))
	}
	if shares[0].Region != RegionThresholdC {
		t.Errorf("top region = %q, want threshold_c", shares[0].Region)
	}
	if shares[0].Percent != 60 {
		t.Errorf("threshold_c share = %f, want 60", shares[0].Percent)
	}
	sum := 0.0
	for _, s := range shares {
		sum += s.Percent
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("shares sum to %f", sum)
	}
}

func TestSharesEmpty(t *testing.T) {
	r := NewRecorder(1)
	if shares := r.Shares(); len(shares) != 0 {
		t.Errorf("shares of empty recorder: %v", shares)
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	r := NewRecorder(2)
	now := time.Now()
	r.Record(0, RegionCluster, now, time.Millisecond)
	r.Record(1, RegionExtend, now, 2*time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteTimelineCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines, want 3 (header + 2)", len(lines))
	}
	if lines[0] != "worker,region,start_us,dur_us" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,cluster_seeds,") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestMerge(t *testing.T) {
	a := NewRecorder(1)
	b := NewRecorder(2)
	now := time.Now()
	a.Record(0, RegionCluster, now, time.Millisecond)
	b.Record(0, RegionExtend, now, time.Millisecond)
	b.Record(1, RegionExtend, now, time.Millisecond)
	a.Merge(b)
	if a.Workers() != 2 {
		t.Fatalf("workers after merge = %d, want 2", a.Workers())
	}
	if len(a.Spans(0)) != 2 {
		t.Errorf("worker 0 spans = %d, want 2", len(a.Spans(0)))
	}
	if len(a.Spans(1)) != 1 {
		t.Errorf("worker 1 spans = %d, want 1", len(a.Spans(1)))
	}
}

func TestNewRecorderMinWorkers(t *testing.T) {
	r := NewRecorder(0)
	if r.Workers() != 1 {
		t.Errorf("workers = %d, want 1", r.Workers())
	}
}

func TestGrow(t *testing.T) {
	r := NewRecorder(2)
	r.Grow(5)
	if r.Workers() != 5 {
		t.Fatalf("workers = %d, want 5", r.Workers())
	}
	r.Grow(3) // never shrinks
	if r.Workers() != 5 {
		t.Fatalf("workers after smaller Grow = %d, want 5", r.Workers())
	}
	end := r.Begin(4, RegionEmit)
	end()
	if len(r.Spans(4)) != 1 {
		t.Errorf("grown buffer did not record: %d spans", len(r.Spans(4)))
	}
}

// TestConcurrentRecordMerge locks in the recorder's concurrency contract
// under the race detector: the record path takes no locks, so concurrent
// workers recording on distinct worker indices must be race-free, and
// concurrent Merges of per-stage recorders into one aggregate (the only
// cross-recorder operation, guarded by the recorder mutex) must serialize
// cleanly against each other.
func TestConcurrentRecordMerge(t *testing.T) {
	const (
		workers       = 8
		stages        = 6
		spansPerActor = 200
	)

	// Shared recorder: one goroutine per worker index, lock-free records.
	shared := NewRecorder(workers)
	// Aggregate: per-stage private recorders merged in concurrently.
	agg := NewRecorder(workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spansPerActor; i++ {
				if i%2 == 0 {
					end := shared.Begin(w, RegionExtend)
					end()
				} else {
					shared.Record(w, RegionCluster, time.Now(), time.Microsecond)
				}
			}
		}(w)
	}
	for s := 0; s < stages; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			private := NewRecorder(workers)
			for i := 0; i < spansPerActor; i++ {
				private.Record(i%workers, RegionEmit, time.Now(), time.Microsecond)
			}
			agg.Merge(private)
		}(s)
	}
	wg.Wait()

	// The shared recorder's own spans merge in after its workers are done.
	agg.Merge(shared)

	total := 0
	for w := 0; w < agg.Workers(); w++ {
		total += len(agg.Spans(w))
	}
	if want := (workers + stages) * spansPerActor; total != want {
		t.Fatalf("aggregate holds %d spans, want %d", total, want)
	}
	perWorker := (workers + stages) * spansPerActor / workers
	for w := 0; w < workers; w++ {
		if got := len(shared.Spans(w)); got != spansPerActor {
			t.Errorf("shared worker %d: %d spans, want %d", w, got, spansPerActor)
		}
		if got := len(agg.Spans(w)); got != perWorker {
			t.Errorf("aggregate worker %d: %d spans, want %d", w, got, perWorker)
		}
	}
}
