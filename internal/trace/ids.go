package trace

// This file is the request-identity half of the tracing layer: a 128-bit
// trace ID and its W3C traceparent wire form. The serving path threads one ID
// per request from cmd/loadgen through internal/serve into the mapping
// session and the slow-read exemplars, so a p99 spike seen client-side can be
// joined to the exact queue-wait and kernel spans that produced it. The ID is
// a value type (two words, no pointers) so carrying it through hot structs
// (obs.Exemplar, obs.SubBatch) allocates nothing.

// TraceparentHeader is the propagation header the serving path reads and
// writes: the W3C Trace Context header name.
const TraceparentHeader = "traceparent"

// ID is a 128-bit request trace identifier. The zero ID means "untraced";
// generators must never produce it.
type ID struct {
	Hi, Lo uint64
}

// IsZero reports whether the ID is the untraced sentinel.
func (id ID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the canonical 32-hex-digit form (lowercase, zero-padded),
// the same bytes that appear inside the traceparent header.
func (id ID) String() string {
	var b [32]byte
	putHex(b[:16], id.Hi)
	putHex(b[16:], id.Lo)
	return string(b[:])
}

// MarshalJSON encodes the ID as its hex string; the zero ID encodes as ""
// so untraced records (batch-mode exemplars) stay visibly unattributed.
func (id ID) MarshalJSON() ([]byte, error) {
	if id.IsZero() {
		return []byte(`""`), nil
	}
	b := make([]byte, 0, 34)
	b = append(b, '"')
	var h [32]byte
	putHex(h[:16], id.Hi)
	putHex(h[16:], id.Lo)
	b = append(b, h[:]...)
	return append(b, '"'), nil
}

// UnmarshalJSON parses the hex-string form ("" -> zero ID).
func (id *ID) UnmarshalJSON(data []byte) error {
	if len(data) == 2 && data[0] == '"' && data[1] == '"' {
		*id = ID{}
		return nil
	}
	if len(data) != 34 || data[0] != '"' || data[33] != '"' {
		return errBadID
	}
	hi, ok1 := parseHex(data[1:17])
	lo, ok2 := parseHex(data[17:33])
	if !ok1 || !ok2 {
		return errBadID
	}
	*id = ID{Hi: hi, Lo: lo}
	return nil
}

type idError string

func (e idError) Error() string { return string(e) }

const errBadID = idError("trace: malformed trace ID")

// Traceparent renders the full header value: version 00, the trace ID, a
// non-zero parent span ID derived from the trace ID, and the sampled flag.
// The serving path samples tail-based server-side, so the client-side flag is
// always 01 (the client has no grounds to pre-filter).
func Traceparent(id ID) string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	var h [32]byte
	putHex(h[:16], id.Hi)
	putHex(h[16:], id.Lo)
	b = append(b, h[:]...)
	b = append(b, '-')
	var span [16]byte
	putHex(span[:], spanFrom(id))
	b = append(b, span[:]...)
	return string(append(b, "-01"...))
}

// spanFrom derives a non-zero parent span ID from the trace ID (the span ID
// field must not be all-zero per the header grammar).
func spanFrom(id ID) uint64 {
	s := id.Hi ^ id.Lo
	if s == 0 {
		s = 1
	}
	return s
}

// ParseTraceparent extracts the trace ID from a traceparent header value.
// It accepts any version byte and ignores the span ID and flags — the server
// only needs the request identity. Malformed or all-zero IDs return ok=false
// so the caller can fall back to generating its own.
func ParseTraceparent(h string) (ID, bool) {
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return ID{}, false
	}
	hi, ok1 := parseHex([]byte(h[3:19]))
	lo, ok2 := parseHex([]byte(h[19:35]))
	if !ok1 || !ok2 {
		return ID{}, false
	}
	id := ID{Hi: hi, Lo: lo}
	if id.IsZero() {
		return ID{}, false
	}
	return id, true
}

const hexDigits = "0123456789abcdef"

// putHex writes v as 16 lowercase hex digits into dst.
func putHex(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// parseHex reads exactly 16 lowercase-or-uppercase hex digits.
func parseHex(src []byte) (uint64, bool) {
	var v uint64
	for _, c := range src {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}
