// Package trace reimplements the paper's low-overhead instrumentation
// header (§III): kernels record named-region timestamps into per-thread
// buffers (the original used a UThash table) and nothing is aggregated or
// written until the end of the run, so instrumentation does not perturb the
// execution being measured. The recorded spans regenerate the paper's
// Figure 2 (per-thread timeline) and Figure 3 (per-region runtime shares).
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Region names used across the pipeline, mirroring the paper's instrumented
// regions.
const (
	RegionIO         = "io"
	RegionIngest     = "ingest"
	RegionEmit       = "emit"
	RegionMapBatch   = "map_batch"
	RegionCacheBuild = "cache_build"
	RegionParse      = "parse_input"
	RegionMinimizer  = "find_minimizers"
	RegionSeeds      = "make_seeds"
	RegionCluster    = "cluster_seeds"
	RegionThresholdC = "process_until_threshold_c"
	RegionExtend     = "extend"
	RegionPostproc   = "postprocess"
	RegionAlign      = "align"
	RegionScheduler  = "scheduler"
)

// Span is one recorded region execution on one worker.
type Span struct {
	Region string
	Start  time.Duration // offset from the recorder's epoch
	Dur    time.Duration
}

// Recorder collects spans with per-worker buffers (no locking on the record
// path). The zero worker count is invalid; use NewRecorder.
type Recorder struct {
	epoch   time.Time
	buffers [][]Span
	// mu guards only Merge-time reads of extra recorders, not Record.
	mu sync.Mutex
}

// NewRecorder creates a recorder for the given worker count.
func NewRecorder(workers int) *Recorder {
	return NewRecorderEpoch(workers, time.Now())
}

// NewRecorderEpoch creates a recorder whose span offsets are measured from
// the given epoch instead of the construction time — for tests that need
// byte-stable exports, and for aligning recorders created at different
// times before a Merge.
func NewRecorderEpoch(workers int, epoch time.Time) *Recorder {
	if workers < 1 {
		workers = 1
	}
	return &Recorder{
		epoch:   epoch,
		buffers: make([][]Span, workers),
	}
}

// Workers returns the number of per-worker buffers.
func (r *Recorder) Workers() int { return len(r.buffers) }

// Grow extends the recorder to at least `workers` per-worker buffers, so a
// consumer with extra stages (e.g. the streaming pipeline's ingest and emit
// goroutines) can record alongside the map workers. Not safe to call while
// spans are being recorded; call it before the run starts.
func (r *Recorder) Grow(workers int) {
	for len(r.buffers) < workers {
		r.buffers = append(r.buffers, nil)
	}
}

// Begin starts timing a region on a worker; call the returned func to end
// it. Each worker must only be driven by one goroutine at a time.
func (r *Recorder) Begin(worker int, region string) func() {
	start := time.Now()
	return func() {
		r.buffers[worker] = append(r.buffers[worker], Span{
			Region: region,
			Start:  start.Sub(r.epoch),
			Dur:    time.Since(start),
		})
	}
}

// Record adds a completed span directly.
func (r *Recorder) Record(worker int, region string, start time.Time, dur time.Duration) {
	r.buffers[worker] = append(r.buffers[worker], Span{
		Region: region,
		Start:  start.Sub(r.epoch),
		Dur:    dur,
	})
}

// Spans returns worker w's spans in record order. The slice aliases the
// recorder's storage; only read it after the run completes.
func (r *Recorder) Spans(worker int) []Span { return r.buffers[worker] }

// SortedSpans returns a copy of worker w's spans in canonical order: by
// start offset, then region name, then duration. Record order depends on
// which recorder a span was merged from, so exporters that must be
// deterministic across runs (timeline CSV, Perfetto) sort first.
func (r *Recorder) SortedSpans(worker int) []Span {
	spans := append([]Span(nil), r.buffers[worker]...)
	sort.Slice(spans, func(a, b int) bool {
		if spans[a].Start != spans[b].Start {
			return spans[a].Start < spans[b].Start
		}
		if spans[a].Region != spans[b].Region {
			return spans[a].Region < spans[b].Region
		}
		return spans[a].Dur < spans[b].Dur
	})
	return spans
}

// RegionTotals aggregates total duration per region, per worker.
func (r *Recorder) RegionTotals() []map[string]time.Duration {
	out := make([]map[string]time.Duration, len(r.buffers))
	for w, spans := range r.buffers {
		m := make(map[string]time.Duration)
		for _, s := range spans {
			m[s.Region] += s.Dur
		}
		out[w] = m
	}
	return out
}

// RegionShare is one row of the Figure 3 aggregation: a region's share of
// the summed instrumented time, averaged across workers.
type RegionShare struct {
	Region  string
	Total   time.Duration
	Percent float64
}

// Shares computes per-region shares of total instrumented time across all
// workers, descending. exclude lists regions (e.g. io, parse_input) to drop
// before computing percentages, as the paper does for Figure 3.
func (r *Recorder) Shares(exclude ...string) []RegionShare {
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	totals := make(map[string]time.Duration)
	var grand time.Duration
	for _, spans := range r.buffers {
		for _, s := range spans {
			if skip[s.Region] {
				continue
			}
			totals[s.Region] += s.Dur
			grand += s.Dur
		}
	}
	out := make([]RegionShare, 0, len(totals))
	for region, d := range totals {
		share := RegionShare{Region: region, Total: d}
		if grand > 0 {
			share.Percent = 100 * float64(d) / float64(grand)
		}
		out = append(out, share)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Total != out[b].Total {
			return out[a].Total > out[b].Total
		}
		return out[a].Region < out[b].Region
	})
	return out
}

// WriteTimelineCSV dumps every span as CSV (worker, region, start_us,
// dur_us) — the Figure 2 raw data. Rows are emitted in canonical order
// (worker, then start offset, then region, then duration) rather than
// record order, so two runs that produced the same spans — or the same run
// exported before and after a Merge — write byte-identical files that
// golden tests and run-to-run diffs can compare directly.
func (r *Recorder) WriteTimelineCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "worker,region,start_us,dur_us"); err != nil {
		return err
	}
	for worker := range r.buffers {
		for _, s := range r.SortedSpans(worker) {
			if _, err := fmt.Fprintf(w, "%d,%s,%d,%d\n",
				worker, s.Region, s.Start.Microseconds(), s.Dur.Microseconds()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Merge appends all spans of other into r (worker buffers are matched by
// index; extra workers are appended). Useful when a stage used its own
// recorder.
func (r *Recorder) Merge(other *Recorder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	shift := other.epoch.Sub(r.epoch)
	for w, spans := range other.buffers {
		for _, s := range spans {
			s.Start += shift
			if w < len(r.buffers) {
				r.buffers[w] = append(r.buffers[w], s)
			} else {
				r.buffers = append(r.buffers, []Span{s})
			}
		}
	}
}
