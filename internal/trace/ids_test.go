package trace

import (
	"encoding/json"
	"testing"
)

func TestIDStringAndTraceparentRoundTrip(t *testing.T) {
	for _, id := range []ID{
		{Hi: 1, Lo: 2},
		{Hi: 0x4bf92f3577b34da6, Lo: 0xa3ce929d0e0e4736},
		{Hi: 0, Lo: 0xdeadbeef},
		{Hi: ^uint64(0), Lo: ^uint64(0)},
	} {
		h := Traceparent(id)
		if len(h) != 55 {
			t.Fatalf("Traceparent(%v) = %q, want 55 bytes", id, h)
		}
		got, ok := ParseTraceparent(h)
		if !ok || got != id {
			t.Fatalf("ParseTraceparent(%q) = %v, %v; want %v, true", h, got, ok, id)
		}
		if want := h[3:35]; id.String() != want {
			t.Fatalf("ID.String() = %q, want header trace-id field %q", id.String(), want)
		}
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	for _, h := range []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736", // no span id
		"00-4bf92f3577b34da6a3ce929d0e0e473X-00f067aa0ba902b7-01",       // bad hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // all-zero id
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // bad separator
		"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",        // short version
		"00-4bf92f3577b34da6a3ce929d0e0e4736--00f067aa0ba902b7-01-junk", // shifted fields
	} {
		if id, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted as %v", h, id)
		}
	}
	// Future versions and trailing extensions are accepted (per spec the
	// trace-id field position is fixed).
	if _, ok := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("ParseTraceparent rejected a future-version header")
	}
}

func TestIDJSON(t *testing.T) {
	id := ID{Hi: 0xabc, Lo: 0x123}
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"` + id.String() + `"`; string(b) != want {
		t.Fatalf("Marshal = %s, want %s", b, want)
	}
	var back ID
	if err := json.Unmarshal(b, &back); err != nil || back != id {
		t.Fatalf("Unmarshal(%s) = %v, %v", b, back, err)
	}
	z, err := json.Marshal(ID{})
	if err != nil || string(z) != `""` {
		t.Fatalf("Marshal(zero) = %s, %v; want \"\"", z, err)
	}
	var zb ID
	if err := json.Unmarshal([]byte(`""`), &zb); err != nil || !zb.IsZero() {
		t.Fatalf("Unmarshal(\"\") = %v, %v; want zero", zb, err)
	}
	if err := json.Unmarshal([]byte(`"xyz"`), &zb); err == nil {
		t.Error("Unmarshal accepted a malformed ID")
	}
}
