package pipeline_test

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// TestSubmitTracedSpans: a traced request records one queue_wait and one
// map_subbatch span per sub-batch, worker-attributed, all landed before
// SubmitTraced returns on the success path.
func TestSubmitTracedSpans(t *testing.T) {
	tracer := obs.NewReqTracer(1, 4, 4, nil)
	fm := &fakeMapper{}
	sess, err := pipeline.NewSession(fm, pipeline.Options{Workers: 2, BatchSize: 4, Depth: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	id := trace.ID{Hi: 3, Lo: 14}
	rt := tracer.Start(id, "c")
	if _, err := sess.SubmitTraced(context.Background(), mkRecs(10), rt); err != nil {
		t.Fatal(err)
	}
	tracer.Finish(rt, 200)

	snap := tracer.Snapshot()
	if len(snap.Traces) != 1 {
		t.Fatalf("sampled %d traces, want 1", len(snap.Traces))
	}
	var qw, ms int
	for _, sp := range snap.Traces[0].Spans {
		switch sp.Name {
		case obs.SpanQueueWait:
			qw++
		case obs.SpanMapSubbatch:
			ms++
			if sp.Worker < 0 || sp.Worker > 1 {
				t.Fatalf("map span worker = %d", sp.Worker)
			}
			if sp.Canceled {
				t.Fatalf("uncanceled request has canceled map span")
			}
		default:
			t.Fatalf("unexpected span %q from the session layer", sp.Name)
		}
	}
	// 10 reads at batch size 4 → 3 sub-batches.
	if qw != 3 || ms != 3 {
		t.Fatalf("spans: %d queue_wait + %d map_subbatch, want 3 + 3", qw, ms)
	}
}

// TestSessionOverloadQueueWaitAgreement drives the session into queue backlog
// with every request traced and a reservoir large enough to sample all of
// them, then checks the two views of queueing time against each other: the
// serve_queue_wait_seconds histogram (exact integer-nanosecond sum) and the
// queue_wait spans in the sampled traces. The session feeds both from the
// same measured duration, so they must agree to float conversion precision —
// a drift means one of the two instrumentation paths broke.
func TestSessionOverloadQueueWaitAgreement(t *testing.T) {
	reg := obs.NewRegistry(3)
	tracer := obs.NewReqTracer(2, 64, 64, nil)
	fm := &fakeMapper{delay: 200 * time.Microsecond}
	sess, err := pipeline.NewSession(fm, pipeline.Options{Workers: 2, BatchSize: 4, Depth: 256}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const reqs = 8
	const readsPerReq = 16 // 4 sub-batches each
	traces := make([]*obs.ReqTrace, reqs)
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		rt := tracer.Start(trace.ID{Hi: 1, Lo: uint64(i + 1)}, "c")
		traces[i] = rt
		wg.Add(1)
		go func(rt *obs.ReqTrace) {
			defer wg.Done()
			if _, err := sess.SubmitTraced(context.Background(), mkRecs(readsPerReq), rt); err != nil {
				t.Error(err)
			}
		}(rt)
	}
	wg.Wait()
	for _, rt := range traces {
		tracer.Finish(rt, 200)
	}

	snap := tracer.Snapshot()
	if len(snap.Traces) != reqs {
		t.Fatalf("sampled %d traces, want all %d", len(snap.Traces), reqs)
	}
	var spanSum int64
	var spanCount int64
	for _, tr := range snap.Traces {
		for _, sp := range tr.Spans {
			if sp.Name == obs.SpanQueueWait {
				spanSum += sp.DurNanos
				spanCount++
			}
		}
	}
	h := reg.Snapshot().Histograms[obs.MetricServeQueueWait]
	wantJobs := int64(reqs * readsPerReq / 4)
	if h.Count != wantJobs || spanCount != wantJobs {
		t.Fatalf("queue-wait observations: histogram %d, spans %d, want %d each", h.Count, spanCount, wantJobs)
	}
	spanSeconds := float64(spanSum) / 1e9
	tol := 1e-9 * math.Max(1, h.SumSeconds)
	if diff := math.Abs(spanSeconds - h.SumSeconds); diff > tol {
		t.Fatalf("queue-wait disagreement: spans %.9fs vs histogram %.9fs (diff %.3g)",
			spanSeconds, h.SumSeconds, diff)
	}
}
