package pipeline_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/extend"
	"repro/internal/gbwt"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/vgraph"
)

// fakeMapper is a controllable BatchMapper: each record "maps" to a single
// extension whose node encodes the record's global index, after an optional
// per-record delay, honouring the stop flag exactly as core.Mapper does. An
// optional gate blocks the first record of every batch until released, which
// lets tests fill the queue deterministically.
type fakeMapper struct {
	delay  time.Duration
	gate   chan struct{} // nil: never blocks
	mapped atomic.Int64
}

func (f *fakeMapper) MapBatchUntil(worker int, recs []seeds.ReadSeeds, base int, out [][]extend.Extension, stop *atomic.Bool, sb *obs.SubBatch) (gbwt.CacheStats, int) {
	if f.gate != nil {
		<-f.gate
	}
	mapped := 0
	for j := range recs {
		if stop != nil && stop.Load() {
			break
		}
		if f.delay > 0 {
			time.Sleep(f.delay)
		}
		out[j] = []extend.Extension{{StartPos: vgraph.Position{Node: vgraph.NodeID(base + j)}}}
		f.mapped.Add(1)
		mapped++
	}
	return gbwt.CacheStats{}, mapped
}

func mkRecs(n int) []seeds.ReadSeeds {
	recs := make([]seeds.ReadSeeds, n)
	for i := range recs {
		recs[i].Read.Name = fmt.Sprintf("r%d", i)
	}
	return recs
}

// TestSessionQueueFull covers admission control: a session whose workers are
// blocked and whose queue is full must reject further submissions with
// ErrQueueFull without queueing any of their sub-batches, and count the
// rejection.
func TestSessionQueueFull(t *testing.T) {
	for _, tc := range []struct {
		name          string
		depth, reads  int // submission size in reads, batch size 4
		fills, accept int // how many 1-batch fillers fit, then the verdict size
	}{
		{"single-batch overflow", 2, 4, 2, 4},
		{"multi-batch all-or-nothing", 3, 4, 2, 8}, // 1 slot left, needs 2
	} {
		t.Run(tc.name, func(t *testing.T) {
			fm := &fakeMapper{gate: make(chan struct{})}
			reg := obs.NewRegistry(2)
			s, err := pipeline.NewSession(fm, pipeline.Options{
				Workers: 1, BatchSize: 4, Depth: tc.depth, Scheduler: sched.Dynamic,
			}, reg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			// One submission parks on the (gated) worker, then fillers pack
			// the queue to its depth bound.
			var wg sync.WaitGroup
			submit := func(n int) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					s.Submit(context.Background(), mkRecs(n)) //nolint:errcheck
				}()
			}
			submit(tc.reads)
			// Wait until the worker has claimed the parked batch, so the
			// fillers below land in the queue, not on the worker.
			waitFor(t, func() bool {
				return reg.Counter(obs.MetricSchedClaims).Value() == 1
			})
			for i := 0; i < tc.fills; i++ {
				submit(tc.reads)
			}
			waitFor(t, func() bool {
				return reg.Gauge(obs.MetricServeQueueDepth).Value() >= int64(tc.fills)
			})

			_, err = s.Submit(context.Background(), mkRecs(tc.accept))
			if !errors.Is(err, pipeline.ErrQueueFull) {
				t.Fatalf("Submit over a full queue: %v, want ErrQueueFull", err)
			}
			if got := reg.Counter(obs.MetricServeQueueRejects).Value(); got != 1 {
				t.Errorf("serve_queue_rejects_total = %d, want 1", got)
			}
			close(fm.gate)
			wg.Wait()
		})
	}
}

// TestSessionDeadlineCancelsWork covers request deadlines: an expired
// deadline must surface as context.DeadlineExceeded, stop the mapper before
// it processes the whole request, and account the skipped work in the
// serve_canceled_* counters.
func TestSessionDeadlineCancelsWork(t *testing.T) {
	fm := &fakeMapper{delay: 2 * time.Millisecond}
	reg := obs.NewRegistry(2)
	s, err := pipeline.NewSession(fm, pipeline.Options{
		Workers: 1, BatchSize: 8, Depth: 64, Scheduler: sched.Dynamic,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const reads = 256 // ≥512ms of mapper work against a 20ms deadline
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = s.Submit(ctx, mkRecs(reads))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit past deadline: %v, want DeadlineExceeded", err)
	}
	// The worker drains the corpse asynchronously; wait for the last
	// sub-batch to be skipped or stopped.
	waitFor(t, func() bool {
		snap := reg.Snapshot()
		return snap.Counters[obs.MetricServeCanceledReads] > 0 &&
			snap.Gauges[obs.MetricServeQueueDepth] == 0
	})
	if got := fm.mapped.Load(); got >= reads {
		t.Errorf("mapper processed all %d reads despite the deadline", got)
	}
	snap := reg.Snapshot()
	canceled := snap.Counters[obs.MetricServeCanceledReads]
	if canceled+fm.mapped.Load() != reads {
		t.Errorf("canceled (%d) + mapped (%d) != submitted (%d)",
			canceled, fm.mapped.Load(), reads)
	}
	if snap.Counters[obs.MetricServeCanceled] == 0 {
		t.Error("serve_canceled_batches_total = 0, want > 0")
	}
}

// TestSessionOrderedResultsConcurrent covers result ordering: many
// concurrent clients submit interleaved requests through a multi-worker
// session under every scheduling policy, and each client's results must
// line up with its own request order.
func TestSessionOrderedResultsConcurrent(t *testing.T) {
	for _, kind := range []sched.Kind{sched.Dynamic, sched.WorkStealing, sched.Static} {
		t.Run(kind.String(), func(t *testing.T) {
			fm := &fakeMapper{}
			s, err := pipeline.NewSession(fm, pipeline.Options{
				Workers: 4, BatchSize: 3, Depth: 512, Scheduler: kind,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			const clients, perClient, reads = 8, 20, 10
			var wg sync.WaitGroup
			errCh := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < perClient; r++ {
						out, err := s.Submit(context.Background(), mkRecs(reads))
						if err != nil {
							errCh <- err
							return
						}
						if len(out) != reads {
							errCh <- fmt.Errorf("%d results for %d reads", len(out), reads)
							return
						}
						// The fake encodes the session-global record index:
						// within one request the indices must be contiguous
						// and ascending, i.e. results are in request order.
						first := int(out[0][0].StartPos.Node)
						for i := range out {
							if got := int(out[i][0].StartPos.Node); got != first+i {
								errCh <- fmt.Errorf("result %d out of order: node %d, want %d", i, got, first+i)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
		})
	}
}

// TestSessionClose covers drain: Close completes admitted work, then new
// submissions fail fast with ErrSessionClosed.
func TestSessionClose(t *testing.T) {
	fm := &fakeMapper{}
	s, err := pipeline.NewSession(fm, pipeline.Options{Workers: 2, BatchSize: 4, Depth: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), mkRecs(10)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Submit(context.Background(), mkRecs(1)); !errors.Is(err, pipeline.ErrSessionClosed) {
		t.Fatalf("Submit after Close: %v, want ErrSessionClosed", err)
	}
	s.Close() // idempotent
	if got := fm.mapped.Load(); got != 10 {
		t.Errorf("mapped %d reads, want 10", got)
	}
}

// TestSessionRealMapper exercises the session against the real core.Mapper
// on a generated workload and checks the results match the batch proxy's.
func TestSessionRealMapper(t *testing.T) {
	f, recs := fixture(t, 0.05)
	m, err := core.NewMapper(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(f, recs, core.Options{Threads: 2, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := pipeline.NewSession(m, pipeline.Options{Workers: 2, BatchSize: 8, Depth: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Submit(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if len(out[i]) != len(want.Extensions[i]) {
			t.Fatalf("record %d: %d extensions, want %d", i, len(out[i]), len(want.Extensions[i]))
		}
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
