package pipeline_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/extend"
	"repro/internal/gbz"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fixture generates a bundle and captures its seeds — the proxy's inputs.
func fixture(t testing.TB, scale float64) (*gbz.File, []seeds.ReadSeeds) {
	t.Helper()
	b, err := workload.Generate(workload.AHuman().Scaled(scale))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := b.CaptureSeeds()
	if err != nil {
		t.Fatal(err)
	}
	return b.GBZ(), recs
}

func batchCSV(t *testing.T, f *gbz.File, recs []seeds.ReadSeeds, opts core.Options) []byte {
	t.Helper()
	res, err := core.Run(f, recs, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.WriteCSV(&buf, recs, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamMatchesBatchCSV is the acceptance criterion: streaming mode must
// produce byte-identical WriteCSV output to batch mode on the same workload,
// for every scheduler policy and several pool/batch/depth shapes.
func TestStreamMatchesBatchCSV(t *testing.T) {
	f, recs := fixture(t, 0.06)
	want := batchCSV(t, f, recs, core.Options{Threads: 2, BatchSize: 8})
	m, err := core.NewMapper(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []sched.Kind{sched.Dynamic, sched.WorkStealing, sched.Static} {
		for _, workers := range []int{1, 3} {
			for _, batch := range []int{1, 4, 1024} {
				for _, depth := range []int{1, 4} {
					var buf bytes.Buffer
					st, err := pipeline.RunToCSV(m, pipeline.NewSliceSource(recs), &buf, pipeline.Options{
						Workers: workers, BatchSize: batch, Depth: depth, Scheduler: kind,
					})
					if err != nil {
						t.Fatalf("%v w=%d b=%d d=%d: %v", kind, workers, batch, depth, err)
					}
					if !bytes.Equal(want, buf.Bytes()) {
						t.Fatalf("%v w=%d b=%d d=%d: stream CSV differs from batch CSV", kind, workers, batch, depth)
					}
					if st.Reads != len(recs) {
						t.Errorf("%v w=%d b=%d d=%d: streamed %d of %d reads", kind, workers, batch, depth, st.Reads, len(recs))
					}
					wantBatches := (len(recs) + batch - 1) / batch
					if st.Batches != wantBatches {
						t.Errorf("%v w=%d b=%d d=%d: %d batches, want %d", kind, workers, batch, depth, st.Batches, wantBatches)
					}
				}
			}
		}
	}
}

// TestStreamFromFile exercises the incremental file reader end to end: write
// the capture to disk, stream it back without materializing, compare to the
// batch output.
func TestStreamFromFile(t *testing.T) {
	f, recs := fixture(t, 0.05)
	path := filepath.Join(t.TempDir(), "capture.bin")
	if err := seeds.WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	want := batchCSV(t, f, recs, core.Options{Threads: 2, BatchSize: 8})
	m, err := core.NewMapper(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := seeds.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var buf bytes.Buffer
	st, err := pipeline.RunToCSV(m, src, &buf, pipeline.Options{Workers: 4, BatchSize: 8, Scheduler: sched.WorkStealing})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatal("stream-from-file CSV differs from batch CSV")
	}
	if st.Reads != len(recs) {
		t.Errorf("streamed %d of %d reads", st.Reads, len(recs))
	}
	if st.Cache.Accesses == 0 {
		t.Error("no cache activity recorded")
	}
}

func TestEmptySource(t *testing.T) {
	f, _ := fixture(t, 0.03)
	m, err := core.NewMapper(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st, err := pipeline.RunToCSV(m, pipeline.NewSliceSource(nil), &buf, pipeline.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads != 0 || st.Batches != 0 {
		t.Errorf("empty source streamed reads=%d batches=%d", st.Reads, st.Batches)
	}
	if got := buf.String(); got != "read,node,offset,strand,read_start,read_end,score,mismatches\n" {
		t.Errorf("empty stream output = %q", got)
	}
}

func TestWorkersExceedBatches(t *testing.T) {
	f, recs := fixture(t, 0.03)
	m, err := core.NewMapper(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := batchCSV(t, f, recs, core.Options{Threads: 1})
	for _, kind := range []sched.Kind{sched.Dynamic, sched.WorkStealing, sched.Static} {
		var buf bytes.Buffer
		// One giant batch, many workers: all but one idle.
		_, err := pipeline.RunToCSV(m, pipeline.NewSliceSource(recs), &buf, pipeline.Options{
			Workers: 8, BatchSize: len(recs) + 10, Scheduler: kind,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("%v: CSV differs with idle workers", kind)
		}
	}
}

// errSource fails after yielding n records.
type errSource struct {
	recs []seeds.ReadSeeds
	n, i int
}

func (s *errSource) Next() (*seeds.ReadSeeds, error) {
	if s.i >= s.n {
		return nil, errors.New("disk on fire")
	}
	r := &s.recs[s.i]
	s.i++
	return r, nil
}

func TestSourceErrorPropagates(t *testing.T) {
	f, recs := fixture(t, 0.04)
	m, err := core.NewMapper(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = pipeline.RunToCSV(m, &errSource{recs: recs, n: len(recs) / 2}, &buf, pipeline.Options{
		Workers: 2, BatchSize: 4,
	})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("disk on fire")) {
		t.Fatalf("source error not propagated: %v", err)
	}
}

// failEmitter errors on the nth emitted record.
type failEmitter struct{ n, i int }

func (e *failEmitter) Emit(*seeds.ReadSeeds, []extend.Extension) error {
	e.i++
	if e.i >= e.n {
		return fmt.Errorf("emit %d failed", e.i)
	}
	return nil
}

func TestEmitterErrorPropagates(t *testing.T) {
	f, recs := fixture(t, 0.04)
	m, err := core.NewMapper(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = pipeline.Run(m, pipeline.NewSliceSource(recs), &failEmitter{n: 3}, pipeline.Options{
		Workers: 3, BatchSize: 2,
	})
	if err == nil {
		t.Fatal("emitter error not propagated")
	}
}

func TestStealsOnlyUnderWorkStealing(t *testing.T) {
	f, recs := fixture(t, 0.05)
	m, err := core.NewMapper(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []sched.Kind{sched.Dynamic, sched.Static} {
		var buf bytes.Buffer
		st, err := pipeline.RunToCSV(m, pipeline.NewSliceSource(recs), &buf, pipeline.Options{
			Workers: 4, BatchSize: 2, Scheduler: kind,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Sched.Steals != 0 {
			t.Errorf("%v recorded %d steals", kind, st.Sched.Steals)
		}
	}
}

func TestStatsAndTrace(t *testing.T) {
	f, recs := fixture(t, 0.05)
	rec := trace.NewRecorder(1) // deliberately small: pipeline must Grow it
	m, err := core.NewMapper(f, core.Options{Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const workers = 3
	st, err := pipeline.RunToCSV(m, pipeline.NewSliceSource(recs), &buf, pipeline.Options{
		Workers: workers, BatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Workers() < workers+2 {
		t.Fatalf("recorder not grown: %d buffers", rec.Workers())
	}
	regions := map[string]bool{}
	for _, s := range rec.Shares() {
		regions[s.Region] = true
	}
	for _, want := range []string{trace.RegionIngest, trace.RegionEmit, trace.RegionCluster, trace.RegionThresholdC} {
		if !regions[want] {
			t.Errorf("missing region %q in trace", want)
		}
	}
	var processed int64
	for _, p := range st.Sched.Processed {
		processed += p
	}
	if processed != int64(len(recs)) {
		t.Errorf("workers processed %d of %d", processed, len(recs))
	}
	if st.BatchLatency.N != int64(st.Batches) || st.MapLatency.N != int64(st.Batches) {
		t.Errorf("latency samples %d/%d for %d batches", st.BatchLatency.N, st.MapLatency.N, st.Batches)
	}
	if st.IngestLatency.N != int64(st.Batches) {
		t.Errorf("ingest latency samples %d for %d batches", st.IngestLatency.N, st.Batches)
	}
	if st.IngestLatency.Max <= 0 {
		t.Error("ingest latency never recorded a positive sample")
	}
	if st.Makespan <= 0 || st.Throughput() <= 0 {
		t.Errorf("makespan %v throughput %f", st.Makespan, st.Throughput())
	}
}

func TestNilArguments(t *testing.T) {
	f, _ := fixture(t, 0.03)
	m, err := core.NewMapper(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.Run(nil, pipeline.NewSliceSource(nil), &failEmitter{n: 1 << 30}, pipeline.Options{}); err == nil {
		t.Error("nil mapper accepted")
	}
	if _, err := pipeline.Run(m, nil, &failEmitter{n: 1 << 30}, pipeline.Options{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := pipeline.Run(m, pipeline.NewSliceSource(nil), nil, pipeline.Options{}); err == nil {
		t.Error("nil emitter accepted")
	}
}

func TestSliceSourceEOF(t *testing.T) {
	s := pipeline.NewSliceSource(nil)
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("empty slice source returned %v, want io.EOF", err)
	}
}

func BenchmarkStream(b *testing.B) {
	f, recs := fixture(b, 0.05)
	m, err := core.NewMapper(f, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Run(m, pipeline.NewSliceSource(recs), discardEmitter{}, pipeline.Options{
			Workers: 4, BatchSize: 8, Scheduler: sched.WorkStealing,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

type discardEmitter struct{}

func (discardEmitter) Emit(*seeds.ReadSeeds, []extend.Extension) error { return nil }
