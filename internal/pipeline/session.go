package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/extend"
	"repro/internal/gbwt"
	"repro/internal/obs"
	"repro/internal/seeds"
)

// Submission errors. ErrQueueFull is the admission-control signal: the
// request never entered the queue, so the caller can reject it cheaply
// (HTTP 429) instead of queueing unboundedly.
var (
	ErrQueueFull     = errors.New("pipeline: session queue full")
	ErrSessionClosed = errors.New("pipeline: session closed")
)

// BatchMapper is the mapping engine a Session drives — the cancellable
// batch kernel of core.Mapper, abstracted so tests can substitute a
// controllable fake. *core.Mapper satisfies it.
type BatchMapper interface {
	MapBatchUntil(worker int, recs []seeds.ReadSeeds, base int, out [][]extend.Extension, stop *atomic.Bool, sb *obs.SubBatch) (gbwt.CacheStats, int)
}

// EpochPublisher is the optional batch-boundary hook of the epoch-published
// shared cache: a Session probes its BatchMapper for it once at
// construction and, when present, ticks it after every mapped sub-batch.
// *core.Mapper satisfies it (a no-op unless the epoch cache is enabled);
// test fakes that only implement BatchMapper are unaffected.
type EpochPublisher interface {
	TryPublishEpoch(worker int) bool
}

// Session is the reusable submit API over the streaming pipeline's worker
// pool: where Run drains one source and exits, a Session keeps the pool and
// the loaded substrate hot and maps request after request — the serving
// building block behind cmd/giraffed.
//
// Each Submit is split into sub-batches of Options.BatchSize (preserving the
// per-batch CachedGBWT discipline, §VII-B) which enter the same bounded
// claim queue the streaming pipeline uses, under the same scheduling
// policies. Admission is all-or-nothing and non-blocking: a request whose
// sub-batches would overflow Options.Depth is rejected with ErrQueueFull
// before any of them queue. Request contexts cancel in-flight work: a
// deadline that fires while sub-batches are queued skips them entirely, and
// one that fires while a worker is mapping stops the kernel at the next
// record boundary (core.Mapper.MapBatchUntil).
type Session struct {
	m    BatchMapper
	ep   EpochPublisher // non-nil when m also publishes epochs
	opts Options
	cq   *claimQueue[*sjob]
	wg   sync.WaitGroup

	closed    atomic.Bool
	nextIndex atomic.Int64 // global read index: slow-exemplar attribution

	mu    sync.Mutex
	cache gbwt.CacheStats

	// labels carry the serving-class pprof labels the pool workers wear, so
	// a -profile capture splits map time between the serving path and batch
	// runs.
	labels *obs.ProfLabels

	// Metric handles are nil-safe no-ops when reg is nil.
	submitShard   int
	qDepth        *obs.Gauge
	inFlight      *obs.Gauge
	requests      *obs.Counter
	reads         *obs.Counter
	queueRejects  *obs.Counter
	canceled      *obs.Counter
	canceledReads *obs.Counter
	claims        *obs.Counter
	steals        *obs.Counter
	pipeReads     *obs.Counter
	pipeBatches   *obs.Counter
	hService      *obs.Histogram
	hQueueWait    *obs.Histogram
	hMap          *obs.Histogram
}

// sjob is one queued sub-batch of a submitted request.
type sjob struct {
	req  *srequest
	recs []seeds.ReadSeeds
	out  [][]extend.Extension // disjoint window into the request's results
	base int                  // global read index of recs[0]
	enq  time.Time
	// tr is the request's trace (nil when the caller is untraced); sb is
	// this sub-batch's kernel attribution, passed into MapBatchUntil.
	tr *obs.ReqTrace
	sb obs.SubBatch
}

// srequest is the shared completion state of one Submit.
type srequest struct {
	stop      atomic.Bool // request context done: skip / stop mapping
	remaining atomic.Int64
	mapped    atomic.Int64
	done      chan struct{}
}

// NewSession starts the persistent worker pool. reg may be nil (no
// metrics); when set, the session records the request-scoped serving
// metrics plus the same pipeline/scheduler counters the streaming pipeline
// does, so /progress, the flight recorder, and cmd/obsdiff work unchanged
// on serving runs.
func NewSession(m BatchMapper, opts Options, reg *obs.Registry) (*Session, error) {
	if m == nil {
		return nil, errors.New("pipeline: nil mapper")
	}
	opts = opts.normalize()
	reg.SetWorkerShards(opts.Workers)
	s := &Session{
		m:    m,
		opts: opts,
		cq:   newClaimQueue[*sjob](opts.Scheduler, opts.Workers, opts.Depth),

		submitShard:   opts.Workers,
		qDepth:        reg.Gauge(obs.MetricServeQueueDepth),
		inFlight:      reg.Gauge(obs.MetricServeInFlight),
		requests:      reg.Counter(obs.MetricServeRequests),
		reads:         reg.Counter(obs.MetricServeReads),
		queueRejects:  reg.Counter(obs.MetricServeQueueRejects),
		canceled:      reg.Counter(obs.MetricServeCanceled),
		canceledReads: reg.Counter(obs.MetricServeCanceledReads),
		claims:        reg.Counter(obs.MetricSchedClaims),
		steals:        reg.Counter(obs.MetricSchedSteals),
		pipeReads:     reg.Counter(obs.MetricPipelineReads),
		pipeBatches:   reg.Counter(obs.MetricPipelineBatches),
		hService:      reg.Histogram(obs.MetricServeServiceLatency),
		hQueueWait:    reg.Histogram(obs.MetricServeQueueWait),
		hMap:          reg.Histogram(obs.MetricStageMap),
	}
	if ep, ok := m.(EpochPublisher); ok {
		s.ep = ep
	}
	s.labels = obs.NewProfLabels(obs.ClassServe, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	return s, nil
}

// Options returns the session's normalized options (Depth is the admission
// bound in sub-batches).
func (s *Session) Options() Options { return s.opts }

// Submit maps recs and returns one extension set per record, in request
// order. It blocks until the request completes or ctx is done; admission is
// immediate (ErrQueueFull, no partial queueing). On a context error the
// results are discarded: queued sub-batches are skipped and the in-flight
// one stops at the next record boundary, both visible in the
// serve_canceled_* counters.
func (s *Session) Submit(ctx context.Context, recs []seeds.ReadSeeds) ([][]extend.Extension, error) {
	return s.SubmitTraced(ctx, recs, nil)
}

// SubmitTraced is Submit with request-trace attribution: every sub-batch the
// request spawns records queue_wait and map_subbatch spans (cancel markers
// for skipped ones) into rt, worker-attributed and carrying the kernel nanos
// MapBatchUntil accumulates, and the request's trace ID rides into the
// slow-read exemplars. A nil rt is exactly Submit.
func (s *Session) SubmitTraced(ctx context.Context, recs []seeds.ReadSeeds, rt *obs.ReqTrace) ([][]extend.Extension, error) {
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]extend.Extension, len(recs))
	if len(recs) == 0 {
		return out, nil
	}
	bs := s.opts.BatchSize
	njobs := (len(recs) + bs - 1) / bs
	req := &srequest{done: make(chan struct{})}
	req.remaining.Store(int64(njobs))
	base := int(s.nextIndex.Add(int64(len(recs)))) - len(recs)
	now := time.Now()
	jobs := make([]*sjob, 0, njobs)
	for lo := 0; lo < len(recs); lo += bs {
		hi := lo + bs
		if hi > len(recs) {
			hi = len(recs)
		}
		j := &sjob{
			req: req, recs: recs[lo:hi], out: out[lo:hi], base: base + lo, enq: now,
		}
		if rt != nil {
			j.tr = rt
			j.sb.Trace = rt.ID()
		}
		jobs = append(jobs, j)
	}
	// The stop flag, not ctx itself, is what workers poll: one atomic load
	// per record instead of a mutex-guarded ctx.Err.
	release := context.AfterFunc(ctx, func() { req.stop.Store(true) })
	defer release()

	if !s.cq.tryPushAll(jobs) {
		if s.closed.Load() {
			return nil, ErrSessionClosed
		}
		s.queueRejects.Inc(s.submitShard)
		return nil, ErrQueueFull
	}
	s.qDepth.Add(s.submitShard, int64(njobs))
	s.inFlight.Add(s.submitShard, 1)
	s.requests.Inc(s.submitShard)
	defer s.inFlight.Add(s.submitShard, -1)

	select {
	case <-req.done:
		s.hService.Observe(s.submitShard, time.Since(now))
		if int(req.mapped.Load()) != len(recs) {
			// The deadline fired mid-request; every record either mapped or
			// was skipped, but the result set is incomplete.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, context.Canceled
		}
		s.reads.Add(s.submitShard, int64(len(recs)))
		return out, nil
	case <-ctx.Done():
		// Workers finish or skip the remaining sub-batches on their own;
		// the request state keeps the result slices alive until then.
		s.hService.Observe(s.submitShard, time.Since(now))
		return nil, ctx.Err()
	}
}

// worker is one pool member: claim, map (unless the request is already
// dead), account, signal completion.
func (s *Session) worker(w int) {
	defer s.wg.Done()
	s.labels.ApplyMap(w)
	for {
		j, stolen, ok := s.cq.pop(w)
		if !ok {
			return
		}
		s.qDepth.Add(w, -1)
		s.claims.Inc(w)
		if stolen {
			s.steals.Inc(w)
		}
		// The queue-wait span and the serve_queue_wait_seconds histogram see
		// the same duration value, so sampled traces and the metric agree
		// exactly on where queueing time went.
		qw := time.Since(j.enq)
		s.hQueueWait.Observe(w, qw)
		j.tr.AddSpan(obs.SpanQueueWait, w, j.enq, qw)
		if j.req.stop.Load() {
			s.canceled.Inc(w)
			s.canceledReads.Add(w, int64(len(j.recs)))
			j.tr.AddSpan(obs.SpanCancel, w, j.enq.Add(qw), 0)
		} else {
			t0 := time.Now()
			cs, n := s.m.MapBatchUntil(w, j.recs, j.base, j.out, &j.req.stop, jobSubBatch(j))
			// Sub-batch boundary: tick the shared-cache epoch clock so the
			// serving path republishes on the same cadence as the batch
			// pipeline (no-op when the mapper has no epoch cache).
			if s.ep != nil {
				s.ep.TryPublishEpoch(w)
			}
			j.req.mapped.Add(int64(n))
			s.pipeReads.Add(w, int64(n))
			s.pipeBatches.Inc(w)
			dMap := time.Since(t0)
			s.hMap.Observe(w, dMap)
			partial := n < len(j.recs)
			j.tr.AddMapSpan(w, t0, dMap, jobSubBatch(j), partial)
			if partial {
				s.canceled.Inc(w)
				s.canceledReads.Add(w, int64(len(j.recs)-n))
			}
			s.mu.Lock()
			s.cache.Add(cs)
			s.mu.Unlock()
		}
		if j.req.remaining.Add(-1) == 0 {
			close(j.req.done)
		}
	}
}

// jobSubBatch returns the job's kernel-attribution slot, nil for untraced
// requests so the mapper keeps its nil fast path.
func jobSubBatch(j *sjob) *obs.SubBatch {
	if j.tr == nil {
		return nil
	}
	return &j.sb
}

// Close drains the session: new Submits fail with ErrSessionClosed,
// already-admitted requests run to completion, and Close returns when the
// last worker has exited. Idempotent.
func (s *Session) Close() {
	s.closed.Store(true)
	s.cq.close()
	s.wg.Wait()
}

// CacheStats returns the aggregated per-batch CachedGBWT statistics across
// every request mapped so far.
func (s *Session) CacheStats() gbwt.CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache
}
