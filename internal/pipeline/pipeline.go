// Package pipeline is the streaming mapping pipeline: a bounded ingest
// stage reads captured records incrementally, a long-lived worker pool maps
// them batch by batch through a shared core.Mapper (each batch with a fresh
// CachedGBWT, as Giraffe rebuilds its cache per batch, so the §VII-B
// capacity parameter keeps its meaning), and an order-preserving emit stage
// writes results as batches complete. The stages overlap — ingest I/O hides
// behind mapping, mapping behind emit — and every hand-off is bounded, so
// memory is governed by the in-flight window (Depth × BatchSize records)
// instead of the workload size. Emit replays batches in ingest order, which
// keeps the CSV output byte-identical to the batch proxy's.
package pipeline

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/extend"
	"repro/internal/gbwt"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures a streaming run.
type Options struct {
	// Workers is the persistent map-worker count; ≤0 means GOMAXPROCS.
	Workers int
	// BatchSize is the records per in-flight batch; ≤0 means the scheduler
	// default (512, as in Giraffe).
	BatchSize int
	// Depth is the maximum number of batches queued for mapping (the
	// backpressure bound); ≤0 means 2×Workers.
	Depth int
	// Scheduler selects how workers claim queued batches.
	Scheduler sched.Kind
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = sched.DefaultBatchSize
	}
	if o.Depth <= 0 {
		o.Depth = 2 * o.Workers
	}
	return o
}

// Source yields records incrementally; Next returns io.EOF after the last
// one. *seeds.Reader (and seeds.File) satisfy it directly, as does
// giraffe.ExtractSource, which extracts records from FASTQ on the fly
// instead of reading a capture file.
type Source interface {
	Next() (*seeds.ReadSeeds, error)
}

// SliceSource streams an in-memory workload.
type SliceSource struct {
	recs []seeds.ReadSeeds
	i    int
}

// NewSliceSource wraps already-loaded records.
func NewSliceSource(recs []seeds.ReadSeeds) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (*seeds.ReadSeeds, error) {
	if s.i >= len(s.recs) {
		return nil, io.EOF
	}
	r := &s.recs[s.i]
	s.i++
	return r, nil
}

// Emitter consumes mapped records. Emit is called from a single goroutine,
// in workload order.
type Emitter interface {
	Emit(rec *seeds.ReadSeeds, exts []extend.Extension) error
}

// CSVEmitter writes the proxy's CSV format, byte-identical to
// core.WriteCSV over the same workload.
type CSVEmitter struct {
	bw *bufio.Writer
}

// NewCSVEmitter writes the header and returns the emitter. Call Flush when
// the run completes.
func NewCSVEmitter(w io.Writer) (*CSVEmitter, error) {
	bw := bufio.NewWriter(w)
	if err := core.WriteCSVHeader(bw); err != nil {
		return nil, err
	}
	return &CSVEmitter{bw: bw}, nil
}

// Emit implements Emitter.
func (e *CSVEmitter) Emit(rec *seeds.ReadSeeds, exts []extend.Extension) error {
	return core.WriteCSVRecord(e.bw, rec, exts)
}

// Flush drains the buffered output.
func (e *CSVEmitter) Flush() error { return e.bw.Flush() }

// Stats reports a completed streaming run.
type Stats struct {
	// Reads and Batches count what flowed through the pipeline.
	Reads   int
	Batches int
	// Sched reports per-worker records processed and steals, as the batch
	// scheduler does.
	Sched sched.Stats
	// Cache aggregates every batch's CachedGBWT statistics.
	Cache gbwt.CacheStats
	// BatchLatency summarises per-batch ingest→emit latency in seconds.
	BatchLatency stats.Online
	// MapLatency summarises per-batch time in the map stage in seconds.
	MapLatency stats.Online
	// IngestLatency summarises per-batch time in the ingest stage in
	// seconds: what the source spent producing the batch's records. For a
	// captured-seed file that is decode I/O; for a streaming extraction
	// source (giraffe.ExtractSource) it includes minimizer lookup and seed
	// creation, which is what lets cmd/benchreport compare
	// streamed-from-FASTQ against captured-file ingest cost directly.
	IngestLatency stats.Online
	// Makespan is the end-to-end wall time of the streaming run.
	Makespan time.Duration
}

// Throughput returns reads per second over the makespan; zero (not NaN or
// Inf) when the makespan is zero, so JSON consumers never see a non-finite
// rate.
func (s *Stats) Throughput() float64 {
	return obs.Rate(float64(s.Reads), s.Makespan)
}

// batch is one in-flight unit of work.
type batch struct {
	seq        int // ingest order; emit replays in this order
	base       int // global index of recs[0] in the workload
	recs       []seeds.ReadSeeds
	exts       [][]extend.Extension
	ingested   time.Time
	ingestSecs float64
	mapSecs    float64
}

// Run streams records from src through m's mapping kernels into emit. The
// worker pool persists across batches; per-batch CachedGBWT discipline is
// preserved by core.Mapper.MapBatch. Results are emitted in input order.
//
// Trace spans (when the mapper was built with a trace recorder) tag map
// workers 0..Workers-1, the ingest stage as worker Workers, and the emit
// stage as worker Workers+1; the recorder is grown as needed.
func Run(m *core.Mapper, src Source, emit Emitter, opts Options) (*Stats, error) {
	if m == nil {
		return nil, errors.New("pipeline: nil mapper")
	}
	if src == nil {
		return nil, errors.New("pipeline: nil source")
	}
	if emit == nil {
		return nil, errors.New("pipeline: nil emitter")
	}
	opts = opts.normalize()
	if opts.Workers != 1 {
		// Hardware-counter probes are single-threaded instruments.
		m = m.WithoutProbe()
	}
	rec := m.Options().Trace
	if rec != nil {
		rec.Grow(opts.Workers + 2)
	}
	// Observability handles. A nil registry yields nil handles whose methods
	// are no-ops, so the stage code below records unconditionally. The stage
	// timing itself is free: the pipeline already measures per-batch
	// ingest/map durations for Stats regardless of observability.
	// Single-writer stages use the same shard indices as their trace rows:
	// ingest = Workers, emit = Workers+1 (the registry clamps out-of-range
	// shards to 0, which stays correct — just shared — if it was sized
	// smaller).
	reg := m.Options().Obs
	// The first Workers shards are map workers: scrapes derive the claim
	// imbalance and steal-share gauges over exactly that population (the
	// ingest/emit shards below never claim batches).
	reg.SetWorkerShards(opts.Workers)
	ingestShard, emitShard := opts.Workers, opts.Workers+1
	mReads := reg.Counter(obs.MetricPipelineReads)
	mBatches := reg.Counter(obs.MetricPipelineBatches)
	mInFlight := reg.Gauge(obs.MetricPipelineInFlight)
	hIngest := reg.Histogram(obs.MetricStageIngest)
	hMap := reg.Histogram(obs.MetricStageMap)
	hEmit := reg.Histogram(obs.MetricStageEmit)
	hBatch := reg.Histogram(obs.MetricBatchLatency)
	mClaims := reg.Counter(obs.MetricSchedClaims)
	mSteals := reg.Counter(obs.MetricSchedSteals)
	// pprof label contexts, prebuilt once per run: stage goroutines label
	// themselves at batch boundaries (never per record) so a -profile
	// capture decomposes by stage and worker at zero cost to the hot path.
	labels := obs.NewProfLabels(obs.ClassBatch, opts.Workers)

	st := &Stats{Sched: sched.Stats{Processed: make([]int64, opts.Workers)}}
	cacheStats := make([]gbwt.CacheStats, opts.Workers)
	cq := newClaimQueue[*batch](opts.Scheduler, opts.Workers, opts.Depth)
	done := make(chan *batch, opts.Depth)
	abortCh := make(chan struct{})
	var failOnce sync.Once
	var firstErr error
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			close(abortCh)
			cq.abort()
		})
	}
	aborted := func() bool {
		select {
		case <-abortCh:
			return true
		default:
			return false
		}
	}

	start := time.Now()

	// Ingest: read bounded batches from the source; push blocks when the
	// in-flight window is full, which is what bounds memory.
	go func() {
		defer cq.close()
		labels.ApplyIngest()
		seq, base := 0, 0
		for {
			t0 := time.Now()
			recs, err := readBatch(src, opts.BatchSize)
			d := time.Since(t0)
			if rec != nil {
				rec.Record(ingestShard, trace.RegionIngest, t0, d)
			}
			hIngest.Observe(ingestShard, d)
			if err != nil && err != io.EOF {
				fail(fmt.Errorf("pipeline: ingest: %w", err))
				return
			}
			if len(recs) > 0 {
				b := &batch{
					seq:        seq,
					base:       base,
					recs:       recs,
					exts:       make([][]extend.Extension, len(recs)),
					ingested:   time.Now(),
					ingestSecs: d.Seconds(),
				}
				if !cq.push(b.seq, b) {
					return
				}
				mInFlight.Add(ingestShard, 1)
				seq++
				base += len(recs)
			}
			if err == io.EOF {
				return
			}
		}
	}()

	// Map: the persistent worker pool claims batches under the scheduling
	// policy and hands completed batches to emit.
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			labels.ApplyMap(worker)
			for {
				b, stolen, ok := cq.pop(worker)
				if !ok {
					return
				}
				mClaims.Inc(worker)
				if stolen {
					atomic.AddInt64(&st.Sched.Steals, 1)
					mSteals.Inc(worker)
				}
				t0 := time.Now()
				cacheStats[worker].Add(m.MapBatch(worker, b.recs, b.base, b.exts))
				// Batch boundary: tick the shared-cache epoch clock (no-op
				// unless the mapper runs the epoch discipline).
				m.TryPublishEpoch(worker)
				d := time.Since(t0)
				b.mapSecs = d.Seconds()
				if rec != nil {
					rec.Record(worker, trace.RegionMapBatch, t0, d)
				}
				hMap.Observe(worker, d)
				atomic.AddInt64(&st.Sched.Processed[worker], int64(len(b.recs)))
				select {
				case done <- b:
				case <-abortCh:
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// Emit (in the caller's goroutine): reorder completed batches back into
	// ingest order and write them out. Out-of-order completions wait in
	// `pending`, which the in-flight bound keeps small.
	// Emit runs on the caller's goroutine, so its label is cleared on the way
	// out rather than left to leak into whatever the caller does next.
	labels.ApplyEmit()
	defer labels.Clear()
	next := 0
	pending := make(map[int]*batch)
	for b := range done {
		pending[b.seq] = b
		for {
			nb, ready := pending[next]
			if !ready {
				break
			}
			delete(pending, next)
			next++
			st.Batches++
			st.Reads += len(nb.recs)
			st.MapLatency.Add(nb.mapSecs)
			st.IngestLatency.Add(nb.ingestSecs)
			mInFlight.Add(emitShard, -1)
			mBatches.Inc(emitShard)
			mReads.Add(emitShard, int64(len(nb.recs)))
			if aborted() {
				continue // drain without emitting
			}
			t0 := time.Now()
			err := emitBatch(emit, nb)
			d := time.Since(t0)
			if rec != nil {
				rec.Record(emitShard, trace.RegionEmit, t0, d)
			}
			hEmit.Observe(emitShard, d)
			if err != nil {
				fail(fmt.Errorf("pipeline: emit: %w", err))
				continue
			}
			lat := time.Since(nb.ingested)
			st.BatchLatency.Add(lat.Seconds())
			hBatch.Observe(emitShard, lat)
		}
	}
	st.Makespan = time.Since(start)
	for _, cs := range cacheStats {
		st.Cache.Add(cs)
	}
	if aborted() {
		return nil, firstErr
	}
	return st, nil
}

// RunToCSV streams src through m and writes the CSV output — byte-identical
// to batch-mode core.WriteCSV over the same workload — to w.
func RunToCSV(m *core.Mapper, src Source, w io.Writer, opts Options) (*Stats, error) {
	e, err := NewCSVEmitter(w)
	if err != nil {
		return nil, err
	}
	st, err := Run(m, src, e, opts)
	if err != nil {
		return nil, err
	}
	if err := e.Flush(); err != nil {
		return nil, err
	}
	return st, nil
}

// readBatch pulls up to n records; it returns io.EOF (possibly with a final
// short batch) at end of stream.
func readBatch(src Source, n int) ([]seeds.ReadSeeds, error) {
	out := make([]seeds.ReadSeeds, 0, n)
	for len(out) < n {
		r, err := src.Next()
		if err != nil {
			return out, err
		}
		out = append(out, *r)
	}
	return out, nil
}

func emitBatch(emit Emitter, b *batch) error {
	for j := range b.recs {
		if err := emit.Emit(&b.recs[j], b.exts[j]); err != nil {
			return err
		}
	}
	return nil
}
