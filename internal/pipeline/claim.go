package pipeline

import (
	"sync"

	"repro/internal/sched"
)

// claimQueue is the bounded hand-off between a producer (the streaming
// ingest stage, or Session.Submit) and the persistent worker pool. It holds
// at most depth in-flight items (the backpressure bound: a full queue blocks
// push, or fails tryPushAll), and the scheduling policy decides which queued
// item a worker claims — the streaming analogue of sched.RunBatches' claim
// disciplines:
//
//   - Dynamic: one shared FIFO, workers claim in arrival order.
//   - Static: item seq is pinned to worker seq mod W; no balancing.
//   - WorkStealing: pinned like Static, but an idle worker steals the
//     oldest item from another worker's backlog, round-robin.
type claimQueue[T any] struct {
	mu    sync.Mutex
	avail *sync.Cond // an item was queued, or the queue closed/aborted
	space *sync.Cond // an item was claimed, or the queue aborted

	kind    sched.Kind
	queues  [][]T // one FIFO for Dynamic, one per worker otherwise
	queued  int
	depth   int
	nextSeq int // tryPushAll's slot assignment counter
	closed  bool
	aborted bool
}

func newClaimQueue[T any](kind sched.Kind, workers, depth int) *claimQueue[T] {
	n := workers
	if kind == sched.Dynamic {
		n = 1
	}
	q := &claimQueue[T]{kind: kind, queues: make([][]T, n), depth: depth}
	q.avail = sync.NewCond(&q.mu)
	q.space = sync.NewCond(&q.mu)
	return q
}

// push blocks until there is room for v (whose producer-assigned sequence
// number pins it to a worker under the non-dynamic policies), returning
// false if the pipeline aborted while waiting.
func (q *claimQueue[T]) push(seq int, v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.queued >= q.depth && !q.aborted {
		q.space.Wait()
	}
	if q.aborted {
		return false
	}
	q.enqueue(seq, v)
	return true
}

// tryPushAll is the admission-control entry point: it enqueues every item
// or none, without blocking. It fails once the queue is closed (draining)
// or when the items would not all fit under the depth bound — the caller
// turns that into a queue-full rejection instead of queueing unboundedly.
// Sequence numbers are assigned internally, in admission order.
func (q *claimQueue[T]) tryPushAll(vs []T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.aborted || q.queued+len(vs) > q.depth {
		return false
	}
	for _, v := range vs {
		q.enqueue(q.nextSeq, v)
		q.nextSeq++
	}
	return true
}

// enqueue appends v to seq's slot (caller holds q.mu).
func (q *claimQueue[T]) enqueue(seq int, v T) {
	slot := 0
	if q.kind != sched.Dynamic {
		slot = seq % len(q.queues)
	}
	q.queues[slot] = append(q.queues[slot], v)
	q.queued++
	q.avail.Broadcast()
}

// pop blocks until worker w claims an item. stolen reports that the item
// came from another worker's backlog (WorkStealing only); ok is false once
// the queue is closed and drained, or aborted.
func (q *claimQueue[T]) pop(w int) (v T, stolen, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.aborted {
			var zero T
			return zero, false, false
		}
		own := 0
		if q.kind != sched.Dynamic {
			own = w
		}
		if len(q.queues[own]) > 0 {
			return q.take(own), false, true
		}
		if q.kind == sched.WorkStealing {
			for off := 1; off < len(q.queues); off++ {
				s := (w + off) % len(q.queues)
				if len(q.queues[s]) > 0 {
					return q.take(s), true, true
				}
			}
		}
		if q.closed && q.queued == 0 {
			var zero T
			return zero, false, false
		}
		q.avail.Wait()
	}
}

// take removes the oldest item from slot (caller holds q.mu).
func (q *claimQueue[T]) take(slot int) T {
	v := q.queues[slot][0]
	q.queues[slot] = q.queues[slot][1:]
	q.queued--
	q.space.Broadcast()
	if q.closed && q.queued == 0 {
		// Wake workers pinned to other (now permanently empty) slots.
		q.avail.Broadcast()
	}
	return v
}

// close marks the end of production; drained workers exit.
func (q *claimQueue[T]) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.avail.Broadcast()
}

// abort unblocks everyone; pending items are dropped.
func (q *claimQueue[T]) abort() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.aborted = true
	q.avail.Broadcast()
	q.space.Broadcast()
}
