package pipeline

import (
	"sync"

	"repro/internal/sched"
)

// claimQueue is the bounded hand-off between the ingest stage and the
// persistent worker pool. It holds at most depth in-flight batches (the
// backpressure bound: a full queue blocks ingest), and the scheduling policy
// decides which queued batch a worker claims — the streaming analogue of
// sched.RunBatches' claim disciplines:
//
//   - Dynamic: one shared FIFO, workers claim in arrival order.
//   - Static: batch seq is pinned to worker seq mod W; no balancing.
//   - WorkStealing: pinned like Static, but an idle worker steals the
//     oldest batch from another worker's backlog, round-robin.
type claimQueue struct {
	mu    sync.Mutex
	avail *sync.Cond // a batch was queued, or the queue closed/aborted
	space *sync.Cond // a batch was claimed, or the queue aborted

	kind    sched.Kind
	queues  [][]*batch // one FIFO for Dynamic, one per worker otherwise
	queued  int
	depth   int
	closed  bool
	aborted bool
}

func newClaimQueue(kind sched.Kind, workers, depth int) *claimQueue {
	n := workers
	if kind == sched.Dynamic {
		n = 1
	}
	q := &claimQueue{kind: kind, queues: make([][]*batch, n), depth: depth}
	q.avail = sync.NewCond(&q.mu)
	q.space = sync.NewCond(&q.mu)
	return q
}

// push blocks until there is room for b, returning false if the pipeline
// aborted while waiting.
func (q *claimQueue) push(b *batch) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.queued >= q.depth && !q.aborted {
		q.space.Wait()
	}
	if q.aborted {
		return false
	}
	slot := 0
	if q.kind != sched.Dynamic {
		slot = b.seq % len(q.queues)
	}
	q.queues[slot] = append(q.queues[slot], b)
	q.queued++
	q.avail.Broadcast()
	return true
}

// pop blocks until worker w claims a batch. stolen reports that the batch
// came from another worker's backlog (WorkStealing only); ok is false once
// the queue is closed and drained, or aborted.
func (q *claimQueue) pop(w int) (b *batch, stolen, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.aborted {
			return nil, false, false
		}
		own := 0
		if q.kind != sched.Dynamic {
			own = w
		}
		if len(q.queues[own]) > 0 {
			return q.take(own), false, true
		}
		if q.kind == sched.WorkStealing {
			for off := 1; off < len(q.queues); off++ {
				v := (w + off) % len(q.queues)
				if len(q.queues[v]) > 0 {
					return q.take(v), true, true
				}
			}
		}
		if q.closed && q.queued == 0 {
			return nil, false, false
		}
		q.avail.Wait()
	}
}

// take removes the oldest batch from slot (caller holds q.mu).
func (q *claimQueue) take(slot int) *batch {
	b := q.queues[slot][0]
	q.queues[slot] = q.queues[slot][1:]
	q.queued--
	q.space.Broadcast()
	if q.closed && q.queued == 0 {
		// Wake workers pinned to other (now permanently empty) slots.
		q.avail.Broadcast()
	}
	return b
}

// close marks the end of ingest; drained workers exit.
func (q *claimQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.avail.Broadcast()
}

// abort unblocks everyone; pending batches are dropped.
func (q *claimQueue) abort() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.aborted = true
	q.avail.Broadcast()
	q.space.Broadcast()
}
