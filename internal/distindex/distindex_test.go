package distindex

import (
	"math/rand"
	"testing"

	"repro/internal/dna"
	"repro/internal/vgraph"
)

// chainGraph builds A(len 4) -> B(len 3) -> C(len 5).
func chainGraph(t *testing.T) (*vgraph.Graph, []vgraph.NodeID) {
	t.Helper()
	g := &vgraph.Graph{}
	var ids []vgraph.NodeID
	for _, s := range []string{"ACGT", "GGG", "TTTTT"} {
		id, err := g.AddNode(dna.MustParse(s))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		if err := g.AddEdge(ids[i-1], ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	return g, ids
}

func TestMinDistanceSameNode(t *testing.T) {
	g, ids := chainGraph(t)
	ix := New(g)
	a := vgraph.Position{Node: ids[0], Off: 1}
	b := vgraph.Position{Node: ids[0], Off: 3}
	if d := ix.MinDistance(a, b, 100); d != 2 {
		t.Errorf("same-node distance = %d, want 2", d)
	}
	// Symmetric (b to a walks forward from a).
	if d := ix.MinDistance(b, a, 100); d != 2 {
		t.Errorf("reversed same-node distance = %d, want 2", d)
	}
	if d := ix.MinDistance(a, a, 100); d != 0 {
		t.Errorf("identity distance = %d, want 0", d)
	}
}

func TestMinDistanceAcrossChain(t *testing.T) {
	g, ids := chainGraph(t)
	ix := New(g)
	// a = A[1], b = C[2]: bases between them along ACGT GGG TTTTT:
	// from A off 1 to C off 2 = (4-1) + 3 + 2 = 8.
	a := vgraph.Position{Node: ids[0], Off: 1}
	b := vgraph.Position{Node: ids[2], Off: 2}
	if d := ix.MinDistance(a, b, 100); d != 8 {
		t.Errorf("chain distance = %d, want 8", d)
	}
	// Symmetric query.
	if d := ix.MinDistance(b, a, 100); d != 8 {
		t.Errorf("reversed chain distance = %d, want 8", d)
	}
}

func TestMinDistanceLimit(t *testing.T) {
	g, ids := chainGraph(t)
	ix := New(g)
	a := vgraph.Position{Node: ids[0], Off: 0}
	b := vgraph.Position{Node: ids[2], Off: 4}
	// True distance = 4 + 3 + 4 = 11.
	if d := ix.MinDistance(a, b, 11); d != 11 {
		t.Errorf("distance = %d, want 11", d)
	}
	if d := ix.MinDistance(a, b, 10); d != Unreachable {
		t.Errorf("over-limit distance = %d, want Unreachable", d)
	}
}

func TestMinDistanceUnreachable(t *testing.T) {
	g := &vgraph.Graph{}
	a, _ := g.AddNode(dna.MustParse("AAAA"))
	b, _ := g.AddNode(dna.MustParse("CCCC"))
	ix := New(g)
	pa := vgraph.Position{Node: a, Off: 0}
	pb := vgraph.Position{Node: b, Off: 0}
	if d := ix.MinDistance(pa, pb, 1000); d != Unreachable {
		t.Errorf("disconnected distance = %d, want Unreachable", d)
	}
}

func TestMinDistancePicksShorterBranch(t *testing.T) {
	// Diamond: S -> {long(10), short(2)} -> E.
	g := &vgraph.Graph{}
	s, _ := g.AddNode(dna.MustParse("AC"))
	long, _ := g.AddNode(dna.MustParse("GGGGGGGGGG"))
	short, _ := g.AddNode(dna.MustParse("TT"))
	e, _ := g.AddNode(dna.MustParse("CA"))
	for _, edge := range [][2]vgraph.NodeID{{s, long}, {s, short}, {long, e}, {short, e}} {
		if err := g.AddEdge(edge[0], edge[1]); err != nil {
			t.Fatal(err)
		}
	}
	ix := New(g)
	a := vgraph.Position{Node: s, Off: 1}
	b := vgraph.Position{Node: e, Off: 0}
	// Through short branch: (2-1) + 2 + 0 = 3.
	if d := ix.MinDistance(a, b, 100); d != 3 {
		t.Errorf("diamond distance = %d, want 3", d)
	}
}

func TestMemoDoesNotPoisonLargerLimits(t *testing.T) {
	g, ids := chainGraph(t)
	ix := New(g)
	a := vgraph.Position{Node: ids[0], Off: 0}
	b := vgraph.Position{Node: ids[2], Off: 4}
	if d := ix.MinDistance(a, b, 5); d != Unreachable {
		t.Fatalf("distance under tight limit = %d", d)
	}
	// A second query with a generous limit must succeed despite the earlier
	// failure.
	if d := ix.MinDistance(a, b, 100); d != 11 {
		t.Errorf("post-failure distance = %d, want 11", d)
	}
}

func TestMemoHitAccounting(t *testing.T) {
	// A two-source graph defeats the snarl decomposition, exercising the
	// Dijkstra fallback and its memo.
	g := &vgraph.Graph{}
	s1, _ := g.AddNode(dna.MustParse("AAAA"))
	s2, _ := g.AddNode(dna.MustParse("CC"))
	mid, _ := g.AddNode(dna.MustParse("GGG"))
	end, _ := g.AddNode(dna.MustParse("TT"))
	for _, e := range [][2]vgraph.NodeID{{s1, mid}, {s2, mid}, {mid, end}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ix := New(g)
	if ix.HasSnarlTree() {
		t.Fatal("two-source graph unexpectedly decomposed")
	}
	a := vgraph.Position{Node: s1, Off: 0}
	b := vgraph.Position{Node: end, Off: 0}
	if d := ix.MinDistance(a, b, 100); d != 7 {
		t.Fatalf("distance = %d, want 7", d)
	}
	ix.MinDistance(a, b, 100)
	q, h := ix.Stats()
	if q == 0 {
		t.Fatal("no queries recorded")
	}
	if h == 0 {
		t.Error("repeat query did not hit the memo")
	}
}

func TestSnarlTreeUsedOnChains(t *testing.T) {
	g, _ := chainGraph(t)
	if !New(g).HasSnarlTree() {
		t.Error("chain graph did not decompose")
	}
}

func TestBackboneDistanceOnPangenome(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := make(dna.Sequence, 2000)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	var vs []vgraph.Variant
	for pos := 100; pos < 1900; pos += 200 {
		vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.SNP, Alt: dna.Sequence{(ref[pos] + 1) & 3}})
	}
	p, err := vgraph.BuildPangenome(ref, vs, 32)
	if err != nil {
		t.Fatal(err)
	}
	ix := New(p.Graph)
	// Two positions on the reference haplotype: backbone distance equals the
	// exact graph distance.
	path, err := p.HaplotypePath(make([]int, p.NumSites()))
	if err != nil {
		t.Fatal(err)
	}
	a := vgraph.Position{Node: path[0], Off: 2}
	b := vgraph.Position{Node: path[6], Off: 1}
	exact := ix.MinDistance(a, b, 10000)
	if exact == Unreachable {
		t.Fatal("reference positions unreachable")
	}
	if est := ix.BackboneDistance(a, b); est != exact {
		t.Errorf("backbone estimate %d != exact %d on reference nodes", est, exact)
	}
}

func TestBackboneVsExactRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := make(dna.Sequence, 3000)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	var vs []vgraph.Variant
	for pos := 50; pos < 2900; pos += 100 {
		switch rng.Intn(3) {
		case 0:
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.SNP, Alt: dna.Sequence{(ref[pos] + 1) & 3}})
		case 1:
			ins := make(dna.Sequence, 1+rng.Intn(5))
			for i := range ins {
				ins[i] = dna.Base(rng.Intn(4))
			}
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.Insertion, Alt: ins})
		case 2:
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.Deletion, DelLen: 1 + rng.Intn(6)})
		}
	}
	p, err := vgraph.BuildPangenome(ref, vs, 24)
	if err != nil {
		t.Fatal(err)
	}
	ix := New(p.Graph)
	path, err := p.HaplotypePath(make([]int, p.NumSites()))
	if err != nil {
		t.Fatal(err)
	}
	// For *local* forward pairs on the reference path (the cluster-scale
	// distances the mapper actually asks for), the exact distance is within
	// a few bubbles' diameter of the backbone estimate. Long-range estimates
	// drift by the deletions skipped, which clustering never spans.
	const slack = 24
	for trial := 0; trial < 50; trial++ {
		i := rng.Intn(len(path) - 8)
		j := i + 1 + rng.Intn(6)
		a := vgraph.Position{Node: path[i], Off: int32(rng.Intn(p.SeqLen(path[i])))}
		b := vgraph.Position{Node: path[j], Off: int32(rng.Intn(p.SeqLen(path[j])))}
		exact := ix.MinDistance(a, b, 10000)
		if exact == Unreachable {
			t.Fatalf("trial %d: reference pair unreachable", trial)
		}
		est := ix.BackboneDistance(a, b)
		diff := est - exact
		if diff < 0 {
			diff = -diff
		}
		if diff > slack {
			t.Errorf("trial %d: |backbone %d - exact %d| > %d", trial, est, exact, slack)
		}
	}
}
