// Package distindex implements the distance index Giraffe's clustering
// stage consults: the minimum graph distance between two positions (Sirén et
// al., Science 2021, §II-B(c) of the miniGiraffe paper). Like Giraffe, the
// index is built over a snarl decomposition (package snarl) and answers
// chain-scale queries in O(1) via prefix sums; graphs outside the
// decomposable class fall back to a memoised bounded Dijkstra. A cheap
// backbone-coordinate estimate supports the clustering pre-filter.
package distindex

import (
	"container/heap"
	"sync"
	"sync/atomic"

	"repro/internal/snarl"
	"repro/internal/vgraph"
)

// Unreachable is returned when no forward walk within the limit connects the
// positions.
const Unreachable = -1

// Index answers minimum-distance queries over a fixed graph. When the graph
// decomposes into a snarl chain (package snarl) — true for every pangenome
// this reproduction builds — queries are answered exactly in O(1) via chain
// prefix sums, mirroring Giraffe's snarl-tree-based minimum distance index;
// otherwise a memoised bounded Dijkstra serves as fallback.
type Index struct {
	g *vgraph.Graph
	// tree is the snarl decomposition, nil when the graph is outside the
	// decomposable class.
	tree *snarl.Tree
	// memo caches exact node-to-node start distances for repeated queries;
	// bounded to keep memory predictable. Guarded by memoMu: the index is
	// shared by every mapping worker (and the streaming pipeline's pool).
	memoMu   sync.RWMutex
	memo     map[nodePair]int32
	memoCap  int
	queries  int64 // atomic
	memoHits int64 // atomic
}

type nodePair struct {
	from, to vgraph.NodeID
}

// defaultMemoCap bounds the memoisation table.
const defaultMemoCap = 1 << 20

// New builds a distance index over g, attempting the snarl decomposition
// first.
func New(g *vgraph.Graph) *Index {
	ix := &Index{g: g, memo: make(map[nodePair]int32), memoCap: defaultMemoCap}
	if tree, err := snarl.Decompose(g); err == nil {
		ix.tree = tree
	}
	return ix
}

// HasSnarlTree reports whether queries use the snarl decomposition.
func (ix *Index) HasSnarlTree() bool { return ix.tree != nil }

// Graph returns the indexed graph.
func (ix *Index) Graph() *vgraph.Graph { return ix.g }

// BackboneDistance returns the distance estimate |backbone(b)+b.Off -
// (backbone(a)+a.Off)|, the bubble-chain projection of both positions onto
// the linear reference. It is exact for positions on shared reference nodes
// and within one bubble's diameter otherwise.
func (ix *Index) BackboneDistance(a, b vgraph.Position) int {
	ca := int(ix.g.Backbone(a.Node)) + int(a.Off)
	cb := int(ix.g.Backbone(b.Node)) + int(b.Off)
	if cb >= ca {
		return cb - ca
	}
	return ca - cb
}

// MinDistance returns the minimum number of bases separating position a from
// position b along any forward walk (in either direction: a→b or b→a),
// or Unreachable if no walk of length ≤ limit exists. The distance counts
// the bases strictly between the two positions, so adjacent bases are at
// distance 1 and identical positions at distance 0.
func (ix *Index) MinDistance(a, b vgraph.Position, limit int) int {
	atomic.AddInt64(&ix.queries, 1)
	if ix.tree != nil {
		d := ix.tree.MinDistance(a, b)
		if d == snarl.Unreachable || d > limit {
			return Unreachable
		}
		return d
	}
	if d := ix.directed(a, b, limit); d != Unreachable {
		return d
	}
	return ix.directed(b, a, limit)
}

// directed computes the forward-walk distance from a to b, ≤ limit.
func (ix *Index) directed(a, b vgraph.Position, limit int) int {
	if a.Node == b.Node {
		if b.Off >= a.Off {
			return int(b.Off - a.Off)
		}
		return Unreachable // DAG: no walk revisits the node
	}
	// Distance from a to the start of b.Node, then add b.Off.
	tail := int32(ix.g.SeqLen(a.Node)) - a.Off // bases from a to the end of its node (exclusive of a)
	d := ix.nodeStartDistance(a.Node, b.Node, int32(limit)-b.Off-tail)
	if d == Unreachable {
		return Unreachable
	}
	total := int(tail) + d + int(b.Off)
	if total > limit {
		return Unreachable
	}
	return total
}

// nodeStartDistance returns the minimum number of bases between the end of
// `from` and the start of `to` (0 when `to` directly follows `from`),
// bounded by limit, via Dijkstra weighted by intermediate node lengths.
func (ix *Index) nodeStartDistance(from, to vgraph.NodeID, limit int32) int {
	key := nodePair{from, to}
	ix.memoMu.RLock() //vetgiraffe:ignore hotpath memo fast path: uncontended RLock is ~20ns, a Dijkstra re-run is microseconds
	d, ok := ix.memo[key]
	ix.memoMu.RUnlock()
	if ok {
		atomic.AddInt64(&ix.memoHits, 1)
		if d == Unreachable || d > limit {
			return Unreachable
		}
		return int(d)
	}
	if limit < 0 {
		return Unreachable
	}
	dist := ix.dijkstra(from, to, limit)
	// Only reachable distances are limit-independent facts; memoising an
	// Unreachable computed under a small limit would poison larger queries.
	if dist != Unreachable {
		ix.memoMu.Lock() //vetgiraffe:ignore hotpath memo insert happens at most once per node pair, after the Dijkstra slow path
		if len(ix.memo) < ix.memoCap {
			ix.memo[key] = int32(dist) //vetgiraffe:ignore hotpath capacity-capped memo growth is the point of the cache
		}
		ix.memoMu.Unlock()
	}
	return dist
}

// pqItem is a priority-queue entry: node reached with accumulated distance.
type pqItem struct {
	node vgraph.NodeID
	d    int32
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// dijkstra finds the min gap (in bases) between the end of `from` and the
// start of `to`, exploring forward edges only, pruned at limit.
func (ix *Index) dijkstra(from, to vgraph.NodeID, limit int32) int {
	best := make(map[vgraph.NodeID]int32) //vetgiraffe:ignore hotpath memo-miss slow path; the memo exists so this stays rare
	q := pq{}
	for _, s := range ix.g.Successors(from) {
		heap.Push(&q, pqItem{node: s, d: 0})
	}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if prev, ok := best[it.node]; ok && prev <= it.d {
			continue
		}
		best[it.node] = it.d //vetgiraffe:ignore hotpath memo-miss slow path; bounded by the limit-pruned frontier
		if it.node == to {
			return int(it.d)
		}
		nd := it.d + int32(ix.g.SeqLen(it.node))
		if nd > limit {
			continue
		}
		for _, s := range ix.g.Successors(it.node) {
			if prev, ok := best[s]; !ok || nd < prev {
				heap.Push(&q, pqItem{node: s, d: nd})
			}
		}
	}
	return Unreachable
}

// Stats reports query and memo-hit counts (for instrumentation).
func (ix *Index) Stats() (queries, memoHits int64) {
	return atomic.LoadInt64(&ix.queries), atomic.LoadInt64(&ix.memoHits)
}
