// Package workload generates the synthetic input sets that stand in for the
// paper's four datasets (Table III): A-human (single-end, few reads, large
// graph), B-yeast (single-end, many reads, small graph), C-HPRC and D-HPRC
// (paired-end, medium and very large read counts). The real datasets are
// 0.6–13 GB of reads against up to 18 GB pangenomes; this reproduction
// scales them down deterministically while preserving their *relative*
// shapes — read-count ratios, single- versus paired-end workflows, graph
// size ordering, and the memory footprints that make input set D exceed the
// 256 GB machines (§VII-A). DESIGN.md documents the substitution.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/distindex"
	"repro/internal/dna"
	"repro/internal/gbwt"
	"repro/internal/gbz"
	"repro/internal/minimizer"
	"repro/internal/seeds"
	"repro/internal/vgraph"
)

// Workflow distinguishes single- from paired-end read sets.
type Workflow int

// The two workflows of Table III.
const (
	Single Workflow = iota
	Paired
)

func (w Workflow) String() string {
	if w == Paired {
		return "paired"
	}
	return "single"
}

// Spec describes one input set.
type Spec struct {
	Name     string
	Workflow Workflow
	// Reads is the total number of reads at Scale 1 (paired counts both
	// ends).
	Reads   int
	ReadLen int
	// RefLen is the linear reference length the pangenome is built from.
	RefLen int
	// VariantEvery is the average base spacing between variant sites.
	VariantEvery int
	// Haplotypes is the number of haplotype paths stored in the GBWT.
	Haplotypes int
	// ErrorRate is the per-base substitution error rate of the sequencer.
	ErrorRate float64
	// FragmentLen is the paired-end fragment length (0 for single-end).
	FragmentLen int
	// Seed makes generation deterministic.
	Seed int64
	// ZipfS, when > 0, skews read start positions along each haplotype with
	// a zipf law of exponent s (P(start=p) ∝ (1+p)^-s): the hot-prefix
	// access pattern of real pangenomes, where a few node records absorb
	// most GBWT lookups. 0 (the default) keeps the uniform sampler on a
	// byte-identical code path. Values in (0,1] clamp to 1.01 (rand.Zipf
	// requires s > 1, as in cmd/loadgen's client mix).
	ZipfS float64
	// MemGB is the modelled memory requirement on the paper's full-size
	// data, used by the machine models' OOM check.
	MemGB float64
	// PaperReadsM and PaperRefGB record the full-size dataset shape from
	// Table III for reporting.
	PaperReadsM float64
	PaperRefGB  float64
}

// The four input sets, scaled so the complete experiment suite runs on a
// laptop in minutes. Read-count ratios follow Table III (1 : 24.5 : 8 :
// 71.1 M).
func AHuman() Spec {
	return Spec{
		Name: "A-human", Workflow: Single,
		Reads: 1500, ReadLen: 148,
		RefLen: 150000, VariantEvery: 120, Haplotypes: 16,
		ErrorRate: 0.002, Seed: 1001,
		MemGB: 32, PaperReadsM: 1.0, PaperRefGB: 18.0,
	}
}

func BYeast() Spec {
	return Spec{
		Name: "B-yeast", Workflow: Single,
		Reads: 36750, ReadLen: 100,
		RefLen: 40000, VariantEvery: 90, Haplotypes: 8,
		ErrorRate: 0.003, Seed: 1002,
		MemGB: 8, PaperReadsM: 24.5, PaperRefGB: 0.1,
	}
}

func CHPRC() Spec {
	return Spec{
		Name: "C-HPRC", Workflow: Paired,
		Reads: 12000, ReadLen: 148,
		RefLen: 120000, VariantEvery: 110, Haplotypes: 24,
		ErrorRate: 0.002, FragmentLen: 420, Seed: 1003,
		MemGB: 48, PaperReadsM: 8.0, PaperRefGB: 3.1,
	}
}

func DHPRC() Spec {
	return Spec{
		Name: "D-HPRC", Workflow: Paired,
		Reads: 106650, ReadLen: 148,
		RefLen: 140000, VariantEvery: 110, Haplotypes: 24,
		ErrorRate: 0.002, FragmentLen: 420, Seed: 1004,
		MemGB: 300, PaperReadsM: 71.1, PaperRefGB: 3.4,
	}
}

// AllSpecs returns the four input sets in Table III order.
func AllSpecs() []Spec { return []Spec{AHuman(), BYeast(), CHPRC(), DHPRC()} }

// ByName finds an input set by name (case-sensitive, as printed).
func ByName(name string) (Spec, error) {
	for _, s := range AllSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown input set %q", name)
}

// Scaled returns a copy with the read count (and nothing else) multiplied by
// scale — the knob the test suite and the 10% autotuning subsample use.
func (s Spec) Scaled(scale float64) Spec {
	if scale <= 0 {
		scale = 1
	}
	s.Reads = int(float64(s.Reads) * scale)
	if s.Reads < 4 {
		s.Reads = 4
	}
	if s.Workflow == Paired && s.Reads%2 == 1 {
		s.Reads++
	}
	return s
}

// Bundle is a fully generated input set: the pangenome, its indexes, the
// haplotypes, and the simulated reads.
type Bundle struct {
	Spec      Spec
	Pangenome *vgraph.Pangenome
	Index     *gbwt.GBWT
	MinIx     *minimizer.Index
	Dist      *distindex.Index
	Haps      [][]vgraph.NodeID
	HapSeqs   []dna.Sequence
	Reads     []dna.Read
}

// MinimizerConfig is the k/w scheme used across the reproduction.
var MinimizerConfig = minimizer.Config{K: 15, W: 8}

// Generate builds the bundle for the spec. Deterministic in Spec.Seed.
func Generate(spec Spec) (*Bundle, error) {
	if spec.RefLen < 1000 || spec.Reads < 1 || spec.ReadLen < MinimizerConfig.K+MinimizerConfig.W {
		return nil, fmt.Errorf("workload: degenerate spec %+v", spec)
	}
	if spec.Workflow == Paired && spec.FragmentLen < 2*spec.ReadLen {
		return nil, errors.New("workload: paired fragment shorter than two reads")
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Reference and variants.
	ref := make(dna.Sequence, spec.RefLen)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	var vs []vgraph.Variant
	for pos := spec.VariantEvery; pos < spec.RefLen-spec.VariantEvery; {
		switch rng.Intn(4) {
		case 0, 1: // SNPs dominate real variant sets
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.SNP, Alt: dna.Sequence{(ref[pos] + 1 + dna.Base(rng.Intn(3))) & 3}})
		case 2:
			ins := make(dna.Sequence, 1+rng.Intn(8))
			for i := range ins {
				ins[i] = dna.Base(rng.Intn(4))
			}
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.Insertion, Alt: ins})
		case 3:
			vs = append(vs, vgraph.Variant{Pos: pos, Kind: vgraph.Deletion, DelLen: 1 + rng.Intn(10)})
		}
		pos += spec.VariantEvery/2 + rng.Intn(spec.VariantEvery)
	}
	pg, err := vgraph.BuildPangenome(ref, vs, 24)
	if err != nil {
		return nil, fmt.Errorf("workload: building pangenome: %w", err)
	}

	b := &Bundle{Spec: spec, Pangenome: pg}
	// Haplotypes: allele vectors with population-like allele frequencies
	// (each site has a random alt-allele frequency).
	altFreq := make([]float64, pg.NumSites())
	for i := range altFreq {
		altFreq[i] = rng.Float64() * 0.6
	}
	for h := 0; h < spec.Haplotypes; h++ {
		alleles := make([]int, pg.NumSites())
		for i := range alleles {
			if rng.Float64() < altFreq[i] {
				alleles[i] = 1
			}
		}
		path, err := pg.HaplotypePath(alleles)
		if err != nil {
			return nil, err
		}
		seq, err := pg.HaplotypeSeq(alleles)
		if err != nil {
			return nil, err
		}
		if _, err := pg.AddPath(path); err != nil {
			return nil, err
		}
		b.Haps = append(b.Haps, path)
		b.HapSeqs = append(b.HapSeqs, seq)
	}
	b.Index, err = gbwt.New(b.Haps)
	if err != nil {
		return nil, fmt.Errorf("workload: building GBWT: %w", err)
	}
	b.MinIx, err = minimizer.Build(pg.Graph, b.Haps, MinimizerConfig)
	if err != nil {
		return nil, fmt.Errorf("workload: building minimizer index: %w", err)
	}
	b.Dist = distindex.New(pg.Graph)

	// Reads.
	if spec.Workflow == Single {
		for i := 0; i < spec.Reads; i++ {
			b.Reads = append(b.Reads, b.sampleRead(rng, fmt.Sprintf("%s.%d", spec.Name, i), -1, 0, spec.ReadLen, -1))
		}
	} else {
		frags := spec.Reads / 2
		for f := 0; f < frags; f++ {
			hap := rng.Intn(len(b.HapSeqs))
			maxStart := len(b.HapSeqs[hap]) - spec.FragmentLen
			if maxStart < 1 {
				return nil, errors.New("workload: haplotype shorter than fragment")
			}
			start := b.sampleStart(rng, maxStart)
			r1 := b.makeRead(rng, fmt.Sprintf("%s.%d/1", spec.Name, f), hap, start, spec.ReadLen, false, f, 0)
			// Second end: sequenced from the other side of the fragment.
			r2start := start + spec.FragmentLen - spec.ReadLen
			r2 := b.makeRead(rng, fmt.Sprintf("%s.%d/2", spec.Name, f), hap, r2start, spec.ReadLen, true, f, 1)
			b.Reads = append(b.Reads, r1, r2)
		}
	}
	return b, nil
}

// sampleRead draws a single-end read from a random haplotype and strand.
func (b *Bundle) sampleRead(rng *rand.Rand, name string, frag, end, readLen, _ int) dna.Read {
	hap := rng.Intn(len(b.HapSeqs))
	maxStart := len(b.HapSeqs[hap]) - readLen
	start := b.sampleStart(rng, maxStart)
	rev := rng.Intn(2) == 1
	return b.makeRead(rng, name, hap, start, readLen, rev, frag, end)
}

// sampleStart draws a read (or fragment) start position in [0, maxStart).
// With ZipfS unset this is exactly the historical uniform draw — one
// rng.Intn call, so ZipfS == 0 workloads stay byte-identical to those
// generated before the knob existed. With ZipfS > 0 the draw is zipf over
// positions: low coordinates dominate, concentrating seed node accesses on
// the haplotype prefix the way hot regions dominate real pangenomes.
func (b *Bundle) sampleStart(rng *rand.Rand, maxStart int) int {
	if b.Spec.ZipfS <= 0 {
		return rng.Intn(maxStart)
	}
	s := b.Spec.ZipfS
	if s <= 1 {
		s = 1.01 // rand.Zipf requires s > 1
	}
	return int(rand.NewZipf(rng, s, 1, uint64(maxStart-1)).Uint64())
}

// makeRead cuts a read from haplotype hap at start, optionally
// reverse-complements it, and applies sequencing errors.
func (b *Bundle) makeRead(rng *rand.Rand, name string, hap, start, readLen int, rev bool, frag, end int) dna.Read {
	seq := b.HapSeqs[hap][start : start+readLen].Clone()
	if rev {
		seq = seq.RevComp()
	}
	for i := range seq {
		if rng.Float64() < b.Spec.ErrorRate {
			seq[i] = (seq[i] + 1 + dna.Base(rng.Intn(3))) & 3
		}
	}
	return dna.Read{Name: name, Seq: seq, Fragment: frag, End: end}
}

// CaptureSeeds runs the preprocessing (minimizer lookup + seed extraction)
// for every read — the step Giraffe performs before the critical functions,
// whose outputs the paper captures as the proxy's input (§V).
func (b *Bundle) CaptureSeeds() ([]seeds.ReadSeeds, error) {
	out := make([]seeds.ReadSeeds, len(b.Reads))
	for i := range b.Reads {
		ss, err := seeds.Extract(b.MinIx, &b.Reads[i])
		if err != nil {
			return nil, fmt.Errorf("workload: extracting seeds for read %d: %w", i, err)
		}
		out[i] = seeds.ReadSeeds{Read: b.Reads[i], Seeds: ss}
	}
	return out, nil
}

// GBZ packages the pangenome and GBWT as a container file value.
func (b *Bundle) GBZ() *gbz.File {
	return &gbz.File{Graph: b.Pangenome.Graph, Index: b.Index}
}

// WorkingSetMB estimates the mapper's hot working set: graph sequences +
// compressed GBWT + the decompressed-record cache at the given capacity per
// worker. Used by the machine models' cache factor.
func (b *Bundle) WorkingSetMB(cacheCapacity, workers int) float64 {
	graphBytes := b.Pangenome.TotalSeqLen()
	gbwtBytes := b.Index.CompressedSize()
	// A decompressed record costs roughly 128 bytes hot (edges, ranks, and
	// hash-table slot); each worker holds two caches (forward and reverse
	// orientation of the bidirectional index).
	cacheBytes := cacheCapacity * 128 * 2 * workers
	return float64(graphBytes+gbwtBytes+cacheBytes) / (1 << 20)
}

// Subsample returns a bundle view containing only the first fraction of
// reads — the paper's 10% autotuning subsample (§VII-B). Indexes and graph
// are shared with the original.
func (b *Bundle) Subsample(fraction float64) *Bundle {
	if fraction <= 0 || fraction >= 1 {
		return b
	}
	n := int(float64(len(b.Reads)) * fraction)
	if n < 1 {
		n = 1
	}
	clone := *b
	clone.Reads = b.Reads[:n]
	return &clone
}
