package workload

import (
	"reflect"
	"testing"

	"repro/internal/dna"
)

func TestAllSpecsShapes(t *testing.T) {
	specs := AllSpecs()
	if len(specs) != 4 {
		t.Fatalf("%d specs, want 4", len(specs))
	}
	// Table III read-count ordering: A < C < B < D.
	a, b, c, d := specs[0], specs[1], specs[2], specs[3]
	if !(a.Reads < c.Reads && c.Reads < b.Reads && b.Reads < d.Reads) {
		t.Errorf("read ordering wrong: %d %d %d %d", a.Reads, b.Reads, c.Reads, d.Reads)
	}
	if a.Workflow != Single || b.Workflow != Single {
		t.Error("A and B must be single-end")
	}
	if c.Workflow != Paired || d.Workflow != Paired {
		t.Error("C and D must be paired-end")
	}
	// D must exceed the 256 GB machines.
	if d.MemGB <= 256 {
		t.Errorf("D-HPRC MemGB = %f, must exceed 256", d.MemGB)
	}
	// Read ratios follow Table III within 2x slop.
	ratio := float64(b.Reads) / float64(a.Reads)
	if ratio < 12 || ratio > 50 {
		t.Errorf("B/A read ratio = %f, Table III says 24.5", ratio)
	}
}

func TestByName(t *testing.T) {
	for _, s := range AllSpecs() {
		got, err := ByName(s.Name)
		if err != nil || got.Name != s.Name {
			t.Errorf("ByName(%q) failed: %v", s.Name, err)
		}
	}
	if _, err := ByName("E-nothing"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestScaled(t *testing.T) {
	s := DHPRC().Scaled(0.1)
	// Paired workflows round up to an even count.
	if want := DHPRC().Reads / 10; s.Reads != want && s.Reads != want+1 {
		t.Errorf("scaled reads = %d, want ~%d", s.Reads, want)
	}
	// Paired stays even.
	if s.Workflow == Paired && s.Reads%2 != 0 {
		t.Error("scaled paired read count odd")
	}
	if AHuman().Scaled(0).Reads != AHuman().Reads {
		t.Error("scale 0 should be identity")
	}
	if tiny := AHuman().Scaled(0.0001); tiny.Reads < 4 {
		t.Errorf("scaled to %d reads, want floor of 4", tiny.Reads)
	}
}

func TestGenerateSingleEnd(t *testing.T) {
	spec := AHuman().Scaled(0.05)
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Reads) != spec.Reads {
		t.Fatalf("%d reads, want %d", len(b.Reads), spec.Reads)
	}
	if len(b.Haps) != spec.Haplotypes {
		t.Fatalf("%d haplotypes, want %d", len(b.Haps), spec.Haplotypes)
	}
	for i, r := range b.Reads {
		if len(r.Seq) != spec.ReadLen {
			t.Fatalf("read %d length %d, want %d", i, len(r.Seq), spec.ReadLen)
		}
		if r.Paired() {
			t.Fatalf("single-end read %d claims pairing", i)
		}
	}
	if err := b.Pangenome.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	if b.Index.NumPaths() != spec.Haplotypes {
		t.Errorf("GBWT has %d paths", b.Index.NumPaths())
	}
}

func TestGeneratePairedEnd(t *testing.T) {
	spec := CHPRC().Scaled(0.05)
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Reads)%2 != 0 {
		t.Fatal("odd read count for paired workflow")
	}
	for i := 0; i < len(b.Reads); i += 2 {
		r1, r2 := b.Reads[i], b.Reads[i+1]
		if !r1.Paired() || !r2.Paired() {
			t.Fatalf("fragment %d reads not paired", i/2)
		}
		if r1.Fragment != r2.Fragment {
			t.Fatalf("fragment ids differ: %d vs %d", r1.Fragment, r2.Fragment)
		}
		if r1.End != 0 || r2.End != 1 {
			t.Fatalf("fragment %d ends: %d,%d", i/2, r1.End, r2.End)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := BYeast().Scaled(0.01)
	b1, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Reads) != len(b2.Reads) {
		t.Fatal("read counts differ across generations")
	}
	for i := range b1.Reads {
		if !b1.Reads[i].Seq.Equal(b2.Reads[i].Seq) {
			t.Fatalf("read %d differs across generations", i)
		}
	}
	if !reflect.DeepEqual(b1.Haps, b2.Haps) {
		t.Error("haplotypes differ across generations")
	}
}

func TestGenerateRejectsDegenerate(t *testing.T) {
	bad := AHuman()
	bad.RefLen = 10
	if _, err := Generate(bad); err == nil {
		t.Error("tiny reference accepted")
	}
	badPair := CHPRC()
	badPair.FragmentLen = 100
	if _, err := Generate(badPair); err == nil {
		t.Error("fragment < 2 reads accepted")
	}
}

func TestCaptureSeeds(t *testing.T) {
	b, err := Generate(AHuman().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := b.CaptureSeeds()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(b.Reads) {
		t.Fatalf("%d records, want %d", len(recs), len(b.Reads))
	}
	withSeeds := 0
	for _, r := range recs {
		if len(r.Seeds) > 0 {
			withSeeds++
		}
	}
	// Nearly every read is sampled from an indexed haplotype, so nearly all
	// must have seeds.
	if frac := float64(withSeeds) / float64(len(recs)); frac < 0.95 {
		t.Errorf("only %.0f%% of reads have seeds", frac*100)
	}
}

func TestReadsMapBackToSource(t *testing.T) {
	// Error-free reads must contain long exact matches to some haplotype.
	spec := AHuman().Scaled(0.02)
	spec.ErrorRate = 0
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	find := func(hay dna.Sequence, needle dna.Sequence) bool {
		for i := 0; i+len(needle) <= len(hay); i++ {
			ok := true
			for j := range needle {
				if hay[i+j] != needle[j] {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	for i, r := range b.Reads {
		found := false
		for _, hs := range b.HapSeqs {
			if find(hs, r.Seq) || find(hs, r.Seq.RevComp()) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("read %d not found in any haplotype", i)
		}
	}
}

func TestGBZPackaging(t *testing.T) {
	b, err := Generate(BYeast().Scaled(0.01))
	if err != nil {
		t.Fatal(err)
	}
	f := b.GBZ()
	if f.Graph == nil || f.Index == nil {
		t.Fatal("incomplete GBZ file value")
	}
	if f.Graph.NumPaths() != b.Spec.Haplotypes {
		t.Errorf("embedded paths = %d", f.Graph.NumPaths())
	}
}

func TestSubsample(t *testing.T) {
	b, err := Generate(BYeast().Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	sub := b.Subsample(0.1)
	want := len(b.Reads) / 10
	if len(sub.Reads) != want {
		t.Errorf("subsample has %d reads, want %d", len(sub.Reads), want)
	}
	if sub.Pangenome != b.Pangenome {
		t.Error("subsample copied the pangenome")
	}
	if same := b.Subsample(0); len(same.Reads) != len(b.Reads) {
		t.Error("fraction 0 should return everything")
	}
}

func TestWorkingSetGrowsWithCapacity(t *testing.T) {
	b, err := Generate(AHuman().Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	small := b.WorkingSetMB(256, 4)
	big := b.WorkingSetMB(16384, 4)
	if big <= small {
		t.Errorf("working set did not grow with capacity: %f vs %f", small, big)
	}
}
