package workload

import (
	"crypto/sha256"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/fastq"
	"repro/internal/seeds"
)

// Reference SHA-256 of the B-yeast (scale 0.01) FASTQ and captured-seeds
// outputs as generated before the ZipfS knob existed. ZipfS == 0 must keep
// the uniform sampler on the identical code path — same rng draw sequence,
// same bytes — so adding the knob can never perturb existing workloads,
// baselines, or the differential harness's fixtures.
const (
	uniformFASTQSHA = "092be2f24b8e8f846873e0f70974a5fe3bd690150720b22e01f838fe2b8bcf3d"
	uniformSeedsSHA = "0a521364d4505c6e64da142af77d9bb8e96949e6982138b3ec92404f87c154a8"
)

func TestZipfZeroByteIdenticalToUniform(t *testing.T) {
	spec := BYeast().Scaled(0.01)
	spec.ZipfS = 0
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fq := filepath.Join(dir, "r.fq")
	if err := fastq.WriteFile(fq, b.Reads); err != nil {
		t.Fatal(err)
	}
	recs, err := b.CaptureSeeds()
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "r.bin")
	if err := seeds.WriteFile(bin, recs); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]string{fq: uniformFASTQSHA, bin: uniformSeedsSHA} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%x", sha256.Sum256(data)); got != want {
			t.Errorf("%s: sha256 %s, want %s (ZipfS=0 output drifted from the historical uniform bytes)", filepath.Base(path), got, want)
		}
	}
}

// TestSampleStartZipfDistribution checks the sampler against the requested
// law directly: with exponent s, P(start = k) ∝ (1+k)^-s over [0, maxStart).
// The seed is fixed, so the empirical counts are deterministic and the
// tolerances can be tight without flaking.
func TestSampleStartZipfDistribution(t *testing.T) {
	const (
		maxStart = 1000
		draws    = 300000
		s        = 1.4
	)
	b := &Bundle{Spec: Spec{ZipfS: s}}
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, maxStart)
	for i := 0; i < draws; i++ {
		k := b.sampleStart(rng, maxStart)
		if k < 0 || k >= maxStart {
			t.Fatalf("draw %d out of range [0,%d)", k, maxStart)
		}
		counts[k]++
	}

	// Exact normalizer of the target pmf.
	var z float64
	for k := 0; k < maxStart; k++ {
		z += math.Pow(float64(1+k), -s)
	}
	// Head mass points: within 5% relative error of the target pmf.
	for k := 0; k < 5; k++ {
		want := float64(draws) * math.Pow(float64(1+k), -s) / z
		got := float64(counts[k])
		if relErr := math.Abs(got-want) / want; relErr > 0.05 {
			t.Errorf("P(%d): got %.0f draws, want %.0f (rel err %.3f > 0.05)", k, got, want, relErr)
		}
	}
	// Least-squares slope of log(count) vs log(1+k) over the first 50
	// positions must recover the exponent: the "skew within tolerance"
	// check of the knob's contract.
	var sx, sy, sxx, sxy float64
	n := 0
	for k := 0; k < 50; k++ {
		if counts[k] == 0 {
			continue
		}
		x := math.Log(float64(1 + k))
		y := math.Log(float64(counts[k]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	slope := (float64(n)*sxy - sx*sy) / (float64(n)*sxx - sx*sx)
	if math.Abs(slope+s) > 0.1 {
		t.Errorf("rank-frequency slope %.3f, want %.3f ± 0.1", slope, -s)
	}
}

// TestSampleStartUniformDistribution: the ZipfS == 0 sampler is the plain
// uniform draw (flat across deciles).
func TestSampleStartUniformDistribution(t *testing.T) {
	const (
		maxStart = 1000
		draws    = 100000
	)
	b := &Bundle{Spec: Spec{ZipfS: 0}}
	rng := rand.New(rand.NewSource(7))
	var deciles [10]int
	for i := 0; i < draws; i++ {
		deciles[b.sampleStart(rng, maxStart)*10/maxStart]++
	}
	for d, c := range deciles {
		if math.Abs(float64(c)-draws/10) > draws/10*0.05 {
			t.Errorf("decile %d: %d draws, want ~%d ± 5%%", d, c, draws/10)
		}
	}
}

// hotNodeShare generates the spec, captures seeds, and returns the share of
// all seed node accesses absorbed by the hottest 32 nodes — a fixed-size
// hot set, the quantity an epoch cache of that capacity could serve. (A
// relative cut like "top 10% of touched nodes" is not monotone in s: steep
// skew shrinks the touched set itself.)
func hotNodeShare(t *testing.T, zipfS float64) float64 {
	t.Helper()
	spec := BYeast().Scaled(0.02)
	spec.ZipfS = zipfS
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := b.CaptureSeeds()
	if err != nil {
		t.Fatal(err)
	}
	freq := make(map[uint32]int)
	total := 0
	for i := range recs {
		for _, sd := range recs[i].Seeds {
			freq[uint32(sd.Pos.Node)]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("workload produced no seeds")
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := 32
	if top > len(counts) {
		top = len(counts)
	}
	hot := 0
	for _, c := range counts[:top] {
		hot += c
	}
	return float64(hot) / float64(total)
}

// TestZipfSeedNodeSkew ties the knob to its purpose: the generated *seed
// node accesses* (what the GBWT cache actually sees) concentrate with s,
// strictly beyond the uniform baseline and monotonically in s.
func TestZipfSeedNodeSkew(t *testing.T) {
	uniform := hotNodeShare(t, 0)
	mild := hotNodeShare(t, 1.4)
	steep := hotNodeShare(t, 2.5)
	t.Logf("top-32 node-access share: uniform %.3f, zipf1.4 %.3f, zipf2.5 %.3f", uniform, mild, steep)
	if mild < uniform+0.05 {
		t.Errorf("zipf 1.4 top-32 share %.3f not clearly above uniform %.3f", mild, uniform)
	}
	if steep <= mild {
		t.Errorf("skew not monotone in s: zipf2.5 %.3f <= zipf1.4 %.3f", steep, mild)
	}
}
