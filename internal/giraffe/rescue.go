package giraffe

import (
	"repro/internal/cluster"
	"repro/internal/dna"
	"repro/internal/extend"
	"repro/internal/gbwt"
	"repro/internal/seeds"
)

// Paired-end rescue, a Giraffe feature of the paired workflow (§II-B: reads
// "can be single or paired-ended"): when one end of a fragment maps and the
// other does not, the mapped end's position plus the fragment-length model
// predicts where the unmapped mate should lie, and the mate is re-extended
// from only the seeds falling inside that window, with a relaxed mismatch
// budget. Rescue refines alignments only; the raw kernel extensions (the
// §VI-a validation data) are never modified.

// RescueParams tunes the pair-rescue pass.
type RescueParams struct {
	// FragmentLen is the library's expected fragment length.
	FragmentLen int
	// Window is the tolerated deviation (bases) around the predicted mate
	// position; ≤0 means FragmentLen.
	Window int
	// ExtraMismatches relaxes the extension budget during rescue.
	ExtraMismatches int
}

func (p RescueParams) normalize() RescueParams {
	if p.Window <= 0 {
		p.Window = p.FragmentLen
	}
	if p.ExtraMismatches == 0 {
		p.ExtraMismatches = 2
	}
	return p
}

// PairStats summarises a rescue pass.
type PairStats struct {
	Pairs      int // fragments with both ends present
	BothMapped int // fragments already fully mapped
	Attempted  int // rescues attempted (exactly one end mapped)
	Rescued    int // mates recovered
}

// RescuePairs runs the rescue pass over a completed mapping result. reads
// must be the slice Map was called with; alignments are updated in place for
// rescued mates.
func RescuePairs(ix *Indexes, reads []dna.Read, res *Result, p RescueParams, opts Options) (PairStats, error) {
	p = p.normalize()
	opts = opts.normalize()
	var stats PairStats
	if p.FragmentLen <= 0 {
		return stats, nil
	}
	// Pair up fragment ends by fragment id.
	type pair struct{ first, second int }
	frags := make(map[int]*pair)
	for i := range reads {
		r := &reads[i]
		if !r.Paired() {
			continue
		}
		pr, ok := frags[r.Fragment]
		if !ok {
			pr = &pair{first: -1, second: -1}
			frags[r.Fragment] = pr
		}
		if r.End == 0 {
			pr.first = i
		} else {
			pr.second = i
		}
	}
	reader := ix.Bi.NewBiReader(opts.CacheCapacity)
	for _, pr := range frags {
		if pr.first < 0 || pr.second < 0 {
			continue
		}
		stats.Pairs++
		m1, m2 := res.Alignments[pr.first].Mapped, res.Alignments[pr.second].Mapped
		switch {
		case m1 && m2:
			stats.BothMapped++
			continue
		case !m1 && !m2:
			continue // nothing to anchor a rescue on
		}
		stats.Attempted++
		anchorIdx, loseIdx := pr.first, pr.second
		if m2 {
			anchorIdx, loseIdx = pr.second, pr.first
		}
		if rescueOne(ix, reader, reads, res, anchorIdx, loseIdx, p, opts) {
			stats.Rescued++
		}
	}
	return stats, nil
}

// rescueOne attempts to place reads[loseIdx] near the mate's alignment.
func rescueOne(ix *Indexes, reader gbwt.BiReader, reads []dna.Read, res *Result, anchorIdx, loseIdx int, p RescueParams, opts Options) bool {
	anchor := res.Alignments[anchorIdx].Best
	g := ix.File.Graph
	anchorCoord := int(g.Backbone(anchor.StartPos.Node)) + int(anchor.StartPos.Off)
	// The mate lies on the opposite strand, roughly FragmentLen away in the
	// direction the anchor reads.
	var predicted int
	if anchor.Rev {
		predicted = anchorCoord - p.FragmentLen
	} else {
		predicted = anchorCoord + p.FragmentLen
	}
	read := &reads[loseIdx]
	ss, err := seeds.Extract(ix.MinIx, read)
	if err != nil {
		return false
	}
	// Keep only opposite-strand seeds inside the window.
	var windowed []seeds.Seed
	for _, s := range ss {
		if s.Rev == anchor.Rev {
			continue
		}
		coord := int(g.Backbone(s.Pos.Node)) + int(s.Pos.Off)
		if coord >= predicted-p.Window && coord <= predicted+p.Window {
			windowed = append(windowed, s)
		}
	}
	if len(windowed) == 0 {
		return false
	}
	cls := cluster.ClusterSeeds(ix.Dist, windowed, opts.Cluster, nil, loseIdx)
	params := opts.Extend
	if params.MaxMismatches == 0 {
		params = extend.DefaultParams()
	}
	params.MaxMismatches += p.ExtraMismatches
	env := &extend.Env{Graph: g, Bi: reader}
	exts := extend.ProcessUntilThresholdC(env, read, windowed, cls, params, loseIdx)
	if len(exts) == 0 {
		return false
	}
	// Rescue uses a softer floor than the primary pass: the pair evidence
	// substitutes for alignment confidence.
	best := exts[0]
	floor := int32(float64(len(read.Seq)) * minMappedScoreFraction * 0.8)
	if best.Score < floor {
		return false
	}
	al := &res.Alignments[loseIdx]
	al.Mapped = true
	al.Best = best
	al.MappingQuality = 1 // rescued placements carry minimal confidence
	return true
}
