// Package giraffe emulates the parent application of the miniGiraffe study:
// the vg Giraffe short-read pangenome mapper (Sirén et al., Science 2021).
// It implements the full mapping pipeline of §IV-B — per-read preprocessing
// (minimizer lookup and seed creation), the two critical functions
// (cluster_seeds and process_until_threshold_c, shared with the proxy via
// package extend), and the post-processing/alignment phase the proxy omits —
// under a VG-style task scheduler in which the main thread buffers batches
// of reads, dispatches them to workers, tracks how many are busy, and
// processes queued batches itself when no worker is available (§IV-A).
//
// The proxy (package core) runs exactly the same critical-function code on
// captured inputs, which is how the reproduction achieves the paper's
// 100% output match (§VI-a).
package giraffe

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/distindex"
	"repro/internal/dna"
	"repro/internal/extend"
	"repro/internal/gbwt"
	"repro/internal/gbz"
	"repro/internal/minimizer"
	"repro/internal/seeds"
	"repro/internal/trace"
)

// Options configures a mapping run.
type Options struct {
	// Threads is the worker count (including the main thread); ≤0 means 1.
	Threads int
	// BatchSize is the scheduler batch size; ≤0 means 512 (Giraffe's
	// default).
	BatchSize int
	// CacheCapacity is each worker's initial CachedGBWT capacity; 0 uses
	// the Giraffe default (256). Negative disables caching. Under the epoch
	// discipline (EpochCapacity > 0) it sizes the private overflow layer.
	CacheCapacity int
	// EpochCapacity, when > 0, enables the epoch-published shared cache
	// (see core.Options.EpochCapacity); 0 keeps per-batch rebuilds.
	EpochCapacity int
	// Trace records per-region spans when non-nil.
	Trace *trace.Recorder
	// Probe drives the hardware-counter model; only honoured when
	// Threads == 1 (counter collection is single-threaded, as in §VI-b).
	Probe counters.Probe
	// Extend and Cluster tune the critical functions.
	Extend  extend.Params
	Cluster cluster.Params
	// CaptureSeeds stores each read's preprocessed seeds in the result —
	// the capture step that produces the proxy's input.
	CaptureSeeds bool
}

func (o Options) normalize() Options {
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 512
	}
	switch {
	case o.CacheCapacity == 0:
		o.CacheCapacity = gbwt.DefaultCacheCapacity
	case o.CacheCapacity < 0:
		o.CacheCapacity = 0
	}
	if o.Threads != 1 {
		o.Probe = nil
	}
	return o
}

// Alignment is the post-processed mapping result for one read.
type Alignment struct {
	ReadName string
	// Mapped reports whether any extension cleared the score floor.
	Mapped bool
	// Best is the highest-scoring extension (zero value when unmapped).
	Best extend.Extension
	// MappingQuality is a Phred-like confidence from the score gap to the
	// runner-up, clamped to [0, 60].
	MappingQuality int
	// Secondary counts retained non-primary extensions.
	Secondary int
	// RefinedScore is the alignment-phase score: the extension score plus
	// any gapped tail alignments (equal to Best.Score for full-coverage
	// extensions, 0 when unmapped).
	RefinedScore int32
}

// Result is a completed mapping run.
type Result struct {
	Alignments []Alignment
	// Extensions holds every read's raw kernel output (the data validated
	// against the proxy).
	Extensions [][]extend.Extension
	// Captured holds the preprocessed seeds when Options.CaptureSeeds.
	Captured []seeds.ReadSeeds
	// Makespan is the wall-clock mapping time (excluding index building).
	Makespan time.Duration
}

// Indexes bundles the query structures built from a GBZ file.
type Indexes struct {
	File  *gbz.File
	MinIx *minimizer.Index
	Dist  *distindex.Index
	// Bi is the bidirectional haplotype index used by the extension kernel.
	Bi *gbwt.Bidirectional
}

// BuildIndexes reconstructs the minimizer and distance indexes from the
// paths embedded in a GBZ file — what Giraffe loads from its .min and .dist
// companion files.
func BuildIndexes(f *gbz.File) (*Indexes, error) {
	if f == nil || f.Graph == nil || f.Index == nil {
		return nil, errors.New("giraffe: nil GBZ file")
	}
	if f.Graph.NumPaths() == 0 {
		return nil, errors.New("giraffe: GBZ has no embedded haplotype paths")
	}
	paths := make([][]gbwt.NodeID, f.Graph.NumPaths())
	for i := range paths {
		paths[i] = f.Graph.Path(i)
	}
	minIx, err := minimizer.Build(f.Graph, paths, minimizer.Config{K: 15, W: 8})
	if err != nil {
		return nil, fmt.Errorf("giraffe: building minimizer index: %w", err)
	}
	bi, err := gbwt.FromForward(f.Index, paths)
	if err != nil {
		return nil, fmt.Errorf("giraffe: building bidirectional index: %w", err)
	}
	return &Indexes{File: f, MinIx: minIx, Dist: distindex.New(f.Graph), Bi: bi}, nil
}

// Map runs the full Giraffe-like pipeline over the reads. The two critical
// functions are executed through the shared core.Mapper, the same engine the
// proxy and its streaming pipeline use — which is what makes the §VI-a
// 100% output match hold by construction.
func Map(ix *Indexes, reads []dna.Read, opts Options) (*Result, error) {
	if ix == nil {
		return nil, errors.New("giraffe: nil indexes")
	}
	rawCapacity := opts.CacheCapacity
	opts = opts.normalize()
	// core.Options shares giraffe's pre-normalize capacity convention
	// (0 = default, negative = disabled), so pass the raw value through.
	mapper, err := core.NewMapperFromIndexes(ix.File, ix.Dist, ix.Bi, core.Options{
		Threads:       opts.Threads,
		CacheCapacity: rawCapacity,
		EpochCapacity: opts.EpochCapacity,
		Trace:         opts.Trace,
		Probe:         opts.Probe,
		Extend:        opts.Extend,
		Cluster:       opts.Cluster,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Alignments: make([]Alignment, len(reads)),
		Extensions: make([][]extend.Extension, len(reads)),
	}
	if opts.CaptureSeeds {
		res.Captured = make([]seeds.ReadSeeds, len(reads))
	}

	var firstErr error
	var errOnce sync.Once
	processRead := func(worker, i int, reader gbwt.BiReader) {
		read := &reads[i]
		// Preprocess: minimizers + seeds — the same Preprocess the streaming
		// ExtractSource and capture paths run, so every route into the
		// kernels sees identical records.
		var endMin func()
		if opts.Trace != nil {
			endMin = opts.Trace.Begin(worker, trace.RegionMinimizer)
		}
		rec, err := Preprocess(ix.MinIx, read)
		if endMin != nil {
			endMin()
		}
		if err != nil {
			errOnce.Do(func() { firstErr = err })
			return
		}
		if opts.CaptureSeeds {
			res.Captured[i] = rec
		}
		// The two critical functions (cluster_seeds and
		// process_until_threshold_c), through the shared mapping engine.
		exts := mapper.MapRecord(worker, reader, &rec, i)
		res.Extensions[i] = exts
		// Post-processing (the phase the proxy omits).
		var endPost func()
		if opts.Trace != nil {
			endPost = opts.Trace.Begin(worker, trace.RegionPostproc)
		}
		res.Alignments[i] = postprocess(read, exts)
		if endPost != nil {
			endPost()
		}
		// Alignment phase: gapped tail refinement of partial extensions.
		var endAl func()
		if opts.Trace != nil {
			endAl = opts.Trace.Begin(worker, trace.RegionAlign)
		}
		res.Alignments[i] = refineAlignment(ix, reader, read, res.Alignments[i])
		if endAl != nil {
			endAl()
		}
	}

	start := time.Now()
	runVGScheduler(len(reads), opts, mapper.NewReader, processRead, mapper.TryPublishEpoch)
	res.Makespan = time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// minMappedScoreFraction is the score floor (relative to read length) below
// which a read is reported unmapped.
const minMappedScoreFraction = 0.5

// postprocess scores and filters a read's extensions into an alignment —
// Giraffe's refinement phase: low-score extensions are discarded and the
// best surviving one becomes the primary alignment.
func postprocess(read *dna.Read, exts []extend.Extension) Alignment {
	al := Alignment{ReadName: read.Name}
	if len(exts) == 0 {
		return al
	}
	best := exts[0] // kernel output is score-descending
	al.Best = best  // retained even below the floor: the alignment phase may rescue it
	floor := int32(float64(len(read.Seq)) * minMappedScoreFraction)
	if best.Score < floor {
		return al
	}
	al.Mapped = true
	secondBest := int32(-1 << 30)
	for _, e := range exts[1:] {
		if e.Score >= best.Score*4/5 {
			al.Secondary++
		}
		if e.Score > secondBest {
			secondBest = e.Score
		}
	}
	gap := int(best.Score)
	if secondBest > -1<<30 {
		gap = int(best.Score - secondBest)
	}
	q := gap * 2
	if q > 60 {
		q = 60
	}
	if q < 0 {
		q = 0
	}
	al.MappingQuality = q
	return al
}

// runVGScheduler reproduces VG's batch scheduler (§IV-A): the main thread
// slices reads into batches and hands them to worker goroutines; when every
// worker is busy (the dispatch channel would block), the main thread
// processes the batch itself. Every batch is processed with a fresh reader
// from newReader (a per-batch CachedGBWT, or a pinned epoch snapshot plus
// overflow), matching Giraffe's per-batch cache lifetime; endBatch runs at
// each batch boundary (the epoch publication point).
func runVGScheduler(n int, opts Options, newReader func(worker int) gbwt.BiReader, fn func(worker, index int, reader gbwt.BiReader), endBatch func(worker int) bool) {
	type batch struct{ start, end int }
	workers := opts.Threads - 1
	runBatch := func(worker int, b batch) {
		reader := newReader(worker)
		for i := b.start; i < b.end; i++ {
			fn(worker, i, reader)
		}
		if endBatch != nil {
			endBatch(worker)
		}
	}
	// One queue slot per worker models VG's busy-worker tracking: a send
	// succeeds while some worker has room; when every worker is occupied the
	// send would block and the main thread takes the batch itself.
	queue := make(chan batch, workers)
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for b := range queue {
				runBatch(worker, b)
			}
		}(w)
	}
	for start := 0; start < n; start += opts.BatchSize {
		end := start + opts.BatchSize
		if end > n {
			end = n
		}
		b := batch{start, end}
		if workers == 0 {
			runBatch(0, b)
			continue
		}
		select {
		case queue <- b:
		default:
			// All workers busy: the main scheduler thread processes the
			// queued batch itself.
			runBatch(0, b)
		}
	}
	close(queue)
	wg.Wait()
}
