package giraffe

import (
	"repro/internal/align"
	"repro/internal/dna"
	"repro/internal/extend"
	"repro/internal/gbwt"
	"repro/internal/vgraph"
)

// Tail refinement: Giraffe's alignment phase (§IV-B). When the best gapless
// extension does not cover the whole read — typically because a small indel
// interrupted it — the uncovered tails are aligned against the haplotype
// continuation with banded affine-gap DP (package align), recovering the
// full-read alignment the gapless kernel cannot express. Only the final
// Alignment is refined; the raw kernel extensions (the validation data)
// are never modified.

// tailSlack is how many extra reference bases beyond the tail length the
// refinement spells, leaving room for deletions.
const tailSlack = 12

// refineAlignment upgrades a partial-coverage alignment by tail alignment.
// Reads whose best gapless extension fell below the mapping floor are
// re-judged on the refined score — the alignment phase is what finally
// decides mapping, as in Giraffe. Returns the possibly-improved alignment.
func refineAlignment(ix *Indexes, reader gbwt.BiReader, read *dna.Read, al Alignment) Alignment {
	if al.Best.Score <= 0 {
		return al // no extension at all: nothing to refine
	}
	best := &al.Best
	oriented := read.Seq
	if best.Rev {
		oriented = read.Seq.RevComp()
	}
	al.RefinedScore = best.Score
	if int(best.Len()) == len(oriented) {
		return al // full coverage: nothing to refine
	}
	p := align.DefaultParams()
	refined := best.Score

	// Right tail: oriented[ReadEnd:] against the graph continuation.
	if tail := oriented[best.ReadEnd:]; len(tail) > 0 {
		endNode, endOff, ok := extensionEnd(ix.File.Graph, best)
		if ok {
			ref := spellForward(ix.File.Graph, reader.Fwd, endNode, endOff, len(tail)+tailSlack)
			if sc, ok := bestTailScore(tail, ref, p); ok {
				refined += sc
			}
		}
	}
	// Left tail: oriented[:ReadStart] against the graph upstream, both
	// reversed so the DP anchors at the extension boundary.
	if tail := oriented[:best.ReadStart]; len(tail) > 0 {
		ref := spellBackward(ix.File.Graph, reader.Rev, best.StartPos.Node, best.StartPos.Off, len(tail)+tailSlack)
		revTail := tail.Clone()
		reverseInPlace(revTail)
		reverseInPlace(ref)
		if sc, ok := bestTailScore(revTail, ref, p); ok {
			refined += sc
		}
	}
	al.RefinedScore = refined
	if !al.Mapped {
		floor := int32(float64(len(read.Seq)) * minMappedScoreFraction)
		if refined >= floor {
			// Rescued by the alignment phase: mapped, with conservative
			// confidence (no runner-up comparison at this stage).
			al.Mapped = true
			al.MappingQuality = 20
		}
	}
	return al
}

// bestTailScore aligns the tail against prefixes of ref, returning the best
// achievable global score; negative outcomes report false (the tail is
// soft-clipped instead, as real aligners do).
func bestTailScore(tail, ref dna.Sequence, p align.Params) (int32, bool) {
	if len(ref) == 0 {
		return 0, false
	}
	best := int32(-1 << 30)
	// Try the three most plausible reference lengths: exact, ±4 — enough to
	// absorb small indels without quadratic sweep.
	for _, dl := range []int{0, -4, 4} {
		l := len(tail) + dl
		if l < 1 {
			continue
		}
		if l > len(ref) {
			l = len(ref)
		}
		r := align.Global(tail, ref[:l], p)
		if r.Score > best {
			best = r.Score
		}
	}
	if best <= 0 {
		return 0, false
	}
	return best, true
}

// extensionEnd locates the graph position one past the extension's last
// matched base by walking its path.
func extensionEnd(g *vgraph.Graph, e *extend.Extension) (vgraph.NodeID, int32, bool) {
	need := int(e.Len())
	node := e.StartPos.Node
	off := int(e.StartPos.Off)
	for pi := 0; pi < len(e.Path); pi++ {
		node = e.Path[pi]
		if pi > 0 {
			off = 0
		}
		avail := g.SeqLen(node) - off
		if need <= avail {
			return node, int32(off + need), true
		}
		need -= avail
	}
	return vgraph.Invalid, 0, false
}

// spellForward collects up to n bases starting at (node, off), following the
// first haplotype-consistent successor at each node end.
func spellForward(g *vgraph.Graph, fwd gbwt.Reader, node vgraph.NodeID, off int32, n int) dna.Sequence {
	out := make(dna.Sequence, 0, n)
	for len(out) < n {
		label := g.Seq(node)
		for int(off) < len(label) && len(out) < n {
			out = append(out, label[off])
			off++
		}
		if len(out) >= n {
			break
		}
		rec := fwd.Record(node)
		next := vgraph.Invalid
		if rec != nil {
			for _, e := range rec.Edges {
				if e.To != gbwt.Endmarker {
					next = e.To
					break
				}
			}
		}
		if next == vgraph.Invalid {
			break
		}
		node, off = next, 0
	}
	return out
}

// spellBackward collects up to n bases strictly before (node, off), in
// forward orientation, following the first haplotype predecessor (from the
// reverse-index record) at each node start.
func spellBackward(g *vgraph.Graph, rev gbwt.Reader, node vgraph.NodeID, off int32, n int) dna.Sequence {
	// Collect backwards then reverse.
	out := make(dna.Sequence, 0, n)
	cur := node
	pos := off - 1
	for len(out) < n {
		label := g.Seq(cur)
		for pos >= 0 && len(out) < n {
			out = append(out, label[pos])
			pos--
		}
		if len(out) >= n {
			break
		}
		rec := rev.Record(cur)
		prev := vgraph.Invalid
		if rec != nil {
			for _, e := range rec.Edges {
				if e.To != gbwt.Endmarker {
					prev = e.To
					break
				}
			}
		}
		if prev == vgraph.Invalid {
			break
		}
		cur = prev
		pos = int32(g.SeqLen(cur)) - 1
	}
	reverseInPlace(out)
	return out
}

func reverseInPlace(s dna.Sequence) {
	for a, b := 0, len(s)-1; a < b; a, b = a+1, b-1 {
		s[a], s[b] = s[b], s[a]
	}
}
