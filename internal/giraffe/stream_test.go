package giraffe

import (
	"bytes"
	"context"
	"io"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fastq"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/seeds"
	"repro/internal/workload"
)

// streamFixture generates a bundle and writes its reads to a FASTQ file —
// the on-disk input the streaming extraction path starts from.
func streamFixture(t testing.TB, spec workload.Spec) (*workload.Bundle, string) {
	t.Helper()
	b, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), spec.Name+".fq")
	if err := fastq.WriteFile(path, b.Reads); err != nil {
		t.Fatal(err)
	}
	return b, path
}

// TestExtractSourceMatchesCapture locks the streaming extraction to the
// batch capture: record for record, the ExtractSource must yield exactly
// what the materializing capture path produces.
func TestExtractSourceMatchesCapture(t *testing.T) {
	b, path := streamFixture(t, workload.AHuman().Scaled(0.04))
	want, err := b.CaptureSeeds()
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenExtractSource(b.MinIx, path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var got []seeds.ReadSeeds
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, *rec)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d records, capture has %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d differs:\nstream  %+v\ncapture %+v", i, got[i], want[i])
		}
	}
	if src.Reads() != len(want) {
		t.Errorf("Reads() = %d, want %d", src.Reads(), len(want))
	}
	if src.TotalSeeds() == 0 {
		t.Error("TotalSeeds() = 0")
	}
}

// TestDifferentialCSV is the differential harness of the PR: the same
// workload mapped five ways — (a) the batch core.Mapper, (b) the pipeline
// over a captured-seed file, (c) the pipeline over the streaming
// ExtractSource with no capture file on disk, (d) the pipeline under the
// epoch-published shared cache, and (e) the serving pipeline.Session under
// the epoch cache — must produce byte-identical CSV output, on uniform and
// zipf-skewed workloads. Legs (d) and (e) are the lock on the epoch
// discipline: hot records answered from a shared snapshot built
// concurrently with mapping must not change a single output byte, on
// either the batch or the serve path.
func TestDifferentialCSV(t *testing.T) {
	zipf := workload.BYeast().Scaled(0.004)
	zipf.Name = "B-yeast-zipf"
	zipf.ZipfS = 1.4
	specs := []workload.Spec{
		workload.AHuman().Scaled(0.04),
		workload.BYeast().Scaled(0.004),
		zipf,
	}
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			b, fqPath := streamFixture(t, spec)
			recs, err := b.CaptureSeeds()
			if err != nil {
				t.Fatal(err)
			}

			// (a) Batch proxy.
			res, err := core.Run(b.GBZ(), recs, core.Options{Threads: 2, BatchSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			var batchCSV bytes.Buffer
			if err := core.WriteCSV(&batchCSV, recs, res); err != nil {
				t.Fatal(err)
			}

			m, err := core.NewMapper(b.GBZ(), core.Options{})
			if err != nil {
				t.Fatal(err)
			}

			// (b) Pipeline over a captured-seed file.
			capPath := filepath.Join(t.TempDir(), "capture.bin")
			if err := seeds.WriteFile(capPath, recs); err != nil {
				t.Fatal(err)
			}
			fileSrc, err := seeds.Open(capPath)
			if err != nil {
				t.Fatal(err)
			}
			defer fileSrc.Close()
			var fileCSV bytes.Buffer
			if _, err := pipeline.RunToCSV(m, fileSrc, &fileCSV, pipeline.Options{
				Workers: 3, BatchSize: 8, Scheduler: sched.WorkStealing,
			}); err != nil {
				t.Fatal(err)
			}

			// (c) Pipeline over the streaming ExtractSource — no capture file.
			extSrc, err := OpenExtractSource(b.MinIx, fqPath, 16)
			if err != nil {
				t.Fatal(err)
			}
			defer extSrc.Close()
			var streamCSV bytes.Buffer
			st, err := pipeline.RunToCSV(m, extSrc, &streamCSV, pipeline.Options{
				Workers: 3, BatchSize: 8, Scheduler: sched.Dynamic,
			})
			if err != nil {
				t.Fatal(err)
			}

			// (d) Pipeline under the epoch-published shared cache: a tiny
			// private overflow (16) forces most traffic through the shared
			// snapshot, and BatchSize 8 over 3 workers republishes many
			// times mid-run.
			epochM, err := core.NewMapper(b.GBZ(), core.Options{
				Threads: 3, CacheCapacity: 16, EpochCapacity: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			epochSrc, err := seeds.Open(capPath)
			if err != nil {
				t.Fatal(err)
			}
			defer epochSrc.Close()
			var epochCSV bytes.Buffer
			if _, err := pipeline.RunToCSV(epochM, epochSrc, &epochCSV, pipeline.Options{
				Workers: 3, BatchSize: 8, Scheduler: sched.WorkStealing,
			}); err != nil {
				t.Fatal(err)
			}
			if !epochM.EpochEnabled() {
				t.Fatal("epoch cache not enabled on the epoch leg")
			}

			// (e) Serving path: pipeline.Session over the same epoch mapper
			// configuration. Submit returns results in request order, so
			// the CSV assembles identically.
			servM, err := core.NewMapper(b.GBZ(), core.Options{
				Threads: 3, CacheCapacity: 16, EpochCapacity: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			sess, err := pipeline.NewSession(servM, pipeline.Options{
				Workers: 3, BatchSize: 8, Depth: 64, Scheduler: sched.Dynamic,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			// Two requests over the same records: the first seeds the
			// frequency feedback, the second maps against a warm snapshot —
			// both must be byte-identical to the batch output, and the
			// second proves the snapshot actually serves across requests.
			if _, err := sess.Submit(context.Background(), recs); err != nil {
				t.Fatal(err)
			}
			exts, err := sess.Submit(context.Background(), recs)
			if err != nil {
				t.Fatal(err)
			}
			var serveCSV bytes.Buffer
			if err := core.WriteCSVHeader(&serveCSV); err != nil {
				t.Fatal(err)
			}
			for i := range recs {
				if err := core.WriteCSVRecord(&serveCSV, &recs[i], exts[i]); err != nil {
					t.Fatal(err)
				}
			}
			if cs := sess.CacheStats(); cs.SharedHits == 0 {
				t.Error("serve leg never hit the shared snapshot across two warm requests")
			}

			if !bytes.Equal(batchCSV.Bytes(), fileCSV.Bytes()) {
				t.Error("capture-file pipeline CSV differs from batch CSV")
			}
			if !bytes.Equal(batchCSV.Bytes(), streamCSV.Bytes()) {
				t.Error("fastq-stream pipeline CSV differs from batch CSV")
			}
			if !bytes.Equal(batchCSV.Bytes(), epochCSV.Bytes()) {
				t.Error("epoch-cache pipeline CSV differs from batch CSV")
			}
			if !bytes.Equal(batchCSV.Bytes(), serveCSV.Bytes()) {
				t.Error("epoch-cache serve (Session) CSV differs from batch CSV")
			}
			if st.Reads != len(recs) {
				t.Errorf("streamed %d of %d reads", st.Reads, len(recs))
			}
			if st.IngestLatency.N != int64(st.Batches) {
				t.Errorf("ingest latency has %d samples for %d batches", st.IngestLatency.N, st.Batches)
			}
			// The streaming ingest stage did the extraction work, so it
			// cannot be free.
			if st.IngestLatency.Mean <= 0 {
				t.Error("zero ingest latency on the extraction path")
			}
		})
	}
}

// TestCaptureSeedsStreamRoundTrip locks the streaming v2 capture to the v1
// writer: both paths must store identical records, including paired-end
// fragment numbering.
func TestCaptureSeedsStreamRoundTrip(t *testing.T) {
	b, path := streamFixture(t, workload.CHPRC().Scaled(0.008))
	want, err := b.CaptureSeeds()
	if err != nil {
		t.Fatal(err)
	}
	// v1: count-up-front, from materialized records.
	v1Path := filepath.Join(t.TempDir(), "v1.bin")
	if err := seeds.WriteFile(v1Path, want); err != nil {
		t.Fatal(err)
	}
	v1, err := seeds.ReadFile(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	// v2: streamed record by record from the FASTQ file, no materialization.
	fq, err := fastq.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var fqText bytes.Buffer
	if err := fastq.Write(&fqText, fq); err != nil {
		t.Fatal(err)
	}
	var capture bytes.Buffer
	st, err := CaptureSeeds(b.MinIx, &fqText, &capture)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads != len(want) {
		t.Fatalf("streamed capture wrote %d records, want %d", st.Reads, len(want))
	}
	r, err := seeds.NewReader(bytes.NewReader(capture.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var v2 []seeds.ReadSeeds
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		v2 = append(v2, *rec)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatal("streamed v2 capture differs from v1 capture")
	}
}

// TestExtractSourceParseError propagates a malformed FASTQ through the
// pipeline as an ingest error.
func TestExtractSourceParseError(t *testing.T) {
	b, _ := streamFixture(t, workload.AHuman().Scaled(0.02))
	m, err := core.NewMapper(b.GBZ(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := NewExtractSource(b.MinIx, strings.NewReader("not a fastq file\n"), 2)
	defer src.Close()
	var buf bytes.Buffer
	_, err = pipeline.RunToCSV(m, src, &buf, pipeline.Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "expected @header") {
		t.Fatalf("parse error not propagated: %v", err)
	}
}

// TestExtractSourceCloseEarly stops the prefetcher mid-stream: Close must
// not block even with unconsumed lookahead, and may be called twice.
func TestExtractSourceCloseEarly(t *testing.T) {
	b, path := streamFixture(t, workload.AHuman().Scaled(0.04))
	src, err := OpenExtractSource(b.MinIx, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestPreprocessSharedByBatchAndStream pins the refactor: Map's captured
// records are exactly Preprocess output.
func TestPreprocessSharedByBatchAndStream(t *testing.T) {
	b := testBundle(t, 0.03)
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(ix, b.Reads, Options{Threads: 2, CaptureSeeds: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Reads {
		want, err := Preprocess(ix.MinIx, &b.Reads[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Captured[i], want) {
			t.Fatalf("captured record %d differs from Preprocess output", i)
		}
	}
}
