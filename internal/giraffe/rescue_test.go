package giraffe

import (
	"testing"

	"repro/internal/dna"
	"repro/internal/extend"
	"repro/internal/workload"
)

// pairFixture maps a paired bundle and returns everything rescue needs.
func pairFixture(t *testing.T) (*workload.Bundle, *Indexes, *Result) {
	t.Helper()
	b, err := workload.Generate(workload.CHPRC().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(ix, b.Reads, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return b, ix, res
}

func TestRescuePairsNoFragmentLen(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end path already covered threaded; skipped in -short race runs")
	}
	b, ix, res := pairFixture(t)
	stats, err := RescuePairs(ix, b.Reads, res, RescueParams{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs != 0 {
		t.Errorf("rescue without fragment length did work: %+v", stats)
	}
}

func TestRescuePairsCountsPairs(t *testing.T) {
	b, ix, res := pairFixture(t)
	stats, err := RescuePairs(ix, b.Reads, res,
		RescueParams{FragmentLen: b.Spec.FragmentLen}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs != len(b.Reads)/2 {
		t.Errorf("Pairs = %d, want %d", stats.Pairs, len(b.Reads)/2)
	}
	if stats.BothMapped == 0 {
		t.Error("no fully-mapped pairs in a clean synthetic set")
	}
}

func TestRescueRecoversCorruptedMate(t *testing.T) {
	b, err := workload.Generate(workload.CHPRC().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle of some second-ends: eight errors spaced 8 bases
	// apart exceed the primary 4-mismatch budget (extensions stall mid-read
	// below the mapping floor) while both clean flanks keep their seeds, so
	// a windowed rescue with a relaxed budget can span the read.
	corrupted := 0
	for i := range b.Reads {
		if b.Reads[i].End != 1 || corrupted >= 10 {
			continue
		}
		seq := b.Reads[i].Seq
		for p := 40; p <= 96; p += 8 {
			seq[p] = (seq[p] + 1) & 3
		}
		corrupted++
	}
	res, err := Map(ix, b.Reads, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	unmappedBefore := 0
	for _, al := range res.Alignments {
		if !al.Mapped {
			unmappedBefore++
		}
	}
	// Preserve pre-rescue extensions to verify rescue never touches them.
	extBefore := make([][]extend.Extension, len(res.Extensions))
	copy(extBefore, res.Extensions)

	stats, err := RescuePairs(ix, b.Reads, res,
		RescueParams{FragmentLen: b.Spec.FragmentLen, ExtraMismatches: 6}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unmappedAfter := 0
	for _, al := range res.Alignments {
		if !al.Mapped {
			unmappedAfter++
		}
	}
	if stats.Attempted == 0 {
		t.Skip("corruption did not unmap any end at this scale")
	}
	if stats.Rescued == 0 {
		t.Errorf("rescue recovered nothing (attempted %d)", stats.Attempted)
	}
	if unmappedAfter >= unmappedBefore && stats.Rescued > 0 {
		t.Errorf("unmapped count did not drop: %d -> %d", unmappedBefore, unmappedAfter)
	}
	for i := range res.Extensions {
		if len(res.Extensions[i]) != len(extBefore[i]) {
			t.Fatalf("rescue modified raw extensions of read %d", i)
		}
	}
	// Rescued placements carry the minimal mapping quality.
	for _, al := range res.Alignments {
		if al.Mapped && al.MappingQuality == 1 {
			return // found at least one rescued alignment marker
		}
	}
	t.Error("no alignment carries the rescued-confidence marker")
}

func TestRescueIgnoresSingleEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end path already covered threaded; skipped in -short race runs")
	}
	b, err := workload.Generate(workload.AHuman().Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(ix, b.Reads, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RescuePairs(ix, b.Reads, res, RescueParams{FragmentLen: 400}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs != 0 {
		t.Errorf("single-end reads counted as pairs: %+v", stats)
	}
}

func TestRescueBothUnmappedSkipped(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end path already covered threaded; skipped in -short race runs")
	}
	// Two garbage paired reads: rescue has no anchor, must not attempt.
	b, ix, _ := pairFixture(t)
	garbage := make([]dna.Read, 2)
	garbage[0] = dna.Read{Name: "g/1", Seq: make(dna.Sequence, 148), Fragment: 0, End: 0}
	garbage[1] = dna.Read{Name: "g/2", Seq: make(dna.Sequence, 148), Fragment: 0, End: 1}
	res, err := Map(ix, garbage, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RescuePairs(ix, garbage, res, RescueParams{FragmentLen: b.Spec.FragmentLen}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempted != 0 {
		t.Errorf("rescue attempted with no anchor: %+v", stats)
	}
}
