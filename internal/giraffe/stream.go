package giraffe

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/dna"
	"repro/internal/fastq"
	"repro/internal/minimizer"
	"repro/internal/obs"
	"repro/internal/seeds"
)

// Preprocess runs Giraffe's per-read preprocessing — minimizer lookup and
// seed creation — and bundles the result into the record the critical
// functions consume. This is the one preprocessing function shared by every
// path into the kernels: the batch emulator (Map), the streaming
// ExtractSource, and the capture tools (CaptureSeeds, cmd/extractseeds).
// The §VI-a output match between parent and proxy holds for the streaming
// paths by construction because they cannot diverge from the batch loop here.
func Preprocess(ix *minimizer.Index, read *dna.Read) (seeds.ReadSeeds, error) {
	ss, err := seeds.Extract(ix, read)
	if err != nil {
		return seeds.ReadSeeds{}, fmt.Errorf("giraffe: read %s: %w", read.Name, err)
	}
	return seeds.ReadSeeds{Read: *read, Seeds: ss}, nil
}

// DefaultLookahead is the ExtractSource prefetch bound: how many
// preprocessed records may sit between the extractor and the consumer. One
// scheduler batch (512, Giraffe's default) keeps extraction ahead of the
// mapping stage without buffering a second workload in memory.
const DefaultLookahead = 512

// extracted is one prefetched record or the error that ended the stream.
type extracted struct {
	rec *seeds.ReadSeeds
	err error
}

// ExtractSource streams the capture→proxy loop as a single process: it reads
// FASTQ records incrementally, runs Preprocess on each, and yields
// *seeds.ReadSeeds on demand — a pipeline.Source with no captured-seed file
// on disk and no whole-workload buffering. Extraction runs ahead of the
// consumer in a prefetch goroutine bounded by the lookahead window, so FASTQ
// parsing and minimizer lookup hide behind the mapping stage the same way
// ingest I/O does.
//
// Next is not safe for concurrent use (the pipeline's single ingest
// goroutine is the intended caller). Close releases the prefetcher and any
// underlying file; it is safe to call even when the stream was not drained.
type ExtractSource struct {
	ch        chan extracted
	quit      chan struct{}
	closeOnce sync.Once
	closer    io.Closer

	// Extraction metrics, recorded by the single prefetch goroutine into
	// shard 0. All handles are nil (no-op) when the source was built without
	// a registry; instr additionally gates the time.Now calls.
	instr       bool
	mReads      *obs.Counter
	mSeeds      *obs.Counter
	hPreprocess *obs.Histogram

	reads      int
	totalSeeds int
}

// NewExtractSource starts streaming extraction of the FASTQ text in r
// against the minimizer index. lookahead bounds the prefetch window (≤0
// means DefaultLookahead).
func NewExtractSource(ix *minimizer.Index, r io.Reader, lookahead int) *ExtractSource {
	return NewExtractSourceObs(ix, r, lookahead, nil)
}

// NewExtractSourceObs is NewExtractSource with an observability registry:
// the prefetch stage counts extracted reads and seeds and records per-read
// preprocessing latency (extract_reads_total, extract_seeds_total,
// extract_preprocess_seconds). A nil registry is exactly NewExtractSource.
func NewExtractSourceObs(ix *minimizer.Index, r io.Reader, lookahead int, reg *obs.Registry) *ExtractSource {
	if lookahead <= 0 {
		lookahead = DefaultLookahead
	}
	s := &ExtractSource{
		ch:          make(chan extracted, lookahead),
		quit:        make(chan struct{}),
		instr:       reg != nil,
		mReads:      reg.Counter(obs.MetricExtractReads),
		mSeeds:      reg.Counter(obs.MetricExtractSeeds),
		hPreprocess: reg.Histogram(obs.MetricExtractPreprocess),
	}
	go func() {
		defer close(s.ch)
		s.extract(ix, r)
	}()
	return s
}

// OpenExtractSource streams extraction from the FASTQ file at path; the file
// is released by Close.
func OpenExtractSource(ix *minimizer.Index, path string, lookahead int) (*ExtractSource, error) {
	return OpenExtractSourceObs(ix, path, lookahead, nil)
}

// OpenExtractSourceObs is OpenExtractSource with an observability registry
// (see NewExtractSourceObs).
func OpenExtractSourceObs(ix *minimizer.Index, path string, lookahead int, reg *obs.Registry) (*ExtractSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := NewExtractSourceObs(ix, f, lookahead, reg)
	s.closer = f
	return s, nil
}

// extract is the prefetch stage: scan, preprocess, hand off — until EOF, a
// parse error, or Close.
func (s *ExtractSource) extract(ix *minimizer.Index, r io.Reader) {
	sc := fastq.NewScanner(r)
	for {
		read, err := sc.Next()
		if err == io.EOF {
			return
		}
		var e extracted
		if err != nil {
			e = extracted{err: fmt.Errorf("giraffe: extract: %w", err)}
		} else {
			var t0 time.Time
			if s.instr {
				t0 = time.Now()
			}
			rec, perr := Preprocess(ix, &read)
			if s.instr {
				s.hPreprocess.Observe(0, time.Since(t0))
			}
			if perr != nil {
				e = extracted{err: perr}
			} else {
				e = extracted{rec: &rec}
				s.mReads.Inc(0)
				s.mSeeds.Add(0, int64(len(rec.Seeds)))
			}
		}
		select {
		case s.ch <- e:
		case <-s.quit:
			return
		}
		if e.err != nil {
			return
		}
	}
}

// Next implements pipeline.Source: it returns the next preprocessed record,
// io.EOF at the end of the FASTQ stream, or the first extraction error.
func (s *ExtractSource) Next() (*seeds.ReadSeeds, error) {
	e, ok := <-s.ch
	if !ok {
		return nil, io.EOF
	}
	if e.err != nil {
		return nil, e.err
	}
	s.reads++
	s.totalSeeds += len(e.rec.Seeds)
	return e.rec, nil
}

// Close stops the prefetcher and releases the underlying file (when the
// source was opened from a path). It never blocks on unconsumed records.
func (s *ExtractSource) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.quit)
		if s.closer != nil {
			err = s.closer.Close()
		}
	})
	return err
}

// Reads returns how many records Next has yielded.
func (s *ExtractSource) Reads() int { return s.reads }

// TotalSeeds returns the summed seed count of the yielded records.
func (s *ExtractSource) TotalSeeds() int { return s.totalSeeds }

// CaptureStats reports a streaming capture run.
type CaptureStats struct {
	Reads      int
	TotalSeeds int
}

// CaptureSeeds is the emulator's streaming capture path: it extracts seeds
// from the FASTQ text in r and writes each record to w through the
// count-free v2 stream writer (seeds.NewStreamWriter) as soon as it is
// preprocessed — capture no longer buffers the whole workload to learn the
// record count before the header can be written. The records and their
// order are identical to the batch capture path (both run Preprocess per
// read, in file order), so v1 and v2 captures read back equal.
func CaptureSeeds(ix *minimizer.Index, r io.Reader, w io.Writer) (CaptureStats, error) {
	var st CaptureStats
	sw, err := seeds.NewStreamWriter(w)
	if err != nil {
		return st, err
	}
	sc := fastq.NewScanner(r)
	for {
		read, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, fmt.Errorf("giraffe: capture: %w", err)
		}
		rec, err := Preprocess(ix, &read)
		if err != nil {
			return st, err
		}
		if err := sw.Write(&rec); err != nil {
			return st, err
		}
		st.Reads++
		st.TotalSeeds += len(rec.Seeds)
	}
	return st, sw.Close()
}
