package giraffe

import (
	"testing"
)

func TestEstimateFragmentModel(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end path already covered threaded; skipped in -short race runs")
	}
	b, ix, res := pairFixture(t)
	model, err := EstimateFragmentModel(ix, b.Reads, res, 10)
	if err != nil {
		t.Fatal(err)
	}
	if model.Samples < minFragmentSamples {
		t.Fatalf("samples = %d", model.Samples)
	}
	// The generator uses a fixed fragment length; the estimate must land
	// close to it (the backbone gap is an approximation, allow 15%).
	want := float64(b.Spec.FragmentLen)
	if model.Mean < want*0.85 || model.Mean > want*1.15 {
		t.Errorf("estimated mean %.0f, generator used %d", model.Mean, b.Spec.FragmentLen)
	}
	// Fixed fragment length: spread should be small relative to the mean.
	if model.StdDev > want*0.25 {
		t.Errorf("stddev %.0f too wide for a fixed-length library", model.StdDev)
	}
}

func TestEstimateFragmentModelTooFew(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end path already covered threaded; skipped in -short race runs")
	}
	b, ix, _ := pairFixture(t)
	// An empty result has no mapped pairs.
	empty := &Result{Alignments: make([]Alignment, len(b.Reads))}
	if _, err := EstimateFragmentModel(ix, b.Reads, empty, 10); err == nil {
		t.Error("estimate from unmapped result accepted")
	}
}

func TestRescueParamsFrom(t *testing.T) {
	m := FragmentModel{Mean: 420, StdDev: 30, Samples: 100}
	p := m.RescueParamsFrom(148)
	if p.FragmentLen != 420 {
		t.Errorf("FragmentLen = %d", p.FragmentLen)
	}
	if p.Window != 148 {
		t.Errorf("Window = %d, want read-length floor 148", p.Window)
	}
	wide := FragmentModel{Mean: 420, StdDev: 100}
	if got := wide.RescueParamsFrom(148).Window; got != 400 {
		t.Errorf("wide window = %d, want 400", got)
	}
}

func TestConsistent(t *testing.T) {
	m := FragmentModel{Mean: 400, StdDev: 25}
	if !m.Consistent(420, 2) {
		t.Error("420 inconsistent with N(400,25) at 2σ")
	}
	if m.Consistent(500, 2) {
		t.Error("500 consistent with N(400,25) at 2σ")
	}
	exact := FragmentModel{Mean: 400, StdDev: 0}
	if !exact.Consistent(400, 2) || exact.Consistent(401, 2) {
		t.Error("zero-σ consistency wrong")
	}
}

func TestModelDrivenRescueEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end path already covered threaded; skipped in -short race runs")
	}
	// The full Giraffe flow: map, estimate the fragment model, rescue with
	// model-derived parameters.
	b, ix, res := pairFixture(t)
	model, err := EstimateFragmentModel(ix, b.Reads, res, 10)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RescuePairs(ix, b.Reads, res, model.RescueParamsFrom(b.Spec.ReadLen), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs == 0 {
		t.Error("no pairs seen by model-driven rescue")
	}
}
