package giraffe

import (
	"reflect"
	"testing"

	"repro/internal/counters"
	"repro/internal/dna"
	"repro/internal/gbz"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testBundle(t testing.TB, scale float64) *workload.Bundle {
	t.Helper()
	b, err := workload.Generate(workload.AHuman().Scaled(scale))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuildIndexes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end path already covered threaded; skipped in -short race runs")
	}
	b := testBundle(t, 0.02)
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	if ix.MinIx.NumKmers() == 0 {
		t.Error("empty minimizer index")
	}
	if _, err := BuildIndexes(nil); err == nil {
		t.Error("nil file accepted")
	}
	if _, err := BuildIndexes(&gbz.File{}); err == nil {
		t.Error("empty file accepted")
	}
}

func TestMapSingleThread(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end path already covered threaded; skipped in -short race runs")
	}
	b := testBundle(t, 0.05)
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(ix, b.Reads, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) != len(b.Reads) {
		t.Fatalf("%d alignments for %d reads", len(res.Alignments), len(b.Reads))
	}
	mapped := 0
	for i, al := range res.Alignments {
		if al.ReadName != b.Reads[i].Name {
			t.Fatalf("alignment %d names %q, want %q", i, al.ReadName, b.Reads[i].Name)
		}
		if al.Mapped {
			mapped++
			if al.MappingQuality < 0 || al.MappingQuality > 60 {
				t.Fatalf("mapq %d out of range", al.MappingQuality)
			}
			if al.Best.Score <= 0 {
				t.Fatalf("mapped read %d has score %d", i, al.Best.Score)
			}
		}
	}
	// Reads are sampled from the indexed haplotypes with a low error rate:
	// the vast majority must map.
	if frac := float64(mapped) / float64(len(b.Reads)); frac < 0.9 {
		t.Errorf("only %.0f%% of reads mapped", frac*100)
	}
}

func TestMapParallelMatchesSerial(t *testing.T) {
	b := testBundle(t, 0.05)
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Map(ix, b.Reads, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 4, 8} {
		par, err := Map(ix, b.Reads, Options{Threads: threads, BatchSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Extensions, par.Extensions) {
			t.Fatalf("%d-thread run changed extensions", threads)
		}
		if !reflect.DeepEqual(serial.Alignments, par.Alignments) {
			t.Fatalf("%d-thread run changed alignments", threads)
		}
	}
}

func TestMapCapturesSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end path already covered threaded; skipped in -short race runs")
	}
	b := testBundle(t, 0.03)
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(ix, b.Reads, Options{Threads: 1, CaptureSeeds: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Captured) != len(b.Reads) {
		t.Fatalf("captured %d, want %d", len(res.Captured), len(b.Reads))
	}
	nonEmpty := 0
	for i, c := range res.Captured {
		if c.Read.Name != b.Reads[i].Name {
			t.Fatalf("captured record %d names %q", i, c.Read.Name)
		}
		if len(c.Seeds) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Error("no captured seeds")
	}
}

func TestMapWithTrace(t *testing.T) {
	b := testBundle(t, 0.03)
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(2)
	if _, err := Map(ix, b.Reads, Options{Threads: 2, BatchSize: 4, Trace: rec}); err != nil {
		t.Fatal(err)
	}
	shares := rec.Shares()
	if len(shares) == 0 {
		t.Fatal("no trace regions recorded")
	}
	regions := map[string]bool{}
	for _, s := range shares {
		regions[s.Region] = true
	}
	for _, want := range []string{trace.RegionCluster, trace.RegionThresholdC, trace.RegionMinimizer, trace.RegionPostproc} {
		if !regions[want] {
			t.Errorf("region %q missing from trace", want)
		}
	}
}

func TestMapWithProbe(t *testing.T) {
	b := testBundle(t, 0.02)
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	h := counters.NewDefaultHierarchy()
	if _, err := Map(ix, b.Reads, Options{Threads: 1, Probe: h}); err != nil {
		t.Fatal(err)
	}
	c := h.Snapshot(counters.DefaultCycleModel)
	if c.Instr == 0 || c.L1DA == 0 {
		t.Errorf("probe recorded nothing: %+v", c)
	}
	// Probe must be dropped on multithreaded runs.
	h2 := counters.NewDefaultHierarchy()
	if _, err := Map(ix, b.Reads, Options{Threads: 4, Probe: h2}); err != nil {
		t.Fatal(err)
	}
	if c2 := h2.Snapshot(counters.DefaultCycleModel); c2.Instr != 0 {
		t.Error("multithreaded run drove the probe")
	}
}

func TestMapNilIndexes(t *testing.T) {
	if _, err := Map(nil, nil, Options{}); err == nil {
		t.Error("nil indexes accepted")
	}
}

func TestPostprocessUnmapped(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end path already covered threaded; skipped in -short race runs")
	}
	b := testBundle(t, 0.02)
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	// A poly-A read (absent from any haplotype at this length) must come
	// back unmapped with zero mapping quality.
	garbage := dna.Read{Name: "garbage", Seq: make(dna.Sequence, 148), Fragment: -1}
	res, err := Map(ix, []dna.Read{garbage}, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	al := res.Alignments[0]
	if al.Mapped {
		t.Errorf("garbage read mapped: %+v", al)
	}
	if al.MappingQuality != 0 {
		t.Errorf("unmapped read has mapq %d", al.MappingQuality)
	}
}
