package giraffe

import (
	"errors"
	"math"

	"repro/internal/distindex"
	"repro/internal/dna"
)

// FragmentModel is the fragment-length distribution Giraffe estimates from
// the first batches of confidently mapped pairs and then uses to score pair
// consistency and drive rescue. Mean and standard deviation are computed
// over the backbone gaps of uniquely mapped, opposite-strand pairs.
type FragmentModel struct {
	Mean   float64
	StdDev float64
	// Samples is the number of pairs the estimate is based on.
	Samples int
}

// minFragmentSamples is the minimum pair count for a usable estimate.
const minFragmentSamples = 16

// ErrTooFewPairs reports an estimate attempted from too few mapped pairs.
var ErrTooFewPairs = errors.New("giraffe: too few confidently mapped pairs for a fragment model")

// EstimateFragmentModel derives the model from a completed mapping run:
// for every fragment whose two ends mapped confidently (mapq above the
// floor) on opposite strands, the backbone distance between the two start
// positions plus one read length approximates the fragment span.
func EstimateFragmentModel(ix *Indexes, reads []dna.Read, res *Result, minMapQ int) (FragmentModel, error) {
	dist := distindex.New(ix.File.Graph)
	type end struct {
		idx int
		ok  bool
	}
	firsts := map[int]end{}
	var gaps []float64
	for i := range reads {
		r := &reads[i]
		if !r.Paired() {
			continue
		}
		if r.End == 0 {
			firsts[r.Fragment] = end{idx: i, ok: true}
			continue
		}
		f, ok := firsts[r.Fragment]
		if !ok || !f.ok {
			continue
		}
		a1, a2 := &res.Alignments[f.idx], &res.Alignments[i]
		if !a1.Mapped || !a2.Mapped ||
			a1.MappingQuality < minMapQ || a2.MappingQuality < minMapQ {
			continue
		}
		if a1.Best.Rev == a2.Best.Rev {
			continue // concordant pairs map to opposite strands
		}
		gap := dist.BackboneDistance(a1.Best.StartPos, a2.Best.StartPos)
		// The fragment spans from the leftmost start through the rightmost
		// read end; approximate with gap + read length.
		span := float64(gap + len(reads[i].Seq))
		gaps = append(gaps, span)
	}
	if len(gaps) < minFragmentSamples {
		return FragmentModel{}, ErrTooFewPairs
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	var ss float64
	for _, g := range gaps {
		ss += (g - mean) * (g - mean)
	}
	return FragmentModel{
		Mean:    mean,
		StdDev:  math.Sqrt(ss / float64(len(gaps)-1)),
		Samples: len(gaps),
	}, nil
}

// RescueParamsFrom converts the model into rescue parameters: the predicted
// fragment length with a ±4σ window (clamped to at least one read length).
func (m FragmentModel) RescueParamsFrom(readLen int) RescueParams {
	window := int(4 * m.StdDev)
	if window < readLen {
		window = readLen
	}
	return RescueParams{
		FragmentLen: int(math.Round(m.Mean)),
		Window:      window,
	}
}

// Consistent reports whether a pair gap (bases) is within k standard
// deviations of the model mean.
func (m FragmentModel) Consistent(span int, k float64) bool {
	if m.StdDev == 0 {
		return span == int(math.Round(m.Mean))
	}
	return math.Abs(float64(span)-m.Mean) <= k*m.StdDev
}
