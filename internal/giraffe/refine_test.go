package giraffe

import (
	"testing"

	"repro/internal/dna"
	"repro/internal/workload"
)

// TestRefinementRecoversIndelRead plants a read with a small insertion: the
// gapless extension stops at the indel, and the alignment phase must lift
// the refined score above the raw extension score.
func TestRefinementRecoversIndelRead(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end path already covered threaded; skipped in -short race runs")
	}
	b, err := workload.Generate(workload.AHuman().Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	// Cut a read and insert 2 bases mid-way: gapless coverage breaks there.
	src := b.HapSeqs[0][2000:2148]
	read := append(src[:80].Clone(), dna.T, dna.T)
	read = append(read, src[80:146]...)
	reads := []dna.Read{{Name: "indel", Seq: read, Fragment: -1}}
	res, err := Map(ix, reads, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	al := res.Alignments[0]
	if !al.Mapped {
		t.Fatal("indel read unmapped")
	}
	if int(al.Best.Len()) >= len(read) {
		t.Skip("gapless extension unexpectedly covered the indel")
	}
	if al.RefinedScore <= al.Best.Score {
		t.Errorf("refined score %d did not improve on extension score %d",
			al.RefinedScore, al.Best.Score)
	}
}

// TestRefinementFullCoverageIdentity checks that full-coverage alignments
// keep RefinedScore == Best.Score.
func TestRefinementFullCoverageIdentity(t *testing.T) {
	b, err := workload.Generate(workload.AHuman().Scaled(0.03))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(ix, b.Reads, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i, al := range res.Alignments {
		if !al.Mapped {
			continue
		}
		if int(al.Best.Len()) == b.Reads[i].Len() {
			checked++
			if al.RefinedScore != al.Best.Score {
				t.Fatalf("read %d: full coverage but refined %d != %d",
					i, al.RefinedScore, al.Best.Score)
			}
		} else if al.RefinedScore < al.Best.Score {
			t.Fatalf("read %d: refinement lowered the score", i)
		}
	}
	if checked == 0 {
		t.Error("no full-coverage alignments to check")
	}
}

// TestRefinementDoesNotTouchExtensions ensures the validation data is
// untouched by the alignment phase.
func TestRefinementDoesNotTouchExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end path already covered threaded; skipped in -short race runs")
	}
	b, err := workload.Generate(workload.AHuman().Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndexes(b.GBZ())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(ix, b.Reads, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Extensions are score-sorted kernel outputs; the refinement must not
	// reorder or rescore them.
	for i, exts := range res.Extensions {
		for j := 1; j < len(exts); j++ {
			if exts[j].Score > exts[j-1].Score {
				t.Fatalf("read %d: extensions reordered", i)
			}
		}
	}
}
