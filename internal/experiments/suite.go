// Package experiments regenerates every table and figure of the miniGiraffe
// paper's evaluation (the per-experiment index lives in DESIGN.md). Each
// experiment prints the same rows/series the paper reports and returns its
// data for tests and benchmarks. Absolute numbers differ from the paper —
// the substrate here is a synthetic scaled-down workload and the four
// servers are analytic models — but the shapes (who wins, by what rough
// factor, where crossovers and plateaus fall) are the reproduction target.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/gbz"
	"repro/internal/giraffe"
	"repro/internal/obs"
	"repro/internal/seeds"
	"repro/internal/workload"
)

// Config parameterises a suite run.
type Config struct {
	// Scale multiplies every input set's read count (1.0 = the scaled
	// defaults of package workload, which already stand in for the paper's
	// full datasets).
	Scale float64
	// Threads used for locally measured parallel runs.
	Threads int
	// Repeats per measured point (the paper ran three).
	Repeats int
	// Out receives the printed tables; defaults to io.Discard when nil.
	Out io.Writer
	// Obs, when non-nil, receives kernel and scheduler metrics from the
	// multi-threaded measurement runs (the single-thread probe runs stay
	// uninstrumented to keep the hardware-counter model pure). Lets
	// benchreport archive a metric series for the whole report run.
	Obs *obs.Registry
}

func (c Config) normalize() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Repeats < 1 {
		c.Repeats = 1
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// Suite caches generated bundles and captured seeds across experiments so a
// full report run generates each input set once.
type Suite struct {
	cfg      Config
	bundles  map[string]*workload.Bundle
	captured map[string][]seeds.ReadSeeds
	serial   map[string]float64 // measured serial proxy seconds per input
}

// NewSuite creates a suite.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		cfg:      cfg.normalize(),
		bundles:  make(map[string]*workload.Bundle),
		captured: make(map[string][]seeds.ReadSeeds),
		serial:   make(map[string]float64),
	}
}

// Config returns the normalised configuration.
func (s *Suite) Config() Config { return s.cfg }

// Bundle generates (or returns the cached) input set.
func (s *Suite) Bundle(spec workload.Spec) (*workload.Bundle, error) {
	if b, ok := s.bundles[spec.Name]; ok {
		return b, nil
	}
	b, err := workload.Generate(spec.Scaled(s.cfg.Scale))
	if err != nil {
		return nil, fmt.Errorf("experiments: generating %s: %w", spec.Name, err)
	}
	s.bundles[spec.Name] = b
	return b, nil
}

// Captured returns the cached captured-seed records for the input set.
func (s *Suite) Captured(spec workload.Spec) (*workload.Bundle, []seeds.ReadSeeds, error) {
	b, err := s.Bundle(spec)
	if err != nil {
		return nil, nil, err
	}
	if recs, ok := s.captured[spec.Name]; ok {
		return b, recs, nil
	}
	recs, err := b.CaptureSeeds()
	if err != nil {
		return nil, nil, err
	}
	s.captured[spec.Name] = recs
	return b, recs, nil
}

// GBZ returns the input set's container file value.
func (s *Suite) GBZ(spec workload.Spec) (*gbz.File, error) {
	b, err := s.Bundle(spec)
	if err != nil {
		return nil, err
	}
	return b.GBZ(), nil
}

// Indexes builds the parent's query indexes for the input set.
func (s *Suite) Indexes(spec workload.Spec) (*giraffe.Indexes, error) {
	f, err := s.GBZ(spec)
	if err != nil {
		return nil, err
	}
	return giraffe.BuildIndexes(f)
}

// printf writes to the configured output.
func (s *Suite) printf(format string, args ...interface{}) {
	fmt.Fprintf(s.cfg.Out, format, args...)
}

// section prints an experiment header.
func (s *Suite) section(title string) {
	s.printf("\n== %s ==\n", title)
}

// secs formats a duration in seconds.
func secs(d time.Duration) float64 { return d.Seconds() }
