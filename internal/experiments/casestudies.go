package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// serialProxySeconds measures (and caches) the proxy's single-thread
// makespan for an input set — the serial reference the machine models scale.
func (s *Suite) serialProxySeconds(spec workload.Spec) (float64, error) {
	if t, ok := s.serial[spec.Name]; ok {
		return t, nil
	}
	b, recs, err := s.Captured(spec)
	if err != nil {
		return 0, err
	}
	best := math.Inf(1)
	for rep := 0; rep < s.cfg.Repeats; rep++ {
		res, err := core.Run(b.GBZ(), recs, core.Options{Threads: 1})
		if err != nil {
			return 0, err
		}
		if t := secs(res.Makespan); t < best {
			best = t
		}
	}
	s.serial[spec.Name] = best
	return best, nil
}

// Figure5Point is one (input, machine, threads) scalability sample.
type Figure5Point struct {
	Input   string
	Machine string
	Threads int
	Seconds float64
	Speedup float64
	OOM     bool
}

// Figure5 reproduces the proxy's parallel scalability on the four modelled
// systems: serial proxy time measured locally, thread sweeps projected per
// machine. chi-arm and chi-intel report OOM for D-HPRC, as in the paper.
func (s *Suite) Figure5() ([]Figure5Point, error) {
	var out []Figure5Point
	s.section("Figure 5: miniGiraffe parallel scalability on four systems")
	for _, spec := range workload.AllSpecs() {
		serial, err := s.serialProxySeconds(spec)
		if err != nil {
			return nil, err
		}
		b, err := s.Bundle(spec)
		if err != nil {
			return nil, err
		}
		for _, m := range machine.All() {
			if !m.CanHold(spec.MemGB) {
				out = append(out, Figure5Point{Input: spec.Name, Machine: m.Name, OOM: true})
				s.printf("%-8s %-12s OOM (needs %.0f GB, has %d GB)\n", spec.Name, m.Name, spec.MemGB, m.DRAMGB)
				continue
			}
			w := machine.Workload{
				SerialRefSec: serial,
				Reads:        len(b.Reads),
				WorkingSetMB: b.WorkingSetMB(256, m.MaxThreads()),
				MemGB:        spec.MemGB,
			}
			base, err := m.SimTime(w, 1)
			if err != nil {
				return nil, err
			}
			s.printf("%-8s %-12s", spec.Name, m.Name)
			for th := 1; th <= m.MaxThreads(); th *= 2 {
				t, err := m.SimTime(w, th)
				if err != nil {
					return nil, err
				}
				p := Figure5Point{
					Input: spec.Name, Machine: m.Name, Threads: th,
					Seconds: t, Speedup: base / t,
				}
				out = append(out, p)
				s.printf(" %d:%.1fx", th, p.Speedup)
			}
			s.printf("\n")
		}
	}
	return out, nil
}

// Table7Row is one input set's fastest projected time per system.
type Table7Row struct {
	Input   string
	Seconds map[string]float64 // machine name → fastest seconds; absent = OOM
}

// Table7 reproduces the fastest-execution-time table. The paper's ordering
// to reproduce: local-amd fastest everywhere, chi-arm slowest, the 256 GB
// machines missing D-HPRC.
func (s *Suite) Table7() ([]Table7Row, error) {
	var rows []Table7Row
	s.section("Table VII: fastest execution times (seconds) per system")
	s.printf("%-8s", "input")
	for _, m := range machine.All() {
		s.printf(" %12s", m.Name)
	}
	s.printf("\n")
	for _, spec := range workload.AllSpecs() {
		serial, err := s.serialProxySeconds(spec)
		if err != nil {
			return nil, err
		}
		b, err := s.Bundle(spec)
		if err != nil {
			return nil, err
		}
		row := Table7Row{Input: spec.Name, Seconds: map[string]float64{}}
		s.printf("%-8s", spec.Name)
		for _, m := range machine.All() {
			if !m.CanHold(spec.MemGB) {
				s.printf(" %12s", "—")
				continue
			}
			w := machine.Workload{
				SerialRefSec: serial,
				Reads:        len(b.Reads),
				WorkingSetMB: b.WorkingSetMB(256, m.MaxThreads()),
				MemGB:        spec.MemGB,
			}
			best := math.Inf(1)
			for th := 1; th <= m.MaxThreads(); th++ {
				t, err := m.SimTime(w, th)
				if err != nil {
					return nil, err
				}
				if t < best {
					best = t
				}
			}
			row.Seconds[m.Name] = best
			s.printf(" %12.3f", best)
		}
		s.printf("\n")
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure6Point is one capacity-sweep sample.
type Figure6Point struct {
	Scheduler sched.Kind
	Capacity  int
	Seconds   float64
	Speedup   float64 // vs capacity 0 (no caching), same scheduler
}

// Figure6 reproduces the preliminary CachedGBWT-capacity study: C-HPRC on
// the local-intel model, capacities 0..16384, both schedulers, speedup
// relative to no caching. The paper found maxima at ≤4096 with degradation
// beyond.
func (s *Suite) Figure6() ([]Figure6Point, error) {
	spec := workload.CHPRC()
	b, recs, err := s.Captured(spec)
	if err != nil {
		return nil, err
	}
	m := machine.LocalIntel
	capacities := []int{0, 256, 512, 1024, 2048, 4096, 8192, 16384}
	var out []Figure6Point
	s.section("Figure 6: speedup vs initial CachedGBWT capacity (C-HPRC, local-intel model)")
	for _, kind := range []sched.Kind{sched.Dynamic, sched.WorkStealing} {
		var baseline float64
		s.printf("%-16s", kind)
		for _, capacity := range capacities {
			cc := capacity
			if cc == 0 {
				cc = -1 // core: negative disables caching
			}
			best := math.Inf(1)
			for rep := 0; rep < s.cfg.Repeats; rep++ {
				res, err := core.Run(b.GBZ(), recs, core.Options{
					Threads: s.cfg.Threads, Scheduler: kind, CacheCapacity: cc,
				})
				if err != nil {
					return nil, err
				}
				if t := secs(res.Makespan); t < best {
					best = t
				}
			}
			// Project onto local-intel with the capacity's working set so
			// oversized caches pay the L3 penalty, as observed on the real
			// machine.
			w := machine.Workload{
				SerialRefSec: best * localParallelism(s.cfg.Threads),
				Reads:        len(recs),
				WorkingSetMB: b.WorkingSetMB(capacity, m.MaxThreads()),
				MemGB:        spec.MemGB,
			}
			t, err := m.SimTime(w, m.MaxThreads())
			if err != nil {
				return nil, err
			}
			p := Figure6Point{Scheduler: kind, Capacity: capacity, Seconds: t}
			if capacity == 0 {
				baseline = t
				p.Speedup = 1
			} else if t > 0 {
				p.Speedup = baseline / t
			}
			out = append(out, p)
			s.printf(" cc%d:%.2fx", capacity, p.Speedup)
		}
		s.printf("\n")
	}
	return out, nil
}

// localParallelism estimates the effective speedup of the local measured
// run, converting a parallel measurement back to a serial reference. Worker
// goroutines beyond the OS-visible CPU count add no real parallelism.
func localParallelism(threads int) float64 {
	n := runtime.NumCPU()
	if threads < n {
		n = threads
	}
	if n < 1 {
		n = 1
	}
	return float64(n)
}

// TuningResult bundles one input set's grid and its per-machine projections.
type TuningResult struct {
	Input string
	Grid  *autotune.Grid
	// PerMachine maps machine name → projection.
	PerMachine map[string]*autotune.Projection
}

// RunTuning executes the §VII-B autotuning sweep for one input set on its
// 10% subsample (as the paper does) and projects it onto all four machines.
func (s *Suite) RunTuning(spec workload.Spec, space autotune.Space) (*TuningResult, error) {
	b, recs, err := s.Captured(spec)
	if err != nil {
		return nil, err
	}
	sub := recs
	if n := len(recs) / 10; n > 0 {
		sub = recs[:n]
	}
	grid, err := autotune.RunGrid(b.GBZ(), sub, s.cfg.Threads, space, s.cfg.Repeats, nil)
	if err != nil {
		return nil, err
	}
	grid.Input = spec.Name
	tr := &TuningResult{Input: spec.Name, Grid: grid, PerMachine: map[string]*autotune.Projection{}}
	for _, m := range machine.All() {
		// The 10% subsample fits everywhere, as in the paper.
		subBundle := *b
		subBundle.Spec.MemGB = spec.MemGB / 10
		p, err := autotune.Project(grid, &subBundle, m, localParallelism(s.cfg.Threads))
		if err != nil {
			return nil, err
		}
		tr.PerMachine[m.Name] = p
	}
	return tr, nil
}

// Figure7Cell is the tuned-vs-default comparison for one (input, machine).
type Figure7Cell struct {
	Input, Machine string
	BestSeconds    float64
	DefaultSeconds float64
	Speedup        float64
	BestCombo      autotune.Combo
}

// Figure7AndTable8 reproduces the headline tuning study: for every input set
// and machine, the best configuration versus the defaults (Fig. 7) and the
// winning parameters (Table VIII), plus per-input geometric means and the
// overall headline (paper: up to 3.32×, geomean 1.15×).
func (s *Suite) Figure7AndTable8(space autotune.Space) ([]Figure7Cell, error) {
	var cells []Figure7Cell
	s.section("Figure 7 / Table VIII: best tuning vs defaults per input × machine")
	s.printf("%-8s %-12s %12s %12s %8s   %s\n", "input", "machine", "default(s)", "best(s)", "speedup", "best parameters")
	for _, spec := range workload.AllSpecs() {
		tr, err := s.RunTuning(spec, space)
		if err != nil {
			return nil, err
		}
		defIdx, err := tr.Grid.DefaultIndex()
		if err != nil {
			return nil, err
		}
		for _, m := range machine.All() {
			p := tr.PerMachine[m.Name]
			if p.OOM {
				// The paper's 10% subsample shrank D to fit everywhere; an
				// OOM here would mean the subsample logic broke.
				return nil, fmt.Errorf("experiments: unexpected OOM for %s on %s", spec.Name, m.Name)
			}
			bestIdx, err := p.BestIndex()
			if err != nil {
				return nil, err
			}
			cell := Figure7Cell{
				Input: spec.Name, Machine: m.Name,
				BestSeconds:    p.Seconds[bestIdx],
				DefaultSeconds: p.Seconds[defIdx],
				BestCombo:      tr.Grid.Measurements[bestIdx].Combo,
			}
			if cell.BestSeconds > 0 {
				cell.Speedup = cell.DefaultSeconds / cell.BestSeconds
			}
			cells = append(cells, cell)
			s.printf("%-8s %-12s %12.3f %12.3f %7.2fx   %s\n",
				cell.Input, cell.Machine, cell.DefaultSeconds, cell.BestSeconds, cell.Speedup, cell.BestCombo)
		}
	}
	// Per-input geomeans and the overall headline.
	s.printf("\nper-input geometric-mean speedups (paper: 1.36, 1.07, 1.10, 1.11):\n")
	var all []float64
	maxSp := 0.0
	for _, spec := range workload.AllSpecs() {
		var sp []float64
		for _, c := range cells {
			if c.Input == spec.Name {
				sp = append(sp, c.Speedup)
				all = append(all, c.Speedup)
				if c.Speedup > maxSp {
					maxSp = c.Speedup
				}
			}
		}
		g, err := stats.GeoMean(sp)
		if err != nil {
			return nil, err
		}
		s.printf("  %-8s %.2fx\n", spec.Name, g)
	}
	overall, err := stats.GeoMean(all)
	if err != nil {
		return nil, err
	}
	s.printf("overall: geomean %.2fx, max %.2fx (paper: 1.15x geomean, 3.32x max)\n", overall, maxSp)
	return cells, nil
}

// Figure8 reproduces the makespan heat map over every parameter combination
// for D-HPRC on the chi-intel model, and the §VII-B ANOVA over the same
// grid. It writes the heat map CSV to w when non-nil.
func (s *Suite) Figure8(space autotune.Space, w io.Writer) (map[string]stats.ANOVA, error) {
	spec := workload.DHPRC()
	tr, err := s.RunTuning(spec, space)
	if err != nil {
		return nil, err
	}
	proj := tr.PerMachine[machine.ChiIntel.Name]
	s.section("Figure 8: makespan heat map, D-HPRC on chi-intel")
	if w != nil {
		if err := autotune.WriteHeatmapCSV(w, tr.Grid, proj, space); err != nil {
			return nil, err
		}
	}
	// Best/worst spread and default-vs-worst, the paper's observations.
	bestIdx, err := proj.BestIndex()
	if err != nil {
		return nil, err
	}
	worst := bestIdx
	for i, sec := range proj.Seconds {
		if sec > proj.Seconds[worst] {
			worst = i
		}
	}
	defIdx, err := tr.Grid.DefaultIndex()
	if err != nil {
		return nil, err
	}
	s.printf("best=%.3fs (%s) worst=%.3fs (%s) default=%.3fs; choosing best avoids a %.2fx slowdown (paper: 1.76x)\n",
		proj.Seconds[bestIdx], tr.Grid.Measurements[bestIdx].Combo,
		proj.Seconds[worst], tr.Grid.Measurements[worst].Combo,
		proj.Seconds[defIdx],
		proj.Seconds[worst]/proj.Seconds[bestIdx])

	// ANOVA on the projected grid.
	obs := make([]stats.Observation, 0, len(tr.Grid.Measurements))
	for i, m := range tr.Grid.Measurements {
		obs = append(obs, stats.Observation{
			Levels: map[string]string{
				"scheduler": m.Scheduler.String(),
				"batch":     fmt.Sprint(m.BatchSize),
				"capacity":  fmt.Sprint(m.Capacity),
			},
			Value: proj.Seconds[i],
		})
	}
	out := map[string]stats.ANOVA{}
	s.printf("ANOVA on the D-HPRC @ chi-intel grid (paper: capacity p=0.047, batch p=0.878, scheduler p=0.859):\n")
	for _, factor := range []string{"capacity", "batch", "scheduler"} {
		a, err := stats.FactorANOVA(obs, factor)
		if err != nil {
			return nil, err
		}
		out[factor] = a
		s.printf("  %-10s F=%.3f p=%.3f\n", factor, a.F, a.P)
	}
	return out, nil
}
