package experiments

import (
	"fmt"
	"io"

	"repro/internal/plot"
)

// Figure5SVG renders the Figure 5 scalability curves of one input set (all
// four machines plus the ideal line) as SVG.
func Figure5SVG(points []Figure5Point, input string, w io.Writer) error {
	byMachine := map[string]*plot.Series{}
	var order []string
	maxThreads := 0.0
	for _, p := range points {
		if p.Input != input || p.OOM {
			continue
		}
		s, ok := byMachine[p.Machine]
		if !ok {
			s = &plot.Series{Name: p.Machine}
			byMachine[p.Machine] = s
			order = append(order, p.Machine)
		}
		s.X = append(s.X, float64(p.Threads))
		s.Y = append(s.Y, p.Speedup)
		if float64(p.Threads) > maxThreads {
			maxThreads = float64(p.Threads)
		}
	}
	if len(order) == 0 {
		return fmt.Errorf("experiments: no Figure 5 points for %s", input)
	}
	chart := plot.Chart{
		Title:  fmt.Sprintf("Figure 5: %s scalability", input),
		XLabel: "threads",
		YLabel: "speedup",
	}
	for _, name := range order {
		chart.Series = append(chart.Series, *byMachine[name])
	}
	// Ideal line, as in the paper's dotted diagonal.
	chart.Series = append(chart.Series, plot.Series{
		Name: "ideal", Dashed: true,
		X: []float64{1, maxThreads}, Y: []float64{1, maxThreads},
	})
	return chart.WriteLineSVG(w)
}

// Figure6SVG renders the capacity sweep as SVG.
func Figure6SVG(points []Figure6Point, w io.Writer) error {
	bySched := map[string]*plot.Series{}
	var order []string
	for _, p := range points {
		name := p.Scheduler.String()
		s, ok := bySched[name]
		if !ok {
			s = &plot.Series{Name: name}
			bySched[name] = s
			order = append(order, name)
		}
		s.X = append(s.X, float64(p.Capacity))
		s.Y = append(s.Y, p.Speedup)
	}
	if len(order) == 0 {
		return fmt.Errorf("experiments: no Figure 6 points")
	}
	chart := plot.Chart{
		Title:  "Figure 6: speedup vs initial CachedGBWT capacity (C-HPRC)",
		XLabel: "initial capacity",
		YLabel: "speedup vs no cache",
	}
	for _, name := range order {
		chart.Series = append(chart.Series, *bySched[name])
	}
	return chart.WriteLineSVG(w)
}

// Figure7SVG renders the tuned-vs-default makespan bars, one group per
// (input, machine) cell, as SVG.
func Figure7SVG(cells []Figure7Cell, w io.Writer) error {
	if len(cells) == 0 {
		return fmt.Errorf("experiments: no Figure 7 cells")
	}
	chart := plot.Chart{
		Title:  "Figure 7: best tuning vs defaults",
		XLabel: "input × machine",
		YLabel: "makespan (s)",
		Width:  960,
	}
	for i, c := range cells {
		bar := plot.Bar{
			Label:  fmt.Sprintf("%s@%s", shortInput(c.Input), shortMachine(c.Machine)),
			Values: []float64{c.DefaultSeconds, c.BestSeconds},
		}
		if i == 0 {
			bar.Groups = []string{"default", "tuned"}
		}
		chart.Bars = append(chart.Bars, bar)
	}
	return chart.WriteBarSVG(w)
}

func shortInput(s string) string {
	if len(s) > 0 {
		return s[:1]
	}
	return s
}

func shortMachine(s string) string {
	switch s {
	case "local-intel":
		return "li"
	case "local-amd":
		return "la"
	case "chi-arm":
		return "ca"
	case "chi-intel":
		return "ci"
	}
	return s
}
