package experiments

import (
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/counters"
	"repro/internal/giraffe"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Table1Row compares parent and proxy code sizes.
type Table1Row struct {
	System    string
	Lines     int
	Files     int
	DepCounts int
}

// Table1 reproduces the paper's Table I code-size comparison: the paper's
// reported numbers for the C++ originals plus this repository's measured
// counts for its parent emulator and proxy. root is the repository root (""
// uses the working directory).
func (s *Suite) Table1(root string) ([]Table1Row, error) {
	if root == "" {
		root = "."
	}
	countDir := func(dirs ...string) (lines, files int, err error) {
		for _, d := range dirs {
			err = filepath.Walk(filepath.Join(root, d), func(path string, info os.FileInfo, err error) error {
				if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
					return err
				}
				data, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				files++
				lines += strings.Count(string(data), "\n")
				return nil
			})
			if err != nil {
				return 0, 0, err
			}
		}
		return lines, files, nil
	}
	imports := func(dirs ...string) (int, error) {
		fset := token.NewFileSet()
		set := map[string]bool{}
		for _, d := range dirs {
			err := filepath.Walk(filepath.Join(root, d), func(path string, info os.FileInfo, err error) error {
				if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
					return err
				}
				f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
				if err != nil {
					return err
				}
				for _, imp := range f.Imports {
					p := strings.Trim(imp.Path.Value, `"`)
					if !strings.HasPrefix(p, "repro/") {
						set[p] = true
					}
				}
				return nil
			})
			if err != nil {
				return 0, err
			}
		}
		return len(set), nil
	}

	// Parent emulator: the full pipeline and every substrate. Proxy: the
	// critical functions and their direct inputs — matching the paper's
	// framing (the proxy is ~2% of the parent's code base).
	parentDirs := []string{"internal"}
	proxyDirs := []string{"internal/core", "internal/cluster", "internal/extend"}
	pl, pf, err := countDir(parentDirs...)
	if err != nil {
		return nil, err
	}
	ml, mf, err := countDir(proxyDirs...)
	if err != nil {
		return nil, err
	}
	pdeps, err := imports(parentDirs...)
	if err != nil {
		return nil, err
	}
	mdeps, err := imports(proxyDirs...)
	if err != nil {
		return nil, err
	}
	rows := []Table1Row{
		{System: "Giraffe (paper)", Lines: 50000, Files: 350, DepCounts: 50},
		{System: "miniGiraffe (paper)", Lines: 1000, Files: 2, DepCounts: 3},
		{System: "parent emulator (this repo)", Lines: pl, Files: pf, DepCounts: pdeps},
		{System: "proxy core (this repo)", Lines: ml, Files: mf, DepCounts: mdeps},
	}
	s.section("Table I: Giraffe vs miniGiraffe code size")
	for _, r := range rows {
		s.printf("%-30s %7d lines %5d files %4d deps\n", r.System, r.Lines, r.Files, r.DepCounts)
	}
	return rows, nil
}

// Figure2 runs the parent on A-human with the paper's 16 threads, recording
// the per-thread region timeline, and writes it as CSV (the Fig. 2 raw
// data). It returns the recorder for inspection.
func (s *Suite) Figure2(csv io.Writer) (*trace.Recorder, error) {
	b, err := s.Bundle(workload.AHuman())
	if err != nil {
		return nil, err
	}
	ix, err := s.Indexes(workload.AHuman())
	if err != nil {
		return nil, err
	}
	const threads = 16
	rec := trace.NewRecorder(threads)
	// Batch small enough that all 16 threads receive work even on the
	// scaled-down read counts.
	batch := len(b.Reads) / (4 * threads)
	if batch < 1 {
		batch = 1
	}
	if _, err := giraffe.Map(ix, b.Reads, giraffe.Options{Threads: threads, BatchSize: batch, Trace: rec}); err != nil {
		return nil, err
	}
	s.section("Figure 2: Giraffe 16-thread region timeline (A-human)")
	busy := 0
	for w := 0; w < rec.Workers(); w++ {
		if len(rec.Spans(w)) > 0 {
			busy++
		}
	}
	s.printf("threads with recorded work: %d/%d, spans: ", busy, threads)
	total := 0
	for w := 0; w < rec.Workers(); w++ {
		total += len(rec.Spans(w))
	}
	s.printf("%d (timeline CSV follows when requested)\n", total)
	if csv != nil {
		if err := rec.WriteTimelineCSV(csv); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// Figure3Row is one input set's per-region share vector.
type Figure3Row struct {
	Input  string
	Shares []trace.RegionShare
}

// Figure3 reproduces the per-region runtime percentages for all input sets,
// excluding I/O and input parsing as the paper does. The paper's headline:
// process_until_threshold_c dominates (up to ~52% of computation),
// cluster_seeds second.
func (s *Suite) Figure3() ([]Figure3Row, error) {
	var rows []Figure3Row
	s.section("Figure 3: per-region share of runtime (excluding IO/parse)")
	for _, spec := range workload.AllSpecs() {
		b, err := s.Bundle(spec)
		if err != nil {
			return nil, err
		}
		ix, err := s.Indexes(spec)
		if err != nil {
			return nil, err
		}
		rec := trace.NewRecorder(s.cfg.Threads)
		if _, err := giraffe.Map(ix, b.Reads, giraffe.Options{Threads: s.cfg.Threads, Trace: rec}); err != nil {
			return nil, err
		}
		shares := rec.Shares(trace.RegionIO, trace.RegionParse)
		rows = append(rows, Figure3Row{Input: spec.Name, Shares: shares})
		s.printf("%-8s", spec.Name)
		for _, sh := range shares {
			s.printf("  %s=%.1f%%", sh.Region, sh.Percent)
		}
		s.printf("\n")
	}
	return rows, nil
}

// Figure4Point is one (input, threads) strong-scaling sample of the parent's
// extension stage.
type Figure4Point struct {
	Input   string
	Threads int
	Seconds float64
	Speedup float64
}

// Figure4 reproduces Giraffe's strong scaling of the extension (Fig. 4):
// the serial mapping time is measured locally, and the thread sweep is
// projected through the local-intel model (the machine the paper used),
// since this host cannot scale natively. Large inputs keep scaling to 48
// threads; the small A-human plateaus.
func (s *Suite) Figure4(threadSweep []int) ([]Figure4Point, error) {
	if len(threadSweep) == 0 {
		threadSweep = []int{1, 2, 4, 8, 16, 24, 32, 40, 48}
	}
	m := machine.LocalIntel
	var out []Figure4Point
	s.section("Figure 4: Giraffe extension strong scaling (local-intel model)")
	for _, spec := range workload.AllSpecs() {
		b, err := s.Bundle(spec)
		if err != nil {
			return nil, err
		}
		ix, err := s.Indexes(spec)
		if err != nil {
			return nil, err
		}
		res, err := giraffe.Map(ix, b.Reads, giraffe.Options{Threads: 1})
		if err != nil {
			return nil, err
		}
		serial := secs(res.Makespan)
		w := machine.Workload{
			SerialRefSec: serial,
			Reads:        len(b.Reads),
			WorkingSetMB: b.WorkingSetMB(256, 1),
			MemGB:        1, // scaled data always fits
		}
		base, err := m.SimTime(w, 1)
		if err != nil {
			return nil, err
		}
		s.printf("%-8s serial(local)=%.2fs:", spec.Name, serial)
		for _, th := range threadSweep {
			t, err := m.SimTime(w, th)
			if err != nil {
				return nil, err
			}
			p := Figure4Point{Input: spec.Name, Threads: th, Seconds: t, Speedup: base / t}
			out = append(out, p)
			s.printf(" %d:%.1fx", th, p.Speedup)
		}
		s.printf("\n")
	}
	return out, nil
}

// Table4 reproduces the VTune top-down split for A-human via the counter
// model (paper: FE 23.5, BE 22.8, BadSpec 10.2, Retiring 43.4).
func (s *Suite) Table4() (counters.TopDown, error) {
	b, err := s.Bundle(workload.AHuman())
	if err != nil {
		return counters.TopDown{}, err
	}
	ix, err := s.Indexes(workload.AHuman())
	if err != nil {
		return counters.TopDown{}, err
	}
	h := counters.NewDefaultHierarchy()
	if _, err := giraffe.Map(ix, b.Reads, giraffe.Options{Threads: 1, Probe: h}); err != nil {
		return counters.TopDown{}, err
	}
	c := h.Snapshot(counters.DefaultCycleModel)
	td := c.TopDownSplit(counters.DefaultCycleModel)
	s.section("Table IV: top-down microarchitecture split (A-human, modelled)")
	s.printf("front-end=%.1f%% (latency portion modelled) back-end=%.1f%% (memory %.1f%%) bad-spec=%.1f%% retiring=%.1f%%\n",
		td.FrontEnd*100, td.BackEnd*100, td.BackEndMemory*100, td.BadSpec*100, td.Retiring*100)
	s.printf("paper:     front-end=23.5%% back-end=22.8%% (memory 15.6%%) bad-spec=10.2%% retiring=43.4%%\n")
	return td, nil
}
