package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/autotune"
	"repro/internal/sched"
	"repro/internal/workload"
)

// testSuite builds a suite at a tiny scale so the full experiment battery
// runs in seconds.
func testSuite(t testing.TB) (*Suite, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	s := NewSuite(Config{Scale: 0.02, Threads: 2, Repeats: 1, Out: &buf})
	return s, &buf
}

// testSpace is a reduced tuning grid.
func testSpace() autotune.Space {
	return autotune.Space{
		Schedulers: []sched.Kind{sched.Dynamic, sched.WorkStealing},
		BatchSizes: []int{8, 64},
		Capacities: []int{64, 1024},
	}
}

func TestTable1(t *testing.T) {
	s, buf := testSuite(t)
	rows, err := s.Table1("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	repoParent := rows[2]
	repoProxy := rows[3]
	if repoParent.Lines == 0 || repoProxy.Lines == 0 {
		t.Error("zero line counts")
	}
	if repoProxy.Lines >= repoParent.Lines {
		t.Error("proxy not smaller than parent")
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("no header printed")
	}
}

func TestFigure2(t *testing.T) {
	s, _ := testSuite(t)
	var csv bytes.Buffer
	rec, err := s.Figure2(&csv)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Workers() != 16 {
		t.Errorf("workers = %d", rec.Workers())
	}
	if !strings.HasPrefix(csv.String(), "worker,region,") {
		t.Error("no CSV timeline")
	}
}

func TestFigure3(t *testing.T) {
	// Region-share assertions need enough reads per input to rise above
	// scheduling noise (the suite default of 0.02 leaves A-human at 30
	// reads).
	var buf bytes.Buffer
	s := NewSuite(Config{Scale: 0.08, Threads: 2, Repeats: 1, Out: &buf})
	rows, err := s.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// process_until_threshold_c must be a dominant region for every input —
	// the paper's headline characterisation. Under CPU contention the exact
	// ordering of the top regions jitters at test scale, so assert a share
	// floor rather than strict rank (the scale-1.0 experiment shows 45-51%).
	for _, r := range rows {
		if len(r.Shares) == 0 {
			t.Fatalf("%s: no shares", r.Input)
		}
		var thresholdC float64
		for _, sh := range r.Shares {
			if sh.Region == "process_until_threshold_c" {
				thresholdC = sh.Percent
			}
		}
		if thresholdC < 25 {
			t.Errorf("%s: process_until_threshold_c only %.1f%% of runtime", r.Input, thresholdC)
		}
	}
}

func TestFigure4(t *testing.T) {
	s, _ := testSuite(t)
	points, err := s.Figure4([]int{1, 8, 48})
	if err != nil {
		t.Fatal(err)
	}
	// Large inputs scale better at 48 threads than the small A-human.
	speedupAt := func(input string, th int) float64 {
		for _, p := range points {
			if p.Input == input && p.Threads == th {
				return p.Speedup
			}
		}
		t.Fatalf("missing point %s@%d", input, th)
		return 0
	}
	if sA, sD := speedupAt("A-human", 48), speedupAt("D-HPRC", 48); sA >= sD {
		t.Errorf("A-human speedup %.1f not below D-HPRC %.1f", sA, sD)
	}
	if s1 := speedupAt("B-yeast", 1); s1 != 1 {
		t.Errorf("1-thread speedup = %f", s1)
	}
}

func TestTable4(t *testing.T) {
	s, _ := testSuite(t)
	td, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	sum := td.FrontEnd + td.BackEnd + td.BadSpec + td.Retiring
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("top-down sums to %f", sum)
	}
	// Retiring should dominate, as in the paper (43.4%).
	if td.Retiring < td.FrontEnd || td.Retiring < td.BadSpec {
		t.Errorf("retiring %.2f not dominant: %+v", td.Retiring, td)
	}
}

func TestFunctionalValidationAll(t *testing.T) {
	s, buf := testSuite(t)
	reps, err := s.FunctionalValidationAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if !rep.Match() {
			t.Errorf("input %d failed: %s", i, rep)
		}
	}
	if !strings.Contains(buf.String(), "PASS (100% match)") {
		t.Error("no PASS lines printed")
	}
}

func TestTable5(t *testing.T) {
	s, _ := testSuite(t)
	res, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cosine < 0.99 {
		t.Errorf("cosine similarity %.4f below 0.99 (paper: 0.9996)", res.Cosine)
	}
	if res.Proxy.Instr == 0 || res.Parent.Instr == 0 {
		t.Error("zero instruction counts")
	}
	// Instruction counts should be similar (same kernels).
	ratio := float64(res.Proxy.Instr) / float64(res.Parent.Instr)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("instruction ratio %.2f outside [0.8, 1.25]", ratio)
	}
}

func TestTable6(t *testing.T) {
	// Timing comparison needs a larger sample and min-of-N to rise above
	// timer jitter.
	var buf bytes.Buffer
	s := NewSuite(Config{Scale: 0.08, Threads: 2, Repeats: 4, Out: &buf})
	rows, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.ProxySeconds <= 0 || r.ParentSeconds <= 0 {
			t.Errorf("%s: nonpositive times", r.Input)
		}
		// The proxy should be within a modest factor of the parent's
		// critical-function time (paper: ≤8.77%; we allow slack for timer
		// noise at the test's tiny scale).
		if r.PercentDiff < -60 || r.PercentDiff > 60 {
			t.Errorf("%s: %%diff %.1f out of range", r.Input, r.PercentDiff)
		}
	}
}

func TestFigure5AndTable7(t *testing.T) {
	s, _ := testSuite(t)
	points, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	oomCount := 0
	for _, p := range points {
		if p.OOM {
			oomCount++
			if p.Input != "D-HPRC" {
				t.Errorf("unexpected OOM for %s on %s", p.Input, p.Machine)
			}
		}
	}
	if oomCount != 2 {
		t.Errorf("%d OOM entries, want 2 (chi-arm and chi-intel on D)", oomCount)
	}
	rows, err := s.Table7()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		amd, ok := r.Seconds["local-amd"]
		if !ok {
			t.Fatalf("%s: no local-amd entry", r.Input)
		}
		for name, sec := range r.Seconds {
			if sec < amd-1e-12 {
				t.Errorf("%s: %s (%.3f) beats local-amd (%.3f)", r.Input, name, sec, amd)
			}
		}
		if arm, ok := r.Seconds["chi-arm"]; ok {
			for name, sec := range r.Seconds {
				if sec > arm+1e-12 {
					t.Errorf("%s: %s (%.3f) slower than chi-arm (%.3f)", r.Input, name, sec, arm)
				}
			}
		}
	}
}

func TestFigure6(t *testing.T) {
	s, _ := testSuite(t)
	points, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 16 {
		t.Fatalf("%d points, want 16", len(points))
	}
	// Caching must beat no caching for moderate capacities; the largest
	// capacities should not be the best (degradation, as in the paper).
	bySched := map[string][]Figure6Point{}
	for _, p := range points {
		bySched[p.Scheduler.String()] = append(bySched[p.Scheduler.String()], p)
	}
	for kind, ps := range bySched {
		bestCap, bestSp := 0, 0.0
		for _, p := range ps {
			if p.Speedup > bestSp {
				bestSp, bestCap = p.Speedup, p.Capacity
			}
		}
		if bestSp <= 1.0 {
			t.Errorf("%s: caching never beats no-cache (best %.2f)", kind, bestSp)
		}
		if bestCap > 4096 {
			t.Errorf("%s: best capacity %d above 4096 (paper: ≤4096)", kind, bestCap)
		}
	}
}

func TestFigure7AndTable8(t *testing.T) {
	s, buf := testSuite(t)
	cells, err := s.Figure7AndTable8(testSpace())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 16 {
		t.Fatalf("%d cells, want 16 (4 inputs × 4 machines)", len(cells))
	}
	for _, c := range cells {
		if c.Speedup < 1.0-1e-9 {
			t.Errorf("%s @ %s: best (%.3f) slower than default (%.3f)",
				c.Input, c.Machine, c.BestSeconds, c.DefaultSeconds)
		}
	}
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("no geomean summary printed")
	}
}

func TestFigure8(t *testing.T) {
	s, _ := testSuite(t)
	var csv bytes.Buffer
	anova, err := s.Figure8(testSpace(), &csv)
	if err != nil {
		t.Fatal(err)
	}
	for _, factor := range []string{"capacity", "batch", "scheduler"} {
		a, ok := anova[factor]
		if !ok {
			t.Fatalf("missing ANOVA factor %s", factor)
		}
		if a.P < 0 || a.P > 1 {
			t.Errorf("%s: p=%f", factor, a.P)
		}
	}
	if !strings.HasPrefix(csv.String(), "scheduler,batch,") {
		t.Error("no heat map CSV")
	}
}

func TestSuiteCaching(t *testing.T) {
	s, _ := testSuite(t)
	a1, err := s.Bundle(workload.AHuman())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Bundle(workload.AHuman())
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("bundle not cached")
	}
}

func TestFigureSVGs(t *testing.T) {
	s, _ := testSuite(t)
	points5, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Figure5SVG(points5, "B-yeast", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") || !strings.Contains(buf.String(), "local-amd") {
		t.Error("Figure 5 SVG malformed")
	}
	if err := Figure5SVG(points5, "nonexistent", &buf); err == nil {
		t.Error("unknown input accepted")
	}

	points6, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Figure6SVG(points6, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "work-stealing") {
		t.Error("Figure 6 SVG missing scheduler series")
	}

	cells, err := s.Figure7AndTable8(testSpace())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Figure7SVG(cells, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tuned") {
		t.Error("Figure 7 SVG missing legend")
	}
	if err := Figure7SVG(nil, &buf); err == nil {
		t.Error("empty cells accepted")
	}
}
