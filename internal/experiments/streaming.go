package experiments

import (
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/extend"
	"repro/internal/fastq"
	"repro/internal/giraffe"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/seeds"
	"repro/internal/workload"
)

// StreamingRow compares one ingest mode's makespan on one input set.
type StreamingRow struct {
	Input string
	// Mode is "batch", "capture-file", or "fastq-stream".
	Mode    string
	Seconds float64
	// ReadsPerSec is the throughput over the makespan.
	ReadsPerSec float64
	// IngestMeanMs / BatchMeanMs are the pipeline's per-batch ingest-stage
	// and ingest→emit latencies (zero for batch mode, which has no stages).
	IngestMeanMs float64
	BatchMeanMs  float64
}

// discardEmitter drops mapped records; the comparison measures makespan,
// not output I/O.
type discardEmitter struct{}

func (discardEmitter) Emit(*seeds.ReadSeeds, []extend.Extension) error { return nil }

// StreamingComparison measures the three ways a workload reaches the
// critical functions — the batch proxy over materialized records, the
// pipeline over a captured-seed file, and the pipeline over the streaming
// ExtractSource fed directly from FASTQ (no capture file at all) — and
// reports their makespans side by side. The FASTQ leg folds the parent's
// preprocessing into the ingest stage, so its ingest latency column shows
// what seed extraction costs when it hides behind mapping.
func (s *Suite) StreamingComparison() ([]StreamingRow, error) {
	s.section("Streaming ingest comparison: batch vs capture-file vs fastq-stream")
	s.printf("%-8s %-14s %10s %12s %12s %12s\n",
		"input", "mode", "time (s)", "reads/s", "ingest (ms)", "batch (ms)")
	dir, err := os.MkdirTemp("", "minigiraffe-streaming")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var rows []StreamingRow
	for _, spec := range []workload.Spec{workload.AHuman(), workload.BYeast()} {
		b, recs, err := s.Captured(spec)
		if err != nil {
			return nil, err
		}
		ix, err := s.Indexes(spec)
		if err != nil {
			return nil, err
		}
		m, err := core.NewMapperFromIndexes(b.GBZ(), ix.Dist, ix.Bi, core.Options{Threads: s.cfg.Threads, Obs: s.cfg.Obs})
		if err != nil {
			return nil, err
		}
		capturePath := filepath.Join(dir, spec.Name+"-seeds.bin")
		if err := seeds.WriteFile(capturePath, recs); err != nil {
			return nil, err
		}
		fastqPath := filepath.Join(dir, spec.Name+".fq")
		if err := fastq.WriteFile(fastqPath, b.Reads); err != nil {
			return nil, err
		}

		var best [3]StreamingRow
		for rep := 0; rep < s.cfg.Repeats; rep++ {
			// Batch: the paper's proxy, whole workload scheduled at once.
			res, err := m.Run(recs)
			if err != nil {
				return nil, err
			}
			batchRow := StreamingRow{
				Input: spec.Name, Mode: "batch",
				Seconds:     res.Makespan.Seconds(),
				ReadsPerSec: obs.Rate(float64(len(recs)), res.Makespan),
			}

			// Capture-file: pipeline over the incremental seed reader.
			src, err := seeds.Open(capturePath)
			if err != nil {
				return nil, err
			}
			st, err := pipeline.Run(m, src, discardEmitter{}, pipeline.Options{Workers: s.cfg.Threads})
			src.Close()
			if err != nil {
				return nil, err
			}
			captureRow := streamingRow(spec.Name, "capture-file", st)

			// FASTQ stream: pipeline over ExtractSource, seeds extracted on
			// the fly.
			esrc, err := giraffe.OpenExtractSource(ix.MinIx, fastqPath, 0)
			if err != nil {
				return nil, err
			}
			st, err = pipeline.Run(m, esrc, discardEmitter{}, pipeline.Options{Workers: s.cfg.Threads})
			esrc.Close()
			if err != nil {
				return nil, err
			}
			fastqRow := streamingRow(spec.Name, "fastq-stream", st)

			for i, row := range []StreamingRow{batchRow, captureRow, fastqRow} {
				if rep == 0 || row.Seconds < best[i].Seconds {
					best[i] = row
				}
			}
		}
		for _, row := range best {
			s.printf("%-8s %-14s %10.3f %12.0f %12.2f %12.2f\n",
				row.Input, row.Mode, row.Seconds, row.ReadsPerSec, row.IngestMeanMs, row.BatchMeanMs)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func streamingRow(input, mode string, st *pipeline.Stats) StreamingRow {
	return StreamingRow{
		Input: input, Mode: mode,
		Seconds:      st.Makespan.Seconds(),
		ReadsPerSec:  st.Throughput(),
		IngestMeanMs: 1000 * st.IngestLatency.Mean,
		BatchMeanMs:  1000 * st.BatchLatency.Mean,
	}
}
